(* Cross-cutting property tests: word arithmetic against an Int32
   oracle, shadow-memory invariants, allocator invariants, and the AIR
   breakdown identity. *)

open Jt_isa

let gen_word = QCheck2.Gen.(map Word.of_int (int_bound Word.mask))

(* -- Word vs Int32 oracle -- *)

let i32 w = Int32.of_int (Word.to_signed w)
let back v = Int32.to_int v land Word.mask

let prop_binop name wop iop =
  QCheck2.Test.make ~name:("word " ^ name ^ " == Int32") ~count:2000
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) -> wop a b = back (iop (i32 a) (i32 b)))

let prop_shift name wop iop =
  QCheck2.Test.make ~name:("word " ^ name ^ " == Int32") ~count:2000
    QCheck2.Gen.(pair gen_word (int_bound 31))
    (fun (a, n) -> wop a n = back (iop (i32 a) n))

let word_props =
  [
    prop_binop "add" Word.add Int32.add;
    prop_binop "sub" Word.sub Int32.sub;
    prop_binop "mul" Word.mul Int32.mul;
    prop_binop "and" Word.logand Int32.logand;
    prop_binop "or" Word.logor Int32.logor;
    prop_binop "xor" Word.logxor Int32.logxor;
    prop_shift "shl" Word.shl Int32.shift_left;
    prop_shift "shr" Word.shr Int32.shift_right_logical;
    prop_shift "sar" Word.sar Int32.shift_right;
    QCheck2.Test.make ~name:"word neg == Int32" ~count:2000 gen_word (fun a ->
        Word.neg a = back (Int32.neg (i32 a)));
    QCheck2.Test.make ~name:"signed roundtrip" ~count:2000 gen_word (fun a ->
        Word.of_int (Word.to_signed a) = a);
  ]

(* -- shadow memory invariants -- *)

type shadow_op = Poison of int * int | Unpoison of int * int

let gen_ops =
  let open QCheck2.Gen in
  list_size (int_range 1 40)
    (let* a = int_bound 4096 in
     let* len = int_range 1 64 in
     let* p = bool in
     return (if p then Poison (a, len) else Unpoison (a, len)))

let apply_model model = function
  | Poison (a, len) ->
    for i = a to a + len - 1 do
      Hashtbl.replace model i ()
    done
  | Unpoison (a, len) ->
    for i = a to a + len - 1 do
      Hashtbl.remove model i
    done

let prop_shadow_matches_model =
  QCheck2.Test.make ~name:"shadow == reference set model" ~count:300 gen_ops
    (fun ops ->
      let sh = Jt_jasan.Shadow.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          (match op with
          | Poison (a, len) ->
            Jt_jasan.Shadow.poison sh a ~len Jt_jasan.Shadow.Heap_redzone
          | Unpoison (a, len) -> Jt_jasan.Shadow.unpoison sh a ~len);
          apply_model model op)
        ops;
      (* counts agree *)
      Jt_jasan.Shadow.poisoned_count sh = Hashtbl.length model
      && (* membership agrees on a probe sweep *)
      List.for_all
        (fun a ->
          let shadow_hit = Jt_jasan.Shadow.first_poisoned sh a ~len:1 <> None in
          shadow_hit = Hashtbl.mem model a)
        (List.init 128 (fun i -> i * 33)))

(* Wraparound regression: every per-byte shadow path works modulo the
   word size, and [first_poisoned] must report the *masked* address of
   the hit.  Pre-fix it returned [a + consumed + (i - off)] unmasked, so
   a scan crossing the top of the address space reported addresses
   beyond [Word.mask]. *)
let prop_shadow_wraparound =
  QCheck2.Test.make ~name:"first_poisoned wraps modulo word size" ~count:500
    QCheck2.Gen.(
      let* poff = int_range 1 48 in
      let* plen = int_range 1 32 in
      let* soff = int_range 1 96 in
      let* slen = int_range 1 160 in
      return (poff, plen, soff, slen))
    (fun (poff, plen, soff, slen) ->
      let sh = Jt_jasan.Shadow.create () in
      let pstart = (Word.mask + 1 - poff) land Word.mask in
      let sstart = (Word.mask + 1 - soff) land Word.mask in
      Jt_jasan.Shadow.poison sh pstart ~len:plen Jt_jasan.Shadow.Heap_redzone;
      let expected =
        let rec find k =
          if k >= slen then None
          else
            let a = (sstart + k) land Word.mask in
            if (a - pstart) land Word.mask < plen then
              Some (a, Jt_jasan.Shadow.Heap_redzone)
            else find (k + 1)
        in
        find 0
      in
      Jt_jasan.Shadow.first_poisoned sh sstart ~len:slen = expected)

(* -- allocator invariants -- *)

let prop_alloc_disjoint =
  QCheck2.Test.make ~name:"allocator blocks are disjoint" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (int_bound 256))
    (fun sizes ->
      let a = Jt_vm.Alloc.create () in
      Jt_vm.Alloc.set_redzone a 16;
      let blocks = List.map (fun s -> (Jt_vm.Alloc.malloc a s, s)) sizes in
      (* all user ranges (plus redzones) disjoint and 8-aligned gaps *)
      let sorted = List.sort compare blocks in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) ->
          a1 + s1 + 16 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint sorted)

(* -- AIR identities -- *)

let test_air_breakdown_identity () =
  let m = Progs.indirect_prog () in
  let tool, rt = Jt_jcfi.Jcfi.create () in
  let _ =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"indirect" ()
  in
  let fwd, bwd = Jt_jcfi.Air.dynamic_breakdown rt in
  let total = Jt_jcfi.Air.dynamic rt in
  (* |T| = 1 per ret: backward AIR = 100*(1 - 1/S); on the tiny test
     corpus S is only a few hundred bytes *)
  Alcotest.(check bool) "backward ~100%" true (bwd > 99.0);
  Alcotest.(check bool) "forward below backward" true (fwd <= bwd);
  Alcotest.(check bool) "total between parts" true (total >= fwd && total <= bwd)

let test_air_empty_is_100 () =
  Alcotest.(check (float 0.001)) "empty" 100.0 (Jt_jcfi.Air.air ~sizes:[] ~total:1000.0)

let () =
  Alcotest.run "properties"
    [
      ("word", List.map QCheck_alcotest.to_alcotest word_props);
      ( "shadow",
        [
          QCheck_alcotest.to_alcotest prop_shadow_matches_model;
          QCheck_alcotest.to_alcotest prop_shadow_wraparound;
        ] );
      ("alloc", [ QCheck_alcotest.to_alcotest prop_alloc_disjoint ]);
      ( "air",
        [
          Alcotest.test_case "breakdown identity" `Quick test_air_breakdown_identity;
          Alcotest.test_case "empty" `Quick test_air_empty_is_100;
        ] );
    ]
