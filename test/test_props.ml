(* Cross-cutting property tests: word arithmetic against an Int32
   oracle, shadow-memory invariants, allocator invariants, and the AIR
   breakdown identity. *)

open Jt_isa

let gen_word = QCheck2.Gen.(map Word.of_int (int_bound Word.mask))

(* -- Word vs Int32 oracle -- *)

let i32 w = Int32.of_int (Word.to_signed w)
let back v = Int32.to_int v land Word.mask

let prop_binop name wop iop =
  QCheck2.Test.make ~name:("word " ^ name ^ " == Int32") ~count:2000
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) -> wop a b = back (iop (i32 a) (i32 b)))

let prop_shift name wop iop =
  QCheck2.Test.make ~name:("word " ^ name ^ " == Int32") ~count:2000
    QCheck2.Gen.(pair gen_word (int_bound 31))
    (fun (a, n) -> wop a n = back (iop (i32 a) n))

let word_props =
  [
    prop_binop "add" Word.add Int32.add;
    prop_binop "sub" Word.sub Int32.sub;
    prop_binop "mul" Word.mul Int32.mul;
    prop_binop "and" Word.logand Int32.logand;
    prop_binop "or" Word.logor Int32.logor;
    prop_binop "xor" Word.logxor Int32.logxor;
    prop_shift "shl" Word.shl Int32.shift_left;
    prop_shift "shr" Word.shr Int32.shift_right_logical;
    prop_shift "sar" Word.sar Int32.shift_right;
    QCheck2.Test.make ~name:"word neg == Int32" ~count:2000 gen_word (fun a ->
        Word.neg a = back (Int32.neg (i32 a)));
    QCheck2.Test.make ~name:"signed roundtrip" ~count:2000 gen_word (fun a ->
        Word.of_int (Word.to_signed a) = a);
  ]

(* -- VSA interval lattice -- *)

module Vsa = Jt_analysis.Vsa

let gen_vsa_value =
  let open QCheck2.Gen in
  let itv =
    let* a = int_range (-1000) 1000 in
    let* w = int_bound 1000 in
    return { Vsa.lo = a; hi = a + w }
  in
  oneof
    [
      return Vsa.Bot;
      return Vsa.Top;
      map (fun i -> Vsa.Cst i) itv;
      map (fun i -> Vsa.Sprel i) itv;
    ]

let vsa_lattice_props =
  let open QCheck2 in
  let pair2 = Gen.pair gen_vsa_value gen_vsa_value in
  [
    Test.make ~name:"vsa leq reflexive, join idempotent" ~count:1000
      gen_vsa_value (fun a ->
        Vsa.leq_value a a && Vsa.equal_value (Vsa.join_value a a) a);
    Test.make ~name:"vsa join is an upper bound" ~count:1000 pair2
      (fun (a, b) ->
        let j = Vsa.join_value a b in
        Vsa.leq_value a j && Vsa.leq_value b j);
    Test.make ~name:"vsa join commutes" ~count:1000 pair2 (fun (a, b) ->
        Vsa.equal_value (Vsa.join_value a b) (Vsa.join_value b a));
    Test.make ~name:"vsa widen bounds both arguments" ~count:1000 pair2
      (fun (prev, next) ->
        let w = Vsa.widen_value prev next in
        Vsa.leq_value prev w && Vsa.leq_value next w);
    Test.make ~name:"vsa join dominated by widen" ~count:1000 pair2
      (fun (a, b) ->
        Vsa.leq_value (Vsa.join_value a b) (Vsa.widen_value a b));
    Test.make ~name:"vsa join monotone" ~count:1000
      (Gen.triple gen_vsa_value gen_vsa_value gen_vsa_value)
      (fun (a, b, c) ->
        (not (Vsa.leq_value a b))
        || Vsa.leq_value (Vsa.join_value a c) (Vsa.join_value b c));
    Test.make ~name:"vsa contains preserved by join" ~count:1000
      (Gen.triple gen_vsa_value gen_vsa_value (Gen.pair gen_word gen_word))
      (fun (a, b, (w, sp0)) ->
        (not (Vsa.contains ~sp0 a w))
        || Vsa.contains ~sp0 (Vsa.join_value a b) w);
  ]

(* -- VSA transfer soundness against concrete replays --

   Random straight-line code, random initial register file: after every
   instruction, the abstract register file from [transfer_regs] must
   contain the concretely computed one.  The concrete step mirrors the
   VM's word semantics (wrap mod 2^32); memory reads are modelled as an
   arbitrary value, which the abstract side must cover with Top. *)

let gen_vsa_reg = QCheck2.Gen.(map Reg.of_index (int_bound 7))

let gen_vsa_operand =
  let open QCheck2.Gen in
  oneof
    [
      map (fun v -> Insn.Imm (Word.of_int v)) (int_range (-512) 512);
      map (fun r -> Insn.Reg r) gen_vsa_reg;
    ]

let gen_vsa_insn =
  let open QCheck2.Gen in
  oneof
    [
      map2 (fun r s -> Insn.Mov (r, s)) gen_vsa_reg gen_vsa_operand;
      (let* op =
         oneofl Insn.[ Add; Sub; And; Or; Xor; Mul ]
       in
       let* rd = gen_vsa_reg in
       let* src = gen_vsa_operand in
       return (Insn.Binop (op, rd, src)));
      map (fun r -> Insn.Neg r) gen_vsa_reg;
      map (fun r -> Insn.Not r) gen_vsa_reg;
      (let* rd = gen_vsa_reg in
       let* b = gen_vsa_reg in
       let* d = int_range (-64) 64 in
       return (Insn.Lea (rd, Insn.mem_base ~disp:(Word.of_int d) b)));
      return (Insn.Push (Insn.Reg Reg.r0));
      map (fun r -> Insn.Pop r) gen_vsa_reg;
      map (fun r -> Insn.Load (Insn.W4, r, Insn.mem_base Reg.r6)) gen_vsa_reg;
    ]

let concrete_step regs i =
  let get r = regs.(Reg.index r) in
  let set r v =
    let a = Array.copy regs in
    a.(Reg.index r) <- v;
    a
  in
  let operand = function Insn.Imm v -> v | Insn.Reg r -> get r in
  let mem_addr (m : Insn.mem) =
    let base =
      match m.Insn.base with
      | Some (Insn.Breg r) -> get r
      | Some Insn.Bpc -> Word.of_int 4
      | None -> Word.of_int 0
    in
    let idx =
      match m.Insn.index with
      | Some r -> Word.mul (get r) (Word.of_int m.Insn.scale)
      | None -> Word.of_int 0
    in
    Word.add (Word.add base idx) m.Insn.disp
  in
  match i with
  | Insn.Mov (rd, src) -> set rd (operand src)
  | Insn.Lea (rd, m) -> set rd (mem_addr m)
  | Insn.Binop (op, rd, src) ->
    let a = get rd and b = operand src in
    let v =
      match op with
      | Insn.Add -> Word.add a b
      | Insn.Sub -> Word.sub a b
      | Insn.And -> Word.logand a b
      | Insn.Or -> Word.logor a b
      | Insn.Xor -> Word.logxor a b
      | Insn.Mul -> Word.mul a b
      | Insn.Shl | Insn.Shr | Insn.Sar -> assert false (* not generated *)
    in
    set rd v
  | Insn.Neg rd -> set rd (Word.neg (get rd))
  | Insn.Not rd -> set rd (Word.lognot (get rd))
  | Insn.Push _ -> set Reg.sp (Word.sub (get Reg.sp) (Word.of_int 4))
  | Insn.Pop rd ->
    (* the popped value is whatever memory holds: model it as an
       arbitrary word the abstract side must absorb as Top *)
    let regs = set rd (Word.of_int 0x1bad_cafe) in
    let get r = regs.(Reg.index r) in
    let a = Array.copy regs in
    a.(Reg.index Reg.sp) <- Word.add (get Reg.sp) (Word.of_int 4);
    a
  | Insn.Load (_, rd, _) -> set rd (Word.of_int 0x0dea_db0b)
  | _ -> regs

let prop_vsa_transfer_sound =
  QCheck2.Test.make ~name:"vsa transfer sound on concrete replays" ~count:500
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) gen_vsa_insn)
        (list_size (return Reg.count) gen_word))
    (fun (prog, regs0l) ->
      let regs0 = Array.of_list regs0l in
      let sp0 = regs0.(Reg.index Reg.sp) in
      let covers st regs =
        let ok = ref true in
        for k = 0 to Reg.count - 1 do
          if not (Vsa.contains ~sp0 st.(k) regs.(k)) then ok := false
        done;
        !ok
      in
      let rec go st regs = function
        | [] -> true
        | i :: rest ->
          let st = Vsa.transfer_regs ~trust:true ~at:0 ~len:4 i st in
          let regs = concrete_step regs i in
          covers st regs && go st regs rest
      in
      go (Vsa.entry_state ()) regs0 prog)

(* -- shadow memory invariants -- *)

type shadow_op = Poison of int * int | Unpoison of int * int

let gen_ops =
  let open QCheck2.Gen in
  list_size (int_range 1 40)
    (let* a = int_bound 4096 in
     let* len = int_range 1 64 in
     let* p = bool in
     return (if p then Poison (a, len) else Unpoison (a, len)))

let apply_model model = function
  | Poison (a, len) ->
    for i = a to a + len - 1 do
      Hashtbl.replace model i ()
    done
  | Unpoison (a, len) ->
    for i = a to a + len - 1 do
      Hashtbl.remove model i
    done

let prop_shadow_matches_model =
  QCheck2.Test.make ~name:"shadow == reference set model" ~count:300 gen_ops
    (fun ops ->
      let sh = Jt_jasan.Shadow.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          (match op with
          | Poison (a, len) ->
            Jt_jasan.Shadow.poison sh a ~len Jt_jasan.Shadow.Heap_redzone
          | Unpoison (a, len) -> Jt_jasan.Shadow.unpoison sh a ~len);
          apply_model model op)
        ops;
      (* counts agree *)
      Jt_jasan.Shadow.poisoned_count sh = Hashtbl.length model
      && (* membership agrees on a probe sweep *)
      List.for_all
        (fun a ->
          let shadow_hit = Jt_jasan.Shadow.first_poisoned sh a ~len:1 <> None in
          shadow_hit = Hashtbl.mem model a)
        (List.init 128 (fun i -> i * 33)))

(* Wraparound regression: every per-byte shadow path works modulo the
   word size, and [first_poisoned] must report the *masked* address of
   the hit.  Pre-fix it returned [a + consumed + (i - off)] unmasked, so
   a scan crossing the top of the address space reported addresses
   beyond [Word.mask]. *)
let prop_shadow_wraparound =
  QCheck2.Test.make ~name:"first_poisoned wraps modulo word size" ~count:500
    QCheck2.Gen.(
      let* poff = int_range 1 48 in
      let* plen = int_range 1 32 in
      let* soff = int_range 1 96 in
      let* slen = int_range 1 160 in
      return (poff, plen, soff, slen))
    (fun (poff, plen, soff, slen) ->
      let sh = Jt_jasan.Shadow.create () in
      let pstart = (Word.mask + 1 - poff) land Word.mask in
      let sstart = (Word.mask + 1 - soff) land Word.mask in
      Jt_jasan.Shadow.poison sh pstart ~len:plen Jt_jasan.Shadow.Heap_redzone;
      let expected =
        let rec find k =
          if k >= slen then None
          else
            let a = (sstart + k) land Word.mask in
            if (a - pstart) land Word.mask < plen then
              Some (a, Jt_jasan.Shadow.Heap_redzone)
            else find (k + 1)
        in
        find 0
      in
      Jt_jasan.Shadow.first_poisoned sh sstart ~len:slen = expected)

(* Satellite of the same wraparound family, one layer down: the string
   helpers index with [a + i], which must be masked before the per-byte
   access so a write straddling the top of the address space lands at
   the wrapped addresses (and reads back through the same window). *)
let prop_memory_string_wraparound =
  QCheck2.Test.make ~name:"write_string/read_cstring wrap modulo word size"
    ~count:300
    QCheck2.Gen.(
      let* off = int_range 1 16 in
      let* s =
        string_size ~gen:(map Char.chr (int_range 1 255)) (int_range 1 32)
      in
      return (off, s))
    (fun (off, s) ->
      let mem = Jt_mem.Memory.create () in
      let start = (Word.mask + 1 - off) land Word.mask in
      Jt_mem.Memory.write_string mem start s;
      Jt_mem.Memory.read_cstring mem start = s
      && List.for_all
           (fun i ->
             Jt_mem.Memory.read8 mem ((start + i) land Word.mask)
             = Char.code s.[i])
           (List.init (String.length s) Fun.id))

(* -- allocator invariants -- *)

let prop_alloc_disjoint =
  QCheck2.Test.make ~name:"allocator blocks are disjoint" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (int_bound 256))
    (fun sizes ->
      let a = Jt_vm.Alloc.create () in
      Jt_vm.Alloc.set_redzone a 16;
      let blocks = List.map (fun s -> (Jt_vm.Alloc.malloc a s, s)) sizes in
      (* all user ranges (plus redzones) disjoint and 8-aligned gaps *)
      let sorted = List.sort compare blocks in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) ->
          a1 + s1 + 16 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint sorted)

(* -- allocator/shadow lifecycle roundtrip --

   Drive the JASan shadow maintenance with randomized alloc/free/realloc
   cycles over a footprint-recycling allocator with a tiny quarantine,
   so blocks retire and get reused aggressively.  Invariant after every
   step: no byte of any live block is poisoned — neither stale
   [Heap_freed] surviving a reallocation at a recycled address, nor
   spillover from a neighbour's free (the zero-size regression). *)

type life_op = Lalloc of int | Lfree of int | Lrealloc of int * int

let gen_life_ops =
  let open QCheck2.Gen in
  list_size (int_range 1 60)
    (oneof
       [
         map (fun s -> Lalloc s) (int_bound 48);
         map (fun i -> Lfree i) (int_bound 1000);
         map2 (fun i s -> Lrealloc (i, s)) (int_bound 1000) (int_bound 48);
       ])

let prop_lifecycle_shadow_roundtrip =
  QCheck2.Test.make ~name:"alloc/free/realloc shadow roundtrip (reuse mode)"
    ~count:200 gen_life_ops (fun ops ->
      let alloc = Jt_vm.Alloc.create ~reuse:true ~quarantine_capacity:64 () in
      let rt = Jt_jasan.Jasan.Rt.create () in
      Jt_vm.Alloc.set_redzone alloc Jt_jasan.Jasan.redzone_bytes;
      Jt_vm.Alloc.subscribe alloc
        (Jt_jasan.Jasan.Rt.on_alloc_event rt
           ~report:(fun ~kind:_ ~addr:_ -> ()));
      let sh = Jt_jasan.Jasan.Rt.shadow rt in
      let live = ref [] in
      let ok = ref true in
      let check_live () =
        List.iter
          (fun (a, s) ->
            if s > 0 && Jt_jasan.Shadow.first_poisoned sh a ~len:s <> None
            then ok := false)
          !live
      in
      let take l i =
        let n = List.length l in
        (fst (List.nth l (i mod n)), List.filteri (fun k _ -> k <> i mod n) l)
      in
      let apply = function
        | Lalloc s -> live := (Jt_vm.Alloc.malloc alloc s, s) :: !live
        | Lfree i -> (
          match !live with
          | [] -> ()
          | l ->
            let a, rest = take l i in
            live := rest;
            Jt_vm.Alloc.free alloc a)
        | Lrealloc (i, s) -> (
          match !live with
          | [] -> live := [ (Jt_vm.Alloc.malloc alloc s, s) ]
          | l ->
            (* libc order: allocate the new block, then free the old *)
            let a, rest = take l i in
            let b = Jt_vm.Alloc.malloc alloc s in
            Jt_vm.Alloc.free alloc a;
            live := (b, s) :: rest)
      in
      List.iter
        (fun op ->
          apply op;
          check_live ())
        ops;
      !ok)

(* -- AIR identities -- *)

let test_air_breakdown_identity () =
  let m = Progs.indirect_prog () in
  let tool, rt = Jt_jcfi.Jcfi.create () in
  let _ =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"indirect" ()
  in
  let fwd, bwd = Jt_jcfi.Air.dynamic_breakdown rt in
  let total = Jt_jcfi.Air.dynamic rt in
  (* |T| = 1 per ret: backward AIR = 100*(1 - 1/S); on the tiny test
     corpus S is only a few hundred bytes *)
  Alcotest.(check bool) "backward ~100%" true (bwd > 99.0);
  Alcotest.(check bool) "forward below backward" true (fwd <= bwd);
  Alcotest.(check bool) "total between parts" true (total >= fwd && total <= bwd)

let test_air_empty_is_100 () =
  Alcotest.(check (float 0.001)) "empty" 100.0 (Jt_jcfi.Air.air ~sizes:[] ~total:1000.0)

let () =
  Alcotest.run "properties"
    [
      ("word", List.map QCheck_alcotest.to_alcotest word_props);
      ( "vsa",
        List.map QCheck_alcotest.to_alcotest
          (vsa_lattice_props @ [ prop_vsa_transfer_sound ]) );
      ( "shadow",
        [
          QCheck_alcotest.to_alcotest prop_shadow_matches_model;
          QCheck_alcotest.to_alcotest prop_shadow_wraparound;
        ] );
      ( "memory",
        [ QCheck_alcotest.to_alcotest prop_memory_string_wraparound ] );
      ( "alloc",
        [
          QCheck_alcotest.to_alcotest prop_alloc_disjoint;
          QCheck_alcotest.to_alcotest prop_lifecycle_shadow_roundtrip;
        ] );
      ( "air",
        [
          Alcotest.test_case "breakdown identity" `Quick test_air_breakdown_identity;
          Alcotest.test_case "empty" `Quick test_air_empty_is_100;
        ] );
    ]
