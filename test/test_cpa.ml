(* Code-pointer provenance analysis (CPA): per-site target sets, the
   Top-degradation contract, the resolved call graph, the cpa/v1 codec,
   and the refinement-soundness oracle — every indirect call the
   workload sweep and the fuzz corpus actually execute must land inside
   its site's resolved set (or the site must be Top). *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl
open Jt_workloads

(* -- a two-entry dispatch table CPA can bound exactly -- *)

let dispatch_prog () =
  build ~name:"cpa-disp" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:[ data "tbl" [ Dfuncptr "op0"; Dfuncptr "op1" ] ]
    [
      func "op0" [ addi Reg.r0 1; ret ];
      func "op1" [ addi Reg.r0 2; ret ];
      func "main"
        [
          call "op0";
          mov Reg.r3 Reg.r9;
          andi Reg.r3 1;
          addr_of_data ~pic:false Reg.r2 "tbl";
          ld Reg.r4 (mem_bi ~scale:4 Reg.r2 Reg.r3);
          call_reg Reg.r4;
          movi Reg.r0 0;
          syscall Sysno.exit_;
        ];
    ]

(* -- the same call through a pointer CPA cannot trace (loaded from an
   untracked address): the site must degrade to Top -- *)

let top_prog () =
  build ~name:"cpa-top" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:
      [
        data "cell" [ Dfuncptr "op0" ];
        data "cell2" [ Ddataptr "cell" ];
      ]
    [
      func "op0" [ addi Reg.r0 1; ret ];
      func "main"
        [
          (* two-hop chase: the first load yields a data pointer, which
             is not a tracked entry, so provenance is lost before the
             code pointer is ever read *)
          addr_of_data ~pic:false Reg.r1 "cell2";
          ld Reg.r2 (mem_b Reg.r1);
          ld Reg.r4 (mem_b Reg.r2);
          call_reg Reg.r4;
          movi Reg.r0 0;
          syscall Sysno.exit_;
        ];
    ]

let addr_of m name = (Jt_obj.Objfile.find_symbol m name |> Option.get).vaddr

let test_dispatch_resolved () =
  let m = dispatch_prog () in
  let sa = Janitizer.Static_analyzer.analyze m in
  let cpa = Lazy.force sa.sa_cpa in
  match Jt_analysis.Cpa.sites cpa with
  | [ s ] ->
    Alcotest.(check int) "site in main" (addr_of m "main") s.cs_fn;
    Alcotest.(check (option (list int)))
      "exact target set"
      (Some (List.sort compare [ addr_of m "op0"; addr_of m "op1" ]))
      s.cs_targets;
    Alcotest.(check bool) "witness anchors in main" true (s.cs_witness > 0)
  | sites -> Alcotest.failf "expected 1 indirect site, got %d" (List.length sites)

let test_top_degradation () =
  let m = top_prog () in
  let sa = Janitizer.Static_analyzer.analyze m in
  let cpa = Lazy.force sa.sa_cpa in
  (match Jt_analysis.Cpa.sites cpa with
  | [ s ] -> Alcotest.(check (option (list int))) "Top" None s.cs_targets
  | sites -> Alcotest.failf "expected 1 site, got %d" (List.length sites));
  (* Top sites emit no site_targets rules: the installed table falls
     back to the any-entry policy *)
  let tool, rt = Jt_jcfi.Jcfi.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
      ~main:m.Jt_obj.Objfile.name ()
  in
  Alcotest.(check (list string))
    "clean run" []
    (List.map (fun v -> v.Jt_vm.Vm.v_kind) o.o_result.r_violations);
  List.iter
    (fun ((l : Jt_loader.Loader.loaded), tbl) ->
      if l.lmod.Jt_obj.Objfile.name = m.Jt_obj.Objfile.name then
        Alcotest.(check int) "no site sets installed" 0
          (Jt_jcfi.Targets.n_site_sets tbl))
    (Jt_jcfi.Jcfi.Rt.tables rt)

let test_callgraph () =
  let m = dispatch_prog () in
  let sa = Janitizer.Static_analyzer.analyze m in
  let cg = Lazy.force sa.sa_callgraph in
  let main = addr_of m "main" in
  let has kind callee =
    List.exists
      (fun (e : Jt_cfg.Callgraph.edge) ->
        e.e_caller = main && e.e_callee = callee && e.e_kind = kind)
      (Jt_cfg.Callgraph.edges cg)
  in
  Alcotest.(check bool) "direct main->op0" true
    (has Jt_cfg.Callgraph.Direct (addr_of m "op0"));
  Alcotest.(check bool) "indirect main->op0" true
    (has Jt_cfg.Callgraph.Indirect (addr_of m "op0"));
  Alcotest.(check bool) "indirect main->op1" true
    (has Jt_cfg.Callgraph.Indirect (addr_of m "op1"));
  Alcotest.(check (list int)) "no unresolved sites" []
    (Jt_cfg.Callgraph.unresolved_sites cg);
  (* the Top program's lone site stays unresolved instead of growing
     edges to every entry *)
  let mt = top_prog () in
  let sat = Janitizer.Static_analyzer.analyze mt in
  let cgt = Lazy.force sat.sa_callgraph in
  Alcotest.(check int) "Top site unresolved" 1
    (List.length (Jt_cfg.Callgraph.unresolved_sites cgt));
  Alcotest.(check bool) "no indirect edges from Top" true
    (List.for_all
       (fun (e : Jt_cfg.Callgraph.edge) ->
         e.e_kind <> Jt_cfg.Callgraph.Indirect)
       (Jt_cfg.Callgraph.edges cgt))

let test_codec_roundtrip () =
  let sites m =
    Jt_analysis.Cpa.export
      (Lazy.force (Janitizer.Static_analyzer.analyze m).sa_cpa)
  in
  List.iter
    (fun m ->
      let s = sites m in
      Alcotest.(check bool)
        ("round-trip " ^ m.Jt_obj.Objfile.name)
        true
        (Jt_ir.Ir.Cpa.decode (Jt_ir.Ir.Cpa.encode s) = s))
    [ dispatch_prog (); top_prog () ];
  Alcotest.check_raises "garbage rejected"
    (Failure "Ir.Cpa.decode: trailing bytes")
    (fun () ->
      ignore (Jt_ir.Ir.Cpa.decode (Jt_ir.Ir.Cpa.encode [] ^ "xx")))

(* -- satellite: dlopen'd module with no static hints takes the
   imprecise path, whose sites never consult CPA sets -- *)

let test_dlopen_imprecise () =
  let m = Progs.dlopen_prog () in
  let tool, rt = Jt_jcfi.Jcfi.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
      ~main:m.Jt_obj.Objfile.name ()
  in
  Alcotest.(check string) "plugin ran" "777\n" o.o_result.r_output;
  Alcotest.(check (list string))
    "clean" []
    (List.map (fun v -> v.Jt_vm.Vm.v_kind) o.o_result.r_violations);
  let l, tbl =
    List.find
      (fun ((l : Jt_loader.Loader.loaded), _) ->
        l.lmod.Jt_obj.Objfile.name = "plugin.so")
      (Jt_jcfi.Jcfi.Rt.tables rt)
  in
  Alcotest.(check bool) "runtime table is imprecise" false
    tbl.Jt_jcfi.Targets.precise;
  Alcotest.(check int) "no site sets" 0 (Jt_jcfi.Targets.n_site_sets tbl);
  let answer = Jt_loader.Loader.runtime_addr l (addr_of l.lmod "answer") in
  Alcotest.(check bool) "entry accepted" true
    (Jt_jcfi.Targets.intra_call_ok tbl answer);
  (* poison a site set that excludes [answer]: a precise table would
     reject the call, the imprecise one must keep ignoring the set *)
  Hashtbl.replace tbl.Jt_jcfi.Targets.site_sets 0x1234 [];
  Alcotest.(check bool) "imprecise call_ok never consults sets" true
    (Jt_jcfi.Targets.call_ok tbl ~site:0x1234 answer)

(* -- the refinement-soundness oracle -- *)

let oracle_violations rt =
  let tables = List.map snd (Jt_jcfi.Jcfi.Rt.tables rt) in
  List.filter
    (fun (site, target) ->
      List.exists
        (fun tbl ->
          match Jt_jcfi.Targets.site_set tbl ~site with
          | Some set -> not (List.mem target set)
          | None -> false)
        tables)
    (Jt_jcfi.Jcfi.Rt.observed_icalls rt)

let check_oracle name rt =
  match oracle_violations rt with
  | [] -> ()
  | (site, tgt) :: _ ->
    Alcotest.failf "%s: observed icall %d -> %d outside its resolved set" name
      site tgt

let test_sweep_oracle () =
  (* the full workload sweep; also assert the oracle is not vacuous *)
  let resolved_hits = ref 0 in
  List.iter
    (fun (s : Sheet.t) ->
      let w = Specgen.build s in
      let tool, rt = Jt_jcfi.Jcfi.create () in
      let _ =
        Janitizer.Driver.run ~tool ~registry:w.Specgen.w_registry
          ~main:s.Sheet.s_name ()
      in
      let tables = List.map snd (Jt_jcfi.Jcfi.Rt.tables rt) in
      List.iter
        (fun (site, _) ->
          if
            List.exists
              (fun tbl -> Jt_jcfi.Targets.site_set tbl ~site <> None)
              tables
          then incr resolved_hits)
        (Jt_jcfi.Jcfi.Rt.observed_icalls rt);
      check_oracle s.Sheet.s_name rt)
    Sheet.all;
  Alcotest.(check bool) "some executed site was resolved" true
    (!resolved_hits > 0)

let corpus_oracle =
  QCheck2.Test.make ~name:"fuzz corpus targets inside resolved sets" ~count:25
    QCheck2.Gen.(pair (int_bound 500) bool)
    (fun (seed, pic) ->
      let m =
        Jt_fuzz.Fuzz.build
          { Jt_fuzz.Fuzz.fz_seed = seed; fz_pic = pic; fz_inject = None }
      in
      let tool, rt = Jt_jcfi.Jcfi.create () in
      let _ =
        Janitizer.Driver.run ~tool ~registry:[ m; Stdlibs.libc ]
          ~main:m.Jt_obj.Objfile.name ()
      in
      oracle_violations rt = [])

let () =
  Alcotest.run "cpa"
    [
      ( "analysis",
        [
          Alcotest.test_case "dispatch resolved" `Quick test_dispatch_resolved;
          Alcotest.test_case "top degradation" `Quick test_top_degradation;
          Alcotest.test_case "callgraph" `Quick test_callgraph;
          Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
        ] );
      ( "policy",
        [ Alcotest.test_case "dlopen imprecise" `Quick test_dlopen_imprecise ] );
      ( "oracle",
        [
          Alcotest.test_case "workload sweep" `Slow test_sweep_oracle;
          QCheck_alcotest.to_alcotest corpus_oracle;
        ] );
    ]
