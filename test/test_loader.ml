(* Loader: bases, relocations, GOT binding, dependency closure, dlopen. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let liba =
  build ~name:"liba.so" ~kind:Jt_obj.Objfile.Shared
    ~datas:[ data ~exported:true "shared_val" [ Dword32 77 ] ]
    [ func ~exported:true "afun" [ movi Reg.r0 1; ret ] ]

let libb =
  build ~name:"libb.so" ~kind:Jt_obj.Objfile.Shared ~deps:[ "liba.so" ]
    [ func ~exported:true "bfun" [ I (Jt_asm.Sinsn.Scall (Jt_asm.Sinsn.Rimport "afun")); addi Reg.r0 10; ret ] ]

let main_mod =
  build ~name:"mainx" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libb.so" ]
    ~entry:"main"
    [ func "main" [ call_import "bfun"; syscall Sysno.exit_ ] ]

let fresh () =
  let mem = Jt_mem.Memory.create () in
  let loader =
    Jt_loader.Loader.create ~mem ~registry:[ main_mod; liba; libb ]
  in
  (mem, loader)

let test_dependency_closure_order () =
  let _, loader = fresh () in
  let _ = Jt_loader.Loader.load_main loader "mainx" in
  let names =
    List.map
      (fun (l : Jt_loader.Loader.loaded) -> l.lmod.Jt_obj.Objfile.name)
      (Jt_loader.Loader.loaded_modules loader)
  in
  (* dependencies first: ld.so before libb (libb imports through it),
     liba before libb, main last *)
  let pos n =
    let rec go i = function
      | [] -> -1
      | x :: tl -> if String.equal x n then i else go (i + 1) tl
    in
    go 0 names
  in
  Alcotest.(check bool) "liba before libb" true (pos "liba.so" < pos "libb.so");
  Alcotest.(check bool) "libb before main" true (pos "libb.so" < pos "mainx");
  Alcotest.(check bool) "ld.so loaded" true (pos "ld.so" >= 0)

let test_pic_bases_distinct () =
  let _, loader = fresh () in
  let _ = Jt_loader.Loader.load_main loader "mainx" in
  let bases =
    List.filter_map
      (fun (l : Jt_loader.Loader.loaded) ->
        if Jt_obj.Objfile.is_pic l.lmod then Some l.base else None)
      (Jt_loader.Loader.loaded_modules loader)
  in
  Alcotest.(check int) "distinct" (List.length bases)
    (List.length (List.sort_uniq compare bases));
  List.iter (fun b -> Alcotest.(check bool) "nonzero" true (b > 0)) bases

let test_relocation_and_symbols () =
  let mem, loader = fresh () in
  let _ = Jt_loader.Loader.load_main loader "mainx" in
  (* shared_val readable at its runtime address *)
  match Jt_loader.Loader.resolve_symbol loader "shared_val" with
  | Some (l, s) ->
    let v = Jt_mem.Memory.read32 mem (Jt_loader.Loader.runtime_addr l s.vaddr) in
    Alcotest.(check int) "value" 77 v
  | None -> Alcotest.fail "shared_val not found"

let test_got_initialized_lazy () =
  let mem, loader = fresh () in
  let _ = Jt_loader.Loader.load_main loader "mainx" in
  let lb = Jt_loader.Loader.find_loaded loader "libb.so" |> Option.get in
  let imp =
    List.find
      (fun (i : Jt_obj.Objfile.import) -> String.equal i.imp_sym "afun")
      lb.lmod.imports
  in
  let slot = Jt_mem.Memory.read32 mem (Jt_loader.Loader.runtime_addr lb imp.imp_got) in
  (* lazy: points at the plt.lazy stub inside libb itself *)
  Alcotest.(check bool) "points into libb" true (Jt_loader.Loader.contains lb slot);
  (* resolver slot: eagerly bound to ld.so's export *)
  let res =
    List.find
      (fun (i : Jt_obj.Objfile.import) -> String.equal i.imp_sym "__dl_resolve")
      lb.lmod.imports
  in
  let rslot = Jt_mem.Memory.read32 mem (Jt_loader.Loader.runtime_addr lb res.imp_got) in
  let ld = Jt_loader.Loader.find_loaded loader "ld.so" |> Option.get in
  Alcotest.(check bool) "resolver in ld.so" true (Jt_loader.Loader.contains ld rslot)

let test_module_at () =
  let _, loader = fresh () in
  let l = Jt_loader.Loader.load_main loader "mainx" in
  let entry = Jt_loader.Loader.entry_point loader in
  (match Jt_loader.Loader.module_at loader entry with
  | Some l' -> Alcotest.(check string) "main" "mainx" l'.lmod.name
  | None -> Alcotest.fail "entry unmapped");
  Alcotest.(check bool) "in_code" true (Jt_loader.Loader.in_code l entry);
  Alcotest.(check bool) "junk unmapped" true
    (Jt_loader.Loader.module_at loader 0x0666_0000 = None)

let test_index_tracks_dlopen_dlclose () =
  (* The interval index behind module_at must follow the loaded set:
     entries appear on dlopen and disappear on dlclose. *)
  let plugx =
    build ~name:"plugx.so" ~kind:Jt_obj.Objfile.Shared
      [ func ~exported:true "pfun" [ movi Reg.r0 9; ret ] ]
  in
  let mem = Jt_mem.Memory.create () in
  let loader =
    Jt_loader.Loader.create ~mem ~registry:[ main_mod; liba; libb; plugx ]
  in
  let _ = Jt_loader.Loader.load_main loader "mainx" in
  let l = Jt_loader.Loader.dlopen loader "plugx.so" in
  let s = List.hd l.lmod.Jt_obj.Objfile.sections in
  let probe = Jt_loader.Loader.runtime_addr l s.vaddr in
  (match Jt_loader.Loader.module_at loader probe with
  | Some l' -> Alcotest.(check string) "indexed after dlopen" "plugx.so" l'.lmod.name
  | None -> Alcotest.fail "plugx not indexed after dlopen");
  Alcotest.(check bool) "dlclose ok" true
    (Jt_loader.Loader.dlclose loader "plugx.so");
  Alcotest.(check bool) "dropped after dlclose" true
    (Jt_loader.Loader.module_at loader probe = None);
  let entry = Jt_loader.Loader.entry_point loader in
  match Jt_loader.Loader.module_at loader entry with
  | Some l' -> Alcotest.(check string) "main still indexed" "mainx" l'.lmod.name
  | None -> Alcotest.fail "main lost from index"

let test_dlopen_idempotent () =
  let _, loader = fresh () in
  let _ = Jt_loader.Loader.load_main loader "mainx" in
  let p1 = Jt_loader.Loader.dlopen loader "liba.so" in
  let p2 = Jt_loader.Loader.dlopen loader "liba.so" in
  Alcotest.(check int) "same base" p1.base p2.base;
  Alcotest.(check int) "no duplicate"
    (List.length (Jt_loader.Loader.loaded_modules loader))
    4 (* ld.so, liba, libb, mainx *)

let test_load_error () =
  let _, loader = fresh () in
  match Jt_loader.Loader.load_main loader "missing" with
  | exception Jt_loader.Loader.Load_error _ -> ()
  | _ -> Alcotest.fail "expected Load_error"

let () =
  Alcotest.run "loader"
    [
      ( "loading",
        [
          Alcotest.test_case "closure order" `Quick test_dependency_closure_order;
          Alcotest.test_case "pic bases" `Quick test_pic_bases_distinct;
          Alcotest.test_case "relocations" `Quick test_relocation_and_symbols;
          Alcotest.test_case "got lazy" `Quick test_got_initialized_lazy;
          Alcotest.test_case "module_at" `Quick test_module_at;
          Alcotest.test_case "dlopen idempotent" `Quick test_dlopen_idempotent;
          Alcotest.test_case "index tracks dlopen/dlclose" `Quick
            test_index_tracks_dlopen_dlclose;
          Alcotest.test_case "load error" `Quick test_load_error;
        ] );
    ]
