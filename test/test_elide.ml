(* Differential safety for check elision (VSA frame bounds +
   dominating-check elimination): turning elision on must never change
   what a program does or what the sanitizer reports — only how many
   dynamic checks it takes to get there. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let run_jasan ~elide ~registry ~main () =
  let tool, _rt = Jt_jasan.Jasan.create ~elide () in
  Janitizer.Driver.run ~tool ~registry ~main ()

(* The paper's observable-equivalence criterion: exit status, program
   output and retired instruction count.  Cycles are excluded on
   purpose — elision exists to change them. *)
let observable (r : Jt_vm.Vm.result) = (r.r_status, r.r_output, r.r_icount)

let vset (r : Jt_vm.Vm.result) =
  List.sort_uniq compare
    (List.map (fun v -> (v.Jt_vm.Vm.v_kind, v.v_addr)) r.r_violations)

let check_differential label ~registry ~main =
  let off = run_jasan ~elide:false ~registry ~main () in
  let on = run_jasan ~elide:true ~registry ~main () in
  Alcotest.(check bool)
    (label ^ " observables identical")
    true
    (observable off.o_result = observable on.o_result);
  Alcotest.(check bool)
    (label ^ " same violations at same addresses")
    true
    (vset off.o_result = vset on.o_result);
  on

(* Every workload, elision off vs on: bit-identical observables. *)
let test_workloads_differential () =
  List.iter
    (fun (s : Jt_workloads.Sheet.t) ->
      let w = Jt_workloads.Specgen.build s in
      ignore (check_differential s.s_name ~registry:w.w_registry ~main:s.s_name))
    Jt_workloads.Sheet.all

(* Violation/poison injection: the bugs elision is not allowed to hide.
   Each program must report the same violation kinds at the same fault
   addresses with elision on. *)
let test_injections_differential () =
  List.iter
    (fun (label, m) ->
      let o =
        check_differential label
          ~registry:(Progs.registry_for m)
          ~main:m.Jt_obj.Objfile.name
      in
      Alcotest.(check bool)
        (label ^ " still detects")
        true
        (vset o.o_result <> []))
    [
      ("heap overflow", Progs.heap_overflow_prog ());
      ("use after free", Progs.uaf_prog ());
      ("stack smash", Progs.stack_smash_prog ~bad:true ());
    ]

(* -- claim-level unit tests -- *)

let report_for ?name funcs =
  let nm = Option.value name ~default:"el" in
  let m =
    build ~name:nm ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main" funcs
  in
  let sa = Janitizer.Static_analyzer.analyze m in
  (m, Jt_jasan.Jasan.elision_report sa)

let fn_report m reports fname =
  let addr = (Jt_obj.Objfile.find_symbol m fname |> Option.get).vaddr in
  List.find (fun (r : Jt_jasan.Jasan.fn_report) -> r.er_fn = addr) reports

(* Two identical heap loads, no redefinition and no barrier in between:
   the second is subsumed by the first (the dominating-check pass), with
   the first's address as witness. *)
let test_dominating_check_elided () =
  let m, reports =
    report_for
      [
        func "main"
          ([
             movi Reg.r0 32;
             call_import "malloc";
             mov Reg.r6 Reg.r0;
             ld Reg.r1 (mem_b ~disp:0 Reg.r6);
             ld Reg.r2 (mem_b ~disp:0 Reg.r6);
           ]
          @ Progs.exit0);
      ]
  in
  let r = fn_report m reports "main" in
  match
    List.filter
      (fun (_, c) -> c <> Jt_jasan.Jasan.Exempt_canary)
      r.er_claims
  with
  | [ (a1, Jt_jasan.Jasan.Checked); (a2, Jt_jasan.Jasan.Dom_elided w) ] ->
    Alcotest.(check int) "witness is the first load" a1 w;
    Alcotest.(check bool) "witness dominates" true (a1 < a2)
  | claims ->
    Alcotest.failf "unexpected claims: %s"
      (String.concat ", "
         (List.map
            (fun (a, c) ->
              Printf.sprintf "0x%x:%s" a (Jt_jasan.Jasan.claim_name c))
            claims))

(* A call between the two identical accesses is a shadow-state barrier
   (free/realloc may poison the range): the second access must keep its
   own check. *)
let test_call_is_barrier () =
  let m, reports =
    report_for ~name:"elbar"
      [
        func "main"
          ([
             movi Reg.r0 32;
             call_import "malloc";
             mov Reg.r6 Reg.r0;
             ld Reg.r1 (mem_b ~disp:0 Reg.r6);
             mov Reg.r0 Reg.r1;
             call_import "print_int";
             ld Reg.r2 (mem_b ~disp:0 Reg.r6);
           ]
          @ Progs.exit0);
      ]
  in
  let r = fn_report m reports "main" in
  List.iter
    (fun (_, c) ->
      Alcotest.(check bool) "no dom elision across call" true
        (match c with Jt_jasan.Jasan.Dom_elided _ -> false | _ -> true))
    r.er_claims

(* A store through a frame-base register plus a masked index: not a
   constant [sp]/[fp] offset (so outside the frame policy), but VSA
   bounds it inside the frame reservation away from the canary slot —
   the Vsa_frame pass claims it.  The differential harness doubles as a
   soundness check on the same program. *)
let frame_prog () =
  [
    func "victim"
      (Abi.frame_enter ~canary:true ~locals:32 ()
      @ [
          call_import "read_int";
          mov Reg.r3 Reg.r0;
          andi Reg.r3 7;
          lea Reg.r2 (mem_b ~disp:(-32) Reg.fp);
          st (mem_bi ~scale:2 Reg.r2 Reg.r3) Reg.r3;
          movi Reg.r0 3;
        ]
      @ Abi.frame_leave ~canary:true ~locals:32 ());
    func "main" ([ call "victim"; call_import "print_int" ] @ Progs.exit0);
  ]

let test_vsa_frame_elided () =
  let m, reports = report_for ~name:"elfr" (frame_prog ()) in
  let r = fn_report m reports "victim" in
  Alcotest.(check bool) "vsa did not bail" false r.er_vsa_bailed;
  Alcotest.(check bool)
    "masked frame store claimed by Vsa_frame" true
    (List.exists (fun (_, c) -> c = Jt_jasan.Jasan.Vsa_frame) r.er_claims)

(* End-to-end regression for the dead-pass bug: on a whole run of the
   crafted frame workload, the VSA frame-bounds pass must actually claim
   something — [san_elide_frame] > 0 in the run's counters and
   ["elide_frame"] > 0 in the emitted rule-file stats.  Before the
   claim-priority fix the frame *policy* swallowed every provable access
   first and this counter was permanently 0. *)
let test_vsa_frame_fires_end_to_end () =
  let m =
    build ~name:"elfr" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main" (frame_prog ())
  in
  let registry = Progs.registry_for m in
  let o = check_differential "frame workload" ~registry ~main:"elfr" in
  Alcotest.(check bool)
    "run completed" true
    (o.o_result.r_status = Jt_vm.Vm.Exited 0);
  let snap = Jt_metrics.Metrics.Counters.(snapshot_of (current ())) in
  Alcotest.(check bool)
    "san_elide_frame > 0 after the run" true
    (List.assoc "san_elide_frame" snap > 0);
  let tool, _ = Jt_jasan.Jasan.create () in
  let files = Janitizer.Driver.analyze_all ~tool registry in
  let f = List.assoc "elfr" files in
  Alcotest.(check bool)
    "elide_frame stat > 0" true
    (List.assoc "elide_frame" f.Jt_rules.Rules.rf_stats > 0)

(* The stack-smash store indexes past the array into the canary; its
   index is data-dependent across iterations, so no static pass may
   claim it away from the dynamic checks that catch the smash. *)
let test_smash_store_not_elided () =
  let m = Progs.stack_smash_prog ~bad:true () in
  let sa = Janitizer.Static_analyzer.analyze m in
  let reports = Jt_jasan.Jasan.elision_report sa in
  let addr = (Jt_obj.Objfile.find_symbol m "victim" |> Option.get).vaddr in
  let r =
    List.find (fun (x : Jt_jasan.Jasan.fn_report) -> x.er_fn = addr) reports
  in
  (* the scaled-index store is the only Breg-base + index access *)
  List.iter
    (fun (a, c) ->
      match c with
      | Jt_jasan.Jasan.Vsa_frame | Jt_jasan.Jasan.Dom_elided _ ->
        Alcotest.failf "unsafe elision of 0x%x (%s)" a
          (Jt_jasan.Jasan.claim_name c)
      | _ -> ())
    r.er_claims;
  Alcotest.(check bool)
    "indexed store keeps a dynamic check" true
    (List.exists
       (fun (_, c) ->
         c = Jt_jasan.Jasan.Checked || c = Jt_jasan.Jasan.Scev_covered)
       r.er_claims)

(* Overlap regression: on a program mixing every claim source (canary
   handling, frame policy, VSA-provable masked store, SCEV-hoistable
   loop, repeated heap access), the passes must partition the accesses —
   elision_report raises Invalid_argument on any double claim, and each
   access address appears exactly once. *)
let test_claims_are_a_partition () =
  let funcs =
    [
      func "victim"
        (Abi.frame_enter ~canary:true ~locals:32 ()
        @ [
            call_import "read_int";
            mov Reg.r3 Reg.r0;
            andi Reg.r3 7;
            lea Reg.r2 (mem_b ~disp:(-32) Reg.fp);
            st (mem_bi ~scale:2 Reg.r2 Reg.r3) Reg.r3;
            sti (mem_b ~disp:(-12) Reg.fp) 9;
            (* above the frame reservation (caller's frame): the VSA
               proof cannot cover it, so the frame *policy* claims it *)
            ld Reg.r4 (mem_b ~disp:8 Reg.fp);
            movi Reg.r0 3;
          ]
        @ Abi.frame_leave ~canary:true ~locals:32 ());
      func "main"
        ([
           movi Reg.r0 64;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r1 0;
           label "fill";
           cmpi Reg.r1 8;
           jcc Insn.Ge "done";
           st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
           addi Reg.r1 1;
           jmp "fill";
           label "done";
           ld Reg.r4 (mem_b ~disp:0 Reg.r6);
           ld Reg.r5 (mem_b ~disp:0 Reg.r6);
           call "victim";
         ]
        @ Progs.exit0);
    ]
  in
  let m, reports = report_for ~name:"elmix" funcs in
  List.iter
    (fun (r : Jt_jasan.Jasan.fn_report) ->
      let addrs = List.map fst r.er_claims in
      Alcotest.(check int)
        "each access claimed exactly once"
        (List.length addrs)
        (List.length (List.sort_uniq compare addrs)))
    reports;
  (* the mix really exercises distinct sources *)
  let all = List.concat_map (fun r -> r.Jt_jasan.Jasan.er_claims) reports in
  let has c = List.exists (fun (_, c') -> c' = c) all in
  Alcotest.(check bool) "has scev claim" true (has Jt_jasan.Jasan.Scev_covered);
  Alcotest.(check bool) "has vsa-frame claim" true (has Jt_jasan.Jasan.Vsa_frame);
  Alcotest.(check bool)
    "has dom claim" true
    (List.exists
       (fun (_, c) ->
         match c with Jt_jasan.Jasan.Dom_elided _ -> true | _ -> false)
       all);
  Alcotest.(check bool)
    "has policy-frame claim" true
    (has Jt_jasan.Jasan.Policy_frame);
  ignore m;
  (* and the mixed program is differentially safe *)
  let mixed =
    build ~name:"elmix" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main" funcs
  in
  ignore
    (check_differential "mixed program"
       ~registry:(Progs.registry_for mixed)
       ~main:"elmix")

(* The emitted rule file's stats must agree with the claim report: the
   number of MEM_CHECK rules (and the "checks" stat) equals the number
   of Checked claims, and the elision stats count the elided claims. *)
let test_stats_match_claims () =
  let m, reports = report_for ~name:"elfr" (frame_prog ()) in
  let tool, _ = Jt_jasan.Jasan.create () in
  let files = Janitizer.Driver.analyze_all ~tool (Progs.registry_for m) in
  let f = List.assoc "elfr" files in
  let all = List.concat_map (fun r -> r.Jt_jasan.Jasan.er_claims) reports in
  let count p = List.length (List.filter (fun (_, c) -> p c) all) in
  let stat k = List.assoc k f.Jt_rules.Rules.rf_stats in
  Alcotest.(check int)
    "checks stat = Checked claims"
    (count (fun c -> c = Jt_jasan.Jasan.Checked))
    (stat "checks");
  Alcotest.(check int)
    "elide_frame stat = Vsa_frame claims"
    (count (fun c -> c = Jt_jasan.Jasan.Vsa_frame))
    (stat "elide_frame");
  Alcotest.(check int)
    "elide_dom stat = Dom_elided claims"
    (count (fun c ->
         match c with Jt_jasan.Jasan.Dom_elided _ -> true | _ -> false))
    (stat "elide_dom");
  Alcotest.(check int)
    "mem_check rules = Checked claims"
    (count (fun c -> c = Jt_jasan.Jasan.Checked))
    (List.length
       (List.filter
          (fun r -> r.Jt_rules.Rules.rule_id = Jt_jasan.Jasan.Ids.mem_check)
          f.rf_rules))

let () =
  Alcotest.run "elide"
    [
      ( "differential",
        [
          Alcotest.test_case "workloads" `Slow test_workloads_differential;
          Alcotest.test_case "injections" `Quick test_injections_differential;
        ] );
      ( "claims",
        [
          Alcotest.test_case "dominating check" `Quick test_dominating_check_elided;
          Alcotest.test_case "call barrier" `Quick test_call_is_barrier;
          Alcotest.test_case "vsa frame" `Quick test_vsa_frame_elided;
          Alcotest.test_case "vsa frame end to end" `Quick
            test_vsa_frame_fires_end_to_end;
          Alcotest.test_case "smash not elided" `Quick test_smash_store_not_elided;
          Alcotest.test_case "partition" `Quick test_claims_are_a_partition;
          Alcotest.test_case "stats match" `Quick test_stats_match_claims;
        ] );
    ]
