(* The AOT emitter (Jt_emit): differential equivalence against the
   hybrid DBT, the zero-translation-overhead cycle identity, refusal
   verdicts, the map codec, and JELF round-trips of emitted objects. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl
module Emit = Jt_emit.Emit

let observable (r : Jt_vm.Vm.result) = (r.r_status, r.r_output)

let vset (r : Jt_vm.Vm.result) =
  List.sort_uniq compare
    (List.map (fun v -> (v.Jt_vm.Vm.v_kind, v.v_addr)) r.r_violations)

let emit_asan ?(elide = true) ~registry ~main () =
  match
    Emit.emit_program ~tool:(Emit.Asan { elide }) ~registry ~main ()
  with
  | Ok p -> p
  | Error (n, r) ->
    Alcotest.failf "emit refused %s: %s" n (Emit.refusal_to_string r)

let run_hybrid ?(elide = true) ~registry ~main () =
  let tool, _ = Jt_jasan.Jasan.create ~elide () in
  Janitizer.Driver.run ~tool ~registry ~main ()

(* An uninstrumented run under the same allocator policy (redzones, but
   no checks): the honest cost baseline for the zero-translation-overhead
   identity, since allocator interposition itself shifts heap layout and
   charges hook cycles in every sanitized arm. *)
let run_baseline ~registry ~main () =
  Janitizer.Driver.run_plain
    ~setup:(fun vm -> Jt_jasan.Jasan.Rt.attach (Jt_jasan.Jasan.Rt.create ()) vm)
    ~registry ~main ()

(* The full differential the bench gates on: same status, output and
   violation set as the hybrid DBT, and the emitted run's instruction
   and cycle counts decompose exactly into baseline + materialized
   instrumentation — nothing left over for translation to hide in. *)
let check_differential label ~registry ~main =
  let p = emit_asan ~registry ~main () in
  let e = Emit.run p in
  let h = run_hybrid ~registry ~main () in
  let b = run_baseline ~registry ~main () in
  Alcotest.(check bool)
    (label ^ " status+output = hybrid")
    true
    (observable e.ro_outcome.o_result = observable h.o_result);
  Alcotest.(check bool)
    (label ^ " violations = hybrid")
    true
    (vset e.ro_outcome.o_result = vset h.o_result);
  Alcotest.(check int)
    (label ^ " icount = hybrid + sites + pins")
    (h.o_result.r_icount + e.ro_sites + e.ro_pins)
    e.ro_outcome.o_result.r_icount;
  Alcotest.(check int)
    (label ^ " icount = baseline + sites + pins")
    (b.o_result.r_icount + e.ro_sites + e.ro_pins)
    e.ro_outcome.o_result.r_icount;
  Alcotest.(check int)
    (label ^ " cycles = baseline + checks + pin hops")
    (b.o_result.r_cycles + e.ro_check_cost + e.ro_pins)
    e.ro_outcome.o_result.r_cycles;
  e

let emittable (s : Jt_workloads.Sheet.t) =
  match s.s_lang with
  | Jt_workloads.Sheet.C -> true
  | Cxx | Fortran | Mixed_cf -> false

(* Every C workload: full differential.  Cxx/Fortran closures carry the
   features a static rewriter must refuse (exception tables, runtime
   conventions) — assert the typed verdict instead. *)
let test_workloads_differential () =
  List.iter
    (fun (s : Jt_workloads.Sheet.t) ->
      let w = Jt_workloads.Specgen.build s in
      if emittable s then
        ignore
          (check_differential s.s_name ~registry:w.w_registry ~main:s.s_name)
      else
        match
          Emit.emit_program
            ~tool:(Emit.Asan { elide = true })
            ~registry:w.w_registry ~main:s.s_name ()
        with
        | Ok _ -> Alcotest.failf "%s: expected a feature refusal" s.s_name
        | Error (_, Emit.Unsupported_feature _) -> ()
        | Error (n, r) ->
          Alcotest.failf "%s: wrong refusal %s: %s" s.s_name n
            (Emit.refusal_to_string r))
    Jt_workloads.Sheet.all

(* Injected violations: the emitted checks must find exactly what the
   hybrid finds, at the same data addresses. *)
let test_injections_differential () =
  List.iter
    (fun (label, m) ->
      let e =
        check_differential label
          ~registry:(Progs.registry_for m)
          ~main:m.Jt_obj.Objfile.name
      in
      Alcotest.(check bool)
        (label ^ " still detects")
        true
        (vset e.ro_outcome.o_result <> []))
    [
      ("heap overflow", Progs.heap_overflow_prog ());
      ("use after free", Progs.uaf_prog ());
      ("stack smash", Progs.stack_smash_prog ~bad:true ());
    ]

(* Juliet CWE-122, both variants of a slice of cases: detection parity
   between the emitted binary and the hybrid DBT. *)
let test_juliet_differential () =
  List.iteri
    (fun i (c : Jt_workloads.Juliet.case) ->
      if i < 40 then
        List.iter
          (fun bad ->
            let m = Jt_workloads.Juliet.build_case c ~bad in
            let registry = Jt_workloads.Juliet.registry_for m in
            ignore
              (check_differential
                 (Printf.sprintf "juliet %d bad=%b" c.c_id bad)
                 ~registry ~main:m.Jt_obj.Objfile.name))
          [ false; true ])
    Jt_workloads.Juliet.cases

(* dlopen'd plugins are registry extras: emitted opportunistically and
   instrumented statically where the hybrid falls back to dynamic
   instrumentation — observables still agree. *)
let test_dlopen_plugin () =
  let m = Progs.dlopen_prog () in
  let e =
    check_differential "dlopen" ~registry:(Progs.registry_for m) ~main:"dlo"
  in
  Alcotest.(check string) "plugin output" "777\n" e.ro_outcome.o_result.r_output

(* JIT code is invisible to any static rewriter; the emitted binary
   still runs it natively with identical observables. *)
let test_jit_program () =
  let m = Progs.jit_prog () in
  let e =
    check_differential "jit" ~registry:(Progs.registry_for m) ~main:"jitprog"
  in
  Alcotest.(check string) "jit output" "123\n" e.ro_outcome.o_result.r_output

(* -- JCFI emission -- *)

let run_emit_cfi m =
  let registry = Progs.registry_for m in
  let main = m.Jt_obj.Objfile.name in
  match
    Emit.emit_program ~tool:(Emit.Cfi Jt_jcfi.Jcfi.default_config) ~registry
      ~main ()
  with
  | Error (n, r) ->
    Alcotest.failf "cfi emit refused %s: %s" n (Emit.refusal_to_string r)
  | Ok p -> Emit.run p

let kinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let test_cfi_clean_and_detect () =
  (* benign control flow (indirect calls, jump table, lazy PLT) is
     accepted... *)
  List.iter
    (fun (label, m, expected) ->
      let e = run_emit_cfi m in
      Alcotest.(check (list string)) (label ^ " clean") []
        (kinds e.ro_outcome.o_result);
      Alcotest.(check string) (label ^ " output") expected
        e.ro_outcome.o_result.r_output)
    [
      ("sum", Progs.sum_prog (), Progs.sum_expected 50);
      ("indirect", Progs.indirect_prog (), "222\n");
      ("dlopen", Progs.dlopen_prog (), "777\n");
    ];
  (* ...and a mid-function indirect call is flagged where the hybrid
     flags it: the violation address is the data-borne target, which
     address pinning keeps in old coordinates. *)
  let m =
    build ~name:"hijack2" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "helper" [ movi Reg.r0 5; addi Reg.r0 10; ret ];
        func "main"
          ([
             addr_of_func ~pic:false Reg.r1 "helper";
             addi Reg.r1 6;
             call_reg Reg.r1;
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  let e = run_emit_cfi m in
  let tool, _ = Jt_jcfi.Jcfi.create () in
  let h =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"hijack2"
      ()
  in
  Alcotest.(check bool)
    "icall hijack detected" true
    (List.mem "cfi-icall" (kinds e.ro_outcome.o_result));
  Alcotest.(check bool)
    "same icall violations as hybrid" true
    (vset e.ro_outcome.o_result = vset h.o_result)

(* -- refusal verdicts -- *)

let emit_main_of m =
  let tool, _ = Jt_jasan.Jasan.create () in
  let rules =
    List.assoc m.Jt_obj.Objfile.name
      (Janitizer.Driver.analyze_all ~tool [ m ])
  in
  Emit.emit_module ~tool:(Emit.Asan { elide = true }) ~rules m

let test_feature_refusals () =
  List.iter
    (fun feature ->
      let m =
        build ~name:"feat" ~kind:Jt_obj.Objfile.Exec_nonpic
          ~deps:[ "libc.so" ] ~features:[ feature ] ~entry:"main"
          [ func "main" Progs.exit0 ]
      in
      match emit_main_of m with
      | Error (Emit.Unsupported_feature ("feat", _)) -> ()
      | Error r -> Alcotest.failf "wrong refusal: %s" (Emit.refusal_to_string r)
      | Ok _ -> Alcotest.fail "expected refusal")
    [ Jt_obj.Objfile.Cxx_exceptions; Jt_obj.Objfile.Fortran_runtime ]

let test_digest_mismatch_rejected () =
  let m = Progs.sum_prog () in
  let other = Progs.sum_prog ~n:51 () in
  let tool, _ = Jt_jasan.Jasan.create () in
  let rules = List.assoc "sum" (Janitizer.Driver.analyze_all ~tool [ other ]) in
  Alcotest.check_raises "stale rules rejected"
    (Invalid_argument "Jt_emit.emit_module: rules digest does not match module")
    (fun () ->
      ignore (Emit.emit_module ~tool:(Emit.Asan { elide = true }) ~rules m))

(* -- the map codec -- *)

let sample_map () =
  {
    Emit.em_digest = String.make 16 'd';
    em_tool = "jasan+elide";
    em_text = 0x5000;
    em_insns =
      [|
        { Emit.mi_old = 0x400; mi_new = 0x5000; mi_site = true };
        { Emit.mi_old = 0x406; mi_new = 0x5008; mi_site = false };
      |];
    em_pins = [| (0x400, 0x5000) |];
  }

let test_map_roundtrip () =
  let em = sample_map () in
  let em' = Emit.decode_map (Emit.encode_map em) in
  Alcotest.(check bool) "map round-trips" true (em = em')

let test_map_rejects_garbage () =
  let enc = Emit.encode_map (sample_map ()) in
  let expect_fail label s =
    match Emit.decode_map s with
    | _ -> Alcotest.failf "%s: decode should have failed" label
    | exception Failure _ -> ()
  in
  expect_fail "bad magic" ("XXXX" ^ String.sub enc 4 (String.length enc - 4));
  expect_fail "truncated" (String.sub enc 0 (String.length enc - 3));
  expect_fail "trailing bytes" (enc ^ "\x00")

(* -- emitted-object structure -- *)

let test_emitted_object_shape () =
  let m = Progs.sum_prog () in
  let m' = Result.get_ok (emit_main_of m) in
  Alcotest.(check string) "same name" m.Jt_obj.Objfile.name m'.name;
  Alcotest.(check bool)
    "metadata unchanged" true
    (m.entry = m'.entry && m.symbols = m'.symbols && m.relocs = m'.relocs
   && m.imports = m'.imports && m.exports = m'.exports && m.deps = m'.deps);
  let text =
    Option.get (Jt_obj.Objfile.find_section m' Emit.text_section_name)
  in
  Alcotest.(check bool) "text is code" true text.is_code;
  let em = Option.get (Emit.read_map m') in
  Alcotest.(check string)
    "map records original digest"
    (Jt_obj.Objfile.digest m)
    em.em_digest;
  Alcotest.(check int) "map text base" text.vaddr em.em_text;
  Alcotest.(check bool) "has pins" true (Array.length em.em_pins > 0);
  (* entry is pinned *)
  let entry = Option.get m.entry in
  Alcotest.(check bool)
    "entry pinned" true
    (Array.exists (fun (old, _) -> old = entry) em.em_pins)

(* -- qcheck: emitted JELF round-trips and re-analyzes -- *)

let corpus =
  [
    (fun () -> Progs.sum_prog ());
    (fun () -> Progs.heap_overflow_prog ());
    (fun () -> Progs.uaf_prog ());
    (fun () -> Progs.stack_smash_prog ~bad:true ());
    (fun () -> Progs.dlopen_prog ());
    (fun () -> Progs.indirect_prog ());
    (fun () -> Progs.jit_prog ());
  ]

let prop_emitted_jelf_roundtrip =
  QCheck2.Test.make ~name:"emitted JELF re-reads and re-analyzes" ~count:20
    (QCheck2.Gen.int_bound (List.length corpus - 1))
    (fun i ->
      let m = (List.nth corpus i) () in
      let m' = Result.get_ok (emit_main_of m) in
      let back = Jt_obj.Jelf.read (Jt_obj.Jelf.write m') in
      (* byte-exact container round-trip... *)
      assert (back = m');
      assert (Jt_obj.Objfile.digest back = Jt_obj.Objfile.digest m');
      (* ...the read-back object still analyzes (disassembly, CFG,
         helper passes over the patched + emitted sections)... *)
      let sa = Janitizer.Static_analyzer.analyze back in
      assert (Janitizer.Static_analyzer.function_entries sa <> []);
      (* ...and substituting it into the program changes nothing. *)
      let registry = Progs.registry_for m in
      let main = m.Jt_obj.Objfile.name in
      let p = emit_asan ~registry ~main () in
      let subst =
        List.map
          (fun (r : Jt_obj.Objfile.t) ->
            if String.equal r.name main then back else r)
          p.p_registry
      in
      let e = Emit.run p in
      let e' = Emit.run { p with p_registry = subst } in
      observable e.ro_outcome.o_result = observable e'.ro_outcome.o_result
      && vset e.ro_outcome.o_result = vset e'.ro_outcome.o_result)

(* -- unload hygiene -- *)

(* dlclose must drop the plugin's sites and pins; a second dlopen (new
   base slot) reinstalls them at the new addresses. *)
let test_dlclose_reopen () =
  let prog =
    build ~name:"dlcycle" ~kind:Jt_obj.Objfile.Exec_nonpic
      ~deps:[ "libc.so" ] ~entry:"main"
      ~datas:
        [
          data "modname" [ Dbytes "plugin.so\x00" ];
          data "symname" [ Dbytes "answer\x00" ];
        ]
      [
        func "call_plugin"
          [
            addr_of_data ~pic:false Reg.r0 "modname";
            syscall Sysno.dlopen;
            mov Reg.r5 Reg.r0;
            addr_of_data ~pic:false Reg.r1 "symname";
            syscall Sysno.dlsym;
            call_reg Reg.r0;
            call_import "print_int";
            mov Reg.r0 Reg.r5;
            syscall Sysno.dlclose;
            ret;
          ];
        func "main" ([ call "call_plugin"; call "call_plugin" ] @ Progs.exit0);
      ]
  in
  let registry = [ prog; Progs.libc; Progs.plugin ] in
  let e = check_differential "dlcycle" ~registry ~main:"dlcycle" in
  Alcotest.(check string)
    "both rounds ran" "777\n777\n" e.ro_outcome.o_result.r_output

let () =
  Alcotest.run "emit"
    [
      ( "differential",
        [
          Alcotest.test_case "workloads" `Slow test_workloads_differential;
          Alcotest.test_case "injections" `Quick test_injections_differential;
          Alcotest.test_case "juliet slice" `Slow test_juliet_differential;
          Alcotest.test_case "dlopen plugin" `Quick test_dlopen_plugin;
          Alcotest.test_case "jit program" `Quick test_jit_program;
          Alcotest.test_case "dlclose/reopen" `Quick test_dlclose_reopen;
        ] );
      ( "cfi",
        [ Alcotest.test_case "clean + detect" `Quick test_cfi_clean_and_detect ]
      );
      ( "refusals",
        [
          Alcotest.test_case "features" `Quick test_feature_refusals;
          Alcotest.test_case "digest mismatch" `Quick test_digest_mismatch_rejected;
        ] );
      ( "map",
        [
          Alcotest.test_case "roundtrip" `Quick test_map_roundtrip;
          Alcotest.test_case "garbage" `Quick test_map_rejects_garbage;
        ] );
      ( "object",
        [
          Alcotest.test_case "shape" `Quick test_emitted_object_shape;
          QCheck_alcotest.to_alcotest prop_emitted_jelf_roundtrip;
        ] );
    ]
