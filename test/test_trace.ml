(* The structured trace layer: ring-buffer semantics, the disabled-path
   no-op contract, JSONL round-trips, violation provenance stamped from
   live runs, phase spans, and the relocated entry-accounting invariant
   (both that real runs satisfy it and that a seeded mismatch fires). *)

open Jt_trace.Trace

(* Every test leaves the global sink disabled and empty so suites don't
   contaminate each other. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      disable ();
      clear ())
    f

(* -- ring buffer -- *)

let test_ring_wraparound () =
  enable ~capacity:8 ();
  for pc = 1 to 20 do
    emit (Block_exec { pc })
  done;
  Alcotest.(check int) "emitted counts everything" 20 (emitted ());
  Alcotest.(check int) "dropped = emitted - capacity" 12 (dropped ());
  let pcs =
    List.map (function Block_exec { pc } -> pc | _ -> -1) (events ())
  in
  Alcotest.(check (list int)) "last 8 events, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ] pcs

let test_ring_below_capacity () =
  enable ~capacity:64 ();
  emit (Block_exec { pc = 1 });
  emit (Block_exec { pc = 2 });
  Alcotest.(check int) "two emitted" 2 (emitted ());
  Alcotest.(check int) "none dropped" 0 (dropped ());
  Alcotest.(check int) "two buffered" 2 (List.length (events ()));
  clear ();
  Alcotest.(check int) "clear empties" 0 (List.length (events ()));
  Alcotest.(check bool) "clear keeps enabled" true (is_enabled ())

let test_bad_capacity () =
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Trace.enable: capacity must be positive") (fun () ->
      enable ~capacity:0 ())

(* -- disabled path -- *)

let test_disabled_noop () =
  Alcotest.(check bool) "disabled by default" false (is_enabled ());
  (* the emit-site contract is [if is_enabled () then emit ...]; but even a
     raw emit with no ring must be a silent no-op *)
  emit (Block_exec { pc = 42 });
  Alcotest.(check int) "nothing recorded" 0 (emitted ());
  Alcotest.(check (list int)) "no events" []
    (List.map (fun _ -> 0) (events ()));
  enable ~capacity:4 ();
  emit (Block_exec { pc = 1 });
  disable ();
  Alcotest.(check bool) "disable clears the flag" false (is_enabled ());
  Alcotest.(check int) "buffer still readable after disable" 1
    (List.length (events ()))

(* -- JSONL round-trip -- *)

let all_constructors =
  [
    Block_translate { pc = 0x400100; insns = 7; origin = Static };
    Block_translate { pc = 0x400200; insns = 1; origin = Dynamic };
    Block_exec { pc = 0x400100 };
    Chain_link { from_pc = 0x400100; to_pc = 0x400200 };
    Chain_sever { from_pc = 0x400200; to_pc = 0x400300 };
    Ibl_hit { site = 0x400110; target = 0x400400 };
    Ibl_miss { site = 0x400110; target = 0x400500 };
    Trace_build { head = 0x400100; blocks = 5 };
    Trace_teardown { head = 0x400100 };
    Flush_range { start = 0x20000000; len = 64 };
    Module_load { name = "libc.so"; base = 0x10000000 };
    Module_unload { name = "plugin.so" };
    Dlopen { name = "plugin.so"; handle = 3 };
    Dlclose { name = "plugin.so"; ok = true };
    Dlclose { name = "libc.so"; ok = false };
    Plt_resolve { caller = 0x400120; target = 0x10000010 };
    Shadow_poison { addr = 0x50000000; len = 32; state = 1 };
    Shadow_unpoison { addr = 0x50000000; len = 32 };
    Check_elide
      { insn = 0x400120; fn = 0x400100; reason = "dom"; witness = 0x400110 };
    Violation
      {
        kind = "heap-overflow";
        addr = 0x50000020;
        pc = 0x400130;
        vmodule = "heap_ov";
        origin = Static;
      };
    Cfi_table { name = "main"; entries = 12 };
    Phase_begin { phase = Analyze };
    Phase_end { phase = Run; host_s = 0.25; cycles = 1234 };
  ]

let test_jsonl_roundtrip () =
  List.iter
    (fun ev ->
      let line = event_to_json ev in
      match event_of_json line with
      | Some ev' ->
        Alcotest.(check string)
          ("round-trip " ^ kind_name ev)
          line (event_to_json ev');
        Alcotest.(check bool) ("equal " ^ kind_name ev) true (ev = ev')
      | None -> Alcotest.failf "unparsable line for %s: %s" (kind_name ev) line)
    all_constructors

let test_jsonl_escaping () =
  let ev = Module_load { name = "we\"ird\\na\nme"; base = 1 } in
  match event_of_json (event_to_json ev) with
  | Some ev' -> Alcotest.(check bool) "escaped name survives" true (ev = ev')
  | None -> Alcotest.fail "escaped line did not parse"

let test_jsonl_malformed () =
  Alcotest.(check bool) "garbage" true (event_of_json "not json" = None);
  Alcotest.(check bool) "unknown tag" true
    (event_of_json {|{"ev": "zorp", "pc": 1}|} = None);
  Alcotest.(check bool) "missing field" true
    (event_of_json {|{"ev": "block_exec"}|} = None)

let test_export_matches_events () =
  enable ~capacity:16 ();
  List.iter emit all_constructors;
  let tmp = Filename.temp_file "jt_trace" ".jsonl" in
  let oc = open_out tmp in
  export oc;
  close_out oc;
  let ic = open_in tmp in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove tmp;
  let parsed = List.rev_map event_of_json !lines in
  Alcotest.(check int) "one line per buffered event"
    (List.length (events ()))
    (List.length parsed);
  Alcotest.(check bool) "all lines parse and match" true
    (List.for_all2 (fun e p -> p = Some e) (events ()) parsed)

(* -- live wiring: a real run emits, a disabled run is bit-identical -- *)

let run_sum () =
  let m = Progs.sum_prog ~n:20 () in
  let tool, _ = Jt_jasan.Jasan.create () in
  Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"sum" ()

let test_live_emission_and_identity () =
  disable ();
  let off = run_sum () in
  enable ();
  let on_ = run_sum () in
  let counts = kind_counts () in
  disable ();
  let get k = try List.assoc k counts with Not_found -> 0 in
  Alcotest.(check bool) "block_translate events" true (get "block_translate" > 0);
  Alcotest.(check bool) "block_exec events" true (get "block_exec" > 0);
  Alcotest.(check bool) "chain_link events" true (get "chain_link" > 0);
  Alcotest.(check bool) "module_load events" true (get "module_load" > 0);
  Alcotest.(check bool) "phase_end events" true (get "phase_end" > 0);
  (* tracing only observes: simulated results are bit-identical *)
  Alcotest.(check bool) "results identical on/off" true
    (off.Janitizer.Driver.o_result = on_.Janitizer.Driver.o_result)

let test_violation_provenance () =
  enable ();
  let m = Progs.heap_overflow_prog () in
  let tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"heap_ov" ()
  in
  disable ();
  let vs = o.Janitizer.Driver.o_result.Jt_vm.Vm.r_violations in
  Alcotest.(check bool) "run reported a violation" true (vs <> []);
  let reported = List.hd vs in
  let traced =
    List.filter_map
      (function
        | Violation { kind; addr; pc = _; vmodule; origin } ->
          Some (kind, addr, vmodule, origin)
        | _ -> None)
      (events ())
  in
  match traced with
  | [] -> Alcotest.fail "no Violation event captured"
  | (kind, addr, vmodule, origin) :: _ ->
    Alcotest.(check string) "kind matches the VM report"
      reported.Jt_vm.Vm.v_kind kind;
    Alcotest.(check int) "addr matches" reported.Jt_vm.Vm.v_addr addr;
    Alcotest.(check string) "module resolved" "heap_ov" vmodule;
    Alcotest.(check bool) "hybrid run: block origin is static" true
      (origin = Static)

(* -- phase spans -- *)

let test_phase_spans () =
  enable ();
  let r =
    in_phase Analyze (fun () ->
        phase_add_cycles Analyze 100;
        41 + 1)
  in
  Alcotest.(check int) "in_phase passes the result through" 42 r;
  in_phase Analyze (fun () -> phase_add_cycles Analyze 11);
  let totals = phase_totals () in
  disable ();
  let a = List.find (fun p -> p.ps_phase = Analyze) totals in
  Alcotest.(check int) "two spans" 2 a.ps_spans;
  Alcotest.(check int) "cycles accumulated" 111 a.ps_cycles;
  Alcotest.(check bool) "host time non-negative" true (a.ps_host_s >= 0.0);
  let ends =
    List.filter_map
      (function Phase_end { phase = Analyze; cycles; _ } -> Some cycles | _ -> None)
      (events ())
  in
  Alcotest.(check (list int)) "per-span cycles in Phase_end events" [ 100; 11 ]
    ends

(* -- entry accounting -- *)

let test_entry_accounting_holds_live () =
  (* [Dbt.run] asserts the identity itself; a run completing without
     [Invariant_failure] plus an explicit re-check here covers both. *)
  let m = Progs.sum_prog ~n:10 () in
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:"sum";
  Jt_dbt.Dbt.run engine;
  let s = Jt_dbt.Dbt.stats engine in
  Alcotest.(check int) "identity balances"
    (s.Jt_dbt.Dbt.st_block_execs + s.st_decode_faults)
    (s.st_dispatch_entries + s.st_chain_hits + s.st_ibl_hits
   + s.st_trace_interior);
  Alcotest.(check int) "no decode faults on a clean program" 0
    s.st_decode_faults

let test_entry_accounting_decode_fault () =
  (* Jumping into unmapped memory builds an empty block: one dispatcher
     entry, zero executions — the identity only balances through
     [st_decode_faults]. *)
  let open Jt_asm.Builder in
  let m =
    build ~name:"wild" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [ func "main" [ Dsl.movi Jt_isa.Reg.r1 0x00DEAD00; Dsl.jmp_reg Jt_isa.Reg.r1 ] ]
  in
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:"wild";
  Jt_dbt.Dbt.run engine;
  let s = Jt_dbt.Dbt.stats engine in
  (match vm.Jt_vm.Vm.status with
  | Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault _) -> ()
  | _ -> Alcotest.fail "expected a decode fault");
  Alcotest.(check int) "one decode fault counted" 1 s.Jt_dbt.Dbt.st_decode_faults;
  Alcotest.(check int) "identity still balances"
    (s.st_block_execs + s.st_decode_faults)
    (s.st_dispatch_entries + s.st_chain_hits + s.st_ibl_hits
   + s.st_trace_interior)

let test_entry_accounting_seeded_mismatch () =
  (* balanced: fine *)
  entry_accounting ~dispatch:3 ~chain:4 ~ibl:2 ~trace_interior:1
    ~decode_faults:1 ~block_execs:9;
  (* seeded mismatch: must raise, enabled or not *)
  let fires () =
    match
      entry_accounting ~dispatch:3 ~chain:4 ~ibl:2 ~trace_interior:1
        ~decode_faults:0 ~block_execs:9
    with
    | () -> false
    | exception Invariant_failure _ -> true
  in
  Alcotest.(check bool) "mismatch raises while disabled" true (fires ());
  enable ();
  Alcotest.(check bool) "mismatch raises while enabled" true (fires ())

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick (isolated test_ring_wraparound);
          Alcotest.test_case "below capacity" `Quick
            (isolated test_ring_below_capacity);
          Alcotest.test_case "bad capacity" `Quick (isolated test_bad_capacity);
        ] );
      ( "disabled",
        [ Alcotest.test_case "no-op" `Quick (isolated test_disabled_noop) ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick (isolated test_jsonl_roundtrip);
          Alcotest.test_case "escaping" `Quick (isolated test_jsonl_escaping);
          Alcotest.test_case "malformed" `Quick (isolated test_jsonl_malformed);
          Alcotest.test_case "export" `Quick
            (isolated test_export_matches_events);
        ] );
      ( "wiring",
        [
          Alcotest.test_case "live emission + identity" `Quick
            (isolated test_live_emission_and_identity);
          Alcotest.test_case "violation provenance" `Quick
            (isolated test_violation_provenance);
          Alcotest.test_case "phase spans" `Quick (isolated test_phase_spans);
        ] );
      ( "entry-accounting",
        [
          Alcotest.test_case "holds on a live run" `Quick
            (isolated test_entry_accounting_holds_live);
          Alcotest.test_case "decode faults balance" `Quick
            (isolated test_entry_accounting_decode_fault);
          Alcotest.test_case "seeded mismatch fires" `Quick
            (isolated test_entry_accounting_seeded_mismatch);
        ] );
    ]
