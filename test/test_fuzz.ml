(* Differential soundness fuzzer: a small deterministic slice of the
   suite the bench runs at full size.  The oracle itself (expected
   detection matrix, bit-identical observables, exact icount
   accounting) lives inside [Jt_fuzz.Fuzz]; these tests assert it holds
   and that the generator is reproducible. *)

open Jt_fuzz

let test_suite_sound () =
  let r = Fuzz.run_suite ~base_seed:1 ~seeds:6 () in
  Alcotest.(check int) "cases" 36 r.rp_cases;
  Alcotest.(check int)
    "runs = cases x schemes"
    (36 * List.length Fuzz.schemes)
    r.rp_runs;
  List.iter
    (fun (m : Fuzz.mismatch) ->
      Printf.printf "MISMATCH %s %s: %s\n" m.mm_case m.mm_scheme m.mm_what)
    r.rp_mismatches;
  Alcotest.(check int) "zero soundness mismatches" 0 (List.length r.rp_mismatches)

let row r scheme =
  List.find (fun (x : Fuzz.matrix_row) -> x.mx_scheme = scheme) r.Fuzz.rp_matrix

let test_matrix_shape () =
  (* 6 seeds -> 6 benign + 30 injected cases; PIC on odd seed index *)
  let r = Fuzz.run_suite ~base_seed:1 ~seeds:6 () in
  let check scheme ~tp ~fn ~tn ~fp ~refused =
    let x = row r scheme in
    Alcotest.(check (list int))
      (scheme ^ " row")
      [ tp; fn; tn; fp; refused ]
      [ x.mx_tp; x.mx_fn; x.mx_tn; x.mx_fp; x.mx_refused ]
  in
  check "native" ~tp:0 ~fn:30 ~tn:6 ~fp:0 ~refused:0;
  check "jasan-hybrid" ~tp:30 ~fn:0 ~tn:6 ~fp:0 ~refused:0;
  check "jasan-emitted" ~tp:30 ~fn:0 ~tn:6 ~fp:0 ~refused:0;
  (* stack smashes are the Valgrind-class FNs: no canary tracking *)
  check "valgrind" ~tp:24 ~fn:6 ~tn:6 ~fp:0 ~refused:0;
  (* non-PIC mains refuse: 3 seeds x 6 cases *)
  check "retrowrite" ~tp:15 ~fn:0 ~tn:3 ~fp:0 ~refused:18;
  check "lockdown" ~tp:0 ~fn:30 ~tn:6 ~fp:0 ~refused:0;
  check "bincfi" ~tp:0 ~fn:30 ~tn:6 ~fp:0 ~refused:0

let test_deterministic () =
  let a = Fuzz.run_suite ~base_seed:7 ~seeds:2 () in
  let b = Fuzz.run_suite ~base_seed:7 ~seeds:2 () in
  Alcotest.(check bool) "same seed, same report" true (a = b);
  let g1 = Fuzz.build { fz_seed = 7; fz_pic = false; fz_inject = None } in
  let g2 = Fuzz.build { fz_seed = 7; fz_pic = false; fz_inject = None } in
  Alcotest.(check string)
    "same seed, same program" (Jt_obj.Objfile.digest g1)
    (Jt_obj.Objfile.digest g2);
  let g3 = Fuzz.build { fz_seed = 8; fz_pic = false; fz_inject = None } in
  Alcotest.(check bool)
    "different seed, different program" true
    (Jt_obj.Objfile.digest g1 <> Jt_obj.Objfile.digest g3)

(* every injection kind is detectable in isolation by the hybrid, with
   exactly its expected kind *)
let test_each_injection_kind () =
  List.iter
    (fun inj ->
      let c = { Fuzz.fz_seed = 3; fz_pic = false; fz_inject = Some inj } in
      let m = Fuzz.build c in
      match Fuzz.run_scheme Fuzz.Hybrid m with
      | Fuzz.Refused why -> Alcotest.failf "hybrid refused: %s" why
      | Fuzz.Ran (r, _) ->
        let kinds =
          List.sort_uniq compare
            (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)
        in
        Alcotest.(check (list string))
          (Fuzz.inject_name inj)
          [ Fuzz.expected_kind inj ]
          kinds)
    Fuzz.injections

let test_rng_stable () =
  (* pin the splitmix64 stream: regenerating old seeds must never
     silently change the corpus *)
  let r = Fuzz.Rng.make 42 in
  let draws = List.init 6 (fun _ -> Fuzz.Rng.int r 1000) in
  Alcotest.(check (list int)) "stream" [ 706; 145; 929; 882; 625; 531 ] draws

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        [
          Alcotest.test_case "36-case suite is sound" `Slow test_suite_sound;
          Alcotest.test_case "matrix shape" `Slow test_matrix_shape;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "each injection kind" `Quick test_each_injection_kind;
          Alcotest.test_case "rng stream pinned" `Quick test_rng_stable;
        ] );
    ]
