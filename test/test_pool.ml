(* Jt_pool: result ordering, exception propagation through futures,
   pool reuse across batches, shutdown semantics, queue backpressure. *)

exception Boom of int

let test_map_ordering () =
  Jt_pool.Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 50 Fun.id in
      let ys = Jt_pool.Pool.map p (fun x -> x * x) xs in
      Alcotest.(check (list int)) "results in input order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_run_ordering_uneven_work () =
  (* Completion order differs from submission order when early jobs are
     the heavy ones; [map]'s contract is input order regardless. *)
  let work x =
    let n = if x mod 2 = 0 then 200_000 else 10 in
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc + i) land 0xFFFF
    done;
    (x, !acc land 0)
  in
  let xs = List.init 16 Fun.id in
  let ys = Jt_pool.Pool.run ~jobs:4 work xs in
  Alcotest.(check (list int)) "uneven work, stable order" xs (List.map fst ys)

let test_await_reraises () =
  Jt_pool.Pool.with_pool ~jobs:2 (fun p ->
      let ok = Jt_pool.Pool.submit p (fun () -> 41 + 1) in
      let bad = Jt_pool.Pool.submit p (fun () -> raise (Boom 7)) in
      Alcotest.(check int) "healthy future" 42 (Jt_pool.Pool.await ok);
      (match Jt_pool.Pool.await bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ()
      | exception e ->
        Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      (* awaiting the same failed future again re-raises again *)
      (match Jt_pool.Pool.await bad with
      | _ -> Alcotest.fail "expected Boom on re-await"
      | exception Boom 7 -> ());
      (* the worker that ran the failing job is still alive *)
      Alcotest.(check int) "worker survived the raise" 99
        (Jt_pool.Pool.await (Jt_pool.Pool.submit p (fun () -> 99))))

let test_map_leftmost_failure () =
  Jt_pool.Pool.with_pool ~jobs:3 (fun p ->
      match
        Jt_pool.Pool.map p
          (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
          [ 1; 2; 3; 4; 5; 6 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        Alcotest.(check int) "leftmost failing job wins" 2 x)

let test_pool_reuse () =
  Jt_pool.Pool.with_pool ~jobs:2 (fun p ->
      let a = Jt_pool.Pool.map p succ [ 1; 2; 3 ] in
      let b = Jt_pool.Pool.map p succ [ 10; 20; 30 ] in
      Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
      Alcotest.(check (list int)) "second batch on same pool" [ 11; 21; 31 ] b)

let test_shutdown () =
  let p = Jt_pool.Pool.create ~jobs:2 () in
  Alcotest.(check int) "size" 2 (Jt_pool.Pool.size p);
  let f = Jt_pool.Pool.submit p (fun () -> 5) in
  Jt_pool.Pool.shutdown p;
  Alcotest.(check int) "queued job finished before join" 5
    (Jt_pool.Pool.await f);
  Jt_pool.Pool.shutdown p;
  (* idempotent *)
  match Jt_pool.Pool.submit p (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_bounded_queue () =
  (* capacity 1 with a single worker: submits block for a free slot
     rather than buffering without bound, and every job still runs. *)
  Jt_pool.Pool.with_pool ~queue_capacity:1 ~jobs:1 (fun p ->
      let xs = List.init 32 Fun.id in
      Alcotest.(check (list int)) "all jobs ran, in order" xs
        (Jt_pool.Pool.map p Fun.id xs))

let test_create_validation () =
  match Jt_pool.Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs:0 must raise"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "pool"
    [
      ( "ordering",
        [
          Alcotest.test_case "map input order" `Quick test_map_ordering;
          Alcotest.test_case "uneven work" `Quick test_run_ordering_uneven_work;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "await re-raises" `Quick test_await_reraises;
          Alcotest.test_case "map leftmost failure" `Quick
            test_map_leftmost_failure;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "bounded queue" `Quick test_bounded_queue;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
    ]
