(* The DBT engine must be transparent: same output and exit status as
   native execution, with overhead showing up only in the cycle count. *)

let all_progs () =
  [
    ("sum", Progs.sum_prog (), Some (Progs.sum_expected 50));
    ("jit", Progs.jit_prog (), Some "123\n");
    ("dlopen", Progs.dlopen_prog (), Some "777\n");
    ("indirect", Progs.indirect_prog (), Some "222\n");
    ("smash-good", Progs.stack_smash_prog ~bad:false (), Some "3\n");
  ]

let run_null m =
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:m.Jt_obj.Objfile.name;
  Jt_dbt.Dbt.run engine;
  (Jt_vm.Vm.result vm, engine)

let test_transparency () =
  List.iter
    (fun (name, m, expected) ->
      let native = Progs.run_native m in
      let under_dbt, _ = run_null m in
      Alcotest.(check string)
        (name ^ " output") native.Jt_vm.Vm.r_output under_dbt.Jt_vm.Vm.r_output;
      (match expected with
      | Some e -> Alcotest.(check string) (name ^ " expected") e native.r_output
      | None -> ());
      Alcotest.(check bool)
        (name ^ " exits") true
        (match (native.r_status, under_dbt.r_status) with
        | Jt_vm.Vm.Exited a, Jt_vm.Vm.Exited b -> a = b
        | _ -> false);
      Alcotest.(check bool)
        (name ^ " dbt costs more") true
        (under_dbt.r_cycles > native.r_cycles);
      Alcotest.(check int)
        (name ^ " same instruction count") native.r_icount under_dbt.r_icount)
    (all_progs ())

let test_code_cache_reuse () =
  (* Loop-heavy program: executed blocks far exceed translated blocks. *)
  let m = Progs.sum_prog ~n:200 () in
  let _, engine = run_null m in
  let s = Jt_dbt.Dbt.stats engine in
  let translated = s.st_blocks_static + s.st_blocks_dynamic in
  Alcotest.(check bool) "reuse" true (s.st_block_execs > 4 * translated)

let test_jit_blocks_are_dynamic () =
  let m = Progs.jit_prog () in
  let _, engine = run_null m in
  let s = Jt_dbt.Dbt.stats engine in
  (* No rules registered at all, so with a null client everything is
     "dynamic"; the point here is that JIT code translates and runs. *)
  Alcotest.(check bool) "has dynamic blocks" true (s.st_blocks_dynamic > 0)

let test_cache_flush_invalidation () =
  (* Regenerate code at the same address with different constants; without
     flush handling the second call would return the stale value. *)
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  let gen value =
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", 0)
      [ Insn.Mov (Reg.r0, Insn.Imm value); Insn.Ret ]
    |> fst
  in
  let store_bytes code =
    List.concat
      (List.mapi
         (fun i c ->
           [
             movi Reg.r2 (Char.code c);
             I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:i Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
           ])
         (List.init (String.length code) (String.get code)))
  in
  let m =
    build ~name:"regen" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([ movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r6 Reg.r0 ]
          @ store_bytes (gen 1)
          @ [
              mov Reg.r0 Reg.r6; movi Reg.r1 64; syscall Sysno.cache_flush;
              call_reg Reg.r6; call_import "print_int";
            ]
          @ store_bytes (gen 2)
          @ [
              mov Reg.r0 Reg.r6; movi Reg.r1 64; syscall Sysno.cache_flush;
              call_reg Reg.r6; call_import "print_int";
            ]
          @ Progs.exit0);
      ]
  in
  let native = Progs.run_native m in
  Alcotest.(check string) "native sees regen" "1\n2\n" native.r_output;
  let under_dbt, _ = run_null m in
  Alcotest.(check string) "dbt sees regen" "1\n2\n" under_dbt.r_output

(* Chaining is a host-level dispatch optimization: results (cycles,
   output, violations) must be bit-identical with it off, while the
   dispatcher is entered far less often on loop-heavy code. *)
let test_chaining_equivalent_and_cheaper () =
  let m = Progs.sum_prog ~n:200 () in
  let go chain =
    let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
    let engine = Jt_dbt.Dbt.create ~vm ~chain () in
    Jt_vm.Vm.boot vm ~main:"sum";
    Jt_dbt.Dbt.run engine;
    (Jt_vm.Vm.result vm, Jt_dbt.Dbt.stats engine)
  in
  let r_on, s_on = go true in
  let r_off, s_off = go false in
  Alcotest.(check bool) "bit-identical results" true (r_on = r_off);
  Alcotest.(check int) "unchained never chains" 0 s_off.st_chain_hits;
  let transfers = s_on.st_chain_hits + s_on.st_dispatch_entries in
  Alcotest.(check bool) "chain-hit rate > 50%" true
    (2 * s_on.st_chain_hits > transfers);
  Alcotest.(check bool) ">= 2x fewer dispatcher entries" true
    (s_off.st_dispatch_entries >= 2 * s_on.st_dispatch_entries)

(* The fuel budget must fire inside a block, not only between blocks: a
   long straight-line block used to overshoot the budget arbitrarily (here
   the program would simply exit before fuel was ever checked). *)
let test_fuel_checked_mid_block () =
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  let m =
    build ~name:"fuelb" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [ func "main" (List.init 40 (fun _ -> addi Reg.r0 1) @ Progs.exit0) ]
  in
  let vm = Jt_vm.Vm.make ~registry:[ m ] in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:"fuelb";
  Jt_dbt.Dbt.run ~fuel:10 engine;
  Alcotest.(check bool) "out of fuel" true
    (vm.status = Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel);
  Alcotest.(check int) "stops at the budget" 10 vm.icount

(* An empty (decode-faulting) cached block sits at exactly its start
   address; flush invalidation must treat it as length 1 so regenerating
   code over it retranslates instead of replaying the stale fault. *)
let test_decode_fault_block_invalidated () =
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  let m =
    build ~name:"efault" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r6 Reg.r0;
             call_reg Reg.r6 (* nothing written yet: decode fault *);
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:"efault";
  Jt_dbt.Dbt.run engine;
  let jit = fst Jt_vm.Vm.jit_region in
  Alcotest.(check bool) "first call decode-faults" true
    (vm.status = Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault jit));
  (* write real code over the faulting address and flush the range *)
  let code =
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", jit)
      [ Insn.Mov (Reg.r0, Insn.Imm 5); Insn.Ret ]
    |> fst
  in
  String.iteri
    (fun i c -> Jt_mem.Memory.write8 vm.mem (jit + i) (Char.code c))
    code;
  Jt_vm.Vm.flush_range vm jit 64;
  vm.status <- Jt_vm.Vm.Running;
  Jt_dbt.Dbt.run engine;
  Alcotest.(check string) "sees regenerated code" "5\n" (Jt_vm.Vm.output vm);
  Alcotest.(check bool) "exits cleanly after regen" true
    (vm.status = Jt_vm.Vm.Exited 0)

let test_lightweight_profile_cheaper () =
  let m = Progs.sum_prog ~n:100 () in
  let run profile =
    let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
    let engine = Jt_dbt.Dbt.create ~vm ~profile () in
    Jt_vm.Vm.boot vm ~main:"sum";
    Jt_dbt.Dbt.run engine;
    (Jt_vm.Vm.result vm).r_cycles
  in
  Alcotest.(check bool)
    "lightweight < dynamorio for translation-dominated runs" true
    (run Jt_dbt.Dbt.lightweight < run Jt_dbt.Dbt.dynamorio + 10_000)

let () =
  Alcotest.run "dbt"
    [
      ( "engine",
        [
          Alcotest.test_case "transparency" `Quick test_transparency;
          Alcotest.test_case "code-cache reuse" `Quick test_code_cache_reuse;
          Alcotest.test_case "jit dynamic blocks" `Quick test_jit_blocks_are_dynamic;
          Alcotest.test_case "cache flush" `Quick test_cache_flush_invalidation;
          Alcotest.test_case "profiles" `Quick test_lightweight_profile_cheaper;
          Alcotest.test_case "chaining" `Quick test_chaining_equivalent_and_cheaper;
          Alcotest.test_case "fuel mid-block" `Quick test_fuel_checked_mid_block;
          Alcotest.test_case "empty-block invalidation" `Quick
            test_decode_fault_block_invalidated;
        ] );
    ]
