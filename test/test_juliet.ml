(* The Juliet CWE-122 suite must reproduce Figure 10 exactly. *)

open Jt_workloads

let test_structure () =
  Alcotest.(check int) "624 cases" 624 (List.length Juliet.cases);
  let count cat =
    List.length (List.filter (fun c -> c.Juliet.c_cat = cat) Juliet.cases)
  in
  Alcotest.(check int) "heap-heap" 312 (count Juliet.Heap_heap);
  Alcotest.(check int) "slack" 24 (count Juliet.Heap_heap_slack);
  Alcotest.(check int) "stack-heap" 144 (count Juliet.Stack_heap);
  Alcotest.(check int) "h2s contig" 48 (count Juliet.Heap_stack_contig);
  Alcotest.(check int) "h2s direct" 96 (count Juliet.Heap_stack_direct)

let test_cases_run_cleanly () =
  (* every variant of a sample from each category exits 0 natively *)
  List.iter
    (fun c ->
      List.iter
        (fun bad ->
          let m = Juliet.build_case c ~bad in
          let r =
            Jt_vm.Vm.run_native ~registry:(Juliet.registry_for m)
              ~main:m.Jt_obj.Objfile.name ()
          in
          match r.r_status with
          | Jt_vm.Vm.Exited 0 -> ()
          | st ->
            Alcotest.failf "case %d bad=%b: %s" c.c_id bad
              (Format.asprintf "%a" Jt_vm.Vm.pp_status st))
        [ false; true ])
    (List.filteri (fun k _ -> k mod 60 = 0) Juliet.cases)

let test_figure10_exact () =
  let j = Juliet.evaluate Juliet.Jasan_hybrid in
  Alcotest.(check int) "jasan TP" 528 j.t_true_pos;
  Alcotest.(check int) "jasan FN" 96 j.t_false_neg;
  Alcotest.(check int) "jasan TN" 624 j.t_true_neg;
  Alcotest.(check int) "jasan FP" 0 j.t_false_pos;
  let v = Juliet.evaluate Juliet.Valgrind in
  Alcotest.(check int) "valgrind TP" 504 v.t_true_pos;
  Alcotest.(check int) "valgrind FN" 120 v.t_false_neg;
  Alcotest.(check int) "valgrind TN" 624 v.t_true_neg;
  Alcotest.(check int) "valgrind FP" 0 v.t_false_pos

let test_dyn_mode_also_covers () =
  (* JASan without static analysis still catches the redzone categories
     (coverage comes from the dynamic fallback). *)
  let t = Juliet.evaluate ~limit:40 Juliet.Jasan_dyn in
  Alcotest.(check int) "dyn TP on heap-heap prefix" 40 t.t_true_pos;
  Alcotest.(check int) "dyn FP" 0 t.t_false_pos

(* ---- sibling CWE families (Figure 10 extension) ---- *)

let test_family_structure () =
  let count fam = List.length (Juliet.family_cases fam) in
  Alcotest.(check int) "cwe-124" 48 (count Juliet.Cwe124);
  Alcotest.(check int) "cwe-415" 48 (count Juliet.Cwe415);
  Alcotest.(check int) "cwe-416" 96 (count Juliet.Cwe416);
  Alcotest.(check int) "cwe-121" 72 (count Juliet.Cwe121);
  Alcotest.(check int) "total" 264 (List.length Juliet.all_family_cases);
  (* (family, id) keys the bench sweeps: no duplicates *)
  let keys =
    List.map (fun c -> (c.Juliet.fc_fam, c.Juliet.fc_id)) Juliet.all_family_cases
  in
  Alcotest.(check int)
    "unique keys"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_family_cases_run_cleanly () =
  (* recover mode all the way down: good and bad variants of a sample
     from every family exit 0 natively *)
  List.iter
    (fun c ->
      List.iter
        (fun bad ->
          let m = Juliet.build_family_case c ~bad in
          let r =
            Jt_vm.Vm.run_native ~registry:(Juliet.registry_for m)
              ~main:m.Jt_obj.Objfile.name ()
          in
          match r.r_status with
          | Jt_vm.Vm.Exited 0 -> ()
          | st ->
            Alcotest.failf "family case %d bad=%b: %s" c.fc_id bad
              (Format.asprintf "%a" Jt_vm.Vm.pp_status st))
        [ false; true ])
    (List.filteri (fun k _ -> k mod 24 = 0) Juliet.all_family_cases)

let check_family det fam ~tp ~fn =
  let t = Juliet.evaluate_family det fam in
  let name = Juliet.family_name fam in
  let total = List.length (Juliet.family_cases fam) in
  Alcotest.(check int) (name ^ " TP") tp t.t_true_pos;
  Alcotest.(check int) (name ^ " FN") fn t.t_false_neg;
  Alcotest.(check int) (name ^ " TN") total t.t_true_neg;
  Alcotest.(check int) (name ^ " FP") 0 t.t_false_pos

let test_families_jasan_exact () =
  check_family Juliet.Jasan_hybrid Juliet.Cwe124 ~tp:48 ~fn:0;
  check_family Juliet.Jasan_hybrid Juliet.Cwe415 ~tp:48 ~fn:0;
  check_family Juliet.Jasan_hybrid Juliet.Cwe416 ~tp:96 ~fn:0;
  check_family Juliet.Jasan_hybrid Juliet.Cwe121 ~tp:72 ~fn:0

let test_families_valgrind_exact () =
  (* identical on the heap families; blind to stack smashes *)
  check_family Juliet.Valgrind Juliet.Cwe124 ~tp:48 ~fn:0;
  check_family Juliet.Valgrind Juliet.Cwe415 ~tp:48 ~fn:0;
  check_family Juliet.Valgrind Juliet.Cwe416 ~tp:96 ~fn:0;
  check_family Juliet.Valgrind Juliet.Cwe121 ~tp:0 ~fn:72

let test_family_kinds () =
  (* bad variants report exactly the family's expected kind *)
  List.iter
    (fun fam ->
      let c = List.hd (Juliet.family_cases fam) in
      let t = Juliet.evaluate_family ~limit:1 Juliet.Jasan_hybrid fam in
      Alcotest.(check int) (c.Juliet.fc_kind ^ " caught") 1 t.t_true_pos)
    Juliet.families

let () =
  Alcotest.run "juliet"
    [
      ( "suite",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "cases run" `Quick test_cases_run_cleanly;
          Alcotest.test_case "figure 10 exact" `Slow test_figure10_exact;
          Alcotest.test_case "dyn coverage" `Quick test_dyn_mode_also_covers;
        ] );
      ( "families",
        [
          Alcotest.test_case "structure" `Quick test_family_structure;
          Alcotest.test_case "cases run" `Quick test_family_cases_run_cleanly;
          Alcotest.test_case "jasan exact" `Slow test_families_jasan_exact;
          Alcotest.test_case "valgrind exact" `Slow test_families_valgrind_exact;
          Alcotest.test_case "kinds" `Quick test_family_kinds;
        ] );
    ]
