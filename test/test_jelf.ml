(* The JELF on-disk container: roundtrips, file I/O, corruption. *)

let test_roundtrip_all_workloads () =
  List.iter
    (fun s ->
      let w = Jt_workloads.Specgen.build s in
      List.iter
        (fun m ->
          let m' = Jt_obj.Jelf.read (Jt_obj.Jelf.write m) in
          if m <> m' then
            Alcotest.failf "roundtrip mismatch for %s" m.Jt_obj.Objfile.name)
        w.w_registry)
    (List.filteri (fun i _ -> i mod 5 = 0) Jt_workloads.Sheet.all)

let test_runs_identically_from_disk () =
  let dir = Filename.temp_file "jelf" "" in
  Sys.remove dir;
  let w = Jt_workloads.Specgen.build (Jt_workloads.Sheet.find "mcf") in
  let paths = List.map (Jt_obj.Jelf.save ~dir) w.w_registry in
  let registry = List.map Jt_obj.Jelf.load paths in
  let from_disk = Jt_vm.Vm.run_native ~registry ~main:"mcf" () in
  let in_memory = Jt_workloads.Specgen.run_native w in
  Alcotest.(check string) "same output" in_memory.r_output from_disk.r_output;
  Alcotest.(check int) "same cycles" in_memory.r_cycles from_disk.r_cycles;
  List.iter Sys.remove paths;
  Sys.rmdir dir

let test_corruption_rejected () =
  let m = Jt_workloads.Stdlibs.libc in
  let good = Jt_obj.Jelf.write m in
  Alcotest.check_raises "magic" (Failure "Jelf.read: bad magic") (fun () ->
      ignore (Jt_obj.Jelf.read ("XELF1" ^ String.sub good 5 (String.length good - 5))));
  (match Jt_obj.Jelf.read (String.sub good 0 (String.length good - 3)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated input accepted")

(* Regression: [read] used to accept any bytes appended after a valid
   module, so a doubly-written or padded file passed undetected. *)
let test_trailing_bytes_rejected () =
  let good = Jt_obj.Jelf.write Jt_workloads.Stdlibs.libc in
  Alcotest.check_raises "trailing" (Failure "Jelf.read: trailing bytes")
    (fun () -> ignore (Jt_obj.Jelf.read (good ^ "\x00")));
  Alcotest.check_raises "trailing run" (Failure "Jelf.read: trailing bytes")
    (fun () -> ignore (Jt_obj.Jelf.read (good ^ good)))

(* Regression: list counts were only compared against a magic 1M
   ceiling, so a 40-byte file could claim 999,999 symbols and walk the
   decoder through them.  Counts must fit in the remaining bytes. *)
let test_absurd_count_rejected () =
  let good = Jt_obj.Jelf.write Jt_workloads.Stdlibs.libc in
  (* The features list count sits right after the name, kind and symtab
     bytes; overwrite it with a count far larger than the file. *)
  let name_len = 4 + String.length Jt_workloads.Stdlibs.libc.Jt_obj.Objfile.name in
  let count_pos = 5 + name_len + 2 in
  let forged = Bytes.of_string good in
  Bytes.set_int32_le forged count_pos 999_999l;
  Alcotest.check_raises "oversized count"
    (Failure "Jelf.read: count exceeds buffer") (fun () ->
      ignore (Jt_obj.Jelf.read (Bytes.to_string forged)))

(* Satellite: [save] must create nested directories and publish
   atomically — a pre-existing partial file at the final path is
   replaced wholesale and no temp files survive a successful save. *)
let test_save_nested_and_atomic () =
  let root = Filename.temp_file "jelf" "" in
  Sys.remove root;
  let dir = Filename.concat (Filename.concat root "deep") "nested" in
  let m = Jt_workloads.Stdlibs.libc in
  let final = Filename.concat dir (m.Jt_obj.Objfile.name ^ ".jelf") in
  (* Simulate the debris of an interrupted non-atomic save: a truncated
     file already sitting at the final path. *)
  Jt_obj.Jelf.mkdir_p dir;
  let oc = open_out_bin final in
  output_string oc (String.sub (Jt_obj.Jelf.write m) 0 10);
  close_out oc;
  let path = Jt_obj.Jelf.save ~dir m in
  Alcotest.(check string) "path" final path;
  let m' = Jt_obj.Jelf.load path in
  if m <> m' then Alcotest.fail "saved module does not round-trip";
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        Alcotest.failf "temp file left behind: %s" f)
    (Sys.readdir dir);
  Sys.remove path;
  Sys.rmdir dir;
  Sys.rmdir (Filename.concat root "deep");
  Sys.rmdir root

let () =
  Alcotest.run "jelf"
    [
      ( "container",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_all_workloads;
          Alcotest.test_case "runs from disk" `Quick test_runs_identically_from_disk;
          Alcotest.test_case "corruption" `Quick test_corruption_rejected;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
          Alcotest.test_case "absurd count" `Quick test_absurd_count_rejected;
          Alcotest.test_case "atomic nested save" `Quick test_save_nested_and_atomic;
        ] );
    ]
