(* Driver hardening: rule-cache corruption must degrade to re-analysis
   (never crash), [save_rules] must create nested cache directories, and
   the global metrics counters must be isolated between driver runs. *)

(* Unique-enough scratch root: [Filename.temp_file] reserves a fresh
   name for us (the empty file it creates is immediately removed and the
   name reused as a directory root). *)
let scratch_root =
  let f = Filename.temp_file "jt_driver_test" "" in
  Sys.remove f;
  f

let tmpdir sub = Filename.concat scratch_root sub

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let sample_file name =
  {
    Jt_rules.Rules.rf_module = name;
    rf_digest = "";
    rf_stats = [];
    rf_rules =
      List.init 5 (fun i ->
          Jt_rules.Rules.make ~id:0x101 ~bb:(0x400000 + (i * 16))
            ~insn:(0x400000 + (i * 16))
            ~data:[ 2; 1 ] ());
  }

(* -- save/load round trip, now through nested directories -- *)

let test_save_load_roundtrip () =
  let dir = tmpdir "roundtrip" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let f = sample_file "m" in
      Janitizer.Driver.save_rules ~dir [ ("m", f) ];
      match Janitizer.Driver.load_rules ~dir "m" with
      | Some f' ->
        Alcotest.(check string) "module name" "m" f'.Jt_rules.Rules.rf_module;
        Alcotest.(check int) "rule count" 5 (List.length f'.rf_rules)
      | None -> Alcotest.fail "round trip lost the file")

let test_save_rules_nested_dir () =
  let root = tmpdir "nested" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      (* pre-fix: [Sys.mkdir] is single-level, so a nested cache path
         raised ENOENT *)
      let dir = Filename.concat (Filename.concat root "per-config") "jasan" in
      Janitizer.Driver.save_rules ~dir [ ("m", sample_file "m") ];
      Alcotest.(check bool) "nested dir created" true (Sys.is_directory dir);
      Alcotest.(check bool) "file written" true
        (Sys.file_exists (Filename.concat dir "m.jtr"));
      (* and again over the now-existing tree: idempotent *)
      Janitizer.Driver.save_rules ~dir [ ("m2", sample_file "m2") ];
      Alcotest.(check bool) "second save works" true
        (Sys.file_exists (Filename.concat dir "m2.jtr")))

(* -- corrupt-cache regressions -- *)

let test_load_rules_truncated () =
  let dir = tmpdir "trunc" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Janitizer.Driver.save_rules ~dir [ ("m", sample_file "m") ];
      let path = Filename.concat dir "m.jtr" in
      (* keep the magic, drop the payload: decode_file raises Failure *)
      let ic = open_in_bin path in
      let head = really_input_string ic 6 in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc head;
      close_out oc;
      Alcotest.(check bool) "truncated cache -> None" true
        (Janitizer.Driver.load_rules ~dir "m" = None))

let test_load_rules_garbage () =
  let dir = tmpdir "garbage" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Janitizer.Driver.save_rules ~dir [];
      let oc = open_out_bin (Filename.concat dir "m.jtr") in
      output_string oc "this is not a JTRR file at all";
      close_out oc;
      Alcotest.(check bool) "bad magic -> None" true
        (Janitizer.Driver.load_rules ~dir "m" = None))

let test_load_rules_directory_entry () =
  let dir = tmpdir "direntry" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* a cache entry that is a *directory*: [open_in_bin] (or the
         subsequent read) raises [Sys_error], which the pre-fix handler
         (catching only [Failure]) let escape and crash the run *)
      Janitizer.Driver.save_rules ~dir [];
      Sys.mkdir (Filename.concat dir "m.jtr") 0o755;
      Alcotest.(check bool) "directory entry -> None" true
        (Janitizer.Driver.load_rules ~dir "m" = None))

(* -- stale-cache digest rejection -- *)

let test_load_rules_stale_digest () =
  let dir = tmpdir "stale" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let build_a = Digest.string "module, build A" in
      let build_b = Digest.string "module, build B" in
      let f = { (sample_file "m") with Jt_rules.Rules.rf_digest = build_a } in
      Janitizer.Driver.save_rules ~dir [ ("m", f) ];
      (* matching digest: the cache is served *)
      (match Janitizer.Driver.load_rules ~expect_digest:build_a ~dir "m" with
      | Some f' ->
        Alcotest.(check string) "digest survives the cache" build_a
          f'.Jt_rules.Rules.rf_digest
      | None -> Alcotest.fail "fresh cache rejected");
      (* the module was rebuilt: same name, different content digest —
         pre-fix this applied the stale rules at dead addresses *)
      Alcotest.(check bool) "stale cache -> None" true
        (Janitizer.Driver.load_rules ~expect_digest:build_b ~dir "m" = None);
      (* callers that don't know the digest keep the old behavior *)
      Alcotest.(check bool) "no expectation -> served" true
        (Janitizer.Driver.load_rules ~dir "m" <> None))

let test_module_digest_sensitivity () =
  let m = Progs.sum_prog ~n:30 () in
  let m' = Progs.sum_prog ~n:31 () in
  Alcotest.(check bool) "digest is deterministic" true
    (String.equal (Janitizer.Driver.module_digest m)
       (Janitizer.Driver.module_digest (Progs.sum_prog ~n:30 ())));
  Alcotest.(check bool) "different code, different digest" false
    (String.equal (Janitizer.Driver.module_digest m)
       (Janitizer.Driver.module_digest m'))

(* -- fn_of_addr: indexed lookup must match the old linear scan -- *)

let test_fn_of_addr_equivalence () =
  let m = Progs.sum_prog ~n:30 () in
  let sa = Janitizer.Static_analyzer.analyze m in
  (* the pre-index implementation: first function in [sa_fns] order any
     of whose blocks contains an instruction at [addr] *)
  let reference addr =
    List.find_opt
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        Hashtbl.fold
          (fun _ (b : Jt_cfg.Cfg.block) acc ->
            acc
            || Array.exists
                 (fun (i : Jt_disasm.Disasm.insn_info) -> i.d_addr = addr)
                 b.b_insns)
          fa.fa_fn.Jt_cfg.Cfg.f_blocks false)
      sa.sa_fns
  in
  let entry_of (fa : Janitizer.Static_analyzer.fn_analysis) =
    fa.fa_fn.Jt_cfg.Cfg.f_entry
  in
  let probes = ref 0 in
  let check_addr addr =
    incr probes;
    Alcotest.(check (option int))
      (Printf.sprintf "fn_of_addr 0x%x" addr)
      (Option.map entry_of (reference addr))
      (Option.map entry_of (Janitizer.Static_analyzer.fn_of_addr sa addr))
  in
  (* every instruction address of every function (hits)... *)
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      Hashtbl.iter
        (fun _ (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (i : Jt_disasm.Disasm.insn_info) -> check_addr i.d_addr)
            b.b_insns)
        fa.fa_fn.Jt_cfg.Cfg.f_blocks)
    sa.sa_fns;
  (* ...plus guaranteed misses *)
  List.iter check_addr [ 0; 1; 0x3F_FFFF; 0xDEAD_BEEF ];
  Alcotest.(check bool) "exercised some addresses" true (!probes > 10)

(* -- per-run counter isolation -- *)

let test_counters_isolated_between_runs () =
  let m = Progs.sum_prog ~n:30 () in
  let registry = Progs.registry_for m in
  let run () =
    ignore (Janitizer.Driver.run_null ~registry ~main:"sum" ());
    Jt_metrics.Metrics.Counters.snapshot ()
  in
  let s1 = run () in
  let s2 = run () in
  (* pre-fix, every counter doubled on the second run *)
  Alcotest.(check bool) "first run counted something" true
    (List.assoc "dispatch_entries" s1 > 0);
  List.iter2
    (fun (name, v1) (name2, v2) ->
      Alcotest.(check string) "same counter order" name name2;
      Alcotest.(check int) (name ^ " identical across runs") v1 v2)
    s1 s2;
  (* the tool-attached driver entry point resets too *)
  let tool, _ = Jt_jasan.Jasan.create () in
  ignore (Janitizer.Driver.run ~tool ~registry ~main:"sum" ());
  let s3 = Jt_metrics.Metrics.Counters.snapshot () in
  ignore (Janitizer.Driver.run ~tool ~registry ~main:"sum" ());
  let s4 = Jt_metrics.Metrics.Counters.snapshot () in
  List.iter2
    (fun (name, v3) (_, v4) ->
      Alcotest.(check int) (name ^ " identical across tool runs") v3 v4)
    s3 s4

(* -- domain-parallel determinism -- *)

(* Two [Driver.run]s on different domains must produce exactly what two
   back-to-back sequential runs produce: same simulator results *and*
   same per-run counters.  Counters/trace state is domain-local, so a
   job snapshots its own domain's counters before returning.  Pre-DLS,
   concurrent runs hammered one global counter record and this test
   raced. *)
let test_parallel_runs_match_sequential () =
  let eval tool_attached () =
    let m = Progs.sum_prog ~n:30 () in
    let registry = Progs.registry_for m in
    let o =
      if tool_attached then
        let tool, _ = Jt_jasan.Jasan.create () in
        Janitizer.Driver.run ~tool ~registry ~main:"sum" ()
      else Janitizer.Driver.run_null ~registry ~main:"sum" ()
    in
    let r = o.Janitizer.Driver.o_result in
    ( (Format.asprintf "%a" Jt_vm.Vm.pp_status r.Jt_vm.Vm.r_status),
      r.r_icount,
      r.r_cycles,
      r.r_output,
      List.length r.r_violations,
      o.o_rule_count,
      Jt_metrics.Metrics.Counters.snapshot () )
  in
  let jobs = [ eval false; eval true; eval false; eval true ] in
  let sequential = List.map (fun j -> j ()) jobs in
  let parallel = Jt_pool.Pool.run ~jobs:4 (fun j -> j ()) jobs in
  List.iteri
    (fun i (seq, par) ->
      let (s1, i1, c1, o1, v1, r1, cs1) = seq
      and (s2, i2, c2, o2, v2, r2, cs2) = par in
      let tag fmt = Printf.sprintf ("job %d " ^^ fmt) i in
      Alcotest.(check string) (tag "status") s1 s2;
      Alcotest.(check int) (tag "icount") i1 i2;
      Alcotest.(check int) (tag "cycles") c1 c2;
      Alcotest.(check string) (tag "output") o1 o2;
      Alcotest.(check int) (tag "violations") v1 v2;
      Alcotest.(check int) (tag "rules") r1 r2;
      List.iter2
        (fun (n, a) (n', b) ->
          Alcotest.(check string) (tag "counter order") n n';
          Alcotest.(check int) (tag "counter %s" n) a b)
        cs1 cs2)
    (List.combine sequential parallel)

(* Counter snapshots from worker domains merge into an aggregate equal to
   the sequential sum — the API the bench harness relies on. *)
let test_merge_across_domains () =
  let m = Progs.sum_prog ~n:30 () in
  let job () =
    let registry = Progs.registry_for m in
    ignore (Janitizer.Driver.run_null ~registry ~main:"sum" ());
    Jt_metrics.Metrics.Counters.snapshot ()
  in
  let snaps = Jt_pool.Pool.run ~jobs:2 (fun j -> j ()) [ job; job ] in
  let merged = Jt_metrics.Metrics.Counters.merge snaps in
  let solo = job () in
  List.iter2
    (fun (n, total) (_, one) ->
      Alcotest.(check int) (n ^ " merged = 2x solo") (2 * one) total)
    merged solo

let () =
  Alcotest.run "driver"
    [
      ( "rule-cache",
        [
          Alcotest.test_case "save/load round trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "nested cache dir" `Quick test_save_rules_nested_dir;
          Alcotest.test_case "truncated file" `Quick test_load_rules_truncated;
          Alcotest.test_case "garbage file" `Quick test_load_rules_garbage;
          Alcotest.test_case "directory entry" `Quick
            test_load_rules_directory_entry;
          Alcotest.test_case "stale digest" `Quick test_load_rules_stale_digest;
          Alcotest.test_case "digest sensitivity" `Quick
            test_module_digest_sensitivity;
        ] );
      ( "static-analyzer",
        [
          Alcotest.test_case "fn_of_addr equivalence" `Quick
            test_fn_of_addr_equivalence;
        ] );
      ( "counters",
        [
          Alcotest.test_case "isolated between runs" `Quick
            test_counters_isolated_between_runs;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "parallel runs match sequential" `Quick
            test_parallel_runs_match_sequential;
          Alcotest.test_case "merge across domains" `Quick
            test_merge_across_domains;
        ] );
    ]
