(* Driver hardening: rule-cache corruption must degrade to re-analysis
   (never crash), [save_rules] must create nested cache directories, and
   the global metrics counters must be isolated between driver runs. *)

(* Unique-enough scratch root: [Filename.temp_file] reserves a fresh
   name for us (the empty file it creates is immediately removed and the
   name reused as a directory root). *)
let scratch_root =
  let f = Filename.temp_file "jt_driver_test" "" in
  Sys.remove f;
  f

let tmpdir sub = Filename.concat scratch_root sub

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let sample_file name =
  {
    Jt_rules.Rules.rf_module = name;
    rf_rules =
      List.init 5 (fun i ->
          Jt_rules.Rules.make ~id:0x101 ~bb:(0x400000 + (i * 16))
            ~insn:(0x400000 + (i * 16))
            ~data:[ 2; 1 ] ());
  }

(* -- save/load round trip, now through nested directories -- *)

let test_save_load_roundtrip () =
  let dir = tmpdir "roundtrip" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let f = sample_file "m" in
      Janitizer.Driver.save_rules ~dir [ ("m", f) ];
      match Janitizer.Driver.load_rules ~dir "m" with
      | Some f' ->
        Alcotest.(check string) "module name" "m" f'.Jt_rules.Rules.rf_module;
        Alcotest.(check int) "rule count" 5 (List.length f'.rf_rules)
      | None -> Alcotest.fail "round trip lost the file")

let test_save_rules_nested_dir () =
  let root = tmpdir "nested" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      (* pre-fix: [Sys.mkdir] is single-level, so a nested cache path
         raised ENOENT *)
      let dir = Filename.concat (Filename.concat root "per-config") "jasan" in
      Janitizer.Driver.save_rules ~dir [ ("m", sample_file "m") ];
      Alcotest.(check bool) "nested dir created" true (Sys.is_directory dir);
      Alcotest.(check bool) "file written" true
        (Sys.file_exists (Filename.concat dir "m.jtr"));
      (* and again over the now-existing tree: idempotent *)
      Janitizer.Driver.save_rules ~dir [ ("m2", sample_file "m2") ];
      Alcotest.(check bool) "second save works" true
        (Sys.file_exists (Filename.concat dir "m2.jtr")))

(* -- corrupt-cache regressions -- *)

let test_load_rules_truncated () =
  let dir = tmpdir "trunc" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Janitizer.Driver.save_rules ~dir [ ("m", sample_file "m") ];
      let path = Filename.concat dir "m.jtr" in
      (* keep the magic, drop the payload: decode_file raises Failure *)
      let ic = open_in_bin path in
      let head = really_input_string ic 6 in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc head;
      close_out oc;
      Alcotest.(check bool) "truncated cache -> None" true
        (Janitizer.Driver.load_rules ~dir "m" = None))

let test_load_rules_garbage () =
  let dir = tmpdir "garbage" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Janitizer.Driver.save_rules ~dir [];
      let oc = open_out_bin (Filename.concat dir "m.jtr") in
      output_string oc "this is not a JTRR file at all";
      close_out oc;
      Alcotest.(check bool) "bad magic -> None" true
        (Janitizer.Driver.load_rules ~dir "m" = None))

let test_load_rules_directory_entry () =
  let dir = tmpdir "direntry" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* a cache entry that is a *directory*: [open_in_bin] (or the
         subsequent read) raises [Sys_error], which the pre-fix handler
         (catching only [Failure]) let escape and crash the run *)
      Janitizer.Driver.save_rules ~dir [];
      Sys.mkdir (Filename.concat dir "m.jtr") 0o755;
      Alcotest.(check bool) "directory entry -> None" true
        (Janitizer.Driver.load_rules ~dir "m" = None))

(* -- per-run counter isolation -- *)

let test_counters_isolated_between_runs () =
  let m = Progs.sum_prog ~n:30 () in
  let registry = Progs.registry_for m in
  let run () =
    ignore (Janitizer.Driver.run_null ~registry ~main:"sum" ());
    Jt_metrics.Metrics.Counters.snapshot ()
  in
  let s1 = run () in
  let s2 = run () in
  (* pre-fix, every counter doubled on the second run *)
  Alcotest.(check bool) "first run counted something" true
    (List.assoc "dispatch_entries" s1 > 0);
  List.iter2
    (fun (name, v1) (name2, v2) ->
      Alcotest.(check string) "same counter order" name name2;
      Alcotest.(check int) (name ^ " identical across runs") v1 v2)
    s1 s2;
  (* the tool-attached driver entry point resets too *)
  let tool, _ = Jt_jasan.Jasan.create () in
  ignore (Janitizer.Driver.run ~tool ~registry ~main:"sum" ());
  let s3 = Jt_metrics.Metrics.Counters.snapshot () in
  ignore (Janitizer.Driver.run ~tool ~registry ~main:"sum" ());
  let s4 = Jt_metrics.Metrics.Counters.snapshot () in
  List.iter2
    (fun (name, v3) (_, v4) ->
      Alcotest.(check int) (name ^ " identical across tool runs") v3 v4)
    s3 s4

let () =
  Alcotest.run "driver"
    [
      ( "rule-cache",
        [
          Alcotest.test_case "save/load round trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "nested cache dir" `Quick test_save_rules_nested_dir;
          Alcotest.test_case "truncated file" `Quick test_load_rules_truncated;
          Alcotest.test_case "garbage file" `Quick test_load_rules_garbage;
          Alcotest.test_case "directory entry" `Quick
            test_load_rules_directory_entry;
        ] );
      ( "counters",
        [
          Alcotest.test_case "isolated between runs" `Quick
            test_counters_isolated_between_runs;
        ] );
    ]
