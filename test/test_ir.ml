(* The serializable IR and its content-addressed store (DESIGN.md §13):
   codec round trips, corrupt-store rejection with transparent
   re-analysis, warm-load equivalence with the direct analyzer,
   single-flight under domain parallelism, LRU/gc behavior, and the
   [Driver.analyze_all] registry-ordering contract. *)

open Jt_ir

let scratch_root =
  let f = Filename.temp_file "jt_ir_test" "" in
  Sys.remove f;
  f

let tmpdir sub = Filename.concat scratch_root sub

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir sub f =
  let dir = tmpdir sub in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- generators: arbitrary well-formed IR values ---------------- *)
(* Stay inside the codec's field widths: u32 fields get non-negative
   ints, i32 fields small signed ints, u8 fields 0..255. *)

let gen_u32 = QCheck2.Gen.(int_bound 0xFFFF_FFFF)
let gen_addr = QCheck2.Gen.(int_bound 0xFF_FFFF)
let gen_i32 = QCheck2.Gen.(int_range (-0x4000_0000) 0x3FFF_FFFF)
let gen_u8 = QCheck2.Gen.(int_bound 255)
let small l g = QCheck2.Gen.(list_size (int_bound l) g)

let gen_term =
  let open QCheck2.Gen in
  oneof
    [
      map (fun t -> Ir.Tjmp t) gen_addr;
      map2 (fun t f -> Ir.Tjcc (t, f)) gen_addr gen_addr;
      map (fun ts -> Ir.Tjmp_ind ts) (small 4 gen_addr);
      map2 (fun t r -> Ir.Tcall (t, r)) gen_addr gen_addr;
      map (fun r -> Ir.Tcall_ind r) gen_addr;
      return Ir.Tret;
      return Ir.Thalt;
      map (fun n -> Ir.Tfall n) gen_addr;
    ]

let gen_block =
  let open QCheck2.Gen in
  map (fun (addr, n, term, succs, preds) ->
      {
        Ir.ib_addr = addr;
        ib_ninsns = n;
        ib_term = term;
        ib_succs = succs;
        ib_preds = preds;
      })
    (tup5 gen_addr gen_u32 gen_term (small 4 gen_addr) (small 4 gen_addr))

let gen_mem =
  let open QCheck2.Gen in
  map (fun (base, index, scale, disp) ->
      { Ir.im_base = base; im_index = index; im_scale = scale; im_disp = disp })
    (tup4 (int_range (-2) 7) (int_range (-1) 7) gen_u8 gen_u32)

let gen_access =
  let open QCheck2.Gen in
  map (fun (addr, mem, width, st) ->
      { Ir.ia_addr = addr; ia_mem = mem; ia_width = width; ia_is_store = st })
    (tup4 gen_addr gen_mem (int_range 1 8) bool)

let gen_scev =
  let open QCheck2.Gen in
  map (fun ((head, pre, at, ivar, init), (bound, incl, aff, inv)) ->
      {
        Ir.is_head = head;
        is_preheader = pre;
        is_check_at = at;
        is_ivar = ivar;
        is_init = init;
        is_bound = bound;
        is_bound_incl = incl;
        is_affine = aff;
        is_invariant = inv;
      })
    (pair
       (tup5 gen_addr gen_addr gen_addr (int_bound 7) gen_i32)
       (tup4
          (oneof
             [
               map (fun v -> Ir.Ibnd_imm v) gen_i32;
               map (fun r -> Ir.Ibnd_reg r) (int_bound 7);
             ])
          bool (small 3 gen_access) (small 3 gen_access)))

let gen_canary =
  let open QCheck2.Gen in
  map (fun (fn, store, after, disp, loads) ->
      {
        Ir.ic_fn = fn;
        ic_store = store;
        ic_after = after;
        ic_disp = disp;
        ic_loads = loads;
      })
    (tup5 gen_addr gen_addr gen_addr gen_i32 (small 3 gen_addr))

let gen_stack =
  let open QCheck2.Gen in
  map (fun (entry, frame, canary, push) ->
      { Ir.ik_entry = entry; ik_frame = frame; ik_canary = canary; ik_push = push })
    (tup4 gen_addr (option gen_i32) bool gen_i32)

let gen_value =
  let open QCheck2.Gen in
  oneof
    [
      return Ir.Vbot;
      map2 (fun lo hi -> Ir.Vcst (lo, hi)) gen_i32 gen_i32;
      map2 (fun lo hi -> Ir.Vsprel (lo, hi)) gen_i32 gen_i32;
      return Ir.Vtop;
    ]

let gen_fn =
  let open QCheck2.Gen in
  map (fun ((entry, name, blocks, loops, live_all), (live, canaries, scev, stack), (vsa, dom, defuse)) ->
      {
        Ir.if_entry = entry;
        if_name = name;
        if_blocks = blocks;
        if_loops = loops;
        if_live_all = live_all;
        if_live = live;
        if_canaries = canaries;
        if_scev = scev;
        if_stack = stack;
        if_vsa = vsa;
        if_dom = dom;
        if_defuse = defuse;
      })
    (tup3
       (tup5 gen_addr (option string_small) (small 4 gen_addr)
          (small 2 (pair gen_addr (small 3 gen_addr)))
          bool)
       (tup4
          (small 4 (tup3 gen_addr (int_bound 0xFFFF) gen_u8))
          (small 2 gen_canary) (small 2 gen_scev) gen_stack)
       (tup3
          (option
             (small 3
                (pair gen_addr (map Array.of_list (small 8 gen_value)))))
          (small 3 (pair gen_addr (small 4 gen_addr)))
          (small 2
             (pair gen_addr
                (small 3 (pair (int_bound 7) (small 3 gen_i32)))))))

let gen_ir =
  let open QCheck2.Gen in
  map (fun ((mname, reliable, insns, leaders, entries), (jts, ptrs, blocks, fns, aux)) ->
      let digest = Digest.string mname in
      {
        Ir.ir_module = mname;
        ir_digest = digest;
        ir_reliable = reliable;
        ir_insns = Array.of_list insns;
        ir_leaders = leaders;
        ir_func_entries = entries;
        ir_jump_tables = jts;
        ir_code_ptrs = ptrs;
        ir_blocks = blocks;
        ir_fns = fns;
        (* [ir_aux] is sorted by key by construction ([with_aux]) *)
        ir_aux =
          List.sort_uniq (fun (a, _) (b, _) -> compare a b) aux;
      })
    (pair
       (tup5 string_small bool
          (small 6 (pair gen_addr (int_range 1 8)))
          (small 4 gen_addr) (small 4 gen_addr))
       (tup5
          (small 2 (pair gen_addr (small 3 gen_addr)))
          (small 4 gen_addr) (small 4 gen_block) (small 3 gen_fn)
          (small 3 (pair string_small string_small))))

let prop_roundtrip =
  QCheck2.Test.make ~name:"decode (encode ir) = ir" ~count:300 gen_ir (fun ir ->
      Ir.decode (Ir.encode ir) = ir)

let prop_peek_digest =
  QCheck2.Test.make ~name:"peek_digest reads the header" ~count:100 gen_ir
    (fun ir -> Ir.peek_digest (Ir.encode ir) = ir.Ir.ir_digest)

(* ---- codec rejection ------------------------------------------- *)

let expect_failure name f =
  match f () with
  | (_ : Ir.t) -> Alcotest.fail (name ^ ": decode accepted a bad encoding")
  | exception Failure _ -> ()

let sample_ir () =
  Janitizer.Static_analyzer.to_ir
    (Janitizer.Static_analyzer.compute (Progs.sum_prog ~n:20 ()))

let test_decode_rejects () =
  let enc = Ir.encode (sample_ir ()) in
  expect_failure "truncated" (fun () ->
      Ir.decode (String.sub enc 0 (String.length enc / 2)));
  expect_failure "empty" (fun () -> Ir.decode "");
  expect_failure "bad magic" (fun () ->
      Ir.decode ("XXXX" ^ String.sub enc 4 (String.length enc - 4)));
  let bumped = Bytes.of_string enc in
  Bytes.set bumped 4 (Char.chr (Ir.schema_version + 1));
  expect_failure "wrong schema version" (fun () ->
      Ir.decode (Bytes.to_string bumped));
  expect_failure "trailing bytes" (fun () -> Ir.decode (enc ^ "\x00"))

let test_real_module_roundtrip () =
  let ir = sample_ir () in
  Alcotest.(check bool) "compute IR round-trips" true
    (Ir.decode (Ir.encode ir) = ir)

(* ---- store robustness: every corruption degrades to re-analysis - *)

let store_entry_path dir digest = Filename.concat dir (Digest.to_hex digest ^ ".jtir")

(* Populate [dir] with a valid entry for [m], then [mangle] the file and
   check a fresh store re-runs the compute function (and counts the
   rejection). *)
let check_corrupt_reanalyzes name mangle =
  with_dir name (fun dir ->
      let m = Progs.sum_prog ~n:20 () in
      let digest = Jt_obj.Objfile.digest m in
      let st = Store.create ~dir () in
      let computes = ref 0 in
      let compute () =
        incr computes;
        Janitizer.Static_analyzer.to_ir (Janitizer.Static_analyzer.compute m)
      in
      let ir = Store.find_or_compute st ~digest ~name:m.name compute in
      Alcotest.(check int) (name ^ ": cold miss computes") 1 !computes;
      mangle (store_entry_path dir digest);
      (* fresh handle: the memory layer must not mask the disk damage *)
      let st2 = Store.create ~dir () in
      let ir' = Store.find_or_compute st2 ~digest ~name:m.name compute in
      Alcotest.(check int) (name ^ ": corrupt entry recomputed") 2 !computes;
      Alcotest.(check bool) (name ^ ": recomputed IR identical") true (ir = ir');
      let s = Store.stats st2 in
      Alcotest.(check int) (name ^ ": rejection counted") 1 s.Store.st_corrupt;
      Alcotest.(check int) (name ^ ": counted as miss") 1 s.st_misses;
      (* the recompute republished a good entry: next fresh handle hits disk *)
      let st3 = Store.create ~dir () in
      ignore (Store.find_or_compute st3 ~digest ~name:m.name compute);
      Alcotest.(check int) (name ^ ": republished entry served") 2 !computes;
      Alcotest.(check int) (name ^ ": disk hit after repair") 1
        (Store.stats st3).st_disk_hits)

let rewrite path f =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f data);
  close_out oc

let test_store_truncated () =
  check_corrupt_reanalyzes "trunc" (fun p ->
      rewrite p (fun d -> String.sub d 0 (String.length d / 3)))

let test_store_garbage () =
  check_corrupt_reanalyzes "garbage" (fun p ->
      rewrite p (fun d -> String.map (fun c -> Char.chr (Char.code c lxor 0x5A)) d))

let test_store_wrong_magic () =
  check_corrupt_reanalyzes "magic" (fun p ->
      rewrite p (fun d -> "NOPE" ^ String.sub d 4 (String.length d - 4)))

let test_store_wrong_version () =
  check_corrupt_reanalyzes "version" (fun p ->
      rewrite p (fun d ->
          let b = Bytes.of_string d in
          Bytes.set b 4 (Char.chr (Ir.schema_version + 1));
          Bytes.to_string b))

let test_store_stale_digest () =
  (* The file decodes fine but records a different module's digest — the
     module was rebuilt and a hash collision on the file name is being
     simulated; the store must reject rather than serve stale facts. *)
  check_corrupt_reanalyzes "stale" (fun p ->
      let other =
        Janitizer.Static_analyzer.to_ir
          (Janitizer.Static_analyzer.compute (Progs.sum_prog ~n:21 ()))
      in
      rewrite p (fun _ -> Ir.encode other))

(* ---- warm load ≡ direct analysis -------------------------------- *)

let rules_bytes tool m sa =
  ignore m;
  Jt_rules.Rules.encode_file (tool.Janitizer.Tool.t_static sa)

let test_warm_load_equivalence () =
  with_dir "warm" (fun dir ->
      let m = Progs.sum_prog ~n:30 () in
      let tool, _ = Jt_jasan.Jasan.create () in
      let cold_sa = ref None in
      let before = Janitizer.Static_analyzer.analyses_performed () in
      (let st = Store.create ~dir () in
       cold_sa := Some (Janitizer.Static_analyzer.analyze ~store:st m));
      let mid = Janitizer.Static_analyzer.analyses_performed () in
      Alcotest.(check int) "cold run analyzed once" 1 (mid - before);
      (* fresh handle over the same dir: warm load goes through the disk
         decode path, not the memory LRU *)
      let st2 = Store.create ~dir () in
      let warm_sa = Janitizer.Static_analyzer.analyze ~store:st2 m in
      let after = Janitizer.Static_analyzer.analyses_performed () in
      Alcotest.(check int) "warm run analyzed nothing" 0 (after - mid);
      Alcotest.(check int) "warm run hit the disk" 1
        (Store.stats st2).Store.st_disk_hits;
      let cold_sa = Option.get !cold_sa in
      Alcotest.(check string) "identical rule bytes"
        (rules_bytes tool m cold_sa) (rules_bytes tool m warm_sa);
      Alcotest.(check bool) "identical IR" true
        (Janitizer.Static_analyzer.to_ir cold_sa
        = Janitizer.Static_analyzer.to_ir warm_sa))

(* ---- single-flight under domain parallelism ---------------------- *)

let test_single_flight () =
  with_dir "flight" (fun dir ->
      let m = Progs.sum_prog ~n:25 () in
      let digest = Jt_obj.Objfile.digest m in
      let st = Store.create ~dir () in
      let computes = Atomic.make 0 in
      let compute () =
        Atomic.incr computes;
        (* hold the flight open long enough for every waiter to arrive *)
        Unix.sleepf 0.05;
        Janitizer.Static_analyzer.to_ir (Janitizer.Static_analyzer.compute m)
      in
      let irs =
        Jt_pool.Pool.run ~jobs:4
          (fun () -> Store.find_or_compute st ~digest ~name:m.name compute)
          [ (); (); (); () ]
      in
      Alcotest.(check int) "compute ran exactly once" 1 (Atomic.get computes);
      let first = List.hd irs in
      List.iter
        (fun ir ->
          Alcotest.(check bool) "all callers got the same IR" true (ir = first))
        irs;
      let s = Store.stats st in
      Alcotest.(check int) "one miss" 1 s.Store.st_misses;
      Alcotest.(check int) "waiters hit memory" 3 s.st_mem_hits)

(* ---- LRU bounds, gc, clear, update_aux --------------------------- *)

let distinct_modules n =
  List.init n (fun i -> Progs.sum_prog ~name:(Printf.sprintf "m%d" i) ~n:(10 + i) ())

let test_lru_eviction () =
  with_dir "lru" (fun dir ->
      let st = Store.create ~capacity:2 ~dir () in
      let load m =
        Store.find_or_compute st ~digest:(Jt_obj.Objfile.digest m) ~name:"m"
          (fun () ->
            Janitizer.Static_analyzer.to_ir (Janitizer.Static_analyzer.compute m))
      in
      let ms = distinct_modules 3 in
      List.iter (fun m -> ignore (load m)) ms;
      let s = Store.stats st in
      Alcotest.(check int) "third insert evicted the oldest" 1 s.Store.st_evictions;
      (* the evicted entry is still on disk: reloading is a disk hit *)
      ignore (load (List.hd ms));
      Alcotest.(check int) "evicted entry reloads from disk" 1
        (Store.stats st).st_disk_hits)

let test_gc_and_clear () =
  with_dir "gc" (fun dir ->
      let st = Store.create ~dir () in
      let load m =
        ignore
          (Store.find_or_compute st ~digest:(Jt_obj.Objfile.digest m) ~name:"m"
             (fun () ->
               Janitizer.Static_analyzer.to_ir
                 (Janitizer.Static_analyzer.compute m)))
      in
      List.iter load (distinct_modules 3);
      let entries = Store.disk_entries st in
      Alcotest.(check int) "three disk entries" 3 (List.length entries);
      let total = List.fold_left (fun a (_, b, _) -> a + b) 0 entries in
      (* keep roughly one entry's worth *)
      let removed, freed = Store.gc st ~max_bytes:(total / 3) in
      Alcotest.(check bool) "gc removed entries" true (removed >= 1 && removed <= 2);
      Alcotest.(check bool) "gc freed bytes" true (freed > 0);
      Alcotest.(check bool) "gc respects the budget" true
        (List.fold_left (fun a (_, b, _) -> a + b) 0 (Store.disk_entries st)
        <= total / 3);
      let left = List.length (Store.disk_entries st) in
      Alcotest.(check int) "clear removes the rest" left (Store.clear st);
      Alcotest.(check int) "store empty" 0 (List.length (Store.disk_entries st)))

let test_update_aux () =
  with_dir "aux" (fun dir ->
      let m = Progs.sum_prog ~n:15 () in
      let digest = Jt_obj.Objfile.digest m in
      let st = Store.create ~dir () in
      ignore
        (Store.find_or_compute st ~digest ~name:m.name (fun () ->
             Janitizer.Static_analyzer.to_ir (Janitizer.Static_analyzer.compute m)));
      Store.update_aux st ~digest [ ("test/v1:k", "payload") ];
      (* visible through a fresh handle, i.e. it reached the disk *)
      let st2 = Store.create ~dir () in
      match Store.peek st2 ~digest with
      | None -> Alcotest.fail "entry vanished"
      | Some ir ->
        Alcotest.(check (option string)) "aux table persisted"
          (Some "payload") (Ir.find_aux ir "test/v1:k"))

(* ---- analyze_all: results in registry order (PR 7 satellite) ----- *)

let test_analyze_all_registry_order () =
  let m = Progs.sum_prog ~n:20 () in
  let registry = Progs.registry_for m in
  let tool, _ = Jt_jasan.Jasan.create () in
  let names fs = List.map fst fs in
  let expect = List.map (fun (m : Jt_obj.Objfile.t) -> m.name) registry in
  (* plain: one result per registry entry, same order *)
  let files = Janitizer.Driver.analyze_all ~tool registry in
  Alcotest.(check (list string)) "registry order" expect (names files);
  (* pooled analysis must not reorder *)
  let pooled =
    Jt_pool.Pool.with_pool ~jobs:2 (fun pool ->
        Janitizer.Driver.analyze_all ~pool ~tool registry)
  in
  Alcotest.(check (list string)) "pooled keeps order" expect (names pooled);
  (* precomputed entries splice in at their registry position... *)
  let libc_file = List.assoc "libc.so" files in
  let spliced =
    Janitizer.Driver.analyze_all ~precomputed:[ ("libc.so", libc_file) ] ~tool
      registry
  in
  Alcotest.(check (list string)) "precomputed spliced in place" expect
    (names spliced);
  Alcotest.(check bool) "precomputed file served verbatim" true
    (List.assoc "libc.so" spliced == libc_file);
  (* ...and precomputed names absent from the registry are appended *)
  let extra =
    Janitizer.Driver.analyze_all
      ~precomputed:[ ("ghost", libc_file) ]
      ~tool registry
  in
  Alcotest.(check (list string)) "unknown precomputed appended"
    (expect @ [ "ghost" ]) (names extra)

(* ---- tool-contributed claims aux table --------------------------- *)

let test_claims_aux_persisted () =
  with_dir "claims" (fun dir ->
      (* a straight-line heap store: not frame-relative, not loop-covered,
         so its check survives every elision pass -> a [checked] claim *)
      let m = Progs.heap_overflow_prog () in
      let registry = Progs.registry_for m in
      let tool, _ = Jt_jasan.Jasan.create () in
      let store = Store.create ~dir () in
      ignore (Janitizer.Driver.analyze_all ~store ~tool registry);
      match Store.peek store ~digest:(Jt_obj.Objfile.digest m) with
      | None -> Alcotest.fail "module missing from store"
      | Some ir -> (
        let key = Ir.Claims.key ~config:"jasan/11111" in
        match Ir.find_aux ir key with
        | None -> Alcotest.fail ("claims table missing under " ^ key)
        | Some payload ->
          let fns = Ir.Claims.decode payload in
          Alcotest.(check bool) "claims cover functions" true (fns <> []);
          let claims =
            List.concat_map (fun fc -> fc.Ir.Claims.fc_claims) fns
          in
          Alcotest.(check bool) "claims cover accesses" true (claims <> []);
          Alcotest.(check bool) "some accesses kept their check" true
            (List.exists (fun (_, c, _) -> c = Ir.Claims.checked) claims);
          (* and the payload codec round-trips *)
          Alcotest.(check bool) "claims round-trip" true
            (Ir.Claims.decode (Ir.Claims.encode fns) = fns)))

let () =
  Alcotest.run "ir"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_peek_digest;
          Alcotest.test_case "rejects malformed input" `Quick test_decode_rejects;
          Alcotest.test_case "real module round-trips" `Quick
            test_real_module_roundtrip;
        ] );
      ( "store-robustness",
        [
          Alcotest.test_case "truncated entry" `Quick test_store_truncated;
          Alcotest.test_case "garbage entry" `Quick test_store_garbage;
          Alcotest.test_case "wrong magic" `Quick test_store_wrong_magic;
          Alcotest.test_case "wrong schema version" `Quick
            test_store_wrong_version;
          Alcotest.test_case "stale digest" `Quick test_store_stale_digest;
        ] );
      ( "store",
        [
          Alcotest.test_case "warm load equivalence" `Quick
            test_warm_load_equivalence;
          Alcotest.test_case "single-flight" `Quick test_single_flight;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "gc and clear" `Quick test_gc_and_clear;
          Alcotest.test_case "update_aux" `Quick test_update_aux;
        ] );
      ( "driver",
        [
          Alcotest.test_case "analyze_all registry order" `Quick
            test_analyze_all_registry_order;
          Alcotest.test_case "claims aux persisted" `Quick
            test_claims_aux_persisted;
        ] );
    ]
