(* JASan detection and soundness tests, in hybrid and dynamic-only modes. *)

let run_jasan ?(hybrid = true) ?(liveness = Jt_jasan.Jasan.Live_full) m =
  let tool, _rt = Jt_jasan.Jasan.create ~liveness () in
  Janitizer.Driver.run ~hybrid ~tool ~registry:(Progs.registry_for m)
    ~main:m.Jt_obj.Objfile.name ()

let kinds (o : Janitizer.Driver.outcome) =
  List.sort_uniq compare
    (List.map (fun v -> v.Jt_vm.Vm.v_kind) o.o_result.r_violations)

let check_clean name (o : Janitizer.Driver.outcome) expected_out =
  Alcotest.(check (list string)) (name ^ " no violations") [] (kinds o);
  Alcotest.(check string) (name ^ " output") expected_out o.o_result.r_output

let test_clean_program () =
  let m = Progs.sum_prog () in
  check_clean "hybrid" (run_jasan m) (Progs.sum_expected 50);
  check_clean "dyn" (run_jasan ~hybrid:false m) (Progs.sum_expected 50)

let test_heap_overflow_detected () =
  let m = Progs.heap_overflow_prog () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string))
        (label ^ " detects")
        [ "heap-buffer-overflow" ] (kinds o);
      (* recover mode: the program still completes *)
      Alcotest.(check string) (label ^ " output") "1\n" o.o_result.r_output)
    [ ("hybrid", true); ("dyn", false) ]

let test_uaf_detected () =
  let m = Progs.uaf_prog () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string))
        (label ^ " detects")
        [ "heap-use-after-free" ] (kinds o))
    [ ("hybrid", true); ("dyn", false) ]

let test_stack_smash_detected () =
  let m = Progs.stack_smash_prog ~bad:true () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check bool)
        (label ^ " detects stack overflow")
        true
        (List.mem "stack-buffer-overflow" (kinds o)))
    [ ("hybrid", true); ("dyn", false) ]

let test_stack_good_clean () =
  let m = Progs.stack_smash_prog ~bad:false () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string)) (label ^ " clean") [] (kinds o);
      Alcotest.(check string) (label ^ " output") "3\n" o.o_result.r_output)
    [ ("hybrid", true); ("dyn", false) ]

let test_jit_code_covered () =
  (* Dynamically generated code must still be sanitized: generate code
     that stores past a heap buffer. *)
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  (* JIT body: st4 [r6 + 32], r0 ; ret   — r6 points to a 32-byte buffer *)
  let code =
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", 0)
      [ Insn.Store (Insn.W4, Insn.mem_base ~disp:32 Reg.r6, Insn.Reg Reg.r0); Insn.Ret ]
    |> fst
  in
  let store_bytes =
    List.concat
      (List.mapi
         (fun i c ->
           [
             movi Reg.r2 (Char.code c);
             I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:i Reg.r7, Jt_asm.Sinsn.Sreg Reg.r2));
           ])
         (List.init (String.length code) (String.get code)))
  in
  let m =
    build ~name:"jit_ov" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 32; call_import "malloc"; mov Reg.r6 Reg.r0;
             movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r7 Reg.r0;
           ]
          @ store_bytes
          @ [
              mov Reg.r0 Reg.r7; movi Reg.r1 64; syscall Sysno.cache_flush;
              call_reg Reg.r7;
            ]
          @ Progs.exit0);
      ]
  in
  let o = run_jasan m in
  Alcotest.(check (list string)) "jit overflow" [ "heap-buffer-overflow" ] (kinds o);
  Alcotest.(check bool) "covered dynamically" true (o.o_dynamic_fraction > 0.0)

(* A loop whose exit test (jne) defeats the SCEV pattern, so per-access
   MEM_CHECK rules remain and liveness data matters. *)
let churn_prog () =
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  build ~name:"churn" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 64;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r1 0;
           label "head";
           st (mem_b ~disp:0 Reg.r6) Reg.r1;
           st (mem_b ~disp:4 Reg.r6) Reg.r1;
           ld Reg.r2 (mem_b ~disp:8 Reg.r6);
           addi Reg.r1 1;
           cmpi Reg.r1 400;
           jcc Insn.Ne "head";
           mov Reg.r0 Reg.r1;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_liveness_reduces_cost () =
  let m = churn_prog () in
  let full = run_jasan ~liveness:Jt_jasan.Jasan.Live_full m in
  let base = run_jasan ~liveness:Jt_jasan.Jasan.Live_none m in
  Alcotest.(check string) "full output" "400\n" full.o_result.r_output;
  Alcotest.(check bool)
    "full liveness cheaper" true
    (full.o_result.r_cycles < base.o_result.r_cycles)

let test_hybrid_cheaper_than_dyn () =
  let m = Progs.sum_prog ~n:500 () in
  let hybrid = run_jasan m in
  let dyn = run_jasan ~hybrid:false m in
  Alcotest.(check bool)
    "hybrid cheaper" true
    (hybrid.o_result.r_cycles < dyn.o_result.r_cycles)

(* ---- allocator lifecycle: shadow contract of the Rt event handler ---- *)

(* Drive a bare allocator through [Rt.on_alloc_event], no VM needed. *)
let rt_harness ?reuse ?quarantine_capacity () =
  let alloc = Jt_vm.Alloc.create ?reuse ?quarantine_capacity () in
  let rt = Jt_jasan.Jasan.Rt.create () in
  let reports = ref [] in
  Jt_vm.Alloc.set_redzone alloc Jt_jasan.Jasan.redzone_bytes;
  Jt_vm.Alloc.subscribe alloc
    (Jt_jasan.Jasan.Rt.on_alloc_event rt
       ~report:(fun ~kind ~addr -> reports := (kind, addr) :: !reports));
  (alloc, rt, reports)

let freed_at rt x =
  match
    Jt_jasan.Shadow.first_poisoned (Jt_jasan.Jasan.Rt.shadow rt) x ~len:1
  with
  | Some (_, Jt_jasan.Shadow.Heap_freed) -> true
  | _ -> false

let test_zero_size_free () =
  (* Freeing a 0-byte block must poison 0 bytes: the byte at its base
     belongs to its own right redzone, and marking it [Heap_freed] used
     to misclassify later overflow probes (and outlive quarantine
     retirement, since the quarantine records a 0-byte range). *)
  let alloc, rt, reports = rt_harness () in
  let a = Jt_vm.Alloc.malloc alloc 0 in
  let b = Jt_vm.Alloc.malloc alloc 0 in
  Jt_vm.Alloc.free alloc a;
  Jt_vm.Alloc.free alloc b;
  for x = a - 16 to b + 16 do
    Alcotest.(check bool)
      (Printf.sprintf "no heap-freed byte at %#x" x)
      false (freed_at rt x)
  done;
  (* both bases still read as redzone, so an OOB probe keeps its
     honest "heap-buffer-overflow" verdict *)
  List.iter
    (fun x ->
      match
        Jt_jasan.Shadow.first_poisoned (Jt_jasan.Jasan.Rt.shadow rt) x ~len:1
      with
      | Some (_, Jt_jasan.Shadow.Heap_redzone) -> ()
      | _ -> Alcotest.failf "base %#x is not redzone" x)
    [ a; b ];
  Alcotest.(check int) "no bad-free reports" 0 (List.length !reports)

let test_bad_free_kinds () =
  let alloc, _rt, reports = rt_harness () in
  let a = Jt_vm.Alloc.malloc alloc 32 in
  Jt_vm.Alloc.free alloc a;
  Jt_vm.Alloc.free alloc a;
  Alcotest.(check (list (pair string int)))
    "second free of a dead block"
    [ ("double-free", a) ]
    !reports;
  Jt_vm.Alloc.free alloc (a + 8);
  Alcotest.(check (pair string int))
    "interior pointer"
    ("invalid-free", a + 8)
    (List.hd !reports);
  Jt_vm.Alloc.free alloc 0x7777_0000;
  Alcotest.(check (pair string int))
    "wild pointer"
    ("invalid-free", 0x7777_0000)
    (List.hd !reports)

let test_quarantine_holds_freed () =
  (* Default capacity: a freed block stays [Heap_freed] no matter how
     many same-size allocations follow (the bump allocator never hands
     its footprint back while quarantined). *)
  let alloc, rt, _ = rt_harness () in
  let a = Jt_vm.Alloc.malloc alloc 16 in
  Jt_vm.Alloc.free alloc a;
  for _ = 1 to 50 do
    ignore (Jt_vm.Alloc.malloc alloc 16)
  done;
  Alcotest.(check bool) "still freed" true (freed_at rt a);
  Alcotest.(check bool) "whole payload" true (freed_at rt (a + 15))

let test_quarantine_drain_and_reuse () =
  (* Capacity 0 retires a block the moment it is freed; in reuse mode
     the very next same-size malloc recycles the footprint — and the
     recycled block must come back fully addressable, with no stale
     [Heap_freed] byte. *)
  let alloc, rt, reports = rt_harness ~reuse:true ~quarantine_capacity:0 () in
  let a = Jt_vm.Alloc.malloc alloc 24 in
  Jt_vm.Alloc.free alloc a;
  Alcotest.(check int) "drained immediately" 0 (Jt_vm.Alloc.quarantined_bytes alloc);
  Alcotest.(check bool) "freed while retired" true (freed_at rt a);
  let b = Jt_vm.Alloc.malloc alloc 24 in
  Alcotest.(check int) "footprint recycled" a b;
  for x = b to b + 23 do
    Alcotest.(check bool)
      (Printf.sprintf "byte %#x live again" x)
      false (freed_at rt x)
  done;
  Alcotest.(check int) "no reports" 0 (List.length !reports)

let test_realloc_old_pointer_stays_poisoned () =
  (* The whole point of the quarantine: reallocation elsewhere must not
     clear the old footprint's [Heap_freed] state. *)
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  let m =
    build ~name:"stale_realloc" ~kind:Jt_obj.Objfile.Exec_nonpic
      ~deps:[ "libc.so" ] ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 16;
             call_import "malloc";
             mov Reg.r6 Reg.r0;
             mov Reg.r0 Reg.r6;
             movi Reg.r1 64;
             call_import "realloc";
             mov Reg.r7 Reg.r0;
             (* several fresh allocations between free and use *)
             movi Reg.r0 16;
             call_import "malloc";
             movi Reg.r0 16;
             call_import "malloc";
             ld Reg.r2 (mem_b ~disp:0 Reg.r6);
           ]
          @ Progs.exit0);
      ]
  in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string))
        (label ^ " stale pointer caught")
        [ "heap-use-after-free" ] (kinds o))
    [ ("hybrid", true); ("dyn", false) ]

let test_static_rules_emitted () =
  let m = Progs.sum_prog () in
  let tool, _ = Jt_jasan.Jasan.create () in
  let files = Janitizer.Driver.analyze_all ~tool (Progs.registry_for m) in
  let f = List.assoc "sum" files in
  let ids = List.map (fun r -> r.Jt_rules.Rules.rule_id) f.rf_rules in
  Alcotest.(check bool) "has noop marks" true (List.mem Jt_rules.Rules.no_op ids);
  Alcotest.(check bool)
    "has checks or hoisted checks" true
    (List.mem Jt_jasan.Jasan.Ids.mem_check ids
    || List.mem Jt_jasan.Jasan.Ids.range_check ids);
  (* Serialization roundtrip on real rule files. *)
  let f' = Jt_rules.Rules.(decode_file (encode_file f)) in
  Alcotest.(check int)
    "roundtrip count"
    (List.length f.rf_rules)
    (List.length f'.rf_rules);
  Alcotest.(check bool) "roundtrip equal" true (f = f')

let () =
  Alcotest.run "jasan"
    [
      ( "detection",
        [
          Alcotest.test_case "clean program" `Quick test_clean_program;
          Alcotest.test_case "heap overflow" `Quick test_heap_overflow_detected;
          Alcotest.test_case "use after free" `Quick test_uaf_detected;
          Alcotest.test_case "stack smash" `Quick test_stack_smash_detected;
          Alcotest.test_case "stack good" `Quick test_stack_good_clean;
          Alcotest.test_case "jit coverage" `Quick test_jit_code_covered;
        ] );
      ( "performance-model",
        [
          Alcotest.test_case "liveness opt" `Quick test_liveness_reduces_cost;
          Alcotest.test_case "hybrid vs dyn" `Quick test_hybrid_cheaper_than_dyn;
        ] );
      ( "alloc-lifecycle",
        [
          Alcotest.test_case "zero-size free poisons nothing" `Quick
            test_zero_size_free;
          Alcotest.test_case "bad-free kinds" `Quick test_bad_free_kinds;
          Alcotest.test_case "quarantine holds freed" `Quick
            test_quarantine_holds_freed;
          Alcotest.test_case "drain and reuse" `Quick
            test_quarantine_drain_and_reuse;
          Alcotest.test_case "realloc leaves stale poisoned" `Quick
            test_realloc_old_pointer_stays_poisoned;
        ] );
      ( "rules",
        [ Alcotest.test_case "static rules" `Quick test_static_rules_emitted ] );
    ]
