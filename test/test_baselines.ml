(* Baseline tools: detection envelopes and failure predicates that drive
   the paper's comparisons. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let vkinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let run_valgrind m =
  Jt_baselines.Valgrind_like.run ~registry:(Progs.registry_for m)
    ~main:m.Jt_obj.Objfile.name ()

let run_jasan m =
  let tool, _ = Jt_jasan.Jasan.create () in
  (Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
     ~main:m.Jt_obj.Objfile.name ())
    .o_result

let test_valgrind_detects () =
  let r = run_valgrind (Progs.heap_overflow_prog ()) in
  Alcotest.(check (list string)) "overflow" [ "heap-buffer-overflow" ] (vkinds r);
  let r = run_valgrind (Progs.uaf_prog ()) in
  Alcotest.(check (list string)) "uaf" [ "heap-use-after-free" ] (vkinds r);
  let r = run_valgrind (Progs.sum_prog ()) in
  Alcotest.(check (list string)) "clean" [] (vkinds r);
  Alcotest.(check string) "output" (Progs.sum_expected 50) r.r_output

(* Overflow into the 8-byte alignment slack: byte granularity (JASan)
   catches it, allocator-granularity redzones (Valgrind) do not. *)
let slack_overflow_prog () =
  build ~name:"slack" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 13;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r2 1;
           I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:14 Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
           movi Reg.r0 1;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_alignment_slack_divergence () =
  let m = slack_overflow_prog () in
  Alcotest.(check (list string))
    "jasan catches slack" [ "heap-buffer-overflow" ]
    (vkinds (run_jasan m));
  Alcotest.(check (list string)) "valgrind misses slack" [] (vkinds (run_valgrind m))

(* Heap-to-stack via direct pointer arithmetic: invisible to redzones;
   JASan sees it only if the canary is hit. *)
let heap_to_stack_prog ~hit_canary () =
  let locals = 16 in
  let disp = if hit_canary then -4 else -8 in
  build ~name:"h2s" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "victim"
        (Abi.frame_enter ~canary:true ~locals ()
        @ [
            (* a "corrupted heap pointer" that actually targets the stack *)
            lea Reg.r1 (mem_b ~disp Reg.fp);
            movi Reg.r2 0x41414141;
            st (mem_b ~disp:0 Reg.r1) Reg.r2;
            movi Reg.r0 0;
            (* repair the canary so the epilogue passes: the *detector*
               under test is the sanitizer, not the canary check *)
            load_canary Reg.r3;
            st (mem_b ~disp:(-4) Reg.fp) Reg.r3;
          ]
        @ Abi.frame_leave ~canary:true ~locals ());
      func "main" ([ call "victim" ] @ Progs.exit0);
    ]

let test_heap_to_stack_divergence () =
  let hit = heap_to_stack_prog ~hit_canary:true () in
  let miss = heap_to_stack_prog ~hit_canary:false () in
  Alcotest.(check bool)
    "jasan catches canary hit" true
    (List.mem "stack-buffer-overflow" (vkinds (run_jasan hit)));
  Alcotest.(check (list string)) "jasan misses non-canary" [] (vkinds (run_jasan miss));
  Alcotest.(check (list string)) "valgrind misses canary hit" [] (vkinds (run_valgrind hit));
  Alcotest.(check (list string)) "valgrind misses non-canary" [] (vkinds (run_valgrind miss))

(* Free-error kinds and the zero-size-free regression, through the
   Valgrind-like interposer (it keeps its own shadow + quarantine table,
   so the fixes must hold on both sanitizers). *)
let bad_free_prog ~wild () =
  build ~name:"badfree" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 16;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           mov Reg.r0 Reg.r6;
           call_import "free";
         ]
        @ (if wild then [ movi Reg.r0 0x1234 ] else [ mov Reg.r0 Reg.r6 ])
        @ [ call_import "free" ]
        @ Progs.exit0);
    ]

let test_valgrind_bad_free_kinds () =
  let r = run_valgrind (bad_free_prog ~wild:false ()) in
  Alcotest.(check (list string)) "double free" [ "double-free" ] (vkinds r);
  let r = run_valgrind (bad_free_prog ~wild:true ()) in
  Alcotest.(check (list string)) "wild free" [ "invalid-free" ] (vkinds r);
  let r = run_jasan (bad_free_prog ~wild:false ()) in
  Alcotest.(check (list string)) "jasan double free" [ "double-free" ] (vkinds r)

let zero_size_prog () =
  (* malloc(0), free, malloc(0), free, then a fresh 8-byte block used in
     bounds: pre-fix, each zero-size free poisoned 1 byte of foreign
     territory as heap-freed, turning later benign accesses (or honest
     overflow verdicts) into wrong reports *)
  build ~name:"zsz" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 0;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r0 0;
           call_import "malloc";
           mov Reg.r7 Reg.r0;
           mov Reg.r0 Reg.r6;
           call_import "free";
           mov Reg.r0 Reg.r7;
           call_import "free";
           movi Reg.r0 8;
           call_import "malloc";
           movi Reg.r2 5;
           st (mem_b ~disp:0 Reg.r0) Reg.r2;
           ld Reg.r3 (mem_b ~disp:4 Reg.r0);
           movi Reg.r0 1;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_zero_size_free_clean () =
  let m = zero_size_prog () in
  List.iter
    (fun (name, r) ->
      Alcotest.(check (list string)) (name ^ " clean") [] (vkinds r);
      Alcotest.(check string) (name ^ " output") "1\n" r.r_output)
    [ ("valgrind", run_valgrind m); ("jasan", run_jasan m) ]

let test_valgrind_slower_than_jasan () =
  let m = Progs.sum_prog ~n:400 () in
  let native = (Progs.run_native m).r_cycles in
  let v = (run_valgrind m).r_cycles in
  let j = (run_jasan m).r_cycles in
  Alcotest.(check bool) "valgrind slowest" true (v > j);
  Alcotest.(check bool) "valgrind heavy" true (float_of_int v /. float_of_int native > 5.0)

(* -- RetroWrite-like -- *)

let pic_overflow_prog () =
  build ~name:"pic_ov" ~kind:Jt_obj.Objfile.Exec_pic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 32;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r2 7;
           st (mem_b ~disp:32 Reg.r6) Reg.r2;
           movi Reg.r0 1;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_retrowrite_applicability () =
  let nonpic = Progs.heap_overflow_prog () in
  (match
     Jt_baselines.Retrowrite_like.run ~registry:(Progs.registry_for nonpic)
       ~main:"heap_ov" ()
   with
  | Error (Jt_baselines.Retrowrite_like.Needs_pic m) ->
    Alcotest.(check string) "refuses non-pic" "heap_ov" m
  | Error _ | Ok _ -> Alcotest.fail "expected Needs_pic");
  let cxx =
    build ~name:"cxx" ~kind:Jt_obj.Objfile.Exec_pic ~deps:[ "libc.so" ]
      ~features:[ Jt_obj.Objfile.Cxx_exceptions ] ~entry:"main"
      [ func "main" Progs.exit0 ]
  in
  match
    Jt_baselines.Retrowrite_like.run ~registry:(Progs.registry_for cxx) ~main:"cxx" ()
  with
  | Error (Jt_baselines.Retrowrite_like.Unsupported_feature ("cxx", _)) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unsupported_feature"

let test_retrowrite_detects_on_pic () =
  let m = pic_overflow_prog () in
  match
    Jt_baselines.Retrowrite_like.run ~registry:(Progs.registry_for m) ~main:"pic_ov" ()
  with
  | Ok r ->
    Alcotest.(check (list string)) "detects" [ "heap-buffer-overflow" ] (vkinds r);
    Alcotest.(check string) "output" "1\n" r.r_output
  | Error _ -> Alcotest.fail "should be applicable"

let test_retrowrite_misses_jit () =
  (* Same JIT overflow JASan catches (test_jasan): static-only rewriting
     cannot see dynamically generated code. *)
  let open Jt_asm.Sinsn in
  let code =
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", 0)
      [ Insn.Store (Insn.W4, Insn.mem_base ~disp:32 Reg.r6, Insn.Reg Reg.r0); Insn.Ret ]
    |> fst
  in
  let store_bytes =
    List.concat
      (List.mapi
         (fun i c ->
           [ movi Reg.r2 (Char.code c); I (Sstore (Insn.W1, mem_b ~disp:i Reg.r7, Sreg Reg.r2)) ])
         (List.init (String.length code) (String.get code)))
  in
  let m =
    build ~name:"jit_pic" ~kind:Jt_obj.Objfile.Exec_pic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 32; call_import "malloc"; mov Reg.r6 Reg.r0;
             movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r7 Reg.r0;
           ]
          @ store_bytes
          @ [
              mov Reg.r0 Reg.r7; movi Reg.r1 64; syscall Sysno.cache_flush;
              call_reg Reg.r7;
            ]
          @ Progs.exit0);
      ]
  in
  (match
     Jt_baselines.Retrowrite_like.run ~registry:(Progs.registry_for m) ~main:"jit_pic" ()
   with
  | Ok r -> Alcotest.(check (list string)) "retrowrite blind to jit" [] (vkinds r)
  | Error _ -> Alcotest.fail "applicable");
  let tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"jit_pic" ()
  in
  Alcotest.(check (list string))
    "jasan sees jit" [ "heap-buffer-overflow" ]
    (vkinds o.o_result)

(* RetroWrite rewrites object files, so registry plugins reached only
   through dlopen get instrumented too (whoever loads the file gets the
   rewritten version).  Non-PIC plugins always load at base 0 — the one
   base the loader re-uses across dlclose/dlopen cycles — which is what
   makes purging the runtime instrumentation map on unload load-bearing:
   entries that outlive their module would fire on whatever loads there
   next. *)

let plug name body =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic [ func ~exported:true "poke" body ]

(* Same .text layout up to the first instruction of [poke]: plugy's
   harmless [movi] sits at the exact link address of plugx's
   instrumented load. *)
let plugx () = plug "plugx.so" [ ld Reg.r2 (mem_b ~disp:0 Reg.r0); ret ]
let plugy () = plug "plugy.so" [ movi Reg.r2 9; ret ]

(* dlopen [target], dlsym "poke", run [arg] (sets r0), call it.  Leaves
   the module handle in r5. *)
let dl_call ~target ~arg =
  [
    addr_of_data ~pic:true Reg.r0 target;
    syscall Sysno.dlopen;
    mov Reg.r5 Reg.r0;
    addr_of_data ~pic:true Reg.r1 "pname";
    syscall Sysno.dlsym;
    mov Reg.r4 Reg.r0;
  ]
  @ arg
  @ [ call_reg Reg.r4 ]

let test_retrowrite_covers_plugins () =
  (* plugx's load runs against a redzone pointer: the rewritten plugin
     must detect it even though main never linked it. *)
  let m =
    build ~name:"plug_ov" ~kind:Jt_obj.Objfile.Exec_pic ~deps:[ "libc.so" ]
      ~entry:"main"
      ~datas:
        [
          data "xname" [ Dbytes "plugx.so\x00" ];
          data "pname" [ Dbytes "poke\x00" ];
        ]
      [
        func "main"
          ([ movi Reg.r0 16; call_import "malloc"; mov Reg.r6 Reg.r0 ]
          @ dl_call ~target:"xname"
              ~arg:[ lea Reg.r0 (mem_b ~disp:20 Reg.r6) ]
          @ [ movi Reg.r0 1; call_import "print_int" ]
          @ Progs.exit0);
      ]
  in
  match
    Jt_baselines.Retrowrite_like.run
      ~registry:[ m; Progs.libc; plugx (); plugy () ]
      ~main:"plug_ov" ()
  with
  | Ok r ->
    Alcotest.(check (list string))
      "plugin access checked" [ "heap-buffer-overflow" ] (vkinds r);
    Alcotest.(check string) "output" "1\n" r.r_output
  | Error _ -> Alcotest.fail "should be applicable"

let test_retrowrite_dlclose_reuse () =
  (* Round 1 exercises plugx's instrumented load (valid pointer), then
     dlcloses it; round 2 loads plugy at the reused base 0 and calls it
     with a redzone pointer in r0.  A stale plugx meta surviving the
     unload would evaluate [r0] at plugy's first instruction and report
     a heap-buffer-overflow that never happened. *)
  let m =
    build ~name:"dlreuse" ~kind:Jt_obj.Objfile.Exec_pic ~deps:[ "libc.so" ]
      ~entry:"main"
      ~datas:
        [
          data "xname" [ Dbytes "plugx.so\x00" ];
          data "yname" [ Dbytes "plugy.so\x00" ];
          data "pname" [ Dbytes "poke\x00" ];
        ]
      [
        func "main"
          ([ movi Reg.r0 16; call_import "malloc"; mov Reg.r6 Reg.r0 ]
          @ dl_call ~target:"xname" ~arg:[ mov Reg.r0 Reg.r6 ]
          @ [ mov Reg.r0 Reg.r5; syscall Sysno.dlclose ]
          @ dl_call ~target:"yname"
              ~arg:[ lea Reg.r0 (mem_b ~disp:20 Reg.r6) ]
          @ [ movi Reg.r0 1; call_import "print_int" ]
          @ Progs.exit0);
      ]
  in
  match
    Jt_baselines.Retrowrite_like.run
      ~registry:[ m; Progs.libc; plugx (); plugy () ]
      ~main:"dlreuse" ()
  with
  | Ok r ->
    Alcotest.(check (list string)) "no stale instrumentation" [] (vkinds r);
    Alcotest.(check string) "output" "1\n" r.r_output
  | Error _ -> Alcotest.fail "should be applicable"

(* -- Lockdown -- *)

(* The qsort pattern: a non-exported local comparator passed by value to
   a libc routine that calls it back. *)
let callback_prog () =
  let libc2 =
    build ~name:"libc.so" ~kind:Jt_obj.Objfile.Shared
      [
        func ~exported:true "__stack_chk_fail" [ movi Reg.r0 134; syscall Sysno.exit_ ];
        func ~exported:true "malloc" [ syscall Sysno.malloc; ret ];
        func ~exported:true "free" [ syscall Sysno.free; ret ];
        func ~exported:true "print_int" [ syscall Sysno.write_int; ret ];
        (* apply(f, x): r0 = fn ptr, r1 = arg *)
        func ~exported:true "apply"
          [ mov Reg.r4 Reg.r0; mov Reg.r0 Reg.r1; I (Jt_asm.Sinsn.Scall_ind_r Reg.r4); ret ];
      ]
  in
  let m =
    build ~name:"cbk" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "comparator" [ addi Reg.r0 1; ret ];
        func "main"
          ([
             addr_of_func ~pic:false Reg.r0 "comparator";
             movi Reg.r1 41;
             call_import "apply";
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  (m, [ m; libc2 ])

let test_lockdown_callback_fp () =
  let m, registry = callback_prog () in
  ignore m;
  let strong =
    Jt_baselines.Lockdown.run ~policy:Jt_baselines.Lockdown.Strong ~registry
      ~main:"cbk" ()
  in
  Alcotest.(check bool) "strong FPs" true strong.lk_false_positive;
  Alcotest.(check string) "still runs" "42\n" strong.lk_result.r_output;
  let weak =
    Jt_baselines.Lockdown.run ~policy:Jt_baselines.Lockdown.Weak ~registry
      ~main:"cbk" ()
  in
  Alcotest.(check bool) "weak clean" false weak.lk_false_positive;
  Alcotest.(check bool)
    "weak air <= strong air" true
    (weak.lk_dynamic_air <= strong.lk_dynamic_air);
  (* JCFI's address-taken analysis avoids this false positive. *)
  let tool, _ = Jt_jcfi.Jcfi.create () in
  let o = Janitizer.Driver.run ~tool ~registry ~main:"cbk" () in
  Alcotest.(check (list string)) "jcfi clean" [] (vkinds o.o_result)

let test_lockdown_clean_and_detects () =
  let m = Progs.indirect_prog () in
  let r =
    Jt_baselines.Lockdown.run ~registry:(Progs.registry_for m) ~main:"indirect" ()
  in
  Alcotest.(check bool) "clean" false r.lk_false_positive;
  Alcotest.(check string) "output" "222\n" r.lk_result.r_output;
  (* On toy-sized modules the absolute AIR is low (few bytes, generous
     per-function jump targets); ordering vs. JCFI is asserted at
     workload scale in test_workloads. *)
  Alcotest.(check bool)
    "air in range" true
    (r.lk_dynamic_air > 0.0 && r.lk_dynamic_air <= 100.0)

(* -- BinCFI -- *)

let test_bincfi_clean_and_air () =
  let m = Progs.indirect_prog () in
  (match
     Jt_baselines.Bincfi.run ~registry:(Progs.registry_for m) ~main:"indirect" ()
   with
  | Ok r ->
    Alcotest.(check (list string)) "clean" [] (vkinds r);
    Alcotest.(check string) "output" "222\n" r.r_output
  | Error _ -> Alcotest.fail "applicable");
  let air_bincfi = Jt_baselines.Bincfi.static_air (Progs.registry_for m) in
  let air_jcfi = Jt_jcfi.Air.static_jcfi (Progs.registry_for m) in
  (* JCFI > BinCFI ordering needs realistically sized binaries (BinCFI's
     scan set grows with code size); asserted in test_workloads. *)
  Alcotest.(check bool) "bincfi air in range" true (air_bincfi > 0.0 && air_bincfi < 100.0);
  Alcotest.(check bool) "jcfi air in range" true (air_jcfi > 0.0 && air_jcfi < 100.0)

let test_bincfi_breaks_on_data_in_code () =
  (* A module drowning in embedded data defeats static rewriting. *)
  let blob = String.make 600 '\xF7' in
  let m =
    build ~name:"datey" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main" (Progs.exit0 @ [ label "blob"; Bytes blob ]);
      ]
  in
  match
    Jt_baselines.Bincfi.run ~registry:(Progs.registry_for m) ~main:"datey" ()
  with
  | Error (Jt_baselines.Bincfi.Broken_rewrite "datey") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected broken rewrite"

let () =
  Alcotest.run "baselines"
    [
      ( "valgrind",
        [
          Alcotest.test_case "detects" `Quick test_valgrind_detects;
          Alcotest.test_case "slack divergence" `Quick test_alignment_slack_divergence;
          Alcotest.test_case "heap-to-stack divergence" `Quick test_heap_to_stack_divergence;
          Alcotest.test_case "bad-free kinds" `Quick test_valgrind_bad_free_kinds;
          Alcotest.test_case "zero-size free" `Quick test_zero_size_free_clean;
          Alcotest.test_case "overhead class" `Quick test_valgrind_slower_than_jasan;
        ] );
      ( "retrowrite",
        [
          Alcotest.test_case "applicability" `Quick test_retrowrite_applicability;
          Alcotest.test_case "detects on pic" `Quick test_retrowrite_detects_on_pic;
          Alcotest.test_case "misses jit" `Quick test_retrowrite_misses_jit;
          Alcotest.test_case "covers plugins" `Quick test_retrowrite_covers_plugins;
          Alcotest.test_case "dlclose/base reuse" `Quick test_retrowrite_dlclose_reuse;
        ] );
      ( "lockdown",
        [
          Alcotest.test_case "callback fp" `Quick test_lockdown_callback_fp;
          Alcotest.test_case "clean + air" `Quick test_lockdown_clean_and_detects;
        ] );
      ( "bincfi",
        [
          Alcotest.test_case "clean + air" `Quick test_bincfi_clean_and_air;
          Alcotest.test_case "data in code" `Quick test_bincfi_breaks_on_data_in_code;
        ] );
    ]
