(* IBL and trace formation are host-level dispatch fast paths: observable
   program behavior (exit status, output, instruction count, violations)
   must be bit-identical with them off — only simulated cycles may drop.
   Range invalidation (cache_flush, dlclose) must tear down any trace
   touching the range, and re-formation must work afterwards. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let observable (r : Jt_vm.Vm.result) =
  (r.r_status, r.r_output, r.r_icount, r.r_violations)

let run ?(chain = true) ?(ibl = true) ?(trace = true) ?registry m =
  let registry =
    match registry with Some r -> r | None -> Progs.registry_for m
  in
  let vm = Jt_vm.Vm.make ~registry in
  let engine = Jt_dbt.Dbt.create ~vm ~chain ~ibl ~trace () in
  Jt_vm.Vm.boot vm ~main:m.Jt_obj.Objfile.name;
  Jt_dbt.Dbt.run engine;
  (Jt_vm.Vm.result vm, engine, vm)

(* Every fast-path combination must agree on observable behavior, and
   the entry accounting identity must hold: every executed block arrives
   through exactly one of the dispatcher, a chain link, an IBL hit or a
   trace-interior transition. *)
let check_configs name m ?registry expected =
  let full, e_full, _ = run ?registry m in
  let results =
    [
      ("chain+ibl", run ~trace:false ?registry m);
      ("chain", run ~ibl:false ~trace:false ?registry m);
      ("bare", run ~chain:false ~ibl:false ~trace:false ?registry m);
    ]
  in
  Alcotest.(check string) (name ^ " output") expected full.r_output;
  List.iter
    (fun (cfg, (r, _, _)) ->
      Alcotest.(check bool)
        (name ^ " bit-identical vs " ^ cfg)
        true
        (observable r = observable full))
    results;
  List.iter
    (fun e ->
      let s = Jt_dbt.Dbt.stats e in
      Alcotest.(check int)
        (name ^ " entry accounting")
        s.st_block_execs
        (s.st_dispatch_entries + s.st_chain_hits + s.st_ibl_hits
       + s.st_trace_interior))
    (e_full :: List.map (fun (_, (_, e, _)) -> e) results);
  (full, e_full)

let test_trace_formation () =
  let m = Progs.sum_prog ~n:200 () in
  let _, e = check_configs "sum" m (Progs.sum_expected 200) in
  let s = Jt_dbt.Dbt.stats e in
  Alcotest.(check bool) "traces built" true (s.st_traces_built > 0);
  Alcotest.(check bool) "traces executed" true (s.st_trace_execs > 0);
  Alcotest.(check bool) "interior transitions" true (s.st_trace_interior > 0);
  Alcotest.(check bool) "traces live at exit" true (Jt_dbt.Dbt.traces_live e > 0);
  (* the hot loops run almost entirely inside traces: most block
     transfers become trace-interior transitions, and the dispatcher is
     entered no more often than with chaining alone *)
  let _, e_chain, _ = run ~ibl:false ~trace:false m in
  let s_chain = Jt_dbt.Dbt.stats e_chain in
  Alcotest.(check bool) "no extra dispatcher entries" true
    (s.st_dispatch_entries <= s_chain.st_dispatch_entries);
  (* the two-block loop traces turn half the loop's block transfers into
     interior transitions; with the warmup iterations that is still well
     over a third of all executed blocks *)
  Alcotest.(check bool) "traces carry the hot path" true
    (3 * s.st_trace_interior > s.st_block_execs)

(* A loop whose body is an indirect call through a stable function
   pointer: the per-site inline caches should absorb nearly every
   indirect transfer, and the cheaper hit charge shows up in cycles. *)
let ind_loop_prog ?(name = "indloop") ?(n = 100) () =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:[ data "fp" [ Dfuncptr "bump" ] ]
    [
      func "bump" [ addi Reg.r5 1; ret ];
      func "main"
        ([
           movi Reg.r5 0;
           addr_of_data ~pic:false Reg.r3 "fp";
           ld Reg.r4 (mem_b ~disp:0 Reg.r3);
           movi Reg.r1 0;
           label "loop";
           cmpi Reg.r1 n;
           jcc Insn.Ge "done";
           call_reg Reg.r4;
           addi Reg.r1 1;
           jmp "loop";
           label "done";
           mov Reg.r0 Reg.r5;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_ibl_hits () =
  let m = ind_loop_prog () in
  let _, _ = check_configs "indloop" m "100\n" in
  (* trace off isolates the IBL: the loop's call and return sites are
     monomorphic, so after the first miss everything hits *)
  let r_ibl, e, _ = run ~trace:false m in
  let s = Jt_dbt.Dbt.stats e in
  Alcotest.(check bool) "ibl hits dominate" true (s.st_ibl_hits >= 150);
  Alcotest.(check bool) "few ibl misses" true
    (s.st_ibl_misses * 10 <= s.st_ibl_hits);
  let r_noibl, _, _ = run ~ibl:false ~trace:false m in
  Alcotest.(check bool) "ibl hit charge is cheaper" true
    (r_ibl.r_cycles < r_noibl.r_cycles)

let test_reset_stats () =
  let m = Progs.sum_prog ~n:50 () in
  let _, e, _ = run m in
  Jt_dbt.Dbt.reset_stats e;
  let s = Jt_dbt.Dbt.stats e in
  Alcotest.(check int) "block execs zeroed" 0 s.st_block_execs;
  Alcotest.(check int) "chain hits zeroed" 0 s.st_chain_hits;
  Alcotest.(check int) "entries zeroed" 0 s.st_dispatch_entries;
  Alcotest.(check int) "ibl zeroed" 0 (s.st_ibl_hits + s.st_ibl_misses);
  Alcotest.(check int) "traces zeroed" 0
    (s.st_traces_built + s.st_trace_execs + s.st_trace_interior)

(* JIT helpers shared by the self-modifying-code programs: encode a tiny
   [mov r0, value; ret] function and store its bytes through [r6]. *)
let jit_code value =
  List.fold_left
    (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
    ("", 0)
    [ Insn.Mov (Reg.r0, Insn.Imm value); Insn.Ret ]
  |> fst

let jit_store_bytes code =
  List.concat
    (List.mapi
       (fun i c ->
         [
           movi Reg.r2 (Char.code c);
           I
             (Jt_asm.Sinsn.Sstore
                (Insn.W1, mem_b ~disp:i Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
         ])
       (List.init (String.length code) (String.get code)))

(* A hot round() whose body calls JIT-generated code; the code is then
   regenerated (cache_flush over the region) and round() runs again.
   The first trace contains the old JIT block, so the flush must kill
   it, and a fresh trace must form at the same loop head. *)
let jit_regen_hot_prog () =
  let regen value =
    jit_store_bytes (jit_code value)
    @ [ mov Reg.r0 Reg.r6; movi Reg.r1 64; syscall Sysno.cache_flush ]
  in
  build ~name:"jithot" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      (* 50 iterations: call the JIT'd function, accumulate into r5 *)
      func "round"
        [
          movi Reg.r1 0;
          label "loop";
          cmpi Reg.r1 50;
          jcc Insn.Ge "done";
          call_reg Reg.r6;
          add Reg.r5 Reg.r0;
          addi Reg.r1 1;
          jmp "loop";
          label "done";
          ret;
        ];
      func "main"
        ([ movi Reg.r5 0; movi Reg.r0 64; syscall Sysno.mmap_code;
           mov Reg.r6 Reg.r0 ]
        @ regen 1
        @ [ call "round" ]
        @ regen 2
        @ [ call "round"; mov Reg.r0 Reg.r5; call_import "print_int" ]
        @ Progs.exit0);
    ]

let test_flush_tears_down_trace () =
  let m = jit_regen_hot_prog () in
  (* 50*1 + 50*2 *)
  let _, e = check_configs "jithot" m "150\n" in
  let s = Jt_dbt.Dbt.stats e in
  Alcotest.(check bool) "trace re-formed after flush" true
    (s.st_traces_built >= 2);
  Alcotest.(check bool) "first trace torn down" true
    (Jt_dbt.Dbt.traces_live e < s.st_traces_built);
  (* the surviving round-2 trace calls into the JIT region, so an
     explicit flush over that region must kill it (traces elsewhere,
     e.g. in startup code, are untouched) *)
  let _, e2, vm2 = run m in
  let live_before = Jt_dbt.Dbt.traces_live e2 in
  Alcotest.(check bool) "live before flush" true (live_before > 0);
  Jt_vm.Vm.flush_range vm2 (fst Jt_vm.Vm.jit_region) 64;
  Alcotest.(check bool) "flush_range kills overlapping traces" true
    (Jt_dbt.Dbt.traces_live e2 < live_before)

(* dlclose/reopen at a reused base: the plugin is non-PIC, so the loader
   places it at base 0 on every load — the second round re-executes the
   same addresses with fresh code.  Stale traces and inline-cache
   entries from the first round must not survive the dlclose flush. *)
let dl_reuse_prog () =
  build ~name:"dlhot" ~kind:Jt_obj.Objfile.Exec_pic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:
      [
        data "modname" [ Dbytes "hotplug.so\x00" ];
        data "symname" [ Dbytes "tick\x00" ];
      ]
    [
      func "round"
        [
          addr_of_data ~pic:true Reg.r0 "modname";
          syscall Sysno.dlopen;
          mov Reg.r7 Reg.r0;
          addr_of_data ~pic:true Reg.r1 "symname";
          syscall Sysno.dlsym;
          mov Reg.r4 Reg.r0;
          movi Reg.r1 0;
          label "loop";
          cmpi Reg.r1 50;
          jcc Insn.Ge "done";
          call_reg Reg.r4;
          addi Reg.r1 1;
          jmp "loop";
          label "done";
          mov Reg.r0 Reg.r7;
          syscall Sysno.dlclose;
          ret;
        ];
      func "main"
        ([
           movi Reg.r5 0; call "round"; call "round"; mov Reg.r0 Reg.r5;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let hotplug =
  build ~name:"hotplug.so" ~kind:Jt_obj.Objfile.Exec_nonpic
    [ func ~exported:true "tick" [ addi Reg.r5 3; ret ] ]

let test_dlclose_reopen_reused_base () =
  let m = dl_reuse_prog () in
  let registry = [ m; Progs.libc; hotplug ] in
  (* 2 rounds * 50 calls * +3 *)
  let _, e = check_configs "dlhot" m ~registry "300\n" in
  let s = Jt_dbt.Dbt.stats e in
  Alcotest.(check bool) "trace re-formed after dlclose/reopen" true
    (s.st_traces_built >= 2);
  Alcotest.(check bool) "unloaded trace torn down" true
    (Jt_dbt.Dbt.traces_live e < s.st_traces_built)

(* -- trace-level check elision under invalidation -- *)

(* Raw engine with the JASan client attached (no static rules, so every
   block takes the dynamic-fallback path and its checks carry address
   keys for the trace-spine pass). *)
let run_jasan ?(trace_elide = true) ~registry m =
  Jt_metrics.Metrics.Counters.reset ();
  let tool, _rt = Jt_jasan.Jasan.create ~elide:true () in
  let vm = Jt_vm.Vm.make ~registry in
  let engine =
    Jt_dbt.Dbt.create ~vm ~trace_elide ~client:tool.Janitizer.Tool.t_client ()
  in
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
      tool.Janitizer.Tool.t_on_load vm l None);
  tool.Janitizer.Tool.t_setup vm;
  Jt_vm.Vm.boot vm ~main:m.Jt_obj.Objfile.name;
  Jt_dbt.Dbt.run engine;
  let snap = Jt_metrics.Metrics.Counters.(snapshot_of (current ())) in
  (Jt_vm.Vm.result vm, engine, vm, snap)

(* A hot loop that loads the same heap word twice (the second is a
   trace-dom elision candidate) and, every fourth iteration, rewrites
   the JIT region's bytes and cache-flushes it before calling the JIT
   code.  Trace recording starts on a flushing iteration, so the flush
   is a trace constituent upstream of the JIT block: when the flushing
   path next matches the trace, the flush kills the JIT constituent
   after the head was entered but before the interior reaches it — the
   mid-trace severing the side exit must recover from.  On the other
   iterations the trace runs (and elides) normally. *)
let smc_mid_trace_prog ?(n = 48) () =
  build ~name:"smchot" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r5 0;
           movi Reg.r0 64;
           syscall Sysno.mmap_code;
           mov Reg.r6 Reg.r0;
           movi Reg.r0 16;
           call_import "malloc";
           mov Reg.r7 Reg.r0;
           sti (mem_b ~disp:0 Reg.r7) 5;
           movi Reg.r4 0;
           label "loop";
           cmpi Reg.r4 n;
           jcc Insn.Ge "done";
           ld Reg.r1 (mem_b ~disp:0 Reg.r7);
           ld Reg.r2 (mem_b ~disp:0 Reg.r7);
           add Reg.r5 Reg.r2;
           mov Reg.r3 Reg.r4;
           andi Reg.r3 3;
           cmpi Reg.r3 0;
           jcc Insn.Ne "noflush";
         ]
        @ jit_store_bytes (jit_code 2)
        @ [
            mov Reg.r0 Reg.r6;
            movi Reg.r1 64;
            syscall Sysno.cache_flush;
            label "noflush";
            call_reg Reg.r6;
            add Reg.r5 Reg.r0;
            addi Reg.r4 1;
            jmp "loop";
            label "done";
            mov Reg.r0 Reg.r5;
            call_import "print_int";
          ]
        @ Progs.exit0);
    ]

(* The flush severs the trace mid-execution while trace-level elisions
   are active: the side exit must re-enable every elided check (observable
   behavior and the violation set are bit-identical with the pass off),
   and the elided-execution accounting must balance exactly. *)
let test_mid_trace_flush_elision () =
  let m = smc_mid_trace_prog () in
  let registry = Progs.registry_for m in
  let r_off, e_off, _, snap_off = run_jasan ~trace_elide:false ~registry m in
  let r_on, e_on, _, snap_on = run_jasan ~trace_elide:true ~registry m in
  (* 48 * (5 heap + 2 jit) *)
  Alcotest.(check string) "output" "336\n" r_on.r_output;
  Alcotest.(check bool)
    "observables identical with trace elision on" true
    (observable r_off = observable r_on);
  let s_on = Jt_dbt.Dbt.stats e_on in
  Alcotest.(check bool) "traces re-formed" true (s_on.st_traces_built >= 2);
  Alcotest.(check bool) "traces executed" true (s_on.st_trace_execs > 0);
  Alcotest.(check bool)
    "mid-trace flush tore traces down" true
    (Jt_dbt.Dbt.traces_live e_on < s_on.st_traces_built);
  let field k snap = List.assoc k snap in
  let elided snap =
    field "san_trace_elide_dom" snap
    + field "san_trace_elide_canary" snap
    + field "san_trace_elide_streak" snap
  in
  Alcotest.(check int) "baseline elides nothing at trace level" 0
    (elided snap_off);
  Alcotest.(check bool)
    "duplicate load elided inside the trace" true
    (field "san_trace_elide_dom" snap_on > 0);
  (* every check the baseline executes is either executed by the elided
     run too or accounted as an elided M_check execution — nothing is
     silently lost across the side exits *)
  Alcotest.(check int)
    "check executions balance"
    (field "san_checks" snap_off)
    (field "san_checks" snap_on
    + field "san_trace_elide_dom" snap_on
    + field "san_trace_elide_streak" snap_on);
  ignore e_off

(* After any storm of range invalidations, the O(1) live-trace count must
   agree with the full-recount oracle — the regression for the old
   O(traces · length) [traces_live] being replaced by an incremental
   counter. *)
let test_flush_storm_live_count () =
  let m = jit_regen_hot_prog () in
  let _, e, vm = run m in
  let agree label =
    Alcotest.(check int)
      label
      (Jt_dbt.Dbt.traces_live_scan e)
      (Jt_dbt.Dbt.traces_live e)
  in
  agree "live count agrees after the run";
  let base = fst Jt_vm.Vm.jit_region in
  for i = 0 to 15 do
    Jt_vm.Vm.flush_range vm (base + (i mod 4 * 16)) 16;
    agree (Printf.sprintf "live count agrees after flush %d" i)
  done;
  (* flush the whole low address space: every trace dies, and both
     counts say so *)
  Jt_vm.Vm.flush_range vm 0 (1 lsl 24);
  agree "live count agrees after full flush";
  Alcotest.(check int) "no trace survives a full flush" 0
    (Jt_dbt.Dbt.traces_live e)

(* End-to-end through the driver: a hot loop re-loading the same heap
   word settles into steady state, where the loop-invariant (streak)
   variant elides the per-iteration check; the decisions surface in the
   outcome for the CLI fact dump. *)
let dup_load_prog ?(n = 100) () =
  build ~name:"duphot" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 16;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           sti (mem_b ~disp:0 Reg.r6) 3;
           movi Reg.r5 0;
           movi Reg.r4 0;
           label "loop";
           cmpi Reg.r4 n;
           jcc Insn.Ge "done";
           ld Reg.r1 (mem_b ~disp:0 Reg.r6);
           ld Reg.r2 (mem_b ~disp:0 Reg.r6);
           add Reg.r5 Reg.r2;
           addi Reg.r4 1;
           jmp "loop";
           label "done";
           mov Reg.r0 Reg.r5;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

(* A counted loop over a heap array whose bound lives in a register:
   the static SCEV pass refuses to hoist it (a register bound cannot be
   proven stable to the preheader), so every iteration keeps its check —
   until the trace layer's induction guard observes the bound stable
   along the streak and trades the per-iteration checks for one pair of
   endpoint checks at streak onset. *)
let reg_bound_loop_prog ?(n = 256) () =
  build ~name:"indhot" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 (4 * n);
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r1 n;
           movi Reg.r4 0;
           label "fill";
           cmp Reg.r4 Reg.r1;
           jcc Insn.Ge "sum_init";
           st (mem_bi ~scale:4 Reg.r6 Reg.r4) Reg.r4;
           addi Reg.r4 1;
           jmp "fill";
           label "sum_init";
           movi Reg.r5 0;
           movi Reg.r4 0;
           label "sum";
           cmp Reg.r4 Reg.r1;
           jcc Insn.Ge "done";
           ld Reg.r2 (mem_bi ~scale:4 Reg.r6 Reg.r4);
           add Reg.r5 Reg.r2;
           addi Reg.r4 1;
           jmp "sum";
           label "done";
           mov Reg.r0 Reg.r5;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_induction_guard () =
  let m = reg_bound_loop_prog () in
  let registry = Progs.registry_for m in
  let r_off, _, _, snap_off = run_jasan ~trace_elide:false ~registry m in
  let r_on, _, _, snap_on = run_jasan ~trace_elide:true ~registry m in
  Alcotest.(check string) "output" "32640\n" r_on.r_output;
  Alcotest.(check bool)
    "observables identical with the guard active" true
    (observable r_off = observable r_on);
  let field k snap = List.assoc k snap in
  Alcotest.(check bool)
    "induction guard elided per-iteration checks" true
    (field "san_trace_elide_ind" snap_on > 0);
  Alcotest.(check bool)
    "elision saves real check work" true
    (2 * field "san_checks" snap_on < field "san_checks" snap_off);
  (* accounting: the elided run's executed checks plus its elided
     executions exceed the baseline's executed checks by exactly the
     guard's own endpoint checks — a nonnegative, even surplus *)
  let surplus =
    field "san_checks" snap_on
    + field "san_trace_elide_dom" snap_on
    + field "san_trace_elide_streak" snap_on
    + field "san_trace_elide_ind" snap_on
    - field "san_checks" snap_off
  in
  Alcotest.(check bool)
    "guard endpoint checks are the only surplus" true
    (surplus >= 2 && surplus mod 2 = 0)

let test_trace_elision_decisions () =
  let m = dup_load_prog () in
  let registry = Progs.registry_for m in
  let tool, _ = Jt_jasan.Jasan.create () in
  (* dynamic-only: the static pass would hoist the loop-invariant check
     out of the loop itself; the fallback path leaves per-iteration
     checks for the trace layer to elide *)
  let o =
    Janitizer.Driver.run ~hybrid:false ~tool ~registry ~main:"duphot" ()
  in
  Alcotest.(check string) "output" "300\n" o.o_result.r_output;
  Alcotest.(check bool)
    "a live trace carries elision decisions" true
    (List.exists (fun (_, ds) -> ds <> []) o.o_trace_elisions);
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun (_, reason, _) ->
          Alcotest.(check bool)
            ("known reason: " ^ reason)
            true
            (List.mem reason
               [ "trace-dom"; "trace-canary"; "trace-streak"; "trace-ind" ]))
        ds)
    o.o_trace_elisions;
  let snap = Jt_metrics.Metrics.Counters.(snapshot_of (current ())) in
  Alcotest.(check bool)
    "steady state elides the loop-invariant check" true
    (List.assoc "san_trace_elide_streak" snap > 0)

let () =
  Alcotest.run "dbt-traces"
    [
      ( "fastpaths",
        [
          Alcotest.test_case "trace formation" `Quick test_trace_formation;
          Alcotest.test_case "ibl hits" `Quick test_ibl_hits;
          Alcotest.test_case "reset stats" `Quick test_reset_stats;
          Alcotest.test_case "flush teardown" `Quick
            test_flush_tears_down_trace;
          Alcotest.test_case "dlclose reused base" `Quick
            test_dlclose_reopen_reused_base;
        ] );
      ( "trace-elide",
        [
          Alcotest.test_case "mid-trace flush" `Quick
            test_mid_trace_flush_elision;
          Alcotest.test_case "flush storm live count" `Quick
            test_flush_storm_live_count;
          Alcotest.test_case "induction guard" `Quick test_induction_guard;
          Alcotest.test_case "elision decisions" `Quick
            test_trace_elision_decisions;
        ] );
    ]
