(* Rewrite rules: serialization roundtrips, hash tables, PIC adjust. *)

let gen_rule =
  let open QCheck2.Gen in
  let* id = int_range 0 0xFFFF in
  let* bb = int_bound 0xFFFF_FFF in
  let* insn = int_bound 0xFFFF_FFF in
  let* nd = int_bound 4 in
  let* data = list_repeat nd (int_bound Jt_isa.Word.mask) in
  return (Jt_rules.Rules.make ~id ~bb ~insn ~data ())

let gen_file =
  let open QCheck2.Gen in
  let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 20) in
  let* stats =
    list_size (int_bound 5)
      (let* k = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
       let* v = int_bound Jt_isa.Word.mask in
       return (k, v))
  in
  let* rules = list_size (int_bound 200) gen_rule in
  return
    { Jt_rules.Rules.rf_module = name; rf_digest = ""; rf_stats = stats;
      rf_rules = rules }

let prop_roundtrip =
  QCheck2.Test.make ~name:"file encode/decode roundtrip" ~count:300 gen_file
    (fun f -> Jt_rules.Rules.(decode_file (encode_file f)) = f)

let mk ~id ~bb ~insn ?(data = []) () = Jt_rules.Rules.make ~id ~bb ~insn ~data ()

let test_table_lookup () =
  let f =
    {
      Jt_rules.Rules.rf_module = "m";
      rf_digest = "";
      rf_stats = [];
      rf_rules =
        [
          mk ~id:Jt_rules.Rules.no_op ~bb:0x100 ~insn:0x100 ();
          mk ~id:0x101 ~bb:0x200 ~insn:0x208 ~data:[ 2; 1 ] ();
          mk ~id:0x102 ~bb:0x200 ~insn:0x208 ();
          mk ~id:0x101 ~bb:0x200 ~insn:0x210 ();
        ];
    }
  in
  let t = Jt_rules.Rules.Table.load f ~base:0 ~pic:false in
  Alcotest.(check bool) "noop bb seen" true (Jt_rules.Rules.Table.bb_seen t 0x100);
  Alcotest.(check bool) "rule bb seen" true (Jt_rules.Rules.Table.bb_seen t 0x200);
  Alcotest.(check bool) "unknown bb" false (Jt_rules.Rules.Table.bb_seen t 0x300);
  Alcotest.(check int) "two rules at insn" 2
    (List.length (Jt_rules.Rules.Table.at_insn t 0x208));
  Alcotest.(check int) "noop filtered" 0
    (List.length (Jt_rules.Rules.Table.at_insn t 0x100));
  Alcotest.(check int) "size" 4 (Jt_rules.Rules.Table.size t)

let test_pic_adjustment () =
  let f =
    { Jt_rules.Rules.rf_module = "m";
      rf_digest = "";
      rf_stats = [];
      rf_rules = [ mk ~id:0x101 ~bb:0x40 ~insn:0x48 () ] }
  in
  let t = Jt_rules.Rules.Table.load f ~base:0x1000_0000 ~pic:true in
  Alcotest.(check bool) "adjusted bb" true
    (Jt_rules.Rules.Table.bb_seen t 0x1000_0040);
  Alcotest.(check bool) "link addr no longer matches" false
    (Jt_rules.Rules.Table.bb_seen t 0x40);
  (match Jt_rules.Rules.Table.at_insn t 0x1000_0048 with
  | [ r ] ->
    Alcotest.(check int) "rule bb adjusted" 0x1000_0040 r.bb;
    Alcotest.(check int) "rule insn adjusted" 0x1000_0048 r.insn
  | _ -> Alcotest.fail "expected one rule");
  (* non-PIC tables are not adjusted *)
  let t' = Jt_rules.Rules.Table.load f ~base:0x1000_0000 ~pic:false in
  Alcotest.(check bool) "non-pic unadjusted" true (Jt_rules.Rules.Table.bb_seen t' 0x40)

let test_decode_failures () =
  Alcotest.check_raises "bad magic" (Failure "Rules.decode_file: bad magic")
    (fun () -> ignore (Jt_rules.Rules.decode_file "NOPE"));
  let good =
    Jt_rules.Rules.encode_file
      { rf_module = "m"; rf_digest = ""; rf_stats = []; rf_rules = [] }
  in
  let truncated = String.sub good 0 (String.length good - 1) in
  Alcotest.check_raises "truncated" (Failure "Rules.decode_file: truncated")
    (fun () -> ignore (Jt_rules.Rules.decode_file truncated))

(* Regression: decode_file once filled data words via [Array.init], whose
   element evaluation order is unspecified — an order change would
   silently permute the words.  Four distinct values round-tripped
   in-order pins the explicit loop down. *)
let test_data_word_order () =
  let f =
    {
      Jt_rules.Rules.rf_module = "m";
      rf_digest = "";
      rf_stats = [];
      rf_rules =
        [ mk ~id:0x7 ~bb:0x100 ~insn:0x104 ~data:[ 0xAA; 0xBB; 0xCC; 0xDD ] () ];
    }
  in
  match (Jt_rules.Rules.(decode_file (encode_file f))).rf_rules with
  | [ r ] ->
    Alcotest.(check (array int)) "data words in written order"
      [| 0xAA; 0xBB; 0xCC; 0xDD |] r.data
  | _ -> Alcotest.fail "expected exactly one rule"

(* Regression: a corrupt header declaring ~4G rules must be rejected by
   the up-front count-vs-remaining-bytes check, not by spinning through
   the decode loop until a byte-level "truncated" failure. *)
let test_corrupt_count_bound () =
  let corrupt =
    (* magic, empty digest, name "m", no stats, count 0xFFFFFFFF, no
       rule bytes *)
    "JTR3" ^ "\x00" ^ "\x01\x00" ^ "m" ^ "\x00" ^ "\xff\xff\xff\xff"
  in
  Alcotest.check_raises "count bound"
    (Failure "Rules.decode_file: rule count exceeds file size") (fun () ->
      ignore (Jt_rules.Rules.decode_file corrupt))

(* Regression: [Table.load] used [prev @ [ r ]] per same-insn rule
   (quadratic); the linear rebuild must still present rules in file
   order at each instruction. *)
let test_table_same_insn_order () =
  let f =
    {
      Jt_rules.Rules.rf_module = "m";
      rf_digest = "";
      rf_stats = [];
      rf_rules =
        List.init 40 (fun i -> mk ~id:(0x100 + i) ~bb:0x200 ~insn:0x208 ());
    }
  in
  let t = Jt_rules.Rules.Table.load f ~base:0 ~pic:false in
  Alcotest.(check (list int)) "file order preserved at one insn"
    (List.init 40 (fun i -> 0x100 + i))
    (List.map
       (fun (r : Jt_rules.Rules.t) -> r.rule_id)
       (Jt_rules.Rules.Table.at_insn t 0x208))

(* v3 header: digest and stats survive the round trip, and the old v1/v2
   magics are rejected rather than misparsed. *)
let test_digest_roundtrip () =
  let digest = Digest.string "some module contents" in
  let stats = [ ("checks", 12); ("elide_frame", 3); ("elide_dom", 4) ] in
  let f =
    { Jt_rules.Rules.rf_module = "m"; rf_digest = digest; rf_stats = stats;
      rf_rules = [ mk ~id:1 ~bb:0 ~insn:0 () ] }
  in
  let f' = Jt_rules.Rules.(decode_file (encode_file f)) in
  Alcotest.(check string) "digest round trip" digest f'.rf_digest;
  Alcotest.(check (list (pair string int))) "stats round trip" stats f'.rf_stats;
  Alcotest.check_raises "v1 magic rejected"
    (Failure "Rules.decode_file: bad magic") (fun () ->
      ignore (Jt_rules.Rules.decode_file "JTRR\x01\x00m\x00\x00\x00\x00"));
  Alcotest.check_raises "v2 magic rejected"
    (Failure "Rules.decode_file: bad magic") (fun () ->
      ignore
        (Jt_rules.Rules.decode_file
           ("JTR2" ^ "\x00" ^ "\x01\x00" ^ "m" ^ "\x00\x00\x00\x00")))

let test_data_limit () =
  match Jt_rules.Rules.make ~id:1 ~bb:0 ~insn:0 ~data:[ 1; 2; 3; 4; 5 ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "rules"
    [
      ( "format",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "decode failures" `Quick test_decode_failures;
          Alcotest.test_case "data word order" `Quick test_data_word_order;
          Alcotest.test_case "corrupt count bound" `Quick
            test_corrupt_count_bound;
          Alcotest.test_case "digest round trip" `Quick test_digest_roundtrip;
          Alcotest.test_case "data limit" `Quick test_data_limit;
        ] );
      ( "tables",
        [
          Alcotest.test_case "lookup" `Quick test_table_lookup;
          Alcotest.test_case "same-insn order" `Quick test_table_same_insn_order;
          Alcotest.test_case "pic adjust" `Quick test_pic_adjustment;
        ] );
    ]
