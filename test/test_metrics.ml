(* Metrics: geomean guarding against non-positive cells (which used to
   poison the whole summary row through [log]), and the domain-local hot-path
   counters wired into the dispatcher and loader. *)

let geomean = Jt_metrics.Metrics.geomean

let test_geomean_empty () =
  Alcotest.(check (float 1e-9)) "empty list" 0.0 (geomean [])

let test_geomean_all_positive () =
  Alcotest.(check (float 1e-9)) "2,8 -> 4" 4.0 (geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 3.5 (geomean [ 3.5 ])

let test_geomean_skips_nonpositive () =
  (* pre-fix: log 0. = -inf collapsed the mean to 0, log of a negative
     made it nan *)
  let g = geomean [ 0.0; 2.0; 8.0 ] in
  Alcotest.(check bool) "finite with a zero cell" true (Float.is_finite g);
  Alcotest.(check (float 1e-9)) "zero skipped" 4.0 g;
  let g = geomean [ -3.0; 5.0 ] in
  Alcotest.(check bool) "finite with a negative cell" true (Float.is_finite g);
  Alcotest.(check (float 1e-9)) "negative skipped" 5.0 g;
  Alcotest.(check (float 1e-9)) "all non-positive" 0.0 (geomean [ 0.0; -1.0 ])

let test_counters_reset_snapshot () =
  let open Jt_metrics.Metrics.Counters in
  reset ();
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " zeroed") 0 v)
    (snapshot ());
  let c = current () in
  c.c_chain_hits <- 7;
  c.c_flush_visits <- 2;
  Alcotest.(check int) "chain hits read back" 7
    (List.assoc "chain_hits" (snapshot ()));
  Alcotest.(check int) "flush visits read back" 2
    (List.assoc "flush_visits" (snapshot ()));
  reset ();
  Alcotest.(check int) "reset" 0 (List.assoc "chain_hits" (snapshot ()))

let test_counters_instrument_dispatch () =
  let open Jt_metrics.Metrics.Counters in
  reset ();
  let m = Progs.sum_prog ~n:50 () in
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:"sum";
  Jt_dbt.Dbt.run engine;
  let c = current () in
  Alcotest.(check bool) "dispatcher entries counted" true
    (c.c_dispatch_entries > 0);
  Alcotest.(check bool) "chain hits counted" true (c.c_chain_hits > 0);
  Alcotest.(check bool) "module lookups counted" true
    (c.c_module_lookups > 0);
  Alcotest.(check bool) "lookup probes counted" true
    (c.c_lookup_probes >= c.c_module_lookups);
  reset ()

let () =
  Alcotest.run "metrics"
    [
      ( "geomean",
        [
          Alcotest.test_case "empty" `Quick test_geomean_empty;
          Alcotest.test_case "all positive" `Quick test_geomean_all_positive;
          Alcotest.test_case "non-positive skipped" `Quick
            test_geomean_skips_nonpositive;
        ] );
      ( "counters",
        [
          Alcotest.test_case "reset/snapshot" `Quick test_counters_reset_snapshot;
          Alcotest.test_case "dispatch instrumentation" `Quick
            test_counters_instrument_dispatch;
        ] );
    ]
