(* Helper analyses: liveness, canary detection, SCEV, def-use, stack. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let analyze_main funcs =
  let m =
    build ~name:"anl" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main" funcs
  in
  let sa = Janitizer.Static_analyzer.analyze m in
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  ( m,
    sa,
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = main_addr)
      sa.sa_fns )

(* Address of the k-th instruction of the function (by disassembly order). *)
let insn_addrs (fa : Janitizer.Static_analyzer.fn_analysis) =
  List.concat_map
    (fun (b : Jt_cfg.Cfg.block) ->
      Array.to_list (Array.map (fun i -> i.Jt_disasm.Disasm.d_addr) b.b_insns))
    (Jt_cfg.Cfg.fn_blocks fa.fa_fn)
  |> List.sort compare

let test_liveness_dead_after_last_use () =
  (* r1 dies after the mov r0, r1; flags die after the jcc consumer. *)
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r1 5;
            cmpi Reg.r1 3;
            jcc Insn.Gt "big";
            label "big";
            mov Reg.r0 Reg.r1;
            (* here r1 is dead *)
            movi Reg.r2 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  let addrs = insn_addrs fa in
  let live = fa.fa_liveness in
  (* before `mov r0, r1` (4th insn): flags have no remaining reader, and
     r3 was never live.  (r1 itself stays live: the exit syscall
     conservatively reads the argument registers.) *)
  let at = List.nth addrs 3 in
  Alcotest.(check bool)
    "r3 dead" true
    (List.exists (Reg.equal Reg.r3) (Jt_analysis.Liveness.dead_regs_before live at));
  Alcotest.(check bool) "flags dead" true
    (Jt_analysis.Liveness.flags_dead_before live at);
  (* before the jcc (3rd insn), flags are live *)
  let at_jcc = List.nth addrs 2 in
  Alcotest.(check bool) "flags live at jcc" false
    (Jt_analysis.Liveness.flags_dead_before live at_jcc)

let test_liveness_across_blocks () =
  (* r6 set in entry, used after the loop: must stay live through it. *)
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r6 42;
            movi Reg.r1 0;
            label "head";
            cmpi Reg.r1 4;
            jcc Insn.Ge "done";
            addi Reg.r1 1;
            jmp "head";
            label "done";
            mov Reg.r0 Reg.r6;
            syscall Sysno.exit_;
          ];
      ]
  in
  let addrs = insn_addrs fa in
  let live = fa.fa_liveness in
  (* inside the loop (the addi, 5th insn), r6 is live *)
  let at = List.nth addrs 4 in
  Alcotest.(check bool)
    "r6 live in loop" false
    (List.exists (Reg.equal Reg.r6) (Jt_analysis.Liveness.dead_regs_before live at))

let test_liveness_conservative_fallback () =
  let _, _, fa =
    analyze_main [ func "main" [ movi Reg.r0 0; syscall Sysno.exit_ ] ]
  in
  let c = Jt_analysis.Liveness.conservative fa.fa_fn in
  let addrs = insn_addrs fa in
  Alcotest.(check (list bool))
    "nothing dead" []
    (List.filter_map
       (fun a ->
         if Jt_analysis.Liveness.dead_regs_before c a <> [] then Some true else None)
       addrs)

let test_canary_detection () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          (Abi.frame_enter ~canary:true ~locals:16 ()
          @ [ sti (Abi.local 16 0) 1 ]
          @ Abi.frame_leave ~canary:true ~locals:16 ()
          @ [ movi Reg.r0 0; syscall Sysno.exit_ ]);
      ]
  in
  match fa.fa_canaries with
  | [ site ] ->
    Alcotest.(check int) "slot at fp-4" (-4) site.c_slot_disp;
    Alcotest.(check int) "one check load" 1 (List.length site.c_check_loads)
  | l -> Alcotest.failf "expected 1 canary site, got %d" (List.length l)

let test_scev_hoistable_loop () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r6 0x5000_0000;
            movi Reg.r1 0;
            label "head";
            cmpi Reg.r1 8;
            jcc Insn.Ge "done";
            st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "head";
            label "done";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  match fa.fa_scev with
  | [ s ] ->
    Alcotest.(check int) "init 0" 0 s.ls_init;
    Alcotest.(check bool) "imm bound" true (s.ls_bound = Jt_analysis.Scev.Bimm 8);
    Alcotest.(check int) "one affine access" 1 (List.length s.ls_affine)
  | l -> Alcotest.failf "expected 1 summary, got %d" (List.length l)

let test_scev_bails () =
  (* register bound, step 2, and jne-style loops must all bail *)
  let bail_cases =
    [
      (* register bound *)
      [
        movi Reg.r2 8; movi Reg.r1 0; label "h"; cmp Reg.r1 Reg.r2;
        jcc Insn.Ge "d"; st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
        addi Reg.r1 1; jmp "h"; label "d"; movi Reg.r0 0; syscall Sysno.exit_;
      ];
      (* step 2 *)
      [
        movi Reg.r1 0; label "h"; cmpi Reg.r1 8; jcc Insn.Ge "d";
        st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1; addi Reg.r1 2; jmp "h";
        label "d"; movi Reg.r0 0; syscall Sysno.exit_;
      ];
      (* jne loop shape *)
      [
        movi Reg.r1 0; label "h"; cmpi Reg.r1 8; jcc Insn.Eq "d";
        st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1; addi Reg.r1 1; jmp "h";
        label "d"; movi Reg.r0 0; syscall Sysno.exit_;
      ];
    ]
  in
  List.iteri
    (fun i body ->
      let _, _, fa = analyze_main [ func "main" body ] in
      Alcotest.(check int) (Printf.sprintf "case %d bails" i) 0
        (List.length fa.fa_scev))
    bail_cases

let test_defuse_traces_malloc () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r0 32;
            call_import "malloc";
            mov Reg.r6 Reg.r0;
            addi Reg.r6 8;
            st (mem_b ~disp:0 Reg.r6) Reg.r0;
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  let du = Jt_analysis.Defuse.analyze fa.fa_fn in
  let addrs = insn_addrs fa in
  (* at the store (5th insn), r6 derives from the call (allocation site) *)
  let at_store = List.nth addrs 4 in
  let from_call =
    Jt_analysis.Defuse.traces_to du at_store Reg.r6 ~pred:(fun i ->
        match i with Insn.Call _ -> true | _ -> false)
  in
  Alcotest.(check bool) "r6 from malloc" true from_call;
  (* r1 is unrelated *)
  let from_call_r1 =
    Jt_analysis.Defuse.traces_to du at_store Reg.r1 ~pred:(fun i ->
        match i with Insn.Call _ -> true | _ -> false)
  in
  Alcotest.(check bool) "r1 unrelated" false from_call_r1

let test_interproc_summaries () =
  (* leaf touches only r1; mid calls leaf; main calls mid.  The clobber
     summary of mid must be exactly {r1} ∪ mid's own writes, letting
     liveness keep r4 dead across the calls even without trusting the
     calling convention. *)
  let m =
    build ~name:"ipa" ~kind:Jt_obj.Objfile.Exec_nonpic
      ~features:[ Jt_obj.Objfile.Breaks_calling_convention ] ~entry:"main"
      [
        func "leaf" [ addi Reg.r1 1; ret ];
        func "mid" [ call "leaf"; addi Reg.r2 1; ret ];
        func "main"
          [
            movi Reg.r4 7;
            call "mid";
            mov Reg.r0 Reg.r4;
            syscall Sysno.exit_;
          ];
      ]
  in
  let cfg = Jt_cfg.Cfg.build (Jt_disasm.Disasm.run m) in
  let summaries = Jt_analysis.Interproc.summaries cfg in
  let addr_of name = (Jt_obj.Objfile.find_symbol m name |> Option.get).vaddr in
  let mid = Hashtbl.find summaries (addr_of "mid") in
  let mask rs = Jt_analysis.Liveness.reg_mask rs in
  Alcotest.(check bool)
    "mid clobbers r1,r2 (+sp), not r4" true
    (mid.ip_clobbers land mask [ Reg.r4 ] = 0
    && mid.ip_clobbers land mask [ Reg.r1; Reg.r2 ] = mask [ Reg.r1; Reg.r2 ]);
  (* calling something with an indirect call is summarized as everything *)
  let sa = Janitizer.Static_analyzer.analyze m in
  let main_fa =
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = addr_of "main")
      sa.sa_fns
  in
  (* at `mov r0, r4` (after the call), r5 is dead; and r4 was not
     clobbered so the value flows — check r5 deadness as the liveness
     witness *)
  let mov_addr =
    let b = Jt_cfg.Cfg.fn_blocks main_fa.fa_fn in
    List.concat_map
      (fun (b : Jt_cfg.Cfg.block) ->
        Array.to_list
          (Array.map (fun i -> (i.Jt_disasm.Disasm.d_addr, i.d_insn)) b.b_insns))
      b
    |> List.find_map (fun (a, i) ->
           match i with Jt_isa.Insn.Mov (_, Jt_isa.Insn.Reg _) -> Some a | _ -> None)
    |> Option.get
  in
  Alcotest.(check bool)
    "r5 dead after call in convention-breaking module" true
    (List.exists (Reg.equal Reg.r5)
       (Jt_analysis.Liveness.dead_regs_before main_fa.fa_liveness mov_addr))

let test_interproc_syscall_precision () =
  (* regression: the kernel interface used to be summarized as
     clobber-everything, so a callee that merely prints lost every
     caller value.  A syscall clobbers only r0 (the simulated kernel
     restores the rest), so [sysleaf]'s summary must keep r4 out of the
     clobber mask — making r4 live across the call in [main], the fact
     the old summary destroyed — while still marking the callee a
     shadow-state barrier (allocator events are syscall-gated). *)
  let m =
    build ~name:"ipa-sys" ~kind:Jt_obj.Objfile.Exec_nonpic
      ~features:[ Jt_obj.Objfile.Breaks_calling_convention ] ~entry:"main"
      [
        func "sysleaf" [ movi Reg.r0 42; syscall Sysno.write_int; ret ];
        func "main"
          [
            movi Reg.r4 7;
            call "sysleaf";
            mov Reg.r0 Reg.r4;
            syscall Sysno.exit_;
          ];
      ]
  in
  let cfg = Jt_cfg.Cfg.build (Jt_disasm.Disasm.run m) in
  let summaries = Jt_analysis.Interproc.summaries cfg in
  let addr_of name = (Jt_obj.Objfile.find_symbol m name |> Option.get).vaddr in
  let leaf = Hashtbl.find summaries (addr_of "sysleaf") in
  let mask rs = Jt_analysis.Liveness.reg_mask rs in
  Alcotest.(check bool)
    "syscall leaf spares r4" true
    (leaf.ip_clobbers land mask [ Reg.r4 ] = 0);
  Alcotest.(check bool) "syscall leaf clobbers r0" true
    (leaf.ip_clobbers land mask [ Reg.r0 ] <> 0);
  Alcotest.(check bool) "still a shadow-state barrier" true leaf.ip_barrier;
  let sa = Janitizer.Static_analyzer.analyze m in
  let main_fa =
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = addr_of "main")
      sa.sa_fns
  in
  let call_addr =
    List.concat_map
      (fun (b : Jt_cfg.Cfg.block) ->
        Array.to_list
          (Array.map (fun i -> (i.Jt_disasm.Disasm.d_addr, i.d_insn)) b.b_insns))
      (Jt_cfg.Cfg.fn_blocks main_fa.fa_fn)
    |> List.find_map (fun (a, i) ->
           match i with Jt_isa.Insn.Call _ -> Some a | _ -> None)
    |> Option.get
  in
  Alcotest.(check bool)
    "r4 live across the printing callee (previously lost)" true
    (not
       (List.exists (Reg.equal Reg.r4)
          (Jt_analysis.Liveness.dead_regs_before main_fa.fa_liveness call_addr)))

let test_stackinfo () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          (Abi.frame_enter ~canary:true ~locals:24 ()
          @ Abi.frame_leave ~canary:true ~locals:24 ()
          @ [ movi Reg.r0 0; syscall Sysno.exit_ ]);
      ]
  in
  let info = fa.fa_stack in
  Alcotest.(check (option int)) "frame" (Some 24) info.s_frame_size;
  Alcotest.(check bool) "canary" true info.s_has_canary_pattern;
  Alcotest.(check bool) "push bytes" true (info.s_push_bytes >= 4)

(* -- dominator tree -- *)

let diamond_fn () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            cmpi Reg.r0 0;
            jcc Insn.Eq "else_";
            movi Reg.r1 5;
            movi Reg.r3 1;
            jmp "join";
            label "else_";
            movi Reg.r2 6;
            movi Reg.r3 2;
            label "join";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  fa

let diamond_blocks fa =
  match
    List.sort compare
      (List.map
         (fun (b : Jt_cfg.Cfg.block) -> b.b_addr)
         (Jt_cfg.Cfg.fn_blocks fa.Janitizer.Static_analyzer.fa_fn))
  with
  | [ e; t; el; j ] -> (e, t, el, j)
  | l -> Alcotest.failf "expected 4 blocks, got %d" (List.length l)

let test_domtree_diamond () =
  let fa = diamond_fn () in
  let e, t, el, j = diamond_blocks fa in
  let dt = Jt_cfg.Domtree.compute fa.fa_fn in
  Alcotest.(check int) "entry" e (Jt_cfg.Domtree.entry dt);
  Alcotest.(check (option int)) "idom then" (Some e) (Jt_cfg.Domtree.idom dt t);
  Alcotest.(check (option int)) "idom else" (Some e) (Jt_cfg.Domtree.idom dt el);
  (* the join is dominated by the entry, not by either branch arm *)
  Alcotest.(check (option int)) "idom join" (Some e) (Jt_cfg.Domtree.idom dt j);
  Alcotest.(check (option int)) "entry has no idom" None (Jt_cfg.Domtree.idom dt e);
  Alcotest.(check bool) "entry dominates join" true (Jt_cfg.Domtree.dominates dt e j);
  Alcotest.(check bool) "dominates is reflexive" true (Jt_cfg.Domtree.dominates dt j j);
  Alcotest.(check bool)
    "then does not dominate join" false
    (Jt_cfg.Domtree.dominates dt t j);
  Alcotest.(check bool)
    "strict dominance is irreflexive" false
    (Jt_cfg.Domtree.strictly_dominates dt j j);
  Alcotest.(check (list int)) "chain from join" [ j; e ] (Jt_cfg.Domtree.dom_chain dt j);
  Alcotest.(check (list int))
    "children of entry" (List.sort compare [ t; el; j ])
    (List.sort compare (Jt_cfg.Domtree.children dt e))

(* -- generic dataflow solver -- *)

(* Definitely-/possibly-defined registers as bitmask lattices: union join
   gives the may-analysis, intersection the must-analysis (relying on the
   solver's optimistic initialization for the implicit top). *)
module Bits_may = struct
  type t = int

  let equal = Int.equal
  let join = ( lor )
  let widen = ( lor )
end

module Bits_must = struct
  type t = int

  let equal = Int.equal
  let join = ( land )
  let widen = ( land )
end

module May = Jt_analysis.Dataflow.Make (Bits_may)
module Must = Jt_analysis.Dataflow.Make (Bits_must)

let def_transfer (i : Jt_disasm.Disasm.insn_info) s =
  match i.d_insn with
  | Insn.Mov (rd, Insn.Imm _) -> s lor Jt_analysis.Liveness.reg_mask [ rd ]
  | _ -> s

let test_dataflow_may_vs_must () =
  let fa = diamond_fn () in
  let _, _, _, j = diamond_blocks fa in
  let mask rs = Jt_analysis.Liveness.reg_mask rs in
  let may = May.solve ~entry:0 ~transfer:def_transfer fa.fa_fn in
  let must = Must.solve ~entry:0 ~transfer:def_transfer fa.fa_fn in
  (* r1 defined on the then arm only, r2 on the else arm only, r3 on
     both: the may-join sees all three, the must-join only r3 *)
  let got_may = Option.get (May.block_in may j) in
  let got_must = Option.get (Must.block_in must j) in
  Alcotest.(check int)
    "may = union" (mask [ Reg.r1; Reg.r2; Reg.r3 ])
    got_may;
  Alcotest.(check int) "must = intersection" (mask [ Reg.r3 ]) got_must;
  (* out of the join block adds its own def of r0 *)
  Alcotest.(check int)
    "block_out replays the block"
    (mask [ Reg.r3; Reg.r0 ])
    (Option.get (Must.block_out must j));
  Alcotest.(check bool) "terminated" true (May.iterations may >= 4)

let test_dataflow_loop_fixpoint () =
  (* a loop must reach a fixpoint, and facts established before it
     survive it when nothing inside redefines them *)
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r6 42;
            movi Reg.r1 0;
            label "head";
            cmpi Reg.r1 4;
            jcc Insn.Ge "done";
            addi Reg.r1 1;
            jmp "head";
            label "done";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  let mask rs = Jt_analysis.Liveness.reg_mask rs in
  let must = Must.solve ~entry:0 ~transfer:def_transfer fa.fa_fn in
  let exit_block =
    List.fold_left max 0
      (List.map
         (fun (b : Jt_cfg.Cfg.block) -> b.b_addr)
         (Jt_cfg.Cfg.fn_blocks fa.fa_fn))
  in
  let got = Option.get (Must.block_in must exit_block) in
  Alcotest.(check int)
    "defs reach through the loop"
    (mask [ Reg.r6; Reg.r1 ])
    (got land mask [ Reg.r6; Reg.r1 ])

(* -- value-set analysis -- *)

let vsa_for funcs fname =
  let m =
    build ~name:"vsat" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main" funcs
  in
  let sa = Janitizer.Static_analyzer.analyze m in
  let addr = (Jt_obj.Objfile.find_symbol m fname |> Option.get).vaddr in
  let fa =
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = addr)
      sa.sa_fns
  in
  (fa, Jt_analysis.Vsa.analyze fa.fa_fn)

let test_vsa_sp_tracking () =
  let fa, v =
    vsa_for
      [
        func "victim"
          (Abi.frame_enter ~locals:16 ()
          @ [ sti (mem_b ~disp:(-8) Reg.fp) 7 ]
          @ Abi.frame_leave ~locals:16 ());
        func "main" ([ call "victim" ] @ Progs.exit0);
      ]
      "victim"
  in
  let addrs = insn_addrs fa in
  (* at function entry, sp is exactly the entry stack pointer *)
  (match Jt_analysis.Vsa.reg_before v (List.hd addrs) Reg.sp with
  | Jt_analysis.Vsa.Sprel { lo = 0; hi = 0 } -> ()
  | x -> Alcotest.failf "entry sp: %s" (Jt_analysis.Vsa.value_to_string x));
  (* the frame store's address is a singleton sp-relative offset below
     the entry sp *)
  let store =
    List.concat_map
      (fun (b : Jt_cfg.Cfg.block) -> Array.to_list b.b_insns)
      (Jt_cfg.Cfg.fn_blocks fa.fa_fn)
    |> List.find_map (fun (i : Jt_disasm.Disasm.insn_info) ->
           match i.d_insn with
           | Insn.Store (_, m, Insn.Imm _) -> Some (i, m)
           | _ -> None)
    |> Option.get
  in
  (match Jt_analysis.Vsa.mem_addr v (fst store) (snd store) with
  | Jt_analysis.Vsa.Sprel { lo; hi } ->
    Alcotest.(check bool) "singleton below entry sp" true (lo = hi && lo < 0)
  | x -> Alcotest.failf "store addr: %s" (Jt_analysis.Vsa.value_to_string x));
  Alcotest.(check bool) "not bailed" false (Jt_analysis.Vsa.bailed v);
  Alcotest.(check bool) "iterated" true (Jt_analysis.Vsa.iterations v > 0)

let test_vsa_and_mask_bounds () =
  let fa, v =
    vsa_for
      [
        func "main"
          ([
             call_import "read_int";
             mov Reg.r3 Reg.r0;
             andi Reg.r3 7;
             mov Reg.r4 Reg.r3;
           ]
          @ Progs.exit0);
      ]
      "main"
  in
  let addrs = insn_addrs fa in
  (* before the andi (3rd insn) r3 is unknown; after it (4th insn) the
     mask bounds it in [0,7] *)
  (match Jt_analysis.Vsa.reg_before v (List.nth addrs 2) Reg.r3 with
  | Jt_analysis.Vsa.Top -> ()
  | x -> Alcotest.failf "pre-mask: %s" (Jt_analysis.Vsa.value_to_string x));
  match Jt_analysis.Vsa.reg_before v (List.nth addrs 3) Reg.r3 with
  | Jt_analysis.Vsa.Cst { lo = 0; hi = 7 } -> ()
  | x -> Alcotest.failf "post-mask: %s" (Jt_analysis.Vsa.value_to_string x)

let test_vsa_loop_widens () =
  let fa, v =
    vsa_for
      [
        func "main"
          [
            movi Reg.r6 0x5000_0000;
            movi Reg.r1 0;
            label "head";
            cmpi Reg.r1 8;
            jcc Insn.Ge "done";
            st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "head";
            label "done";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ]
      ]
      "main"
  in
  let addrs = insn_addrs fa in
  let sp0 = Word.of_int 0x7000_0000 in
  (* at the store (5th insn): the loop counter has been widened to an
     over-approximation covering values far past the bound, while the
     loop-invariant base keeps its exact value *)
  let r1 = Jt_analysis.Vsa.reg_before v (List.nth addrs 4) Reg.r1 in
  Alcotest.(check bool)
    "widened counter covers 0" true
    (Jt_analysis.Vsa.contains ~sp0 r1 (Word.of_int 0));
  Alcotest.(check bool)
    "widened counter covers 1_000_000" true
    (Jt_analysis.Vsa.contains ~sp0 r1 (Word.of_int 1_000_000));
  match Jt_analysis.Vsa.reg_before v (List.nth addrs 4) Reg.r6 with
  | Jt_analysis.Vsa.Cst { lo; hi } ->
    Alcotest.(check bool) "base stays exact" true
      (lo = 0x5000_0000 && hi = 0x5000_0000)
  | x -> Alcotest.failf "base: %s" (Jt_analysis.Vsa.value_to_string x)

let test_vsa_bails_without_conventions () =
  let m =
    build ~name:"vsab" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [ func "main" ([ movi Reg.r1 3 ] @ Progs.exit0) ]
  in
  let sa = Janitizer.Static_analyzer.analyze m in
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  let fa =
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = main_addr)
      sa.sa_fns
  in
  let v = Jt_analysis.Vsa.analyze ~trust_conventions:false fa.fa_fn in
  Alcotest.(check bool) "bailed" true (Jt_analysis.Vsa.bailed v);
  let addrs = insn_addrs fa in
  match Jt_analysis.Vsa.reg_before v (List.nth addrs 1) Reg.r1 with
  | Jt_analysis.Vsa.Top -> ()
  | x -> Alcotest.failf "bailed query: %s" (Jt_analysis.Vsa.value_to_string x)

let () =
  Alcotest.run "analysis"
    [
      ( "liveness",
        [
          Alcotest.test_case "dead after use" `Quick test_liveness_dead_after_last_use;
          Alcotest.test_case "across blocks" `Quick test_liveness_across_blocks;
          Alcotest.test_case "conservative" `Quick test_liveness_conservative_fallback;
        ] );
      ("canary", [ Alcotest.test_case "detection" `Quick test_canary_detection ]);
      ( "scev",
        [
          Alcotest.test_case "hoistable" `Quick test_scev_hoistable_loop;
          Alcotest.test_case "bails" `Quick test_scev_bails;
        ] );
      ("defuse", [ Alcotest.test_case "malloc chain" `Quick test_defuse_traces_malloc ]);
      ("domtree", [ Alcotest.test_case "diamond" `Quick test_domtree_diamond ]);
      ( "dataflow",
        [
          Alcotest.test_case "may vs must" `Quick test_dataflow_may_vs_must;
          Alcotest.test_case "loop fixpoint" `Quick test_dataflow_loop_fixpoint;
        ] );
      ( "vsa",
        [
          Alcotest.test_case "sp tracking" `Quick test_vsa_sp_tracking;
          Alcotest.test_case "and mask" `Quick test_vsa_and_mask_bounds;
          Alcotest.test_case "loop widening" `Quick test_vsa_loop_widens;
          Alcotest.test_case "convention bail" `Quick test_vsa_bails_without_conventions;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "summaries" `Quick test_interproc_summaries;
          Alcotest.test_case "syscall precision" `Quick
            test_interproc_syscall_precision;
        ] );
      ("stack", [ Alcotest.test_case "info" `Quick test_stackinfo ]);
    ]
