(* Attack scenarios beyond the unit detections: multi-gadget ROP chains,
   GOT overwrites, out-of-bounds jump-table dispatch.  Each scenario runs
   natively (attack succeeds or silently corrupts) and under the relevant
   tool (attack reported). *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let vkinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let run_jcfi m =
  let tool, _ = Jt_jcfi.Jcfi.create () in
  (Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
     ~main:m.Jt_obj.Objfile.name ())
    .o_result

let run_jasan m =
  let tool, _ = Jt_jasan.Jasan.create () in
  (Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
     ~main:m.Jt_obj.Objfile.name ())
    .o_result

(* -- ROP chain: the victim's return address is redirected to gadget1,
   whose ret pops the address of gadget2 planted on the stack, and so
   on: every stage must trip the shadow stack. -- *)
let rop_chain_prog () =
  build ~name:"ropchain" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "gadget1" [ movi Reg.r0 1; call_import "print_int"; ret ];
      func "gadget2" [ movi Reg.r0 2; call_import "print_int"; ret ];
      func "victim"
        [
          (* plant the chain: overwrite own ret with gadget1 and push
             gadget2 beneath it so gadget1's ret "returns" into it *)
          addr_of_func ~pic:false Reg.r1 "gadget2";
          st (mem_b ~disp:4 Reg.sp) Reg.r1;
          addr_of_func ~pic:false Reg.r1 "gadget1";
          st (mem_b ~disp:0 Reg.sp) Reg.r1;
          ret;
        ];
      func "main"
        ([
           subi Reg.sp 4 (* room for the second chain slot *);
           call "victim";
           (* gadget2's final ret lands here via the planted slot *)
           addi Reg.sp 0;
           movi Reg.r0 99;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_rop_chain () =
  let m = rop_chain_prog () in
  let native = Progs.run_native m in
  (* natively the chain executes: both gadgets print *)
  Alcotest.(check bool)
    "chain runs natively" true
    (String.length native.r_output >= 4
    && String.sub native.r_output 0 4 = "1\n2\n");
  let r = run_jcfi m in
  (* the chain is caught at its pivot (the victim's corrupted return);
     subsequent stages run against an empty shadow stack, which the
     startup-frame allowance accepts — detection happens at the first,
     security-relevant event *)
  let rets =
    List.length (List.filter (fun v -> v.Jt_vm.Vm.v_kind = "cfi-ret") r.r_violations)
  in
  Alcotest.(check bool) "pivot flagged" true (rets >= 1)

(* -- GOT overwrite: a heap overflow reaches a GOT slot, so the next
   call through the PLT dispatches to the attacker's function. -- *)
let got_overwrite_prog () =
  build ~name:"gotow" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "evil" [ movi Reg.r0 0; movi Reg.r0 666; syscall Sysno.write_int; ret ];
      func "main"
        ([
           (* warm the PLT so the GOT holds print_int's real address *)
           movi Reg.r0 7;
           call_import "print_int";
           (* "corrupt" the GOT slot of print_int with a mid-function
              gadget inside evil (skipping its first 6-byte movi), as an
              arbitrary-write primitive would *)
           I
             (Jt_asm.Sinsn.Slea
                (Reg.r1,
                 { Jt_asm.Sinsn.sbase = None; sindex = None; sscale = 1;
                   sdisp = Jt_asm.Sinsn.Dgot "print_int" }));
           addr_of_func ~pic:false Reg.r2 "evil";
           addi Reg.r2 6;
           st (mem_b ~disp:0 Reg.r1) Reg.r2;
           (* this call should print 8; after the overwrite it runs evil *)
           movi Reg.r0 8;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_got_overwrite () =
  let m = got_overwrite_prog () in
  let native = Progs.run_native m in
  Alcotest.(check string) "hijack works natively" "7\n666\n" native.r_output;
  let r = run_jcfi m in
  (* the PLT stub's indirect jump now targets a non-exported function of
     another module: flagged *)
  Alcotest.(check bool)
    "jcfi flags the redirected PLT jump" true
    (List.mem "cfi-ijmp" (vkinds r))

(* -- unchecked jump-table index: dispatch past the end of a 2-entry
   pointer table calls whatever word sits next in .data. -- *)
let table_oob_prog () =
  build ~name:"taboob" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:
      [
        data "table" [ Dfuncptr "case0"; Dfuncptr "case1" ];
        (* the adjacent attacker-influenced word: a mid-function address *)
        data "next" [ Dlabelptr ("gadget", "mid") ];
      ]
    [
      func "case0" [ movi Reg.r0 10; ret ];
      func "case1" [ movi Reg.r0 20; ret ];
      func "gadget"
        [ movi Reg.r0 0; label "mid"; movi Reg.r0 31337; ret ];
      func "main"
        ([
           movi Reg.r1 2 (* out of bounds: table has 2 entries *);
           addr_of_data ~pic:false Reg.r2 "table";
           ld Reg.r4 (mem_bi ~scale:4 Reg.r2 Reg.r1);
           call_reg Reg.r4;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_table_oob_dispatch () =
  let m = table_oob_prog () in
  let native = Progs.run_native m in
  Alcotest.(check string) "oob dispatch runs the gadget" "31337\n" native.r_output;
  let r = run_jcfi m in
  (* the mid-function target is not a valid indirect-call destination *)
  Alcotest.(check bool) "jcfi flags it" true (List.mem "cfi-icall" (vkinds r))

let () =
  Alcotest.run "attacks"
    [
      ( "scenarios",
        [
          Alcotest.test_case "rop chain" `Quick test_rop_chain;
          Alcotest.test_case "got overwrite" `Quick test_got_overwrite;
          Alcotest.test_case "table oob" `Quick test_table_oob_dispatch;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "double free" `Quick (fun () ->
              let m =
                build ~name:"dblf" ~kind:Jt_obj.Objfile.Exec_nonpic
                  ~deps:[ "libc.so" ] ~entry:"main"
                  [
                    func "main"
                      ([
                         movi Reg.r0 32;
                         call_import "malloc";
                         mov Reg.r6 Reg.r0;
                         call_import "free";
                         mov Reg.r0 Reg.r6;
                         call_import "free";
                       ]
                      @ Progs.exit0);
                  ]
              in
              Alcotest.(check bool)
                "double free reported" true
                (List.mem "double-free" (vkinds (run_jasan m))));
          Alcotest.test_case "wild free" `Quick (fun () ->
              let m =
                build ~name:"wildf" ~kind:Jt_obj.Objfile.Exec_nonpic
                  ~deps:[ "libc.so" ] ~entry:"main"
                  [
                    func "main"
                      ([ movi Reg.r0 0x5000_1234; call_import "free" ]
                      @ Progs.exit0);
                  ]
              in
              Alcotest.(check bool)
                "wild free reported" true
                (List.mem "invalid-free" (vkinds (run_jasan m))));
        ] );
    ]
