(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 6).

     dune exec bench/main.exe                       -- everything
     dune exec bench/main.exe -- fig7               -- one figure
     dune exec bench/main.exe -- --jobs 4 fig7      -- measure workloads in parallel
     dune exec bench/main.exe -- parallel --jobs 4  -- sequential-vs-parallel sweep
     dune exec bench/main.exe -- list               -- available targets

   Absolute numbers come from the simulator's cycle model (lib/vm/cost.ml)
   and are calibrated for shape, not for matching the authors' hardware;
   EXPERIMENTS.md records paper-vs-measured for each figure.

   `--jobs N` runs per-workload measurements as independent jobs on a
   [Jt_pool] domain pool.  Parallelism is wall-clock only: the counters
   and trace sinks are domain-local, every job builds its own workload,
   VM and tool instances, and the `parallel` target asserts that the
   parallel sweep's per-workload results are bit-identical to the
   sequential ones. *)

open Jt_workloads

let jobs = ref 1

(* ---- per-benchmark measurement cache ---- *)

type bench_runs = {
  b_sheet : Sheet.t;
  b_native_cycles : int;
  b_native_output : string;
  b_null : float;
  b_jasan_h : float;
  b_jasan_b : float;
  b_jasan_d : float;
  b_valgrind : float;
  b_retrowrite : Jt_metrics.Metrics.cell;
  b_jcfi_h : float;
  b_jcfi_d : float;
  b_jcfi_fwd : float;
  b_lockdown : Jt_metrics.Metrics.cell;
  b_bincfi : Jt_metrics.Metrics.cell;
  b_dynfrac : float;
  b_dair_h : float;
  b_dair_d : float;
  b_lk_s_air : Jt_metrics.Metrics.cell;
  b_lk_w_air : Jt_metrics.Metrics.cell;
  b_sair_jcfi : float;
  b_sair_bincfi : Jt_metrics.Metrics.cell;
  mutable b_sound : bool;
}

let cache : (string, bench_runs) Hashtbl.t = Hashtbl.create 32

let ratio c n = float_of_int c /. float_of_int n

(* The full ~12-configuration measurement of one workload, cache-free:
   safe to run as a pool job (everything it touches is job-local). *)
let measure_fresh (s : Sheet.t) =
    let w = Specgen.build s in
    let registry = w.w_registry in
    let main = s.s_name in
    let native = Specgen.run_native w in
    let n = native.r_cycles in
    let sound = ref true in
    let check_out (r : Jt_vm.Vm.result) =
      if r.r_output <> native.r_output || r.r_status <> native.r_status then
        sound := false
    in
    let run_tool ?(hybrid = true) mk =
      let tool = mk () in
      let o = Janitizer.Driver.run ~hybrid ~tool ~registry ~main () in
      check_out o.o_result;
      o
    in
    let null = Janitizer.Driver.run_null ~registry ~main () in
    check_out null.o_result;
    let jasan_h = run_tool (fun () -> fst (Jt_jasan.Jasan.create ())) in
    let jasan_b =
      run_tool (fun () ->
          fst (Jt_jasan.Jasan.create ~liveness:Jt_jasan.Jasan.Live_none ()))
    in
    let jasan_d = run_tool ~hybrid:false (fun () -> fst (Jt_jasan.Jasan.create ())) in
    let valgrind = Jt_baselines.Valgrind_like.run ~registry ~main () in
    check_out valgrind;
    (* RetroWrite gets the PIC build it requires (the original paper's
       setup); its slowdown is measured against the PIC native run. *)
    let retrowrite =
      let wp = Specgen.build ~kind:Jt_obj.Objfile.Exec_pic s in
      match
        Jt_baselines.Retrowrite_like.run ~registry:wp.w_registry ~main ()
      with
      | Ok r ->
        let np = Specgen.run_native wp in
        if r.r_output <> np.r_output then sound := false;
        Jt_metrics.Metrics.Value (ratio r.r_cycles np.r_cycles)
      | Error (Jt_baselines.Retrowrite_like.Needs_pic m) ->
        Jt_metrics.Metrics.Fail ("non-PIC: " ^ m)
      | Error (Jt_baselines.Retrowrite_like.Unsupported_feature (m, f)) ->
        Jt_metrics.Metrics.Fail (m ^ ": " ^ f)
      | Error Jt_baselines.Retrowrite_like.Applicable -> assert false
    in
    let run_jcfi ?(hybrid = true) ?config () =
      let tool, rt = Jt_jcfi.Jcfi.create ?config () in
      let o = Janitizer.Driver.run ~hybrid ~tool ~registry ~main () in
      check_out o.o_result;
      (o, rt)
    in
    let jcfi_h, rt_h = run_jcfi () in
    let jcfi_d, rt_d = run_jcfi ~hybrid:false () in
    let jcfi_fwd, _ =
      run_jcfi ~config:{ Jt_jcfi.Jcfi.cf_forward = true; cf_backward = false } ()
    in
    let lockdown, lk_s_air, lk_w_air =
      if s.s_fails_lockdown then
        ( Jt_metrics.Metrics.Fail "crash (as in the original paper)",
          Jt_metrics.Metrics.Fail "-",
          Jt_metrics.Metrics.Fail "-" )
      else begin
        let lk = Jt_baselines.Lockdown.run ~registry ~main () in
        let lkw =
          Jt_baselines.Lockdown.run ~policy:Jt_baselines.Lockdown.Weak ~registry
            ~main ()
        in
        if lk.lk_result.r_output <> native.r_output then sound := false;
        ( Jt_metrics.Metrics.Value (ratio lk.lk_result.r_cycles n),
          Jt_metrics.Metrics.Value lk.lk_dynamic_air,
          Jt_metrics.Metrics.Value lkw.lk_dynamic_air )
      end
    in
    let bincfi =
      match Jt_baselines.Bincfi.run ~registry ~main () with
      | Ok r ->
        check_out r;
        Jt_metrics.Metrics.Value (ratio r.r_cycles n)
      | Error (Jt_baselines.Bincfi.Broken_rewrite m) ->
        Jt_metrics.Metrics.Fail ("broken rewrite: " ^ m)
      | Error Jt_baselines.Bincfi.Applicable -> assert false
    in
    let closure = Janitizer.Driver.static_closure ~registry ~main in
    let sair_jcfi = Jt_jcfi.Air.static_jcfi closure in
    let sair_bincfi =
      match Jt_baselines.Bincfi.applicability ~registry ~main with
      | Jt_baselines.Bincfi.Applicable ->
        Jt_metrics.Metrics.Value (Jt_baselines.Bincfi.static_air closure)
      | Jt_baselines.Bincfi.Broken_rewrite m ->
        Jt_metrics.Metrics.Fail ("broken rewrite: " ^ m)
    in
    let r =
      {
        b_sheet = s;
        b_native_cycles = n;
        b_native_output = native.r_output;
        b_null = ratio null.o_result.r_cycles n;
        b_jasan_h = ratio jasan_h.o_result.r_cycles n;
        b_jasan_b = ratio jasan_b.o_result.r_cycles n;
        b_jasan_d = ratio jasan_d.o_result.r_cycles n;
        b_valgrind = ratio valgrind.r_cycles n;
        b_retrowrite = retrowrite;
        b_jcfi_h = ratio jcfi_h.o_result.r_cycles n;
        b_jcfi_d = ratio jcfi_d.o_result.r_cycles n;
        b_jcfi_fwd = ratio jcfi_fwd.o_result.r_cycles n;
        b_lockdown = lockdown;
        b_bincfi = bincfi;
        b_dynfrac = jasan_h.o_dynamic_fraction;
        b_dair_h = Jt_jcfi.Air.dynamic rt_h;
        b_dair_d = Jt_jcfi.Air.dynamic rt_d;
        b_lk_s_air = lk_s_air;
        b_lk_w_air = lk_w_air;
        b_sair_jcfi = sair_jcfi;
        b_sair_bincfi = sair_bincfi;
        b_sound = !sound;
      }
    in
    if not !sound then
      Printf.printf "!! soundness warning: %s produced divergent output\n%!"
        s.s_name;
    r

let measure (s : Sheet.t) =
  match Hashtbl.find_opt cache s.s_name with
  | Some r -> r
  | None ->
    let r = measure_fresh s in
    Hashtbl.replace cache s.s_name r;
    r

(* With [--jobs N], the workloads missing from the cache are measured as
   pool jobs; the shared cache is only written back here, sequentially,
   after every job has completed. *)
let all_runs () =
  (if !jobs > 1 then
     let missing =
       List.filter (fun s -> not (Hashtbl.mem cache s.Sheet.s_name)) Sheet.all
     in
     if missing <> [] then
       Jt_pool.Pool.with_pool ~jobs:!jobs (fun p ->
           let rs =
             Jt_pool.Pool.map p
               (fun s ->
                 Printf.eprintf "  measuring %s...\n%!" s.Sheet.s_name;
                 measure_fresh s)
               missing
           in
           List.iter2
             (fun s r -> Hashtbl.replace cache s.Sheet.s_name r)
             missing rs));
  List.map
    (fun s ->
      if not (Hashtbl.mem cache s.Sheet.s_name) then
        Printf.eprintf "  measuring %s...\n%!" s.Sheet.s_name;
      measure s)
    Sheet.all

(* ---- figures ---- *)

let open_table title unit cols rows =
  Jt_metrics.Metrics.print
    { Jt_metrics.Metrics.t_title = title; t_unit = unit; t_cols = cols; t_rows = rows }

let fig7 () =
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [
            Jt_metrics.Metrics.Value r.b_valgrind;
            Jt_metrics.Metrics.Value r.b_jasan_d;
            r.b_retrowrite;
            Jt_metrics.Metrics.Value r.b_jasan_h;
          ] ))
      (all_runs ())
  in
  open_table "Figure 7: JASan overhead on SPEC CPU2006-like workloads"
    "slowdown vs native"
    [ "Valgrind"; "JASan-dyn"; "Retrowrite"; "JASan-hybrid" ]
    rows

let fig8 () =
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [
            Jt_metrics.Metrics.Value r.b_null;
            Jt_metrics.Metrics.Value r.b_jasan_h;
            Jt_metrics.Metrics.Value r.b_jasan_b;
            Jt_metrics.Metrics.Value r.b_jasan_d;
          ] ))
      (all_runs ())
  in
  open_table "Figure 8: JASan overhead breakdown" "slowdown vs native"
    [ "Null client"; "hybrid(full)"; "hybrid(base)"; "JASan-dyn" ]
    rows

let fig9 () =
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [
            r.b_lockdown;
            Jt_metrics.Metrics.Value r.b_jcfi_d;
            Jt_metrics.Metrics.Value r.b_jcfi_h;
            r.b_bincfi;
          ] ))
      (all_runs ())
  in
  open_table "Figure 9: JCFI overhead vs Lockdown and BinCFI"
    "slowdown vs native"
    [ "Lockdown"; "JCFI-dyn"; "JCFI-hybrid"; "BinCFI" ]
    rows

let fig10 () =
  Printf.printf "\n  running 624 Juliet CWE-122 cases x 2 variants x 2 tools...\n%!";
  let j = Juliet.evaluate Juliet.Jasan_hybrid in
  let v = Juliet.evaluate Juliet.Valgrind in
  Jt_metrics.Metrics.print_kv
    "Figure 10: security properties across 624 Juliet CWE-122 test cases"
    [
      ("", "Valgrind   JASan");
      ( "good: False Positives",
        Printf.sprintf "%9d %7d" v.t_false_pos j.t_false_pos );
      ( "good: True Negatives",
        Printf.sprintf "%9d %7d" v.t_true_neg j.t_true_neg );
      ( "bad:  True Positives",
        Printf.sprintf "%9d %7d" v.t_true_pos j.t_true_pos );
      ( "bad:  False Negatives",
        Printf.sprintf "%9d %7d" v.t_false_neg j.t_false_neg );
    ];
  Printf.printf
    "\n  running sibling families (CWE-124/415/416/121) x 2 variants x 2 tools...\n%!";
  let fam_rows =
    List.concat_map
      (fun fam ->
        let j = Juliet.evaluate_family Juliet.Jasan_hybrid fam in
        let v = Juliet.evaluate_family Juliet.Valgrind fam in
        [
          ( Printf.sprintf "%s (%d): TP"
              (Juliet.family_name fam)
              (List.length (Juliet.family_cases fam)),
            Printf.sprintf "%9d %7d" v.t_true_pos j.t_true_pos );
          ( Printf.sprintf "%s: FN/FP" (Juliet.family_name fam),
            Printf.sprintf "%5d/%-3d %3d/%-3d" v.t_false_neg v.t_false_pos
              j.t_false_neg j.t_false_pos );
        ])
      Juliet.families
  in
  Jt_metrics.Metrics.print_kv
    "Figure 10 (extended): sibling CWE families, per-family detection"
    (("", "Valgrind   JASan") :: fam_rows)

let fig11 () =
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [
            Jt_metrics.Metrics.Value r.b_null;
            Jt_metrics.Metrics.Value r.b_jcfi_fwd;
            Jt_metrics.Metrics.Value r.b_jcfi_h;
          ] ))
      (all_runs ())
  in
  open_table "Figure 11: forward/backward CFI contribution to JCFI overhead"
    "slowdown vs native"
    [ "Null client"; "+Forward CFI"; "+Backward CFI" ]
    rows

let fig12 () =
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [
            r.b_lk_s_air;
            Jt_metrics.Metrics.Value r.b_dair_d;
            Jt_metrics.Metrics.Value r.b_dair_h;
            r.b_lk_w_air;
          ] ))
      (all_runs ())
  in
  open_table "Figure 12: dynamic average indirect-target reduction (DAIR)"
    "% (higher is better)"
    [ "Lockdown(S)"; "JCFI-dyn"; "JCFI-hybrid"; "Lockdown(W)" ]
    rows

let fig13 () =
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [ Jt_metrics.Metrics.Value r.b_sair_jcfi; r.b_sair_bincfi ] ))
      (all_runs ())
  in
  open_table "Figure 13: static average indirect-target reduction (AIR)"
    "% (higher is better)" [ "JCFI"; "BinCFI" ] rows

let fig14 () =
  let runs = all_runs () in
  let rows =
    List.map
      (fun r ->
        ( r.b_sheet.Sheet.s_name,
          [ Jt_metrics.Metrics.Value (100.0 *. r.b_dynfrac) ] ))
      runs
  in
  open_table
    "Figure 14: basic blocks only discovered by the dynamic modifier"
    "% of executed unique blocks" [ "dynamic code" ] rows;
  let mean =
    List.fold_left (fun acc r -> acc +. r.b_dynfrac) 0.0 runs
    /. float_of_int (List.length runs)
  in
  Printf.printf "arith. mean: %.2f%%\n" (100.0 *. mean)

(* ---- ablation: the static-pass design choices DESIGN.md calls out ---- *)

let ablation () =
  let subset = [ "bzip2"; "perlbench"; "hmmer"; "gobmk"; "milc"; "soplex" ] in
  let configs =
    [
      ("full", fun () -> fst (Jt_jasan.Jasan.create ()));
      ("no SCEV hoisting", fun () -> fst (Jt_jasan.Jasan.create ~hoist_scev:false ()));
      ( "no frame-skip",
        fun () -> fst (Jt_jasan.Jasan.create ~skip_frame_accesses:false ()) );
      ( "no liveness",
        fun () -> fst (Jt_jasan.Jasan.create ~liveness:Jt_jasan.Jasan.Live_none ()) );
      ( "clean calls",
        fun () -> fst (Jt_jasan.Jasan.create ~clean_calls:true ()) );
    ]
  in
  let rows =
    List.map
      (fun name ->
        let s = Sheet.find name in
        let w = Specgen.build s in
        let native = Specgen.run_native w in
        ( name,
          List.map
            (fun (_, mk) ->
              let o =
                Janitizer.Driver.run ~tool:(mk ()) ~registry:w.w_registry
                  ~main:name ()
              in
              Jt_metrics.Metrics.Value (ratio o.o_result.r_cycles native.r_cycles))
            configs ))
      subset
  in
  open_table "Ablation: JASan static-pass optimizations (subset)"
    "slowdown vs native" (List.map fst configs) rows;
  (* Canary analysis is a soundness requirement, not an optimization:
     once frame accesses are instrumented (as RetroWrite-class tools and
     the dynamic fallback must), the epilogue's own canary read trips the
     poison unless canary analysis exempts it. *)
  let w = Specgen.build (Sheet.find "gobmk") in
  let run_cfg ~exempt =
    let tool =
      fst
        (Jt_jasan.Jasan.create ~skip_frame_accesses:false ~exempt_canary:exempt ())
    in
    let o = Janitizer.Driver.run ~tool ~registry:w.w_registry ~main:"gobmk" () in
    List.length o.o_result.r_violations
  in
  Printf.printf
    "\ncanary-analysis necessity (frame accesses instrumented): %d false\n\
     violations on gobmk without the exemption, %d with it\n"
    (run_cfg ~exempt:false) (run_cfg ~exempt:true)

(* ---- dispatch microbenchmark: blocks/sec, chain/IBL hit rates ----

   Runs a loop-heavy subset under the null-client DBT in three
   configurations — full fast paths (chain+IBL+traces), chain-only (the
   PR 1 baseline) and fully unchained — checks that observable program
   behavior (status, output, instruction count, violations) is
   bit-identical across all three, and reports host-level dispatch cost.
   Simulated cycles intentionally drop with IBL on (that is the modeled
   win), so cycles are excluded from the identity check.  Emits
   machine-readable JSON (BENCH_dispatch.json) so future PRs can track
   the dispatch-cost trajectory. *)

type dispatch_row = {
  d_name : string;
  d_block_execs : int;
  d_chain_hits : int;
  d_ibl_hits : int;
  d_ibl_misses : int;
  d_traces_built : int;
  d_trace_execs : int;
  d_entries_full : int;
  d_entries_chain_only : int;
  d_entries_unchained : int;
  d_chain_hit_rate : float;  (** chain-only config, comparable to PR 1 *)
  d_ibl_hit_rate : float;
  d_chain_ibl_hit_rate : float;  (** transfers that skipped the dispatcher *)
  d_blocks_per_sec : float;
  d_bit_identical : bool;
}

let dispatch_rows () =
  let loopy = [ "bzip2"; "hmmer"; "mcf"; "milc"; "lbm"; "sjeng" ] in
  let run_one ~chain ~ibl ~trace registry main =
    let vm = Jt_vm.Vm.make ~registry in
    let engine = Jt_dbt.Dbt.create ~vm ~chain ~ibl ~trace () in
    Jt_vm.Vm.boot vm ~main;
    (* count from a clean slate: nothing before [run] may leak in *)
    Jt_dbt.Dbt.reset_stats engine;
    let t0 = Sys.time () in
    if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then Jt_dbt.Dbt.run engine;
    let dt = Sys.time () -. t0 in
    (Jt_vm.Vm.result vm, Jt_dbt.Dbt.stats engine, dt)
  in
  let observable (r : Jt_vm.Vm.result) =
    (r.r_status, r.r_output, r.r_icount, r.r_violations)
  in
  let rate num den =
    if den = 0 then 0.0 else float_of_int num /. float_of_int den
  in
  List.map
    (fun name ->
      Printf.eprintf "  dispatch: %s...\n%!" name;
      let w = Specgen.build (Sheet.find name) in
      let reg = w.Specgen.w_registry in
      let r_full, s_full, dt =
        run_one ~chain:true ~ibl:true ~trace:true reg name
      in
      let r_chain, s_chain, _ =
        run_one ~chain:true ~ibl:false ~trace:false reg name
      in
      let r_off, s_off, _ =
        run_one ~chain:false ~ibl:false ~trace:false reg name
      in
      (* The entry-accounting identity (every executed block reached
         through exactly one of the dispatcher, a chain link, an IBL hit
         or a trace-interior transition) is asserted by [Dbt.run] itself
         on every run via [Jt_trace.Trace.entry_accounting] — no harness
         check needed here anymore. *)
      {
        d_name = name;
        d_block_execs = s_full.Jt_dbt.Dbt.st_block_execs;
        d_chain_hits = s_full.st_chain_hits;
        d_ibl_hits = s_full.st_ibl_hits;
        d_ibl_misses = s_full.st_ibl_misses;
        d_traces_built = s_full.st_traces_built;
        d_trace_execs = s_full.st_trace_execs;
        d_entries_full = s_full.st_dispatch_entries;
        d_entries_chain_only = s_chain.st_dispatch_entries;
        d_entries_unchained = s_off.st_dispatch_entries;
        d_chain_hit_rate =
          rate s_chain.st_chain_hits
            (s_chain.st_chain_hits + s_chain.st_dispatch_entries);
        d_ibl_hit_rate =
          rate s_full.st_ibl_hits (s_full.st_ibl_hits + s_full.st_ibl_misses);
        d_chain_ibl_hit_rate =
          rate
            (s_full.st_block_execs - s_full.st_dispatch_entries)
            s_full.st_block_execs;
        d_blocks_per_sec = float_of_int s_full.st_block_execs /. max dt 1e-9;
        d_bit_identical =
          observable r_full = observable r_chain
          && observable r_chain = observable r_off;
      })
    loopy

let dispatch_json rows =
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"block_execs\": %d, \"chain_hits\": %d, \
       \"ibl_hits\": %d, \"ibl_misses\": %d, \"traces_built\": %d, \
       \"trace_execs\": %d, \"dispatcher_entries\": %d, \
       \"dispatcher_entries_chain_only\": %d, \
       \"dispatcher_entries_unchained\": %d, \"chain_hit_rate\": %.4f, \
       \"ibl_hit_rate\": %.4f, \"chain_ibl_hit_rate\": %.4f, \
       \"blocks_per_sec\": %.0f, \"bit_identical\": %b}"
      r.d_name r.d_block_execs r.d_chain_hits r.d_ibl_hits r.d_ibl_misses
      r.d_traces_built r.d_trace_execs r.d_entries_full r.d_entries_chain_only
      r.d_entries_unchained r.d_chain_hit_rate r.d_ibl_hit_rate
      r.d_chain_ibl_hit_rate r.d_blocks_per_sec r.d_bit_identical
  in
  Printf.sprintf "{\n  \"target\": \"dispatch\",\n  \"workloads\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map row_json rows))

let dispatch () =
  let rows = dispatch_rows () in
  let tbl_rows =
    List.map
      (fun r ->
        ( r.d_name,
          [
            Jt_metrics.Metrics.Value (float_of_int r.d_entries_unchained);
            Jt_metrics.Metrics.Value (float_of_int r.d_entries_chain_only);
            Jt_metrics.Metrics.Value (float_of_int r.d_entries_full);
            Jt_metrics.Metrics.Value (100.0 *. r.d_chain_ibl_hit_rate);
            Jt_metrics.Metrics.Value (100.0 *. r.d_ibl_hit_rate);
            Jt_metrics.Metrics.Value (float_of_int r.d_traces_built);
            Jt_metrics.Metrics.Value r.d_blocks_per_sec;
          ] ))
      rows
  in
  open_table
    "Dispatch microbenchmark: chaining + IBL + traces vs dispatcher entries"
    "counts / % / blocks-per-sec"
    [
      "entries(off)"; "entries(chain)"; "entries(full)"; "chain+ibl %";
      "ibl-hit %"; "traces"; "blocks/sec";
    ]
    tbl_rows;
  List.iter
    (fun r ->
      if not r.d_bit_identical then
        Printf.printf "!! dispatch: %s diverged across fast-path configs\n"
          r.d_name)
    rows;
  let json = dispatch_json rows in
  let oc = open_out "BENCH_dispatch.json" in
  output_string oc json;
  close_out oc;
  print_string json

(* ---- shadow microbenchmark: per-byte loop vs page-at-a-time bulk ----

   The "before" series reproduces the pre-optimization implementation
   faithfully: one hash probe and one byte store/load per shadow byte
   (exactly what [Shadow.set]/[Shadow.get] still do, and what
   poison/unpoison used to loop over).  The "after" series uses the bulk
   entry points: page-at-a-time [Bytes.fill] for poisoning and
   whole-page skipping for the clean-scan path. *)

let shadow_bench () =
  let len = 1 lsl 20 (* 1 MiB *) in
  let base = 0x5000_0000 in
  let naive_reps = 4 and bulk_reps = 1000 in
  let time reps f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    max (Sys.time () -. t0) 1e-9
  in
  let mibs reps dt = float_of_int reps *. (float_of_int len /. dt) /. 1048576.0 in
  let dt_naive_poison =
    time naive_reps (fun () ->
        let s = Jt_jasan.Shadow.create () in
        for i = 0 to len - 1 do
          Jt_jasan.Shadow.set s (base + i) 1
        done)
  in
  let dt_bulk_poison =
    time bulk_reps (fun () ->
        let s = Jt_jasan.Shadow.create () in
        Jt_jasan.Shadow.poison s base ~len Jt_jasan.Shadow.Heap_redzone)
  in
  (* Scan of a clean region — the hot JASan check shape.  The region was
     never poisoned, so its pages do not even exist: the bulk path skips
     them wholesale while the per-byte path probes every address. *)
  let clean = Jt_jasan.Shadow.create () in
  Jt_jasan.Shadow.poison clean (base + len) ~len:1 Jt_jasan.Shadow.Heap_redzone;
  let dt_naive_scan =
    time naive_reps (fun () ->
        for i = 0 to len - 1 do
          if Jt_jasan.Shadow.get clean (base + i) <> 0 then
            failwith "unexpected poison"
        done)
  in
  let dt_bulk_scan =
    time bulk_reps (fun () ->
        if Jt_jasan.Shadow.first_poisoned clean base ~len <> None then
          failwith "unexpected poison")
  in
  (* correctness spot-checks on the bulk paths while we are here *)
  let s = Jt_jasan.Shadow.create () in
  Jt_jasan.Shadow.poison s base ~len Jt_jasan.Shadow.Heap_freed;
  assert (Jt_jasan.Shadow.poisoned_count s = len);
  assert (
    Jt_jasan.Shadow.first_poisoned s (base - 8) ~len:16
    = Some (base, Jt_jasan.Shadow.Heap_freed));
  Jt_jasan.Shadow.unpoison s base ~len;
  assert (Jt_jasan.Shadow.poisoned_count s = 0);
  let line label reps dt dt_base reps_base =
    ( label,
      Printf.sprintf "%10.1f MiB/s  (%.0fx)" (mibs reps dt)
        (mibs reps dt /. mibs reps_base dt_base) )
  in
  Jt_metrics.Metrics.print_kv
    "Shadow microbenchmark: 1 MiB poison / clean-region scan"
    [
      line "poison: per-byte set" naive_reps dt_naive_poison dt_naive_poison
        naive_reps;
      line "poison: bulk fill" bulk_reps dt_bulk_poison dt_naive_poison
        naive_reps;
      line "scan:   per-byte get" naive_reps dt_naive_scan dt_naive_scan
        naive_reps;
      line "scan:   bulk first_poisoned" bulk_reps dt_bulk_scan dt_naive_scan
        naive_reps;
    ]

(* ---- trace-overhead: the jt_trace layer's cost contract ----

   Runs a subset under JASan twice — tracing disabled (the default) and
   tracing enabled — and checks the layer's two promises: (1) tracing is
   host-level observation only, so the simulated results (status, output,
   icount, cycles, violations) are bit-identical and the icount overhead
   is exactly 0% (trivially within the <=5% budget); (2) the enabled path
   stays cheap, reported as a host wall-clock ratio.  Emits
   BENCH_trace_overhead.json and a sample event stream
   (TRACE_sample.jsonl) for CI artifacts. *)

type trace_ov_row = {
  tov_name : string;
  tov_icount : int;
  tov_icount_overhead_pct : float;
  tov_identical : bool;
  tov_events : int;
  tov_dropped : int;
  tov_host_off_s : float;
  tov_host_on_s : float;
  tov_host_ratio : float;
}

let trace_overhead () =
  let subset = [ "bzip2"; "hmmer"; "mcf"; "sjeng" ] in
  let observable (r : Jt_vm.Vm.result) =
    (r.r_status, r.r_output, r.r_icount, r.r_cycles, r.r_violations)
  in
  let run_once registry main =
    let tool, _ = Jt_jasan.Jasan.create () in
    let t0 = Sys.time () in
    let o = Janitizer.Driver.run ~tool ~registry ~main () in
    (o.o_result, max (Sys.time () -. t0) 1e-9)
  in
  let rows =
    List.mapi
      (fun i name ->
        Printf.eprintf "  trace-overhead: %s...\n%!" name;
        let w = Specgen.build (Sheet.find name) in
        let reg = w.Specgen.w_registry in
        Jt_trace.Trace.disable ();
        let r_off, dt_off = run_once reg name in
        Jt_trace.Trace.enable ();
        let r_on, dt_on = run_once reg name in
        let events = Jt_trace.Trace.emitted () in
        let dropped = Jt_trace.Trace.dropped () in
        if i = 0 then begin
          let oc = open_out "TRACE_sample.jsonl" in
          Jt_trace.Trace.export oc;
          close_out oc
        end;
        Jt_trace.Trace.disable ();
        Jt_trace.Trace.clear ();
        {
          tov_name = name;
          tov_icount = r_off.Jt_vm.Vm.r_icount;
          tov_icount_overhead_pct =
            100.0
            *. float_of_int (r_on.Jt_vm.Vm.r_icount - r_off.Jt_vm.Vm.r_icount)
            /. float_of_int (max r_off.Jt_vm.Vm.r_icount 1);
          tov_identical = observable r_off = observable r_on;
          tov_events = events;
          tov_dropped = dropped;
          tov_host_off_s = dt_off;
          tov_host_on_s = dt_on;
          tov_host_ratio = dt_on /. dt_off;
        })
      subset
  in
  open_table
    "Trace overhead: JASan-hybrid with jt_trace off vs on"
    "icount-overhead % / events / host ratio"
    [ "icount ovh %"; "events"; "dropped"; "host x" ]
    (List.map
       (fun r ->
         ( r.tov_name,
           [
             Jt_metrics.Metrics.Value r.tov_icount_overhead_pct;
             Jt_metrics.Metrics.Value (float_of_int r.tov_events);
             Jt_metrics.Metrics.Value (float_of_int r.tov_dropped);
             Jt_metrics.Metrics.Value r.tov_host_ratio;
           ] ))
       rows);
  let bad =
    List.filter
      (fun r -> (not r.tov_identical) || r.tov_icount_overhead_pct > 5.0)
      rows
  in
  List.iter
    (fun r ->
      Printf.eprintf
        "!! trace-overhead: %s %s (icount overhead %.2f%%)\n%!" r.tov_name
        (if r.tov_identical then "over budget" else "diverged with tracing on")
        r.tov_icount_overhead_pct)
    bad;
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"icount\": %d, \"icount_overhead_pct\": %.4f, \
       \"identical\": %b, \"events\": %d, \"dropped\": %d, \
       \"host_off_s\": %.6f, \"host_on_s\": %.6f, \"host_ratio\": %.3f}"
      r.tov_name r.tov_icount r.tov_icount_overhead_pct r.tov_identical
      r.tov_events r.tov_dropped r.tov_host_off_s r.tov_host_on_s
      r.tov_host_ratio
  in
  let json =
    Printf.sprintf
      "{\n  \"target\": \"trace-overhead\",\n  \"budget_icount_pct\": 5.0,\n\
      \  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_trace_overhead.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if bad <> [] then exit 1

(* ---- parallel: sequential-vs-pool wall clock over the full sweep ----

   One job = one workload evaluated under JASan-hybrid (build, static
   pass, simulated run).  The whole 27-workload sweep runs twice: purely
   sequentially on the main domain, then as jobs on a [Jt_pool].  The
   contract asserted here is the tentpole's: parallelism must never
   change what the simulator computes, so every per-workload observable
   (exit status, output, icount, cycles, violations, rule count) is
   bit-identical between the two sweeps; the payoff is wall clock,
   recorded in BENCH_parallel.json. *)

type parallel_row = {
  pr_name : string;
  pr_status : string;
  pr_output : string;
  pr_icount : int;
  pr_cycles : int;
  pr_violations : int;
  pr_rules : int;
}

let parallel_eval (s : Sheet.t) =
  let w = Specgen.build s in
  let tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:w.w_registry ~main:s.s_name ()
  in
  let r = o.Janitizer.Driver.o_result in
  {
    pr_name = s.s_name;
    pr_status = Format.asprintf "%a" Jt_vm.Vm.pp_status r.r_status;
    pr_output = r.r_output;
    pr_icount = r.r_icount;
    pr_cycles = r.r_cycles;
    pr_violations = List.length r.r_violations;
    pr_rules = o.o_rule_count;
  }

let parallel_bench () =
  (* [Sys.time] is process CPU time — it *sums* across domains and would
     hide any speedup — so this target alone measures wall clock. *)
  let wall () = Unix.gettimeofday () in
  let n_jobs = if !jobs > 1 then !jobs else 4 in
  (* Speedup is bounded by the cores the host actually grants; recording
     the count keeps a 1-core CI container's sub-1x number interpretable
     next to a many-core machine's. *)
  let cores = Domain.recommended_domain_count () in
  Printf.eprintf "  parallel: sequential sweep (%d workloads)...\n%!"
    (List.length Sheet.all);
  let t0 = wall () in
  let seq = List.map parallel_eval Sheet.all in
  let seq_s = wall () -. t0 in
  Printf.eprintf "  parallel: pool sweep (--jobs %d)...\n%!" n_jobs;
  let t1 = wall () in
  let par =
    Jt_pool.Pool.run ~jobs:n_jobs parallel_eval Sheet.all
  in
  let par_s = wall () -. t1 in
  (* A 1-core host cannot speed anything up: the pool only adds domain
     scheduling on top of the same serial work, so the measured ratio is
     noise (historically reported as a bogus 0.4x "speedup").  Report
     null with a reason instead of a misleading number, and only gate on
     the ratio when real parallelism was possible. *)
  let speedup =
    if cores < 2 then None else Some (seq_s /. max par_s 1e-9)
  in
  let mismatches =
    List.filter_map
      (fun (a, b) -> if a = b then None else Some a.pr_name)
      (List.combine seq par)
  in
  List.iter
    (fun n -> Printf.printf "!! parallel: %s diverged between sweeps\n" n)
    mismatches;
  Jt_metrics.Metrics.print_kv "Parallel sweep: sequential vs domain pool"
    [
      ("workloads", string_of_int (List.length seq));
      ("jobs", string_of_int n_jobs);
      ("host cores", string_of_int cores);
      ("sequential wall", Printf.sprintf "%.2f s" seq_s);
      ("parallel wall", Printf.sprintf "%.2f s" par_s);
      ( "speedup",
        match speedup with
        | Some s -> Printf.sprintf "%.2fx" s
        | None -> "n/a (single-core host)" );
      ( "bit-identical",
        if mismatches = [] then "yes" else "NO (" ^ String.concat "," mismatches ^ ")" );
    ];
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"status\": \"%s\", \"icount\": %d, \
       \"cycles\": %d, \"violations\": %d, \"rules\": %d}"
      r.pr_name (String.escaped r.pr_status) r.pr_icount r.pr_cycles
      r.pr_violations r.pr_rules
  in
  let speedup_json =
    match speedup with
    | Some s -> Printf.sprintf "%.3f" s
    | None -> "null,\n  \"speedup_reason\": \"single-core host\""
  in
  let json =
    Printf.sprintf
      "{\n  \"target\": \"parallel\",\n  \"jobs\": %d,\n  \"host_cores\": %d,\n\
      \  \"sequential_wall_s\": %.3f,\n  \"parallel_wall_s\": %.3f,\n\
      \  \"speedup\": %s,\n  \"bit_identical\": %b,\n\
      \  \"workloads\": [\n%s\n  ]\n}\n"
      n_jobs cores seq_s par_s speedup_json (mismatches = [])
      (String.concat ",\n" (List.map row_json seq))
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  (* the bit-identical contract always gates; the wall-clock ratio gates
     only where the host could actually parallelize *)
  let slow = match speedup with Some s -> s < 1.0 | None -> false in
  if slow then
    Printf.printf "!! parallel: pool sweep slower than sequential\n";
  if mismatches <> [] || slow then exit 1

(* ---- bechamel microbenchmarks of the framework's own primitives ---- *)

let micro () =
  let open Bechamel in
  let insn_bytes =
    Jt_isa.Encode.encode ~at:0x400000
      (Jt_isa.Insn.Load (Jt_isa.Insn.W4, Jt_isa.Reg.r1, Jt_isa.Insn.mem_base ~disp:16 Jt_isa.Reg.r2))
  in
  let decode_test =
    Test.make ~name:"decode one instruction" (Staged.stage (fun () ->
        ignore (Jt_isa.Decode.from_string insn_bytes ~pos:0 ~at:0x400000)))
  in
  let shadow = Jt_jasan.Shadow.create () in
  Jt_jasan.Shadow.poison shadow 0x5000_0000 ~len:16 Jt_jasan.Shadow.Heap_redzone;
  let shadow_test =
    Test.make ~name:"shadow check (4 bytes)" (Staged.stage (fun () ->
        ignore (Jt_jasan.Shadow.first_poisoned shadow 0x5100_0000 ~len:4)))
  in
  let file =
    {
      Jt_rules.Rules.rf_module = "m";
      rf_digest = "";
      rf_stats = [];
      rf_rules =
        List.init 512 (fun i ->
            Jt_rules.Rules.make ~id:0x101 ~bb:(0x400000 + (i * 16))
              ~insn:(0x400000 + (i * 16))
              ~data:[ 2; 1 ] ());
    }
  in
  let table = Jt_rules.Rules.Table.load file ~base:0 ~pic:false in
  let table_test =
    Test.make ~name:"rule-table lookup" (Staged.stage (fun () ->
        ignore (Jt_rules.Rules.Table.at_insn table 0x400800)))
  in
  let tests = [ decode_test; shadow_test; table_test ] in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
    let raw =
      Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ]
        (Test.make_grouped ~name:"g" [ test ])
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name o ->
        match Analyze.OLS.estimates o with
        | Some [ est ] -> Printf.printf "  %-40s %10.1f ns/op\n" name est
        | Some _ | None -> ())
      results
  in
  Printf.printf "\n== Microbenchmarks (bechamel) ==\n";
  List.iter benchmark tests

(* ---- elide: dynamic-check reduction from the elision passes ----

   Per mem-op-heavy workload, JASan-hybrid runs twice — elision off and
   on — and reports the executed shadow-check counts from the c_san_checks
   counter.  The on-run includes the full stack: the static per-block
   passes (VSA frame bounds, dominating checks, SCEV hoisting) plus the
   trace-spine elision the DBT performs on hot superblocks.  Two hard
   gates: the runs must be observably identical (status, output, icount,
   and the set of (kind, addr) violations), and the geomean check-count
   reduction must reach 45%. *)

type elide_row = {
  el_name : string;
  el_checks_off : int;
  el_checks_on : int;
  el_ratio : float;  (* on / off *)
  el_frame : int;
  el_dom : int;
  el_trace : int;  (* executed-check elisions by the trace layer *)
  el_icount : int;
  el_identical : bool;
}

let elide_bench () =
  let subset =
    [ "bzip2"; "hmmer"; "libquantum"; "milc"; "lbm"; "sphinx3"; "perlbench";
      "h264ref" ]
  in
  let observable (r : Jt_vm.Vm.result) = (r.r_status, r.r_output, r.r_icount) in
  let vset (r : Jt_vm.Vm.result) =
    List.sort_uniq compare
      (List.map
         (fun (v : Jt_vm.Vm.violation) -> (v.v_kind, v.v_addr))
         r.r_violations)
  in
  let run_once ~elide registry main =
    let tool, _ = Jt_jasan.Jasan.create ~elide () in
    let o = Janitizer.Driver.run ~tool ~registry ~main () in
    let snap = Jt_metrics.Metrics.Counters.snapshot () in
    let cnt k = Option.value ~default:0 (List.assoc_opt k snap) in
    let trace =
      cnt "san_trace_elide_dom" + cnt "san_trace_elide_canary"
      + cnt "san_trace_elide_streak" + cnt "san_trace_elide_ind"
    in
    (o.o_result, cnt "san_checks", cnt "san_elide_frame", cnt "san_elide_dom",
     trace)
  in
  let rows =
    List.map
      (fun name ->
        Printf.eprintf "  elide: %s...\n%!" name;
        let w = Specgen.build (Sheet.find name) in
        let reg = w.Specgen.w_registry in
        let r_off, c_off, _, _, _ = run_once ~elide:false reg name in
        let r_on, c_on, frame, dom, trace = run_once ~elide:true reg name in
        {
          el_name = name;
          el_checks_off = c_off;
          el_checks_on = c_on;
          el_ratio = float_of_int c_on /. float_of_int (max c_off 1);
          el_frame = frame;
          el_dom = dom;
          el_trace = trace;
          el_icount = r_on.Jt_vm.Vm.r_icount;
          el_identical =
            observable r_off = observable r_on && vset r_off = vset r_on;
        })
      subset
  in
  open_table "JASan dynamic checks: elision off vs on"
    "executed shadow checks / static elisions / trace-layer elisions"
    [ "checks off"; "checks on"; "reduction %"; "frame"; "dom"; "trace" ]
    (List.map
       (fun r ->
         ( r.el_name,
           [
             Jt_metrics.Metrics.Value (float_of_int r.el_checks_off);
             Jt_metrics.Metrics.Value (float_of_int r.el_checks_on);
             Jt_metrics.Metrics.Value (100.0 *. (1.0 -. r.el_ratio));
             Jt_metrics.Metrics.Value (float_of_int r.el_frame);
             Jt_metrics.Metrics.Value (float_of_int r.el_dom);
             Jt_metrics.Metrics.Value (float_of_int r.el_trace);
           ] ))
       rows);
  let geo_ratio = Jt_metrics.Metrics.geomean (List.map (fun r -> r.el_ratio) rows) in
  let geo_reduction = 100.0 *. (1.0 -. geo_ratio) in
  Printf.printf "\ngeomean check reduction: %.1f%% (gate: >= 45%%)\n"
    geo_reduction;
  let diverged = List.filter (fun r -> not r.el_identical) rows in
  List.iter
    (fun r ->
      Printf.eprintf "!! elide: %s diverged with elision on\n%!" r.el_name)
    diverged;
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"checks_off\": %d, \"checks_on\": %d, \
       \"reduction_pct\": %.4f, \"elide_frame\": %d, \"elide_dom\": %d, \
       \"elide_trace\": %d, \"icount\": %d, \"identical\": %b}"
      r.el_name r.el_checks_off r.el_checks_on
      (100.0 *. (1.0 -. r.el_ratio))
      r.el_frame r.el_dom r.el_trace r.el_icount r.el_identical
  in
  let json =
    Printf.sprintf
      "{\n  \"target\": \"elide\",\n  \"gate_reduction_pct\": 45.0,\n\
      \  \"geomean_reduction_pct\": %.4f,\n  \"workloads\": [\n%s\n  ]\n}\n"
      geo_reduction
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_elide.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if diverged <> [] || geo_reduction < 45.0 then exit 1

(* ---- trace-elide: the trace layer's own contribution ----

   Same eight mem-op-heavy workloads, JASan-hybrid with the static
   elision passes on in both runs; only the DBT's trace-spine elision is
   toggled.  This isolates what the superblock availability analysis
   removes *on top of* the per-block static passes (the per-block vs
   per-trace row of EXPERIMENTS.md).  Differential gate as for `elide`:
   status, output, icount and the (kind, addr) violation set must be
   bit-identical. *)

type trace_elide_row = {
  te_name : string;
  te_checks_off : int;  (* trace elision off (static passes still on) *)
  te_checks_on : int;
  te_dom : int;
  te_canary : int;
  te_streak : int;
  te_ind : int;  (* hoisted to the streak-onset induction guard *)
  te_identical : bool;
}

let trace_elide_bench () =
  let subset =
    [ "bzip2"; "hmmer"; "libquantum"; "milc"; "lbm"; "sphinx3"; "perlbench";
      "h264ref" ]
  in
  let observable (r : Jt_vm.Vm.result) = (r.r_status, r.r_output, r.r_icount) in
  let vset (r : Jt_vm.Vm.result) =
    List.sort_uniq compare
      (List.map
         (fun (v : Jt_vm.Vm.violation) -> (v.v_kind, v.v_addr))
         r.r_violations)
  in
  let run_once ~trace_elide registry main =
    let tool, _ = Jt_jasan.Jasan.create () in
    let o = Janitizer.Driver.run ~trace_elide ~tool ~registry ~main () in
    let snap = Jt_metrics.Metrics.Counters.snapshot () in
    let cnt k = Option.value ~default:0 (List.assoc_opt k snap) in
    ( o.o_result,
      cnt "san_checks",
      cnt "san_trace_elide_dom",
      cnt "san_trace_elide_canary",
      cnt "san_trace_elide_streak",
      cnt "san_trace_elide_ind" )
  in
  let rows =
    List.map
      (fun name ->
        Printf.eprintf "  trace-elide: %s...\n%!" name;
        let w = Specgen.build (Sheet.find name) in
        let reg = w.Specgen.w_registry in
        let r_off, c_off, _, _, _, _ = run_once ~trace_elide:false reg name in
        let r_on, c_on, dom, canary, streak, ind =
          run_once ~trace_elide:true reg name
        in
        {
          te_name = name;
          te_checks_off = c_off;
          te_checks_on = c_on;
          te_dom = dom;
          te_canary = canary;
          te_streak = streak;
          te_ind = ind;
          te_identical =
            observable r_off = observable r_on && vset r_off = vset r_on;
        })
      subset
  in
  open_table "JASan trace-level elision: off vs on (static passes on in both)"
    "executed shadow checks / elided executions by reason"
    [ "checks off"; "checks on"; "reduction %"; "dom"; "canary"; "streak";
      "ind" ]
    (List.map
       (fun r ->
         ( r.te_name,
           [
             Jt_metrics.Metrics.Value (float_of_int r.te_checks_off);
             Jt_metrics.Metrics.Value (float_of_int r.te_checks_on);
             Jt_metrics.Metrics.Value
               (100.0
               *. (1.0
                  -. float_of_int r.te_checks_on
                     /. float_of_int (max r.te_checks_off 1)));
             Jt_metrics.Metrics.Value (float_of_int r.te_dom);
             Jt_metrics.Metrics.Value (float_of_int r.te_canary);
             Jt_metrics.Metrics.Value (float_of_int r.te_streak);
             Jt_metrics.Metrics.Value (float_of_int r.te_ind);
           ] ))
       rows);
  let diverged = List.filter (fun r -> not r.te_identical) rows in
  List.iter
    (fun r ->
      Printf.eprintf "!! trace-elide: %s diverged with trace elision on\n%!"
        r.te_name)
    diverged;
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"checks_off\": %d, \"checks_on\": %d, \
       \"trace_dom\": %d, \"trace_canary\": %d, \"trace_streak\": %d, \
       \"trace_ind\": %d, \"identical\": %b}"
      r.te_name r.te_checks_off r.te_checks_on r.te_dom r.te_canary
      r.te_streak r.te_ind r.te_identical
  in
  let json =
    Printf.sprintf
      "{\n  \"target\": \"trace-elide\",\n  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_trace_elide.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if diverged <> [] then exit 1


(* ---- warmstart: cold vs warm static analysis through the IR store ----

   The full workload sweep runs twice against one on-disk IR store: a
   cold arm over an empty store (every module analyzed and persisted)
   and a warm arm with a fresh store handle over the same directory
   (every module reconstructed from disk).  The deterministic contract
   gates, not wall clock: the warm arm must perform *zero*
   [Static_analyzer.compute] runs (counter-verified across pool
   domains), its rule files must be byte-identical to the cold arm's,
   its run observables (status, output, icount, violations) must be
   bit-identical, and its store hit rate must be 100%.  Wall times are
   recorded in BENCH_warmstart.json for trajectory only. *)

type warm_eval = {
  we_name : string;
  we_rules : (string * string) list;  (* module -> encoded rule bytes *)
  we_status : string;
  we_output : string;
  we_icount : int;
  we_violations : (string * int * int) list;
  we_analysis_s : float;
}

let warmstart_eval ~store (s : Sheet.t) =
  let name = s.Sheet.s_name in
  let w = Specgen.build s in
  let registry = w.Specgen.w_registry in
  let closure = Janitizer.Driver.static_closure ~registry ~main:name in
  let tool, _ = Jt_jasan.Jasan.create () in
  let t0 = Unix.gettimeofday () in
  let files = Janitizer.Driver.analyze_all ~store ~tool closure in
  let analysis_s = Unix.gettimeofday () -. t0 in
  (* The simulated run consumes the rules just generated ([precomputed]
     covers the whole closure, so the run itself analyzes nothing); its
     observables depend only on those rule bytes. *)
  let run_tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~store ~precomputed:files ~tool:run_tool ~registry
      ~main:name ()
  in
  let r = o.Janitizer.Driver.o_result in
  {
    we_name = name;
    we_rules =
      List.map (fun (n, f) -> (n, Jt_rules.Rules.encode_file f)) files;
    we_status = Format.asprintf "%a" Jt_vm.Vm.pp_status r.r_status;
    we_output = r.r_output;
    we_icount = r.r_icount;
    we_violations =
      List.map
        (fun (v : Jt_vm.Vm.violation) -> (v.v_kind, v.v_addr, v.v_pc))
        r.r_violations;
    we_analysis_s = analysis_s;
  }

let warmstart () =
  let n_jobs = if !jobs > 1 then !jobs else 2 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "jt_warmstart_%d" (Unix.getpid ()))
  in
  (* make sure the cold arm really is cold *)
  ignore (Jt_ir.Store.clear (Jt_ir.Store.create ~dir ()));
  let arm label =
    (* a fresh store handle per arm: the warm arm's memory LRU starts
       empty, so every warm hit exercises the disk decode path *)
    let store = Jt_ir.Store.create ~dir () in
    let a0 = Janitizer.Static_analyzer.analyses_performed () in
    Printf.eprintf "  warmstart: %s sweep (%d workloads, %d jobs)...\n%!"
      label (List.length Sheet.all) n_jobs;
    let t0 = Unix.gettimeofday () in
    let evals =
      if n_jobs > 1 then
        Jt_pool.Pool.run ~jobs:n_jobs (warmstart_eval ~store) Sheet.all
      else List.map (warmstart_eval ~store) Sheet.all
    in
    let wall = Unix.gettimeofday () -. t0 in
    let analyses = Janitizer.Static_analyzer.analyses_performed () - a0 in
    (evals, wall, analyses, Jt_ir.Store.stats store)
  in
  let cold, cold_wall, cold_analyses, cold_stats = arm "cold" in
  let warm, warm_wall, warm_analyses, warm_stats = arm "warm" in
  let analysis_wall evals =
    List.fold_left (fun acc e -> acc +. e.we_analysis_s) 0.0 evals
  in
  let cold_analysis_s = analysis_wall cold and warm_analysis_s = analysis_wall warm in
  let observable e = (e.we_status, e.we_output, e.we_icount, e.we_violations) in
  let pairs = List.combine cold warm in
  let rule_mismatches =
    List.filter_map
      (fun (c, w) -> if c.we_rules = w.we_rules then None else Some c.we_name)
      pairs
  in
  let obs_mismatches =
    List.filter_map
      (fun (c, w) ->
        if observable c = observable w then None else Some c.we_name)
      pairs
  in
  let warm_rate = Jt_ir.Store.hit_rate warm_stats in
  let arm_kv label (st : Jt_ir.Store.stats) analyses a_wall wall =
    [
      (label ^ " compute runs", string_of_int analyses);
      (label ^ " analysis wall", Printf.sprintf "%.3f s" a_wall);
      (label ^ " total wall", Printf.sprintf "%.3f s" wall);
      ( label ^ " store",
        Printf.sprintf "%d mem + %d disk hits, %d misses (hit rate %.1f%%)"
          st.Jt_ir.Store.st_mem_hits st.st_disk_hits st.st_misses
          (100.0 *. Jt_ir.Store.hit_rate st) );
    ]
  in
  Jt_metrics.Metrics.print_kv
    "Warm start: cold vs warm static analysis through the IR store"
    (arm_kv "cold" cold_stats cold_analyses cold_analysis_s cold_wall
    @ arm_kv "warm" warm_stats warm_analyses warm_analysis_s warm_wall
    @ [
        ( "analysis speedup",
          Printf.sprintf "%.2fx" (cold_analysis_s /. max warm_analysis_s 1e-9) );
        ( "rules byte-identical",
          if rule_mismatches = [] then "yes"
          else "NO (" ^ String.concat "," rule_mismatches ^ ")" );
        ( "observables bit-identical",
          if obs_mismatches = [] then "yes"
          else "NO (" ^ String.concat "," obs_mismatches ^ ")" );
      ]);
  let arm_json (st : Jt_ir.Store.stats) analyses a_wall wall =
    Printf.sprintf
      "{\"compute_runs\": %d, \"analysis_wall_s\": %.6f, \"wall_s\": %.6f, \
       \"mem_hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
       \"corrupt\": %d, \"hit_rate\": %.4f}"
      analyses a_wall wall st.Jt_ir.Store.st_mem_hits st.st_disk_hits
      st.st_misses st.st_corrupt
      (Jt_ir.Store.hit_rate st)
  in
  let row_json (c, w) =
    Printf.sprintf
      "    {\"name\": \"%s\", \"cold_analysis_s\": %.6f, \
       \"warm_analysis_s\": %.6f, \"rules_identical\": %b, \
       \"observables_identical\": %b}"
      c.we_name c.we_analysis_s w.we_analysis_s (c.we_rules = w.we_rules)
      (observable c = observable w)
  in
  let json =
    Printf.sprintf
      "{\n  \"target\": \"warmstart\",\n  \"jobs\": %d,\n\
      \  \"workloads\": %d,\n  \"cold\": %s,\n  \"warm\": %s,\n\
      \  \"warm_compute_runs\": %d,\n  \"warm_hit_rate\": %.4f,\n\
      \  \"rules_identical\": %b,\n  \"observables_identical\": %b,\n\
      \  \"analysis_speedup\": %.3f,\n  \"per_workload\": [\n%s\n  ]\n}\n"
      n_jobs (List.length cold)
      (arm_json cold_stats cold_analyses cold_analysis_s cold_wall)
      (arm_json warm_stats warm_analyses warm_analysis_s warm_wall)
      warm_analyses warm_rate (rule_mismatches = []) (obs_mismatches = [])
      (cold_analysis_s /. max warm_analysis_s 1e-9)
      (String.concat ",\n" (List.map row_json pairs))
  in
  let oc = open_out "BENCH_warmstart.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  (* best-effort cleanup of the temp store *)
  ignore (Jt_ir.Store.clear (Jt_ir.Store.create ~dir ()));
  (try Sys.rmdir dir with Sys_error _ -> ());
  let failed =
    warm_analyses <> 0 || warm_stats.Jt_ir.Store.st_misses <> 0
    || warm_rate < 1.0 || rule_mismatches <> [] || obs_mismatches <> []
  in
  if warm_analyses <> 0 then
    Printf.eprintf "!! warmstart: warm arm performed %d analyses (want 0)\n%!"
      warm_analyses;
  if warm_stats.Jt_ir.Store.st_misses <> 0 || warm_rate < 1.0 then
    Printf.eprintf "!! warmstart: warm hit rate %.4f (want 1.0)\n%!" warm_rate;
  if failed then exit 1

(* ---- emit: the AOT rewriter's differential gate ----

   Every C workload must emit, run on the plain VM and match the hybrid
   DBT bit-for-bit on status, output and the (kind, addr) violation set;
   instruction and cycle counts must decompose exactly into the
   uninstrumented baseline plus materialized check cost plus pin hops —
   the zero-translation-overhead accounting (no residue for a translator
   to hide in).  C++/Fortran closures must refuse with the typed
   Unsupported_feature verdict instead (the RetroWrite-style
   applicability rows), and the all-C Juliet CWE-122 suite is swept for
   detection parity on both the bad and patched variants.  Everything is
   recorded in BENCH_emit.json. *)

type emit_row = {
  eb_name : string;
  eb_lang : string;
  eb_sites : int;
  eb_pins : int;
  eb_check_cost : int;
  eb_slow_emit : float;
  eb_slow_hybrid : float;
  eb_identical : bool;
  eb_icount_ok : bool;
  eb_cycles_ok : bool;
}

let emit_bench () =
  let observable (r : Jt_vm.Vm.result) = (r.r_status, r.r_output) in
  let vset (r : Jt_vm.Vm.result) =
    List.sort_uniq compare
      (List.map
         (fun (v : Jt_vm.Vm.violation) -> (v.v_kind, v.v_addr))
         r.r_violations)
  in
  let lang_name = function
    | Sheet.C -> "C"
    | Sheet.Cxx -> "C++"
    | Sheet.Fortran -> "Fortran"
    | Sheet.Mixed_cf -> "C/Fortran"
  in
  let emit_tool = Jt_emit.Emit.Asan { elide = true } in
  let rows = ref [] in
  let refusals = ref [] in
  let failures = ref [] in
  List.iter
    (fun (s : Sheet.t) ->
      Printf.eprintf "  emit: %s...\n%!" s.s_name;
      let w = Specgen.build s in
      let registry = w.Specgen.w_registry in
      match
        Jt_emit.Emit.emit_program ~tool:emit_tool ~registry ~main:s.s_name ()
      with
      | Error (m, r) ->
        (match (s.s_lang, r) with
        | Sheet.C, _ ->
          failures :=
            Printf.sprintf "%s: refused (%s)" s.s_name
              (Jt_emit.Emit.refusal_to_string r)
            :: !failures
        | _, Jt_emit.Emit.Unsupported_feature _ -> ()
        | _, _ ->
          failures :=
            Printf.sprintf "%s: wrong refusal kind (%s)" s.s_name
              (Jt_emit.Emit.refusal_to_string r)
            :: !failures);
        refusals :=
          (s.s_name, lang_name s.s_lang, m, Jt_emit.Emit.refusal_to_string r)
          :: !refusals
      | Ok p ->
        (match s.s_lang with
        | Sheet.C -> ()
        | _ ->
          failures :=
            Printf.sprintf "%s: expected a feature refusal" s.s_name
            :: !failures);
        let e = Jt_emit.Emit.run p in
        let er = e.Jt_emit.Emit.ro_outcome.Janitizer.Driver.o_result in
        let tool, _ = Jt_jasan.Jasan.create ~elide:true () in
        let h = Janitizer.Driver.run ~tool ~registry ~main:s.s_name () in
        (* Same allocator policy, no checks: the honest cost floor the
           zero-overhead identity is measured against. *)
        let b =
          Janitizer.Driver.run_plain
            ~setup:(fun vm ->
              Jt_jasan.Jasan.Rt.attach (Jt_jasan.Jasan.Rt.create ()) vm)
            ~registry ~main:s.s_name ()
        in
        let native = Specgen.run_native w in
        let identical =
          observable er = observable h.o_result && vset er = vset h.o_result
        in
        let icount_ok =
          er.r_icount - e.ro_sites - e.ro_pins = h.o_result.r_icount
        in
        let cycles_ok =
          er.r_cycles = b.o_result.r_cycles + e.ro_check_cost + e.ro_pins
        in
        if not (identical && icount_ok && cycles_ok) then
          failures :=
            Printf.sprintf
              "%s: differential broken (identical=%b icount=%b cycles=%b)"
              s.s_name identical icount_ok cycles_ok
            :: !failures;
        rows :=
          {
            eb_name = s.s_name;
            eb_lang = lang_name s.s_lang;
            eb_sites = e.ro_sites;
            eb_pins = e.ro_pins;
            eb_check_cost = e.ro_check_cost;
            eb_slow_emit = ratio er.r_cycles native.r_cycles;
            eb_slow_hybrid = ratio h.o_result.r_cycles native.r_cycles;
            eb_identical = identical;
            eb_icount_ok = icount_ok;
            eb_cycles_ok = cycles_ok;
          }
          :: !rows)
    Sheet.all;
  let rows = List.rev !rows and refusals = List.rev !refusals in
  (* Juliet CWE-122: all C, so the whole suite must emit; gate on
     detection parity with the hybrid for every bad/patched pair. *)
  Printf.eprintf "  emit: juliet CWE-122 sweep...\n%!";
  let juliet_cases = ref 0 and juliet_mismatches = ref 0 in
  List.iter
    (fun (c : Juliet.case) ->
      List.iter
        (fun bad ->
          let m = Juliet.build_case c ~bad in
          let registry = Juliet.registry_for m in
          let main = m.Jt_obj.Objfile.name in
          incr juliet_cases;
          match
            Jt_emit.Emit.emit_program ~tool:emit_tool ~registry ~main ()
          with
          | Error _ -> incr juliet_mismatches
          | Ok p ->
            let e = Jt_emit.Emit.run p in
            let er = e.Jt_emit.Emit.ro_outcome.Janitizer.Driver.o_result in
            let tool, _ = Jt_jasan.Jasan.create ~elide:true () in
            let h = Janitizer.Driver.run ~tool ~registry ~main () in
            if
              not
                (observable er = observable h.o_result
                && vset er = vset h.o_result)
            then incr juliet_mismatches)
        [ false; true ])
    Juliet.cases;
  if !juliet_mismatches > 0 then
    failures :=
      Printf.sprintf "juliet: %d/%d emitted-vs-hybrid mismatches"
        !juliet_mismatches !juliet_cases
      :: !failures;
  (* Sibling families (CWE-124/415/416/121): same parity gate. *)
  Printf.eprintf "  emit: juliet sibling-family sweep...\n%!";
  let family_cases_n = ref 0 and family_mismatches = ref 0 in
  List.iter
    (fun (c : Juliet.fcase) ->
      List.iter
        (fun bad ->
          let m = Juliet.build_family_case c ~bad in
          let registry = Juliet.registry_for m in
          let main = m.Jt_obj.Objfile.name in
          incr family_cases_n;
          match
            Jt_emit.Emit.emit_program ~tool:emit_tool ~registry ~main ()
          with
          | Error _ -> incr family_mismatches
          | Ok p ->
            let e = Jt_emit.Emit.run p in
            let er = e.Jt_emit.Emit.ro_outcome.Janitizer.Driver.o_result in
            let tool, _ = Jt_jasan.Jasan.create ~elide:true () in
            let h = Janitizer.Driver.run ~tool ~registry ~main () in
            if
              not
                (observable er = observable h.o_result
                && vset er = vset h.o_result)
            then incr family_mismatches)
        [ false; true ])
    Juliet.all_family_cases;
  if !family_mismatches > 0 then
    failures :=
      Printf.sprintf "juliet families: %d/%d emitted-vs-hybrid mismatches"
        !family_mismatches !family_cases_n
      :: !failures;
  open_table "AOT emit vs hybrid DBT (JASan, elision on)"
    "slowdown vs native / materialized sites / pin hops"
    [ "emit x"; "hybrid x"; "sites"; "pins"; "check cyc" ]
    (List.map
       (fun r ->
         ( r.eb_name,
           [
             Jt_metrics.Metrics.Value r.eb_slow_emit;
             Jt_metrics.Metrics.Value r.eb_slow_hybrid;
             Jt_metrics.Metrics.Value (float_of_int r.eb_sites);
             Jt_metrics.Metrics.Value (float_of_int r.eb_pins);
             Jt_metrics.Metrics.Value (float_of_int r.eb_check_cost);
           ] ))
       rows);
  List.iter
    (fun (n, lang, m, r) ->
      Printf.printf "refused  %-12s %-10s (%s: %s)\n" n lang m r)
    refusals;
  let geo sel = Jt_metrics.Metrics.geomean (List.map sel rows) in
  Printf.printf
    "\ngeomean slowdown: emitted %.3fx, hybrid %.3fx (static floor, zero \
     translation overhead)\n"
    (geo (fun r -> r.eb_slow_emit))
    (geo (fun r -> r.eb_slow_hybrid));
  Printf.printf "juliet CWE-122: %d runs, %d mismatches\n" !juliet_cases
    !juliet_mismatches;
  Printf.printf "juliet families (124/415/416/121): %d runs, %d mismatches\n"
    !family_cases_n !family_mismatches;
  List.iter (fun f -> Printf.eprintf "!! emit: %s\n%!" f) !failures;
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"lang\": \"%s\", \"sites\": %d, \"pins\": %d, \
       \"check_cycles\": %d, \"slowdown_emit\": %.4f, \"slowdown_hybrid\": \
       %.4f, \"identical\": %b, \"icount_exact\": %b, \"cycles_exact\": %b}"
      r.eb_name r.eb_lang r.eb_sites r.eb_pins r.eb_check_cost r.eb_slow_emit
      r.eb_slow_hybrid r.eb_identical r.eb_icount_ok r.eb_cycles_ok
  in
  let refusal_json (n, lang, m, r) =
    Printf.sprintf
      "    {\"name\": \"%s\", \"lang\": \"%s\", \"module\": \"%s\", \
       \"refusal\": \"%s\"}"
      n lang m r
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"target\": \"emit\",\n\
      \  \"gate\": \"bit-identical differential on emittable workloads, \
       typed refusals elsewhere, exact icount/cycle accounting\",\n\
      \  \"geomean_slowdown_emit\": %.4f,\n\
      \  \"geomean_slowdown_hybrid\": %.4f,\n\
      \  \"juliet\": {\"runs\": %d, \"mismatches\": %d},\n\
      \  \"juliet_families\": {\"runs\": %d, \"mismatches\": %d},\n\
      \  \"failures\": %d,\n\
      \  \"workloads\": [\n%s\n  ],\n\
      \  \"refusals\": [\n%s\n  ]\n\
       }\n"
      (geo (fun r -> r.eb_slow_emit))
      (geo (fun r -> r.eb_slow_hybrid))
      !juliet_cases !juliet_mismatches !family_cases_n !family_mismatches
      (List.length !failures)
      (String.concat ",\n" (List.map row_json rows))
      (String.concat ",\n" (List.map refusal_json refusals))
  in
  let oc = open_out "BENCH_emit.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if !failures <> [] then exit 1

(* ---- differential soundness fuzzer ---- *)

let fuzz_bench () =
  let base_seed = 1 and seeds = 84 in
  Printf.eprintf
    "  fuzz: %d seeded cases (benign + 5 injections each) x %d schemes...\n%!"
    (6 * seeds)
    (List.length Jt_fuzz.Fuzz.schemes);
  let r = Jt_fuzz.Fuzz.run_suite ~base_seed ~seeds () in
  open_table "Differential soundness fuzzer (ground-truth detection matrix)"
    "cases"
    [ "TP"; "FN"; "TN"; "FP"; "refused" ]
    (List.map
       (fun (x : Jt_fuzz.Fuzz.matrix_row) ->
         ( x.mx_scheme,
           [
             Jt_metrics.Metrics.Value (float_of_int x.mx_tp);
             Jt_metrics.Metrics.Value (float_of_int x.mx_fn);
             Jt_metrics.Metrics.Value (float_of_int x.mx_tn);
             Jt_metrics.Metrics.Value (float_of_int x.mx_fp);
             Jt_metrics.Metrics.Value (float_of_int x.mx_refused);
           ] ))
       r.rp_matrix);
  Printf.printf "\n%d cases, %d scheme runs, %d soundness mismatches\n"
    r.rp_cases r.rp_runs
    (List.length r.rp_mismatches);
  List.iter
    (fun (m : Jt_fuzz.Fuzz.mismatch) ->
      Printf.eprintf "!! fuzz: %s %s: %s\n%!" m.mm_case m.mm_scheme m.mm_what)
    r.rp_mismatches;
  let row_json (x : Jt_fuzz.Fuzz.matrix_row) =
    Printf.sprintf
      "    {\"scheme\": \"%s\", \"tp\": %d, \"fn\": %d, \"tn\": %d, \"fp\": \
       %d, \"refused\": %d}"
      x.mx_scheme x.mx_tp x.mx_fn x.mx_tn x.mx_fp x.mx_refused
  in
  let mismatch_json (m : Jt_fuzz.Fuzz.mismatch) =
    Printf.sprintf "    {\"case\": \"%s\", \"scheme\": \"%s\", \"what\": \"%s\"}"
      m.mm_case m.mm_scheme m.mm_what
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"target\": \"fuzz\",\n\
      \  \"gate\": \"expected detection matrix, bit-identical observables, \
       exact icount accounting, hybrid=emitted violation sets\",\n\
      \  \"base_seed\": %d,\n\
      \  \"cases\": %d,\n\
      \  \"runs\": %d,\n\
      \  \"mismatches\": %d,\n\
      \  \"matrix\": [\n%s\n  ],\n\
      \  \"mismatch_list\": [\n%s\n  ]\n\
       }\n"
      base_seed r.rp_cases r.rp_runs
      (List.length r.rp_mismatches)
      (String.concat ",\n" (List.map row_json r.rp_matrix))
      (String.concat ",\n" (List.map mismatch_json r.rp_mismatches))
  in
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if r.rp_mismatches <> [] then exit 1

(* ---- air: per-site CPA policy vs any-entry ----

   For every workload: static AIR (BinCFI-style, over all indirect CTIs)
   under JCFI's any-entry policy and under the per-site CPA policy, with
   the forward/backward split; dynamic AIR over the executed sites for
   both; the per-site target-set-size histogram; and the
   refinement-soundness oracle — every executed (site, target) pair must
   be inside the site's installed set whenever one exists.  CI gates:
   zero oracle violations anywhere in the sweep, and per-site forward
   static AIR strictly above any-entry averaged over the C subset.
   Recorded in BENCH_air.json. *)

type air_row = {
  ar_sheet : Sheet.t;
  ar_s_any : Jt_jcfi.Air.static_report;
  ar_s_cpa : Jt_jcfi.Air.static_report;
  ar_d_any : float;
  ar_d_cpa : float;
  ar_observed : int;  (* executed (site, target) pairs *)
  ar_violations : int;  (* of which outside the site's resolved set *)
}

let air_eval (s : Sheet.t) =
  Printf.eprintf "  air: %s...\n%!" s.Sheet.s_name;
  let w = Specgen.build s in
  let registry = w.Specgen.w_registry in
  let main = s.Sheet.s_name in
  let closure = Janitizer.Driver.static_closure ~registry ~main in
  let s_any = Jt_jcfi.Air.static_jcfi_report closure in
  let s_cpa = Jt_jcfi.Air.static_jcfi_report ~per_site:true closure in
  let tool, rt = Jt_jcfi.Jcfi.create () in
  let _ = Janitizer.Driver.run ~tool ~registry ~main () in
  let d_any = Jt_jcfi.Air.dynamic rt in
  let d_cpa = Jt_jcfi.Air.dynamic ~per_site:true rt in
  let observed = Jt_jcfi.Jcfi.Rt.observed_icalls rt in
  (* The oracle runs against the *installed* tables (run-time
     addresses), not the link-time CPA sets, so PIC modules are checked
     in the coordinate system the policy actually enforced. *)
  let tables = List.map snd (Jt_jcfi.Jcfi.Rt.tables rt) in
  let violations =
    List.filter
      (fun (site, target) ->
        List.exists
          (fun tbl ->
            match Jt_jcfi.Targets.site_set tbl ~site with
            | Some set -> not (List.mem target set)
            | None -> false)
          tables)
      observed
  in
  List.iter
    (fun (site, target) ->
      Printf.eprintf "!! air: %s observed icall %d -> %d outside its set\n%!"
        main site target)
    violations;
  {
    ar_sheet = s;
    ar_s_any = s_any;
    ar_s_cpa = s_cpa;
    ar_d_any = d_any;
    ar_d_cpa = d_cpa;
    ar_observed = List.length observed;
    ar_violations = List.length violations;
  }

let air_bench () =
  let rows = List.map air_eval Sheet.all in
  open_table "AIR: any-entry vs per-site CPA policy"
    "static forward AIR (BinCFI-style) and dynamic AIR (Lockdown-style)"
    [ "s-fwd any"; "s-fwd cpa"; "resolved"; "d any"; "d cpa"; "viol" ]
    (List.map
       (fun r ->
         ( r.ar_sheet.Sheet.s_name,
           [
             Jt_metrics.Metrics.Value r.ar_s_any.Jt_jcfi.Air.sr_fwd;
             Jt_metrics.Metrics.Value r.ar_s_cpa.Jt_jcfi.Air.sr_fwd;
             Jt_metrics.Metrics.Value
               (float_of_int r.ar_s_cpa.Jt_jcfi.Air.sr_resolved);
             Jt_metrics.Metrics.Value r.ar_d_any;
             Jt_metrics.Metrics.Value r.ar_d_cpa;
             Jt_metrics.Metrics.Value (float_of_int r.ar_violations);
           ] ))
       rows);
  let c_names = List.map (fun s -> s.Sheet.s_name) Sheet.c_benchmarks in
  let c_rows =
    List.filter (fun r -> List.mem r.ar_sheet.Sheet.s_name c_names) rows
  in
  let mean f l =
    List.fold_left (fun a r -> a +. f r) 0.0 l /. float_of_int (List.length l)
  in
  let c_any = mean (fun r -> r.ar_s_any.Jt_jcfi.Air.sr_fwd) c_rows in
  let c_cpa = mean (fun r -> r.ar_s_cpa.Jt_jcfi.Air.sr_fwd) c_rows in
  let total_violations =
    List.fold_left (fun a r -> a + r.ar_violations) 0 rows
  in
  Printf.printf
    "\nC-sweep static forward AIR: any-entry %.4f%%, per-site %.4f%% \
     (gate: strict improvement)\n\
     soundness-oracle violations: %d (gate: 0)\n"
    c_any c_cpa total_violations;
  let lang_name = function
    | Sheet.C -> "C"
    | Sheet.Cxx -> "C++"
    | Sheet.Fortran -> "Fortran"
    | Sheet.Mixed_cf -> "mixed C/Fortran"
  in
  let report_json (sr : Jt_jcfi.Air.static_report) =
    Printf.sprintf
      "{\"air\": %.6f, \"fwd\": %.6f, \"bwd\": %.6f, \"icalls\": %d, \
       \"resolved\": %d, \"hist\": [%s]}"
      sr.Jt_jcfi.Air.sr_air sr.sr_fwd sr.sr_bwd sr.sr_icalls sr.sr_resolved
      (String.concat ", "
         (List.map
            (fun (size, n) ->
              Printf.sprintf "{\"size\": %d, \"sites\": %d}" size n)
            sr.sr_hist))
  in
  let row_json r =
    Printf.sprintf
      "    {\"name\": \"%s\", \"lang\": \"%s\",\n\
      \     \"static_any\": %s,\n\
      \     \"static_cpa\": %s,\n\
      \     \"dynamic_any\": %.6f, \"dynamic_cpa\": %.6f,\n\
      \     \"observed_icalls\": %d, \"violations\": %d}"
      r.ar_sheet.Sheet.s_name
      (lang_name r.ar_sheet.Sheet.s_lang)
      (report_json r.ar_s_any) (report_json r.ar_s_cpa) r.ar_d_any r.ar_d_cpa
      r.ar_observed r.ar_violations
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"target\": \"air\",\n\
      \  \"c_sweep_static_fwd_any\": %.6f,\n\
      \  \"c_sweep_static_fwd_cpa\": %.6f,\n\
      \  \"oracle_violations\": %d,\n\
      \  \"workloads\": [\n%s\n  ]\n}\n"
      c_any c_cpa total_violations
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_air.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if total_violations > 0 || c_cpa <= c_any then exit 1

(* ---- driver ---- *)

let targets =
  [
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("ablation", ablation);
    ("dispatch", dispatch);
    ("shadow", shadow_bench);
    ("trace-overhead", trace_overhead);
    ("elide", elide_bench);
    ("trace-elide", trace_elide_bench);
    ("parallel", parallel_bench);
    ("warmstart", warmstart);
    ("micro", micro);
    ("emit", emit_bench);
    ("fuzz", fuzz_bench);
    ("air", air_bench);
  ]

(* Strip `--jobs N` (or `--jobs=N`) anywhere in the argument list; the
   rest are target names. *)
let rec parse_args = function
  | [] -> []
  | "--jobs" :: n :: rest -> (
    match int_of_string_opt n with
    | Some v when v >= 1 ->
      jobs := v;
      parse_args rest
    | _ ->
      Printf.eprintf "bad --jobs value %S\n" n;
      exit 2)
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
    let n = String.sub arg 7 (String.length arg - 7) in
    match int_of_string_opt n with
    | Some v when v >= 1 ->
      jobs := v;
      parse_args rest
    | _ ->
      Printf.eprintf "bad --jobs value %S\n" n;
      exit 2)
  | arg :: rest -> arg :: parse_args rest

let () =
  let args = parse_args (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [ "list" ] ->
    List.iter (fun (n, _) -> print_endline n) targets
  | [] ->
    Printf.printf "janitizer benchmark harness: regenerating all figures\n%!";
    List.iter (fun (n, f) -> Printf.printf "\n---- %s ----\n%!" n; f ()) targets
  | names ->
    List.iter
      (fun n ->
        match List.assoc_opt n targets with
        | Some f -> f ()
        | None -> Printf.eprintf "unknown target %s (try 'list')\n" n)
      names
