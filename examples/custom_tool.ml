(* Writing a custom security technique on top of Janitizer.

   The framework's plugin interface (section 3.4.3) asks a tool for two
   passes: a static pass with whole-CFG visibility that compiles its
   decisions into rewrite rules, and a per-block dynamic fallback.  This
   example builds an *allocation-site taint tracker*: using the def-use
   chains of the static analyzer it marks stores whose *address* was
   derived from a malloc return value, and counts them at run time —
   cheaply, because provably-unrelated stores carry a no-op rule and cost
   nothing.

     dune exec examples/custom_tool.exe *)

open Jt_isa

let rule_tainted_store = 0x301

(* -- static pass: find stores whose base register chains back to an
   allocation call -- *)
let static_pass (sa : Janitizer.Static_analyzer.t) =
  let rules = ref [] in
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      let du = Jt_analysis.Defuse.analyze fa.fa_fn in
      List.iter
        (fun (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (info : Jt_disasm.Disasm.insn_info) ->
              match info.d_insn with
              | Insn.Store (_, { base = Some (Insn.Breg rb); _ }, _) ->
                let from_alloc =
                  Jt_analysis.Defuse.traces_to du info.d_addr rb
                    ~pred:(function Insn.Call _ -> true | _ -> false)
                in
                if from_alloc then
                  rules :=
                    Jt_rules.Rules.make ~id:rule_tainted_store ~bb:b.b_addr
                      ~insn:info.d_addr ()
                    :: !rules
              | _ -> ())
            b.b_insns)
        (Jt_cfg.Cfg.fn_blocks fa.fa_fn))
    sa.sa_fns;
  {
    Jt_rules.Rules.rf_module = sa.sa_mod.Jt_obj.Objfile.name;
    rf_digest = Jt_obj.Objfile.digest sa.sa_mod;
    rf_stats = [];
    rf_rules = Janitizer.Tool.noop_marks sa (List.rev !rules);
  }

(* -- runtime: count executions of tainted stores -- *)
let tainted_executions = ref 0

let client =
  {
    Jt_dbt.Dbt.cl_name = "alloc-taint";
    cl_on_block =
      (fun _vm b prov ~rules_at ->
        let plan = Jt_dbt.Dbt.no_plan b in
        (match prov with
        | Jt_dbt.Dbt.Static_rules ->
          Array.iteri
            (fun k (at, _, _) ->
              if
                List.exists
                  (fun (r : Jt_rules.Rules.t) -> r.rule_id = rule_tainted_store)
                  (rules_at at)
              then
                plan.(k) <-
                  [
                    {
                      Jt_dbt.Dbt.m_cost = 1;
                      m_action = Some (fun _ -> incr tainted_executions);
                      m_kind = Jt_dbt.Dbt.M_opaque;
                    };
                  ])
            b.insns
        | Jt_dbt.Dbt.Dynamic_only ->
          (* fallback: without static def-use chains, conservatively count
             every store in never-analyzed code *)
          Array.iteri
            (fun k (_, insn, _) ->
              match insn with
              | Insn.Store _ ->
                plan.(k) <-
                  [
                    {
                      Jt_dbt.Dbt.m_cost = 2;
                      m_action = Some (fun _ -> incr tainted_executions);
                      m_kind = Jt_dbt.Dbt.M_opaque;
                    };
                  ]
              | _ -> ())
            b.insns);
        plan);
  }

let tool =
  {
    Janitizer.Tool.t_name = "alloc-taint";
    t_setup = (fun _ -> ());
    t_static = static_pass;
    t_client = client;
    t_on_load = Janitizer.Tool.no_on_load;
    t_aux = Janitizer.Tool.no_aux;
  }

let () =
  (* Run it over one of the repository's SPEC-like workloads. *)
  let w = Jt_workloads.Specgen.build (Jt_workloads.Sheet.find "bzip2") in
  let o =
    Janitizer.Driver.run ~tool ~registry:w.w_registry ~main:"bzip2" ()
  in
  Format.printf
    "bzip2 under the custom taint tracker:@.  status %a@.  %d rewrite rules \
     from the static pass@.  %d executed stores traced to allocation sites@.  \
     %.2fx slowdown vs the same run natively@."
    Jt_vm.Vm.pp_status o.o_result.r_status o.o_rule_count !tainted_executions
    (let native = Jt_workloads.Specgen.run_native w in
     float_of_int o.o_result.r_cycles /. float_of_int native.r_cycles)
