(* The janitizer command-line tool.

     janitizer_cli list
     janitizer_cli inspect <workload>
     janitizer_cli run <workload> [--tool jasan|jcfi|valgrind|null] [--no-static]
     janitizer_cli juliet [--detector jasan|valgrind] [--limit N]   *)

open Cmdliner
open Jt_workloads

let find_workload name =
  match Sheet.find name with
  | s -> Ok (Specgen.build s)
  | exception Not_found ->
    Error
      (Printf.sprintf "unknown workload %S (try `janitizer_cli list`)" name)

(* ---- list ---- *)

let list_cmd =
  let doc = "List the available SPEC CPU2006-like workloads." in
  let run () =
    List.iter
      (fun (s : Sheet.t) ->
        Printf.printf "%-12s %s\n" s.s_name
          (match s.s_lang with
          | Sheet.C -> "C"
          | Sheet.Cxx -> "C++"
          | Sheet.Fortran -> "Fortran"
          | Sheet.Mixed_cf -> "C/Fortran"))
      Sheet.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- inspect ---- *)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let inspect_cmd =
  let doc = "Run the static analyzer over a workload and report findings." in
  let run name =
    match find_workload name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w ->
      let closure =
        Janitizer.Driver.static_closure ~registry:w.w_registry ~main:name
      in
      List.iter
        (fun (m : Jt_obj.Objfile.t) ->
          let sa = Janitizer.Static_analyzer.analyze m in
          let covered, total = Jt_disasm.Disasm.code_stats sa.sa_disasm in
          let loops =
            List.fold_left
              (fun acc (fa : Janitizer.Static_analyzer.fn_analysis) ->
                acc + List.length fa.fa_fn.Jt_cfg.Cfg.f_loops)
              0 sa.sa_fns
          in
          let canaries =
            List.fold_left
              (fun acc (fa : Janitizer.Static_analyzer.fn_analysis) ->
                acc + List.length fa.fa_canaries)
              0 sa.sa_fns
          in
          let hoistable =
            List.fold_left
              (fun acc (fa : Janitizer.Static_analyzer.fn_analysis) ->
                acc + List.length fa.fa_scev)
              0 sa.sa_fns
          in
          let jasan, _ = Jt_jasan.Jasan.create () in
          let rules = jasan.Janitizer.Tool.t_static sa in
          Printf.printf
            "%-18s %-5s  %4d fns %5d blocks  %3d loops (%d hoistable)  %2d \
             canary sites  %5d/%5d code bytes decoded  %5d JASan rules\n"
            m.name
            (match m.kind with
            | Jt_obj.Objfile.Exec_nonpic -> "EXEC"
            | Jt_obj.Objfile.Exec_pic -> "PIE"
            | Jt_obj.Objfile.Shared -> "DYN")
            (List.length sa.sa_fns)
            (Jt_cfg.Cfg.block_count sa.sa_cfg)
            loops hoistable canaries covered total
            (List.length rules.rf_rules))
        closure
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ workload_arg)

(* ---- run ---- *)

let tool_conv =
  Arg.enum
    [ ("jasan", `Jasan); ("jcfi", `Jcfi); ("taint", `Taint); ("valgrind", `Valgrind);
      ("null", `Null) ]

let tool_arg =
  Arg.(value & opt tool_conv `Jasan & info [ "tool" ] ~docv:"TOOL" ~doc:"Security tool")

let no_static_arg =
  Arg.(value & flag & info [ "no-static" ] ~doc:"Disable the static analyzer (dynamic-only mode)")

let run_cmd =
  let doc = "Execute a workload under the dynamic modifier with a tool." in
  let run name tool no_static =
    match find_workload name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w ->
      let hybrid = not no_static in
      let native = Specgen.run_native w in
      let show label (r : Jt_vm.Vm.result) extra =
        Printf.printf "%s: %s, %d instructions, %d cycles (%.2fx)%s\n" label
          (Format.asprintf "%a" Jt_vm.Vm.pp_status r.r_status)
          r.r_icount r.r_cycles
          (float_of_int r.r_cycles /. float_of_int native.r_cycles)
          extra;
        match r.r_violations with
        | [] -> ()
        | vs ->
          List.iter
            (fun v ->
              Printf.printf "  violation: %s at 0x%08x (pc 0x%08x)\n"
                v.Jt_vm.Vm.v_kind v.v_addr v.v_pc)
            vs
      in
      show "native" native "";
      (match tool with
      | `Null ->
        let o = Janitizer.Driver.run_null ~registry:w.w_registry ~main:name () in
        show "null client" o.o_result ""
      | `Valgrind ->
        let r = Jt_baselines.Valgrind_like.run ~registry:w.w_registry ~main:name () in
        show "valgrind-class" r ""
      | `Jasan ->
        let t, _ = Jt_jasan.Jasan.create () in
        let o = Janitizer.Driver.run ~hybrid ~tool:t ~registry:w.w_registry ~main:name () in
        show "jasan" o.o_result
          (Printf.sprintf ", %d rules, %.1f%% dynamic blocks" o.o_rule_count
             (100.0 *. o.o_dynamic_fraction))
      | `Jcfi ->
        let t, rt = Jt_jcfi.Jcfi.create () in
        let o = Janitizer.Driver.run ~hybrid ~tool:t ~registry:w.w_registry ~main:name () in
        show "jcfi" o.o_result
          (Printf.sprintf ", %d rules, DAIR %.2f%%" o.o_rule_count
             (Jt_jcfi.Air.dynamic rt))
      | `Taint ->
        let t, rt = Jt_taint.Taint.create () in
        let o = Janitizer.Driver.run ~hybrid ~tool:t ~registry:w.w_registry ~main:name () in
        show "jtaint" o.o_result
          (Printf.sprintf ", %d rules, %d alerts" o.o_rule_count
             (Jt_taint.Taint.Rt.alerts rt)));
      if native.r_output <> "" then
        Printf.printf "program output: %s\n" (String.trim native.r_output)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ workload_arg $ tool_arg $ no_static_arg)

(* ---- disasm ---- *)

let disasm_cmd =
  let doc = "Print an objdump-style listing of a workload module." in
  let module_arg =
    Arg.(value & opt (some string) None & info [ "module" ] ~docv:"NAME"
           ~doc:"Module to list (default: the main executable)")
  in
  let run name module_name =
    match find_workload name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w ->
      let target = Option.value ~default:name module_name in
      (match
         List.find_opt
           (fun (m : Jt_obj.Objfile.t) -> String.equal m.name target)
           w.w_registry
       with
      | None ->
        Printf.eprintf "no module %S in this workload's registry\n" target;
        exit 1
      | Some m ->
        let d = Jt_disasm.Disasm.run m in
        Format.printf "%a@." Jt_disasm.Disasm.pp_listing d)
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ workload_arg $ module_arg)

(* ---- analyze: offline rule generation ---- *)

(* Per-function dataflow facts as JSON: value-sets at block boundaries
   plus the elision decision (and its reason) for every load/store —
   the debugging view for bailed-out loops and missed elisions.
   [traces] is the runtime complement: the per-trace elision decisions
   the DBT's spine analysis made on the workload's hot superblocks
   (reasons "trace-dom", "trace-canary", "trace-streak", "trace-ind"),
   collected from one instrumented run. *)
let dump_facts oc ?(traces = []) (closure : Jt_obj.Objfile.t list) =
  let jstr s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\"" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"modules\": [\n";
  List.iteri
    (fun mi (m : Jt_obj.Objfile.t) ->
      let sa = Janitizer.Static_analyzer.analyze m in
      let reports = Jt_jasan.Jasan.elision_report sa in
      Buffer.add_string buf
        (Printf.sprintf "    {\"module\": %s, \"functions\": [\n" (jstr m.name));
      List.iteri
        (fun fi ((fa : Janitizer.Static_analyzer.fn_analysis),
                 (r : Jt_jasan.Jasan.fn_report)) ->
          let vsa = Lazy.force fa.fa_vsa in
          Buffer.add_string buf
            (Printf.sprintf
               "      {\"entry\": %d, \"vsa_bailed\": %b, \
                \"vsa_iterations\": %d,\n"
               r.er_fn r.er_vsa_bailed (Jt_analysis.Vsa.iterations vsa));
          Buffer.add_string buf "       \"blocks\": [";
          List.iteri
            (fun bi (b : Jt_cfg.Cfg.block) ->
              if bi > 0 then Buffer.add_string buf ", ";
              let regs =
                match Jt_analysis.Vsa.block_in vsa b.b_addr with
                | None -> []
                | Some rs ->
                  (* Top rows carry no information; keep the dump small *)
                  List.filter
                    (fun (_, v) -> v <> Jt_analysis.Vsa.Top)
                    rs
              in
              Buffer.add_string buf
                (Printf.sprintf "{\"addr\": %d, \"regs\": {%s}}" b.b_addr
                   (String.concat ", "
                      (List.map
                         (fun (reg, v) ->
                           Printf.sprintf "%s: %s"
                             (jstr (Format.asprintf "%a" Jt_isa.Reg.pp reg))
                             (jstr (Jt_analysis.Vsa.value_to_string v)))
                         regs))))
            (Jt_cfg.Cfg.fn_blocks fa.fa_fn);
          Buffer.add_string buf "],\n       \"accesses\": [";
          List.iteri
            (fun ai (addr, claim) ->
              if ai > 0 then Buffer.add_string buf ", ";
              let witness =
                match claim with
                | Jt_jasan.Jasan.Dom_elided w ->
                  Printf.sprintf ", \"witness\": %d" w
                | _ -> ""
              in
              Buffer.add_string buf
                (Printf.sprintf "{\"insn\": %d, \"claim\": %s%s}" addr
                   (jstr (Jt_jasan.Jasan.claim_name claim))
                   witness))
            r.er_claims;
          Buffer.add_string buf "]}";
          if fi < List.length reports - 1 then Buffer.add_string buf ",";
          Buffer.add_char buf '\n')
        (List.combine sa.sa_fns reports);
      Buffer.add_string buf "    ],\n     \"cpa_sites\": [";
      List.iteri
        (fun si (s : Jt_analysis.Cpa.site) ->
          if si > 0 then Buffer.add_string buf ", ";
          let targets =
            match s.cs_targets with
            | None -> "\"Top\""
            | Some ts ->
              "[" ^ String.concat ", " (List.map string_of_int ts) ^ "]"
          in
          Buffer.add_string buf
            (Printf.sprintf
               "{\"entry\": %d, \"site\": %d, \"targets\": %s, \
                \"witness\": %d}"
               s.cs_fn s.cs_site targets s.cs_witness))
        (Jt_analysis.Cpa.sites (Lazy.force sa.sa_cpa));
      Buffer.add_string buf "],\n     \"callgraph\": [";
      List.iteri
        (fun ei (e : Jt_cfg.Callgraph.edge) ->
          if ei > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "{\"caller\": %d, \"site\": %d, \"callee\": %d, \"kind\": %s}"
               e.e_caller e.e_site e.e_callee
               (jstr (Jt_cfg.Callgraph.kind_name e.e_kind))))
        (Jt_cfg.Callgraph.edges (Lazy.force sa.sa_callgraph));
      Buffer.add_string buf "]}";
      if mi < List.length closure - 1 then Buffer.add_string buf ",";
      Buffer.add_char buf '\n')
    closure;
  Buffer.add_string buf "  ],\n  \"traces\": [\n";
  List.iteri
    (fun ti (head, decisions) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"head\": %d, \"decisions\": [%s]}" head
           (String.concat ", "
              (List.map
                 (fun (insn, reason, witness) ->
                   Printf.sprintf
                     "{\"insn\": %d, \"reason\": %s, \"witness\": %d}" insn
                     (jstr reason) witness)
                 decisions)));
      if ti < List.length traces - 1 then Buffer.add_string buf ",";
      Buffer.add_char buf '\n')
    traces;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.output_buffer oc buf

let analyze_cmd =
  let doc =
    "Run a tool's static pass offline and persist per-module rewrite-rule \
     files (.jtr), the artifact a deployment ships next to each binary."
  in
  let out_arg =
    Arg.(value & opt string "_rules" & info [ "o"; "out" ] ~docv:"DIR")
  in
  let facts_arg =
    Arg.(value & opt (some string) None & info [ "facts" ] ~docv:"FILE"
           ~doc:"Also dump per-function dataflow facts (VSA value-sets at \
                 block boundaries, per-access elision decisions) as JSON")
  in
  let run name tool out facts =
    match find_workload name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w ->
      let tool_v =
        match tool with
        | `Jasan -> fst (Jt_jasan.Jasan.create ())
        | `Jcfi -> fst (Jt_jcfi.Jcfi.create ())
        | `Taint -> fst (Jt_taint.Taint.create ())
        | `Valgrind | `Null ->
          prerr_endline "analyze needs a framework tool (jasan|jcfi|taint)";
          exit 1
      in
      let closure =
        Janitizer.Driver.static_closure ~registry:w.w_registry ~main:name
      in
      let files = Janitizer.Driver.analyze_all ~tool:tool_v closure in
      Janitizer.Driver.save_rules ~dir:out files;
      List.iter
        (fun (n, (f : Jt_rules.Rules.file)) ->
          let stats =
            match f.rf_stats with
            | [] -> ""
            | ss ->
              "  ("
              ^ String.concat ", "
                  (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) ss)
              ^ ")"
          in
          Printf.printf "%-20s %5d rules -> %s/%s.jtr%s\n" n
            (List.length f.rf_rules) out n stats)
        files;
      match facts with
      | None -> ()
      | Some file ->
        (* A tool instance is one-run state; the run that collects the
           per-trace elision decisions gets its own. *)
        let run_tool =
          match tool with
          | `Jasan -> fst (Jt_jasan.Jasan.create ())
          | `Jcfi -> fst (Jt_jcfi.Jcfi.create ())
          | `Taint -> fst (Jt_taint.Taint.create ())
          | `Valgrind | `Null -> assert false
        in
        let o =
          Janitizer.Driver.run ~tool:run_tool ~registry:w.w_registry
            ~main:name ()
        in
        let oc = open_out file in
        dump_facts oc ~traces:o.o_trace_elisions closure;
        close_out oc;
        Printf.printf "dataflow facts -> %s (%d live traces)\n" file
          (List.length o.o_trace_elisions)
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ workload_arg $ tool_arg $ out_arg $ facts_arg)

(* ---- trace: structured event capture ---- *)

let trace_cmd =
  let doc =
    "Execute a workload with the structured trace layer enabled and export \
     the captured events as JSONL."
  in
  let out_arg =
    Arg.(value & opt string "trace.jsonl" & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Where to write the JSONL event stream")
  in
  let capacity_arg =
    Arg.(value & opt int Jt_trace.Trace.default_capacity
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Ring-buffer capacity in events (oldest are dropped beyond it)")
  in
  let run name tool no_static out capacity =
    match find_workload name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w ->
      let hybrid = not no_static in
      Jt_trace.Trace.enable ~capacity ();
      let o =
        match tool with
        | `Null -> Janitizer.Driver.run_null ~registry:w.w_registry ~main:name ()
        | `Valgrind ->
          prerr_endline "trace needs a framework tool (jasan|jcfi|taint|null)";
          exit 1
        | `Jasan ->
          let t, _ = Jt_jasan.Jasan.create () in
          Janitizer.Driver.run ~hybrid ~tool:t ~registry:w.w_registry ~main:name ()
        | `Jcfi ->
          let t, _ = Jt_jcfi.Jcfi.create () in
          Janitizer.Driver.run ~hybrid ~tool:t ~registry:w.w_registry ~main:name ()
        | `Taint ->
          let t, _ = Jt_taint.Taint.create () in
          Janitizer.Driver.run ~hybrid ~tool:t ~registry:w.w_registry ~main:name ()
      in
      Jt_trace.Trace.disable ();
      let oc = open_out out in
      Jt_trace.Trace.export oc;
      close_out oc;
      Printf.printf "%s: %s, %d instructions, %d cycles\n" name
        (Format.asprintf "%a" Jt_vm.Vm.pp_status o.o_result.r_status)
        o.o_result.r_icount o.o_result.r_cycles;
      Printf.printf "events: %d emitted, %d dropped (ring capacity %d) -> %s\n"
        (Jt_trace.Trace.emitted ()) (Jt_trace.Trace.dropped ()) capacity out;
      List.iter
        (fun (k, n) -> Printf.printf "  %-16s %7d\n" k n)
        (Jt_trace.Trace.kind_counts ());
      print_string "phases:\n";
      List.iter
        (fun (p : Jt_trace.Trace.phase_summary) ->
          if p.ps_spans > 0 || p.ps_cycles > 0 then
            Printf.printf "  %-8s %d span(s), %.6fs host, %d cycles\n"
              (Jt_trace.Trace.phase_name p.ps_phase)
              p.ps_spans p.ps_host_s p.ps_cycles)
        (Jt_trace.Trace.phase_totals ());
      Jt_trace.Trace.clear ()
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ workload_arg $ tool_arg $ no_static_arg $ out_arg
          $ capacity_arg)

(* ---- batch: many workload×tool jobs across a domain pool ---- *)

let batch_cmd =
  let doc =
    "Evaluate many workload/tool combinations concurrently on a domain pool \
     and emit a single JSON report."
  in
  let workloads_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD"
           ~doc:"Workloads to evaluate (default: all of them)")
  in
  let tools_arg =
    Arg.(value & opt_all tool_conv [ `Jasan ]
         & info [ "tool" ] ~docv:"TOOL"
             ~doc:"Tool to attach; repeatable for a tool×workload matrix")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains in the pool")
  in
  let out_arg =
    Arg.(value & opt string "batch.json" & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Where to write the JSON report")
  in
  let store_arg =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Route the static-analysis phase through a persistent IR \
                 store at DIR: modules already in the store skip \
                 re-analysis, and the report gains the store hit rate")
  in
  let tool_name = function
    | `Jasan -> "jasan"
    | `Jcfi -> "jcfi"
    | `Taint -> "taint"
    | `Valgrind -> "valgrind"
    | `Null -> "null"
  in
  let run names tools jobs out store_dir =
    let store = Option.map (fun dir -> Jt_ir.Store.create ~dir ()) store_dir in
    let names = if names = [] then List.map (fun (s : Sheet.t) -> s.s_name) Sheet.all else names in
    List.iter
      (fun n ->
        if not (List.exists (fun (s : Sheet.t) -> String.equal s.s_name n) Sheet.all)
        then begin
          Printf.eprintf "unknown workload %S (try `janitizer_cli list`)\n" n;
          exit 1
        end)
      names;
    let matrix =
      List.concat_map (fun n -> List.map (fun t -> (n, t)) tools) names
    in
    (* Each job is self-contained: it builds the workload, instantiates a
       fresh tool and runs on whatever worker domain picks it up —
       metrics/trace state is domain-local, so jobs cannot corrupt each
       other.  [Pool.map] returns results in submission order, so the
       report is byte-stable regardless of completion order. *)
    let eval (name, tool) =
      match Sheet.find name with
      | exception Not_found -> assert false
      | s ->
        let w = Specgen.build s in
        let o =
          match tool with
          | `Null -> Janitizer.Driver.run_null ~registry:w.w_registry ~main:name ()
          | `Valgrind ->
            let r =
              Jt_baselines.Valgrind_like.run ~registry:w.w_registry ~main:name ()
            in
            { Janitizer.Driver.o_result = r; o_dbt = None;
              o_dynamic_fraction = 0.0; o_rule_count = 0;
              o_trace_elisions = [] }
          | `Jasan ->
            let t, _ = Jt_jasan.Jasan.create () in
            Janitizer.Driver.run ?store ~tool:t ~registry:w.w_registry ~main:name ()
          | `Jcfi ->
            let t, _ = Jt_jcfi.Jcfi.create () in
            Janitizer.Driver.run ?store ~tool:t ~registry:w.w_registry ~main:name ()
          | `Taint ->
            let t, _ = Jt_taint.Taint.create () in
            Janitizer.Driver.run ?store ~tool:t ~registry:w.w_registry ~main:name ()
        in
        (name, tool, o)
    in
    let t0 = Unix.gettimeofday () in
    let results =
      if jobs > 1 then Jt_pool.Pool.run ~jobs eval matrix else List.map eval matrix
    in
    let wall = Unix.gettimeofday () -. t0 in
    let oc = open_out out in
    Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"wall_s\": %.3f,\n" jobs wall;
    (match store with
    | None -> ()
    | Some st ->
      let s = Jt_ir.Store.stats st in
      Printf.fprintf oc
        "  \"store\": {\"mem_hits\": %d, \"disk_hits\": %d, \"misses\": %d, \
         \"evictions\": %d, \"corrupt\": %d, \"hit_rate\": %.4f},\n"
        s.st_mem_hits s.st_disk_hits s.st_misses s.st_evictions s.st_corrupt
        (Jt_ir.Store.hit_rate s));
    output_string oc "  \"runs\": [\n";
    List.iteri
      (fun i (name, tool, (o : Janitizer.Driver.outcome)) ->
        Printf.fprintf oc
          "    {\"workload\": %S, \"tool\": %S, \"status\": %S, \"icount\": %d, \
           \"cycles\": %d, \"violations\": %d, \"rules\": %d}%s\n"
          name (tool_name tool)
          (Format.asprintf "%a" Jt_vm.Vm.pp_status o.o_result.r_status)
          o.o_result.r_icount o.o_result.r_cycles
          (List.length o.o_result.r_violations)
          o.o_rule_count
          (if i = List.length results - 1 then "" else ","))
      results;
    output_string oc "  ]\n}\n";
    close_out oc;
    Printf.printf "%d runs (%d workloads x %d tools), %d jobs, %.3fs -> %s\n"
      (List.length results) (List.length names) (List.length tools) jobs wall out
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const run $ workloads_arg $ tools_arg $ jobs_arg $ out_arg
          $ store_arg)

(* ---- cache: rule-cache and IR-store maintenance ---- *)

let cache_cmd =
  let doc =
    "Inspect and maintain the on-disk caches: the rewrite-rule cache \
     (.jtr files) and the content-addressed IR store (.jtir files)."
  in
  let action_conv =
    Arg.enum [ ("stats", `Stats); ("gc", `Gc); ("clear", `Clear) ]
  in
  let action_arg =
    Arg.(required & pos 0 (some action_conv) None & info [] ~docv:"ACTION"
           ~doc:"$(b,stats) reports entries, bytes and this process's \
                 hit/miss counts; $(b,gc) evicts oldest-accessed entries \
                 until each cache fits --max-bytes; $(b,clear) removes \
                 every entry.")
  in
  let rules_dir_arg =
    Arg.(value & opt string "_rules" & info [ "rules-dir" ] ~docv:"DIR"
           ~doc:"Rewrite-rule cache directory")
  in
  let store_dir_arg =
    Arg.(value & opt string "_irstore" & info [ "store-dir" ] ~docv:"DIR"
           ~doc:"IR store directory")
  in
  let max_bytes_arg =
    Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"N"
           ~doc:"gc budget, applied to each cache independently")
  in
  (* The rule cache shares the store's maintenance policy (oldest mtime
     first) but has no module of its own — it is a plain directory of
     .jtr files, enumerated here. *)
  let rule_entries dir =
    (match Sys.readdir dir with
    | files -> Array.to_list files
    | exception Sys_error _ -> [])
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".jtr" then begin
             let path = Filename.concat dir f in
             match Unix.stat path with
             | st -> Some (path, st.Unix.st_size, st.Unix.st_mtime)
             | exception Unix.Unix_error _ -> None
           end
           else None)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  in
  let total entries = List.fold_left (fun a (_, b, _) -> a + b) 0 entries in
  let run action rules_dir store_dir max_bytes =
    let store = Jt_ir.Store.create ~dir:store_dir () in
    match action with
    | `Stats ->
      let rents = rule_entries rules_dir in
      let sents = Jt_ir.Store.disk_entries store in
      let st = Jt_ir.Store.stats store in
      Printf.printf "rule cache %s: %d entries, %d bytes\n" rules_dir
        (List.length rents) (total rents);
      Printf.printf "IR store   %s: %d entries, %d bytes\n" store_dir
        (List.length sents) (total sents);
      Printf.printf
        "IR store lookups this process: %d mem hits, %d disk hits, %d \
         misses, %d evictions, %d corrupt (hit rate %.1f%%)\n"
        st.st_mem_hits st.st_disk_hits st.st_misses st.st_evictions
        st.st_corrupt
        (100.0 *. Jt_ir.Store.hit_rate st)
    | `Gc ->
      let budget =
        match max_bytes with
        | Some n when n >= 0 -> n
        | Some _ | None ->
          prerr_endline "cache gc needs --max-bytes N (N >= 0)";
          exit 1
      in
      let rents = rule_entries rules_dir in
      let excess = ref (total rents - budget) in
      let r_removed = ref 0 and r_freed = ref 0 in
      List.iter
        (fun (path, sz, _) ->
          if !excess > 0 then begin
            (try Sys.remove path with Sys_error _ -> ());
            excess := !excess - sz;
            incr r_removed;
            r_freed := !r_freed + sz
          end)
        rents;
      let s_removed, s_freed = Jt_ir.Store.gc store ~max_bytes:budget in
      Printf.printf "rule cache %s: removed %d entries, freed %d bytes\n"
        rules_dir !r_removed !r_freed;
      Printf.printf "IR store   %s: removed %d entries, freed %d bytes\n"
        store_dir s_removed s_freed
    | `Clear ->
      let rents = rule_entries rules_dir in
      List.iter
        (fun (path, _, _) -> try Sys.remove path with Sys_error _ -> ())
        rents;
      let s_removed = Jt_ir.Store.clear store in
      Printf.printf "rule cache %s: removed %d entries\n" rules_dir
        (List.length rents);
      Printf.printf "IR store   %s: removed %d entries\n" store_dir s_removed
  in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(const run $ action_arg $ rules_dir_arg $ store_dir_arg
          $ max_bytes_arg)

(* ---- emit: ahead-of-time rewriting ---- *)

let emit_cmd =
  let doc =
    "Ahead-of-time rewrite a workload: emit JELF objects with the tool's \
     checks materialized as real instructions, save them, then execute the \
     emitted program on the plain VM (zero translation overhead) and \
     differential-check it against the hybrid DBT."
  in
  let out_arg =
    Arg.(value & opt string "_emitted" & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Directory for the emitted .jelf objects")
  in
  let run name tool out =
    match find_workload name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok w ->
      let etool =
        match tool with
        | `Jasan -> Jt_emit.Emit.Asan { elide = true }
        | `Jcfi -> Jt_emit.Emit.Cfi Jt_jcfi.Jcfi.default_config
        | `Taint | `Valgrind | `Null ->
          prerr_endline "emit supports --tool jasan|jcfi";
          exit 1
      in
      (match
         Jt_emit.Emit.emit_program ~tool:etool ~registry:w.w_registry
           ~main:name ()
       with
      | Error (_, r) ->
        (* The typed applicability verdict: the rewriter refuses rather
           than emit a silently wrong binary. *)
        Printf.eprintf "refused: %s\n" (Jt_emit.Emit.refusal_to_string r);
        exit 2
      | Ok p ->
        List.iter
          (fun (mo : Jt_obj.Objfile.t) ->
            if List.mem mo.name p.p_emitted then begin
              let path = Jt_obj.Jelf.save ~dir:out mo in
              let em = Option.get (Jt_emit.Emit.read_map mo) in
              let sites =
                Array.fold_left
                  (fun a (mi : Jt_emit.Emit.map_insn) ->
                    if mi.mi_site then a + 1 else a)
                  0 em.em_insns
              in
              Printf.printf "%-18s -> %s  (%d insns, %d sites, %d pins)\n"
                mo.name path (Array.length em.em_insns) sites
                (Array.length em.em_pins)
            end)
          p.p_registry;
        List.iter
          (fun (n, r) ->
            Printf.printf "%-18s skipped: %s\n" n
              (Jt_emit.Emit.refusal_to_string r))
          p.p_skipped;
        let native = Specgen.run_native w in
        let e = Jt_emit.Emit.run p in
        let er = e.ro_outcome.o_result in
        Printf.printf
          "emitted run: %s, %d instructions, %d cycles (%.2fx native), %d \
           sites, %d pins, %d check cycles\n"
          (Format.asprintf "%a" Jt_vm.Vm.pp_status er.r_status)
          er.r_icount er.r_cycles
          (float_of_int er.r_cycles /. float_of_int native.r_cycles)
          e.ro_sites e.ro_pins e.ro_check_cost;
        List.iter
          (fun v ->
            Printf.printf "  violation: %s at 0x%08x (pc 0x%08x)\n"
              v.Jt_vm.Vm.v_kind v.v_addr v.v_pc)
          er.r_violations;
        let h =
          match tool with
          | `Jasan ->
            let t, _ = Jt_jasan.Jasan.create ~elide:true () in
            Janitizer.Driver.run ~tool:t ~registry:w.w_registry ~main:name ()
          | `Jcfi ->
            let t, _ = Jt_jcfi.Jcfi.create () in
            Janitizer.Driver.run ~tool:t ~registry:w.w_registry ~main:name ()
          | _ -> assert false
        in
        let vset (r : Jt_vm.Vm.result) =
          List.sort_uniq compare
            (List.map (fun v -> (v.Jt_vm.Vm.v_kind, v.v_addr)) r.r_violations)
        in
        let identical =
          (er.r_status, er.r_output) = (h.o_result.r_status, h.o_result.r_output)
          && vset er = vset h.o_result
          && er.r_icount - e.ro_sites - e.ro_pins = h.o_result.r_icount
        in
        Printf.printf
          "differential vs hybrid DBT: %s (icount %d - %d sites - %d pins = \
           hybrid %d)\n"
          (if identical then "identical" else "DIVERGED")
          er.r_icount e.ro_sites e.ro_pins h.o_result.r_icount;
        if not identical then exit 1)
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(const run $ workload_arg $ tool_arg $ out_arg)

(* ---- juliet ---- *)

let juliet_cmd =
  let doc = "Run a Juliet-style CWE suite under a detector." in
  let det_conv =
    Arg.enum
      [ ("jasan", Juliet.Jasan_hybrid); ("jasan-dyn", Juliet.Jasan_dyn);
        ("valgrind", Juliet.Valgrind) ]
  in
  let det_arg =
    Arg.(value & opt det_conv Juliet.Jasan_hybrid & info [ "detector" ] ~docv:"DET")
  in
  let fam_conv =
    Arg.enum
      [ ("cwe-122", None); ("cwe-124", Some Juliet.Cwe124);
        ("cwe-415", Some Juliet.Cwe415); ("cwe-416", Some Juliet.Cwe416);
        ("cwe-121", Some Juliet.Cwe121) ]
  in
  let fam_arg =
    Arg.(value & opt fam_conv None
         & info [ "family" ] ~docv:"CWE"
             ~doc:"Which suite: cwe-122 (default), cwe-124, cwe-415, cwe-416, cwe-121")
  in
  let limit_arg =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Only the first N cases")
  in
  let run det fam limit =
    let t =
      match fam with
      | None -> Juliet.evaluate ?limit det
      | Some fam -> Juliet.evaluate_family ?limit det fam
    in
    Printf.printf "TP=%d FN=%d TN=%d FP=%d\n" t.t_true_pos t.t_false_neg
      t.t_true_neg t.t_false_pos
  in
  Cmd.v (Cmd.info "juliet" ~doc) Term.(const run $ det_arg $ fam_arg $ limit_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let doc =
    "Differential soundness fuzzing: seeded workload programs with injected \
     violations, run under every scheme and checked against the expected \
     detection matrix plus bit-identical benign behaviour."
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed")
  in
  let seeds_arg =
    Arg.(value & opt int 84
         & info [ "cases" ] ~docv:"N"
             ~doc:"Seed count; each seed yields one benign case plus one per \
                   injection kind (6 total)")
  in
  let run base_seed seeds =
    let r = Jt_fuzz.Fuzz.run_suite ~base_seed ~seeds () in
    List.iter
      (fun (x : Jt_fuzz.Fuzz.matrix_row) ->
        Printf.printf "%-14s TP=%-4d FN=%-4d TN=%-4d FP=%-4d refused=%d\n"
          x.mx_scheme x.mx_tp x.mx_fn x.mx_tn x.mx_fp x.mx_refused)
      r.rp_matrix;
    Printf.printf "%d cases, %d runs, %d soundness mismatches\n" r.rp_cases
      r.rp_runs
      (List.length r.rp_mismatches);
    List.iter
      (fun (m : Jt_fuzz.Fuzz.mismatch) ->
        Printf.printf "MISMATCH %s %s: %s\n" m.mm_case m.mm_scheme m.mm_what)
      r.rp_mismatches;
    if r.rp_mismatches <> [] then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(const run $ seed_arg $ seeds_arg)

let () =
  let doc = "Janitizer: hybrid static-dynamic binary security (simulated reproduction)" in
  let info = Cmd.info "janitizer_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; inspect_cmd; disasm_cmd; analyze_cmd; run_cmd; trace_cmd;
            batch_cmd; cache_cmd; emit_cmd; juliet_cmd; fuzz_cmd ]))
