examples/jit_sandbox.ml: Char Encode Format Insn Janitizer Jt_asm Jt_baselines Jt_isa Jt_jasan Jt_obj Jt_vm Jt_workloads List Reg String Sysno Word
