examples/jit_sandbox.mli:
