examples/custom_tool.ml: Array Format Insn Janitizer Jt_analysis Jt_cfg Jt_dbt Jt_disasm Jt_isa Jt_obj Jt_rules Jt_vm Jt_workloads List
