examples/quickstart.ml: Format Insn Janitizer Jt_asm Jt_isa Jt_jasan Jt_obj Jt_vm Jt_workloads List Reg Sysno Word
