examples/quickstart.mli:
