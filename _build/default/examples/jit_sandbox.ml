(* Dynamically generated code is still covered: a program JIT-compiles a
   small kernel at run time (the browser/JavaScript scenario of section
   3.4.3).  A static-only sanitizer sees nothing; Janitizer's dynamic
   fallback instruments the generated code the moment it first runs.

     dune exec examples/jit_sandbox.exe *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

(* Encode a tiny "JITted" kernel: writes n+1 words to the buffer in r6 —
   one past the end, exactly the kind of bug JIT bugs produce. *)
let jit_code n =
  let insns =
    [
      Insn.Mov (Reg.r1, Insn.Imm 0);
      (* head *)
      Insn.Cmp (Reg.r1, Insn.Imm (n + 1));
      Insn.Jcc (Insn.Ge, 0 (* patched below *));
      Insn.Store (Insn.W4, Insn.mem_base_index ~scale:4 Reg.r6 Reg.r1, Insn.Reg Reg.r1);
      Insn.Binop (Insn.Add, Reg.r1, Insn.Imm 1);
      Insn.Jmp 0 (* patched below *);
      Insn.Ret;
    ]
  in
  (* lay out at base 0 to learn offsets, then patch branch targets *)
  let offsets =
    List.fold_left
      (fun acc i -> (List.hd acc + Encode.length i) :: acc)
      [ 0 ] insns
    |> List.rev
  in
  let off k = List.nth offsets k in
  let patched base =
    [
      Insn.Mov (Reg.r1, Insn.Imm 0);
      Insn.Cmp (Reg.r1, Insn.Imm (n + 1));
      Insn.Jcc (Insn.Ge, base + off 6);
      Insn.Store (Insn.W4, Insn.mem_base_index ~scale:4 Reg.r6 Reg.r1, Insn.Reg Reg.r1);
      Insn.Binop (Insn.Add, Reg.r1, Insn.Imm 1);
      Insn.Jmp (base + off 1);
      Insn.Ret;
    ]
  in
  fun base ->
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", base) (patched base)
    |> fst

let host n =
  (* the host program: mmap a code region, emit the kernel byte by byte,
     flush the code cache, call it *)
  let jit_base = fst Jt_vm.Vm.jit_region in
  let code = jit_code n jit_base in
  let emit =
    List.concat
      (List.mapi
         (fun i c ->
           [
             movi Reg.r2 (Char.code c);
             I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:i Reg.r7, Jt_asm.Sinsn.Sreg Reg.r2));
           ])
         (List.init (String.length code) (String.get code)))
  in
  build ~name:"jit_host" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 (n * 4);
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r0 256;
           syscall Sysno.mmap_code;
           mov Reg.r7 Reg.r0;
         ]
        @ emit
        @ [
            mov Reg.r0 Reg.r7;
            movi Reg.r1 256;
            syscall Sysno.cache_flush;
            call_reg Reg.r7;
            ld Reg.r0 (mem_b ~disp:0 Reg.r6);
            call_import "print_int";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ]);
    ]

let () =
  let m = host 16 in
  let registry = [ m; Jt_workloads.Stdlibs.libc ] in

  (* The static rewriter cannot instrument code that does not exist yet:
     on this non-PIC build it refuses outright (the usual applicability
     gate), and even on a PIC build it would see zero of the JIT code. *)
  Format.printf "--- static-only sanitizer (RetroWrite-class) ---@.";
  (match
     Jt_baselines.Retrowrite_like.run ~registry ~main:"jit_host" ()
   with
  | Ok r ->
    Format.printf "violations: %d (static rewriting cannot see JIT code)@."
      (List.length r.r_violations)
  | Error _ ->
    Format.printf "(refused: this build is non-PIC — the usual gate)@.");

  let tool, _ = Jt_jasan.Jasan.create () in
  Format.printf "@.--- Janitizer + JASan ---@.";
  let o = Janitizer.Driver.run ~tool ~registry ~main:"jit_host" () in
  Format.printf "status %a, %.1f%% of executed blocks were dynamic code@."
    Jt_vm.Vm.pp_status o.o_result.r_status
    (100.0 *. o.o_dynamic_fraction);
  List.iter
    (fun v ->
      Format.printf "VIOLATION in JITted code: %s at %a@." v.Jt_vm.Vm.v_kind
        Word.pp v.v_addr)
    o.o_result.r_violations
