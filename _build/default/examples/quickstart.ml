(* Quickstart: assemble a buggy program, analyze it statically, run it
   under the hybrid sanitizer, and read the report.

     dune exec examples/quickstart.exe *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let () =
  (* 1. A program with an off-by-one heap write: it allocates 8 words and
     initializes "up to and including" index 8. *)
  let buggy =
    build ~name:"app" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          [
            movi Reg.r0 32;
            call_import "malloc";
            mov Reg.r6 Reg.r0;
            movi Reg.r1 0;
            label "fill";
            cmpi Reg.r1 8;
            jcc Insn.Gt "done" (* off by one: should be Ge *);
            st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "fill";
            label "done";
            ld Reg.r0 (mem_b ~disp:0 Reg.r6);
            call_import "print_int";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  let registry = [ buggy; Jt_workloads.Stdlibs.libc ] in

  (* 2. Native run: the bug is silent. *)
  let native = Jt_vm.Vm.run_native ~registry ~main:"app" () in
  Format.printf "native:     %a, output %S, %d cycles@."
    Jt_vm.Vm.pp_status native.r_status native.r_output native.r_cycles;

  (* 3. The same binary under Janitizer + JASan: the static analyzer
     compiles its findings into rewrite rules, the dynamic modifier
     instruments the code as it runs, and the overflow is caught. *)
  let tool, _rt = Jt_jasan.Jasan.create () in
  let o = Janitizer.Driver.run ~tool ~registry ~main:"app" () in
  Format.printf "under JASan: %a, output %S, %d cycles (%.2fx), %d rewrite rules@."
    Jt_vm.Vm.pp_status o.o_result.r_status o.o_result.r_output
    o.o_result.r_cycles
    (float_of_int o.o_result.r_cycles /. float_of_int native.r_cycles)
    o.o_rule_count;
  match o.o_result.r_violations with
  | [] -> Format.printf "no violations?!@."
  | vs ->
    List.iter
      (fun v ->
        Format.printf "VIOLATION: %s at address %a (pc %a)@." v.Jt_vm.Vm.v_kind
          Word.pp v.v_addr Word.pp v.v_pc)
      vs
