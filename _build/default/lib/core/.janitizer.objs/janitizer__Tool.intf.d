lib/core/tool.mli: Jt_dbt Jt_loader Jt_rules Jt_vm Static_analyzer
