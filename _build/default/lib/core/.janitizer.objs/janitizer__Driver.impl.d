lib/core/driver.ml: Filename Hashtbl Jt_dbt Jt_loader Jt_obj Jt_rules Jt_vm List Static_analyzer String Sys Tool
