lib/core/static_analyzer.mli: Jt_analysis Jt_cfg Jt_disasm Jt_obj
