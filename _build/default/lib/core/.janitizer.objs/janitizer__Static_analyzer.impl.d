lib/core/static_analyzer.ml: Array Hashtbl Jt_analysis Jt_cfg Jt_disasm Jt_obj List Option
