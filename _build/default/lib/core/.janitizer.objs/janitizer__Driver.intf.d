lib/core/driver.mli: Jt_dbt Jt_obj Jt_rules Jt_vm Tool
