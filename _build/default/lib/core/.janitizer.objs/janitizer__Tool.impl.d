lib/core/tool.ml: Hashtbl Jt_dbt Jt_loader Jt_rules Jt_vm List Static_analyzer
