lib/disasm/disasm.mli: Format Hashtbl Insn Jt_isa Jt_obj
