lib/disasm/disasm.ml: Char Decode Format Hashtbl Insn Jt_isa Jt_obj List Objfile Printf Queue Reg Reloc Section String Symbol Word
