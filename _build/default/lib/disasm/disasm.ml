open Jt_isa
open Jt_obj

type insn_info = { d_addr : int; d_insn : Insn.t; d_len : int }

type t = {
  dmod : Objfile.t;
  insns : (int, insn_info) Hashtbl.t;
  leaders : (int, unit) Hashtbl.t;
  func_entries : int list;
  jump_tables : (int * int list) list;
}

let in_code_section m a =
  match Objfile.section_at m a with Some s -> s.Section.is_code | None -> false

let read32_opt m a =
  match
    (Objfile.byte_at m a, Objfile.byte_at m (a + 1), Objfile.byte_at m (a + 2),
     Objfile.byte_at m (a + 3))
  with
  | Some b0, Some b1, Some b2, Some b3 ->
    Some (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  | _ -> None

(* Recover the targets of a memory-indirect jump of the shape
     mov/lea rb, <table>; ...; cmp ri, <n>; jugt/jgt <default>; ...
     jmp *[rb + ri*4]
   by reading n+1 table slots.  [consts] maps registers to known constant
   values accumulated along the current decode run; [bound] is the latest
   compare-against-immediate seen for each register. *)
let recover_jump_table m ~consts ~bounds (mem : Insn.mem) =
  match (mem.base, mem.index, mem.scale, mem.disp) with
  | Some (Insn.Breg rb), Some ri, 4, 0 -> (
    match (Hashtbl.find_opt consts (Reg.index rb), Hashtbl.find_opt bounds (Reg.index ri)) with
    | Some table, Some n when n >= 0 && n < 4096 ->
      let entries = ref [] in
      (try
         for i = 0 to n do
           match read32_opt m (table + (4 * i)) with
           | Some v when in_code_section m v -> entries := v :: !entries
           | Some _ | None -> raise Exit
         done
       with Exit -> entries := []);
      List.rev !entries
    | _ -> [])
  | _ -> []

let run (m : Objfile.t) =
  let insns = Hashtbl.create 1024 in
  let leaders = Hashtbl.create 256 in
  let func_entries = Hashtbl.create 64 in
  let jump_tables = ref [] in
  let worklist = Queue.create () in
  let add_leader a = if not (Hashtbl.mem leaders a) then Hashtbl.replace leaders a () in
  let seed_code a =
    if in_code_section m a && not (Hashtbl.mem insns a) then Queue.add a worklist;
    if in_code_section m a then add_leader a
  in
  let seed_func a =
    if in_code_section m a then Hashtbl.replace func_entries a ();
    seed_code a
  in
  (* Seeds: entry point, visible function symbols, exported functions,
     PLT stubs (known from the never-stripped dynamic info), and the start
     of every executable section. *)
  (match m.entry with Some e -> seed_func e | None -> ());
  List.iter
    (fun (s : Symbol.t) -> if Symbol.is_func s then seed_func s.vaddr)
    (Objfile.visible_symbols m);
  List.iter
    (fun (s : Symbol.t) -> if Symbol.is_func s then seed_func s.vaddr)
    (Objfile.exported_symbols m);
  List.iter
    (fun (imp : Objfile.import) ->
      match imp.imp_plt with
      | Some p ->
        seed_func p;
        (* PLT layout is ABI knowledge: the lazy-binding entry directly
           follows the stub's one-instruction indirect jump, and is only
           ever reached through the GOT — seed it explicitly so stripped
           modules (no @plt.lazy symbols) still cover it. *)
        (match
           Decode.instr
             ~read:(fun a ->
               match Objfile.byte_at m a with
               | Some b -> b
               | None -> raise (Decode.Bad_read a))
             ~at:p
         with
        | Some (_, len) -> seed_func (p + len)
        | None -> ())
      | None -> ())
    m.imports;
  List.iter (fun (s : Section.t) -> seed_code s.vaddr) (Objfile.code_sections m);

  let read a =
    match Objfile.byte_at m a with
    | Some b -> b
    | None -> raise (Decode.Bad_read a)
  in
  (* Decode a straight-line run from [start] until a block-ending
     instruction, an already-decoded address, or a decode failure. *)
  let decode_run start =
    let consts = Hashtbl.create 8 in
    let bounds = Hashtbl.create 8 in
    let pc = ref start in
    let stop = ref false in
    while not !stop do
      if Hashtbl.mem insns !pc || not (in_code_section m !pc) then stop := true
      else
        match Decode.instr ~read ~at:!pc with
        | None -> stop := true
        | Some (i, len) ->
          Hashtbl.replace insns !pc { d_addr = !pc; d_insn = i; d_len = len };
          let next = !pc + len in
          (* Track constants for jump-table recovery. *)
          (match i with
          | Insn.Mov (rd, Insn.Imm v) -> Hashtbl.replace consts (Reg.index rd) v
          | Insn.Lea (rd, { base = Some Insn.Bpc; index = None; disp; _ }) ->
            Hashtbl.replace consts (Reg.index rd) (Word.add next disp)
          | Insn.Cmp (r, Insn.Imm v) -> Hashtbl.replace bounds (Reg.index r) v
          | Insn.Mov (rd, _) | Insn.Lea (rd, _) | Insn.Load (_, rd, _)
          | Insn.Binop (_, rd, _) | Insn.Neg rd | Insn.Not rd | Insn.Pop rd
          | Insn.Load_canary rd ->
            Hashtbl.remove consts (Reg.index rd);
            Hashtbl.remove bounds (Reg.index rd)
          | _ -> ());
          (match Insn.cti_kind i with
          | None | Some Insn.Cti_syscall -> ()
          | Some (Insn.Cti_jmp t) ->
            seed_code t;
            stop := true
          (* Fall through conditional branches and calls without ending
             the linear run: jump-table recovery needs the constant and
             bound tracking to survive the bounds-check branch that
             precedes every compiled switch. *)
          | Some (Insn.Cti_jcc (_, t)) ->
            seed_code t;
            add_leader next
          | Some (Insn.Cti_call t) ->
            seed_func t;
            add_leader next
          | Some Insn.Cti_call_ind -> add_leader next
          | Some Insn.Cti_jmp_ind ->
            (match i with
            | Insn.Jmp_ind (None, Some mem) ->
              let targets = recover_jump_table m ~consts ~bounds mem in
              if targets <> [] then begin
                jump_tables := (!pc, targets) :: !jump_tables;
                List.iter seed_code targets
              end
            | _ -> ());
            stop := true
          | Some (Insn.Cti_ret | Insn.Cti_halt) -> stop := true);
          pc := next
    done
  in
  while not (Queue.is_empty worklist) do
    decode_run (Queue.pop worklist)
  done;
  {
    dmod = m;
    insns;
    leaders;
    func_entries =
      List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) func_entries []);
    jump_tables = !jump_tables;
  }

let insn_at t a = Hashtbl.find_opt t.insns a
let is_insn_boundary t a = Hashtbl.mem t.insns a

let block_starts t =
  List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) t.leaders [])

let code_stats t =
  let covered = Hashtbl.fold (fun _ i acc -> acc + i.d_len) t.insns 0 in
  let total =
    List.fold_left (fun acc s -> acc + Section.size s) 0 (Objfile.code_sections t.dmod)
  in
  (covered, total)

let pp_listing ppf (t : t) =
  let open Format in
  let m = t.dmod in
  let sym_at = Hashtbl.create 64 in
  List.iter
    (fun (s : Symbol.t) ->
      if not (Hashtbl.mem sym_at s.vaddr) then Hashtbl.add sym_at s.vaddr s.name)
    (Objfile.visible_symbols m @ Objfile.exported_symbols m);
  let hex_bytes a n =
    String.concat " "
      (List.init n (fun i ->
           match Objfile.byte_at m (a + i) with
           | Some b -> Printf.sprintf "%02x" b
           | None -> "??"))
  in
  List.iter
    (fun (s : Section.t) ->
      if s.is_code then begin
        fprintf ppf "@[<v>section %s:@," s.name;
        let a = ref s.vaddr in
        let stop = Section.end_vaddr s in
        while !a < stop do
          (match Hashtbl.find_opt sym_at !a with
          | Some name -> fprintf ppf "@,<%s>:@," name
          | None -> ());
          match Hashtbl.find_opt t.insns !a with
          | Some info ->
            fprintf ppf "  %08x:  %-24s  %s@," !a (hex_bytes !a info.d_len)
              (Insn.to_string info.d_insn);
            a := !a + info.d_len
          | None ->
            (* coalesce the undecoded (data / padding) run *)
            let start = !a in
            while !a < stop && not (Hashtbl.mem t.insns !a) do
              incr a
            done;
            fprintf ppf "  %08x:  (%d bytes of data)@," start (!a - start)
        done;
        fprintf ppf "@]@."
      end)
    m.sections

let speculative_insn_boundary (m : Objfile.t) addr =
  let read a =
    match Objfile.byte_at m a with
    | Some b -> b
    | None -> raise (Decode.Bad_read a)
  in
  let rec go a k =
    k = 0
    ||
    match Decode.instr ~read ~at:a with
    | Some (i, len) -> Insn.ends_block i || go (a + len) (k - 1)
    | None -> false
  in
  in_code_section m addr && go addr 4

let scan_code_pointers (m : Objfile.t) =
  match Objfile.code_bounds m with
  | None -> []
  | Some (lo, hi) ->
    let hits = Hashtbl.create 256 in
    if Objfile.is_pic m then
      (* PIC modules are linked at base 0, so raw window values collide
         with every small constant.  As in the paper (section 4.2.1),
         position-independent code is scanned through its relocation
         information instead: every load-time-relocated slot that lands
         in a code section is a code pointer. *)
      List.iter
        (fun (r : Reloc.t) ->
          match r.kind with
          | Reloc.Rel_relative v -> if v >= lo && v < hi then Hashtbl.replace hits v ()
          | Reloc.Rel_got _ -> ())
        m.relocs
    else
      List.iter
        (fun (s : Section.t) ->
          let n = Section.size s in
          for o = 0 to n - 4 do
            let v =
              Char.code s.data.[o]
              lor (Char.code s.data.[o + 1] lsl 8)
              lor (Char.code s.data.[o + 2] lsl 16)
              lor (Char.code s.data.[o + 3] lsl 24)
            in
            if v >= lo && v < hi then Hashtbl.replace hits v ()
          done)
        m.sections;
    List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) hits [])
