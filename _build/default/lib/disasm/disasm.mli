(** Static disassembly of JELF modules.

    Works on link-time addresses.  The main entry point is
    recursive-traversal disassembly seeded from the module's entry point,
    visible function symbols and PLT stubs, with jump-table recovery for
    memory-indirect jumps.  Like any static disassembler it is an
    under-approximation: code reachable only through computed transfers
    that defeat the jump-table heuristic is missed — these are exactly the
    blocks Janitizer's dynamic modifier later discovers and reports in the
    coverage experiment (Figure 14). *)

open Jt_isa

type insn_info = { d_addr : int; d_insn : Insn.t; d_len : int }

type t = {
  dmod : Jt_obj.Objfile.t;
  insns : (int, insn_info) Hashtbl.t;  (** by address *)
  leaders : (int, unit) Hashtbl.t;  (** basic-block leader addresses *)
  func_entries : int list;  (** sorted discovered function entries *)
  jump_tables : (int * int list) list;
      (** (indirect-jump address, recovered targets) *)
}

val run : Jt_obj.Objfile.t -> t
(** Recursive-traversal disassembly over all executable sections
    ([.init], [.plt], [.text], [.fini]). *)

val insn_at : t -> int -> insn_info option

val is_insn_boundary : t -> int -> bool
(** Did disassembly place an instruction start at this address? *)

val block_starts : t -> int list
(** Sorted leader addresses. *)

val code_stats : t -> int * int
(** (bytes covered by decoded instructions, total code-section bytes). *)

(** {1 Pointer scanning}

    The BinCFI-style sliding-window scan (section 4.2.1 of the paper): read
    every 4-byte window of the module, one byte apart, and report values
    that land inside the module's code sections.  For PIC modules the scan
    interprets window values as module offsets.  The result is the raw
    constant set; policies then filter it against instruction or function
    boundaries. *)

val scan_code_pointers : Jt_obj.Objfile.t -> int list
(** Sorted, deduplicated link-time addresses found by the scan. *)

val pp_listing : Format.formatter -> t -> unit
(** objdump-style listing: per code section, each decoded instruction
    with address, bytes and mnemonic; symbol names as labels; undecoded
    ranges marked as data. *)

val speculative_insn_boundary : Jt_obj.Objfile.t -> int -> bool
(** Does a plausible instruction sequence (four consecutive decodes)
    start at this address?  Used by allow-list policies (section 4.2.3)
    for scanned constants that recursive traversal never reached, such
    as computed-goto targets held in data tables. *)
