open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

type site = {
  c_fn : int;
  c_store_addr : int;
  c_after_store : int;
  c_slot_disp : int;
  c_check_loads : int list;
}

let fp_slot (m : Insn.mem) =
  match (m.base, m.index) with
  | Some (Insn.Breg b), None when Reg.equal b Reg.fp -> Some (Word.to_signed m.disp)
  | _ -> None

let analyze (fn : Cfg.fn) =
  (* Pass 1: find ldcanary destinations, then stores of those registers to
     fp-relative slots, scanning linearly within each block. *)
  let stores = ref [] in
  List.iter
    (fun b ->
      let canary_regs = Hashtbl.create 2 in
      Array.iter
        (fun info ->
          match info.d_insn with
          | Insn.Load_canary r -> Hashtbl.replace canary_regs (Reg.index r) ()
          | Insn.Store (Insn.W4, m, Insn.Reg r)
            when Hashtbl.mem canary_regs (Reg.index r) -> (
            match fp_slot m with
            | Some disp ->
              stores := (info.d_addr, info.d_addr + info.d_len, disp) :: !stores
            | None -> ())
          | i -> List.iter (fun r -> Hashtbl.remove canary_regs (Reg.index r)) (Insn.defs i))
        b.Cfg.b_insns)
    (Cfg.fn_blocks fn);
  (* Pass 2: loads of a known canary slot anywhere in the function are
     check loads. *)
  let sites =
    List.map
      (fun (store_addr, after, disp) ->
        let checks = ref [] in
        List.iter
          (fun b ->
            Array.iter
              (fun info ->
                match info.d_insn with
                | Insn.Load (Insn.W4, _, m) when fp_slot m = Some disp ->
                  checks := info.d_addr :: !checks
                | _ -> ())
              b.Cfg.b_insns)
          (Cfg.fn_blocks fn);
        {
          c_fn = fn.Cfg.f_entry;
          c_store_addr = store_addr;
          c_after_store = after;
          c_slot_disp = disp;
          c_check_loads = List.rev !checks;
        })
      (List.rev !stores)
  in
  (* Deduplicate by slot. *)
  let seen = Hashtbl.create 4 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s.c_slot_disp then false
      else begin
        Hashtbl.replace seen s.c_slot_disp ();
        true
      end)
    sites

let exempt_addrs sites =
  let t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace t s.c_store_addr ();
      List.iter (fun a -> Hashtbl.replace t a ()) s.c_check_loads)
    sites;
  t
