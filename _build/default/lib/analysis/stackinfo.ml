open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

type info = {
  s_entry : int;
  s_frame_size : int option;
  s_has_canary_pattern : bool;
  s_push_bytes : int;
}

let analyze (fn : Cfg.fn) =
  match Hashtbl.find_opt fn.Cfg.f_blocks fn.Cfg.f_entry with
  | None ->
    { s_entry = fn.Cfg.f_entry; s_frame_size = None; s_has_canary_pattern = false;
      s_push_bytes = 0 }
  | Some b ->
    let frame = ref None in
    let canary = ref false in
    let pushes = ref 0 in
    Array.iter
      (fun i ->
        match i.d_insn with
        | Insn.Binop (Insn.Sub, r, Insn.Imm n)
          when Reg.equal r Reg.sp && !frame = None ->
          frame := Some n
        | Insn.Push _ -> pushes := !pushes + 4
        | Insn.Load_canary _ -> canary := true
        | _ -> ())
      b.Cfg.b_insns;
    {
      s_entry = fn.Cfg.f_entry;
      s_frame_size = !frame;
      s_has_canary_pattern = !canary;
      s_push_bytes = !pushes;
    }
