open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

type summary = { ip_clobbers : int; ip_reads : int }

let all_regs_mask = Liveness.reg_mask Reg.all
let everything = { ip_clobbers = all_regs_mask; ip_reads = all_regs_mask }

let join a b =
  { ip_clobbers = a.ip_clobbers lor b.ip_clobbers; ip_reads = a.ip_reads lor b.ip_reads }

let summaries (cfg : Cfg.t) =
  let fns = Cfg.functions cfg in
  let summary = Hashtbl.create 32 in
  List.iter
    (fun fn -> Hashtbl.replace summary fn.Cfg.f_entry { ip_clobbers = 0; ip_reads = 0 })
    fns;
  let lookup t =
    match Hashtbl.find_opt summary t with Some s -> s | None -> everything
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        let acc = ref (Hashtbl.find summary fn.Cfg.f_entry) in
        Hashtbl.iter
          (fun _ (b : Cfg.block) ->
            Array.iter
              (fun info ->
                match info.d_insn with
                | Insn.Call t -> acc := join !acc (lookup t)
                | Insn.Call_ind _ | Insn.Syscall _ -> acc := everything
                | Insn.Jmp t when not (Hashtbl.mem fn.Cfg.f_blocks t) ->
                  (* tail call *)
                  acc := join !acc (lookup t)
                | i ->
                  acc :=
                    join !acc
                      {
                        ip_clobbers = Liveness.reg_mask (Insn.defs i);
                        ip_reads = Liveness.reg_mask (Insn.uses i);
                      })
              b.b_insns)
          fn.Cfg.f_blocks;
        if !acc <> Hashtbl.find summary fn.Cfg.f_entry then begin
          Hashtbl.replace summary fn.Cfg.f_entry !acc;
          changed := true
        end)
      fns
  done;
  summary
