(** Scalar-evolution-style loop-bound analysis (section 3.3.2).

    Recognizes counted loops of the canonical rotated shape

    {v
      head:  cmp i, BOUND ; jcc {ge,gt,uge,ugt} exit
      body:  ... [base + i*scale + disp] ...  ; add i, 1 ; jmp head
    v}

    and summarizes, for every memory access whose address is affine in the
    induction register (with an unchanging base register), the address
    range the whole loop will touch.  A sanitizer can then hoist one
    range check into the loop preheader and skip the per-iteration checks
    — the paper's loop-bound optimization.  Accesses whose operands are
    loop-invariant are reported separately (one check suffices).

    The analysis is deliberately conservative: any deviation (step other
    than 1, extra definitions of the induction register, unrecognized exit
    condition, missing unique preheader) makes it bail for that loop. *)

open Jt_isa

type bound = Bimm of int | Breg of Reg.t

type access = {
  a_addr : int;  (** instruction address *)
  a_mem : Insn.mem;
  a_width : int;
  a_is_store : bool;
}

type summary = {
  ls_head : int;
  ls_preheader : int;  (** block whose terminator gets the hoisted check *)
  ls_check_at : int;  (** instruction address for the hoisted range check *)
  ls_ivar : Reg.t;
  ls_init : int;
      (** the induction variable's initial value, proven by a
          [mov ivar, imm] being the preheader's last definition of it
          (the check runs before that instruction executes, so it cannot
          read the register) *)
  ls_bound : bound;
  ls_bound_incl : bool;
      (** if true the induction variable reaches the bound value itself
          (exit on [>]); otherwise bound - 1 *)
  ls_affine : access list;
  ls_invariant : access list;
}

val analyze : Jt_cfg.Cfg.fn -> summary list

val covered_addrs : summary list -> (int, unit) Hashtbl.t
(** Addresses of accesses subsumed by hoisted checks. *)
