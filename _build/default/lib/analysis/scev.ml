open Jt_isa
open Jt_cfg
open Jt_disasm.Disasm

type bound = Bimm of int | Breg of Reg.t

type access = { a_addr : int; a_mem : Insn.mem; a_width : int; a_is_store : bool }

type summary = {
  ls_head : int;
  ls_preheader : int;
  ls_check_at : int;
  ls_ivar : Reg.t;
  ls_init : int;
  ls_bound : bound;
  ls_bound_incl : bool;
  ls_affine : access list;
  ls_invariant : access list;
}

let loop_blocks fn (l : Cfg.loop) =
  List.filter_map (fun a -> Hashtbl.find_opt fn.Cfg.f_blocks a)
    (Cfg.Iset.elements l.Cfg.l_body)

(* All registers defined anywhere in the loop. *)
let defined_in_loop blocks =
  let defs = Hashtbl.create 8 in
  List.iter
    (fun b ->
      Array.iter
        (fun info ->
          List.iter (fun r -> Hashtbl.replace defs (Reg.index r) ()) (Insn.defs info.d_insn))
        b.Cfg.b_insns)
    blocks;
  defs

(* The head must start with:  cmp ivar, bound ; jcc {>=,>} exit. *)
let head_pattern fn (l : Cfg.loop) =
  match Hashtbl.find_opt fn.Cfg.f_blocks l.Cfg.l_head with
  | None -> None
  | Some head ->
    if Array.length head.Cfg.b_insns < 2 then None
    else
      let i0 = head.Cfg.b_insns.(0) and i1 = head.Cfg.b_insns.(1) in
      (match (i0.d_insn, i1.d_insn) with
      | Insn.Cmp (ri, bnd), Insn.Jcc (cond, exit_t)
        when not (Cfg.Iset.mem exit_t l.Cfg.l_body) -> (
        let bound =
          match bnd with Insn.Reg r -> Some (Breg r) | Insn.Imm v -> Some (Bimm v)
        in
        match (bound, cond) with
        | Some b, (Insn.Ge | Insn.Uge) -> Some (ri, b, false)
        | Some b, (Insn.Gt | Insn.Ugt) -> Some (ri, b, true)
        | _ -> None)
      | _ -> None)

(* Exactly one definition of the induction register in the loop: add ri, 1. *)
let unit_step blocks ri =
  let defs = ref [] in
  List.iter
    (fun b ->
      Array.iter
        (fun info ->
          if List.exists (Reg.equal ri) (Insn.defs info.d_insn) then
            defs := info.d_insn :: !defs)
        b.Cfg.b_insns)
    blocks;
  match !defs with [ Insn.Binop (Insn.Add, r, Insn.Imm 1) ] -> Reg.equal r ri | _ -> false

let unique_preheader fn (l : Cfg.loop) =
  match Hashtbl.find_opt fn.Cfg.f_blocks l.Cfg.l_head with
  | None -> None
  | Some head ->
    let outside =
      List.filter (fun p -> not (Cfg.Iset.mem p l.Cfg.l_body)) head.Cfg.b_preds
    in
    (match List.sort_uniq compare outside with
    | [ p ] -> Hashtbl.find_opt fn.Cfg.f_blocks p
    | _ -> None)

let mem_accesses blocks =
  let acc = ref [] in
  List.iter
    (fun b ->
      Array.iter
        (fun info ->
          match info.d_insn with
          | Insn.Load (w, _, m) ->
            acc :=
              { a_addr = info.d_addr; a_mem = m; a_width = Insn.width_bytes w;
                a_is_store = false }
              :: !acc
          | Insn.Store (w, m, _) ->
            acc :=
              { a_addr = info.d_addr; a_mem = m; a_width = Insn.width_bytes w;
                a_is_store = true }
              :: !acc
          | _ -> ())
        b.Cfg.b_insns)
    blocks;
  List.rev !acc

let reg_unchanged defs r = not (Hashtbl.mem defs (Reg.index r))

(* The preheader's last definition of the induction register must be a
   constant move: that constant is the loop's first index value. *)
let init_value (pre : Cfg.block) ri =
  let init = ref None in
  Array.iter
    (fun info ->
      if List.exists (Reg.equal ri) (Insn.defs info.d_insn) then
        init :=
          (match info.d_insn with
          | Insn.Mov (_, Insn.Imm v) -> Some (Word.to_signed v)
          | _ -> None))
    pre.Cfg.b_insns;
  !init

let analyze (fn : Cfg.fn) =
  List.filter_map
    (fun (l : Cfg.loop) ->
      match head_pattern fn l with
      | None -> None
      | Some (ri, bound, incl) -> (
        let blocks = loop_blocks fn l in
        if not (unit_step blocks ri) then None
        else
          match unique_preheader fn l with
          | None -> None
          | Some pre when Array.length pre.Cfg.b_insns = 0 -> None
          | Some pre ->
            (* Only constant trip counts are hoisted.  A register-held
               bound would be available at the preheader, but proving it
               stable against aliasing writes is beyond what a sound
               binary-level analysis can promise, so those loops keep
               their per-access checks — which is also why the paper's
               hybrid sanitizer still lands at RetroWrite-class overhead
               rather than below it. *)
            let defs = defined_in_loop blocks in
            let bound_ok = match bound with Bimm _ -> true | Breg _ -> false in
            let init = init_value pre ri in
            if (not bound_ok) || init = None then None
            else begin
              let affine = ref [] and invariant = ref [] in
              List.iter
                (fun a ->
                  let m = a.a_mem in
                  match (m.Insn.base, m.Insn.index) with
                  | Some (Insn.Breg rb), Some rx
                    when Reg.equal rx ri && reg_unchanged defs rb ->
                    affine := a :: !affine
                  | Some (Insn.Breg rb), None when reg_unchanged defs rb ->
                    invariant := a :: !invariant
                  | Some (Insn.Breg rb), Some rx
                    when reg_unchanged defs rb && reg_unchanged defs rx ->
                    invariant := a :: !invariant
                  | _ -> ())
                (mem_accesses blocks);
              if !affine = [] && !invariant = [] then None
              else
                let last = pre.Cfg.b_insns.(Array.length pre.Cfg.b_insns - 1) in
                Some
                  {
                    ls_head = l.Cfg.l_head;
                    ls_preheader = pre.Cfg.b_addr;
                    ls_check_at = last.d_addr;
                    ls_ivar = ri;
                    ls_init = Option.get init;
                    ls_bound = bound;
                    ls_bound_incl = incl;
                    ls_affine = List.rev !affine;
                    ls_invariant = List.rev !invariant;
                  }
            end))
    fn.Cfg.f_loops

let covered_addrs summaries =
  let t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      List.iter (fun a -> Hashtbl.replace t a.a_addr ()) s.ls_affine;
      List.iter (fun a -> Hashtbl.replace t a.a_addr ()) s.ls_invariant)
    summaries;
  t
