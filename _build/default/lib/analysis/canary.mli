(** Canary analysis (section 3.3.3, Figure 6).

    Recognizes the stack-protector idiom: a [ldcanary r] followed by a
    store of [r] into a frame slot (the canary store), and later loads of
    that slot feeding the epilogue comparison (the canary checks).
    Security tools use the sites to (a) poison/unpoison the canary slot
    for frame-granularity overflow detection and (b) exempt the canary
    accesses themselves from memory checks. *)

type site = {
  c_fn : int;  (** function entry *)
  c_store_addr : int;  (** address of the store placing the canary *)
  c_after_store : int;  (** next instruction: where poisoning happens *)
  c_slot_disp : int;  (** fp-relative displacement of the canary slot *)
  c_check_loads : int list;
      (** addresses of loads of the slot (epilogue checks); unpoisoning is
          inserted before each *)
}

val analyze : Jt_cfg.Cfg.fn -> site list
(** One site per distinct canary slot written in the function. *)

val exempt_addrs : site list -> (int, unit) Hashtbl.t
(** All instruction addresses that touch canary slots and must not be
    instrumented as ordinary memory accesses. *)
