(** Inter-procedural register summaries (section 4.1.2).

    Calling-convention-based liveness is unsound when compilers (ipa-ra)
    or hand-written assembly break the convention — the callee may use
    caller-saved registers it "shouldn't", or fail to restore
    callee-saved ones.  For such modules the paper extends the analysis
    inter-procedurally; here that takes the form of per-function
    summaries: the registers a call may {e modify} and the registers it
    may {e read}, computed as a fixpoint over the direct call graph.
    Indirect calls, syscalls and calls leaving the module are summarized
    as touching everything. *)

type summary = {
  ip_clobbers : int;  (** registers possibly written, as a bit mask *)
  ip_reads : int;  (** registers possibly read *)
}

val summaries : Jt_cfg.Cfg.t -> (int, summary) Hashtbl.t
(** Function entry -> summary. *)

val all_regs_mask : int
