lib/analysis/defuse.mli: Insn Jt_cfg Jt_isa Reg
