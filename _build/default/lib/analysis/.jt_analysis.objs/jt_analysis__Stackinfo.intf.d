lib/analysis/stackinfo.mli: Jt_cfg
