lib/analysis/stackinfo.ml: Array Cfg Hashtbl Insn Jt_cfg Jt_disasm Jt_isa Reg
