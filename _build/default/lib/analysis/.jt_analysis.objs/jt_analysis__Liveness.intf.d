lib/analysis/liveness.mli: Flags Jt_cfg Jt_isa Reg
