lib/analysis/canary.ml: Array Cfg Hashtbl Insn Jt_cfg Jt_disasm Jt_isa List Reg Word
