lib/analysis/scev.mli: Hashtbl Insn Jt_cfg Jt_isa Reg
