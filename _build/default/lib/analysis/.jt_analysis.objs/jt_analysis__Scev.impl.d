lib/analysis/scev.ml: Array Cfg Hashtbl Insn Jt_cfg Jt_disasm Jt_isa List Option Reg Word
