lib/analysis/interproc.ml: Array Cfg Hashtbl Insn Jt_cfg Jt_disasm Jt_isa List Liveness Reg
