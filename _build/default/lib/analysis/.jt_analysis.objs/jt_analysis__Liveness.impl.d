lib/analysis/liveness.ml: Array Cfg Flags Hashtbl Insn Jt_cfg Jt_disasm Jt_isa List Option Reg
