lib/analysis/canary.mli: Hashtbl Jt_cfg
