lib/analysis/defuse.ml: Array Cfg Hashtbl Insn Int Jt_cfg Jt_disasm Jt_isa List Map Reg
