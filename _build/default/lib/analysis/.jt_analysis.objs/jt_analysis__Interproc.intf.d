lib/analysis/interproc.mli: Hashtbl Jt_cfg
