open Insn

let opcode_binop_rr op =
  0x10
  + match op with
    | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4
    | Shl -> 5 | Shr -> 6 | Sar -> 7 | Mul -> 8

let opcode_binop_ri op = opcode_binop_rr op + 0x10

let opcode_jcc c =
  0x41
  + match c with
    | Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
    | Ult -> 6 | Ule -> 7 | Ugt -> 8 | Uge -> 9

let mem_length (m : mem) =
  1 (* flag byte *)
  + (match m.base with Some (Breg _) -> 1 | Some Bpc | None -> 0)
  + (match m.index with Some _ -> 1 | None -> 0)
  + 4 (* disp32 *)

let length = function
  | Nop | Halt | Ret -> 1
  | Syscall _ -> 2
  | Load_canary _ | Neg _ | Not _ | Pop _ -> 2
  | Mov (_, Reg _) -> 3
  | Mov (_, Imm _) -> 6
  | Lea (_, m) -> 2 + mem_length m
  | Load (_, _, m) -> 3 + mem_length m
  | Store (_, m, Reg _) -> 3 + mem_length m
  | Store (_, m, Imm _) -> 6 + mem_length m
  | Binop (_, _, Reg _) -> 3
  | Binop (_, _, Imm _) -> 6
  | Cmp (_, Reg _) | Test (_, Reg _) -> 3
  | Cmp (_, Imm _) | Test (_, Imm _) -> 6
  | Push (Reg _) -> 2
  | Push (Imm _) -> 5
  | Jmp _ | Jcc _ | Call _ -> 5
  | Jmp_ind (Some _, _) | Call_ind (Some _, _) -> 2
  | Jmp_ind (None, Some m) | Call_ind (None, Some m) -> 1 + mem_length m
  | Jmp_ind (None, None) | Call_ind (None, None) ->
    invalid_arg "Encode.length: invalid indirect transfer"

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u32 b v =
  u8 b v;
  u8 b (v lsr 8);
  u8 b (v lsr 16);
  u8 b (v lsr 24)

let scale_log2 = function
  | 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3
  | _ -> invalid_arg "Encode: bad scale"

let emit_mem b (m : mem) =
  let flag =
    (match m.base with Some (Breg _) -> 1 | Some Bpc | None -> 0)
    lor (match m.base with Some Bpc -> 2 | Some (Breg _) | None -> 0)
    lor (match m.index with Some _ -> 4 | None -> 0)
    lor (scale_log2 m.scale lsl 3)
  in
  u8 b flag;
  (match m.base with Some (Breg r) -> u8 b (Reg.index r) | Some Bpc | None -> ());
  (match m.index with Some r -> u8 b (Reg.index r) | None -> ());
  u32 b m.disp

let to_buffer b ~at i =
  let rel32 target = Word.sub target (Word.of_int (at + length i)) in
  match i with
  | Nop -> u8 b 0x01
  | Halt -> u8 b 0x02
  | Ret -> u8 b 0x03
  | Syscall n ->
    u8 b 0x04;
    u8 b n
  | Load_canary r ->
    u8 b 0x05;
    u8 b (Reg.index r)
  | Mov (rd, Reg rs) ->
    u8 b 0x06;
    u8 b (Reg.index rd);
    u8 b (Reg.index rs)
  | Mov (rd, Imm v) ->
    u8 b 0x07;
    u8 b (Reg.index rd);
    u32 b v
  | Lea (rd, m) ->
    u8 b 0x08;
    u8 b (Reg.index rd);
    emit_mem b m
  | Load (w, rd, m) ->
    u8 b 0x09;
    u8 b (width_bytes w);
    u8 b (Reg.index rd);
    emit_mem b m
  | Store (w, m, Reg rs) ->
    u8 b 0x0A;
    u8 b (width_bytes w);
    u8 b (Reg.index rs);
    emit_mem b m
  | Store (w, m, Imm v) ->
    u8 b 0x0B;
    u8 b (width_bytes w);
    u32 b v;
    emit_mem b m
  | Binop (op, rd, Reg rs) ->
    u8 b (opcode_binop_rr op);
    u8 b (Reg.index rd);
    u8 b (Reg.index rs)
  | Binop (op, rd, Imm v) ->
    u8 b (opcode_binop_ri op);
    u8 b (Reg.index rd);
    u32 b v
  | Neg r ->
    u8 b 0x29;
    u8 b (Reg.index r)
  | Not r ->
    u8 b 0x2A;
    u8 b (Reg.index r)
  | Cmp (ra, Reg rb) ->
    u8 b 0x30;
    u8 b (Reg.index ra);
    u8 b (Reg.index rb)
  | Cmp (ra, Imm v) ->
    u8 b 0x31;
    u8 b (Reg.index ra);
    u32 b v
  | Test (ra, Reg rb) ->
    u8 b 0x32;
    u8 b (Reg.index ra);
    u8 b (Reg.index rb)
  | Test (ra, Imm v) ->
    u8 b 0x33;
    u8 b (Reg.index ra);
    u32 b v
  | Push (Reg r) ->
    u8 b 0x34;
    u8 b (Reg.index r)
  | Push (Imm v) ->
    u8 b 0x35;
    u32 b v
  | Pop rd ->
    u8 b 0x36;
    u8 b (Reg.index rd)
  | Jmp t ->
    u8 b 0x40;
    u32 b (rel32 t)
  | Jcc (c, t) ->
    u8 b (opcode_jcc c);
    u32 b (rel32 t)
  | Jmp_ind (Some r, _) ->
    u8 b 0x4B;
    u8 b (Reg.index r)
  | Jmp_ind (None, Some m) ->
    u8 b 0x4C;
    emit_mem b m
  | Call t ->
    u8 b 0x4D;
    u32 b (rel32 t)
  | Call_ind (Some r, _) ->
    u8 b 0x4E;
    u8 b (Reg.index r)
  | Call_ind (None, Some m) ->
    u8 b 0x4F;
    emit_mem b m
  | Jmp_ind (None, None) | Call_ind (None, None) ->
    invalid_arg "Encode.to_buffer: invalid indirect transfer"

let encode ~at i =
  let b = Buffer.create 12 in
  to_buffer b ~at i;
  Buffer.contents b
