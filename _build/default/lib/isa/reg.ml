type t = int

let count = 16

let of_index i =
  if i < 0 || i >= count then invalid_arg "Reg.of_index" else i

let index r = r

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let fp = 14
let sp = 15

let equal = Int.equal
let compare = Int.compare

let caller_saved = [ r0; r1; r2; r3; r4; r5 ]
let callee_saved = [ r6; r7; r8; r9; r10; r11; r12; r13; fp ]
let all = List.init count (fun i -> i)

let name r =
  match r with
  | 14 -> "fp"
  | 15 -> "sp"
  | i -> "r" ^ string_of_int i

let pp ppf r = Format.pp_print_string ppf (name r)
