type width = W1 | W2 | W4

type base = Breg of Reg.t | Bpc

type mem = {
  base : base option;
  index : Reg.t option;
  scale : int;
  disp : Word.t;
}

type operand = Reg of Reg.t | Imm of Word.t

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Sar | Mul

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge

type t =
  | Nop
  | Halt
  | Mov of Reg.t * operand
  | Lea of Reg.t * mem
  | Load of width * Reg.t * mem
  | Store of width * mem * operand
  | Binop of binop * Reg.t * operand
  | Neg of Reg.t
  | Not of Reg.t
  | Cmp of Reg.t * operand
  | Test of Reg.t * operand
  | Push of operand
  | Pop of Reg.t
  | Jmp of Word.t
  | Jcc of cond * Word.t
  | Jmp_ind of Reg.t option * mem option
  | Call of Word.t
  | Call_ind of Reg.t option * mem option
  | Ret
  | Load_canary of Reg.t
  | Syscall of int

let jmp_ind_reg r = Jmp_ind (Some r, None)
let jmp_ind_mem m = Jmp_ind (None, Some m)
let call_ind_reg r = Call_ind (Some r, None)
let call_ind_mem m = Call_ind (None, Some m)

let mem_abs addr = { base = None; index = None; scale = 1; disp = Word.of_int addr }

let mem_base ?(disp = 0) r =
  { base = Some (Breg r); index = None; scale = 1; disp = Word.of_int disp }

let mem_base_index ?(disp = 0) ?(scale = 1) b i =
  { base = Some (Breg b); index = Some i; scale; disp = Word.of_int disp }

let mem_pcrel disp = { base = Some Bpc; index = None; scale = 1; disp = Word.of_int disp }

let width_bytes = function W1 -> 1 | W2 -> 2 | W4 -> 4

type cti_kind =
  | Cti_jmp of Word.t
  | Cti_jcc of cond * Word.t
  | Cti_jmp_ind
  | Cti_call of Word.t
  | Cti_call_ind
  | Cti_ret
  | Cti_halt
  | Cti_syscall

let cti_kind = function
  | Jmp t -> Some (Cti_jmp t)
  | Jcc (c, t) -> Some (Cti_jcc (c, t))
  | Jmp_ind _ -> Some Cti_jmp_ind
  | Call t -> Some (Cti_call t)
  | Call_ind _ -> Some Cti_call_ind
  | Ret -> Some Cti_ret
  | Halt -> Some Cti_halt
  | Syscall _ -> Some Cti_syscall
  | Nop | Mov _ | Lea _ | Load _ | Store _ | Binop _ | Neg _ | Not _ | Cmp _
  | Test _ | Push _ | Pop _ | Load_canary _ ->
    None

let ends_block i =
  match cti_kind i with
  | None | Some Cti_syscall -> false
  | Some
      ( Cti_jmp _ | Cti_jcc _ | Cti_jmp_ind | Cti_call _ | Cti_call_ind
      | Cti_ret | Cti_halt ) ->
    true

let reads_mem = function
  | Load (_, _, m) -> Some m
  | Jmp_ind (None, Some m) | Call_ind (None, Some m) -> Some m
  | Nop | Halt | Mov _ | Lea _ | Store _ | Binop _ | Neg _ | Not _ | Cmp _
  | Test _ | Push _ | Pop _ | Jmp _ | Jcc _ | Jmp_ind _ | Call _ | Call_ind _
  | Ret | Load_canary _ | Syscall _ ->
    None

let writes_mem = function
  | Store (_, m, _) -> Some m
  | Nop | Halt | Mov _ | Lea _ | Load _ | Binop _ | Neg _ | Not _ | Cmp _
  | Test _ | Push _ | Pop _ | Jmp _ | Jcc _ | Jmp_ind _ | Call _ | Call_ind _
  | Ret | Load_canary _ | Syscall _ ->
    None

let mem_regs m =
  let base = match m.base with Some (Breg r) -> [ r ] | Some Bpc | None -> [] in
  match m.index with Some r -> r :: base | None -> base

let operand_regs = function Reg r -> [ r ] | Imm _ -> []

(* Syscall argument convention: arguments in r0..r2, result in r0. *)
let syscall_uses = [ Reg.r0; Reg.r1; Reg.r2 ]

let uses = function
  | Nop | Halt | Jmp _ | Jcc _ -> []
  | Mov (_, src) -> operand_regs src
  | Lea (_, m) | Load (_, _, m) -> mem_regs m
  | Store (_, m, src) -> operand_regs src @ mem_regs m
  | Binop (_, rd, src) -> rd :: operand_regs src
  | Neg r | Not r -> [ r ]
  | Cmp (a, b) | Test (a, b) -> a :: operand_regs b
  | Push src -> Reg.sp :: operand_regs src
  | Pop _ -> [ Reg.sp ]
  | Jmp_ind (r, m) ->
    (match r with Some r -> [ r ] | None -> [])
    @ (match m with Some m -> mem_regs m | None -> [])
  | Call _ -> [ Reg.sp ]
  | Call_ind (r, m) ->
    Reg.sp
    :: ((match r with Some r -> [ r ] | None -> [])
       @ match m with Some m -> mem_regs m | None -> [])
  | Ret -> [ Reg.sp ]
  | Load_canary _ -> []
  | Syscall _ -> syscall_uses

let defs = function
  | Nop | Halt | Jmp _ | Jcc _ | Jmp_ind _ | Store _ | Cmp _ | Test _ -> []
  | Mov (rd, _) | Lea (rd, _) | Load (_, rd, _) | Binop (_, rd, _)
  | Neg rd | Not rd | Load_canary rd ->
    [ rd ]
  | Push _ -> [ Reg.sp ]
  | Pop rd -> [ rd; Reg.sp ]
  | Call _ | Call_ind _ -> [ Reg.sp ]
  | Ret -> [ Reg.sp ]
  | Syscall _ -> [ Reg.r0 ]

let flags_def = function
  | Binop _ | Neg _ | Not _ | Cmp _ | Test _ -> Flags.all
  | Nop | Halt | Mov _ | Lea _ | Load _ | Store _ | Push _ | Pop _ | Jmp _
  | Jcc _ | Jmp_ind _ | Call _ | Call_ind _ | Ret | Load_canary _ | Syscall _ ->
    Flags.empty

let cond_flags = function
  | Eq | Ne -> Flags.of_list [ Flags.Zf ]
  | Lt | Ge -> Flags.of_list [ Flags.Sf; Flags.Of ]
  | Le | Gt -> Flags.of_list [ Flags.Zf; Flags.Sf; Flags.Of ]
  | Ult | Uge -> Flags.of_list [ Flags.Cf ]
  | Ule | Ugt -> Flags.of_list [ Flags.Cf; Flags.Zf ]

let flags_use = function
  | Jcc (c, _) -> cond_flags c
  | Nop | Halt | Mov _ | Lea _ | Load _ | Store _ | Binop _ | Neg _ | Not _
  | Cmp _ | Test _ | Push _ | Pop _ | Jmp _ | Jmp_ind _ | Call _ | Call_ind _
  | Ret | Load_canary _ | Syscall _ ->
    Flags.empty

let pp_base ppf = function
  | Breg r -> Reg.pp ppf r
  | Bpc -> Format.pp_print_string ppf "pc"

let pp_mem ppf m =
  let open Format in
  fprintf ppf "[";
  let sep = ref false in
  let plus () = if !sep then fprintf ppf "+" in
  (match m.base with
  | Some b ->
    pp_base ppf b;
    sep := true
  | None -> ());
  (match m.index with
  | Some r ->
    plus ();
    fprintf ppf "%a*%d" Reg.pp r m.scale;
    sep := true
  | None -> ());
  if m.disp <> 0 || not !sep then begin
    plus ();
    fprintf ppf "%a" Word.pp m.disp
  end;
  fprintf ppf "]"

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm w -> Word.pp ppf w

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Mul -> "mul"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let width_name = function W1 -> "1" | W2 -> "2" | W4 -> "4"

let pp ppf i =
  let open Format in
  match i with
  | Nop -> pp_print_string ppf "nop"
  | Halt -> pp_print_string ppf "halt"
  | Mov (rd, src) -> fprintf ppf "mov %a, %a" Reg.pp rd pp_operand src
  | Lea (rd, m) -> fprintf ppf "lea %a, %a" Reg.pp rd pp_mem m
  | Load (w, rd, m) -> fprintf ppf "ld%s %a, %a" (width_name w) Reg.pp rd pp_mem m
  | Store (w, m, src) ->
    fprintf ppf "st%s %a, %a" (width_name w) pp_mem m pp_operand src
  | Binop (op, rd, src) ->
    fprintf ppf "%s %a, %a" (binop_name op) Reg.pp rd pp_operand src
  | Neg r -> fprintf ppf "neg %a" Reg.pp r
  | Not r -> fprintf ppf "not %a" Reg.pp r
  | Cmp (a, b) -> fprintf ppf "cmp %a, %a" Reg.pp a pp_operand b
  | Test (a, b) -> fprintf ppf "test %a, %a" Reg.pp a pp_operand b
  | Push src -> fprintf ppf "push %a" pp_operand src
  | Pop rd -> fprintf ppf "pop %a" Reg.pp rd
  | Jmp t -> fprintf ppf "jmp %a" Word.pp t
  | Jcc (c, t) -> fprintf ppf "j%s %a" (cond_name c) Word.pp t
  | Jmp_ind (Some r, _) -> fprintf ppf "jmp *%a" Reg.pp r
  | Jmp_ind (None, Some m) -> fprintf ppf "jmp *%a" pp_mem m
  | Jmp_ind (None, None) -> pp_print_string ppf "jmp *<invalid>"
  | Call t -> fprintf ppf "call %a" Word.pp t
  | Call_ind (Some r, _) -> fprintf ppf "call *%a" Reg.pp r
  | Call_ind (None, Some m) -> fprintf ppf "call *%a" pp_mem m
  | Call_ind (None, None) -> pp_print_string ppf "call *<invalid>"
  | Ret -> pp_print_string ppf "ret"
  | Load_canary rd -> fprintf ppf "ldcanary %a" Reg.pp rd
  | Syscall n -> fprintf ppf "syscall %d" n

let to_string i = Format.asprintf "%a" pp i
