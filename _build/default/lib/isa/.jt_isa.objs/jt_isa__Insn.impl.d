lib/isa/insn.ml: Flags Format Reg Word
