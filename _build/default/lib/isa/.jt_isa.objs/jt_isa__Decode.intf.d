lib/isa/decode.mli: Insn
