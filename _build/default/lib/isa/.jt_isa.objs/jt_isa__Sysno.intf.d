lib/isa/sysno.mli:
