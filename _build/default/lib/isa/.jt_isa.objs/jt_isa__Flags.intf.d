lib/isa/flags.mli: Format Word
