lib/isa/encode.ml: Buffer Char Insn Reg Word
