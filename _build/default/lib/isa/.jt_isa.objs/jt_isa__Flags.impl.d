lib/isa/flags.ml: Format Int List String
