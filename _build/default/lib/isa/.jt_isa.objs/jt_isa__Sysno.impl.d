lib/isa/sysno.ml:
