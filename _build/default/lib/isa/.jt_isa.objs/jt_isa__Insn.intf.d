lib/isa/insn.mli: Flags Format Reg Word
