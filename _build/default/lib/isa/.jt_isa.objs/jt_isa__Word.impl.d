lib/isa/word.ml: Format
