(** Instructions of the simulated machine.

    The instruction set is deliberately x86-flavoured in the ways that
    matter to the paper: variable-length byte encoding, 32-bit immediates
    and displacements embedded in the instruction stream (so that code
    pointers can be found — and confused with data — by sliding-window
    scanning), arithmetic flags set implicitly by ALU operations, indirect
    calls and jumps through registers or memory (jump tables), and
    push/pop/call/ret stack discipline.

    Control-transfer targets of direct jumps and calls are stored as
    absolute addresses in this representation; the encoder turns them into
    PC-relative displacements (making direct transfers position
    independent, as on x86), and the decoder converts them back using the
    decode address. *)

type width = W1 | W2 | W4

type base =
  | Breg of Reg.t
  | Bpc  (** PC-relative addressing: base is the address of the
             following instruction.  Used by PIC code to take addresses
             without absolute relocations. *)

type mem = {
  base : base option;
  index : Reg.t option;
  scale : int;  (** 1, 2, 4 or 8 *)
  disp : Word.t;
}

type operand = Reg of Reg.t | Imm of Word.t

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Sar | Mul

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Ule | Ugt | Uge

type t =
  | Nop
  | Halt
  | Mov of Reg.t * operand
  | Lea of Reg.t * mem
  | Load of width * Reg.t * mem
  | Store of width * mem * operand
  | Binop of binop * Reg.t * operand  (** [rd := rd op src]; sets flags *)
  | Neg of Reg.t
  | Not of Reg.t
  | Cmp of Reg.t * operand
  | Test of Reg.t * operand
  | Push of operand
  | Pop of Reg.t
  | Jmp of Word.t  (** absolute target *)
  | Jcc of cond * Word.t
  | Jmp_ind of Reg.t option * mem option
      (** Indirect jump through a register ([Some r, None]) or a memory
          location such as a jump-table slot ([None, Some m]). *)
  | Call of Word.t
  | Call_ind of Reg.t option * mem option
  | Ret
  | Load_canary of Reg.t  (** [rd := canary secret] (the fs:0x28 analog) *)
  | Syscall of int

val jmp_ind_reg : Reg.t -> t
val jmp_ind_mem : mem -> t
val call_ind_reg : Reg.t -> t
val call_ind_mem : mem -> t

val mem_abs : Word.t -> mem
(** Absolute-address memory operand (disp only). *)

val mem_base : ?disp:Word.t -> Reg.t -> mem
val mem_base_index : ?disp:Word.t -> ?scale:int -> Reg.t -> Reg.t -> mem
val mem_pcrel : Word.t -> mem

val width_bytes : width -> int

(** {1 Classification} *)

type cti_kind =
  | Cti_jmp of Word.t
  | Cti_jcc of cond * Word.t
  | Cti_jmp_ind
  | Cti_call of Word.t
  | Cti_call_ind
  | Cti_ret
  | Cti_halt
  | Cti_syscall

val cti_kind : t -> cti_kind option
(** [None] for straight-line instructions.  [Syscall] is reported as a
    (possible) control transfer because it may terminate the program or
    transfer to dynamically generated code. *)

val ends_block : t -> bool
(** True for unconditional transfers, conditional branches, calls,
    returns and halt — everything that terminates a basic block. *)

val reads_mem : t -> mem option
(** The memory operand read by the instruction ([Load], and the slot read
    by memory-indirect [Jmp_ind]/[Call_ind]).  [Pop]/[Ret] read the stack
    implicitly and are not reported here. *)

val writes_mem : t -> mem option
(** The memory operand written ([Store]).  [Push]/[Call] write the stack
    implicitly and are not reported here. *)

(** {1 Register and flag use/def, for liveness} *)

val uses : t -> Reg.t list
(** Registers read by the instruction (including address components and
    implicit stack-pointer uses). *)

val defs : t -> Reg.t list
(** Registers written. *)

val flags_def : t -> Flags.set
(** Flags written by the instruction. *)

val flags_use : t -> Flags.set
(** Flags read (conditional branches). *)

val pp_mem : Format.formatter -> mem -> unit
val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
