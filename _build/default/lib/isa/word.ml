type t = int

let mask = 0xFFFF_FFFF
let of_int x = x land mask

let to_signed w =
  if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land mask
let neg a = (0 - a) land mask

let shl a n = (a lsl (n land 31)) land mask
let shr a n = (a land mask) lsr (n land 31)
let sar a n = (to_signed a asr (n land 31)) land mask

let truncate nbytes w =
  match nbytes with
  | 1 -> w land 0xFF
  | 2 -> w land 0xFFFF
  | 4 -> w land mask
  | _ -> invalid_arg "Word.truncate"

let sign_extend nbytes w =
  match nbytes with
  | 1 -> if w land 0x80 <> 0 then (w lor 0xFFFF_FF00) land mask else w land 0xFF
  | 2 -> if w land 0x8000 <> 0 then (w lor 0xFFFF_0000) land mask else w land 0xFFFF
  | 4 -> w land mask
  | _ -> invalid_arg "Word.sign_extend"

let pp ppf w = Format.fprintf ppf "0x%08x" w
