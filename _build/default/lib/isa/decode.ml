open Insn

exception Bad_read of int

exception Invalid

let binop_of_index = function
  | 0 -> Add | 1 -> Sub | 2 -> And | 3 -> Or | 4 -> Xor
  | 5 -> Shl | 6 -> Shr | 7 -> Sar | 8 -> Mul
  | _ -> raise Invalid

let cond_of_index = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt | 3 -> Le | 4 -> Gt | 5 -> Ge
  | 6 -> Ult | 7 -> Ule | 8 -> Ugt | 9 -> Uge
  | _ -> raise Invalid

(* A cursor over the byte-fetch callback, tracking how many bytes were
   consumed so the caller learns the instruction length. *)
type cursor = { read : int -> int; at : int; mutable off : int }

let byte c =
  let v = c.read (c.at + c.off) in
  if v < 0 || v > 255 then raise Invalid;
  c.off <- c.off + 1;
  v

let reg c =
  let v = byte c in
  if v >= Reg.count then raise Invalid;
  Reg.of_index v

let u32 c =
  let b0 = byte c in
  let b1 = byte c in
  let b2 = byte c in
  let b3 = byte c in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let width c =
  match byte c with
  | 1 -> W1
  | 2 -> W2
  | 4 -> W4
  | _ -> raise Invalid

let mem c =
  let flag = byte c in
  if flag land lnot 0x1F <> 0 then raise Invalid;
  let has_base = flag land 1 <> 0 in
  let base_is_pc = flag land 2 <> 0 in
  if has_base && base_is_pc then raise Invalid;
  let base =
    if has_base then Some (Breg (reg c))
    else if base_is_pc then Some Bpc
    else None
  in
  let index = if flag land 4 <> 0 then Some (reg c) else None in
  let scale = 1 lsl ((flag lsr 3) land 3) in
  let disp = u32 c in
  { base; index; scale; disp }

let decode c =
  let rel32 () =
    let rel = u32 c in
    (* Target is relative to the end of the instruction, which is exactly
       the current cursor position since rel32 is always the final field. *)
    Word.add (Word.of_int (c.at + c.off)) rel
  in
  let op = byte c in
  match op with
  | 0x01 -> Nop
  | 0x02 -> Halt
  | 0x03 -> Ret
  | 0x04 -> Syscall (byte c)
  | 0x05 -> Load_canary (reg c)
  | 0x06 ->
    let rd = reg c in
    Mov (rd, Reg (reg c))
  | 0x07 ->
    let rd = reg c in
    Mov (rd, Imm (u32 c))
  | 0x08 ->
    let rd = reg c in
    Lea (rd, mem c)
  | 0x09 ->
    let w = width c in
    let rd = reg c in
    Load (w, rd, mem c)
  | 0x0A ->
    let w = width c in
    let rs = reg c in
    Store (w, mem c, Reg rs)
  | 0x0B ->
    let w = width c in
    let v = u32 c in
    Store (w, mem c, Imm v)
  | _ when op >= 0x10 && op <= 0x18 ->
    let rd = reg c in
    Binop (binop_of_index (op - 0x10), rd, Reg (reg c))
  | _ when op >= 0x20 && op <= 0x28 ->
    let rd = reg c in
    Binop (binop_of_index (op - 0x20), rd, Imm (u32 c))
  | 0x29 -> Neg (reg c)
  | 0x2A -> Not (reg c)
  | 0x30 ->
    let ra = reg c in
    Cmp (ra, Reg (reg c))
  | 0x31 ->
    let ra = reg c in
    Cmp (ra, Imm (u32 c))
  | 0x32 ->
    let ra = reg c in
    Test (ra, Reg (reg c))
  | 0x33 ->
    let ra = reg c in
    Test (ra, Imm (u32 c))
  | 0x34 -> Push (Reg (reg c))
  | 0x35 -> Push (Imm (u32 c))
  | 0x36 -> Pop (reg c)
  | 0x40 -> Jmp (rel32 ())
  | _ when op >= 0x41 && op <= 0x4A ->
    let c' = cond_of_index (op - 0x41) in
    Jcc (c', rel32 ())
  | 0x4B -> jmp_ind_reg (reg c)
  | 0x4C -> jmp_ind_mem (mem c)
  | 0x4D -> Call (rel32 ())
  | 0x4E -> call_ind_reg (reg c)
  | 0x4F -> call_ind_mem (mem c)
  | _ -> raise Invalid

let instr ~read ~at =
  let c = { read; at; off = 0 } in
  match decode c with
  | i -> Some (i, c.off)
  | exception (Invalid | Bad_read _) -> None

let from_string s ~pos ~at =
  let read a =
    let off = pos + (a - at) in
    if off < 0 || off >= String.length s then raise (Bad_read a)
    else Char.code s.[off]
  in
  instr ~read ~at
