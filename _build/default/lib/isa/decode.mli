(** Instruction decoding.

    Decoding is the ground truth used by the interpreter and the dynamic
    modifier, and also by the static disassembler — where, exactly as in
    real binary analysis, a byte sequence that happens to look like a valid
    instruction will decode successfully even if it is actually data. *)

exception Bad_read of int
(** Raised by the [read] callback to signal an unreadable address. *)

val instr : read:(int -> int) -> at:int -> (Insn.t * int) option
(** [instr ~read ~at] decodes one instruction at virtual address [at]
    using [read] to fetch bytes (each call returns a byte value 0–255, or
    raises {!Bad_read}).  Returns the instruction and its encoded length,
    or [None] if the bytes do not form a valid instruction or the read
    fails. *)

val from_string : string -> pos:int -> at:int -> (Insn.t * int) option
(** Decode from a byte string at offset [pos], as if loaded at virtual
    address [at]. *)
