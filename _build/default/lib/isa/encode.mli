(** Byte-level instruction encoding.

    Instructions encode to between 1 and 11 bytes.  Direct control
    transfers store a PC-relative 32-bit displacement (relative to the end
    of the instruction), so encoding needs the instruction's own address.
    All multi-byte fields are little-endian. *)

val length : Insn.t -> int
(** Encoded size in bytes (independent of the address). *)

val to_buffer : Buffer.t -> at:int -> Insn.t -> unit
(** [to_buffer b ~at i] appends the encoding of [i], assuming it is placed
    at virtual address [at]. *)

val encode : at:int -> Insn.t -> string
