(** Arithmetic condition flags.

    The simulated machine has the four classic x86-style flags.  Flag sets
    are represented as bit masks so that liveness analysis can treat them
    uniformly with register sets. *)

type flag = Zf | Sf | Cf | Of

type set = private int
(** A set of flags, as a bit mask. *)

val empty : set
val all : set
val singleton : flag -> set
val union : set -> set -> set
val inter : set -> set -> set
val diff : set -> set -> set
val mem : flag -> set -> bool
val is_empty : set -> bool
val equal : set -> set -> bool
val of_list : flag list -> set
val to_list : set -> flag list

val flag_name : flag -> string
val pp : Format.formatter -> set -> unit

(** Mutable flag state of a running machine. *)
type state = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable of_ : bool }

val create : unit -> state
(** All flags initially clear. *)

val copy : state -> state
val get : state -> flag -> bool
val set_arith : state -> result:Word.t -> carry:bool -> overflow:bool -> unit
(** Update all four flags from an ALU result. *)

val set_logic : state -> result:Word.t -> unit
(** Update flags after a logical operation: CF and OF cleared, ZF/SF from
    the result. *)

val pack : state -> int
(** Encode the state in 4 bits (for push-flags / pop-flags). *)

val unpack : state -> int -> unit
