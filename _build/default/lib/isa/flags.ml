type flag = Zf | Sf | Cf | Of

type set = int

let bit = function Zf -> 1 | Sf -> 2 | Cf -> 4 | Of -> 8

let empty = 0
let all = 15
let singleton f = bit f
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let mem f s = s land bit f <> 0
let is_empty s = s = 0
let equal = Int.equal
let of_list fs = List.fold_left (fun acc f -> acc lor bit f) 0 fs

let to_list s =
  List.filter (fun f -> mem f s) [ Zf; Sf; Cf; Of ]

let flag_name = function Zf -> "zf" | Sf -> "sf" | Cf -> "cf" | Of -> "of"

let pp ppf s =
  if is_empty s then Format.pp_print_string ppf "{}"
  else
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map flag_name (to_list s)))

type state = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable of_ : bool }

let create () = { zf = false; sf = false; cf = false; of_ = false }
let copy s = { zf = s.zf; sf = s.sf; cf = s.cf; of_ = s.of_ }

let get s = function Zf -> s.zf | Sf -> s.sf | Cf -> s.cf | Of -> s.of_

let set_arith s ~result ~carry ~overflow =
  s.zf <- result = 0;
  s.sf <- result land 0x8000_0000 <> 0;
  s.cf <- carry;
  s.of_ <- overflow

let set_logic s ~result =
  s.zf <- result = 0;
  s.sf <- result land 0x8000_0000 <> 0;
  s.cf <- false;
  s.of_ <- false

let pack s =
  (if s.zf then 1 else 0)
  lor (if s.sf then 2 else 0)
  lor (if s.cf then 4 else 0)
  lor if s.of_ then 8 else 0

let unpack s v =
  s.zf <- v land 1 <> 0;
  s.sf <- v land 2 <> 0;
  s.cf <- v land 4 <> 0;
  s.of_ <- v land 8 <> 0
