(** General-purpose registers of the simulated machine.

    There are 16 registers.  [r0]–[r12] are general purpose ([r0] doubles
    as the return-value / first-argument register), [fp] is the frame
    pointer and [sp] the stack pointer.  By software convention, [r0]–[r5]
    are caller-saved argument/scratch registers and [r6]–[r12] are
    callee-saved — conventions that (as in the paper, section 4.1.2) some
    low-level code deliberately violates. *)

type t = private int

val count : int
(** Number of registers (16). *)

val of_index : int -> t
(** [of_index i] for [0 <= i < count].  @raise Invalid_argument otherwise. *)

val index : t -> int

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val fp : t
val sp : t

val equal : t -> t -> bool
val compare : t -> t -> int

val caller_saved : t list
(** [r0]–[r5]: not preserved across calls by convention. *)

val callee_saved : t list
(** [r6]–[r13], [fp]: preserved across calls by convention. *)

val all : t list

val name : t -> string
val pp : Format.formatter -> t -> unit
