(** 32-bit machine words stored in OCaml [int]s.

    The simulated machine is a 32-bit architecture (matching the x86-32
    setting of the paper's CFI evaluation).  All register and memory values
    are 32-bit words; arithmetic wraps modulo 2^32.  Words are kept in
    canonical unsigned form, i.e. in the range [0, 2^32). *)

type t = int

val mask : t
(** [0xFFFF_FFFF]. *)

val of_int : int -> t
(** Truncate an OCaml int to a canonical 32-bit word. *)

val to_signed : t -> int
(** Interpret a word as a signed 32-bit value in [-2^31, 2^31). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val neg : t -> t

val shl : t -> int -> t
(** Logical shift left; shift amount is taken modulo 32. *)

val shr : t -> int -> t
(** Logical (unsigned) shift right; shift amount is taken modulo 32. *)

val sar : t -> int -> t
(** Arithmetic (signed) shift right; shift amount is taken modulo 32. *)

val truncate : int -> t -> t
(** [truncate nbytes w] keeps the low [nbytes] bytes of [w]
    (zero-extending).  [nbytes] must be 1, 2 or 4. *)

val sign_extend : int -> t -> t
(** [sign_extend nbytes w] sign-extends the low [nbytes] bytes of [w] to a
    full word.  [nbytes] must be 1, 2 or 4. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x00400800]. *)
