(** Result aggregation and table rendering for the benchmark harness. *)

val geomean : float list -> float
(** Geometric mean; 0 for an empty list. *)

type cell =
  | Value of float
  | Fail of string  (** tool refused or crashed on this benchmark (✗) *)

type table = {
  t_title : string;
  t_unit : string;  (** e.g. "slowdown vs native", "AIR %" *)
  t_cols : string list;
  t_rows : (string * cell list) list;  (** benchmark name, one cell per column *)
}

val value_exn : cell -> float option

val geomean_row : table -> float option list
(** Per-column geomean over the benchmarks where that column has a value. *)

val geomean_x_row : table -> float option list
(** Per-column geomean restricted to benchmarks where *every* column has
    a value (the paper's "geomean-x"). *)

val print : table -> unit
(** Render to stdout with geomean (and geomean-x when columns differ in
    coverage) appended. *)

val print_kv : string -> (string * string) list -> unit
(** Simple key/value block (for the Figure 10 style tables). *)
