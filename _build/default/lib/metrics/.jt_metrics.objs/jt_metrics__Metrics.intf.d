lib/metrics/metrics.mli:
