lib/metrics/metrics.ml: List Printf String
