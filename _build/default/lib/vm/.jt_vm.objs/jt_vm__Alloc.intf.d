lib/vm/alloc.mli:
