lib/vm/cost.ml: Insn Jt_isa
