lib/vm/cost.mli: Jt_isa
