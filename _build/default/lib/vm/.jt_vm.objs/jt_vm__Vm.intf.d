lib/vm/vm.mli: Alloc Buffer Flags Format Hashtbl Insn Jt_isa Jt_loader Jt_mem Jt_obj Reg
