lib/vm/alloc.ml: Hashtbl List
