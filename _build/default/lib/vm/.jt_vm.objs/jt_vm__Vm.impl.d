lib/vm/vm.ml: Alloc Array Buffer Char Cost Decode Flags Format Hashtbl Insn Jt_isa Jt_loader Jt_mem Jt_metrics Jt_obj List Reg Sysno Word
