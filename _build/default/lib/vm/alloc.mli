(** The heap allocator behind the [malloc]/[free] syscalls.

    A bump allocator that never reuses freed blocks (simplifying
    use-after-free reasoning for the sanitizers).  Sanitizers interpose on
    it the way LLVM ASan's runtime replaces the allocator via LD_PRELOAD:
    by configuring redzone padding and subscribing to allocation
    events. *)

type event =
  | Ev_alloc of { addr : int; size : int; redzone : int }
  | Ev_free of { addr : int; size : int }
  | Ev_bad_free of { addr : int }
      (** [free] of a pointer that is not a live block. *)

type t

val create : ?base:int -> unit -> t
(** [base] defaults to the conventional heap start, [0x5000_0000]. *)

val set_redzone : t -> int -> unit
(** Padding placed before and after every subsequent block. *)

val subscribe : t -> (event -> unit) -> unit

val malloc : t -> int -> int
(** Returns the user address of a fresh block ([size] >= 0). *)

val free : t -> int -> unit

val block_of : t -> int -> (int * int * bool) option
(** [block_of t addr]: the [(base, size, live)] of the block whose user
    range contains [addr], if any (redzones excluded). *)

val live_blocks : t -> (int * int) list
(** [(addr, size)] of blocks not yet freed. *)
