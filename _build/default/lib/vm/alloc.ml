type event =
  | Ev_alloc of { addr : int; size : int; redzone : int }
  | Ev_free of { addr : int; size : int }
  | Ev_bad_free of { addr : int }

type block = { b_addr : int; b_size : int; mutable b_live : bool }

type t = {
  mutable brk : int;
  blocks : (int, block) Hashtbl.t;
  mutable order : block list;
  mutable redzone : int;
  mutable listeners : (event -> unit) list;
}

let default_base = 0x5000_0000

let create ?(base = default_base) () =
  { brk = base; blocks = Hashtbl.create 64; order = []; redzone = 0; listeners = [] }

let set_redzone t n = t.redzone <- n
let subscribe t f = t.listeners <- f :: t.listeners
let fire t ev = List.iter (fun f -> f ev) t.listeners

let align8 x = (x + 7) land lnot 7

let malloc t size =
  let size = max size 0 in
  let addr = t.brk + t.redzone in
  t.brk <- align8 (addr + size + t.redzone);
  let b = { b_addr = addr; b_size = size; b_live = true } in
  Hashtbl.replace t.blocks addr b;
  t.order <- b :: t.order;
  fire t (Ev_alloc { addr; size; redzone = t.redzone });
  addr

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | Some b when b.b_live ->
    b.b_live <- false;
    fire t (Ev_free { addr; size = b.b_size })
  | Some _ | None -> fire t (Ev_bad_free { addr })

let block_of t addr =
  let found = ref None in
  Hashtbl.iter
    (fun _ b ->
      if addr >= b.b_addr && addr < b.b_addr + max b.b_size 1 then
        found := Some (b.b_addr, b.b_size, b.b_live))
    t.blocks;
  !found

let live_blocks t =
  List.filter_map
    (fun b -> if b.b_live then Some (b.b_addr, b.b_size) else None)
    t.order
