(** The precise shadow stack backing JCFI's backward-edge policy
    (section 4.2): the intended return address is pushed at call time and
    verified at return. *)

type t

val create : unit -> t
val push : t -> int -> unit

val check_pop : t -> int -> bool
(** [check_pop t ret_target]: pop the top entry and compare.  Returns
    false on mismatch (an entry is still consumed, resynchronizing on the
    next frames).  An empty shadow stack accepts anything: frames that
    predate instrumentation (process startup) must not fault. *)

val depth : t -> int
