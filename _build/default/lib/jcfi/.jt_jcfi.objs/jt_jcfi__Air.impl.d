lib/jcfi/air.ml: Array Hashtbl Insn Janitizer Jcfi Jt_cfg Jt_disasm Jt_isa Jt_loader Jt_obj List String Targets
