lib/jcfi/jcfi.ml: Array Hashtbl Insn Janitizer Jt_cfg Jt_dbt Jt_disasm Jt_isa Jt_loader Jt_mem Jt_obj Jt_rules Jt_vm List Option Reg Shadow_stack String Targets
