lib/jcfi/shadow_stack.mli:
