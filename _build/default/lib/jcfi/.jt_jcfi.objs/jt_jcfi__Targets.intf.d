lib/jcfi/targets.mli: Hashtbl Jt_loader
