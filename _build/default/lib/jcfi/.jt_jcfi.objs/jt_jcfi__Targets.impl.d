lib/jcfi/targets.ml: Hashtbl Jt_disasm Jt_loader Jt_obj List Objfile Section Symbol
