lib/jcfi/air.mli: Jcfi Jt_obj
