lib/jcfi/jcfi.mli: Janitizer Jt_loader Targets
