lib/jcfi/shadow_stack.ml: Array
