type t = { mutable data : int array; mutable top : int }

let create () = { data = Array.make 1024 0; top = 0 }

let push t v =
  if t.top >= Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.top;
    t.data <- bigger
  end;
  t.data.(t.top) <- v;
  t.top <- t.top + 1

let check_pop t v =
  if t.top = 0 then true
  else begin
    t.top <- t.top - 1;
    t.data.(t.top) = v
  end

let depth t = t.top
