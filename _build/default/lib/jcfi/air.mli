(** Average Indirect-target Reduction (AIR) metrics.

    AIR = 100 * (1 - mean_i(|T_i|) / S), where T_i is the set of targets a
    protected indirect control transfer i may still reach and S the number
    of addressable targets with no protection (all code bytes).  Following
    the paper, the metric is computed two ways: dynamically — over the
    indirect CTIs actually executed by the program, measured at
    termination, to compare like-for-like with Lockdown (Figure 12) — and
    statically over all indirect CTIs, matching BinCFI's calculation
    (Figure 13). *)

val air : sizes:float list -> total:float -> float
(** The AIR formula, in percent.  100.0 when there are no sites. *)

val dynamic : Jcfi.Rt.t -> float
(** Dynamic AIR of a finished JCFI run. *)

val dynamic_breakdown : Jcfi.Rt.t -> float * float
(** [(forward, backward)] AIR computed separately over the executed
    indirect calls/jumps and the executed returns.  The backward figure
    is essentially 100% for any shadow-stack scheme (|T| = 1), matching
    the paper's remark that JCFI and Lockdown tie on backward edges. *)

val static_jcfi : Jt_obj.Objfile.t list -> float
(** Static AIR of JCFI's policy over every indirect CTI of the given
    modules (no execution). *)

(** Per-site target-set sizes under JCFI's policy, exposed so baseline
    policies can be computed side by side. *)
val total_code_bytes : Jt_obj.Objfile.t list -> float
