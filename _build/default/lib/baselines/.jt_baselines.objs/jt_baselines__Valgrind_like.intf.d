lib/baselines/valgrind_like.mli: Jt_obj Jt_vm
