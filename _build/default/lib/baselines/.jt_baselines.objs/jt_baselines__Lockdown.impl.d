lib/baselines/lockdown.ml: Array Hashtbl Insn Jt_dbt Jt_isa Jt_jcfi Jt_loader Jt_mem Jt_obj Jt_vm List Option Reg String
