lib/baselines/bincfi.ml: Hashtbl Insn Jt_disasm Jt_isa Jt_jcfi Jt_loader Jt_mem Jt_obj Jt_vm List Reg Retrowrite_like String
