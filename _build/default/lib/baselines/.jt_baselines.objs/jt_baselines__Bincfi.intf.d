lib/baselines/bincfi.mli: Jt_obj Jt_vm
