lib/baselines/valgrind_like.ml: Insn Jt_isa Jt_jasan Jt_vm
