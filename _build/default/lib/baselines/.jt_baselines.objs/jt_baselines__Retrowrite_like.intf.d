lib/baselines/retrowrite_like.mli: Jt_obj Jt_vm
