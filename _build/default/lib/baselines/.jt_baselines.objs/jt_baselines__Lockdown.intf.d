lib/baselines/lockdown.mli: Jt_obj Jt_vm
