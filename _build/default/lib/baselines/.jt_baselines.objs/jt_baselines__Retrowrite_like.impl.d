lib/baselines/retrowrite_like.ml: Array Hashtbl Insn Janitizer Jt_analysis Jt_cfg Jt_disasm Jt_isa Jt_jasan Jt_loader Jt_obj Jt_vm List Option
