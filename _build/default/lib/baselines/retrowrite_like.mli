(** A RetroWrite-class baseline: static-only binary rewriting for
    sanitization.

    Symbolization needs relocation information, so it is only applicable
    when the main executable (and everything it links) is
    position-independent; C++ exception tables and Fortran runtimes defeat
    its reassembly.  When applicable, instrumentation is inlined into the
    rewritten binary: per-access checks with intra-procedural liveness,
    canary-granularity stack protection — and zero translation overhead,
    which is why its slowdown is the floor the hybrid aims for.  Coverage
    stops at static code: dynamically loaded or generated code runs
    uninstrumented. *)

type verdict =
  | Applicable
  | Needs_pic of string  (** offending module *)
  | Unsupported_feature of string * string  (** module, feature *)

val closure :
  registry:Jt_obj.Objfile.t list -> main:string -> Jt_obj.Objfile.t list
(** The static ("ldd") dependency closure, dependencies first. *)

val applicability : registry:Jt_obj.Objfile.t list -> main:string -> verdict

val run :
  ?fuel:int -> registry:Jt_obj.Objfile.t list -> main:string -> unit ->
  (Jt_vm.Vm.result, verdict) result
(** [Error v] when the rewriter refuses the binary (the ✗ entries of
    Figure 7). *)
