(** A BinCFI-class baseline: static-only CFI via symbolization
    (sections 2.1, 5, 6.2).

    Valid forward targets are the constants found by the sliding-window
    scan that land on instruction boundaries of the (static) disassembly;
    returns may target any call-preceded instruction — no shadow stack.
    Indirect transfers are replaced by address-translation lookups at
    rewrite time, so the run-time overhead is a per-indirect-transfer
    cost with no translation engine underneath.

    Being purely static, code-data ambiguity is fatal: modules whose code
    sections embed too much data (jump tables and literal pools beyond a
    threshold fraction) are mis-disassembled and the rewritten binary is
    refused — the ✗ entries of Figure 9. *)

val data_in_code_threshold : float

type verdict = Applicable | Broken_rewrite of string  (** offending module *)

val data_in_code_fraction : Jt_obj.Objfile.t -> float
(** Fraction of code-section bytes static disassembly cannot decode. *)

val applicability : registry:Jt_obj.Objfile.t list -> main:string -> verdict

val run :
  ?fuel:int ->
  registry:Jt_obj.Objfile.t list ->
  main:string ->
  unit ->
  (Jt_vm.Vm.result, verdict) result

val static_air : Jt_obj.Objfile.t list -> float
(** Static AIR under BinCFI's policy (Figure 13). *)
