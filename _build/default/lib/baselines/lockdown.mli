(** A Lockdown-class baseline: dynamic-only CFI in a lightweight
    translator (section 5 / Figures 9 and 12).

    Policies follow the paper's description:

    - {b Strong}: inter-module indirect calls must target a symbol both
      imported by the source module and exported by the destination;
      callbacks that bypass import tables are only allowed when a
      heuristic finds the target in a scanned data section — the
      qsort-via-stack pattern defeats it, producing the false positives
      of section 6.2.2.
    - {b Weak}: inter-module calls may target any known function entry;
      no false positives, weaker AIR.

    Indirect jumps may target any byte of the same function (nearest
    symbol), returns use a precise shadow stack.  All analysis happens at
    run time from symbols and loaded memory; there is no static pass. *)

type policy = Strong | Weak

type outcome = {
  lk_result : Jt_vm.Vm.result;
  lk_dynamic_air : float;
  lk_false_positive : bool;
      (** a violation was reported on a run the caller knows is clean *)
}

val run :
  ?fuel:int ->
  ?policy:policy ->
  registry:Jt_obj.Objfile.t list ->
  main:string ->
  unit ->
  outcome
