(** A Valgrind/Memcheck-class baseline: dynamic-only, interpretive,
    full-coverage memory checking.

    Differences from JASan that the evaluation exposes:

    - every instruction pays interpretation/IR overhead and every memory
      access pays a heavyweight check, giving the ~10x slowdown class;
    - redzones are placed at the allocator's 8-byte granularity, so
      overflows that stay within the alignment slack of a block go
      unnoticed (the "fewer-than-actual" false negatives of Figure 10);
    - stack canaries are not modelled, so heap-to-stack overflows that
      never cross a heap redzone are invisible;
    - coverage is complete by construction (it sees every executed
      instruction, including JIT and dlopen'd code). *)

type t

val create : unit -> t

val run :
  ?fuel:int -> registry:Jt_obj.Objfile.t list -> main:string -> unit ->
  Jt_vm.Vm.result
