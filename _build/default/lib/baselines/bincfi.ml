open Jt_isa

let data_in_code_threshold = 0.10

type verdict = Applicable | Broken_rewrite of string

(* The implicit dynamic loader is part of every process: include it in
   the analyzed closure like the registry-provided modules. *)
let with_ld_so registry =
  if
    List.exists
      (fun (m : Jt_obj.Objfile.t) -> String.equal m.name "ld.so")
      registry
  then registry
  else registry @ [ Jt_loader.Loader.ld_so ]

let closure ~registry ~main =
  let registry = with_ld_so registry in
  let mods = Retrowrite_like.closure ~registry ~main in
  (* every module implicitly depends on the loader *)
  let ld = List.find (fun (m : Jt_obj.Objfile.t) -> String.equal m.name "ld.so") registry in
  if List.memq ld mods then mods else ld :: mods

(* Fraction of non-padding code-section bytes the static disassembly
   could not decode: embedded data.  Zero bytes are alignment padding and
   don't confuse a rewriter; everything else that isn't an instruction
   does.  Past the threshold, the rewriter produces a broken binary. *)
let data_in_code_fraction (m : Jt_obj.Objfile.t) =
  let d = Jt_disasm.Disasm.run m in
  let covered = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun a (i : Jt_disasm.Disasm.insn_info) ->
      for k = 0 to i.d_len - 1 do
        Hashtbl.replace covered (a + k) ()
      done)
    d.insns;
  let uncovered = ref 0 and total = ref 0 in
  List.iter
    (fun (s : Jt_obj.Section.t) ->
      String.iteri
        (fun o c ->
          if c <> '\x00' then begin
            incr total;
            if not (Hashtbl.mem covered (s.vaddr + o)) then incr uncovered
          end)
        s.data)
    (Jt_obj.Objfile.code_sections m);
  if !total = 0 then 0.0 else float_of_int !uncovered /. float_of_int !total

let applicability ~registry ~main =
  let rec check = function
    | [] -> Applicable
    | (m : Jt_obj.Objfile.t) :: rest ->
      if data_in_code_fraction m > data_in_code_threshold then
        Broken_rewrite m.name
      else check rest
  in
  check (closure ~registry ~main)

type mod_sets = {
  bc_mod : Jt_obj.Objfile.t;
  scan_targets : (int, unit) Hashtbl.t;  (** link-time; scan ∩ insn boundary *)
  ret_targets : (int, unit) Hashtbl.t;  (** call-preceded instructions *)
}

let analyze_module (m : Jt_obj.Objfile.t) =
  let d = Jt_disasm.Disasm.run m in
  let scan_targets = Hashtbl.create 64 in
  (* BinCFI disassembles speculatively from scanned constants, so values
     that decode plausibly count as boundaries even when recursive
     traversal never reached them. *)
  List.iter
    (fun v ->
      if
        Jt_disasm.Disasm.is_insn_boundary d v
        || Jt_disasm.Disasm.speculative_insn_boundary m v
      then Hashtbl.replace scan_targets v ())
    (Jt_disasm.Disasm.scan_code_pointers m);
  (* exported entries are always valid targets *)
  List.iter
    (fun (s : Jt_obj.Symbol.t) ->
      if Jt_obj.Symbol.is_func s then Hashtbl.replace scan_targets s.vaddr ())
    (Jt_obj.Objfile.exported_symbols m);
  (* BinCFI special-cases the PLT: stub and lazy entries are reached
     through loader-initialized GOT slots, never through scanned
     constants. *)
  List.iter
    (fun (imp : Jt_obj.Objfile.import) ->
      match imp.imp_plt with
      | Some stub ->
        Hashtbl.replace scan_targets stub ();
        (match Jt_obj.Objfile.find_symbol m (imp.imp_sym ^ "@plt.lazy") with
        | Some s -> Hashtbl.replace scan_targets s.vaddr ()
        | None -> ())
      | None -> ())
    m.imports;
  let ret_targets = Hashtbl.create 64 in
  Hashtbl.iter
    (fun a (info : Jt_disasm.Disasm.insn_info) ->
      match Insn.cti_kind info.d_insn with
      | Some (Insn.Cti_call _ | Insn.Cti_call_ind) ->
        Hashtbl.replace ret_targets (a + info.d_len) ()
      | _ -> ())
    d.insns;
  { bc_mod = m; scan_targets; ret_targets }

type rt_sets = {
  rs : (Jt_loader.Loader.loaded * mod_sets) list;
}

(* Static rewriting constrains transfers into code it rewrote; a target
   outside every rewritten module (dlopen'd binaries the rewriter never
   saw, or generated code) is out of its jurisdiction and passes
   through — part of why its coverage is incomplete. *)
let in_rewritten rts target =
  List.exists (fun (l, _) -> Jt_loader.Loader.contains l target) rts.rs

let forward_ok rts target =
  (not (in_rewritten rts target))
  || List.exists
       (fun ((l : Jt_loader.Loader.loaded), s) ->
         Jt_loader.Loader.contains l target
         && Hashtbl.mem s.scan_targets (Jt_loader.Loader.link_addr l target))
       rts.rs

let ret_ok rts target =
  target = Jt_vm.Vm.sentinel
  || (not (in_rewritten rts target))
  || List.exists
       (fun ((l : Jt_loader.Loader.loaded), s) ->
         Jt_loader.Loader.contains l target
         && Hashtbl.mem s.ret_targets (Jt_loader.Loader.link_addr l target))
       rts.rs

let run ?(fuel = 200_000_000) ~registry ~main () =
  match applicability ~registry ~main with
  | Broken_rewrite _ as v -> Error v
  | Applicable ->
    let static_mods = closure ~registry ~main in
    let analyzed = List.map (fun m -> (m.Jt_obj.Objfile.name, analyze_module m)) static_mods in
    let rts = { rs = [] } in
    let rts = ref rts in
    let vm = Jt_vm.Vm.make ~registry in
    Jt_loader.Loader.on_load vm.loader (fun l ->
        match List.assoc_opt l.lmod.Jt_obj.Objfile.name analyzed with
        | Some s -> rts := { rs = (l, s) :: !rts.rs }
        | None -> ());
    Jt_vm.Vm.boot vm ~main;
    let covered at =
      List.exists (fun (l, _) -> Jt_loader.Loader.contains l at) !rts.rs
    in
    let in_ld_so at =
      match Jt_loader.Loader.module_at vm.loader at with
      | Some l -> String.equal l.lmod.Jt_obj.Objfile.name "ld.so"
      | None -> false
    in
    while vm.status = Jt_vm.Vm.Running do
      if vm.icount >= fuel then vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
      else if vm.pc = Jt_vm.Vm.sentinel then Jt_vm.Vm.advance_phase vm
      else
        match Jt_vm.Vm.fetch vm vm.pc with
        | None -> vm.status <- Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault vm.pc)
        | Some (i, len) ->
          let at = vm.pc in
          (if covered at then
             match Insn.cti_kind i with
             | Some (Insn.Cti_call_ind | Insn.Cti_jmp_ind) ->
               Jt_vm.Vm.charge vm Jt_vm.Cost.bincfi_translation;
               let tgt =
                 match i with
                 | Insn.Call_ind (Some r, _) | Insn.Jmp_ind (Some r, _) ->
                   Jt_vm.Vm.get vm r
                 | Insn.Call_ind (None, Some m) | Insn.Jmp_ind (None, Some m) ->
                   Jt_mem.Memory.read32 vm.mem
                     (Jt_vm.Vm.eval_mem vm ~next_pc:(at + len) m)
                 | _ -> 0
               in
               if tgt <> Jt_vm.Vm.sentinel && not (forward_ok !rts tgt) then
                 Jt_vm.Vm.report_violation vm ~kind:"bincfi-forward" ~addr:tgt
             | Some Insn.Cti_ret ->
               Jt_vm.Vm.charge vm Jt_vm.Cost.bincfi_translation;
               let tgt = Jt_mem.Memory.read32 vm.mem (Jt_vm.Vm.get vm Reg.sp) in
               (* BinCFI patches the loader's resolver ret into a jump with
                  the (permissive) forward policy. *)
               if in_ld_so at then begin
                 if not (forward_ok !rts tgt || ret_ok !rts tgt) then
                   Jt_vm.Vm.report_violation vm ~kind:"bincfi-forward" ~addr:tgt
               end
               else if not (ret_ok !rts tgt) then
                 Jt_vm.Vm.report_violation vm ~kind:"bincfi-ret" ~addr:tgt
             | Some
                 ( Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_call _
                 | Insn.Cti_halt | Insn.Cti_syscall )
             | None ->
               ());
          Jt_vm.Vm.step_decoded vm ~at i len
    done;
    Ok (Jt_vm.Vm.result vm)

let static_air modules =
  let total = Jt_jcfi.Air.total_code_bytes modules in
  let analyzed = List.map analyze_module modules in
  let forward_size =
    float_of_int
      (List.fold_left (fun acc s -> acc + Hashtbl.length s.scan_targets) 0 analyzed)
  in
  let ret_size =
    float_of_int
      (List.fold_left (fun acc s -> acc + Hashtbl.length s.ret_targets) 0 analyzed)
  in
  let sizes = ref [] in
  List.iter
    (fun s ->
      let d = Jt_disasm.Disasm.run s.bc_mod in
      Hashtbl.iter
        (fun _ (info : Jt_disasm.Disasm.insn_info) ->
          match Insn.cti_kind info.d_insn with
          | Some (Insn.Cti_call_ind | Insn.Cti_jmp_ind) ->
            sizes := forward_size :: !sizes
          | Some Insn.Cti_ret -> sizes := ret_size :: !sizes
          | Some
              ( Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_call _ | Insn.Cti_halt
              | Insn.Cti_syscall )
          | None ->
            ())
        d.insns)
    analyzed;
  Jt_jcfi.Air.air ~sizes:!sizes ~total
