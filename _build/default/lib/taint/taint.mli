(** JTaint: dynamic taint tracking on the Janitizer framework.

    A third security technique built on the same two-pass plugin
    interface as JASan and JCFI, demonstrating the dataflow-tracing
    building block of section 3.3.3.  External input (the [read_int]
    syscall) is the taint source; taint propagates through register moves,
    arithmetic, and memory at byte granularity; the policy flags any
    indirect control transfer whose target value is tainted — the classic
    control-flow-hijack-via-input detector.

    Hybrid split: the static pass marks instructions that cannot move
    data (compares, direct branches, nops) with no-op rules so the
    dynamic modifier leaves them untouched, and attaches propagation
    handlers only where dataflow can happen; blocks the static analyzer
    never saw fall back to instrumenting every instruction. *)

module Rt : sig
  type t

  val tainted_regs : t -> Jt_isa.Reg.t list
  val tainted_bytes : t -> int
  val alerts : t -> int
  (** Number of tainted-target transfers flagged (also reported as
      ["tainted-target"] VM violations). *)
end

val create : unit -> Janitizer.Tool.t * Rt.t
(** One instance per run. *)

module Ids : sig
  val propagate : int
  val check_target : int
  val source : int
end
