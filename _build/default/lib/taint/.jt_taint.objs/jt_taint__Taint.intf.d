lib/taint/taint.mli: Janitizer Jt_isa
