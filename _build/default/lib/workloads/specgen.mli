(** Generator turning a {!Sheet.t} into a runnable workload.

    Every workload is a main executable (position-dependent by default,
    matching the paper's JASan setup; position-independent on request for
    the RetroWrite comparisons) plus the registry of binaries its process
    can reach: the four standard libraries and, when the sheet asks for
    one, a dlopen'd solver plugin that no static dependency walk can
    see. *)

type t = {
  w_sheet : Sheet.t;
  w_main : Jt_obj.Objfile.t;
  w_registry : Jt_obj.Objfile.t list;  (** main, plugins and libraries *)
}

val build : ?kind:Jt_obj.Objfile.kind -> Sheet.t -> t
(** @param kind default [Exec_nonpic]. *)

val expected_output : t -> string option
(** Filled in lazily by running natively once (memoized per workload
    name/kind); used by the harness to assert instrumented runs stay
    sound. *)

val run_native : t -> Jt_vm.Vm.result
