open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

type category =
  | Heap_heap
  | Heap_heap_slack
  | Stack_heap
  | Heap_stack_contig
  | Heap_stack_direct

type case = { c_id : int; c_cat : category; c_expected : int }

let cases =
  let mk cat n expected start =
    List.init n (fun i -> { c_id = start + i; c_cat = cat; c_expected = expected })
  in
  mk Heap_heap 312 1 0
  @ mk Heap_heap_slack 24 2 312
  @ mk Stack_heap 144 1 336
  @ mk Heap_stack_contig 48 1 480
  @ mk Heap_stack_direct 96 1 528

let exit0 = [ movi Reg.r0 0; syscall Sysno.exit_ ]

(* Every case: main calls a victim function; the victim performs the
   (possibly buggy) operation; the program always runs to completion
   (sanitizers are evaluated in recover mode). *)
let build_case (c : case) ~bad =
  let i = c.c_id in
  let name = Printf.sprintf "juliet_%03d_%s" i (if bad then "bad" else "good") in
  let victim =
    match c.c_cat with
    | Heap_heap ->
      (* dst and neighbour blocks; fill dst with n words; bad fills one
         extra, landing in the redzone. *)
      let sz = 8 * (2 + (i mod 6)) in
      let words = (sz / 4) + if bad then 1 else 0 in
      func "victim"
        [
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r6 Reg.r0;
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r7 Reg.r0;
          movi Reg.r1 0;
          label "fill";
          cmpi Reg.r1 words;
          jcc Insn.Ge "done";
          st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
          addi Reg.r1 1;
          jmp "fill";
          label "done";
          ld Reg.r0 (mem_b ~disp:0 Reg.r7);
          ret;
        ]
    | Heap_heap_slack ->
      (* size ≡ 4 (mod 8): the allocator rounds up, leaving 4 slack
         bytes.  Bad variant has two bugs: a write into the slack (only
         byte-granular redzones see it) and a write past the rounded
         end (everyone sees it). *)
      let sz = 12 + (8 * (i mod 4)) in
      func "victim"
        ([
           movi Reg.r0 sz;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r2 65;
         ]
        @ (if bad then
             [
               (* bug 1: one byte into the alignment slack *)
               I
                 (Jt_asm.Sinsn.Sstore
                    (Insn.W1, mem_b ~disp:(sz + 1) Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
               (* bug 2: past the rounded-up end *)
               I
                 (Jt_asm.Sinsn.Sstore
                    (Insn.W1, mem_b ~disp:(sz + 9) Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
             ]
           else
             [
               I
                 (Jt_asm.Sinsn.Sstore
                    (Insn.W1, mem_b ~disp:(sz - 1) Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
             ])
        @ [ ldb Reg.r0 (mem_b ~disp:0 Reg.r6); ret ])
    | Stack_heap ->
      (* copy a stack array into an undersized heap destination *)
      let dst_words = 2 + (i mod 4) in
      let src_words = dst_words + if bad then 2 else 0 in
      let locals = 48 in
      func "victim"
        (Abi.frame_enter ~canary:true ~locals ()
        @ [
            movi Reg.r0 (dst_words * 4);
            call_import "malloc";
            mov Reg.r2 Reg.r0;
            (* init stack source *)
            movi Reg.r1 0;
            label "init";
            cmpi Reg.r1 8;
            jcc Insn.Ge "initd";
            lea Reg.r3 (mem_b ~disp:(-locals) Reg.fp);
            st (mem_bi ~scale:4 Reg.r3 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "init";
            label "initd";
            (* copy src_words into dst *)
            movi Reg.r1 0;
            label "copy";
            cmpi Reg.r1 src_words;
            jcc Insn.Ge "copyd";
            lea Reg.r3 (mem_b ~disp:(-locals) Reg.fp);
            ld Reg.r4 (mem_bi ~scale:4 Reg.r3 Reg.r1);
            st (mem_bi ~scale:4 Reg.r2 Reg.r1) Reg.r4;
            addi Reg.r1 1;
            jmp "copy";
            label "copyd";
            ld Reg.r0 (mem_b ~disp:0 Reg.r2);
          ]
        @ Abi.frame_leave ~canary:true ~locals ())
    | Heap_stack_contig ->
      (* a heap walk that intends to reach the stack: the first
         out-of-bounds write crosses the right redzone *)
      let sz = 8 * (2 + (i mod 5)) in
      let words = (sz / 4) + if bad then 2 else 0 in
      func "victim"
        [
          movi Reg.r0 sz;
          call_import "malloc";
          mov Reg.r6 Reg.r0;
          movi Reg.r1 0;
          label "walk";
          cmpi Reg.r1 words;
          jcc Insn.Ge "done";
          st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
          addi Reg.r1 1;
          jmp "walk";
          label "done";
          ld Reg.r0 (mem_b ~disp:0 Reg.r6);
          ret;
        ]
    | Heap_stack_direct ->
      (* a corrupted pointer landing in the caller's frame, missing
         both redzones and the canary: invisible to every scheme under
         test (the shared 96 false negatives) *)
      let off = 8 + (4 * (i mod 3)) in
      let locals = 24 in
      func "victim"
        (Abi.frame_enter ~canary:true ~locals ()
        @ [
            movi Reg.r0 32;
            call_import "malloc";
            mov Reg.r2 Reg.r0;
            sti (mem_b ~disp:0 Reg.r2) 5;
            movi Reg.r3 0x41414141;
          ]
        @ (if bad then
             [ lea Reg.r1 (mem_b ~disp:off Reg.fp); st (mem_b ~disp:0 Reg.r1) Reg.r3 ]
           else
             [
               lea Reg.r1 (mem_b ~disp:(-locals) Reg.fp);
               st (mem_b ~disp:0 Reg.r1) Reg.r3;
             ])
        @ [ ld Reg.r0 (mem_b ~disp:0 Reg.r2) ]
        @ Abi.frame_leave ~canary:true ~locals ())
  in
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      victim;
      func "main"
        ([ call "victim"; call_import "print_int" ] @ exit0);
    ]

let registry_for m = [ m; Stdlibs.libc ]

type detector = Jasan_hybrid | Jasan_dyn | Valgrind

type tally = {
  t_true_pos : int;
  t_false_neg : int;
  t_true_neg : int;
  t_false_pos : int;
}

(* Distinct violation sites: several loop iterations tripping the same
   check count once, like one ASan report per instruction. *)
let distinct_sites (r : Jt_vm.Vm.result) =
  List.length
    (List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_pc) r.r_violations))

(* libc.so and ld.so rules are the same for every case: analyze once. *)
let precomputed_lib_rules =
  lazy
    (let tool, _ = Jt_jasan.Jasan.create () in
     Janitizer.Driver.analyze_all ~tool [ Stdlibs.libc; Jt_loader.Loader.ld_so ])

let run_detector det m =
  let registry = registry_for m in
  let main = m.Jt_obj.Objfile.name in
  match det with
  | Valgrind -> Jt_baselines.Valgrind_like.run ~registry ~main ()
  | Jasan_hybrid | Jasan_dyn ->
    let hybrid = det = Jasan_hybrid in
    let precomputed = if hybrid then Lazy.force precomputed_lib_rules else [] in
    let tool, _ = Jt_jasan.Jasan.create () in
    (Janitizer.Driver.run ~hybrid ~precomputed ~tool ~registry ~main ()).o_result

let evaluate ?limit det =
  let selected =
    match limit with
    | None -> cases
    | Some n -> List.filteri (fun k _ -> k < n) cases
  in
  let tally = ref { t_true_pos = 0; t_false_neg = 0; t_true_neg = 0; t_false_pos = 0 } in
  List.iter
    (fun c ->
      let bad_r = run_detector det (build_case c ~bad:true) in
      let good_r = run_detector det (build_case c ~bad:false) in
      let t = !tally in
      let t =
        if distinct_sites bad_r >= c.c_expected then
          { t with t_true_pos = t.t_true_pos + 1 }
        else { t with t_false_neg = t.t_false_neg + 1 }
      in
      let t =
        if distinct_sites good_r = 0 then { t with t_true_neg = t.t_true_neg + 1 }
        else { t with t_false_pos = t.t_false_pos + 1 }
      in
      tally := t)
    selected;
  !tally
