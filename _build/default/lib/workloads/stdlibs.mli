(** The shared-object substrate every workload links against.

    Four libraries stand in for the system libraries of the paper's SPEC
    setup.  All are position-independent shared objects, so running them
    instrumented exercises the PIC side of the rewrite-rule machinery
    (Figure 5): [libc.so] (allocator wrappers, byte/word copies, an
    indirect-calling [qsort], output), [libm.so] (arithmetic kernels),
    [libcxx.so] (vtable-style double-indirect dispatch; carries the
    C++-exception feature that defeats RetroWrite-style rewriting), and
    [libgfortran.so] (array runtime; hand-written assembly that breaks
    the calling convention, triggering the section 4.1.2 fallback). *)

val libc : Jt_obj.Objfile.t
val libm : Jt_obj.Objfile.t
val libcxx : Jt_obj.Objfile.t
val libgfortran : Jt_obj.Objfile.t

val all : Jt_obj.Objfile.t list
