open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

(* Argument convention: r0..r2 are arguments, r0 the result.  Loop
   counters in kernels use the canonical rotated-loop shape so that the
   static analyzer's SCEV pass can reason about them where the paper's
   would. *)

let libc =
  build ~name:"libc.so" ~kind:Jt_obj.Objfile.Shared
    [
      func ~exported:true "__stack_chk_fail"
        [ movi Reg.r0 134; syscall Sysno.exit_ ];
      func ~exported:true "malloc" [ syscall Sysno.malloc; ret ];
      func ~exported:true "calloc" [ syscall Sysno.calloc; ret ];
      func ~exported:true "realloc" [ syscall Sysno.realloc; ret ];
      func ~exported:true "free" [ syscall Sysno.free; ret ];
      func ~exported:true "print_int" [ syscall Sysno.write_int; ret ];
      func ~exported:true "print_ch" [ syscall Sysno.write_ch; ret ];
      func ~exported:true "read_int" [ syscall Sysno.read_int; ret ];
      (* memcpy(dst, src, n): byte loop *)
      func ~exported:true "memcpy"
        [
          movi Reg.r3 0;
          label "head";
          cmp Reg.r3 Reg.r2;
          jcc Insn.Ge "done";
          ldb Reg.r4 (mem_bi Reg.r1 Reg.r3);
          stb (mem_bi Reg.r0 Reg.r3) Reg.r4;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          ret;
        ];
      (* memset(dst, val, n) *)
      func ~exported:true "memset"
        [
          movi Reg.r3 0;
          label "head";
          cmp Reg.r3 Reg.r2;
          jcc Insn.Ge "done";
          stb (mem_bi Reg.r0 Reg.r3) Reg.r1;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          ret;
        ];
      (* copy_words(dst, src, n) *)
      func ~exported:true "copy_words"
        [
          movi Reg.r3 0;
          label "head";
          cmp Reg.r3 Reg.r2;
          jcc Insn.Ge "done";
          ld Reg.r4 (mem_bi ~scale:4 Reg.r1 Reg.r3);
          st (mem_bi ~scale:4 Reg.r0 Reg.r3) Reg.r4;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          ret;
        ];
      (* apply(f, x): the callback trampoline *)
      func ~exported:true "apply"
        [ mov Reg.r4 Reg.r0; mov Reg.r0 Reg.r1; I (Jt_asm.Sinsn.Scall_ind_r Reg.r4); ret ];
      (* qsort(base, n, cmp): insertion sort calling cmp(a, b) through a
         function pointer — the cross-module callback pattern behind
         Lockdown's false positives. *)
      func ~exported:true "qsort"
        [
          push Reg.r6;
          push Reg.r7;
          push Reg.r8;
          push Reg.r9;
          push Reg.r10;
          push Reg.r11;
          push Reg.r12;
          mov Reg.r6 Reg.r0 (* base *);
          mov Reg.r7 Reg.r1 (* n *);
          mov Reg.r8 Reg.r2 (* cmp *);
          movi Reg.r9 1 (* i *);
          label "outer";
          cmp Reg.r9 Reg.r7;
          jcc Insn.Ge "done";
          ld Reg.r10 (mem_bi ~scale:4 Reg.r6 Reg.r9) (* key *);
          mov Reg.r11 Reg.r9 (* j *);
          label "inner";
          cmpi Reg.r11 0;
          jcc Insn.Le "insert";
          mov Reg.r12 Reg.r11;
          subi Reg.r12 1;
          ld Reg.r0 (mem_bi ~scale:4 Reg.r6 Reg.r12);
          mov Reg.r1 Reg.r10;
          call_reg Reg.r8 (* cmp(a[j-1], key) > 0 ? *);
          cmpi Reg.r0 0;
          jcc Insn.Le "insert";
          mov Reg.r12 Reg.r11;
          subi Reg.r12 1;
          ld Reg.r0 (mem_bi ~scale:4 Reg.r6 Reg.r12);
          st (mem_bi ~scale:4 Reg.r6 Reg.r11) Reg.r0;
          subi Reg.r11 1;
          jmp "inner";
          label "insert";
          st (mem_bi ~scale:4 Reg.r6 Reg.r11) Reg.r10;
          addi Reg.r9 1;
          jmp "outer";
          label "done";
          pop Reg.r12;
          pop Reg.r11;
          pop Reg.r10;
          pop Reg.r9;
          pop Reg.r8;
          pop Reg.r7;
          pop Reg.r6;
          ret;
        ];
    ]

let libm =
  build ~name:"libm.so" ~kind:Jt_obj.Objfile.Shared ~deps:[ "libc.so" ]
    [
      (* poly(x): fixed cubic, pure ALU *)
      func ~exported:true "poly"
        [
          mov Reg.r1 Reg.r0;
          mov Reg.r2 Reg.r0;
          muli Reg.r2 3;
          addi Reg.r2 7;
          binop Insn.Mul Reg.r2 Reg.r1;
          addi Reg.r2 11;
          mov Reg.r0 Reg.r2;
          ret;
        ];
      (* isqrt(x): Newton-ish iteration, branchy ALU *)
      func ~exported:true "isqrt"
        [
          mov Reg.r1 Reg.r0;
          movi Reg.r2 1;
          label "head";
          mov Reg.r3 Reg.r2;
          binop Insn.Mul Reg.r3 Reg.r2;
          cmp Reg.r3 Reg.r1;
          jcc Insn.Gt "done";
          addi Reg.r2 1;
          cmpi Reg.r2 70000;
          jcc Insn.Gt "done";
          jmp "head";
          label "done";
          mov Reg.r0 Reg.r2;
          subi Reg.r0 1;
          ret;
        ];
      (* dot(a, b, n) *)
      func ~exported:true "dot"
        [
          push Reg.r6;
          movi Reg.r3 0;
          movi Reg.r4 0;
          label "head";
          cmp Reg.r3 Reg.r2;
          jcc Insn.Ge "done";
          ld Reg.r5 (mem_bi ~scale:4 Reg.r0 Reg.r3);
          ld Reg.r6 (mem_bi ~scale:4 Reg.r1 Reg.r3);
          binop Insn.Mul Reg.r5 Reg.r6;
          add Reg.r4 Reg.r5;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          mov Reg.r0 Reg.r4;
          pop Reg.r6;
          ret;
        ];
    ]

(* A vtable-flavoured object layer: objects are [vtable_ptr; field] pairs
   in memory, dispatch loads the table then the slot, then calls it. *)
let libcxx =
  build ~name:"libcxx.so" ~kind:Jt_obj.Objfile.Shared ~deps:[ "libc.so" ]
    ~features:[ Jt_obj.Objfile.Cxx_exceptions ]
    ~datas:
      [
        data ~exported:true "vt_widget" [ Dfuncptr "widget_get"; Dfuncptr "widget_bump" ];
        data ~exported:true "vt_gadget" [ Dfuncptr "gadget_get"; Dfuncptr "gadget_bump" ];
      ]
    [
      func ~exported:true "widget_get" [ ld Reg.r0 (mem_b ~disp:4 Reg.r0); ret ];
      func ~exported:true "widget_bump"
        [
          ld Reg.r1 (mem_b ~disp:4 Reg.r0);
          addi Reg.r1 1;
          st (mem_b ~disp:4 Reg.r0) Reg.r1;
          mov Reg.r0 Reg.r1;
          ret;
        ];
      func ~exported:true "gadget_get"
        [ ld Reg.r0 (mem_b ~disp:4 Reg.r0); muli Reg.r0 2; ret ];
      func ~exported:true "gadget_bump"
        [
          ld Reg.r1 (mem_b ~disp:4 Reg.r0);
          addi Reg.r1 3;
          st (mem_b ~disp:4 Reg.r0) Reg.r1;
          mov Reg.r0 Reg.r1;
          ret;
        ];
      (* vcall(obj, slot): obj -> vtable -> slot -> call *)
      func ~exported:true "vcall"
        [
          ld Reg.r4 (mem_b ~disp:0 Reg.r0) (* vtable *);
          I
            (Jt_asm.Sinsn.Sload
               ( Insn.W4,
                 Reg.r4,
                 { Jt_asm.Sinsn.sbase = Some (Jt_asm.Sinsn.SBreg Reg.r4);
                   sindex = Some Reg.r1;
                   sscale = 4;
                   sdisp = Jt_asm.Sinsn.Dconst 0 } ));
          call_reg Reg.r4;
          ret;
        ];
    ]

(* Fortran-ish array runtime.  Carries both the Fortran feature (defeats
   RetroWrite reassembly) and the broken-calling-convention feature: the
   static analyzer falls back to conservative liveness for this module
   (section 4.1.2). *)
let libgfortran =
  build ~name:"libgfortran.so" ~kind:Jt_obj.Objfile.Shared ~deps:[ "libc.so" ]
    ~features:
      [ Jt_obj.Objfile.Fortran_runtime; Jt_obj.Objfile.Handwritten_asm;
        Jt_obj.Objfile.Breaks_calling_convention ]
    [
      (* arr_sum(a, n) *)
      func ~exported:true "arr_sum"
        [
          movi Reg.r3 0;
          movi Reg.r4 0;
          label "head";
          cmp Reg.r3 Reg.r1;
          jcc Insn.Ge "done";
          ld Reg.r5 (mem_bi ~scale:4 Reg.r0 Reg.r3);
          add Reg.r4 Reg.r5;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          mov Reg.r0 Reg.r4;
          ret;
        ];
      (* arr_scale(a, n, k): a[i] = a[i]*k + i *)
      func ~exported:true "arr_scale"
        [
          movi Reg.r3 0;
          label "head";
          cmp Reg.r3 Reg.r1;
          jcc Insn.Ge "done";
          ld Reg.r4 (mem_bi ~scale:4 Reg.r0 Reg.r3);
          binop Insn.Mul Reg.r4 Reg.r2;
          add Reg.r4 Reg.r3;
          st (mem_bi ~scale:4 Reg.r0 Reg.r3) Reg.r4;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          ret;
        ];
      (* tridiag(a, n): three-point stencil, reads neighbours *)
      func ~exported:true "tridiag"
        [
          push Reg.r6;
          push Reg.r7;
          push Reg.r8;
          movi Reg.r3 1;
          mov Reg.r4 Reg.r1;
          subi Reg.r4 1;
          label "head";
          cmp Reg.r3 Reg.r4;
          jcc Insn.Ge "done";
          mov Reg.r5 Reg.r3;
          subi Reg.r5 1;
          ld Reg.r6 (mem_bi ~scale:4 Reg.r0 Reg.r5);
          ld Reg.r7 (mem_bi ~scale:4 Reg.r0 Reg.r3);
          mov Reg.r5 Reg.r3;
          addi Reg.r5 1;
          ld Reg.r8 (mem_bi ~scale:4 Reg.r0 Reg.r5);
          add Reg.r6 Reg.r7;
          add Reg.r6 Reg.r8;
          shri Reg.r6 1;
          st (mem_bi ~scale:4 Reg.r0 Reg.r3) Reg.r6;
          addi Reg.r3 1;
          jmp "head";
          label "done";
          pop Reg.r8;
          pop Reg.r7;
          pop Reg.r6;
          ret;
        ];
    ]

let all = [ libc; libm; libcxx; libgfortran ]
