type lang = C | Cxx | Fortran | Mixed_cf

type t = {
  s_name : string;
  s_lang : lang;
  s_units : int;
  s_elems : int;
  s_stream_loops : int;
  s_chase_steps : int;
  s_alu_calls : int;
  s_ind_calls : int;
  s_switches : int;
  s_call_depth : int;
  s_mallocs : int;
  s_memlib_calls : int;
  s_qsort : bool;
  s_dlopen_solver : int;
  s_computed_goto : int;
  s_code_bloat : int;
  s_literal_pool : int;
  s_fails_lockdown : bool;
  s_stencil : int;
  s_hist : int;
  s_strproc : int;
  s_recurse : int;
}

let base name lang =
  {
    s_name = name;
    s_lang = lang;
    s_units = 30;
    s_elems = 512;
    s_stream_loops = 1;
    s_chase_steps = 200;
    s_alu_calls = 4;
    s_ind_calls = 4;
    s_switches = 4;
    s_call_depth = 3;
    s_mallocs = 1;
    s_memlib_calls = 1;
    s_qsort = false;
    s_dlopen_solver = 0;
    s_computed_goto = 0;
    s_code_bloat = 10;
    s_literal_pool = 0;
    s_fails_lockdown = false;
    s_stencil = 0;
    s_hist = 0;
    s_strproc = 0;
    s_recurse = 0;
  }

(* Traits follow the usual characterization of each SPEC CPU2006
   benchmark: interpreter/compiler codes are branchy and
   indirect-transfer heavy; the fp codes stream over arrays; mcf and
   astar chase pointers; h264ref and cactusADM pass comparison callbacks
   to qsort-style routines (the Lockdown false-positive pattern of
   section 6.2.2); cactusADM's solver arrives via dlopen so nearly all
   of its executed code is invisible statically (Figure 14); lbm's two
   computed-goto blocks are the paper's other outlier. *)
let all =
  [
    { (base "perlbench" C) with s_units = 40; s_ind_calls = 14; s_switches = 10;
      s_chase_steps = 260; s_mallocs = 5; s_call_depth = 5; s_code_bloat = 40;
      s_stream_loops = 1; s_elems = 256; s_strproc = 2; };
    { (base "bzip2" C) with s_stream_loops = 4; s_elems = 1024; s_chase_steps = 80;
      s_ind_calls = 1; s_switches = 2; s_memlib_calls = 3 };
    { (base "gcc" C) with s_units = 36; s_ind_calls = 12; s_switches = 12;
      s_chase_steps = 240; s_mallocs = 6; s_call_depth = 5; s_code_bloat = 60;
      s_elems = 256; s_qsort = true; s_strproc = 1; s_recurse = 6; };
    { (base "mcf" C) with s_chase_steps = 900; s_stream_loops = 1; s_elems = 1024;
      s_ind_calls = 1; s_switches = 1; s_alu_calls = 1 };
    { (base "gobmk" C) with s_units = 34; s_ind_calls = 8; s_switches = 8;
      s_call_depth = 6; s_chase_steps = 300; s_code_bloat = 30; s_recurse = 10; };
    { (base "hmmer" C) with s_stream_loops = 3; s_elems = 768; s_chase_steps = 60;
      s_switches = 2; s_ind_calls = 1; s_hist = 2; };
    { (base "sjeng" C) with s_units = 34; s_switches = 10; s_ind_calls = 6;
      s_call_depth = 7; s_chase_steps = 280; s_code_bloat = 20; s_recurse = 12; };
    { (base "libquantum" C) with s_stream_loops = 5; s_elems = 1024;
      s_chase_steps = 20; s_ind_calls = 1; s_switches = 1; s_alu_calls = 1 };
    { (base "h264ref" C) with s_stream_loops = 3; s_elems = 640; s_qsort = true;
      s_ind_calls = 5; s_memlib_calls = 3; s_chase_steps = 100; s_strproc = 2; };
    { (base "omnetpp" Cxx) with s_units = 32; s_ind_calls = 12; s_mallocs = 8;
      s_chase_steps = 260; s_switches = 6; s_fails_lockdown = true;
      s_code_bloat = 30 };
    { (base "astar" Cxx) with s_chase_steps = 700; s_elems = 768; s_ind_calls = 4;
      s_switches = 2; s_mallocs = 3 };
    { (base "xalancbmk" Cxx) with s_units = 34; s_ind_calls = 16; s_switches = 10;
      s_mallocs = 6; s_chase_steps = 200; s_code_bloat = 70; s_elems = 256 };
    { (base "bwaves" Fortran) with s_stream_loops = 5; s_elems = 1024;
      s_chase_steps = 10; s_ind_calls = 1; s_switches = 1; s_stencil = 2; };
    { (base "gamess" Fortran) with s_units = 26; s_alu_calls = 10;
      s_stream_loops = 2; s_chase_steps = 40; s_literal_pool = 900;
      s_code_bloat = 50; s_ind_calls = 2 };
    { (base "milc" C) with s_stream_loops = 4; s_elems = 896; s_chase_steps = 30;
      s_ind_calls = 1; s_switches = 1; s_hist = 1; s_stencil = 1; };
    { (base "zeusmp" Fortran) with s_stream_loops = 4; s_elems = 896;
      s_chase_steps = 20; s_literal_pool = 1100; s_code_bloat = 40;
      s_ind_calls = 1; s_switches = 1; s_stencil = 2; };
    { (base "gromacs" Mixed_cf) with s_alu_calls = 8; s_stream_loops = 3;
      s_elems = 640; s_chase_steps = 60 };
    { (base "cactusADM" Mixed_cf) with s_units = 24; s_dlopen_solver = 96;
      s_stream_loops = 0; s_chase_steps = 0; s_alu_calls = 0; s_ind_calls = 0;
      s_switches = 0; s_call_depth = 1; s_memlib_calls = 0; s_qsort = false;
      s_code_bloat = 0; s_mallocs = 1; s_elems = 512 };
    { (base "leslie3d" Fortran) with s_stream_loops = 4; s_elems = 832;
      s_chase_steps = 20; s_ind_calls = 1; s_stencil = 2; };
    { (base "namd" Cxx) with s_alu_calls = 12; s_stream_loops = 2;
      s_chase_steps = 40; s_ind_calls = 2; s_switches = 1; s_stencil = 1; };
    { (base "dealII" Cxx) with s_units = 30; s_ind_calls = 10; s_mallocs = 6;
      s_alu_calls = 6; s_chase_steps = 160; s_fails_lockdown = true;
      s_code_bloat = 50 };
    { (base "soplex" Cxx) with s_chase_steps = 420; s_elems = 768;
      s_stream_loops = 2; s_ind_calls = 3; s_mallocs = 3 };
    { (base "povray" Cxx) with s_units = 32; s_ind_calls = 9; s_switches = 7;
      s_alu_calls = 8; s_call_depth = 6; s_chase_steps = 140; s_code_bloat = 25; s_recurse = 8; };
    { (base "calculix" Mixed_cf) with s_alu_calls = 7; s_stream_loops = 3;
      s_elems = 640; s_chase_steps = 80 };
    { (base "GemsFDTD" Fortran) with s_stream_loops = 5; s_elems = 960;
      s_chase_steps = 15; s_ind_calls = 1; s_stencil = 2; };
    { (base "tonto" Fortran) with s_alu_calls = 10; s_stream_loops = 2;
      s_elems = 512; s_chase_steps = 50; s_code_bloat = 35 };
    { (base "lbm" C) with s_units = 18; s_stream_loops = 1; s_elems = 4096;
      s_chase_steps = 0; s_alu_calls = 0; s_ind_calls = 0; s_switches = 0;
      s_call_depth = 0; s_mallocs = 0; s_memlib_calls = 0; s_computed_goto = 2;
      s_code_bloat = 0 };
    { (base "sphinx3" C) with s_stream_loops = 3; s_elems = 768;
      s_chase_steps = 120; s_ind_calls = 2; s_switches = 2; s_strproc = 1; s_hist = 1; };
  ]

let find name = List.find (fun s -> String.equal s.s_name name) all

let c_benchmarks = List.filter (fun s -> s.s_lang = C) all
