lib/workloads/juliet.mli: Jt_obj
