lib/workloads/specgen.ml: Abi Char Hashtbl Insn Jt_asm Jt_isa Jt_obj Jt_vm List Printf Reg Sheet Stdlibs String Sysno
