lib/workloads/sheet.ml: List String
