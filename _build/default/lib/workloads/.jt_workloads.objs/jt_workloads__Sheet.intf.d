lib/workloads/sheet.mli:
