lib/workloads/stdlibs.ml: Insn Jt_asm Jt_isa Jt_obj Reg Sysno
