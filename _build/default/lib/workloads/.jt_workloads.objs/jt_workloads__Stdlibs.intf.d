lib/workloads/stdlibs.mli: Jt_obj
