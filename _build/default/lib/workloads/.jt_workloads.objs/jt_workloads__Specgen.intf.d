lib/workloads/specgen.mli: Jt_obj Jt_vm Sheet
