lib/workloads/juliet.ml: Abi Insn Janitizer Jt_asm Jt_baselines Jt_isa Jt_jasan Jt_loader Jt_obj Jt_vm Lazy List Printf Reg Stdlibs Sysno
