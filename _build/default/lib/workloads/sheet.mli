(** Character sheets for the 27 SPEC CPU2006-like workloads.

    Each sheet captures the traits of one benchmark that the paper's
    evaluation is sensitive to: language (which system libraries it
    links, and hence which baselines refuse it), memory-access density,
    indirect-branch density, loop structure, dynamic-code behaviour
    (dlopen'd solvers, computed gotos the static analyzer misses), and
    the tool-breakage flags reported in the paper (Lockdown fails on
    omnetpp and dealII; BinCFI-rewritten gamess and zeusmp do not run).
    The traits are tuned from the public characterizations of SPEC
    CPU2006, not measured from the originals. *)

type lang = C | Cxx | Fortran | Mixed_cf

type t = {
  s_name : string;
  s_lang : lang;
  s_units : int;  (** driver iterations *)
  s_elems : int;  (** working-array elements *)
  s_stream_loops : int;  (** SCEV-friendly streaming passes per unit *)
  s_chase_steps : int;  (** pointer-chase steps per unit (non-SCEV) *)
  s_alu_calls : int;  (** libm scalar calls per unit *)
  s_ind_calls : int;  (** dispatch-table calls per unit *)
  s_switches : int;  (** jump-table dispatches per unit *)
  s_call_depth : int;  (** canary-frame call-chain depth *)
  s_mallocs : int;  (** allocation churn per unit *)
  s_memlib_calls : int;  (** libc memcpy/copy_words calls per unit *)
  s_qsort : bool;  (** stack-passed callback into libc (Lockdown FP) *)
  s_dlopen_solver : int;
      (** number of solver stages in a dlopen'd plugin; 0 = none.
          cactusADM's large value makes most executed blocks dynamic *)
  s_computed_goto : int;  (** labels reachable only via a data table *)
  s_code_bloat : int;  (** extra once-run phase functions (code size) *)
  s_literal_pool : int;  (** bytes of data embedded in code *)
  s_fails_lockdown : bool;
  s_stencil : int;  (** 2D five-point stencil passes per unit *)
  s_hist : int;  (** histogram passes (data-dependent addressing) *)
  s_strproc : int;  (** byte-granularity string-processing passes *)
  s_recurse : int;  (** recursion depth through canary frames; 0 = none *)
}

val all : t list
(** The 27 workloads, in the paper's figure order. *)

val find : string -> t
(** @raise Not_found for unknown benchmark names. *)

val c_benchmarks : t list
(** The pure-C subset RetroWrite supports. *)
