type state = Addressable | Heap_redzone | Heap_freed | Stack_canary

let to_byte = function
  | Addressable -> 0
  | Heap_redzone -> 1
  | Heap_freed -> 2
  | Stack_canary -> 3

let of_byte = function
  | 1 -> Heap_redzone
  | 2 -> Heap_freed
  | 3 -> Stack_canary
  | _ -> Addressable

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = { pages : (int, Bytes.t) Hashtbl.t; mutable poisoned : int }

let create () = { pages = Hashtbl.create 64; poisoned = 0 }

let page t a =
  let key = a lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\x00' in
    Hashtbl.add t.pages key p;
    p

let set t a v =
  let a = a land Jt_isa.Word.mask in
  let p = page t a in
  let old = Bytes.get p (a land page_mask) in
  if old <> '\x00' && v = 0 then t.poisoned <- t.poisoned - 1
  else if old = '\x00' && v <> 0 then t.poisoned <- t.poisoned + 1;
  Bytes.set p (a land page_mask) (Char.chr v)

let get t a =
  let a = a land Jt_isa.Word.mask in
  match Hashtbl.find_opt t.pages (a lsr page_bits) with
  | None -> 0
  | Some p -> Char.code (Bytes.get p (a land page_mask))

let poison t a ~len st =
  let v = to_byte st in
  for i = 0 to len - 1 do
    set t (a + i) v
  done

let unpoison t a ~len =
  for i = 0 to len - 1 do
    set t (a + i) 0
  done

let first_poisoned t a ~len =
  let rec go i =
    if i >= len then None
    else
      let v = get t (a + i) in
      if v <> 0 then Some (a + i, of_byte v) else go (i + 1)
  in
  go 0

let poisoned_count t = t.poisoned
