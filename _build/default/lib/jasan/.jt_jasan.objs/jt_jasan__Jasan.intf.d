lib/jasan/jasan.mli: Janitizer Jt_isa Jt_vm Shadow
