lib/jasan/jasan.ml: Array Hashtbl Insn Janitizer Jt_analysis Jt_cfg Jt_dbt Jt_disasm Jt_isa Jt_obj Jt_rules Jt_vm List Option Reg Shadow Word
