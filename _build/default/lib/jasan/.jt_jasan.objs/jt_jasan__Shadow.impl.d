lib/jasan/shadow.ml: Bytes Char Hashtbl Jt_isa
