lib/jasan/shadow.mli:
