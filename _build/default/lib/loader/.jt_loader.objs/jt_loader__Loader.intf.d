lib/loader/loader.mli: Jt_mem Jt_obj Objfile Symbol
