lib/loader/loader.ml: Dsl Format Hashtbl Jt_asm Jt_isa Jt_mem Jt_obj List Objfile Reloc Section String
