lib/loader/loader.ml: Array Dsl Format Hashtbl Jt_asm Jt_isa Jt_mem Jt_metrics Jt_obj List Objfile Reloc Section String
