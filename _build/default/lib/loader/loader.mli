(** The run-time loader (the [ld.so] analog).

    Loads a main executable and the transitive closure of its declared
    dependencies, assigns load bases (position-dependent executables at
    their link base, PIC modules at successive slots), copies sections
    into memory, applies relocations, initializes GOT slots (eager imports
    resolved immediately, lazy imports pointed at their PLT lazy stubs),
    and supports run-time {!dlopen}.

    Tools subscribe to module-load events: this is where Janitizer's
    dynamic modifier loads a module's rewrite rules and adjusts their
    addresses by the load base (Figure 5a of the paper). *)

open Jt_obj

type loaded = {
  lmod : Objfile.t;
  base : int;  (** load base; [0] for position-dependent modules *)
  load_order : int;
}

val runtime_addr : loaded -> int -> int
(** Link-time address to run-time address. *)

val link_addr : loaded -> int -> int
(** Run-time address back to link-time address. *)

val contains : loaded -> int -> bool
(** Does the run-time address fall in one of the module's sections? *)

val in_code : loaded -> int -> bool
(** Does the run-time address fall in an executable section? *)

type t

exception Load_error of string

val create : mem:Jt_mem.Memory.t -> registry:Objfile.t list -> t
(** [registry] is the simulated filesystem of available binaries.  A
    synthetic [ld.so] module providing [__dl_resolve] is added
    automatically if the registry does not define one. *)

val mem : t -> Jt_mem.Memory.t

val on_load : t -> (loaded -> unit) -> unit
(** Register a module-load callback.  Callbacks registered before
    {!load_main} fire for startup modules too. *)

val load_main : t -> string -> loaded
(** Load the main executable and its static dependency closure (the "ldd"
    set).  @raise Load_error on unknown modules or unresolved imports. *)

val dlopen : t -> string -> loaded
(** Load a module at run time (no-op returning the existing handle if
    already loaded). *)

val on_unload : t -> (loaded -> unit) -> unit
(** Callbacks fired by {!dlclose}: tools drop the module's rule tables —
    efficient precisely because the tables are kept per module
    (footnote 2 of the paper). *)

val dlclose : t -> string -> bool
(** Unload a run-time-loaded module: its address range is retired and
    unload callbacks fire.  Returns false (and does nothing) for modules
    of the startup closure, which stay pinned like ELF [-z nodelete].
    The address slot is not reused, so stale pointers into the unloaded
    module fault into unmapped space rather than aliasing new code. *)

val loaded_modules : t -> loaded list
(** In load order. *)

val module_at : t -> int -> loaded option
(** Address-range lookup: which module maps this run-time address?
    Served from a sorted interval index over loaded section spans
    (binary search, maintained on load/dlclose), so it is cheap enough
    to sit on the DBT's block-translation path. *)

val find_loaded : t -> string -> loaded option

val resolve_symbol : t -> string -> (loaded * Symbol.t) option
(** Flat-namespace lookup of an exported symbol, in load order. *)

val resolve_plt_index : t -> caller_pc:int -> index:int -> int
(** Lazy-binding resolution: resolve the [index]-th PLT import of the
    module containing [caller_pc], patch its GOT slot, and return the
    run-time target address.  @raise Load_error if unresolvable. *)

val entry_point : t -> int
(** Run-time entry address of the main executable. *)

val init_entries : t -> int list
(** Run-time addresses of the [_init] functions of all startup modules,
    in dependency-first order (to be run before the entry point). *)

val ld_so : Objfile.t
(** The synthetic [ld.so]: exports [__dl_resolve], whose body performs the
    resolve syscall and then — exactly as the paper's section 4.2.3
    describes of real lazy binding — transfers to the resolved function
    with a [ret]. *)
