open Jt_isa
open Jt_disasm
open Jt_disasm.Disasm

module Iset = Set.Make (Int)

type term =
  | Tjmp of int
  | Tjcc of int * int
  | Tjmp_ind of int list
  | Tcall of int * int
  | Tcall_ind of int
  | Tret
  | Thalt
  | Tfall of int

type block = {
  b_addr : int;
  b_insns : insn_info array;
  b_term : term;
  mutable b_succs : int list;
  mutable b_preds : int list;
}

type loop = { l_head : int; l_body : Iset.t }

type fn = {
  f_entry : int;
  f_name : string option;
  f_blocks : (int, block) Hashtbl.t;
  f_loops : loop list;
}

type t = {
  c_disasm : Disasm.t;
  c_blocks : (int, block) Hashtbl.t;
  c_fns : (int, fn) Hashtbl.t;
}

(* ---- block construction ---- *)

let build_blocks (d : Disasm.t) =
  let leaders = Disasm.block_starts d in
  let leader_set = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.replace leader_set a ()) leaders;
  let table_at = Hashtbl.create 16 in
  List.iter (fun (a, ts) -> Hashtbl.replace table_at a ts) d.jump_tables;
  let blocks = Hashtbl.create 256 in
  List.iter
    (fun leader ->
      match Disasm.insn_at d leader with
      | None -> ()  (* leader seeded into non-decoded space *)
      | Some _ ->
        let insns = ref [] in
        let rec walk a =
          match Disasm.insn_at d a with
          | None -> Thalt  (* decode gap: treat as an opaque stop *)
          | Some info ->
            insns := info :: !insns;
            let next = a + info.d_len in
            if Insn.ends_block info.d_insn then
              match Insn.cti_kind info.d_insn with
              | Some (Insn.Cti_jmp t) -> Tjmp t
              | Some (Insn.Cti_jcc (_, t)) -> Tjcc (t, next)
              | Some Insn.Cti_jmp_ind ->
                Tjmp_ind
                  (match Hashtbl.find_opt table_at a with Some ts -> ts | None -> [])
              | Some (Insn.Cti_call t) -> Tcall (t, next)
              | Some Insn.Cti_call_ind -> Tcall_ind next
              | Some Insn.Cti_ret -> Tret
              | Some Insn.Cti_halt -> Thalt
              | Some Insn.Cti_syscall | None -> assert false
            else if Hashtbl.mem leader_set next then Tfall next
            else walk next
        in
        let term = walk leader in
        Hashtbl.replace blocks leader
          { b_addr = leader; b_insns = Array.of_list (List.rev !insns); b_term = term;
            b_succs = []; b_preds = [] })
    leaders;
  blocks

(* Intra-procedural successors: calls fall through to the return site,
   the callee is an inter-procedural edge. *)
let intra_succs b =
  match b.b_term with
  | Tjmp t -> [ t ]
  | Tjcc (t, f) -> [ t; f ]
  | Tjmp_ind ts -> ts
  | Tcall (_, ret) -> [ ret ]
  | Tcall_ind ret -> [ ret ]
  | Tret | Thalt -> []
  | Tfall n -> [ n ]

(* ---- function partition ---- *)

let assign_functions (d : Disasm.t) blocks =
  let entries = d.func_entries in
  let entry_set = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace entry_set e ()) entries;
  let owner = Hashtbl.create 256 in
  let fns = Hashtbl.create 64 in
  let name_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (s : Jt_obj.Symbol.t) ->
        if Jt_obj.Symbol.is_func s && not (Hashtbl.mem tbl s.vaddr) then
          Hashtbl.add tbl s.vaddr s.name)
      (Jt_obj.Objfile.visible_symbols d.dmod
      @ Jt_obj.Objfile.exported_symbols d.dmod);
    fun a -> Hashtbl.find_opt tbl a
  in
  List.iter
    (fun entry ->
      if Hashtbl.mem blocks entry then begin
        let f_blocks = Hashtbl.create 16 in
        let q = Queue.create () in
        Queue.add entry q;
        while not (Queue.is_empty q) do
          let a = Queue.pop q in
          if (not (Hashtbl.mem f_blocks a)) && Hashtbl.mem blocks a then begin
            let b = Hashtbl.find blocks a in
            Hashtbl.replace f_blocks a b;
            if not (Hashtbl.mem owner a) then Hashtbl.replace owner a entry;
            List.iter
              (fun s ->
                (* A jump to another function's entry is a tail call, not
                   part of this function's body. *)
                if not (Hashtbl.mem entry_set s) || s = entry then Queue.add s q)
              (intra_succs b)
          end
        done;
        Hashtbl.replace fns entry
          { f_entry = entry; f_name = name_of entry; f_blocks; f_loops = [] }
      end)
    entries;
  (fns, owner)

(* ---- dominators and natural loops ---- *)

let fn_block_addrs fn =
  List.sort compare (Hashtbl.fold (fun a _ acc -> a :: acc) fn.f_blocks [])

let dominators fn =
  let addrs = fn_block_addrs fn in
  let all = Iset.of_list addrs in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.replace dom a
        (if a = fn.f_entry then Iset.singleton a else all))
    addrs;
  let preds_in a =
    match Hashtbl.find_opt fn.f_blocks a with
    | Some b -> List.filter (fun p -> Hashtbl.mem fn.f_blocks p) b.b_preds
    | None -> []
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        if a <> fn.f_entry then begin
          let preds = preds_in a in
          let inter =
            match preds with
            | [] -> Iset.singleton a
            | p :: ps ->
              List.fold_left
                (fun acc q -> Iset.inter acc (Hashtbl.find dom q))
                (Hashtbl.find dom p) ps
          in
          let nd = Iset.add a inter in
          if not (Iset.equal nd (Hashtbl.find dom a)) then begin
            Hashtbl.replace dom a nd;
            changed := true
          end
        end)
      addrs
  done;
  dom

let natural_loops fn =
  let dom = dominators fn in
  let loops = Hashtbl.create 8 in
  Hashtbl.iter
    (fun a (b : block) ->
      List.iter
        (fun s ->
          if Hashtbl.mem fn.f_blocks s then
            let doms_a = Hashtbl.find dom a in
            if Iset.mem s doms_a then begin
              (* a -> s is a back edge; collect the natural loop of s. *)
              let body = ref (Iset.of_list [ s; a ]) in
              let stack = ref [ a ] in
              while !stack <> [] do
                match !stack with
                | [] -> ()
                | x :: rest ->
                  stack := rest;
                  if x <> s then
                    let xb = Hashtbl.find_opt fn.f_blocks x in
                    List.iter
                      (fun p ->
                        if Hashtbl.mem fn.f_blocks p && not (Iset.mem p !body)
                        then begin
                          body := Iset.add p !body;
                          stack := p :: !stack
                        end)
                      (match xb with Some xb -> xb.b_preds | None -> [])
              done;
              let merged =
                match Hashtbl.find_opt loops s with
                | Some prev -> Iset.union prev !body
                | None -> !body
              in
              Hashtbl.replace loops s merged
            end)
        b.b_succs)
    fn.f_blocks;
  Hashtbl.fold (fun head body acc -> { l_head = head; l_body = body } :: acc) loops []

(* ---- top level ---- *)

let build (d : Disasm.t) =
  let blocks = build_blocks d in
  (* preds/succs *)
  Hashtbl.iter
    (fun _ b -> b.b_succs <- List.filter (fun s -> Hashtbl.mem blocks s) (intra_succs b))
    blocks;
  Hashtbl.iter
    (fun a b -> List.iter (fun s -> let sb = Hashtbl.find blocks s in sb.b_preds <- a :: sb.b_preds) b.b_succs)
    blocks;
  let fns, _owner = assign_functions d blocks in
  let fns' = Hashtbl.create (Hashtbl.length fns) in
  Hashtbl.iter
    (fun e fn -> Hashtbl.replace fns' e { fn with f_loops = natural_loops fn })
    fns;
  { c_disasm = d; c_blocks = blocks; c_fns = fns' }

let block_at t a = Hashtbl.find_opt t.c_blocks a
let fn_at t a = Hashtbl.find_opt t.c_fns a

let functions t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.c_fns []
  |> List.sort (fun a b -> compare a.f_entry b.f_entry)

let fn_blocks fn =
  Hashtbl.fold (fun _ b acc -> b :: acc) fn.f_blocks []
  |> List.sort (fun a b -> compare a.b_addr b.b_addr)

let fn_containing t addr =
  let found = ref None in
  Hashtbl.iter
    (fun _ fn ->
      Hashtbl.iter
        (fun _ (b : block) ->
          let last =
            if Array.length b.b_insns = 0 then b.b_addr
            else
              let i = b.b_insns.(Array.length b.b_insns - 1) in
              i.d_addr + i.d_len
          in
          if addr >= b.b_addr && addr < last then found := Some fn)
        fn.f_blocks)
    t.c_fns;
  !found

let block_count t = Hashtbl.length t.c_blocks

let insn_count t =
  Hashtbl.fold (fun _ b acc -> acc + Array.length b.b_insns) t.c_blocks 0
