(** Control-flow graphs over disassembled modules.

    Unlike Janus — which skips [.init]/[.fini]/[.plt] and functions
    without loops — Janitizer builds basic blocks and control flow for
    every executable section and every discovered function, because
    security instrumentation must reach all of them (section 3.3.1). *)

module Iset : Set.S with type elt = int

type term =
  | Tjmp of int
  | Tjcc of int * int  (** taken, fallthrough *)
  | Tjmp_ind of int list  (** recovered jump-table targets (may be empty) *)
  | Tcall of int * int  (** callee, return site *)
  | Tcall_ind of int  (** return site *)
  | Tret
  | Thalt
  | Tfall of int  (** block split by a leader: unconditional fallthrough *)

type block = {
  b_addr : int;
  b_insns : Jt_disasm.Disasm.insn_info array;
  b_term : term;
  mutable b_succs : int list;  (** intra-procedural successor block addrs *)
  mutable b_preds : int list;
}

type loop = {
  l_head : int;
  l_body : Iset.t;  (** block addresses, head included *)
}

type fn = {
  f_entry : int;
  f_name : string option;
  f_blocks : (int, block) Hashtbl.t;
  f_loops : loop list;
}

type t = {
  c_disasm : Jt_disasm.Disasm.t;
  c_blocks : (int, block) Hashtbl.t;  (** all blocks, by leader address *)
  c_fns : (int, fn) Hashtbl.t;  (** by entry address *)
}

val build : Jt_disasm.Disasm.t -> t

val block_at : t -> int -> block option
val fn_at : t -> int -> fn option
val functions : t -> fn list
(** Sorted by entry address. *)

val fn_blocks : fn -> block list
(** Sorted by address. *)

val fn_containing : t -> int -> fn option
(** The function whose region contains this instruction address. *)

val dominators : fn -> (int, Iset.t) Hashtbl.t
(** Per-block dominator sets (classic iterative dataflow). *)

val block_count : t -> int
val insn_count : t -> int
