lib/cfg/cfg.mli: Hashtbl Jt_disasm Set
