lib/cfg/cfg.ml: Array Disasm Hashtbl Insn Int Jt_disasm Jt_isa Jt_obj List Queue Set
