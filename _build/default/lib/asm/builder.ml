open Jt_isa
open Jt_obj
open Sinsn

type item =
  | I of Sinsn.t
  | L of string
  | Bytes of string
  | Inline_table of string list

type func = { fname : string; exported : bool; body : item list }

type dinit =
  | Dbytes of string
  | Dword32 of int
  | Dfuncptr of string
  | Ddataptr of string
  | Dlabelptr of string * string
  | Dimportptr of string
  | Dspace of int

type data = { dname : string; dexported : bool; ro : bool; init : dinit list }

let func ?(exported = false) fname body = { fname; exported; body }

let data ?(exported = false) ?(ro = false) dname init =
  { dname; dexported = exported; ro; init }

exception Asm_error of string

let err fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

let resolver_sym = "__dl_resolve"
let ld_so_name = "ld.so"

let item_length = function
  | I i -> Sinsn.length i
  | L _ -> 0
  | Bytes s -> String.length s
  | Inline_table ls -> 4 * List.length ls

let align a x = (x + a - 1) / a * a

(* Collect references to imports.  Control-transfer uses need a PLT stub;
   all uses need a GOT slot. *)
let scan_imports funcs datas =
  let plt = ref [] and got = ref [] in
  let add lst s = if not (List.mem s !lst) then lst := s :: !lst in
  let scan_ref ~transfer = function
    | Rimport s ->
      add got s;
      if transfer then add plt s
    | Rlabel _ | Rfunc _ | Rdata _ | Raddr _ -> ()
  in
  let scan_mem m = match m.sdisp with Dgot s -> add got s | Dconst _ -> () | Daddr r -> scan_ref ~transfer:false r in
  let scan_operand = function
    | Sreg _ | Simm _ -> ()
    | Saddr r -> scan_ref ~transfer:true r
    (* taking the address of an import yields its PLT stub, as on x86 *)
  in
  let scan_insn = function
    | Snop | Shalt | Sret | Ssyscall _ | Sload_canary _ | Sneg _ | Snot _
    | Spop _ | Sjmp_ind_r _ | Scall_ind_r _ ->
      ()
    | Smov (_, o) | Sbinop (_, _, o) | Scmp (_, o) | Stest (_, o) | Spush o ->
      scan_operand o
    | Slea (_, m) | Sload (_, _, m) | Sjmp_ind_m m | Scall_ind_m m -> scan_mem m
    | Sstore (_, m, o) ->
      scan_mem m;
      scan_operand o
    | Sjmp r | Sjcc (_, r) | Scall r -> scan_ref ~transfer:true r
  in
  List.iter
    (fun f ->
      List.iter (function I i -> scan_insn i | L _ | Bytes _ | Inline_table _ -> ()) f.body)
    funcs;
  List.iter
    (fun d ->
      List.iter
        (function
          | Dimportptr s -> add got s
          | Dbytes _ | Dword32 _ | Dfuncptr _ | Ddataptr _ | Dlabelptr _ | Dspace _ -> ())
        d.init)
    datas;
  (List.rev !plt, List.rev !got)

(* PLT stub shape (fixed lengths):
     sym@plt:      jmp *[pc: got slot of sym]     (6 bytes)
     sym@plt.lazy: push <import-index>            (5 bytes)
                   jmp *[pc: got slot 0]          (6 bytes)
   padded to 20 bytes. *)
let plt_entry_size = 20
let plt_lazy_offset = 6

let u32_string v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (v land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.to_string b

let build ~name ~kind ?(symtab_level = Objfile.Full) ?(features = [])
    ?(deps = []) ?entry ?(init_funcs = [ func "_init" [ I Sret ] ])
    ?(fini_funcs = [ func "_fini" [ I Sret ] ]) ?(datas = []) text_funcs =
  let pic = kind <> Objfile.Exec_nonpic in
  let base = if pic then 0 else 0x0040_0000 in
  let all_funcs = init_funcs @ text_funcs @ fini_funcs in
  (match
     List.sort_uniq compare (List.map (fun f -> f.fname) all_funcs)
   with
  | names when List.length names <> List.length all_funcs ->
    err "module %s: duplicate function names" name
  | _ -> ());
  let plt_imports, got_imports = scan_imports all_funcs datas in
  let has_imports = got_imports <> [] in
  (* GOT slot order: resolver first, then every imported symbol. *)
  let got_syms = if has_imports then resolver_sym :: got_imports else [] in

  (* ---- layout ---- *)
  let cursor = ref base in
  let sec_start () = cursor := align 16 !cursor in

  let layout_funcs funcs =
    List.map
      (fun f ->
        cursor := align 4 !cursor;
        let fstart = !cursor in
        let labels = Hashtbl.create 8 in
        List.iter
          (fun it ->
            (match it with
            | L l ->
              if Hashtbl.mem labels l then
                err "%s/%s: duplicate label %s" name f.fname l;
              Hashtbl.add labels l !cursor
            | I _ | Bytes _ | Inline_table _ -> ());
            cursor := !cursor + item_length it)
          f.body;
        (f, fstart, !cursor - fstart, labels))
      funcs
  in

  sec_start ();
  let init_start = !cursor in
  let init_layout = layout_funcs init_funcs in
  let init_end = !cursor in

  sec_start ();
  let plt_start = !cursor in
  cursor := !cursor + (plt_entry_size * List.length plt_imports);
  let plt_end = !cursor in

  sec_start ();
  let text_start = !cursor in
  let text_layout = layout_funcs text_funcs in
  let text_end = !cursor in

  sec_start ();
  let fini_start = !cursor in
  let fini_layout = layout_funcs fini_funcs in
  let fini_end = !cursor in

  let dinit_length = function
    | Dbytes s -> String.length s
    | Dword32 _ | Dfuncptr _ | Ddataptr _ | Dlabelptr _ | Dimportptr _ -> 4
    | Dspace n -> n
  in
  let layout_datas ds =
    List.map
      (fun d ->
        cursor := align 4 !cursor;
        let dstart = !cursor in
        let sz = List.fold_left (fun a i -> a + dinit_length i) 0 d.init in
        cursor := !cursor + sz;
        (d, dstart, sz))
      ds
  in
  let ro_datas, rw_datas = List.partition (fun d -> d.ro) datas in
  sec_start ();
  let rodata_start = !cursor in
  let rodata_layout = layout_datas ro_datas in
  let rodata_end = !cursor in
  sec_start ();
  let data_start = !cursor in
  let data_layout = layout_datas rw_datas in
  let data_end = !cursor in
  sec_start ();
  let got_start = !cursor in
  cursor := !cursor + (4 * List.length got_syms);
  let got_end = !cursor in

  (* ---- symbol environment ---- *)
  let func_addr = Hashtbl.create 16 in
  let func_size = Hashtbl.create 16 in
  let func_labels = Hashtbl.create 16 in
  List.iter
    (fun (f, start, size, labels) ->
      Hashtbl.add func_addr f.fname start;
      Hashtbl.add func_size f.fname size;
      Hashtbl.add func_labels f.fname labels)
    (init_layout @ text_layout @ fini_layout);
  let data_addr = Hashtbl.create 16 in
  List.iter
    (fun (d, start, _) -> Hashtbl.add data_addr d.dname start)
    (rodata_layout @ data_layout);
  let plt_addr = Hashtbl.create 8 in
  List.iteri
    (fun i s -> Hashtbl.add plt_addr s (plt_start + (i * plt_entry_size)))
    plt_imports;
  let got_slot_addr = Hashtbl.create 8 in
  List.iteri (fun i s -> Hashtbl.add got_slot_addr s (got_start + (4 * i))) got_syms;

  let lookup tbl what k =
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None -> err "module %s: unknown %s %s" name what k
  in
  let env_for fname =
    let labels = lookup func_labels "function" fname in
    let resolve = function
      | Rlabel l -> (
        match Hashtbl.find_opt labels l with
        | Some a -> a
        | None -> err "%s/%s: unknown label %s" name fname l)
      | Rfunc f -> lookup func_addr "function" f
      | Rdata d -> lookup data_addr "data object" d
      | Rimport s -> lookup plt_addr "PLT import" s
      | Raddr a -> a
    in
    let got_slot s = lookup got_slot_addr "GOT import" s in
    { Sinsn.resolve; got_slot }
  in

  (* ---- PIC legality checks ---- *)
  let check_pic_insn fname i =
    if not pic then ()
    else
      let bad_operand = function
        | Saddr (Rimport _) | Saddr (Raddr _) | Sreg _ | Simm _ -> ()
        (* &import resolves to the PLT stub; harmless because the stub
           address is produced via the GOT in real PIC — we model the
           result, not the sequence.  Raw addresses are the caller's
           business (used for syscall-returned regions). *)
        | Saddr (Rlabel _ | Rfunc _ | Rdata _) ->
          err "%s/%s: absolute address of local symbol in PIC code" name fname
      in
      let bad_mem (m : smem) =
        match (m.sdisp, m.sbase) with
        | (Daddr (Rlabel _ | Rfunc _ | Rdata _) | Dgot _), Some SBpc -> ()
        | (Daddr (Rlabel _ | Rfunc _ | Rdata _) | Dgot _), _ ->
          err "%s/%s: absolute data reference in PIC code" name fname
        | (Dconst _ | Daddr (Rimport _ | Raddr _)), _ -> ()
      in
      match i with
      | Smov (_, o) | Sbinop (_, _, o) | Scmp (_, o) | Stest (_, o) | Spush o ->
        bad_operand o
      | Slea (_, m) | Sload (_, _, m) | Sjmp_ind_m m | Scall_ind_m m -> bad_mem m
      | Sstore (_, m, o) ->
        bad_mem m;
        bad_operand o
      | Snop | Shalt | Sret | Ssyscall _ | Sload_canary _ | Sneg _ | Snot _
      | Spop _ | Sjmp_ind_r _ | Scall_ind_r _ | Sjmp _ | Sjcc _ | Scall _ ->
        ()
  in

  (* ---- encoding ---- *)
  let relocs = ref [] in
  let add_reloc r = relocs := r :: !relocs in

  let encode_funcs start layout =
    let buf = Buffer.create 1024 in
    let truth = ref [] in
    let pos () = start + Buffer.length buf in
    List.iter
      (fun (f, fstart, _, _) ->
        while pos () < fstart do
          Buffer.add_char buf '\x00'
        done;
        let env = env_for f.fname in
        List.iter
          (fun it ->
            let at = pos () in
            match it with
            | L _ -> ()
            | I si ->
              check_pic_insn f.fname si;
              let insn = Sinsn.concretize env ~at si in
              Encode.to_buffer buf ~at insn;
              truth := (at, Encode.length insn) :: !truth
            | Bytes s -> Buffer.add_string buf s
            | Inline_table labels ->
              List.iter
                (fun l ->
                  let target = env.resolve (Rlabel l) in
                  Buffer.add_string buf (u32_string target);
                  if pic then
                    add_reloc (Reloc.relative ~offset:(pos () - 4) target))
                labels)
          f.body)
      layout;
    (Buffer.contents buf, List.rev !truth)
  in

  let init_bytes, init_truth = encode_funcs init_start init_layout in
  let text_bytes, text_truth = encode_funcs text_start text_layout in
  let fini_bytes, fini_truth = encode_funcs fini_start fini_layout in

  (* PLT section bytes. *)
  let plt_bytes =
    let buf = Buffer.create 64 in
    List.iteri
      (fun i sym ->
        let stub = plt_start + (i * plt_entry_size) in
        let got_of s = lookup got_slot_addr "GOT import" s in
        let emit at si =
          let env = { Sinsn.resolve = (fun _ -> assert false); got_slot = got_of } in
          Encode.to_buffer buf ~at (Sinsn.concretize env ~at si)
        in
        let pcrel_got s = { sbase = Some SBpc; sindex = None; sscale = 1; sdisp = Dgot s } in
        emit stub (Sjmp_ind_m (pcrel_got sym));
        assert (Buffer.length buf = (i * plt_entry_size) + plt_lazy_offset);
        emit (stub + plt_lazy_offset) (Spush (Simm i));
        emit (stub + plt_lazy_offset + 5) (Sjmp_ind_m (pcrel_got resolver_sym));
        while Buffer.length buf < (i + 1) * plt_entry_size do
          Buffer.add_char buf '\x00'
        done)
      plt_imports;
    Buffer.contents buf
  in
  let plt_truth =
    List.concat
      (List.mapi
         (fun i _ ->
           let stub = plt_start + (i * plt_entry_size) in
           [ (stub, 6); (stub + 6, 5); (stub + 11, 6) ])
         plt_imports)
  in

  (* Data sections. *)
  let encode_datas start layout =
    let buf = Buffer.create 256 in
    let pos () = start + Buffer.length buf in
    List.iter
      (fun (d, dstart, _) ->
        while pos () < dstart do
          Buffer.add_char buf '\x00'
        done;
        List.iter
          (fun di ->
            match di with
            | Dbytes s -> Buffer.add_string buf s
            | Dword32 v -> Buffer.add_string buf (u32_string v)
            | Dspace n -> Buffer.add_string buf (String.make n '\x00')
            | Dfuncptr f ->
              let a = lookup func_addr "function" f in
              if pic then add_reloc (Reloc.relative ~offset:(pos ()) a);
              Buffer.add_string buf (u32_string a)
            | Ddataptr dn ->
              let a = lookup data_addr "data object" dn in
              if pic then add_reloc (Reloc.relative ~offset:(pos ()) a);
              Buffer.add_string buf (u32_string a)
            | Dlabelptr (f, l) ->
              let labels = lookup func_labels "function" f in
              let a =
                match Hashtbl.find_opt labels l with
                | Some a -> a
                | None -> err "%s: unknown label %s in %s" name l f
              in
              if pic then add_reloc (Reloc.relative ~offset:(pos ()) a);
              Buffer.add_string buf (u32_string a)
            | Dimportptr s ->
              add_reloc (Reloc.got ~offset:(pos ()) s);
              Buffer.add_string buf (u32_string 0))
          d.init)
      layout;
    Buffer.contents buf
  in
  let rodata_bytes = encode_datas rodata_start rodata_layout in
  let data_bytes = encode_datas data_start data_layout in

  (* GOT: zero-initialized; eager (non-PLT) imports get Rel_got relocs.
     Lazy slots are initialized by the loader from the import records. *)
  let got_bytes = String.make (got_end - got_start) '\x00' in
  List.iter
    (fun s ->
      if not (List.mem s plt_imports) && not (String.equal s resolver_sym) then
        add_reloc (Reloc.got ~offset:(Hashtbl.find got_slot_addr s) s))
    got_syms;
  if has_imports then
    add_reloc (Reloc.got ~offset:(Hashtbl.find got_slot_addr resolver_sym) resolver_sym);

  (* ---- assemble the module record ---- *)
  let sections =
    let mk name vaddr data is_code truth =
      if String.length data = 0 then None
      else Some (Section.make ~truth_code_ranges:truth ~name ~vaddr ~is_code data)
    in
    List.filter_map Fun.id
      [
        mk ".init" init_start init_bytes true init_truth;
        mk ".plt" plt_start plt_bytes true plt_truth;
        mk ".text" text_start text_bytes true text_truth;
        mk ".fini" fini_start fini_bytes true fini_truth;
        mk ".rodata" rodata_start rodata_bytes false [];
        mk ".data" data_start data_bytes false [];
        mk ".got" got_start got_bytes false [];
      ]
  in
  ignore init_end;
  ignore plt_end;
  ignore text_end;
  ignore fini_end;
  ignore rodata_end;
  ignore data_end;
  let symbols =
    List.map
      (fun f ->
        Symbol.make ~size:(Hashtbl.find func_size f.fname) ~exported:f.exported
          ~kind:Symbol.Func ~name:f.fname
          (Hashtbl.find func_addr f.fname))
      all_funcs
    @ List.concat
        (List.mapi
           (fun i s ->
             let stub = plt_start + (i * plt_entry_size) in
             [
               Symbol.make ~size:plt_entry_size ~kind:Symbol.Func
                 ~name:(s ^ "@plt") stub;
               Symbol.make
                 ~size:(plt_entry_size - plt_lazy_offset)
                 ~kind:Symbol.Func
                 ~name:(s ^ "@plt.lazy")
                 (stub + plt_lazy_offset);
             ])
           plt_imports)
    @ List.map
        (fun (d, start, size) ->
          Symbol.make ~size ~exported:d.dexported ~kind:Symbol.Object
            ~name:d.dname start)
        (rodata_layout @ data_layout)
  in
  let imports =
    List.map
      (fun s ->
        {
          Objfile.imp_sym = s;
          imp_got = Hashtbl.find got_slot_addr s;
          imp_plt = Hashtbl.find_opt plt_addr s;
        })
      got_syms
  in
  let exports =
    List.filter_map (fun f -> if f.exported then Some f.fname else None) all_funcs
    @ List.filter_map (fun d -> if d.dexported then Some d.dname else None) datas
  in
  let deps =
    let deps = if has_imports && not (String.equal name ld_so_name) then deps @ [ ld_so_name ] else deps in
    List.sort_uniq compare deps
  in
  let entry =
    match entry with
    | None -> None
    | Some e -> Some (lookup func_addr "entry function" e)
  in
  {
    Objfile.name;
    kind;
    sections;
    symbols;
    symtab_level;
    relocs = List.rev !relocs;
    imports;
    exports;
    deps;
    entry;
    features;
  }

module Dsl = struct
  let nop = I Snop
  let halt = I Shalt
  let ret = I Sret
  let label l = L l
  let mov rd rs = I (Smov (rd, Sreg rs))
  let movi rd v = I (Smov (rd, Simm v))

  let addr_of_func ~pic rd f =
    if pic then
      I (Slea (rd, { sbase = Some SBpc; sindex = None; sscale = 1; sdisp = Daddr (Rfunc f) }))
    else I (Smov (rd, Saddr (Rfunc f)))

  let addr_of_data ~pic rd d =
    if pic then
      I (Slea (rd, { sbase = Some SBpc; sindex = None; sscale = 1; sdisp = Daddr (Rdata d) }))
    else I (Smov (rd, Saddr (Rdata d)))

  let addr_of_label ~pic rd l =
    if pic then
      I (Slea (rd, { sbase = Some SBpc; sindex = None; sscale = 1; sdisp = Daddr (Rlabel l) }))
    else I (Smov (rd, Saddr (Rlabel l)))

  let lea rd m = I (Slea (rd, m))
  let ld rd m = I (Sload (Insn.W4, rd, m))
  let ldb rd m = I (Sload (Insn.W1, rd, m))
  let st m rs = I (Sstore (Insn.W4, m, Sreg rs))
  let stb m rs = I (Sstore (Insn.W1, m, Sreg rs))
  let sti m v = I (Sstore (Insn.W4, m, Simm v))
  let binop op rd rs = I (Sbinop (op, rd, Sreg rs))
  let binopi op rd v = I (Sbinop (op, rd, Simm v))
  let add rd rs = binop Insn.Add rd rs
  let addi rd v = binopi Insn.Add rd v
  let sub rd rs = binop Insn.Sub rd rs
  let subi rd v = binopi Insn.Sub rd v
  let muli rd v = binopi Insn.Mul rd v
  let xor rd rs = binop Insn.Xor rd rs
  let andi rd v = binopi Insn.And rd v
  let shli rd v = binopi Insn.Shl rd v
  let shri rd v = binopi Insn.Shr rd v
  let cmp ra rb = I (Scmp (ra, Sreg rb))
  let cmpi ra v = I (Scmp (ra, Simm v))
  let testi ra v = I (Stest (ra, Simm v))
  let push r = I (Spush (Sreg r))
  let pushi v = I (Spush (Simm v))
  let pop r = I (Spop r)
  let jmp l = I (Sjmp (Rlabel l))
  let jcc c l = I (Sjcc (c, Rlabel l))
  let call f = I (Scall (Rfunc f))
  let call_import f = I (Scall (Rimport f))
  let call_reg r = I (Scall_ind_r r)
  let jmp_reg r = I (Sjmp_ind_r r)
  let syscall n = I (Ssyscall n)
  let load_canary r = I (Sload_canary r)

  let mem_b ?(disp = 0) r =
    { sbase = Some (SBreg r); sindex = None; sscale = 1; sdisp = Dconst disp }

  let mem_bi ?(disp = 0) ?(scale = 1) b i =
    { sbase = Some (SBreg b); sindex = Some i; sscale = scale; sdisp = Dconst disp }

  let mem_abs_data d =
    { sbase = None; sindex = None; sscale = 1; sdisp = Daddr (Rdata d) }

  let mem_pc_data d =
    { sbase = Some SBpc; sindex = None; sscale = 1; sdisp = Daddr (Rdata d) }

  let mem_got s = { sbase = Some SBpc; sindex = None; sscale = 1; sdisp = Dgot s }
end

module Abi = struct
  open Dsl

  let gen_label =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf ".%s%d" prefix !n

  let frame_enter ?(canary = false) ~locals () =
    if canary && locals < 4 then err "frame_enter: canary needs >= 4 local bytes";
    [ push Reg.fp; mov Reg.fp Reg.sp; binopi Insn.Sub Reg.sp locals ]
    @
    if canary then
      [
        load_canary Reg.r5;
        st (mem_b ~disp:(-4) Reg.fp) Reg.r5;
        xor Reg.r5 Reg.r5;
      ]
    else []

  let frame_leave ?(canary = false) ~locals () =
    ignore locals;
    (if canary then
       let ok = gen_label "canary_ok" in
       [
         load_canary Reg.r5;
         ld Reg.r4 (mem_b ~disp:(-4) Reg.fp);
         cmp Reg.r4 Reg.r5;
         jcc Insn.Eq ok;
         I (Scall (Rimport "__stack_chk_fail"));
         label ok;
       ]
     else [])
    @ [ mov Reg.sp Reg.fp; pop Reg.fp; ret ]

  let local locals i = mem_b ~disp:(-locals + (4 * i)) Reg.fp
end
