(** Symbolic (pre-layout) instructions.

    [Sinsn.t] mirrors {!Jt_isa.Insn.t} but lets 32-bit fields refer to
    symbols whose addresses are only known after section layout.  Every
    symbolic instruction has the same encoded length as its concrete
    counterpart, so layout can proceed before resolution. *)

open Jt_isa

(** A symbolic reference. *)
type ref_ =
  | Rlabel of string  (** label in the current function *)
  | Rfunc of string  (** function defined in the current module *)
  | Rdata of string  (** data object defined in the current module *)
  | Rimport of string  (** imported symbol (via PLT for transfers) *)
  | Raddr of int  (** already-absolute address *)

type sdisp =
  | Dconst of int
  | Daddr of ref_  (** absolute address of the referent; if the base is
                       [SBpc] the encoder converts it to a PC-relative
                       displacement *)
  | Dgot of string  (** address of the GOT slot of an imported symbol *)

type sbase = SBreg of Reg.t | SBpc

type smem = {
  sbase : sbase option;
  sindex : Reg.t option;
  sscale : int;
  sdisp : sdisp;
}

type soperand = Sreg of Reg.t | Simm of int | Saddr of ref_

type t =
  | Snop
  | Shalt
  | Sret
  | Ssyscall of int
  | Sload_canary of Reg.t
  | Smov of Reg.t * soperand
  | Slea of Reg.t * smem
  | Sload of Insn.width * Reg.t * smem
  | Sstore of Insn.width * smem * soperand
  | Sbinop of Insn.binop * Reg.t * soperand
  | Sneg of Reg.t
  | Snot of Reg.t
  | Scmp of Reg.t * soperand
  | Stest of Reg.t * soperand
  | Spush of soperand
  | Spop of Reg.t
  | Sjmp of ref_
  | Sjcc of Insn.cond * ref_
  | Sjmp_ind_r of Reg.t
  | Sjmp_ind_m of smem
  | Scall of ref_
  | Scall_ind_r of Reg.t
  | Scall_ind_m of smem

val length : t -> int
(** Encoded length (same as the concrete instruction's). *)

type env = {
  resolve : ref_ -> int;
      (** Absolute link-time address of a referent.  For [Rimport] used in
          a control transfer this is the PLT stub address. *)
  got_slot : string -> int;  (** link-time address of an import's GOT slot *)
}

val concretize : env -> at:int -> t -> Insn.t
(** Resolve all symbolic fields, producing the concrete instruction to be
    encoded at address [at].
    @raise Failure on unresolvable references or PIC-illegal forms. *)
