open Jt_isa

type ref_ =
  | Rlabel of string
  | Rfunc of string
  | Rdata of string
  | Rimport of string
  | Raddr of int

type sdisp = Dconst of int | Daddr of ref_ | Dgot of string

type sbase = SBreg of Reg.t | SBpc

type smem = {
  sbase : sbase option;
  sindex : Reg.t option;
  sscale : int;
  sdisp : sdisp;
}

type soperand = Sreg of Reg.t | Simm of int | Saddr of ref_

type t =
  | Snop
  | Shalt
  | Sret
  | Ssyscall of int
  | Sload_canary of Reg.t
  | Smov of Reg.t * soperand
  | Slea of Reg.t * smem
  | Sload of Insn.width * Reg.t * smem
  | Sstore of Insn.width * smem * soperand
  | Sbinop of Insn.binop * Reg.t * soperand
  | Sneg of Reg.t
  | Snot of Reg.t
  | Scmp of Reg.t * soperand
  | Stest of Reg.t * soperand
  | Spush of soperand
  | Spop of Reg.t
  | Sjmp of ref_
  | Sjcc of Insn.cond * ref_
  | Sjmp_ind_r of Reg.t
  | Sjmp_ind_m of smem
  | Scall of ref_
  | Scall_ind_r of Reg.t
  | Scall_ind_m of smem

(* Build a concrete skeleton with dummy addresses: symbolic fields always
   occupy a full 32-bit slot, so the skeleton's length is the final
   length. *)
let skeleton_mem (m : smem) : Insn.mem =
  {
    base =
      (match m.sbase with
      | Some (SBreg r) -> Some (Insn.Breg r)
      | Some SBpc -> Some Insn.Bpc
      | None -> None);
    index = m.sindex;
    scale = m.sscale;
    disp = 0;
  }

let skeleton_operand = function
  | Sreg r -> Insn.Reg r
  | Simm _ | Saddr _ -> Insn.Imm 0

let skeleton : t -> Insn.t = function
  | Snop -> Nop
  | Shalt -> Halt
  | Sret -> Ret
  | Ssyscall n -> Syscall n
  | Sload_canary r -> Load_canary r
  | Smov (rd, s) -> Mov (rd, skeleton_operand s)
  | Slea (rd, m) -> Lea (rd, skeleton_mem m)
  | Sload (w, rd, m) -> Load (w, rd, skeleton_mem m)
  | Sstore (w, m, s) -> Store (w, skeleton_mem m, skeleton_operand s)
  | Sbinop (op, rd, s) -> Binop (op, rd, skeleton_operand s)
  | Sneg r -> Neg r
  | Snot r -> Not r
  | Scmp (r, s) -> Cmp (r, skeleton_operand s)
  | Stest (r, s) -> Test (r, skeleton_operand s)
  | Spush s -> Push (skeleton_operand s)
  | Spop r -> Pop r
  | Sjmp _ -> Jmp 0
  | Sjcc (c, _) -> Jcc (c, 0)
  | Sjmp_ind_r r -> Insn.jmp_ind_reg r
  | Sjmp_ind_m m -> Insn.jmp_ind_mem (skeleton_mem m)
  | Scall _ -> Call 0
  | Scall_ind_r r -> Insn.call_ind_reg r
  | Scall_ind_m m -> Insn.call_ind_mem (skeleton_mem m)

let length i = Encode.length (skeleton i)

type env = { resolve : ref_ -> int; got_slot : string -> int }

let concretize env ~at i =
  let len = length i in
  let operand = function
    | Sreg r -> Insn.Reg r
    | Simm v -> Insn.Imm (Word.of_int v)
    | Saddr r -> Insn.Imm (Word.of_int (env.resolve r))
  in
  let mem (m : smem) : Insn.mem =
    let abs =
      match m.sdisp with
      | Dconst v -> Word.of_int v
      | Daddr r -> Word.of_int (env.resolve r)
      | Dgot s -> Word.of_int (env.got_slot s)
    in
    let base, disp =
      match m.sbase with
      | Some SBpc ->
        (* PC-relative: the stored displacement is relative to the end of
           the instruction. *)
        (Some Insn.Bpc, Word.sub abs (Word.of_int (at + len)))
      | Some (SBreg r) -> (Some (Insn.Breg r), abs)
      | None -> (None, abs)
    in
    { base; index = m.sindex; scale = m.sscale; disp }
  in
  let target r = Word.of_int (env.resolve r) in
  match i with
  | Snop -> Insn.Nop
  | Shalt -> Halt
  | Sret -> Ret
  | Ssyscall n -> Syscall n
  | Sload_canary r -> Load_canary r
  | Smov (rd, s) -> Mov (rd, operand s)
  | Slea (rd, m) -> Lea (rd, mem m)
  | Sload (w, rd, m) -> Load (w, rd, mem m)
  | Sstore (w, m, s) -> Store (w, mem m, operand s)
  | Sbinop (op, rd, s) -> Binop (op, rd, operand s)
  | Sneg r -> Neg r
  | Snot r -> Not r
  | Scmp (r, s) -> Cmp (r, operand s)
  | Stest (r, s) -> Test (r, operand s)
  | Spush s -> Push (operand s)
  | Spop r -> Pop r
  | Sjmp r -> Jmp (target r)
  | Sjcc (c, r) -> Jcc (c, target r)
  | Sjmp_ind_r r -> Insn.jmp_ind_reg r
  | Sjmp_ind_m m -> Insn.jmp_ind_mem (mem m)
  | Scall r -> Call (target r)
  | Scall_ind_r r -> Insn.call_ind_reg r
  | Scall_ind_m m -> Insn.call_ind_mem (mem m)
