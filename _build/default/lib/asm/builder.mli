(** Module assembly and linking.

    Turns symbolic functions and data definitions into a laid-out JELF
    module: assigns section addresses ([.init], [.plt], [.text], [.fini],
    [.rodata], [.data], [.got]), synthesizes lazy-binding PLT stubs and GOT
    slots for imports, resolves labels, emits relocations for PIC modules,
    and produces the symbol table. *)

open Jt_isa

type item =
  | I of Sinsn.t
  | L of string  (** label definition *)
  | Bytes of string  (** raw data embedded in the code stream *)
  | Inline_table of string list
      (** jump table embedded in the code stream: one 32-bit slot per
          label of the current function (classic data-in-code) *)

type func = {
  fname : string;
  exported : bool;
  body : item list;
}

type dinit =
  | Dbytes of string
  | Dword32 of int
  | Dfuncptr of string  (** address of a function of this module *)
  | Ddataptr of string  (** address of a data object of this module *)
  | Dlabelptr of string * string  (** address of (function, label) *)
  | Dimportptr of string  (** loader-resolved address of an import *)
  | Dspace of int  (** zero fill *)

type data = {
  dname : string;
  dexported : bool;
  ro : bool;  (** place in [.rodata] instead of [.data] *)
  init : dinit list;
}

val func : ?exported:bool -> string -> item list -> func
val data : ?exported:bool -> ?ro:bool -> string -> dinit list -> data

exception Asm_error of string

val build :
  name:string ->
  kind:Jt_obj.Objfile.kind ->
  ?symtab_level:Jt_obj.Objfile.symtab_level ->
  ?features:Jt_obj.Objfile.feature list ->
  ?deps:string list ->
  ?entry:string ->
  ?init_funcs:func list ->
  ?fini_funcs:func list ->
  ?datas:data list ->
  func list ->
  Jt_obj.Objfile.t
(** [build ~name ~kind funcs] assembles a module.

    Imports are inferred: any [Rimport] reference creates a GOT slot, and
    [Rimport]s used as control-transfer targets additionally get a lazy
    PLT stub (two hidden symbols, ["sym@plt"] and ["sym@plt.lazy"], mark
    each stub).  GOT slot 0 is reserved for the run-time lazy-binding
    resolver ([__dl_resolve], exported by the ["ld.so"] module, which is
    appended to [deps] automatically when stubs exist).

    Position-independent modules reject absolute address materialization
    ([Saddr]/absolute-disp references to local symbols outside
    PC-relative addressing are turned into load-time [Rel_local]
    relocations when they appear in data, and are an error in code).

    @raise Asm_error on duplicate/unknown labels or PIC violations. *)

(** {1 Convenience instruction constructors} *)
module Dsl : sig
  open Sinsn

  val nop : item
  val halt : item
  val ret : item
  val label : string -> item
  val mov : Reg.t -> Reg.t -> item
  val movi : Reg.t -> int -> item
  val addr_of_func : pic:bool -> Reg.t -> string -> item
  (** Materialize a function address: absolute immediate for non-PIC,
      PC-relative [lea] for PIC. *)

  val addr_of_data : pic:bool -> Reg.t -> string -> item
  val addr_of_label : pic:bool -> Reg.t -> string -> item
  val lea : Reg.t -> smem -> item
  val ld : Reg.t -> smem -> item
  val ldb : Reg.t -> smem -> item
  val st : smem -> Reg.t -> item
  val stb : smem -> Reg.t -> item
  val sti : smem -> int -> item
  val binop : Insn.binop -> Reg.t -> Reg.t -> item
  val binopi : Insn.binop -> Reg.t -> int -> item
  val add : Reg.t -> Reg.t -> item
  val addi : Reg.t -> int -> item
  val sub : Reg.t -> Reg.t -> item
  val subi : Reg.t -> int -> item
  val muli : Reg.t -> int -> item
  val xor : Reg.t -> Reg.t -> item
  val andi : Reg.t -> int -> item
  val shli : Reg.t -> int -> item
  val shri : Reg.t -> int -> item
  val cmp : Reg.t -> Reg.t -> item
  val cmpi : Reg.t -> int -> item
  val testi : Reg.t -> int -> item
  val push : Reg.t -> item
  val pushi : int -> item
  val pop : Reg.t -> item
  val jmp : string -> item
  val jcc : Insn.cond -> string -> item
  val call : string -> item
  (** Call a function of the same module. *)

  val call_import : string -> item
  (** Call through the PLT. *)

  val call_reg : Reg.t -> item
  val jmp_reg : Reg.t -> item
  val syscall : int -> item
  val load_canary : Reg.t -> item

  val mem_b : ?disp:int -> Reg.t -> smem
  (** [base + disp] *)

  val mem_bi : ?disp:int -> ?scale:int -> Reg.t -> Reg.t -> smem
  val mem_abs_data : string -> smem
  (** Absolute reference to a data object (non-PIC only in code). *)

  val mem_pc_data : string -> smem
  (** PC-relative reference to a data object (PIC-safe). *)

  val mem_got : string -> smem
  (** PC-relative reference to an import's GOT slot. *)
end

(** {1 ABI helpers} *)
module Abi : sig
  val frame_enter : ?canary:bool -> locals:int -> unit -> item list
  (** Standard prologue: save [fp], establish frame, reserve [locals]
      bytes, and (optionally) store the stack canary in the slot at
      [fp - 4] using the pattern of Figure 6. *)

  val frame_leave : ?canary:bool -> locals:int -> unit -> item list
  (** Standard epilogue; with [canary], verifies the canary slot and
      calls the imported [__stack_chk_fail] on mismatch. *)

  val local : int -> int -> Sinsn.smem
  (** [local locals i]: the [i]-th 4-byte local slot, counting from 0
      upward, in a frame created with [frame_enter ~locals].  Slot 0 is
      at [fp - locals]; the canary, when present, lives at [fp - 4]. *)
end
