lib/asm/sinsn.ml: Encode Insn Jt_isa Reg Word
