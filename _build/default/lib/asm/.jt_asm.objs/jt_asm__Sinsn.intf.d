lib/asm/sinsn.mli: Insn Jt_isa Reg
