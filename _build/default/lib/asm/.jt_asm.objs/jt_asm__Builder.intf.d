lib/asm/builder.mli: Insn Jt_isa Jt_obj Reg Sinsn
