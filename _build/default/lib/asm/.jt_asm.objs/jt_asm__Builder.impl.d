lib/asm/builder.ml: Buffer Bytes Char Encode Format Fun Hashtbl Insn Jt_isa Jt_obj List Objfile Printf Reg Reloc Section Sinsn String Symbol
