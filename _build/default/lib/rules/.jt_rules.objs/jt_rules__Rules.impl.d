lib/rules/rules.ml: Array Buffer Char Hashtbl List Option String
