lib/rules/rules.mli:
