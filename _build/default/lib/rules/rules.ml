type t = { rule_id : int; bb : int; insn : int; data : int array }

let no_op = 0

let make ~id ~bb ~insn ?(data = []) () =
  if List.length data > 4 then invalid_arg "Rules.make: at most 4 data words";
  { rule_id = id; bb; insn; data = Array.of_list data }

type file = { rf_module : string; rf_rules : t list }

let magic = "JTRR"

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u16 b v =
  u8 b v;
  u8 b (v lsr 8)

let u32 b v =
  u16 b v;
  u16 b (v lsr 16)

let encode_file f =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  u16 b (String.length f.rf_module);
  Buffer.add_string b f.rf_module;
  u32 b (List.length f.rf_rules);
  List.iter
    (fun r ->
      u16 b r.rule_id;
      u32 b r.bb;
      u32 b r.insn;
      u8 b (Array.length r.data);
      Array.iter (fun d -> u32 b d) r.data)
    f.rf_rules;
  Buffer.contents b

let decode_file s =
  let pos = ref 0 in
  let fail why = failwith ("Rules.decode_file: " ^ why) in
  let byte () =
    if !pos >= String.length s then fail "truncated";
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let r16 () =
    let a = byte () in
    a lor (byte () lsl 8)
  in
  let r32 () =
    let a = r16 () in
    a lor (r16 () lsl 16)
  in
  if String.length s < 4 || String.sub s 0 4 <> magic then fail "bad magic";
  pos := 4;
  let nlen = r16 () in
  if !pos + nlen > String.length s then fail "bad name";
  let name = String.sub s !pos nlen in
  pos := !pos + nlen;
  let count = r32 () in
  let rules = ref [] in
  for _ = 1 to count do
    let id = r16 () in
    let bb = r32 () in
    let insn = r32 () in
    let nd = byte () in
    if nd > 4 then fail "too many data words";
    let data = Array.init nd (fun _ -> r32 ()) in
    rules := { rule_id = id; bb; insn; data } :: !rules
  done;
  { rf_module = name; rf_rules = List.rev !rules }

module Table = struct
  type rule = t

  type nonrec t = {
    bbs : (int, unit) Hashtbl.t;
    by_insn : (int, rule list) Hashtbl.t;
    count : int;
  }

  let load f ~base ~pic =
    let adj a = if pic then a + base else a in
    let bbs = Hashtbl.create 256 in
    let by_insn = Hashtbl.create 256 in
    List.iter
      (fun r ->
        let r = { r with bb = adj r.bb; insn = adj r.insn } in
        Hashtbl.replace bbs r.bb ();
        if r.rule_id <> no_op then
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_insn r.insn) in
          Hashtbl.replace by_insn r.insn (prev @ [ r ]))
      f.rf_rules;
    { bbs; by_insn; count = List.length f.rf_rules }

  let bb_seen t a = Hashtbl.mem t.bbs a
  let at_insn t a = Option.value ~default:[] (Hashtbl.find_opt t.by_insn a)
  let size t = t.count
end
