open Jt_isa

type block = { bb_addr : int; insns : (int * Insn.t * int) array }

type meta = { m_cost : int; m_action : (Jt_vm.Vm.t -> unit) option }

type plan = meta list array

let no_plan b = Array.make (Array.length b.insns) []

type provenance = Static_rules | Dynamic_only

type client = {
  cl_name : string;
  cl_on_block :
    Jt_vm.Vm.t -> block -> provenance -> rules_at:(int -> Jt_rules.Rules.t list) -> plan;
}

type profile = {
  p_name : string;
  p_translate_block : int;
  p_translate_insn : int;
  p_indirect : int;
  p_per_block : int;
}

let dynamorio =
  {
    p_name = "dynamorio";
    p_translate_block = Jt_vm.Cost.dbt_translate_block;
    p_translate_insn = Jt_vm.Cost.dbt_translate_insn;
    p_indirect = Jt_vm.Cost.dbt_indirect_lookup;
    p_per_block = 0;
  }

let lightweight =
  {
    p_name = "lightweight";
    p_translate_block = 30;
    p_translate_insn = 6;
    p_indirect = Jt_vm.Cost.lockdown_indirect;
    p_per_block = Jt_vm.Cost.lockdown_per_block;
  }

type stats = {
  mutable st_blocks_static : int;
  mutable st_blocks_dynamic : int;
  mutable st_block_execs : int;
  mutable st_indirects : int;
  mutable st_rules_applied : int;
}

type cached = {
  cb : block;
  cb_plan : plan;
  cb_indirect_end : bool;
}

type t = {
  vm : Jt_vm.Vm.t;
  profile : profile;
  client : client option;
  cache : (int, cached) Hashtbl.t;
  (* Per-module rewrite-rule hash tables (Figure 5), consulted through an
     address-range module lookup. *)
  mutable tables : (Jt_loader.Loader.loaded * Jt_rules.Rules.Table.t) list;
  stats : stats;
}

let max_block_insns = 256

let create ~vm ?(profile = dynamorio) ?client
    ?(rules_for = fun _ -> None) () =
  let t =
    {
      vm;
      profile;
      client;
      cache = Hashtbl.create 4096;
      tables = [];
      stats =
        {
          st_blocks_static = 0;
          st_blocks_dynamic = 0;
          st_block_execs = 0;
          st_indirects = 0;
          st_rules_applied = 0;
        };
    }
  in
  (* (1) in Figure 4: when a module is loaded, read its rewrite rules into
     a fresh hash table, adjusting addresses by the load base for PIC. *)
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
      match rules_for l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name with
      | None -> ()
      | Some file ->
        let table =
          Jt_rules.Rules.Table.load file ~base:l.Jt_loader.Loader.base
            ~pic:(Jt_obj.Objfile.is_pic l.Jt_loader.Loader.lmod)
        in
        t.tables <- (l, table) :: t.tables);
  (* Cache-flush syscalls (JIT regeneration) invalidate affected blocks. *)
  Jt_vm.Vm.on_cache_flush vm (fun start len ->
      let doomed =
        Hashtbl.fold
          (fun a (c : cached) acc ->
            let last =
              if Array.length c.cb.insns = 0 then a
              else
                let la, _, ll = c.cb.insns.(Array.length c.cb.insns - 1) in
                la + ll
            in
            if last > start && a < start + len then a :: acc else acc)
          t.cache []
      in
      List.iter (Hashtbl.remove t.cache) doomed);
  t

let table_for t addr =
  List.find_opt (fun (l, _) -> Jt_loader.Loader.contains l addr) t.tables
  |> Option.map snd

let is_indirect_end (b : block) =
  if Array.length b.insns = 0 then false
  else
    let _, i, _ = b.insns.(Array.length b.insns - 1) in
    match Insn.cti_kind i with
    | Some (Insn.Cti_jmp_ind | Insn.Cti_call_ind | Insn.Cti_ret) -> true
    | Some (Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_call _ | Insn.Cti_halt | Insn.Cti_syscall)
    | None ->
      false

(* Build the dynamic basic block starting at [addr]: decode until a
   control-transfer instruction (step (2) in Figure 4). *)
let build_block t addr =
  let insns = ref [] in
  let n = ref 0 in
  let pc = ref addr in
  let stop = ref false in
  while not !stop do
    match Jt_vm.Vm.fetch t.vm !pc with
    | None -> stop := true
    | Some (i, len) ->
      insns := (!pc, i, len) :: !insns;
      incr n;
      pc := !pc + len;
      if Insn.ends_block i || !n >= max_block_insns then stop := true
  done;
  { bb_addr = addr; insns = Array.of_list (List.rev !insns) }

(* Translate: classify the block against the rule tables ((3a)/(3b) in
   Figure 4) and let the client build its instrumentation plan. *)
let translate t addr =
  let b = build_block t addr in
  t.vm.Jt_vm.Vm.cycles <-
    t.vm.Jt_vm.Vm.cycles + t.profile.p_translate_block
    + (t.profile.p_translate_insn * Array.length b.insns);
  let table = table_for t addr in
  let static_hit =
    match table with
    | Some tbl -> Jt_rules.Rules.Table.bb_seen tbl addr
    | None -> false
  in
  if static_hit then t.stats.st_blocks_static <- t.stats.st_blocks_static + 1
  else t.stats.st_blocks_dynamic <- t.stats.st_blocks_dynamic + 1;
  let plan =
    match t.client with
    | None -> no_plan b
    | Some cl ->
      let rules_at =
        match (static_hit, table) with
        | true, Some tbl ->
          fun a ->
            let rs = Jt_rules.Rules.Table.at_insn tbl a in
            t.stats.st_rules_applied <- t.stats.st_rules_applied + List.length rs;
            rs
        | _ -> fun _ -> []
      in
      cl.cl_on_block t.vm b
        (if static_hit then Static_rules else Dynamic_only)
        ~rules_at
  in
  let cached = { cb = b; cb_plan = plan; cb_indirect_end = is_indirect_end b } in
  Hashtbl.replace t.cache addr cached;
  cached

let exec_block t (c : cached) =
  let vm = t.vm in
  t.stats.st_block_execs <- t.stats.st_block_execs + 1;
  if t.profile.p_per_block > 0 then Jt_vm.Vm.charge vm t.profile.p_per_block;
  let n = Array.length c.cb.insns in
  let k = ref 0 in
  while !k < n && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running do
    let at, i, len = c.cb.insns.(!k) in
    List.iter
      (fun m ->
        Jt_vm.Vm.charge vm m.m_cost;
        match m.m_action with Some f -> f vm | None -> ())
      c.cb_plan.(!k);
    Jt_vm.Vm.step_decoded vm ~at i len;
    incr k
  done;
  if c.cb_indirect_end && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then begin
    Jt_vm.Vm.charge vm t.profile.p_indirect;
    t.stats.st_indirects <- t.stats.st_indirects + 1
  end

let run ?(fuel = 200_000_000) t =
  let vm = t.vm in
  let budget = vm.Jt_vm.Vm.icount + fuel in
  (try
     while vm.Jt_vm.Vm.status = Jt_vm.Vm.Running do
       if vm.Jt_vm.Vm.icount >= budget then
         vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
       else if vm.Jt_vm.Vm.pc = Jt_vm.Vm.sentinel then Jt_vm.Vm.advance_phase vm
       else begin
         let pc = vm.Jt_vm.Vm.pc in
         let cached =
           match Hashtbl.find_opt t.cache pc with
           | Some c -> c
           | None -> translate t pc
         in
         if Array.length cached.cb.insns = 0 then
           vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault pc)
         else exec_block t cached
       end
     done
   with Jt_vm.Vm.Security_abort why -> vm.Jt_vm.Vm.status <- Jt_vm.Vm.Aborted why)

let stats t = t.stats

let dynamic_block_fraction t =
  let s = t.stats in
  let total = s.st_blocks_static + s.st_blocks_dynamic in
  if total = 0 then 0.0
  else float_of_int s.st_blocks_dynamic /. float_of_int total
