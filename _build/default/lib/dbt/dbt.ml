open Jt_isa

type block = { bb_addr : int; insns : (int * Insn.t * int) array }

type meta = { m_cost : int; m_action : (Jt_vm.Vm.t -> unit) option }

type plan = meta list array

let no_plan b = Array.make (Array.length b.insns) []

type provenance = Static_rules | Dynamic_only

type client = {
  cl_name : string;
  cl_on_block :
    Jt_vm.Vm.t -> block -> provenance -> rules_at:(int -> Jt_rules.Rules.t list) -> plan;
}

type profile = {
  p_name : string;
  p_translate_block : int;
  p_translate_insn : int;
  p_indirect : int;
  p_per_block : int;
}

let dynamorio =
  {
    p_name = "dynamorio";
    p_translate_block = Jt_vm.Cost.dbt_translate_block;
    p_translate_insn = Jt_vm.Cost.dbt_translate_insn;
    p_indirect = Jt_vm.Cost.dbt_indirect_lookup;
    p_per_block = 0;
  }

let lightweight =
  {
    p_name = "lightweight";
    p_translate_block = 30;
    p_translate_insn = 6;
    p_indirect = Jt_vm.Cost.lockdown_indirect;
    p_per_block = Jt_vm.Cost.lockdown_per_block;
  }

type stats = {
  mutable st_blocks_static : int;
  mutable st_blocks_dynamic : int;
  mutable st_block_execs : int;
  mutable st_indirects : int;
  mutable st_rules_applied : int;
  mutable st_chain_hits : int;
  mutable st_dispatch_entries : int;
}

(* A code-cache entry.  Blocks ending in a direct transfer record their
   static successor address(es); once a successor is itself translated,
   the dispatcher installs a chain link so the next execution follows the
   pointer instead of re-probing the hash table.  [cb_valid] is the chain
   severing mechanism: invalidation flips it and every link into a dead
   block is dropped lazily the first time it is followed. *)
type cached = {
  cb : block;
  cb_plan : plan;
  cb_indirect_end : bool;
  cb_end : int;  (* exclusive end of the byte span; bb_addr+1 if empty *)
  cb_succ_taken : int;  (* direct Jmp/Jcc/Call target, -1 if none *)
  cb_succ_fall : int;  (* fallthrough address, -1 if none *)
  mutable cb_link_taken : cached option;
  mutable cb_link_fall : cached option;
  mutable cb_valid : bool;
}

type t = {
  vm : Jt_vm.Vm.t;
  profile : profile;
  client : client option;
  chain : bool;
  cache : (int, cached) Hashtbl.t;
  (* 4KiB-page index over [cache]: every block is registered under each
     page its byte span overlaps, so a range invalidation visits only the
     affected pages instead of folding over the whole code cache. *)
  pages : (int, cached list ref) Hashtbl.t;
  (* Per-module rewrite-rule hash tables (Figure 5), keyed by the owning
     module's load order and reached through the loader's interval-indexed
     [module_at] instead of a linear scan. *)
  tables : (int, Jt_rules.Rules.Table.t) Hashtbl.t;
  stats : stats;
}

let max_block_insns = 256

let page_shift = 12

let index_add t (c : cached) =
  for p = c.cb.bb_addr asr page_shift to (c.cb_end - 1) asr page_shift do
    let b =
      match Hashtbl.find_opt t.pages p with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace t.pages p b;
        b
    in
    b := c :: !b
  done

let index_remove t (c : cached) =
  for p = c.cb.bb_addr asr page_shift to (c.cb_end - 1) asr page_shift do
    match Hashtbl.find_opt t.pages p with
    | Some b -> b := List.filter (fun o -> o != c) !b
    | None -> ()
  done

let invalidate t (c : cached) =
  c.cb_valid <- false;
  c.cb_link_taken <- None;
  c.cb_link_fall <- None;
  (match Hashtbl.find_opt t.cache c.cb.bb_addr with
  | Some cur when cur == c -> Hashtbl.remove t.cache c.cb.bb_addr
  | Some _ | None -> ());
  index_remove t c

(* Invalidate every cached block whose byte span overlaps the flushed
   range; empty (decode-faulting) blocks count as length 1 so a flush
   that covers their address retires them too. *)
let flush_blocks t start len =
  if len > 0 then begin
    let m = Jt_metrics.Metrics.Counters.global in
    for p = start asr page_shift to (start + len - 1) asr page_shift do
      match Hashtbl.find_opt t.pages p with
      | None -> ()
      | Some b ->
        let doomed =
          List.filter
            (fun (c : cached) ->
              m.c_flush_visits <- m.c_flush_visits + 1;
              c.cb_valid && c.cb_end > start && c.cb.bb_addr < start + len)
            !b
        in
        List.iter
          (fun c ->
            m.c_flush_drops <- m.c_flush_drops + 1;
            invalidate t c)
          doomed
    done
  end

let create ~vm ?(profile = dynamorio) ?client ?(chain = true)
    ?(rules_for = fun _ -> None) () =
  let t =
    {
      vm;
      profile;
      client;
      chain;
      cache = Hashtbl.create 4096;
      pages = Hashtbl.create 256;
      tables = Hashtbl.create 8;
      stats =
        {
          st_blocks_static = 0;
          st_blocks_dynamic = 0;
          st_block_execs = 0;
          st_indirects = 0;
          st_rules_applied = 0;
          st_chain_hits = 0;
          st_dispatch_entries = 0;
        };
    }
  in
  (* (1) in Figure 4: when a module is loaded, read its rewrite rules into
     a fresh hash table, adjusting addresses by the load base for PIC. *)
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
      match rules_for l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name with
      | None -> ()
      | Some file ->
        let table =
          Jt_rules.Rules.Table.load file ~base:l.Jt_loader.Loader.base
            ~pic:(Jt_obj.Objfile.is_pic l.Jt_loader.Loader.lmod)
        in
        Hashtbl.replace t.tables l.Jt_loader.Loader.load_order table);
  (* Cache-flush syscalls (JIT regeneration) invalidate affected blocks. *)
  Jt_vm.Vm.on_cache_flush vm (fun start len -> flush_blocks t start len);
  t

let table_for t addr =
  match Jt_loader.Loader.module_at t.vm.Jt_vm.Vm.loader addr with
  | Some l -> Hashtbl.find_opt t.tables l.Jt_loader.Loader.load_order
  | None -> None

let is_indirect_end (b : block) =
  if Array.length b.insns = 0 then false
  else
    let _, i, _ = b.insns.(Array.length b.insns - 1) in
    match Insn.cti_kind i with
    | Some (Insn.Cti_jmp_ind | Insn.Cti_call_ind | Insn.Cti_ret) -> true
    | Some (Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_call _ | Insn.Cti_halt | Insn.Cti_syscall)
    | None ->
      false

(* Build the dynamic basic block starting at [addr]: decode until a
   control-transfer instruction (step (2) in Figure 4). *)
let build_block t addr =
  let insns = ref [] in
  let n = ref 0 in
  let pc = ref addr in
  let stop = ref false in
  while not !stop do
    match Jt_vm.Vm.fetch t.vm !pc with
    | None -> stop := true
    | Some (i, len) ->
      insns := (!pc, i, len) :: !insns;
      incr n;
      pc := !pc + len;
      if Insn.ends_block i || !n >= max_block_insns then stop := true
  done;
  { bb_addr = addr; insns = Array.of_list (List.rev !insns) }

(* Static successors of a block, for chaining: a block ending in a direct
   Jmp/Call has one known successor, a Jcc has two (target and
   fallthrough), and a block cut by the size limit (or by a non-CTI such
   as a syscall) falls through.  Indirect transfers, returns and halts
   have none. *)
let successors (b : block) =
  if Array.length b.insns = 0 then (-1, -1)
  else
    let la, i, ll = b.insns.(Array.length b.insns - 1) in
    match Insn.cti_kind i with
    | Some (Insn.Cti_jmp tgt) -> (tgt, -1)
    | Some (Insn.Cti_jcc (_, tgt)) -> (tgt, la + ll)
    | Some (Insn.Cti_call tgt) -> (tgt, -1)
    | Some (Insn.Cti_jmp_ind | Insn.Cti_call_ind | Insn.Cti_ret | Insn.Cti_halt)
      ->
      (-1, -1)
    | Some Insn.Cti_syscall | None -> (-1, la + ll)

(* Translate: classify the block against the rule tables ((3a)/(3b) in
   Figure 4) and let the client build its instrumentation plan. *)
let translate t addr =
  let b = build_block t addr in
  t.vm.Jt_vm.Vm.cycles <-
    t.vm.Jt_vm.Vm.cycles + t.profile.p_translate_block
    + (t.profile.p_translate_insn * Array.length b.insns);
  let table = table_for t addr in
  let static_hit =
    match table with
    | Some tbl -> Jt_rules.Rules.Table.bb_seen tbl addr
    | None -> false
  in
  if static_hit then t.stats.st_blocks_static <- t.stats.st_blocks_static + 1
  else t.stats.st_blocks_dynamic <- t.stats.st_blocks_dynamic + 1;
  let plan =
    match t.client with
    | None -> no_plan b
    | Some cl ->
      let rules_at =
        match (static_hit, table) with
        | true, Some tbl ->
          fun a ->
            let rs = Jt_rules.Rules.Table.at_insn tbl a in
            t.stats.st_rules_applied <- t.stats.st_rules_applied + List.length rs;
            rs
        | _ -> fun _ -> []
      in
      cl.cl_on_block t.vm b
        (if static_hit then Static_rules else Dynamic_only)
        ~rules_at
  in
  let cb_end =
    if Array.length b.insns = 0 then addr + 1
    else
      let la, _, ll = b.insns.(Array.length b.insns - 1) in
      la + ll
  in
  let succ_taken, succ_fall = successors b in
  let cached =
    {
      cb = b;
      cb_plan = plan;
      cb_indirect_end = is_indirect_end b;
      cb_end;
      cb_succ_taken = succ_taken;
      cb_succ_fall = succ_fall;
      cb_link_taken = None;
      cb_link_fall = None;
      cb_valid = true;
    }
  in
  (match Hashtbl.find_opt t.cache addr with
  | Some old -> invalidate t old
  | None -> ());
  Hashtbl.replace t.cache addr cached;
  index_add t cached;
  cached

(* Execute a translated block.  The fuel budget is checked before every
   instruction, not just between blocks, so Out_of_fuel fires within one
   instruction of the budget even inside a maximal 256-instruction block
   or a long chain. *)
let exec_block t ~budget (c : cached) =
  let vm = t.vm in
  t.stats.st_block_execs <- t.stats.st_block_execs + 1;
  if t.profile.p_per_block > 0 then Jt_vm.Vm.charge vm t.profile.p_per_block;
  let n = Array.length c.cb.insns in
  let k = ref 0 in
  while !k < n && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running do
    if vm.Jt_vm.Vm.icount >= budget then
      vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
    else begin
      let at, i, len = c.cb.insns.(!k) in
      List.iter
        (fun m ->
          Jt_vm.Vm.charge vm m.m_cost;
          match m.m_action with Some f -> f vm | None -> ())
        c.cb_plan.(!k);
      Jt_vm.Vm.step_decoded vm ~at i len;
      incr k
    end
  done;
  if c.cb_indirect_end && vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then begin
    Jt_vm.Vm.charge vm t.profile.p_indirect;
    t.stats.st_indirects <- t.stats.st_indirects + 1
  end

(* The dispatch loop.  After a block whose last instruction is a direct
   transfer, the next PC is compared against the block's static
   successors: a previously installed chain link is followed without
   touching the code-cache hash table (a chain hit); otherwise the
   dispatcher probes/translates and installs the link for next time.
   Chaining affects only host-level dispatch work — simulated cycles,
   instruction counts and all results are bit-identical with it off. *)
let run ?(fuel = 200_000_000) t =
  let vm = t.vm in
  let budget = vm.Jt_vm.Vm.icount + fuel in
  let m = Jt_metrics.Metrics.Counters.global in
  let prev : cached option ref = ref None in
  (try
     while vm.Jt_vm.Vm.status = Jt_vm.Vm.Running do
       if vm.Jt_vm.Vm.icount >= budget then
         vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
       else if vm.Jt_vm.Vm.pc = Jt_vm.Vm.sentinel then begin
         prev := None;
         Jt_vm.Vm.advance_phase vm
       end
       else begin
         let pc = vm.Jt_vm.Vm.pc in
         let linked =
           if not t.chain then None
           else
             match !prev with
             | Some p when p.cb_succ_taken = pc -> (
               match p.cb_link_taken with
               | Some c when c.cb_valid -> Some c
               | Some _ ->
                 p.cb_link_taken <- None;
                 None
               | None -> None)
             | Some p when p.cb_succ_fall = pc -> (
               match p.cb_link_fall with
               | Some c when c.cb_valid -> Some c
               | Some _ ->
                 p.cb_link_fall <- None;
                 None
               | None -> None)
             | Some _ | None -> None
         in
         let cached =
           match linked with
           | Some c ->
             t.stats.st_chain_hits <- t.stats.st_chain_hits + 1;
             m.c_chain_hits <- m.c_chain_hits + 1;
             c
           | None ->
             t.stats.st_dispatch_entries <- t.stats.st_dispatch_entries + 1;
             m.c_dispatch_entries <- m.c_dispatch_entries + 1;
             let c =
               match Hashtbl.find_opt t.cache pc with
               | Some c -> c
               | None -> translate t pc
             in
             (if t.chain then
                match !prev with
                | Some p when p.cb_valid ->
                  if p.cb_succ_taken = pc then p.cb_link_taken <- Some c
                  else if p.cb_succ_fall = pc then p.cb_link_fall <- Some c
                | Some _ | None -> ());
             c
         in
         if Array.length cached.cb.insns = 0 then
           vm.Jt_vm.Vm.status <- Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault pc)
         else begin
           exec_block t ~budget cached;
           prev :=
             if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running && cached.cb_valid then
               Some cached
             else None
         end
       end
     done
   with Jt_vm.Vm.Security_abort why -> vm.Jt_vm.Vm.status <- Jt_vm.Vm.Aborted why)

let stats t = t.stats

let dynamic_block_fraction t =
  let s = t.stats in
  let total = s.st_blocks_static + s.st_blocks_dynamic in
  if total = 0 then 0.0
  else float_of_int s.st_blocks_dynamic /. float_of_int total
