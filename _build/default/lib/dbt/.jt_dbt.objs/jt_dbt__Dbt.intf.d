lib/dbt/dbt.mli: Insn Jt_isa Jt_rules Jt_vm
