lib/dbt/dbt.ml: Array Hashtbl Insn Jt_isa Jt_loader Jt_metrics Jt_obj Jt_rules Jt_vm List
