lib/mem/memory.mli:
