lib/mem/memory.ml: Buffer Bytes Char Hashtbl Jt_isa List String
