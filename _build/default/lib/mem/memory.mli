(** Sparse paged byte memory for the simulated machine.

    Pages are allocated on first touch and zero-filled, so programs never
    fault on ordinary accesses; memory-safety violations are the business
    of the sanitizers under test, not of the paging layer.  All multi-byte
    accesses are little-endian. *)

type t

val create : unit -> t

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int

val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

val read : t -> int -> width:int -> int
(** [width] is 1, 2 or 4 bytes. *)

val write : t -> int -> width:int -> int -> unit

val write_string : t -> int -> string -> unit
val read_cstring : t -> int -> string
(** Read a NUL-terminated string (at most 4096 bytes). *)

val on_code_write : t -> (int -> unit) -> unit
(** Register a callback invoked with the address of every byte written
    while {!watch_writes} is enabled; used for code-cache consistency. *)

val set_watch : t -> bool -> unit
(** Enable or disable write-watch callbacks (off by default: the common
    case pays nothing). *)
