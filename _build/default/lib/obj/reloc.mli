(** Load-time relocations.

    Position-independent modules reference code and data through
    PC-relative addressing where possible; the residual cases — absolute
    pointers stored in data or embedded jump tables, and references to
    symbols from other modules — are expressed as relocations resolved by
    the loader.  Position-dependent executables bake absolute addresses in
    and carry no relocations, which is precisely why RetroWrite-style
    symbolization cannot handle them. *)

type kind =
  | Rel_relative of int
      (** Slot := load base + [value] (the referent's link-time address);
          the ELF [R_*_RELATIVE] analog, used for local pointers in PIC
          data and jump tables. *)
  | Rel_got of string
      (** Slot := run-time address of imported symbol [name], resolved by
          the loader through the module dependency chain (eager
          binding). *)

type t = { offset : int; kind : kind }
(** [offset] is the link-time virtual address of the 32-bit slot. *)

val relative : offset:int -> int -> t
val got : offset:int -> string -> t
val pp : Format.formatter -> t -> unit
