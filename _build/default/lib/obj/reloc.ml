type kind = Rel_relative of int | Rel_got of string

type t = { offset : int; kind : kind }

let relative ~offset value = { offset; kind = Rel_relative value }
let got ~offset name = { offset; kind = Rel_got name }

let pp ppf r =
  match r.kind with
  | Rel_relative v ->
    Format.fprintf ppf "%a RELATIVE %a" Jt_isa.Word.pp r.offset Jt_isa.Word.pp v
  | Rel_got n -> Format.fprintf ppf "%a GOT %s" Jt_isa.Word.pp r.offset n
