(** Symbols of a JELF module. *)

type kind = Func | Object

type t = {
  name : string;
  vaddr : int;  (** link-time address *)
  size : int;
  kind : kind;
  exported : bool;
      (** Exported (dynamic) symbols remain visible even in binaries whose
          full symbol table has been stripped. *)
}

val make : ?size:int -> ?exported:bool -> kind:kind -> name:string -> int -> t
val is_func : t -> bool
val pp : Format.formatter -> t -> unit
