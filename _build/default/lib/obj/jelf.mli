(** On-disk serialization of JELF modules.

    A compact binary container (magic ["JELF1"]) carrying everything in
    {!Objfile.t}: sections with their bytes, the full symbol table and its
    visibility level, relocations, imports/exports and dependency
    records.  This is what lets the repository behave like a real binary
    toolchain: the assembler writes [.jelf] files, the CLI inspects and
    runs them, and rule files produced offline refer to them by name. *)

val write : Objfile.t -> string
(** Serialize a module to its container bytes. *)

val read : string -> Objfile.t
(** @raise Failure on malformed input. *)

val save : dir:string -> Objfile.t -> string
(** Write [<dir>/<name>.jelf] (creating [dir]); returns the path. *)

val load : string -> Objfile.t
(** Read a module from a file path.  @raise Failure / [Sys_error]. *)
