(** Sections of a JELF module.

    Section [vaddr]s are link-time virtual addresses: absolute for
    position-dependent executables, module-relative (based at 0) for PIC
    modules and shared objects. *)

type t = {
  name : string;  (** e.g. [".text"], [".plt"], [".data"], [".got"] *)
  vaddr : int;
  data : string;
  is_code : bool;  (** executable section *)
  truth_code_ranges : (int * int) list;
      (** Ground truth for evaluation only: [(vaddr, size)] ranges that
          really contain instructions.  Code sections may embed data
          (jump tables, constants); analyzers must never consult this
          field — it exists so tests and metrics can score them. *)
}

val make :
  ?truth_code_ranges:(int * int) list ->
  name:string ->
  vaddr:int ->
  is_code:bool ->
  string ->
  t

val size : t -> int
val contains : t -> int -> bool
(** [contains s vaddr] *)

val end_vaddr : t -> int

val byte : t -> int -> int
(** [byte s vaddr]: byte at link-time address [vaddr].
    @raise Invalid_argument if out of range. *)

val pp : Format.formatter -> t -> unit
