type t = {
  name : string;
  vaddr : int;
  data : string;
  is_code : bool;
  truth_code_ranges : (int * int) list;
}

let make ?(truth_code_ranges = []) ~name ~vaddr ~is_code data =
  { name; vaddr; data; is_code; truth_code_ranges }

let size s = String.length s.data
let contains s a = a >= s.vaddr && a < s.vaddr + size s
let end_vaddr s = s.vaddr + size s

let byte s a =
  if not (contains s a) then invalid_arg "Section.byte"
  else Char.code s.data.[a - s.vaddr]

let pp ppf s =
  Format.fprintf ppf "%-8s %a..%a %s" s.name Jt_isa.Word.pp s.vaddr
    Jt_isa.Word.pp (end_vaddr s)
    (if s.is_code then "CODE" else "DATA")
