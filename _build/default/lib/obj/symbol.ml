type kind = Func | Object

type t = {
  name : string;
  vaddr : int;
  size : int;
  kind : kind;
  exported : bool;
}

let make ?(size = 0) ?(exported = false) ~kind ~name vaddr =
  { name; vaddr; size; kind; exported }

let is_func s = s.kind = Func

let pp ppf s =
  Format.fprintf ppf "%a %c%c %s" Jt_isa.Word.pp s.vaddr
    (match s.kind with Func -> 'F' | Object -> 'O')
    (if s.exported then 'E' else '-')
    s.name
