lib/obj/section.mli: Format
