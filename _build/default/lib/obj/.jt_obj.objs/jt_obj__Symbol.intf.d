lib/obj/symbol.mli: Format
