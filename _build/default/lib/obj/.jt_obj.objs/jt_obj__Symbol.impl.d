lib/obj/symbol.ml: Format Jt_isa
