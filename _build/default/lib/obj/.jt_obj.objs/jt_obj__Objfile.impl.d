lib/obj/objfile.ml: Format List Reloc Section String Symbol
