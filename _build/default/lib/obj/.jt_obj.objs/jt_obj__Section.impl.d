lib/obj/section.ml: Char Format Jt_isa String
