lib/obj/jelf.mli: Objfile
