lib/obj/reloc.ml: Format Jt_isa
