lib/obj/objfile.mli: Format Reloc Section Symbol
