lib/obj/jelf.ml: Buffer Char Filename List Objfile Reloc Section String Symbol Sys
