(* Helper analyses: liveness, canary detection, SCEV, def-use, stack. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let analyze_main funcs =
  let m =
    build ~name:"anl" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main" funcs
  in
  let sa = Janitizer.Static_analyzer.analyze m in
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  ( m,
    sa,
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = main_addr)
      sa.sa_fns )

(* Address of the k-th instruction of the function (by disassembly order). *)
let insn_addrs (fa : Janitizer.Static_analyzer.fn_analysis) =
  List.concat_map
    (fun (b : Jt_cfg.Cfg.block) ->
      Array.to_list (Array.map (fun i -> i.Jt_disasm.Disasm.d_addr) b.b_insns))
    (Jt_cfg.Cfg.fn_blocks fa.fa_fn)
  |> List.sort compare

let test_liveness_dead_after_last_use () =
  (* r1 dies after the mov r0, r1; flags die after the jcc consumer. *)
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r1 5;
            cmpi Reg.r1 3;
            jcc Insn.Gt "big";
            label "big";
            mov Reg.r0 Reg.r1;
            (* here r1 is dead *)
            movi Reg.r2 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  let addrs = insn_addrs fa in
  let live = fa.fa_liveness in
  (* before `mov r0, r1` (4th insn): flags have no remaining reader, and
     r3 was never live.  (r1 itself stays live: the exit syscall
     conservatively reads the argument registers.) *)
  let at = List.nth addrs 3 in
  Alcotest.(check bool)
    "r3 dead" true
    (List.exists (Reg.equal Reg.r3) (Jt_analysis.Liveness.dead_regs_before live at));
  Alcotest.(check bool) "flags dead" true
    (Jt_analysis.Liveness.flags_dead_before live at);
  (* before the jcc (3rd insn), flags are live *)
  let at_jcc = List.nth addrs 2 in
  Alcotest.(check bool) "flags live at jcc" false
    (Jt_analysis.Liveness.flags_dead_before live at_jcc)

let test_liveness_across_blocks () =
  (* r6 set in entry, used after the loop: must stay live through it. *)
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r6 42;
            movi Reg.r1 0;
            label "head";
            cmpi Reg.r1 4;
            jcc Insn.Ge "done";
            addi Reg.r1 1;
            jmp "head";
            label "done";
            mov Reg.r0 Reg.r6;
            syscall Sysno.exit_;
          ];
      ]
  in
  let addrs = insn_addrs fa in
  let live = fa.fa_liveness in
  (* inside the loop (the addi, 5th insn), r6 is live *)
  let at = List.nth addrs 4 in
  Alcotest.(check bool)
    "r6 live in loop" false
    (List.exists (Reg.equal Reg.r6) (Jt_analysis.Liveness.dead_regs_before live at))

let test_liveness_conservative_fallback () =
  let _, _, fa =
    analyze_main [ func "main" [ movi Reg.r0 0; syscall Sysno.exit_ ] ]
  in
  let c = Jt_analysis.Liveness.conservative fa.fa_fn in
  let addrs = insn_addrs fa in
  Alcotest.(check (list bool))
    "nothing dead" []
    (List.filter_map
       (fun a ->
         if Jt_analysis.Liveness.dead_regs_before c a <> [] then Some true else None)
       addrs)

let test_canary_detection () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          (Abi.frame_enter ~canary:true ~locals:16 ()
          @ [ sti (Abi.local 16 0) 1 ]
          @ Abi.frame_leave ~canary:true ~locals:16 ()
          @ [ movi Reg.r0 0; syscall Sysno.exit_ ]);
      ]
  in
  match fa.fa_canaries with
  | [ site ] ->
    Alcotest.(check int) "slot at fp-4" (-4) site.c_slot_disp;
    Alcotest.(check int) "one check load" 1 (List.length site.c_check_loads)
  | l -> Alcotest.failf "expected 1 canary site, got %d" (List.length l)

let test_scev_hoistable_loop () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r6 0x5000_0000;
            movi Reg.r1 0;
            label "head";
            cmpi Reg.r1 8;
            jcc Insn.Ge "done";
            st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "head";
            label "done";
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  match fa.fa_scev with
  | [ s ] ->
    Alcotest.(check int) "init 0" 0 s.ls_init;
    Alcotest.(check bool) "imm bound" true (s.ls_bound = Jt_analysis.Scev.Bimm 8);
    Alcotest.(check int) "one affine access" 1 (List.length s.ls_affine)
  | l -> Alcotest.failf "expected 1 summary, got %d" (List.length l)

let test_scev_bails () =
  (* register bound, step 2, and jne-style loops must all bail *)
  let bail_cases =
    [
      (* register bound *)
      [
        movi Reg.r2 8; movi Reg.r1 0; label "h"; cmp Reg.r1 Reg.r2;
        jcc Insn.Ge "d"; st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
        addi Reg.r1 1; jmp "h"; label "d"; movi Reg.r0 0; syscall Sysno.exit_;
      ];
      (* step 2 *)
      [
        movi Reg.r1 0; label "h"; cmpi Reg.r1 8; jcc Insn.Ge "d";
        st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1; addi Reg.r1 2; jmp "h";
        label "d"; movi Reg.r0 0; syscall Sysno.exit_;
      ];
      (* jne loop shape *)
      [
        movi Reg.r1 0; label "h"; cmpi Reg.r1 8; jcc Insn.Eq "d";
        st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1; addi Reg.r1 1; jmp "h";
        label "d"; movi Reg.r0 0; syscall Sysno.exit_;
      ];
    ]
  in
  List.iteri
    (fun i body ->
      let _, _, fa = analyze_main [ func "main" body ] in
      Alcotest.(check int) (Printf.sprintf "case %d bails" i) 0
        (List.length fa.fa_scev))
    bail_cases

let test_defuse_traces_malloc () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          [
            movi Reg.r0 32;
            call_import "malloc";
            mov Reg.r6 Reg.r0;
            addi Reg.r6 8;
            st (mem_b ~disp:0 Reg.r6) Reg.r0;
            movi Reg.r0 0;
            syscall Sysno.exit_;
          ];
      ]
  in
  let du = Jt_analysis.Defuse.analyze fa.fa_fn in
  let addrs = insn_addrs fa in
  (* at the store (5th insn), r6 derives from the call (allocation site) *)
  let at_store = List.nth addrs 4 in
  let from_call =
    Jt_analysis.Defuse.traces_to du at_store Reg.r6 ~pred:(fun i ->
        match i with Insn.Call _ -> true | _ -> false)
  in
  Alcotest.(check bool) "r6 from malloc" true from_call;
  (* r1 is unrelated *)
  let from_call_r1 =
    Jt_analysis.Defuse.traces_to du at_store Reg.r1 ~pred:(fun i ->
        match i with Insn.Call _ -> true | _ -> false)
  in
  Alcotest.(check bool) "r1 unrelated" false from_call_r1

let test_interproc_summaries () =
  (* leaf touches only r1; mid calls leaf; main calls mid.  The clobber
     summary of mid must be exactly {r1} ∪ mid's own writes, letting
     liveness keep r4 dead across the calls even without trusting the
     calling convention. *)
  let m =
    build ~name:"ipa" ~kind:Jt_obj.Objfile.Exec_nonpic
      ~features:[ Jt_obj.Objfile.Breaks_calling_convention ] ~entry:"main"
      [
        func "leaf" [ addi Reg.r1 1; ret ];
        func "mid" [ call "leaf"; addi Reg.r2 1; ret ];
        func "main"
          [
            movi Reg.r4 7;
            call "mid";
            mov Reg.r0 Reg.r4;
            syscall Sysno.exit_;
          ];
      ]
  in
  let cfg = Jt_cfg.Cfg.build (Jt_disasm.Disasm.run m) in
  let summaries = Jt_analysis.Interproc.summaries cfg in
  let addr_of name = (Jt_obj.Objfile.find_symbol m name |> Option.get).vaddr in
  let mid = Hashtbl.find summaries (addr_of "mid") in
  let mask rs = Jt_analysis.Liveness.reg_mask rs in
  Alcotest.(check bool)
    "mid clobbers r1,r2 (+sp), not r4" true
    (mid.ip_clobbers land mask [ Reg.r4 ] = 0
    && mid.ip_clobbers land mask [ Reg.r1; Reg.r2 ] = mask [ Reg.r1; Reg.r2 ]);
  (* calling something with an indirect call is summarized as everything *)
  let sa = Janitizer.Static_analyzer.analyze m in
  let main_fa =
    List.find
      (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
        fa.fa_fn.Jt_cfg.Cfg.f_entry = addr_of "main")
      sa.sa_fns
  in
  (* at `mov r0, r4` (after the call), r5 is dead; and r4 was not
     clobbered so the value flows — check r5 deadness as the liveness
     witness *)
  let mov_addr =
    let b = Jt_cfg.Cfg.fn_blocks main_fa.fa_fn in
    List.concat_map
      (fun (b : Jt_cfg.Cfg.block) ->
        Array.to_list
          (Array.map (fun i -> (i.Jt_disasm.Disasm.d_addr, i.d_insn)) b.b_insns))
      b
    |> List.find_map (fun (a, i) ->
           match i with Jt_isa.Insn.Mov (_, Jt_isa.Insn.Reg _) -> Some a | _ -> None)
    |> Option.get
  in
  Alcotest.(check bool)
    "r5 dead after call in convention-breaking module" true
    (List.exists (Reg.equal Reg.r5)
       (Jt_analysis.Liveness.dead_regs_before main_fa.fa_liveness mov_addr))

let test_stackinfo () =
  let _, _, fa =
    analyze_main
      [
        func "main"
          (Abi.frame_enter ~canary:true ~locals:24 ()
          @ Abi.frame_leave ~canary:true ~locals:24 ()
          @ [ movi Reg.r0 0; syscall Sysno.exit_ ]);
      ]
  in
  let info = fa.fa_stack in
  Alcotest.(check (option int)) "frame" (Some 24) info.s_frame_size;
  Alcotest.(check bool) "canary" true info.s_has_canary_pattern;
  Alcotest.(check bool) "push bytes" true (info.s_push_bytes >= 4)

let () =
  Alcotest.run "analysis"
    [
      ( "liveness",
        [
          Alcotest.test_case "dead after use" `Quick test_liveness_dead_after_last_use;
          Alcotest.test_case "across blocks" `Quick test_liveness_across_blocks;
          Alcotest.test_case "conservative" `Quick test_liveness_conservative_fallback;
        ] );
      ("canary", [ Alcotest.test_case "detection" `Quick test_canary_detection ]);
      ( "scev",
        [
          Alcotest.test_case "hoistable" `Quick test_scev_hoistable_loop;
          Alcotest.test_case "bails" `Quick test_scev_bails;
        ] );
      ("defuse", [ Alcotest.test_case "malloc chain" `Quick test_defuse_traces_malloc ]);
      ("interproc", [ Alcotest.test_case "summaries" `Quick test_interproc_summaries ]);
      ("stack", [ Alcotest.test_case "info" `Quick test_stackinfo ]);
    ]
