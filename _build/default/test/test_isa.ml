(* Unit and property tests for the ISA: words, flags, encode/decode. *)

open Jt_isa

let test_word_wrap () =
  Alcotest.(check int) "add wraps" 0 (Word.add 0xFFFF_FFFF 1);
  Alcotest.(check int) "sub wraps" 0xFFFF_FFFF (Word.sub 0 1);
  Alcotest.(check int) "signed" (-1) (Word.to_signed 0xFFFF_FFFF);
  Alcotest.(check int) "signed min" (-0x8000_0000) (Word.to_signed 0x8000_0000);
  Alcotest.(check int) "sar" 0xFFFF_FFFF (Word.sar 0x8000_0000 31);
  Alcotest.(check int) "shr" 1 (Word.shr 0x8000_0000 31);
  Alcotest.(check int) "sext8" 0xFFFF_FF80 (Word.sign_extend 1 0x80);
  Alcotest.(check int) "trunc2" 0x1234 (Word.truncate 2 0xAB_1234)

let test_flags_set () =
  let s = Flags.of_list [ Flags.Zf; Flags.Cf ] in
  Alcotest.(check bool) "mem zf" true (Flags.mem Flags.Zf s);
  Alcotest.(check bool) "mem sf" false (Flags.mem Flags.Sf s);
  let u = Flags.union s (Flags.singleton Flags.Sf) in
  Alcotest.(check int) "card" 3 (List.length (Flags.to_list u));
  Alcotest.(check bool) "diff" false Flags.(mem Zf (diff u (singleton Zf)));
  let st = Flags.create () in
  Flags.set_arith st ~result:0 ~carry:true ~overflow:false;
  Alcotest.(check bool) "zf" true st.zf;
  Alcotest.(check bool) "cf" true st.cf;
  let packed = Flags.pack st in
  let st2 = Flags.create () in
  Flags.unpack st2 packed;
  Alcotest.(check int) "roundtrip" packed (Flags.pack st2)

(* -- encode/decode roundtrip, exhaustive-ish over forms -- *)

let sample_mems =
  [
    Insn.mem_abs 0x1234;
    Insn.mem_base Reg.r3 ~disp:(-8 land Word.mask);
    Insn.mem_base_index ~disp:16 ~scale:4 Reg.fp Reg.r2;
    Insn.mem_pcrel 0x40;
    { Insn.base = None; index = Some Reg.r9; scale = 8; disp = 0 };
  ]

let sample_insns =
  let open Insn in
  [
    Nop;
    Halt;
    Ret;
    Syscall 3;
    Load_canary Reg.r7;
    Mov (Reg.r1, Reg Reg.r2);
    Mov (Reg.r1, Imm 0xDEAD_BEEF);
    Neg Reg.r4;
    Not Reg.r5;
    Cmp (Reg.r1, Reg Reg.r2);
    Cmp (Reg.r1, Imm 77);
    Test (Reg.r0, Imm 1);
    Test (Reg.r0, Reg Reg.r0);
    Push (Reg Reg.fp);
    Push (Imm 1234);
    Pop Reg.r12;
    Jmp 0x400100;
    Call 0x400200;
    Ret;
    Insn.jmp_ind_reg Reg.r3;
    Insn.call_ind_reg Reg.r11;
  ]
  @ List.map (fun m -> Lea (Reg.r1, m)) sample_mems
  @ List.map (fun m -> Load (W4, Reg.r2, m)) sample_mems
  @ List.map (fun m -> Load (W1, Reg.r2, m)) sample_mems
  @ List.map (fun m -> Store (W2, m, Reg Reg.r3)) sample_mems
  @ List.map (fun m -> Store (W4, m, Imm 99)) sample_mems
  @ List.map (fun m -> Insn.jmp_ind_mem m) sample_mems
  @ List.map (fun m -> Insn.call_ind_mem m) sample_mems
  @ List.map (fun op -> Binop (op, Reg.r6, Reg Reg.r7))
      [ Add; Sub; And; Or; Xor; Shl; Shr; Sar; Mul ]
  @ List.map (fun op -> Binop (op, Reg.r6, Imm 3))
      [ Add; Sub; And; Or; Xor; Shl; Shr; Sar; Mul ]
  @ List.map (fun c -> Jcc (c, 0x400300))
      [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]

let test_roundtrip () =
  List.iter
    (fun i ->
      let at = 0x400000 in
      let s = Encode.encode ~at i in
      Alcotest.(check int)
        (Insn.to_string i ^ " length")
        (String.length s) (Encode.length i);
      match Decode.from_string s ~pos:0 ~at with
      | None -> Alcotest.failf "decode failed for %s" (Insn.to_string i)
      | Some (i', len) ->
        Alcotest.(check int) "len" (String.length s) len;
        if i <> i' then
          Alcotest.failf "roundtrip mismatch: %s vs %s" (Insn.to_string i)
            (Insn.to_string i'))
    sample_insns

let test_pcrel_is_position_independent () =
  (* The same direct jump encoded at two addresses has different bytes but
     decodes to the same absolute target from each location. *)
  let i = Insn.Jmp 0x400500 in
  let s1 = Encode.encode ~at:0x400000 i in
  let s2 = Encode.encode ~at:0x400100 i in
  Alcotest.(check bool) "bytes differ" true (s1 <> s2);
  (match Decode.from_string s1 ~pos:0 ~at:0x400000 with
  | Some (Insn.Jmp t, _) -> Alcotest.(check int) "t1" 0x400500 t
  | _ -> Alcotest.fail "decode 1");
  match Decode.from_string s2 ~pos:0 ~at:0x400100 with
  | Some (Insn.Jmp t, _) -> Alcotest.(check int) "t2" 0x400500 t
  | _ -> Alcotest.fail "decode 2"

let test_invalid_bytes () =
  (* Opcode 0 and high opcodes are invalid. *)
  Alcotest.(check bool)
    "zero" true
    (Decode.from_string "\x00\x00\x00" ~pos:0 ~at:0 = None);
  Alcotest.(check bool)
    "high" true
    (Decode.from_string "\xF0\x00\x00" ~pos:0 ~at:0 = None);
  (* Truncated instruction. *)
  Alcotest.(check bool)
    "trunc" true
    (Decode.from_string "\x07\x01" ~pos:0 ~at:0 = None);
  (* Bad register index. *)
  Alcotest.(check bool)
    "badreg" true
    (Decode.from_string "\x06\x20\x01" ~pos:0 ~at:0 = None)

(* -- qcheck: random instructions roundtrip -- *)

let gen_reg = QCheck2.Gen.map Reg.of_index (QCheck2.Gen.int_bound (Reg.count - 1))
let gen_imm = QCheck2.Gen.map Word.of_int (QCheck2.Gen.int_bound Word.mask)

let gen_mem =
  let open QCheck2.Gen in
  let* base =
    oneof
      [
        return None;
        map (fun r -> Some (Insn.Breg r)) gen_reg;
        return (Some Insn.Bpc);
      ]
  in
  let* index = oneof [ return None; map Option.some gen_reg ] in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* disp = gen_imm in
  return { Insn.base; index; scale; disp }

let gen_operand =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map (fun r -> Insn.Reg r) gen_reg;
      QCheck2.Gen.map (fun v -> Insn.Imm v) gen_imm;
    ]

let gen_insn =
  let open QCheck2.Gen in
  let open Insn in
  oneof
    [
      return Nop;
      return Halt;
      return Ret;
      map (fun n -> Syscall (n land 0xFF)) small_nat;
      map (fun r -> Load_canary r) gen_reg;
      map2 (fun r o -> Mov (r, o)) gen_reg gen_operand;
      map2 (fun r m -> Lea (r, m)) gen_reg gen_mem;
      map3 (fun w r m -> Load (w, r, m)) (oneofl [ W1; W2; W4 ]) gen_reg gen_mem;
      map3
        (fun w m o -> Store (w, m, o))
        (oneofl [ W1; W2; W4 ])
        gen_mem gen_operand;
      map3
        (fun op r o -> Binop (op, r, o))
        (oneofl [ Add; Sub; And; Or; Xor; Shl; Shr; Sar; Mul ])
        gen_reg gen_operand;
      map (fun r -> Neg r) gen_reg;
      map2 (fun r o -> Cmp (r, o)) gen_reg gen_operand;
      map2 (fun r o -> Test (r, o)) gen_reg gen_operand;
      map (fun o -> Push o) gen_operand;
      map (fun r -> Pop r) gen_reg;
      map (fun t -> Jmp t) gen_imm;
      map2 (fun c t -> Jcc (c, t)) (oneofl [ Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge ]) gen_imm;
      map (fun t -> Call t) gen_imm;
      map Insn.jmp_ind_reg gen_reg;
      map Insn.jmp_ind_mem gen_mem;
      map Insn.call_ind_reg gen_reg;
      map Insn.call_ind_mem gen_mem;
    ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:2000 gen_insn
    (fun i ->
      let at = 0x10000 in
      let s = Encode.encode ~at i in
      match Decode.from_string s ~pos:0 ~at with
      | Some (i', len) -> i = i' && len = String.length s
      | None -> false)

let prop_length_positive =
  QCheck2.Test.make ~name:"length in 1..13" ~count:2000 gen_insn (fun i ->
      let l = Encode.length i in
      l >= 1 && l <= 13)

let () =
  Alcotest.run "isa"
    [
      ( "word-flags",
        [
          Alcotest.test_case "word wrap" `Quick test_word_wrap;
          Alcotest.test_case "flags" `Quick test_flags_set;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_roundtrip;
          Alcotest.test_case "pcrel" `Quick test_pcrel_is_position_independent;
          Alcotest.test_case "invalid" `Quick test_invalid_bytes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_length_positive ]
      );
    ]
