(* The Juliet CWE-122 suite must reproduce Figure 10 exactly. *)

open Jt_workloads

let test_structure () =
  Alcotest.(check int) "624 cases" 624 (List.length Juliet.cases);
  let count cat =
    List.length (List.filter (fun c -> c.Juliet.c_cat = cat) Juliet.cases)
  in
  Alcotest.(check int) "heap-heap" 312 (count Juliet.Heap_heap);
  Alcotest.(check int) "slack" 24 (count Juliet.Heap_heap_slack);
  Alcotest.(check int) "stack-heap" 144 (count Juliet.Stack_heap);
  Alcotest.(check int) "h2s contig" 48 (count Juliet.Heap_stack_contig);
  Alcotest.(check int) "h2s direct" 96 (count Juliet.Heap_stack_direct)

let test_cases_run_cleanly () =
  (* every variant of a sample from each category exits 0 natively *)
  List.iter
    (fun c ->
      List.iter
        (fun bad ->
          let m = Juliet.build_case c ~bad in
          let r =
            Jt_vm.Vm.run_native ~registry:(Juliet.registry_for m)
              ~main:m.Jt_obj.Objfile.name ()
          in
          match r.r_status with
          | Jt_vm.Vm.Exited 0 -> ()
          | st ->
            Alcotest.failf "case %d bad=%b: %s" c.c_id bad
              (Format.asprintf "%a" Jt_vm.Vm.pp_status st))
        [ false; true ])
    (List.filteri (fun k _ -> k mod 60 = 0) Juliet.cases)

let test_figure10_exact () =
  let j = Juliet.evaluate Juliet.Jasan_hybrid in
  Alcotest.(check int) "jasan TP" 528 j.t_true_pos;
  Alcotest.(check int) "jasan FN" 96 j.t_false_neg;
  Alcotest.(check int) "jasan TN" 624 j.t_true_neg;
  Alcotest.(check int) "jasan FP" 0 j.t_false_pos;
  let v = Juliet.evaluate Juliet.Valgrind in
  Alcotest.(check int) "valgrind TP" 504 v.t_true_pos;
  Alcotest.(check int) "valgrind FN" 120 v.t_false_neg;
  Alcotest.(check int) "valgrind TN" 624 v.t_true_neg;
  Alcotest.(check int) "valgrind FP" 0 v.t_false_pos

let test_dyn_mode_also_covers () =
  (* JASan without static analysis still catches the redzone categories
     (coverage comes from the dynamic fallback). *)
  let t = Juliet.evaluate ~limit:40 Juliet.Jasan_dyn in
  Alcotest.(check int) "dyn TP on heap-heap prefix" 40 t.t_true_pos;
  Alcotest.(check int) "dyn FP" 0 t.t_false_pos

let () =
  Alcotest.run "juliet"
    [
      ( "suite",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "cases run" `Quick test_cases_run_cleanly;
          Alcotest.test_case "figure 10 exact" `Slow test_figure10_exact;
          Alcotest.test_case "dyn coverage" `Quick test_dyn_mode_also_covers;
        ] );
    ]
