(* JTaint: propagation, policy, and the hybrid/dynamic split. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let vkinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let run ?(hybrid = true) ?(input = []) m =
  let tool, rt = Jt_taint.Taint.create () in
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine =
    let rule_files =
      if hybrid then
        Janitizer.Driver.analyze_all ~tool
          (Janitizer.Driver.static_closure ~registry:(Progs.registry_for m)
             ~main:m.Jt_obj.Objfile.name)
      else []
    in
    Jt_dbt.Dbt.create ~vm ~client:tool.Janitizer.Tool.t_client
      ~rules_for:(fun n -> List.assoc_opt n rule_files)
      ()
  in
  Jt_vm.Vm.set_input vm input;
  Jt_vm.Vm.boot vm ~main:m.Jt_obj.Objfile.name;
  Jt_dbt.Dbt.run engine;
  (Jt_vm.Vm.result vm, rt)

(* Input flows through arithmetic and memory into an indirect call. *)
let hijackable ~masked =
  build ~name:"taintp" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:[ data "tbl" [ Dfuncptr "op_a"; Dfuncptr "op_b" ] ]
    [
      func "op_a" [ addi Reg.r0 1; ret ];
      func "op_b" [ addi Reg.r0 2; ret ];
      func "main"
        ([ call_import "read_int" ]
        @ (if masked then
             (* a sanitizing table-load breaks the taint chain: the index
                is clean data derived from a compare *)
             [
               cmpi Reg.r0 0;
               movi Reg.r1 0;
               jcc Insn.Eq "pick";
               movi Reg.r1 1;
               label "pick";
             ]
           else [ mov Reg.r1 Reg.r0; andi Reg.r1 1 ])
        @ [
            addr_of_data ~pic:false Reg.r2 "tbl";
            ld Reg.r3 (mem_bi ~scale:4 Reg.r2 Reg.r1);
            call_reg Reg.r3;
            call_import "print_int";
          ]
        @ Progs.exit0);
    ]

let test_tainted_dispatch_flagged () =
  List.iter
    (fun (mode, hybrid) ->
      let r, rt = run ~hybrid ~input:[ 1 ] (hijackable ~masked:false) in
      Alcotest.(check bool)
        (mode ^ " flags tainted dispatch")
        true
        (List.mem "tainted-target" (vkinds r));
      Alcotest.(check bool) (mode ^ " alert counted") true (Jt_taint.Taint.Rt.alerts rt > 0);
      Alcotest.(check string) (mode ^ " still runs") "3\n" r.r_output)
    [ ("hybrid", true); ("dyn", false) ]

let test_sanitized_dispatch_clean () =
  List.iter
    (fun (mode, hybrid) ->
      let r, _ = run ~hybrid ~input:[ 1 ] (hijackable ~masked:true) in
      Alcotest.(check (list string)) (mode ^ " clean") [] (vkinds r))
    [ ("hybrid", true); ("dyn", false) ]

let test_taint_through_memory () =
  (* input -> store to heap -> load back -> used as jump target value *)
  let m =
    build ~name:"tmem" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "target" [ movi Reg.r0 9; ret ];
        func "main"
          ([
             movi Reg.r0 16;
             call_import "malloc";
             mov Reg.r6 Reg.r0;
             call_import "read_int" (* tainted r0 *);
             addr_of_func ~pic:false Reg.r1 "target";
             add Reg.r1 Reg.r0 (* tainted address arithmetic *);
             st (mem_b ~disp:0 Reg.r6) Reg.r1 (* through memory *);
             ld Reg.r4 (mem_b ~disp:0 Reg.r6);
             call_reg Reg.r4;
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  (* input 0 keeps the program correct while the taint persists *)
  let r, rt = run ~input:[ 0 ] m in
  Alcotest.(check bool) "flagged through memory" true
    (List.mem "tainted-target" (vkinds r));
  Alcotest.(check bool) "bytes were tainted" true
    (Jt_taint.Taint.Rt.tainted_bytes rt >= 0);
  Alcotest.(check string) "ran" "9\n" r.r_output

let test_untainted_program_clean () =
  let m = Progs.indirect_prog () in
  let r, rt = run m in
  Alcotest.(check (list string)) "clean" [] (vkinds r);
  Alcotest.(check int) "no alerts" 0 (Jt_taint.Taint.Rt.alerts rt);
  Alcotest.(check string) "output" "222\n" r.r_output

let test_rules_skip_non_movers () =
  let m = hijackable ~masked:false in
  let tool, _ = Jt_taint.Taint.create () in
  let sa = Janitizer.Static_analyzer.analyze m in
  let f = tool.Janitizer.Tool.t_static sa in
  let count id =
    List.length
      (List.filter (fun (r : Jt_rules.Rules.t) -> r.rule_id = id) f.rf_rules)
  in
  Alcotest.(check bool) "propagation rules exist" true
    (count Jt_taint.Taint.Ids.propagate > 0);
  Alcotest.(check bool) "check rules exist" true
    (count Jt_taint.Taint.Ids.check_target > 0);
  (* compares and direct branches carry no propagation rule: count of
     propagate rules is well below the instruction count *)
  let insns = Jt_cfg.Cfg.insn_count sa.sa_cfg in
  Alcotest.(check bool) "non-movers skipped" true
    (count Jt_taint.Taint.Ids.propagate < insns)

let () =
  Alcotest.run "taint"
    [
      ( "policy",
        [
          Alcotest.test_case "tainted dispatch" `Quick test_tainted_dispatch_flagged;
          Alcotest.test_case "sanitized dispatch" `Quick test_sanitized_dispatch_clean;
          Alcotest.test_case "through memory" `Quick test_taint_through_memory;
          Alcotest.test_case "clean program" `Quick test_untainted_program_clean;
        ] );
      ( "hybrid",
        [ Alcotest.test_case "rule selectivity" `Quick test_rules_skip_non_movers ] );
    ]
