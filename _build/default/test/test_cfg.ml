(* CFG construction: blocks, functions, dominators, natural loops. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let loopy_module () =
  build ~name:"loopy" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
    [
      func "leaf" [ addi Reg.r0 2; ret ];
      func "main"
        [
          movi Reg.r1 0;
          label "head";
          cmpi Reg.r1 10;
          jcc Insn.Ge "done";
          call "leaf";
          addi Reg.r1 1;
          jmp "head";
          label "done";
          movi Reg.r0 0;
          syscall Sysno.exit_;
        ];
    ]

let cfg_of m = Jt_cfg.Cfg.build (Jt_disasm.Disasm.run m)

let find_fn cfg name_addr = Jt_cfg.Cfg.fn_at cfg name_addr |> Option.get

let test_functions_partitioned () =
  let m = loopy_module () in
  let cfg = cfg_of m in
  (* _init, _fini, leaf, main *)
  Alcotest.(check int) "4 fns" 4 (List.length (Jt_cfg.Cfg.functions cfg));
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  let leaf_addr = (Jt_obj.Objfile.find_symbol m "leaf" |> Option.get).vaddr in
  let main_fn = find_fn cfg main_addr in
  Alcotest.(check (option string)) "name" (Some "main") main_fn.f_name;
  (* leaf's block is not part of main even though main calls it *)
  Alcotest.(check bool)
    "call target excluded" false
    (Hashtbl.mem main_fn.f_blocks leaf_addr)

let test_loop_detection () =
  let m = loopy_module () in
  let cfg = cfg_of m in
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  let fn = find_fn cfg main_addr in
  match fn.f_loops with
  | [ l ] ->
    Alcotest.(check bool) "body >= 2 blocks" true (Jt_cfg.Cfg.Iset.cardinal l.l_body >= 2);
    Alcotest.(check bool) "head in body" true (Jt_cfg.Cfg.Iset.mem l.l_head l.l_body)
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_dominators () =
  let m = loopy_module () in
  let cfg = cfg_of m in
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  let fn = find_fn cfg main_addr in
  let dom = Jt_cfg.Cfg.dominators fn in
  (* the entry dominates every block *)
  Hashtbl.iter
    (fun a _ ->
      let doms = Hashtbl.find dom a in
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates %x" a)
        true
        (Jt_cfg.Cfg.Iset.mem fn.f_entry doms))
    fn.f_blocks

let test_call_edges_are_fallthrough () =
  let m = loopy_module () in
  let cfg = cfg_of m in
  let main_addr = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  let fn = find_fn cfg main_addr in
  let has_call_block =
    Hashtbl.fold
      (fun _ (b : Jt_cfg.Cfg.block) acc ->
        acc
        ||
        match b.b_term with
        | Jt_cfg.Cfg.Tcall (_, ret) -> List.mem ret b.b_succs
        | _ -> false)
      fn.f_blocks false
  in
  Alcotest.(check bool) "call falls through to return site" true has_call_block

let test_counts () =
  let m = loopy_module () in
  let cfg = cfg_of m in
  Alcotest.(check bool) "blocks" true (Jt_cfg.Cfg.block_count cfg >= 6);
  Alcotest.(check bool) "insns" true (Jt_cfg.Cfg.insn_count cfg >= 12)

let () =
  Alcotest.run "cfg"
    [
      ( "structure",
        [
          Alcotest.test_case "functions" `Quick test_functions_partitioned;
          Alcotest.test_case "loops" `Quick test_loop_detection;
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "call edges" `Quick test_call_edges_are_fallthrough;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
    ]
