(* Symbol-table visibility: stripped and export-only binaries.

   Footnote 7 of the paper: with full symbols, function entries come from
   the symbol table; without, from exported symbols plus direct-call
   target inference.  These tests pin that behaviour, plus the
   rule-reuse property of section 3.3.1 (a shared library is analyzed
   once, regardless of which program loads it). *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let prog ~symtab_level =
  build ~name:"sapp" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~symtab_level ~entry:"main"
    [
      func "helper" [ muli Reg.r0 3; ret ];
      func "main"
        ([
           movi Reg.r0 32;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r0 7;
           call "helper";
           st (mem_b ~disp:32 Reg.r6) Reg.r0 (* heap overflow *);
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_entry_inference_when_stripped () =
  let m = prog ~symtab_level:Jt_obj.Objfile.Stripped in
  Alcotest.(check int) "no visible symbols" 0
    (List.length (Jt_obj.Objfile.visible_symbols m));
  let d = Jt_disasm.Disasm.run m in
  (* helper found through the direct call even without symbols *)
  let helper = (Jt_obj.Objfile.find_symbol m "helper" |> Option.get).vaddr in
  Alcotest.(check bool) "helper inferred" true (List.mem helper d.func_entries);
  let covered, total = Jt_disasm.Disasm.code_stats d in
  Alcotest.(check bool) "coverage holds" true (covered * 100 / total > 85)

let run_tool mk m =
  let tool = mk () in
  (Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
     ~main:m.Jt_obj.Objfile.name ())
    .o_result

let vkinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let test_jasan_on_stripped () =
  List.iter
    (fun lvl ->
      let m = prog ~symtab_level:lvl in
      let r = run_tool (fun () -> fst (Jt_jasan.Jasan.create ())) m in
      Alcotest.(check (list string)) "detects regardless of symbols"
        [ "heap-buffer-overflow" ] (vkinds r);
      Alcotest.(check string) "output" "21\n" r.r_output)
    [ Jt_obj.Objfile.Full; Jt_obj.Objfile.Exported_only; Jt_obj.Objfile.Stripped ]

let test_jcfi_on_stripped () =
  let m = prog ~symtab_level:Jt_obj.Objfile.Stripped in
  let r = run_tool (fun () -> fst (Jt_jcfi.Jcfi.create ())) m in
  Alcotest.(check (list string)) "clean on stripped" [] (vkinds r)

(* Section 3.3.1: one analysis of libc.so serves every program. *)
let test_shared_library_rules_reused () =
  let tool, _ = Jt_jasan.Jasan.create () in
  let libc_rules =
    List.assoc "libc.so" (Janitizer.Driver.analyze_all ~tool [ Progs.libc ])
  in
  (* two different programs, same precomputed libc rules *)
  List.iter
    (fun m ->
      let tool, _ = Jt_jasan.Jasan.create () in
      let with_precomputed =
        Janitizer.Driver.run ~tool
          ~precomputed:[ ("libc.so", libc_rules) ]
          ~registry:(Progs.registry_for m) ~main:m.Jt_obj.Objfile.name ()
      in
      let tool, _ = Jt_jasan.Jasan.create () in
      let fresh =
        Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m)
          ~main:m.Jt_obj.Objfile.name ()
      in
      Alcotest.(check string) "same output"
        fresh.o_result.r_output with_precomputed.o_result.r_output;
      Alcotest.(check int) "same cycles" fresh.o_result.r_cycles
        with_precomputed.o_result.r_cycles)
    [ Progs.sum_prog (); Progs.indirect_prog () ]

let () =
  Alcotest.run "stripped"
    [
      ( "visibility",
        [
          Alcotest.test_case "entry inference" `Quick test_entry_inference_when_stripped;
          Alcotest.test_case "jasan all levels" `Quick test_jasan_on_stripped;
          Alcotest.test_case "jcfi stripped" `Quick test_jcfi_on_stripped;
        ] );
      ( "rule-reuse",
        [ Alcotest.test_case "shared library" `Quick test_shared_library_rules_reused ] );
    ]
