(* Allocation and module lifecycle: calloc/realloc semantics, realloc
   use-after-free detection, dlclose and use-after-unload. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let vkinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let test_calloc_zeroed () =
  let m =
    build ~name:"cz" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 64;
             call_import "calloc";
             ld Reg.r0 (mem_b ~disp:32 Reg.r0);
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  let r =
    Jt_vm.Vm.run_native ~registry:[ m; Jt_workloads.Stdlibs.libc ] ~main:"cz" ()
  in
  Alcotest.(check string) "zero" "0\n" r.r_output

let realloc_prog ~use_old =
  build ~name:"ra" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 16;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           sti (mem_b ~disp:8 Reg.r6) 1234;
           mov Reg.r0 Reg.r6;
           movi Reg.r1 64;
           call_import "realloc";
           mov Reg.r7 Reg.r0;
         ]
        @ (if use_old then [ ld Reg.r0 (mem_b ~disp:8 Reg.r6) ]
           else [ ld Reg.r0 (mem_b ~disp:8 Reg.r7) ])
        @ [ call_import "print_int" ]
        @ Progs.exit0);
    ]

let test_realloc_copies () =
  let m = realloc_prog ~use_old:false in
  let r =
    Jt_vm.Vm.run_native ~registry:[ m; Jt_workloads.Stdlibs.libc ] ~main:"ra" ()
  in
  Alcotest.(check string) "copied" "1234\n" r.r_output

let test_realloc_uaf_detected () =
  let m = realloc_prog ~use_old:true in
  let tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:[ m; Jt_workloads.Stdlibs.libc ]
      ~main:"ra" ()
  in
  Alcotest.(check (list string)) "uaf via realloc" [ "heap-use-after-free" ]
    (vkinds o.o_result);
  (* ... and the fresh pointer is clean *)
  let good = realloc_prog ~use_old:false in
  let tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:[ good; Jt_workloads.Stdlibs.libc ]
      ~main:"ra" ()
  in
  Alcotest.(check (list string)) "fresh ok" [] (vkinds o.o_result)

(* dlopen a plugin, grab a function pointer, dlclose, then decide whether
   to call the (now dangling) pointer. *)
let dlclose_prog ~call_after =
  build ~name:"dlc" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:
      [
        data "modname" [ Dbytes "plugin.so\x00" ];
        data "symname" [ Dbytes "answer\x00" ];
      ]
    [
      func "main"
        ([
           addr_of_data ~pic:false Reg.r0 "modname";
           syscall Sysno.dlopen;
           mov Reg.r6 Reg.r0 (* handle *);
           addr_of_data ~pic:false Reg.r1 "symname";
           syscall Sysno.dlsym;
           mov Reg.r7 Reg.r0 (* fn ptr *);
           call_reg Reg.r7;
           call_import "print_int";
           mov Reg.r0 Reg.r6;
           syscall Sysno.dlclose;
           call_import "print_int" (* prints 1 on successful unload *);
         ]
        @ (if call_after then [ call_reg Reg.r7 ] else [])
        @ Progs.exit0);
    ]

let registry m = [ m; Jt_workloads.Stdlibs.libc; Progs.plugin ]

let test_dlclose_unloads () =
  let m = dlclose_prog ~call_after:false in
  let r = Jt_vm.Vm.run_native ~registry:(registry m) ~main:"dlc" () in
  Alcotest.(check string) "runs, unload succeeds" "777\n1\n" r.r_output

let test_dlclose_pinned_refused () =
  (* handle 0 is not a valid dlopen handle; also the startup closure is
     pinned: dlclosing libc must fail.  We test via the loader API. *)
  let m = dlclose_prog ~call_after:false in
  let vm = Jt_vm.Vm.make ~registry:(registry m) in
  Jt_vm.Vm.boot vm ~main:"dlc";
  Alcotest.(check bool) "libc pinned" false
    (Jt_loader.Loader.dlclose vm.loader "libc.so");
  Alcotest.(check bool) "main pinned" false
    (Jt_loader.Loader.dlclose vm.loader "dlc")

let test_use_after_unload_flagged_by_jcfi () =
  let m = dlclose_prog ~call_after:true in
  let tool, _ = Jt_jcfi.Jcfi.create () in
  let o = Janitizer.Driver.run ~tool ~registry:(registry m) ~main:"dlc" () in
  Alcotest.(check bool)
    "call into unloaded module flagged" true
    (List.mem "cfi-icall" (vkinds o.o_result));
  (* without the call, clean *)
  let m = dlclose_prog ~call_after:false in
  let tool, _ = Jt_jcfi.Jcfi.create () in
  let o = Janitizer.Driver.run ~tool ~registry:(registry m) ~main:"dlc" () in
  Alcotest.(check (list string)) "clean unload" [] (vkinds o.o_result)

let test_input_stream () =
  let m =
    build ~name:"inp" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             call_import "read_int";
             call_import "print_int";
             call_import "read_int";
             call_import "print_int";
             call_import "read_int";
             call_import "print_int" (* exhausted: 0 *);
           ]
          @ Progs.exit0);
      ]
  in
  let vm = Jt_vm.Vm.make ~registry:[ m; Jt_workloads.Stdlibs.libc ] in
  Jt_vm.Vm.set_input vm [ 11; 22 ];
  Jt_vm.Vm.boot vm ~main:"inp";
  Jt_vm.Vm.run vm;
  Alcotest.(check string) "stream" "11\n22\n0\n" (Jt_vm.Vm.output vm)

let () =
  Alcotest.run "lifecycle"
    [
      ( "alloc",
        [
          Alcotest.test_case "calloc" `Quick test_calloc_zeroed;
          Alcotest.test_case "realloc copies" `Quick test_realloc_copies;
          Alcotest.test_case "realloc uaf" `Quick test_realloc_uaf_detected;
        ] );
      ( "modules",
        [
          Alcotest.test_case "dlclose" `Quick test_dlclose_unloads;
          Alcotest.test_case "pinned" `Quick test_dlclose_pinned_refused;
          Alcotest.test_case "use after unload" `Quick test_use_after_unload_flagged_by_jcfi;
        ] );
      ("input", [ Alcotest.test_case "read_int" `Quick test_input_stream ]);
    ]
