(* Workload-scale integration: all 27 benchmarks behave, tool failure
   predicates hit exactly the benchmarks the paper reports, and the
   metric orderings that need realistic code sizes hold. *)

open Jt_workloads

let test_all_native_clean () =
  List.iter
    (fun s ->
      let w = Specgen.build s in
      let r = Specgen.run_native w in
      match r.r_status with
      | Jt_vm.Vm.Exited 0 ->
        Alcotest.(check bool)
          (s.Sheet.s_name ^ " produced output")
          true
          (String.length r.r_output > 0)
      | st ->
        Alcotest.failf "%s: %s" s.Sheet.s_name
          (Format.asprintf "%a" Jt_vm.Vm.pp_status st))
    Sheet.all

let subset = [ "perlbench"; "h264ref"; "cactusADM"; "lbm"; "xalancbmk"; "bwaves" ]

let test_subset_sound_under_tools () =
  List.iter
    (fun name ->
      let s = Sheet.find name in
      let w = Specgen.build s in
      let native = Specgen.run_native w in
      let check tag (r : Jt_vm.Vm.result) =
        Alcotest.(check string) (name ^ " " ^ tag ^ " output") native.r_output
          r.r_output
      in
      let tool_jasan, _ = Jt_jasan.Jasan.create () in
      check "jasan"
        (Janitizer.Driver.run ~tool:tool_jasan ~registry:w.w_registry ~main:name ())
          .o_result;
      let tool_jcfi, _ = Jt_jcfi.Jcfi.create () in
      let jcfi =
        Janitizer.Driver.run ~tool:tool_jcfi ~registry:w.w_registry ~main:name ()
      in
      check "jcfi" jcfi.o_result;
      Alcotest.(check (list string))
        (name ^ " jcfi no violations")
        []
        (List.sort_uniq compare
           (List.map (fun v -> v.Jt_vm.Vm.v_kind) jcfi.o_result.r_violations)))
    subset

let test_pic_builds_run () =
  List.iter
    (fun name ->
      let s = Sheet.find name in
      let w = Specgen.build ~kind:Jt_obj.Objfile.Exec_pic s in
      let r = Specgen.run_native w in
      match r.r_status with
      | Jt_vm.Vm.Exited 0 -> ()
      | st ->
        Alcotest.failf "%s/pic: %s" name
          (Format.asprintf "%a" Jt_vm.Vm.pp_status st))
    [ "bzip2"; "h264ref"; "mcf" ]

let test_retrowrite_applicability_pattern () =
  (* Applicable exactly on the pure-C benchmarks (given PIC builds). *)
  List.iter
    (fun s ->
      let w = Specgen.build ~kind:Jt_obj.Objfile.Exec_pic s in
      let verdict =
        Jt_baselines.Retrowrite_like.applicability ~registry:w.w_registry
          ~main:s.Sheet.s_name
      in
      let expected_ok = s.Sheet.s_lang = Sheet.C in
      Alcotest.(check bool)
        (s.Sheet.s_name ^ " retrowrite applicability")
        expected_ok
        (verdict = Jt_baselines.Retrowrite_like.Applicable))
    Sheet.all

let test_bincfi_failure_pattern () =
  List.iter
    (fun s ->
      let w = Specgen.build s in
      let verdict =
        Jt_baselines.Bincfi.applicability ~registry:w.w_registry
          ~main:s.Sheet.s_name
      in
      let should_break =
        List.mem s.Sheet.s_name [ "gamess"; "zeusmp" ]
      in
      Alcotest.(check bool)
        (s.Sheet.s_name ^ " bincfi breaks")
        should_break
        (verdict <> Jt_baselines.Bincfi.Applicable))
    Sheet.all

let test_lockdown_fp_pattern () =
  (* Strong-policy false positives exactly where the paper reports them:
     stack-passed callbacks in gcc, h264ref and cactusADM. *)
  List.iter
    (fun name ->
      let s = Sheet.find name in
      if not s.Sheet.s_fails_lockdown then begin
        let w = Specgen.build s in
        let r =
          Jt_baselines.Lockdown.run ~registry:w.w_registry ~main:name ()
        in
        let expected_fp = List.mem name [ "gcc"; "h264ref"; "cactusADM" ] in
        Alcotest.(check bool) (name ^ " lockdown fp") expected_fp
          r.lk_false_positive
      end)
    [ "gcc"; "h264ref"; "cactusADM"; "bzip2"; "mcf"; "milc" ]

let test_air_orderings_at_scale () =
  let s = Sheet.find "perlbench" in
  let w = Specgen.build s in
  let closure =
    Janitizer.Driver.static_closure ~registry:w.w_registry ~main:"perlbench"
  in
  let jcfi = Jt_jcfi.Air.static_jcfi closure in
  let bincfi = Jt_baselines.Bincfi.static_air closure in
  Alcotest.(check bool) "jcfi > bincfi" true (jcfi > bincfi);
  Alcotest.(check bool) "both high" true (jcfi > 97.0 && bincfi > 90.0)

let test_fig14_outliers () =
  let frac name =
    let s = Sheet.find name in
    let w = Specgen.build s in
    let tool, _ = Jt_jasan.Jasan.create () in
    (Janitizer.Driver.run ~tool ~registry:w.w_registry ~main:name ())
      .o_dynamic_fraction
  in
  Alcotest.(check bool) "cactusADM mostly dynamic" true (frac "cactusADM" > 0.85);
  let lbm = frac "lbm" in
  Alcotest.(check bool) "lbm outlier" true (lbm > 0.05 && lbm < 0.3);
  Alcotest.(check bool) "bzip2 fully static" true (frac "bzip2" < 0.01)

let () =
  Alcotest.run "workloads"
    [
      ( "integration",
        [
          Alcotest.test_case "all native" `Quick test_all_native_clean;
          Alcotest.test_case "sound under tools" `Slow test_subset_sound_under_tools;
          Alcotest.test_case "pic builds" `Quick test_pic_builds_run;
        ] );
      ( "failure-predicates",
        [
          Alcotest.test_case "retrowrite" `Quick test_retrowrite_applicability_pattern;
          Alcotest.test_case "bincfi" `Quick test_bincfi_failure_pattern;
          Alcotest.test_case "lockdown fp" `Slow test_lockdown_fp_pattern;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "air ordering" `Quick test_air_orderings_at_scale;
          Alcotest.test_case "fig14 outliers" `Slow test_fig14_outliers;
        ] );
    ]
