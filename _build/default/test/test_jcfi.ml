(* JCFI: transparency on clean control flow, attack detection, AIR. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let run_jcfi ?(hybrid = true) ?config m =
  let tool, rt = Jt_jcfi.Jcfi.create ?config () in
  let o =
    Janitizer.Driver.run ~hybrid ~tool ~registry:(Progs.registry_for m)
      ~main:m.Jt_obj.Objfile.name ()
  in
  (o, rt)

let kinds (o : Janitizer.Driver.outcome) =
  List.sort_uniq compare
    (List.map (fun v -> v.Jt_vm.Vm.v_kind) o.o_result.r_violations)

let test_clean_programs () =
  List.iter
    (fun (name, m, expected) ->
      List.iter
        (fun (mode, hybrid) ->
          let o, _ = run_jcfi ~hybrid m in
          Alcotest.(check (list string)) (name ^ "/" ^ mode ^ " clean") [] (kinds o);
          Alcotest.(check string) (name ^ "/" ^ mode ^ " output") expected
            o.o_result.r_output)
        [ ("hybrid", true); ("dyn", false) ])
    [
      ("sum", Progs.sum_prog (), Progs.sum_expected 50);
      ("indirect", Progs.indirect_prog (), "222\n");
      ("dlopen", Progs.dlopen_prog (), "777\n");
      ("jit", Progs.jit_prog (), "123\n");
    ]

(* Return-address overwrite: classic stack smash redirecting the return. *)
let rop_prog () =
  build ~name:"rop" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "gadget" [ movi Reg.r0 666; call_import "print_int"; ret ];
      func "victim"
        [
          (* overwrite own return address: [sp] holds it on entry *)
          addr_of_func ~pic:false Reg.r1 "gadget";
          st (mem_b ~disp:0 Reg.sp) Reg.r1;
          ret;
        ];
      func "main" ([ call "victim"; movi Reg.r0 1; call_import "print_int" ] @ Progs.exit0);
    ]

let test_ret_hijack_detected () =
  let m = rop_prog () in
  List.iter
    (fun (mode, hybrid) ->
      let o, _ = run_jcfi ~hybrid m in
      Alcotest.(check bool)
        (mode ^ " detects ret hijack")
        true
        (List.mem "cfi-ret" (kinds o)))
    [ ("hybrid", true); ("dyn", false) ]

(* Indirect call to a non-function address (mid-function gadget). *)
let test_icall_to_midfunction_detected () =
  (* Build explicitly: call target = helper entry + offset of "mid". *)
  let m =
    build ~name:"hijack2" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "helper" [ movi Reg.r0 5; addi Reg.r0 10; ret ];
        func "main"
          ([
             addr_of_func ~pic:false Reg.r1 "helper";
             addi Reg.r1 6 (* skip the 6-byte movi: lands mid-function *);
             call_reg Reg.r1;
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  List.iter
    (fun (mode, hybrid) ->
      let o, _ = run_jcfi ~hybrid m in
      Alcotest.(check bool)
        (mode ^ " detects icall hijack")
        true
        (List.mem "cfi-icall" (kinds o)))
    [ ("hybrid", true); ("dyn", false) ]

let test_air_bounds_and_ordering () =
  let m = Progs.indirect_prog () in
  let o_h, rt_h = run_jcfi ~hybrid:true m in
  let o_d, rt_d = run_jcfi ~hybrid:false m in
  ignore o_h;
  ignore o_d;
  let air_h = Jt_jcfi.Air.dynamic rt_h in
  let air_d = Jt_jcfi.Air.dynamic rt_d in
  Alcotest.(check bool) "hybrid air in range" true (air_h > 50.0 && air_h <= 100.0);
  Alcotest.(check bool) "dyn air in range" true (air_d > 0.0 && air_d <= 100.0);
  Alcotest.(check bool) "hybrid >= dyn" true (air_h >= air_d)

let test_static_air () =
  let m = Progs.indirect_prog () in
  let air = Jt_jcfi.Air.static_jcfi (Progs.registry_for m) in
  Alcotest.(check bool) "static air sane" true (air > 90.0 && air <= 100.0)

let test_forward_only_cheaper () =
  let m = Progs.sum_prog ~n:300 () in
  let o_fwd, _ =
    run_jcfi ~config:{ Jt_jcfi.Jcfi.cf_forward = true; cf_backward = false } m
  in
  let o_full, _ = run_jcfi m in
  Alcotest.(check bool)
    "forward-only cheaper" true
    (o_fwd.o_result.r_cycles < o_full.o_result.r_cycles)

let test_plt_lazy_resolver_allowed () =
  (* Calling an import twice exercises the resolver's ret-as-call path,
     which must not trip the shadow stack (section 4.2.3). *)
  let m =
    build ~name:"lazy2" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 9;
             call_import "print_int";
             movi Reg.r0 8;
             call_import "print_int";
           ]
          @ Progs.exit0);
      ]
  in
  List.iter
    (fun (mode, hybrid) ->
      let o, _ = run_jcfi ~hybrid m in
      Alcotest.(check (list string)) (mode ^ " resolver clean") [] (kinds o);
      Alcotest.(check string) (mode ^ " output") "9\n8\n" o.o_result.r_output)
    [ ("hybrid", true); ("dyn", false) ]

let () =
  Alcotest.run "jcfi"
    [
      ( "soundness",
        [
          Alcotest.test_case "clean programs" `Quick test_clean_programs;
          Alcotest.test_case "plt resolver" `Quick test_plt_lazy_resolver_allowed;
        ] );
      ( "detection",
        [
          Alcotest.test_case "ret hijack" `Quick test_ret_hijack_detected;
          Alcotest.test_case "icall mid-function" `Quick test_icall_to_midfunction_detected;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "dynamic AIR" `Quick test_air_bounds_and_ordering;
          Alcotest.test_case "static AIR" `Quick test_static_air;
          Alcotest.test_case "forward only" `Quick test_forward_only_cheaper;
        ] );
    ]
