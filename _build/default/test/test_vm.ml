(* End-to-end tests of the assembler -> loader -> interpreter pipeline. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let exit_ok = [ movi Reg.r0 0; syscall Sysno.exit_ ]

let run ?(registry = []) main_mod =
  Jt_vm.Vm.run_native ~registry:(main_mod :: registry) ~main:main_mod.Jt_obj.Objfile.name ()

let check_exit r =
  match r.Jt_vm.Vm.r_status with
  | Jt_vm.Vm.Exited 0 -> ()
  | s -> Alcotest.failf "bad status: %a (output %S)" Jt_vm.Vm.pp_status s r.r_output

let test_arith () =
  let m =
    build ~name:"arith" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r1 21;
             movi Reg.r2 2;
             binop Insn.Mul Reg.r1 Reg.r2;
             mov Reg.r0 Reg.r1;
             syscall Sysno.write_int;
           ]
          @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "42\n" r.r_output

let test_loop_and_branch () =
  (* sum 1..10 via a loop with a conditional branch *)
  let m =
    build ~name:"loop" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r1 0;
             movi Reg.r2 1;
             label "head";
             cmpi Reg.r2 10;
             jcc Insn.Gt "done";
             add Reg.r1 Reg.r2;
             addi Reg.r2 1;
             jmp "head";
             label "done";
             mov Reg.r0 Reg.r1;
             syscall Sysno.write_int;
           ]
          @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "55\n" r.r_output

let test_call_and_stack () =
  let m =
    build ~name:"calls" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "double"
          (Abi.frame_enter ~locals:8 ()
          @ [ add Reg.r0 Reg.r0 ]
          @ Abi.frame_leave ~locals:8 ());
        func "main"
          ([ movi Reg.r0 33; call "double"; syscall Sysno.write_int ] @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "66\n" r.r_output

let test_canary_frame () =
  let m =
    build ~name:"canary" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      ~deps:[ "libc.so" ]
      [
        func "f"
          (Abi.frame_enter ~canary:true ~locals:16 ()
          @ [ sti (Abi.local 16 0) 7; ld Reg.r0 (Abi.local 16 0) ]
          @ Abi.frame_leave ~canary:true ~locals:16 ());
        func "main" ([ call "f"; syscall Sysno.write_int ] @ exit_ok);
      ]
  in
  (* __stack_chk_fail is imported; provide a libc with it. *)
  let libc =
    build ~name:"libc.so" ~kind:Jt_obj.Objfile.Shared
      [
        func ~exported:true "__stack_chk_fail"
          [ movi Reg.r0 134; syscall Sysno.exit_ ];
      ]
  in
  let r = run ~registry:[ libc ] m in
  check_exit r;
  Alcotest.(check string) "output" "7\n" r.r_output

let test_canary_smash_detected () =
  (* Overwrite the canary slot; the epilogue check must call
     __stack_chk_fail, which exits 134. *)
  let m =
    build ~name:"smash" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      ~deps:[ "libc.so" ]
      [
        func "f"
          (Abi.frame_enter ~canary:true ~locals:16 ()
          @ [ sti (mem_b ~disp:(-4) Reg.fp) 0xDEAD ]
          @ Abi.frame_leave ~canary:true ~locals:16 ());
        func "main" ([ call "f" ] @ exit_ok);
      ]
  in
  let libc =
    build ~name:"libc.so" ~kind:Jt_obj.Objfile.Shared
      [
        func ~exported:true "__stack_chk_fail"
          [ movi Reg.r0 134; syscall Sysno.exit_ ];
      ]
  in
  let r = run ~registry:[ libc ] m in
  match r.r_status with
  | Jt_vm.Vm.Exited 134 -> ()
  | s -> Alcotest.failf "expected exit 134, got %a" Jt_vm.Vm.pp_status s

let test_plt_lazy_binding () =
  (* Call an imported function twice: first call goes through the lazy
     resolver, second through the patched GOT. *)
  let libm =
    build ~name:"libm.so" ~kind:Jt_obj.Objfile.Shared
      [ func ~exported:true "triple" [ muli Reg.r0 3; ret ] ]
  in
  let m =
    build ~name:"plt" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libm.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 5;
             call_import "triple";
             call_import "triple";
             syscall Sysno.write_int;
           ]
          @ exit_ok);
      ]
  in
  let r = run ~registry:[ libm ] m in
  check_exit r;
  Alcotest.(check string) "output" "45\n" r.r_output

let test_pic_module_data () =
  (* A PIC main executable reading its own data via PC-relative
     addressing, plus a function-pointer table in .data (relocated). *)
  let m =
    build ~name:"pie" ~kind:Jt_obj.Objfile.Exec_pic ~entry:"main"
      ~datas:
        [
          data "nums" [ Dword32 11; Dword32 31 ];
          data "table" [ Dfuncptr "inc"; Dfuncptr "dec" ];
        ]
      [
        func "inc" [ addi Reg.r0 1; ret ];
        func "dec" [ subi Reg.r0 1; ret ];
        func "main"
          ([
             ld Reg.r0 (mem_pc_data "nums");
             lea Reg.r3 (mem_pc_data "table");
             ld Reg.r4 (mem_b ~disp:0 Reg.r3);
             call_reg Reg.r4 (* inc: 12 *);
             ld Reg.r4 (mem_b ~disp:4 Reg.r3);
             call_reg Reg.r4 (* dec: 11 *);
             syscall Sysno.write_int;
           ]
          @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "11\n" r.r_output

let test_jump_table () =
  (* switch(2) via an inline jump table (data in code). *)
  let m =
    build ~name:"switch" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r1 2;
             addr_of_label ~pic:false Reg.r2 "table";
             I
               (Jt_asm.Sinsn.Sjmp_ind_m
                  (mem_bi ~scale:4 Reg.r2 Reg.r1));
             label "table";
             Inline_table [ "case0"; "case1"; "case2" ];
             label "case0";
             movi Reg.r0 100;
             jmp "out";
             label "case1";
             movi Reg.r0 200;
             jmp "out";
             label "case2";
             movi Reg.r0 300;
             label "out";
             syscall Sysno.write_int;
           ]
          @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "300\n" r.r_output

let test_dlopen_dlsym () =
  let plugin =
    build ~name:"plugin.so" ~kind:Jt_obj.Objfile.Shared
      [ func ~exported:true "answer" [ movi Reg.r0 4242; ret ] ]
  in
  let m =
    build ~name:"host" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      ~datas:
        [
          data "modname" [ Dbytes "plugin.so\x00" ];
          data "symname" [ Dbytes "answer\x00" ];
        ]
      [
        func "main"
          ([
             addr_of_data ~pic:false Reg.r0 "modname";
             syscall Sysno.dlopen;
             addr_of_data ~pic:false Reg.r1 "symname";
             syscall Sysno.dlsym;
             call_reg Reg.r0;
             syscall Sysno.write_int;
           ]
          @ exit_ok);
      ]
  in
  let r = run ~registry:[ plugin ] m in
  check_exit r;
  Alcotest.(check string) "output" "4242\n" r.r_output

let test_heap_malloc_free () =
  let m =
    build ~name:"heap" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 64;
             syscall Sysno.malloc;
             mov Reg.r6 Reg.r0;
             sti (mem_b ~disp:16 Reg.r6) 9001;
             ld Reg.r0 (mem_b ~disp:16 Reg.r6);
             syscall Sysno.write_int;
             mov Reg.r0 Reg.r6;
             syscall Sysno.free;
           ]
          @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "9001\n" r.r_output

let test_jit_codegen () =
  (* Generate a function at run time: mov r0, 77; ret — then call it. *)
  let insns at =
    [ Insn.Mov (Reg.r0, Insn.Imm 77); Insn.Ret ]
    |> List.fold_left
         (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
         ("", at)
    |> fst
  in
  let code = insns 0 in
  (* position-independent bytes: no pc-relative fields, so any base works *)
  let bytes_items = List.init (String.length code) (fun i -> Char.code code.[i]) in
  let store_code =
    List.concat
      (List.mapi
         (fun i b -> [ movi Reg.r2 b; I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:i Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2)) ])
         bytes_items)
  in
  let m =
    build ~name:"jit" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "main"
          ([ movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r6 Reg.r0 ]
          @ store_code
          @ [
              mov Reg.r0 Reg.r6;
              movi Reg.r1 64;
              syscall Sysno.cache_flush;
              call_reg Reg.r6;
              syscall Sysno.write_int;
            ]
          @ exit_ok);
      ]
  in
  let r = run m in
  check_exit r;
  Alcotest.(check string) "output" "77\n" r.r_output

(* dlopen handle IDs must be monotonic.  Pre-fix they were allocated as
   [Hashtbl.length handles + 1], so open A, open B, close A, open C gave
   C the still-live handle of B and dlsym through B silently resolved
   into C. *)
let test_dlopen_handle_no_reuse () =
  let mk name v =
    build ~name ~kind:Jt_obj.Objfile.Shared
      [ func ~exported:true "val_" [ movi Reg.r0 v; ret ] ]
  in
  let pa = mk "pa.so" 111 and pb = mk "pb.so" 222 and pc = mk "pc.so" 333 in
  let dlsym_call_print handle_reg =
    [
      mov Reg.r0 handle_reg;
      addr_of_data ~pic:false Reg.r1 "sym";
      syscall Sysno.dlsym;
      call_reg Reg.r0;
      syscall Sysno.write_int;
    ]
  in
  let m =
    build ~name:"hdl" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      ~datas:
        [
          data "na" [ Dbytes "pa.so\x00" ];
          data "nb" [ Dbytes "pb.so\x00" ];
          data "nc" [ Dbytes "pc.so\x00" ];
          data "sym" [ Dbytes "val_\x00" ];
        ]
      [
        func "main"
          ([
             addr_of_data ~pic:false Reg.r0 "na";
             syscall Sysno.dlopen;
             mov Reg.r5 Reg.r0 (* handle A *);
             addr_of_data ~pic:false Reg.r0 "nb";
             syscall Sysno.dlopen;
             mov Reg.r6 Reg.r0 (* handle B *);
             mov Reg.r0 Reg.r5;
             syscall Sysno.dlclose (* close A *);
             addr_of_data ~pic:false Reg.r0 "nc";
             syscall Sysno.dlopen;
             mov Reg.r7 Reg.r0 (* handle C: must not alias B *);
           ]
          @ dlsym_call_print Reg.r6 (* through B: 222 *)
          @ dlsym_call_print Reg.r7 (* through C: 333 *)
          @ exit_ok);
      ]
  in
  let r = run ~registry:[ pa; pb; pc ] m in
  check_exit r;
  Alcotest.(check string) "live handles stay distinct" "222\n333\n" r.r_output

(* flush_range must invalidate by actual [addr, addr+len) byte overlap.
   The old heuristic dropped every entry within 16 bytes before the
   flushed start (over-invalidation) and would have let an instruction
   longer than 16 bytes survive a flush of its tail (stale bytes). *)
let test_flush_range_overlap () =
  let m =
    build ~name:"fl" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [ func "main" exit_ok ]
  in
  let vm = Jt_vm.Vm.make ~registry:[ m ] in
  Jt_vm.Vm.boot vm ~main:"fl";
  let entry = Jt_loader.Loader.entry_point vm.loader in
  (match Jt_vm.Vm.fetch vm entry with
  | Some (_, len) -> Alcotest.(check bool) "entry decodes" true (len > 0)
  | None -> Alcotest.fail "entry must decode");
  (* flush a range just past the entry instruction (movi = 6 bytes): no
     overlap, so the entry must survive (the heuristic dropped it) *)
  Jt_vm.Vm.flush_range vm (entry + 8) 8;
  Alcotest.(check bool) "non-overlapping entry survives" true
    (Hashtbl.mem vm.decode_cache entry);
  (* an entry whose span overlaps the flushed range is dropped no matter
     how far before the start it begins *)
  Jt_vm.Vm.cache_decoded vm 0x0070_0000 (Insn.Nop, 20);
  Jt_vm.Vm.flush_range vm (0x0070_0000 + 17) 4;
  Alcotest.(check bool) "overlapping long entry dropped" false
    (Hashtbl.mem vm.decode_cache 0x0070_0000);
  (* and a flush covering the entry start drops it *)
  Jt_vm.Vm.flush_range vm entry 4;
  Alcotest.(check bool) "covered entry dropped" false
    (Hashtbl.mem vm.decode_cache entry)

let () =
  Alcotest.run "vm"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "loop" `Quick test_loop_and_branch;
          Alcotest.test_case "call-stack" `Quick test_call_and_stack;
          Alcotest.test_case "canary-frame" `Quick test_canary_frame;
          Alcotest.test_case "canary-smash" `Quick test_canary_smash_detected;
          Alcotest.test_case "plt-lazy" `Quick test_plt_lazy_binding;
          Alcotest.test_case "pic-data" `Quick test_pic_module_data;
          Alcotest.test_case "jump-table" `Quick test_jump_table;
          Alcotest.test_case "dlopen" `Quick test_dlopen_dlsym;
          Alcotest.test_case "heap" `Quick test_heap_malloc_free;
          Alcotest.test_case "jit" `Quick test_jit_codegen;
          Alcotest.test_case "dlopen handle monotonic" `Quick
            test_dlopen_handle_no_reuse;
          Alcotest.test_case "flush-range overlap" `Quick
            test_flush_range_overlap;
        ] );
    ]
