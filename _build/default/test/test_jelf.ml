(* The JELF on-disk container: roundtrips, file I/O, corruption. *)

let test_roundtrip_all_workloads () =
  List.iter
    (fun s ->
      let w = Jt_workloads.Specgen.build s in
      List.iter
        (fun m ->
          let m' = Jt_obj.Jelf.read (Jt_obj.Jelf.write m) in
          if m <> m' then
            Alcotest.failf "roundtrip mismatch for %s" m.Jt_obj.Objfile.name)
        w.w_registry)
    (List.filteri (fun i _ -> i mod 5 = 0) Jt_workloads.Sheet.all)

let test_runs_identically_from_disk () =
  let dir = Filename.temp_file "jelf" "" in
  Sys.remove dir;
  let w = Jt_workloads.Specgen.build (Jt_workloads.Sheet.find "mcf") in
  let paths = List.map (Jt_obj.Jelf.save ~dir) w.w_registry in
  let registry = List.map Jt_obj.Jelf.load paths in
  let from_disk = Jt_vm.Vm.run_native ~registry ~main:"mcf" () in
  let in_memory = Jt_workloads.Specgen.run_native w in
  Alcotest.(check string) "same output" in_memory.r_output from_disk.r_output;
  Alcotest.(check int) "same cycles" in_memory.r_cycles from_disk.r_cycles;
  List.iter Sys.remove paths;
  Sys.rmdir dir

let test_corruption_rejected () =
  let m = Jt_workloads.Stdlibs.libc in
  let good = Jt_obj.Jelf.write m in
  Alcotest.check_raises "magic" (Failure "Jelf.read: bad magic") (fun () ->
      ignore (Jt_obj.Jelf.read ("XELF1" ^ String.sub good 5 (String.length good - 5))));
  (match Jt_obj.Jelf.read (String.sub good 0 (String.length good - 3)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated input accepted")

let () =
  Alcotest.run "jelf"
    [
      ( "container",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_all_workloads;
          Alcotest.test_case "runs from disk" `Quick test_runs_identically_from_disk;
          Alcotest.test_case "corruption" `Quick test_corruption_rejected;
        ] );
    ]
