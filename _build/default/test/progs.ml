(* A corpus of small programs shared by the test suites. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let exit0 = [ movi Reg.r0 0; syscall Sysno.exit_ ]

let libc =
  build ~name:"libc.so" ~kind:Jt_obj.Objfile.Shared
    [
      func ~exported:true "__stack_chk_fail" [ movi Reg.r0 134; syscall Sysno.exit_ ];
      func ~exported:true "malloc" [ syscall Sysno.malloc; ret ];
      func ~exported:true "calloc" [ syscall Sysno.calloc; ret ];
      func ~exported:true "realloc" [ syscall Sysno.realloc; ret ];
      func ~exported:true "free" [ syscall Sysno.free; ret ];
      func ~exported:true "print_int" [ syscall Sysno.write_int; ret ];
      func ~exported:true "read_int" [ syscall Sysno.read_int; ret ];
    ]

(* Sum an array of n ints on the heap, print, exit. *)
let sum_prog ?(name = "sum") ?(n = 50) () =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 (n * 4);
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           (* fill: a[i] = i *)
           movi Reg.r1 0;
           label "fill";
           cmpi Reg.r1 n;
           jcc Insn.Ge "fill_done";
           st (mem_bi ~scale:4 Reg.r6 Reg.r1) Reg.r1;
           addi Reg.r1 1;
           jmp "fill";
           label "fill_done";
           (* sum *)
           movi Reg.r2 0;
           movi Reg.r1 0;
           label "sum";
           cmpi Reg.r1 n;
           jcc Insn.Ge "sum_done";
           ld Reg.r3 (mem_bi ~scale:4 Reg.r6 Reg.r1);
           add Reg.r2 Reg.r3;
           addi Reg.r1 1;
           jmp "sum";
           label "sum_done";
           mov Reg.r0 Reg.r2;
           call_import "print_int";
           mov Reg.r0 Reg.r6;
           call_import "free";
         ]
        @ exit0);
    ]

let sum_expected n = string_of_int (n * (n - 1) / 2) ^ "\n"

(* Heap overflow: writes one element past a buffer of [n]. *)
let heap_overflow_prog ?(name = "heap_ov") ?(n = 8) () =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 (n * 4);
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r2 7;
           st (mem_b ~disp:(n * 4) Reg.r6) Reg.r2 (* one past the end *);
           movi Reg.r0 1;
           call_import "print_int";
         ]
        @ exit0);
    ]

(* Use after free. *)
let uaf_prog ?(name = "uaf") () =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 32;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           call_import "free";
           ld Reg.r1 (mem_b ~disp:0 Reg.r6);
           movi Reg.r0 2;
           call_import "print_int";
         ]
        @ exit0);
    ]

(* Stack overflow from a frame array into the canary. *)
let stack_smash_prog ?(name = "smash") ?(bad = true) () =
  let locals = 24 in
  (* 4 array slots + padding + canary at fp-4 *)
  let writes = if bad then 6 else 4 in
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      func "victim"
        (Abi.frame_enter ~canary:true ~locals ()
        @ [
            movi Reg.r1 0;
            label "w";
            cmpi Reg.r1 writes;
            jcc Insn.Ge "wdone";
            lea Reg.r2 (mem_b ~disp:(-locals) Reg.fp);
            st (mem_bi ~scale:4 Reg.r2 Reg.r1) Reg.r1;
            addi Reg.r1 1;
            jmp "w";
            label "wdone";
            movi Reg.r0 3;
          ]
        @ Abi.frame_leave ~canary:true ~locals ())
      (* note: with 6 writes the 6th (index 5) lands on fp-4, the canary *);
      func "main" ([ call "victim"; call_import "print_int" ] @ exit0);
    ]

(* JIT: generate "mov r0, 123; ret" at run time and call it. *)
let jit_prog ?(name = "jitprog") ?(value = 123) () =
  let code =
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", 0)
      [ Insn.Mov (Reg.r0, Insn.Imm value); Insn.Ret ]
    |> fst
  in
  let store_code =
    List.concat
      (List.mapi
         (fun i c ->
           [
             movi Reg.r2 (Char.code c);
             I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:i Reg.r6, Jt_asm.Sinsn.Sreg Reg.r2));
           ])
         (List.init (String.length code) (String.get code)))
  in
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    [
      func "main"
        ([ movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r6 Reg.r0 ]
        @ store_code
        @ [
            mov Reg.r0 Reg.r6;
            movi Reg.r1 64;
            syscall Sysno.cache_flush;
            call_reg Reg.r6;
            call_import "print_int";
          ]
        @ exit0);
    ]

(* A shared library loaded via dlopen, never declared in deps. *)
let plugin =
  build ~name:"plugin.so" ~kind:Jt_obj.Objfile.Shared
    [ func ~exported:true "answer" [ movi Reg.r0 777; ret ] ]

let dlopen_prog ?(name = "dlo") () =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    ~datas:
      [
        data "modname" [ Dbytes "plugin.so\x00" ];
        data "symname" [ Dbytes "answer\x00" ];
      ]
    [
      func "main"
        ([
           addr_of_data ~pic:false Reg.r0 "modname";
           syscall Sysno.dlopen;
           addr_of_data ~pic:false Reg.r1 "symname";
           syscall Sysno.dlsym;
           call_reg Reg.r0;
           call_import "print_int";
         ]
        @ exit0);
    ]

(* Indirect calls through a function-pointer table + a switch via an
   inline jump table: exercises CFI-relevant control flow. *)
let indirect_prog ?(name = "indirect") () =
  build ~name ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ] ~entry:"main"
    ~datas:[ data "table" [ Dfuncptr "addone"; Dfuncptr "double_" ] ]
    [
      func "addone" [ addi Reg.r0 1; ret ];
      func "double_" [ add Reg.r0 Reg.r0; ret ];
      func "main"
        ([
           movi Reg.r0 10;
           addr_of_data ~pic:false Reg.r3 "table";
           ld Reg.r4 (mem_b ~disp:0 Reg.r3);
           call_reg Reg.r4 (* 11 *);
           ld Reg.r4 (mem_b ~disp:4 Reg.r3);
           call_reg Reg.r4 (* 22 *);
           (* switch(1) via inline table, with the bounds check every
              compiled switch carries (and jump-table recovery keys on) *)
           movi Reg.r1 1;
           cmpi Reg.r1 1;
           jcc Insn.Ugt "out";
           addr_of_label ~pic:false Reg.r2 "jt";
           I (Jt_asm.Sinsn.Sjmp_ind_m (mem_bi ~scale:4 Reg.r2 Reg.r1));
           label "jt";
           Inline_table [ "c0"; "c1" ];
           label "c0";
           addi Reg.r0 100;
           jmp "out";
           label "c1";
           addi Reg.r0 200;
           label "out";
           call_import "print_int";
         ]
        @ exit0);
    ]

let registry_for m = [ m; libc; plugin ]

let run_native m =
  Jt_vm.Vm.run_native ~registry:(registry_for m) ~main:m.Jt_obj.Objfile.name ()
