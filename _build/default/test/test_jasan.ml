(* JASan detection and soundness tests, in hybrid and dynamic-only modes. *)

let run_jasan ?(hybrid = true) ?(liveness = Jt_jasan.Jasan.Live_full) m =
  let tool, _rt = Jt_jasan.Jasan.create ~liveness () in
  Janitizer.Driver.run ~hybrid ~tool ~registry:(Progs.registry_for m)
    ~main:m.Jt_obj.Objfile.name ()

let kinds (o : Janitizer.Driver.outcome) =
  List.sort_uniq compare
    (List.map (fun v -> v.Jt_vm.Vm.v_kind) o.o_result.r_violations)

let check_clean name (o : Janitizer.Driver.outcome) expected_out =
  Alcotest.(check (list string)) (name ^ " no violations") [] (kinds o);
  Alcotest.(check string) (name ^ " output") expected_out o.o_result.r_output

let test_clean_program () =
  let m = Progs.sum_prog () in
  check_clean "hybrid" (run_jasan m) (Progs.sum_expected 50);
  check_clean "dyn" (run_jasan ~hybrid:false m) (Progs.sum_expected 50)

let test_heap_overflow_detected () =
  let m = Progs.heap_overflow_prog () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string))
        (label ^ " detects")
        [ "heap-buffer-overflow" ] (kinds o);
      (* recover mode: the program still completes *)
      Alcotest.(check string) (label ^ " output") "1\n" o.o_result.r_output)
    [ ("hybrid", true); ("dyn", false) ]

let test_uaf_detected () =
  let m = Progs.uaf_prog () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string))
        (label ^ " detects")
        [ "heap-use-after-free" ] (kinds o))
    [ ("hybrid", true); ("dyn", false) ]

let test_stack_smash_detected () =
  let m = Progs.stack_smash_prog ~bad:true () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check bool)
        (label ^ " detects stack overflow")
        true
        (List.mem "stack-buffer-overflow" (kinds o)))
    [ ("hybrid", true); ("dyn", false) ]

let test_stack_good_clean () =
  let m = Progs.stack_smash_prog ~bad:false () in
  List.iter
    (fun (label, hybrid) ->
      let o = run_jasan ~hybrid m in
      Alcotest.(check (list string)) (label ^ " clean") [] (kinds o);
      Alcotest.(check string) (label ^ " output") "3\n" o.o_result.r_output)
    [ ("hybrid", true); ("dyn", false) ]

let test_jit_code_covered () =
  (* Dynamically generated code must still be sanitized: generate code
     that stores past a heap buffer. *)
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  (* JIT body: st4 [r6 + 32], r0 ; ret   — r6 points to a 32-byte buffer *)
  let code =
    List.fold_left
      (fun (acc, a) i -> (acc ^ Encode.encode ~at:a i, a + Encode.length i))
      ("", 0)
      [ Insn.Store (Insn.W4, Insn.mem_base ~disp:32 Reg.r6, Insn.Reg Reg.r0); Insn.Ret ]
    |> fst
  in
  let store_bytes =
    List.concat
      (List.mapi
         (fun i c ->
           [
             movi Reg.r2 (Char.code c);
             I (Jt_asm.Sinsn.Sstore (Insn.W1, mem_b ~disp:i Reg.r7, Jt_asm.Sinsn.Sreg Reg.r2));
           ])
         (List.init (String.length code) (String.get code)))
  in
  let m =
    build ~name:"jit_ov" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [
        func "main"
          ([
             movi Reg.r0 32; call_import "malloc"; mov Reg.r6 Reg.r0;
             movi Reg.r0 64; syscall Sysno.mmap_code; mov Reg.r7 Reg.r0;
           ]
          @ store_bytes
          @ [
              mov Reg.r0 Reg.r7; movi Reg.r1 64; syscall Sysno.cache_flush;
              call_reg Reg.r7;
            ]
          @ Progs.exit0);
      ]
  in
  let o = run_jasan m in
  Alcotest.(check (list string)) "jit overflow" [ "heap-buffer-overflow" ] (kinds o);
  Alcotest.(check bool) "covered dynamically" true (o.o_dynamic_fraction > 0.0)

(* A loop whose exit test (jne) defeats the SCEV pattern, so per-access
   MEM_CHECK rules remain and liveness data matters. *)
let churn_prog () =
  let open Jt_isa in
  let open Jt_asm.Builder in
  let open Jt_asm.Builder.Dsl in
  build ~name:"churn" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    [
      func "main"
        ([
           movi Reg.r0 64;
           call_import "malloc";
           mov Reg.r6 Reg.r0;
           movi Reg.r1 0;
           label "head";
           st (mem_b ~disp:0 Reg.r6) Reg.r1;
           st (mem_b ~disp:4 Reg.r6) Reg.r1;
           ld Reg.r2 (mem_b ~disp:8 Reg.r6);
           addi Reg.r1 1;
           cmpi Reg.r1 400;
           jcc Insn.Ne "head";
           mov Reg.r0 Reg.r1;
           call_import "print_int";
         ]
        @ Progs.exit0);
    ]

let test_liveness_reduces_cost () =
  let m = churn_prog () in
  let full = run_jasan ~liveness:Jt_jasan.Jasan.Live_full m in
  let base = run_jasan ~liveness:Jt_jasan.Jasan.Live_none m in
  Alcotest.(check string) "full output" "400\n" full.o_result.r_output;
  Alcotest.(check bool)
    "full liveness cheaper" true
    (full.o_result.r_cycles < base.o_result.r_cycles)

let test_hybrid_cheaper_than_dyn () =
  let m = Progs.sum_prog ~n:500 () in
  let hybrid = run_jasan m in
  let dyn = run_jasan ~hybrid:false m in
  Alcotest.(check bool)
    "hybrid cheaper" true
    (hybrid.o_result.r_cycles < dyn.o_result.r_cycles)

let test_static_rules_emitted () =
  let m = Progs.sum_prog () in
  let tool, _ = Jt_jasan.Jasan.create () in
  let files = Janitizer.Driver.analyze_all ~tool (Progs.registry_for m) in
  let f = List.assoc "sum" files in
  let ids = List.map (fun r -> r.Jt_rules.Rules.rule_id) f.rf_rules in
  Alcotest.(check bool) "has noop marks" true (List.mem Jt_rules.Rules.no_op ids);
  Alcotest.(check bool)
    "has checks or hoisted checks" true
    (List.mem Jt_jasan.Jasan.Ids.mem_check ids
    || List.mem Jt_jasan.Jasan.Ids.range_check ids);
  (* Serialization roundtrip on real rule files. *)
  let f' = Jt_rules.Rules.(decode_file (encode_file f)) in
  Alcotest.(check int)
    "roundtrip count"
    (List.length f.rf_rules)
    (List.length f'.rf_rules);
  Alcotest.(check bool) "roundtrip equal" true (f = f')

let () =
  Alcotest.run "jasan"
    [
      ( "detection",
        [
          Alcotest.test_case "clean program" `Quick test_clean_program;
          Alcotest.test_case "heap overflow" `Quick test_heap_overflow_detected;
          Alcotest.test_case "use after free" `Quick test_uaf_detected;
          Alcotest.test_case "stack smash" `Quick test_stack_smash_detected;
          Alcotest.test_case "stack good" `Quick test_stack_good_clean;
          Alcotest.test_case "jit coverage" `Quick test_jit_code_covered;
        ] );
      ( "performance-model",
        [
          Alcotest.test_case "liveness opt" `Quick test_liveness_reduces_cost;
          Alcotest.test_case "hybrid vs dyn" `Quick test_hybrid_cheaper_than_dyn;
        ] );
      ( "rules",
        [ Alcotest.test_case "static rules" `Quick test_static_rules_emitted ] );
    ]
