test/test_props.ml: Alcotest Hashtbl Int32 Janitizer Jt_isa Jt_jasan Jt_jcfi Jt_vm List Progs QCheck2 QCheck_alcotest Word
