test/test_disasm.ml: Alcotest Format Insn Jt_asm Jt_disasm Jt_isa Jt_obj List Option Reg String Sysno
