test/test_dbt.ml: Alcotest Char Encode Insn Jt_asm Jt_dbt Jt_isa Jt_mem Jt_obj Jt_vm List Progs Reg String Sysno
