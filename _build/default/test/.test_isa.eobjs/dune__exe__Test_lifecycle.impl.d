test/test_lifecycle.ml: Alcotest Janitizer Jt_asm Jt_isa Jt_jasan Jt_jcfi Jt_loader Jt_obj Jt_vm Jt_workloads List Progs Reg Sysno
