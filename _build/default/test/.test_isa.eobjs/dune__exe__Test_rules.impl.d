test/test_rules.ml: Alcotest Jt_isa Jt_rules List QCheck2 QCheck_alcotest String
