test/test_attacks.ml: Alcotest Janitizer Jt_asm Jt_isa Jt_jasan Jt_jcfi Jt_obj Jt_vm List Progs Reg String Sysno
