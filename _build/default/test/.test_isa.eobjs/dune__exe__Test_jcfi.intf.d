test/test_jcfi.mli:
