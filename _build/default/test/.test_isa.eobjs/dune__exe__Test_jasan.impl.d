test/test_jasan.ml: Alcotest Char Encode Insn Janitizer Jt_asm Jt_isa Jt_jasan Jt_obj Jt_rules Jt_vm List Progs Reg String Sysno
