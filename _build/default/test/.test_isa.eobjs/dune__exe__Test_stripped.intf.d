test/test_stripped.mli:
