test/test_jelf.mli:
