test/test_loader.ml: Alcotest Jt_asm Jt_isa Jt_loader Jt_mem Jt_obj List Option Reg String Sysno
