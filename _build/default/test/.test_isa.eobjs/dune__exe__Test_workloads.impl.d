test/test_workloads.ml: Alcotest Format Janitizer Jt_baselines Jt_jasan Jt_jcfi Jt_obj Jt_vm Jt_workloads List Sheet Specgen String
