test/test_taint.mli:
