test/test_jasan.mli:
