test/test_isa.ml: Alcotest Decode Encode Flags Insn Jt_isa List Option QCheck2 QCheck_alcotest Reg String Word
