test/test_cfg.ml: Alcotest Hashtbl Insn Jt_asm Jt_cfg Jt_disasm Jt_isa Jt_obj List Option Printf Reg Sysno
