test/test_vm.ml: Abi Alcotest Char Encode Insn Jt_asm Jt_isa Jt_obj Jt_vm List Reg String Sysno
