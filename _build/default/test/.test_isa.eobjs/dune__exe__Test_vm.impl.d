test/test_vm.ml: Abi Alcotest Char Encode Hashtbl Insn Jt_asm Jt_isa Jt_loader Jt_obj Jt_vm List Reg String Sysno
