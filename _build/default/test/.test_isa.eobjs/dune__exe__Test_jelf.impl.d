test/test_jelf.ml: Alcotest Filename Jt_obj Jt_vm Jt_workloads List String Sys
