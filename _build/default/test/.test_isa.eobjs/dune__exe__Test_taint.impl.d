test/test_taint.ml: Alcotest Insn Janitizer Jt_asm Jt_cfg Jt_dbt Jt_isa Jt_obj Jt_rules Jt_taint Jt_vm List Progs Reg
