test/test_juliet.ml: Alcotest Format Jt_obj Jt_vm Jt_workloads Juliet List
