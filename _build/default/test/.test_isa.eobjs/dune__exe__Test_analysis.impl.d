test/test_analysis.ml: Abi Alcotest Array Hashtbl Insn Janitizer Jt_analysis Jt_asm Jt_cfg Jt_disasm Jt_isa Jt_obj List Option Printf Reg Sysno
