test/test_stripped.ml: Alcotest Janitizer Jt_asm Jt_disasm Jt_isa Jt_jasan Jt_jcfi Jt_obj Jt_vm List Option Progs Reg
