test/test_equiv.ml: Alcotest Insn Janitizer Jt_asm Jt_dbt Jt_isa Jt_jasan Jt_jcfi Jt_obj Jt_vm List Printf Progs QCheck2 QCheck_alcotest Reg Sysno
