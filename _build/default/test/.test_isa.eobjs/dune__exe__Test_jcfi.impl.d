test/test_jcfi.ml: Alcotest Janitizer Jt_asm Jt_isa Jt_jcfi Jt_obj Jt_vm List Progs Reg
