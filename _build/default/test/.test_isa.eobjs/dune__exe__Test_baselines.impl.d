test/test_baselines.ml: Abi Alcotest Char Encode Insn Janitizer Jt_asm Jt_baselines Jt_isa Jt_jasan Jt_jcfi Jt_obj Jt_vm List Progs Reg String Sysno
