test/test_metrics.ml: Alcotest Float Jt_dbt Jt_metrics Jt_vm List Progs
