test/test_juliet.mli:
