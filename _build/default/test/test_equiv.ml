(* Property: for random (terminating) programs, execution under the DBT
   engine — with and without JASan attached — is observationally
   equivalent to native interpretation.  This is the soundness claim at
   the heart of the paper: run-time modification must never change what
   a working program computes. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

type sop =
  | Alu of Insn.binop * int * int  (* reg idx 0-5, imm *)
  | Movi of int * int
  | St of int * int  (* reg, word offset *)
  | Ld of int * int
  | Pushpop of int
  | Fwd of int  (* unconditional skip *)
  | Cmpfwd of Insn.cond * int * int * int  (* cond, reg, imm, skip *)

type seg = sop list

let reg i = Reg.of_index (i mod 6)

let gen_sop =
  let open QCheck2.Gen in
  oneof
    [
      map3
        (fun op r v -> Alu (op, r, v))
        (oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Mul ])
        (int_bound 5) (int_bound 1000);
      map2 (fun r v -> Movi (r, v)) (int_bound 5) (int_bound 100000);
      map2 (fun r o -> St (r, o)) (int_bound 5) (int_bound 60);
      map2 (fun r o -> Ld (r, o)) (int_bound 5) (int_bound 60);
      map (fun r -> Pushpop r) (int_bound 5);
      map (fun k -> Fwd (1 + (k mod 3))) (int_bound 10);
      (let* c = oneofl [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Ugt; Insn.Le ] in
       let* r = int_bound 5 in
       let* v = int_bound 50 in
       let* k = int_bound 3 in
       return (Cmpfwd (c, r, v, 1 + k)));
    ]

let gen_prog =
  QCheck2.Gen.(list_size (int_range 3 15) (list_size (int_range 1 6) gen_sop))

let build_prog (segs : seg list) =
  let n = List.length segs in
  let seg_label i = Printf.sprintf "s%d" (min i n) in
  let items =
    List.concat
      (List.mapi
         (fun i ops ->
           label (seg_label i)
           :: List.concat_map
                (fun op ->
                  match op with
                  | Alu (o, r, v) -> [ binopi o (reg r) v ]
                  | Movi (r, v) -> [ movi (reg r) v ]
                  | St (r, o) -> [ st (mem_b ~disp:(4 * o) Reg.r6) (reg r) ]
                  | Ld (r, o) -> [ ld (reg r) (mem_b ~disp:(4 * o) Reg.r6) ]
                  | Pushpop r -> [ push (reg r); pop (reg r) ]
                  | Fwd k -> [ jmp (seg_label (i + k)) ]
                  | Cmpfwd (c, r, v, k) ->
                    [ cmpi (reg r) v; jcc c (seg_label (i + k)) ])
                ops)
         segs)
  in
  let out =
    List.concat_map
      (fun r -> [ mov Reg.r0 (reg r); syscall Sysno.write_int ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  build ~name:"rand" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
    ~entry:"main"
    ~datas:[ data "buf" [ Dspace 256 ] ]
    [
      func "main"
        ([ addr_of_data ~pic:false Reg.r6 "buf" ]
        @ items
        @ [ label (seg_label n) ]
        @ out
        @ [ movi Reg.r0 0; syscall Sysno.exit_ ]);
    ]

let observe (r : Jt_vm.Vm.result) = (r.r_status, r.r_output, r.r_icount)

let run_native m = observe (Progs.run_native m)

let run_dbt m =
  let vm = Jt_vm.Vm.make ~registry:(Progs.registry_for m) in
  let engine = Jt_dbt.Dbt.create ~vm () in
  Jt_vm.Vm.boot vm ~main:"rand";
  Jt_dbt.Dbt.run engine;
  observe (Jt_vm.Vm.result vm)

let run_jasan m =
  let tool, _ = Jt_jasan.Jasan.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"rand" ()
  in
  observe o.o_result

let run_jcfi m =
  let tool, _ = Jt_jcfi.Jcfi.create () in
  let o =
    Janitizer.Driver.run ~tool ~registry:(Progs.registry_for m) ~main:"rand" ()
  in
  observe o.o_result

let prop_dbt_transparent =
  QCheck2.Test.make ~name:"DBT == interpreter on random programs" ~count:120
    gen_prog (fun segs ->
      let m = build_prog segs in
      run_native m = run_dbt m)

let prop_jasan_transparent =
  QCheck2.Test.make ~name:"JASan-instrumented == native (observable)"
    ~count:60 gen_prog (fun segs ->
      let m = build_prog segs in
      let s, out, _ = run_native m in
      let s', out', _ = run_jasan m in
      s = s' && out = out')

let prop_jcfi_transparent =
  QCheck2.Test.make ~name:"JCFI-instrumented == native (observable)" ~count:60
    gen_prog (fun segs ->
      let m = build_prog segs in
      let s, out, _ = run_native m in
      let s', out', _ = run_jcfi m in
      s = s' && out = out')

let () =
  Alcotest.run "equivalence"
    [
      ( "transparency",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dbt_transparent; prop_jasan_transparent; prop_jcfi_transparent ]
      );
    ]
