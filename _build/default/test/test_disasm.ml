(* Static disassembly: coverage, jump tables, data-in-code, scanning. *)

open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

let simple_module () =
  build ~name:"simple" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
    [
      func "helper" [ addi Reg.r0 1; ret ];
      func "main"
        [
          movi Reg.r0 5;
          call "helper";
          cmpi Reg.r0 3;
          jcc Insn.Gt "big";
          movi Reg.r1 0;
          jmp "out";
          label "big";
          movi Reg.r1 1;
          label "out";
          syscall Sysno.exit_;
        ];
    ]

let test_full_coverage () =
  let m = simple_module () in
  let d = Jt_disasm.Disasm.run m in
  let covered, total = Jt_disasm.Disasm.code_stats d in
  (* Everything except inter-function alignment padding decodes. *)
  Alcotest.(check bool) "high coverage" true (covered * 100 / total > 90);
  (* Function entries: _init, _fini, helper, main. *)
  Alcotest.(check int) "entries" 4 (List.length d.func_entries)

let test_blocks_split_at_targets () =
  let m = simple_module () in
  let d = Jt_disasm.Disasm.run m in
  let main = Jt_obj.Objfile.find_symbol m "main" |> Option.get in
  let leaders = Jt_disasm.Disasm.block_starts d in
  (* main entry, post-call return site, taken target "big", join "out" ... *)
  let in_main =
    List.filter (fun a -> a >= main.vaddr && a < main.vaddr + main.size) leaders
  in
  Alcotest.(check bool) "several leaders in main" true (List.length in_main >= 4)

let test_data_in_code_not_decoded () =
  let blob = String.make 64 '\xF9' in
  let m =
    build ~name:"datty" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [ func "main" [ movi Reg.r0 0; syscall Sysno.exit_; label "d"; Bytes blob ] ]
  in
  let d = Jt_disasm.Disasm.run m in
  let main = Jt_obj.Objfile.find_symbol m "main" |> Option.get in
  (* the blob starts 8 bytes into main *)
  Alcotest.(check bool)
    "blob not decoded" false
    (Jt_disasm.Disasm.is_insn_boundary d (main.vaddr + 8 + 1))

let jump_table_module () =
  build ~name:"jt" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
    [
      func "main"
        [
          movi Reg.r1 2;
          cmpi Reg.r1 2;
          jcc Insn.Ugt "out";
          addr_of_label ~pic:false Reg.r2 "table";
          I (Jt_asm.Sinsn.Sjmp_ind_m (mem_bi ~scale:4 Reg.r2 Reg.r1));
          label "table";
          Inline_table [ "a"; "b"; "c" ];
          label "a";
          movi Reg.r0 1;
          jmp "out";
          label "b";
          movi Reg.r0 2;
          jmp "out";
          label "c";
          movi Reg.r0 3;
          label "out";
          syscall Sysno.exit_;
        ];
    ]

let test_jump_table_recovery () =
  let d = Jt_disasm.Disasm.run (jump_table_module ()) in
  match d.jump_tables with
  | [ (_, targets) ] -> Alcotest.(check int) "3 targets" 3 (List.length targets)
  | l -> Alcotest.failf "expected 1 recovered table, got %d" (List.length l)

let test_pointer_scan () =
  (* A non-PIC module materializing &helper as an immediate: the sliding
     window must find it. *)
  let m =
    build ~name:"scan" ~kind:Jt_obj.Objfile.Exec_nonpic ~entry:"main"
      [
        func "helper" [ ret ];
        func "main"
          [ addr_of_func ~pic:false Reg.r1 "helper"; call_reg Reg.r1;
            movi Reg.r0 0; syscall Sysno.exit_ ];
      ]
  in
  let helper = (Jt_obj.Objfile.find_symbol m "helper" |> Option.get).vaddr in
  let hits = Jt_disasm.Disasm.scan_code_pointers m in
  Alcotest.(check bool) "helper found" true (List.mem helper hits)

let test_speculative_boundary () =
  let m = simple_module () in
  let main = (Jt_obj.Objfile.find_symbol m "main" |> Option.get).vaddr in
  Alcotest.(check bool)
    "entry decodes" true
    (Jt_disasm.Disasm.speculative_insn_boundary m main);
  Alcotest.(check bool)
    "mid-immediate does not" false
    (* main starts with movi (6 bytes): offset 2 is inside the imm32 *)
    (Jt_disasm.Disasm.speculative_insn_boundary m (main + 2)
    && Jt_disasm.Disasm.speculative_insn_boundary m (main + 3))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_listing () =
  let m = simple_module () in
  let d = Jt_disasm.Disasm.run m in
  let listing = Format.asprintf "%a" Jt_disasm.Disasm.pp_listing d in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("listing mentions " ^ needle) true
        (contains ~needle listing))
    [ "<main>:"; "<helper>:"; "call"; "section .text" ]

let test_plt_seeded () =
  let m =
    build ~name:"pltm" ~kind:Jt_obj.Objfile.Exec_nonpic ~deps:[ "libc.so" ]
      ~entry:"main"
      [ func "main" [ call_import "malloc"; movi Reg.r0 0; syscall Sysno.exit_ ] ]
  in
  let d = Jt_disasm.Disasm.run m in
  let plt = Jt_obj.Objfile.find_section m ".plt" |> Option.get in
  Alcotest.(check bool)
    "plt stub decoded" true
    (Jt_disasm.Disasm.is_insn_boundary d plt.vaddr)

let () =
  Alcotest.run "disasm"
    [
      ( "traversal",
        [
          Alcotest.test_case "coverage" `Quick test_full_coverage;
          Alcotest.test_case "block splitting" `Quick test_blocks_split_at_targets;
          Alcotest.test_case "data in code" `Quick test_data_in_code_not_decoded;
          Alcotest.test_case "jump table" `Quick test_jump_table_recovery;
          Alcotest.test_case "plt" `Quick test_plt_seeded;
          Alcotest.test_case "listing" `Quick test_listing;
        ] );
      ( "scanning",
        [
          Alcotest.test_case "pointer scan" `Quick test_pointer_scan;
          Alcotest.test_case "speculative" `Quick test_speculative_boundary;
        ] );
    ]
