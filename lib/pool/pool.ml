(* A classic bounded-queue domain pool.  One mutex per pool guards the
   queue and lifecycle flags; two conditions provide the producer
   ([not_full], awaited by [submit]) and consumer ([not_empty], awaited
   by idle workers) directions.  Each future carries its own mutex and
   condition so awaiting one job never contends with the pool's queue
   traffic.

   Exceptions never kill a worker: the job's outcome — normal or
   exceptional, with the backtrace captured on the worker — is stored in
   the future and re-raised by [await] on the awaiting domain. *)

type 'a outcome =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable f_outcome : 'a outcome;
}

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;  (** signalled when a job is queued / on close *)
  not_full : Condition.t;  (** signalled when a job is dequeued *)
  queue : (unit -> unit) Queue.t;
  capacity : int;
  jobs : int;
  mutable closed : bool;  (** no new submissions; workers drain and exit *)
  mutable joined : bool;  (** shutdown already completed *)
  mutable workers : unit Domain.t list;
}

let size t = t.jobs

let fulfill fut outcome =
  Mutex.lock fut.f_lock;
  fut.f_outcome <- outcome;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_lock

let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    match Queue.take_opt t.queue with
    | None ->
      (* empty and closed: drain complete *)
      Mutex.unlock t.lock;
      ()
    | Some job ->
      Condition.signal t.not_full;
      Mutex.unlock t.lock;
      job ();
      next ()
  in
  next ()

let create ?queue_capacity ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let capacity = Option.value ~default:(4 * jobs) queue_capacity in
  if capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity;
      jobs;
      closed = false;
      joined = false;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  let fut =
    { f_lock = Mutex.create (); f_cond = Condition.create (); f_outcome = Pending }
  in
  let job () =
    match f () with
    | v -> fulfill fut (Done v)
    | exception e -> fulfill fut (Raised (e, Printexc.get_raw_backtrace ()))
  in
  Mutex.lock t.lock;
  while (not t.closed) && Queue.length t.queue >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock;
  fut

let await fut =
  Mutex.lock fut.f_lock;
  while fut.f_outcome = Pending do
    Condition.wait fut.f_cond fut.f_lock
  done;
  let outcome = fut.f_outcome in
  Mutex.unlock fut.f_lock;
  match outcome with
  | Pending -> assert false
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt

let map t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* Wait for everything before re-raising the leftmost failure, so a
     crashing job never leaves siblings running unobserved. *)
  let results =
    List.map
      (fun fut ->
        match await fut with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      futs
  in
  List.map
    (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  let joined = t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if not joined then List.iter Domain.join t.workers

let with_pool ?queue_capacity ~jobs f =
  let t = create ?queue_capacity ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ?queue_capacity ~jobs f xs =
  with_pool ?queue_capacity ~jobs (fun t -> map t f xs)
