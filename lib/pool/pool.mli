(** A fixed-size pool of worker domains with a bounded work queue and
    future-style results (DESIGN.md §10).

    The pool exists so the evaluation harness can run *independent*
    simulator jobs (one workload, one configuration) concurrently: each
    worker is a real [Domain], and the framework's per-run sinks
    ([Jt_metrics.Metrics.Counters], [Jt_trace.Trace]) are domain-local,
    so jobs never observe each other's counters or events.  Parallelism
    is a wall-clock optimization only — a job computes exactly what it
    would compute on the caller's domain.

    Jobs must not share mutable state with each other unless they
    synchronize it themselves; everything the simulator touches per run
    (VM, engine, tool instances) is created inside the job. *)

type t

type 'a future

val create : ?queue_capacity:int -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains (>= 1, [Invalid_argument] otherwise).
    [queue_capacity] (default [4 * jobs]) bounds the number of submitted
    but not yet started jobs; {!submit} blocks when the queue is full,
    providing backpressure instead of unbounded buffering. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job and return its future.  Blocks while the queue is
    full.  Raises [Invalid_argument] on a pool that has been
    {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the job completes.  A job that raised re-raises the same
    exception (with its original backtrace) here, on the awaiting
    domain; the worker survives and keeps serving jobs. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map p f xs] runs [f x] for every element as pool jobs and returns
    the results in input order (submission order, not completion order).
    If any job raised, the first (leftmost) failure is re-raised — after
    every job has finished, so no work is silently abandoned mid-flight. *)

val shutdown : t -> unit
(** Finish every queued job, then join all workers.  Idempotent.
    Subsequent {!submit}s raise. *)

val with_pool : ?queue_capacity:int -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the scope, and {!shutdown} (also on exception). *)

val run : ?queue_capacity:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs (fun p -> map p f xs)]. *)
