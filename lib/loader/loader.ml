open Jt_obj

type loaded = { lmod : Objfile.t; base : int; load_order : int }

let runtime_addr l a = l.base + a
let link_addr l a = a - l.base

let contains l a =
  let la = link_addr l a in
  List.exists (fun s -> Section.contains s la) l.lmod.sections

let in_code l a =
  let la = link_addr l a in
  List.exists (fun s -> Section.contains s la) (Objfile.code_sections l.lmod)

exception Load_error of string

let err fmt = Format.kasprintf (fun s -> raise (Load_error s)) fmt

let ld_so =
  let open Jt_asm.Builder in
  build ~name:"ld.so" ~kind:Objfile.Shared ~features:[ Objfile.Handwritten_asm ]
    ~datas:[]
    [
      (* On entry the lazy PLT stub has pushed the import index; the
         resolve syscall replaces it on the stack with the target address,
         and ret transfers there: the loader's ret-as-call pattern. *)
      func ~exported:true "__dl_resolve"
        [ Dsl.syscall Jt_isa.Sysno.resolve; Dsl.ret ];
    ]

type t = {
  mem : Jt_mem.Memory.t;
  registry : (string, Objfile.t) Hashtbl.t;
  mutable loaded : loaded list;  (* reverse load order *)
  mutable callbacks : (loaded -> unit) list;
  mutable unload_callbacks : (loaded -> unit) list;
  mutable next_pic_base : int;
  mutable main : loaded option;
  mutable pinned : int;  (* load_order below this cannot be dlclosed *)
  (* Interval index over the run-time address spans of every loaded
     section, sorted by start address, so [module_at] is a binary search
     instead of a scan over all modules.  Rebuilt on load and dlclose
     (rare) to keep the lookup (hot: every block translation) cheap. *)
  mutable index : (int * int * loaded) array;
}

let pic_base0 = 0x1000_0000
let pic_slot = 0x0100_0000

let create ~mem ~registry =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m : Objfile.t) ->
      if Hashtbl.mem tbl m.name then err "duplicate module %s in registry" m.name;
      Hashtbl.add tbl m.name m)
    registry;
  if not (Hashtbl.mem tbl "ld.so") then Hashtbl.add tbl "ld.so" ld_so;
  {
    mem;
    registry = tbl;
    loaded = [];
    callbacks = [];
    unload_callbacks = [];
    next_pic_base = pic_base0;
    main = None;
    pinned = 0;
    index = [||];
  }

let rebuild_index t =
  let spans =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun (s : Section.t) ->
            if Section.size s = 0 then None
            else
              Some
                (runtime_addr l s.vaddr, runtime_addr l (Section.end_vaddr s), l))
          l.lmod.sections)
      t.loaded
  in
  let arr = Array.of_list spans in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) arr;
  t.index <- arr

let mem t = t.mem
let on_load t f = t.callbacks <- f :: t.callbacks
let loaded_modules t = List.rev t.loaded
let find_loaded t name =
  List.find_opt (fun l -> String.equal l.lmod.name name) t.loaded

(* Binary search for the section span containing [a]: find the last span
   starting at or before [a] and check containment.  Section spans never
   overlap (the assembler lays sections out disjointly and each PIC module
   gets its own base slot), so one candidate suffices. *)
let module_at t a =
  let c = Jt_metrics.Metrics.Counters.current () in
  c.c_module_lookups <- c.c_module_lookups + 1;
  let arr = t.index in
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    c.c_lookup_probes <- c.c_lookup_probes + 1;
    let mid = (!lo + !hi) / 2 in
    let b, _, _ = arr.(mid) in
    if b <= a then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then None
  else
    let b, e, l = arr.(!lo - 1) in
    if a >= b && a < e then Some l else None

let resolve_symbol t name =
  let rec go = function
    | [] -> None
    | l :: rest -> (
      match Objfile.find_export l.lmod name with
      | Some s when s.exported -> Some (l, s)
      | Some _ | None -> go rest)
  in
  go (loaded_modules t)

(* Copy a module's sections into memory at its load base. *)
let materialize t (l : loaded) =
  List.iter
    (fun (s : Section.t) ->
      Jt_mem.Memory.write_string t.mem (runtime_addr l s.vaddr) s.data)
    l.lmod.sections

(* Apply R_RELATIVE relocations (PIC local pointers). *)
let apply_relative t (l : loaded) =
  List.iter
    (fun (r : Reloc.t) ->
      match r.kind with
      | Reloc.Rel_relative v ->
        Jt_mem.Memory.write32 t.mem (runtime_addr l r.offset) (runtime_addr l v)
      | Reloc.Rel_got _ -> ())
    l.lmod.relocs

(* Initialize GOT slots: lazy imports point at their PLT lazy stub; eager
   imports (including the resolver slot) resolve immediately. *)
let bind_got t (l : loaded) =
  List.iter
    (fun (imp : Objfile.import) ->
      let slot = runtime_addr l imp.imp_got in
      match imp.imp_plt with
      | Some _ ->
        let lazy_sym = imp.imp_sym ^ "@plt.lazy" in
        (match Objfile.find_symbol l.lmod lazy_sym with
        | Some s -> Jt_mem.Memory.write32 t.mem slot (runtime_addr l s.vaddr)
        | None -> err "%s: missing PLT lazy stub for %s" l.lmod.name imp.imp_sym)
      | None -> (
        match resolve_symbol t imp.imp_sym with
        | Some (owner, s) ->
          Jt_mem.Memory.write32 t.mem slot (runtime_addr owner s.vaddr)
        | None -> err "%s: unresolved import %s" l.lmod.name imp.imp_sym))
    l.lmod.imports

(* Load [name] and its dependency closure (dependencies first), without
   binding GOTs yet.  Returns newly loaded records in load order. *)
let rec load_closure t name acc =
  if find_loaded t name <> None || List.exists (fun l -> String.equal l.lmod.name name) acc
  then acc
  else
    let m =
      match Hashtbl.find_opt t.registry name with
      | Some m -> m
      | None -> err "module not found: %s" name
    in
    let acc = List.fold_left (fun acc dep -> load_closure t dep acc) acc m.deps in
    let base =
      if Objfile.is_pic m then begin
        let b = t.next_pic_base in
        t.next_pic_base <- t.next_pic_base + pic_slot;
        b
      end
      else 0
    in
    let l = { lmod = m; base; load_order = List.length t.loaded + List.length acc } in
    acc @ [ l ]

let commit t news =
  (* Two-phase: materialize everything, then bind (an import may resolve
     to a module later in the closure). *)
  List.iter (fun l -> materialize t l) news;
  t.loaded <- List.rev_append news t.loaded;
  rebuild_index t;
  List.iter
    (fun l ->
      apply_relative t l;
      bind_got t l)
    news;
  if Jt_trace.Trace.is_enabled () then
    List.iter
      (fun l ->
        Jt_trace.Trace.emit
          (Jt_trace.Trace.Module_load { name = l.lmod.Objfile.name; base = l.base }))
      news;
  List.iter (fun l -> List.iter (fun f -> f l) (List.rev t.callbacks)) news

let load_main t name =
  if t.main <> None then err "main module already loaded";
  let news = load_closure t name [] in
  commit t news;
  let l =
    match find_loaded t name with Some l -> l | None -> assert false
  in
  if l.lmod.entry = None then err "%s has no entry point" name;
  t.main <- Some l;
  t.pinned <- List.length t.loaded;
  l

let dlopen t name =
  match find_loaded t name with
  | Some l -> l
  | None ->
    let news = load_closure t name [] in
    commit t news;
    (match find_loaded t name with Some l -> l | None -> assert false)

let on_unload t f = t.unload_callbacks <- f :: t.unload_callbacks

let dlclose t name =
  match find_loaded t name with
  | Some l when l.load_order >= t.pinned ->
    (* Another loaded module may still depend on it; a real loader
       refcounts — here dependents of a dlopen'd module were loaded with
       it, so unloading the whole group head is the supported pattern. *)
    let still_needed =
      List.exists
        (fun other ->
          other.load_order <> l.load_order
          && List.mem name other.lmod.Objfile.deps
          && other.load_order >= t.pinned)
        t.loaded
    in
    if still_needed then false
    else begin
      t.loaded <- List.filter (fun o -> o.load_order <> l.load_order) t.loaded;
      rebuild_index t;
      if Jt_trace.Trace.is_enabled () then
        Jt_trace.Trace.emit
          (Jt_trace.Trace.Module_unload { name = l.lmod.Objfile.name });
      List.iter (fun f -> f l) t.unload_callbacks;
      true
    end
  | Some _ | None -> false

let resolve_plt_index t ~caller_pc ~index =
  let l =
    match module_at t caller_pc with
    | Some l -> l
    | None -> err "resolve: caller pc %x not in any module" caller_pc
  in
  let plt_imports =
    List.filter (fun (i : Objfile.import) -> i.imp_plt <> None) l.lmod.imports
  in
  let plt_imports =
    List.sort
      (fun (a : Objfile.import) b -> compare a.imp_plt b.imp_plt)
      plt_imports
  in
  match List.nth_opt plt_imports index with
  | None -> err "resolve: bad PLT index %d in %s" index l.lmod.name
  | Some imp -> (
    match resolve_symbol t imp.imp_sym with
    | None -> err "resolve: unresolved symbol %s" imp.imp_sym
    | Some (owner, s) ->
      let target = runtime_addr owner s.vaddr in
      Jt_mem.Memory.write32 t.mem (runtime_addr l imp.imp_got) target;
      if Jt_trace.Trace.is_enabled () then
        Jt_trace.Trace.emit
          (Jt_trace.Trace.Plt_resolve { caller = caller_pc; target });
      target)

let entry_point t =
  match t.main with
  | Some l -> (
    match l.lmod.entry with Some e -> runtime_addr l e | None -> assert false)
  | None -> err "no main module loaded"

let init_entries t =
  List.filter_map
    (fun l ->
      match Objfile.find_symbol l.lmod "_init" with
      | Some s -> Some (runtime_addr l s.vaddr)
      | None -> None)
    (loaded_modules t)
