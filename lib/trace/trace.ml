(* Structured tracing & profiling: a fixed-capacity ring buffer of typed
   runtime events plus span-style phase timers with simulated-cycle
   attribution.

   The layer is a domain-local sink (like [Metrics.Counters]) so emit
   points anywhere in the runtime can reach it without threading a handle
   through every API, while concurrent driver runs on a [Jt_pool] each
   capture their own stream.  The contract with emitters is:

     if Jt_trace.Trace.is_enabled () then
       Jt_trace.Trace.emit (Jt_trace.Trace.Ibl_hit { site; target })

   i.e. the disabled path costs a DLS load plus one branch and never
   allocates (the event is constructed inside the guard).  Enabling
   tracing must not perturb the simulated machine: emitters only observe,
   they never charge cycles or touch guest state, so status, output,
   icount, cycles and violations are bit-identical with tracing on or
   off (asserted by `bench trace-overhead`). *)

type origin = Static | Dynamic

type phase = Analyze | Rewrite | Load | Run

let phase_name = function
  | Analyze -> "analyze"
  | Rewrite -> "rewrite"
  | Load -> "load"
  | Run -> "run"

let origin_name = function Static -> "static" | Dynamic -> "dynamic"

type event =
  | Block_translate of { pc : int; insns : int; origin : origin }
  | Block_exec of { pc : int }
  | Chain_link of { from_pc : int; to_pc : int }
  | Chain_sever of { from_pc : int; to_pc : int }
  | Ibl_hit of { site : int; target : int }
  | Ibl_miss of { site : int; target : int }
  | Trace_build of { head : int; blocks : int }
  | Trace_teardown of { head : int }
  | Trace_elide of {
      head : int;  (** head address of the trace the decision belongs to *)
      insn : int;  (** address of the access whose check the trace elides *)
      reason : string;
          (** ["trace-dom"] (dominated within the trace by an identical
              check), ["trace-canary"] (redundant canary unpoison) or
              ["trace-streak"] (loop-invariant, justified by the trace's
              own back-edge) *)
      witness : int;
          (** address of the earlier access whose check subsumes this
              one; [0] if unknown *)
    }
  | Flush_range of { start : int; len : int }
  | Module_load of { name : string; base : int }
  | Module_unload of { name : string }
  | Dlopen of { name : string; handle : int }
  | Dlclose of { name : string; ok : bool }
  | Plt_resolve of { caller : int; target : int }
  | Shadow_poison of { addr : int; len : int; state : int }
  | Shadow_unpoison of { addr : int; len : int }
  | Check_elide of {
      insn : int;  (** address of the access whose check was elided *)
      fn : int;  (** entry address of the containing function *)
      reason : string;  (** "frame" or "dom" *)
      witness : int;  (** dominating checked access for "dom", else 0 *)
    }
  | Violation of {
      kind : string;
      addr : int;
      pc : int;
      vmodule : string;  (** module containing the faulting pc, or "?" *)
      origin : origin;  (** provenance of the executing block *)
    }
  | Cfi_table of { name : string; entries : int }
  | Store_hit of { name : string; source : string }
      (* ["mem"] (in-memory LRU) or ["disk"] *)
  | Store_miss of { name : string }
  | Store_evict of { name : string }
  | Store_corrupt of { name : string; why : string }
  | Phase_begin of { phase : phase }
  | Phase_end of { phase : phase; host_s : float; cycles : int }

(* ---- ring buffer ---- *)

let default_capacity = 65536

let dummy = Block_exec { pc = 0 }

type ring = {
  buf : event array;
  cap : int;
  mutable total : int;  (** events ever emitted; head = total mod cap *)
}

(* ---- phase accumulators ---- *)

type phase_tot = {
  mutable pt_host : float;  (** accumulated wall-clock seconds *)
  mutable pt_cycles : int;  (** attributed simulated cycles *)
  mutable pt_count : int;  (** completed spans *)
  mutable pt_open : float;  (** start time of the open span, or nan *)
  mutable pt_open_cycles : int;  (** cycles attributed before the span closed *)
}

let phases = [ Analyze; Rewrite; Load; Run ]

let phase_index = function Analyze -> 0 | Rewrite -> 1 | Load -> 2 | Run -> 3

(* ---- domain-local trace state ----

   Everything mutable — the on/off flag, the ring, the exec-origin
   latch, the phase accumulators — lives in one record stored in
   [Domain.DLS], so two driver runs on different pool domains capture
   disjoint streams instead of silently interleaving into one ring. *)

type state = {
  mutable s_enabled : bool;
  mutable s_ring : ring option;
  mutable s_exec_origin : origin;
      (** provenance of the currently executing translated block,
          maintained by the DBT so violation reports (surfacing in
          lib/vm, far below the DBT) can carry static-vs-dynamic origin;
          only updated while tracing is enabled *)
  s_totals : phase_tot array;
}

let fresh_state () =
  {
    s_enabled = false;
    s_ring = None;
    s_exec_origin = Dynamic;
    s_totals =
      Array.init 4 (fun _ ->
          { pt_host = 0.0; pt_cycles = 0; pt_count = 0; pt_open = Float.nan;
            pt_open_cycles = 0 });
  }

let key = Domain.DLS.new_key fresh_state

let state () = Domain.DLS.get key

let is_enabled () = (state ()).s_enabled

let exec_origin () = (state ()).s_exec_origin

let set_exec_origin o = (state ()).s_exec_origin <- o

(* Emit sites guard with [if is_enabled () then emit ...] so the
   disabled path never even constructs the event; the re-check here
   makes a stray unguarded [emit] after [disable] harmless too. *)
let emit ev =
  let st = state () in
  if st.s_enabled then
    match st.s_ring with
    | None -> ()
    | Some r ->
      r.buf.(r.total mod r.cap) <- ev;
      r.total <- r.total + 1

(* ---- phase spans ---- *)

let phase_begin p =
  let st = state () in
  if st.s_enabled then begin
    let t = st.s_totals.(phase_index p) in
    t.pt_open <- Sys.time ();
    t.pt_open_cycles <- 0;
    emit (Phase_begin { phase = p })
  end

let phase_add_cycles p n =
  let st = state () in
  if st.s_enabled then begin
    let t = st.s_totals.(phase_index p) in
    t.pt_cycles <- t.pt_cycles + n;
    if not (Float.is_nan t.pt_open) then t.pt_open_cycles <- t.pt_open_cycles + n
  end

let phase_end p =
  let st = state () in
  if st.s_enabled then begin
    let t = st.s_totals.(phase_index p) in
    let host_s =
      if Float.is_nan t.pt_open then 0.0 else Sys.time () -. t.pt_open
    in
    t.pt_host <- t.pt_host +. host_s;
    t.pt_count <- t.pt_count + 1;
    emit (Phase_end { phase = p; host_s; cycles = t.pt_open_cycles });
    t.pt_open <- Float.nan;
    t.pt_open_cycles <- 0
  end

let in_phase p f =
  if not (is_enabled ()) then f ()
  else begin
    phase_begin p;
    match f () with
    | v ->
      phase_end p;
      v
    | exception e ->
      phase_end p;
      raise e
  end

type phase_summary = {
  ps_phase : phase;
  ps_spans : int;
  ps_host_s : float;
  ps_cycles : int;
}

let phase_totals () =
  let st = state () in
  List.map
    (fun p ->
      let t = st.s_totals.(phase_index p) in
      { ps_phase = p; ps_spans = t.pt_count; ps_host_s = t.pt_host; ps_cycles = t.pt_cycles })
    phases

(* ---- lifecycle ---- *)

let clear () =
  let st = state () in
  (match st.s_ring with Some r -> r.total <- 0 | None -> ());
  Array.iter
    (fun t ->
      t.pt_host <- 0.0;
      t.pt_cycles <- 0;
      t.pt_count <- 0;
      t.pt_open <- Float.nan;
      t.pt_open_cycles <- 0)
    st.s_totals;
  st.s_exec_origin <- Dynamic

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  let st = state () in
  (match st.s_ring with
  | Some r when r.cap = capacity -> ()
  | Some _ | None ->
    st.s_ring <- Some { buf = Array.make capacity dummy; cap = capacity; total = 0 });
  clear ();
  st.s_enabled <- true

let disable () = (state ()).s_enabled <- false

let emitted () = match (state ()).s_ring with Some r -> r.total | None -> 0

let dropped () =
  match (state ()).s_ring with Some r -> max 0 (r.total - r.cap) | None -> 0

let events () =
  match (state ()).s_ring with
  | None -> []
  | Some r ->
    let n = min r.total r.cap in
    let first = r.total - n in
    List.init n (fun i -> r.buf.((first + i) mod r.cap))

(* ---- snapshots: carrying a domain's capture back to an aggregator ---- *)

type snapshot = {
  sn_events : event list;
  sn_emitted : int;
  sn_dropped : int;
  sn_phases : phase_summary list;
}

let snapshot () =
  {
    sn_events = events ();
    sn_emitted = emitted ();
    sn_dropped = dropped ();
    sn_phases = phase_totals ();
  }

let merge snaps =
  let zero =
    List.map
      (fun p -> { ps_phase = p; ps_spans = 0; ps_host_s = 0.0; ps_cycles = 0 })
      phases
  in
  let add_phases acc ps =
    List.map2
      (fun a b ->
        { a with
          ps_spans = a.ps_spans + b.ps_spans;
          ps_host_s = a.ps_host_s +. b.ps_host_s;
          ps_cycles = a.ps_cycles + b.ps_cycles })
      acc ps
  in
  List.fold_left
    (fun acc sn ->
      {
        sn_events = acc.sn_events @ sn.sn_events;
        sn_emitted = acc.sn_emitted + sn.sn_emitted;
        sn_dropped = acc.sn_dropped + sn.sn_dropped;
        sn_phases = add_phases acc.sn_phases sn.sn_phases;
      })
    { sn_events = []; sn_emitted = 0; sn_dropped = 0; sn_phases = zero }
    snaps

(* ---- JSONL export / import ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_to_json ev =
  let obj fields =
    "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields) ^ "}"
  in
  let i v = string_of_int v in
  let s v = "\"" ^ json_escape v ^ "\"" in
  let b v = if v then "true" else "false" in
  match ev with
  | Block_translate { pc; insns; origin } ->
    obj [ ("ev", s "block_translate"); ("pc", i pc); ("insns", i insns); ("origin", s (origin_name origin)) ]
  | Block_exec { pc } -> obj [ ("ev", s "block_exec"); ("pc", i pc) ]
  | Chain_link { from_pc; to_pc } ->
    obj [ ("ev", s "chain_link"); ("from", i from_pc); ("to", i to_pc) ]
  | Chain_sever { from_pc; to_pc } ->
    obj [ ("ev", s "chain_sever"); ("from", i from_pc); ("to", i to_pc) ]
  | Ibl_hit { site; target } -> obj [ ("ev", s "ibl_hit"); ("site", i site); ("target", i target) ]
  | Ibl_miss { site; target } -> obj [ ("ev", s "ibl_miss"); ("site", i site); ("target", i target) ]
  | Trace_build { head; blocks } ->
    obj [ ("ev", s "trace_build"); ("head", i head); ("blocks", i blocks) ]
  | Trace_teardown { head } -> obj [ ("ev", s "trace_teardown"); ("head", i head) ]
  | Trace_elide { head; insn; reason; witness } ->
    obj
      [ ("ev", s "trace_elide"); ("head", i head); ("insn", i insn);
        ("reason", s reason); ("witness", i witness) ]
  | Flush_range { start; len } -> obj [ ("ev", s "flush_range"); ("start", i start); ("len", i len) ]
  | Module_load { name; base } -> obj [ ("ev", s "module_load"); ("name", s name); ("base", i base) ]
  | Module_unload { name } -> obj [ ("ev", s "module_unload"); ("name", s name) ]
  | Dlopen { name; handle } -> obj [ ("ev", s "dlopen"); ("name", s name); ("handle", i handle) ]
  | Dlclose { name; ok } -> obj [ ("ev", s "dlclose"); ("name", s name); ("ok", b ok) ]
  | Plt_resolve { caller; target } ->
    obj [ ("ev", s "plt_resolve"); ("caller", i caller); ("target", i target) ]
  | Shadow_poison { addr; len; state } ->
    obj [ ("ev", s "shadow_poison"); ("addr", i addr); ("len", i len); ("state", i state) ]
  | Shadow_unpoison { addr; len } ->
    obj [ ("ev", s "shadow_unpoison"); ("addr", i addr); ("len", i len) ]
  | Check_elide { insn; fn; reason; witness } ->
    obj
      [ ("ev", s "check_elide"); ("insn", i insn); ("fn", i fn);
        ("reason", s reason); ("witness", i witness) ]
  | Violation { kind; addr; pc; vmodule; origin } ->
    obj
      [ ("ev", s "violation"); ("kind", s kind); ("addr", i addr); ("pc", i pc);
        ("module", s vmodule); ("origin", s (origin_name origin)) ]
  | Cfi_table { name; entries } ->
    obj [ ("ev", s "cfi_table"); ("name", s name); ("entries", i entries) ]
  | Store_hit { name; source } ->
    obj [ ("ev", s "store_hit"); ("name", s name); ("source", s source) ]
  | Store_miss { name } -> obj [ ("ev", s "store_miss"); ("name", s name) ]
  | Store_evict { name } -> obj [ ("ev", s "store_evict"); ("name", s name) ]
  | Store_corrupt { name; why } ->
    obj [ ("ev", s "store_corrupt"); ("name", s name); ("why", s why) ]
  | Phase_begin { phase } -> obj [ ("ev", s "phase_begin"); ("phase", s (phase_name phase)) ]
  | Phase_end { phase; host_s; cycles } ->
    obj
      [ ("ev", s "phase_end"); ("phase", s (phase_name phase));
        ("host_s", Printf.sprintf "%.6f" host_s); ("cycles", i cycles) ]

(* A deliberately small parser for the flat one-line objects emitted
   above — enough for round-trip tests and offline tooling, not a general
   JSON reader. *)

type jval = Jint of int | Jfloat of float | Jstr of string | Jbool of bool

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail why = failwith (Printf.sprintf "Trace.event_of_json: %s at %d" why !pos) in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected %c" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match line.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
            Buffer.add_char b (Char.chr (code land 0xFF));
            pos := !pos + 4
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    if !pos >= n then fail "missing value"
    else if line.[!pos] = '"' then Jstr (parse_string ())
    else if n - !pos >= 4 && String.sub line !pos 4 = "true" then begin
      pos := !pos + 4;
      Jbool true
    end
    else if n - !pos >= 5 && String.sub line !pos 5 = "false" then begin
      pos := !pos + 5;
      Jbool false
    end
    else begin
      let start = !pos in
      while
        !pos < n
        && (match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr pos
      done;
      if !pos = start then fail "bad literal";
      let tok = String.sub line start (!pos - start) in
      match int_of_string_opt tok with
      | Some v -> Jint v
      | None -> (
        match float_of_string_opt tok with
        | Some v -> Jfloat v
        | None -> fail "bad number")
    end
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let rec members () =
      let k = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        members ()
      end
      else expect '}'
    in
    members ()
  end;
  List.rev !fields

let event_of_json line =
  match parse_line line with
  | exception Failure _ -> None
  | fields ->
    let str k = match List.assoc_opt k fields with Some (Jstr v) -> Some v | _ -> None in
    let num k = match List.assoc_opt k fields with Some (Jint v) -> Some v | _ -> None in
    let flt k =
      match List.assoc_opt k fields with
      | Some (Jfloat v) -> Some v
      | Some (Jint v) -> Some (float_of_int v)
      | _ -> None
    in
    let boolean k = match List.assoc_opt k fields with Some (Jbool v) -> Some v | _ -> None in
    let origin k =
      match str k with Some "static" -> Some Static | Some "dynamic" -> Some Dynamic | _ -> None
    in
    let phase k =
      match str k with
      | Some "analyze" -> Some Analyze
      | Some "rewrite" -> Some Rewrite
      | Some "load" -> Some Load
      | Some "run" -> Some Run
      | _ -> None
    in
    let ( let* ) = Option.bind in
    let* tag = str "ev" in
    (match tag with
    | "block_translate" ->
      let* pc = num "pc" in
      let* insns = num "insns" in
      let* origin = origin "origin" in
      Some (Block_translate { pc; insns; origin })
    | "block_exec" ->
      let* pc = num "pc" in
      Some (Block_exec { pc })
    | "chain_link" ->
      let* from_pc = num "from" in
      let* to_pc = num "to" in
      Some (Chain_link { from_pc; to_pc })
    | "chain_sever" ->
      let* from_pc = num "from" in
      let* to_pc = num "to" in
      Some (Chain_sever { from_pc; to_pc })
    | "ibl_hit" ->
      let* site = num "site" in
      let* target = num "target" in
      Some (Ibl_hit { site; target })
    | "ibl_miss" ->
      let* site = num "site" in
      let* target = num "target" in
      Some (Ibl_miss { site; target })
    | "trace_build" ->
      let* head = num "head" in
      let* blocks = num "blocks" in
      Some (Trace_build { head; blocks })
    | "trace_teardown" ->
      let* head = num "head" in
      Some (Trace_teardown { head })
    | "trace_elide" ->
      let* head = num "head" in
      let* insn = num "insn" in
      let* reason = str "reason" in
      let* witness = num "witness" in
      Some (Trace_elide { head; insn; reason; witness })
    | "flush_range" ->
      let* start = num "start" in
      let* len = num "len" in
      Some (Flush_range { start; len })
    | "module_load" ->
      let* name = str "name" in
      let* base = num "base" in
      Some (Module_load { name; base })
    | "module_unload" ->
      let* name = str "name" in
      Some (Module_unload { name })
    | "dlopen" ->
      let* name = str "name" in
      let* handle = num "handle" in
      Some (Dlopen { name; handle })
    | "dlclose" ->
      let* name = str "name" in
      let* ok = boolean "ok" in
      Some (Dlclose { name; ok })
    | "plt_resolve" ->
      let* caller = num "caller" in
      let* target = num "target" in
      Some (Plt_resolve { caller; target })
    | "shadow_poison" ->
      let* addr = num "addr" in
      let* len = num "len" in
      let* state = num "state" in
      Some (Shadow_poison { addr; len; state })
    | "shadow_unpoison" ->
      let* addr = num "addr" in
      let* len = num "len" in
      Some (Shadow_unpoison { addr; len })
    | "check_elide" ->
      let* insn = num "insn" in
      let* fn = num "fn" in
      let* reason = str "reason" in
      let* witness = num "witness" in
      Some (Check_elide { insn; fn; reason; witness })
    | "violation" ->
      let* kind = str "kind" in
      let* addr = num "addr" in
      let* pc = num "pc" in
      let* vmodule = str "module" in
      let* origin = origin "origin" in
      Some (Violation { kind; addr; pc; vmodule; origin })
    | "cfi_table" ->
      let* name = str "name" in
      let* entries = num "entries" in
      Some (Cfi_table { name; entries })
    | "store_hit" ->
      let* name = str "name" in
      let* source = str "source" in
      Some (Store_hit { name; source })
    | "store_miss" ->
      let* name = str "name" in
      Some (Store_miss { name })
    | "store_evict" ->
      let* name = str "name" in
      Some (Store_evict { name })
    | "store_corrupt" ->
      let* name = str "name" in
      let* why = str "why" in
      Some (Store_corrupt { name; why })
    | "phase_begin" ->
      let* phase = phase "phase" in
      Some (Phase_begin { phase })
    | "phase_end" ->
      let* phase = phase "phase" in
      let* host_s = flt "host_s" in
      let* cycles = num "cycles" in
      Some (Phase_end { phase; host_s; cycles })
    | _ -> None)

let export oc =
  List.iter
    (fun ev ->
      output_string oc (event_to_json ev);
      output_char oc '\n')
    (events ())

(* ---- event-kind summary (for the CLI) ---- *)

let kind_name = function
  | Block_translate _ -> "block_translate"
  | Block_exec _ -> "block_exec"
  | Chain_link _ -> "chain_link"
  | Chain_sever _ -> "chain_sever"
  | Ibl_hit _ -> "ibl_hit"
  | Ibl_miss _ -> "ibl_miss"
  | Trace_build _ -> "trace_build"
  | Trace_teardown _ -> "trace_teardown"
  | Trace_elide _ -> "trace_elide"
  | Flush_range _ -> "flush_range"
  | Module_load _ -> "module_load"
  | Module_unload _ -> "module_unload"
  | Dlopen _ -> "dlopen"
  | Dlclose _ -> "dlclose"
  | Plt_resolve _ -> "plt_resolve"
  | Shadow_poison _ -> "shadow_poison"
  | Shadow_unpoison _ -> "shadow_unpoison"
  | Check_elide _ -> "check_elide"
  | Violation _ -> "violation"
  | Cfi_table _ -> "cfi_table"
  | Store_hit _ -> "store_hit"
  | Store_miss _ -> "store_miss"
  | Store_evict _ -> "store_evict"
  | Store_corrupt _ -> "store_corrupt"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"

let kind_counts () =
  let tbl = Hashtbl.create 24 in
  List.iter
    (fun ev ->
      let k = kind_name ev in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (events ());
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* ---- entry-accounting invariant ----

   Every executed block arrives through exactly one of the dispatcher, a
   chain link, an IBL hit or a trace-interior transition; a dispatcher
   entry that resolves to an empty (decode-faulting) block is accounted
   by [decode_faults].  Formerly a bench-harness self-check, the identity
   is now asserted by the engine itself after every [Dbt.run] — a broken
   identity means a dispatch or stats bug, and failing loudly beats
   publishing wrong attribution. *)

exception Invariant_failure of string

let entry_accounting ~dispatch ~chain ~ibl ~trace_interior ~decode_faults
    ~block_execs =
  let accounted = dispatch + chain + ibl + trace_interior in
  if accounted <> block_execs + decode_faults then
    raise
      (Invariant_failure
         (Printf.sprintf
            "entry accounting broken: dispatch(%d) + chain(%d) + ibl(%d) + \
             trace_interior(%d) = %d <> block_execs(%d) + decode_faults(%d) = %d"
            dispatch chain ibl trace_interior accounted block_execs decode_faults
            (block_execs + decode_faults)))
