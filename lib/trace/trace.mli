(** Structured tracing & profiling for the runtime (DESIGN.md §9–10).

    A domain-local, fixed-capacity ring buffer of typed events emitted
    by the VM, the DBT engine, the loader and the security tools, plus
    span-style phase timers ([Analyze]/[Rewrite]/[Load]/[Run]) with
    simulated-cycle attribution.  All state lives in [Domain.DLS]:
    enabling tracing affects only the calling domain, and concurrent
    driver runs on a [Jt_pool] capture disjoint streams (a pool job
    returns its capture via {!snapshot}; aggregate with {!merge}).

    The emit contract keeps the disabled path at a DLS load plus one
    branch, never constructing the event:

    {[
      if Jt_trace.Trace.is_enabled () then
        Jt_trace.Trace.emit (Jt_trace.Trace.Ibl_hit { site; target })
    ]}

    Tracing only observes: enabling it never charges guest cycles or
    touches guest state, so run results (status, output, icount, cycles,
    violations) are bit-identical with it on or off. *)

(** Provenance of a translated block: found in the static analyzer's
    rewrite rules, or discovered dynamically. *)
type origin = Static | Dynamic

(** Span-style profiling phases of a driver run.  [Rewrite] (block
    translation) happens lazily inside [Run]; its cycle attribution is a
    subset of [Run]'s, carved out so dispatcher-vs-translated-code time
    can be separated. *)
type phase = Analyze | Rewrite | Load | Run

val phase_name : phase -> string
val origin_name : origin -> string

type event =
  | Block_translate of { pc : int; insns : int; origin : origin }
  | Block_exec of { pc : int }
  | Chain_link of { from_pc : int; to_pc : int }
  | Chain_sever of { from_pc : int; to_pc : int }
  | Ibl_hit of { site : int; target : int }
  | Ibl_miss of { site : int; target : int }
  | Trace_build of { head : int; blocks : int }
  | Trace_teardown of { head : int }
  | Trace_elide of {
      head : int;  (** head address of the trace the decision belongs to *)
      insn : int;  (** address of the access whose check the trace elides *)
      reason : string;
          (** ["trace-dom"] (dominated within the trace by an identical
              check), ["trace-canary"] (redundant canary unpoison) or
              ["trace-streak"] (loop-invariant, justified by the trace's
              own back-edge) *)
      witness : int;
          (** address of the earlier access whose check subsumes this
              one; [0] if unknown *)
    }
  | Flush_range of { start : int; len : int }
  | Module_load of { name : string; base : int }
  | Module_unload of { name : string }
  | Dlopen of { name : string; handle : int }
  | Dlclose of { name : string; ok : bool }
  | Plt_resolve of { caller : int; target : int }
  | Shadow_poison of { addr : int; len : int; state : int }
  | Shadow_unpoison of { addr : int; len : int }
  | Check_elide of {
      insn : int;  (** address of the access whose check was elided *)
      fn : int;  (** entry address of the containing function *)
      reason : string;
          (** which static proof removed the check: ["frame"]
              (VSA frame-bounds) or ["dom"] (dominating identical check) *)
      witness : int;
          (** for ["dom"], the address of the dominating checked access
              that subsumes this one; [0] otherwise *)
    }
  | Violation of {
      kind : string;
      addr : int;
      pc : int;
      vmodule : string;  (** module containing the faulting pc, or "?" *)
      origin : origin;  (** provenance of the executing block *)
    }
  | Cfi_table of { name : string; entries : int }
  | Store_hit of { name : string; source : string }
      (** IR-store lookup served without analysis; [source] is ["mem"]
          (in-memory LRU) or ["disk"] *)
  | Store_miss of { name : string }
      (** IR-store lookup that ran the static analyzer *)
  | Store_evict of { name : string }
      (** in-memory LRU entry evicted by capacity pressure *)
  | Store_corrupt of { name : string; why : string }
      (** on-disk entry rejected (truncation, bad magic, wrong schema
          version, stale digest) and re-analyzed *)
  | Phase_begin of { phase : phase }
  | Phase_end of { phase : phase; host_s : float; cycles : int }

val is_enabled : unit -> bool
(** The cheap guard: is tracing enabled on the calling domain?  Check it
    before constructing an event so the disabled path neither allocates
    nor emits. *)

val default_capacity : int

val enable : ?capacity:int -> unit -> unit
(** Allocate the calling domain's ring (capacity in events, default
    {!default_capacity}), clear any previous contents and phase totals,
    and turn tracing on for this domain.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val disable : unit -> unit
(** Turn tracing off on the calling domain; buffered events remain
    readable. *)

val clear : unit -> unit
(** Drop the calling domain's buffered events and zero its phase totals
    without toggling the enabled flag. *)

val emit : event -> unit
(** Append an event to the calling domain's ring, overwriting the oldest
    once it is full.  No-op while tracing is disabled (callers still
    guard on {!is_enabled} first so the disabled path never constructs
    the event). *)

val emitted : unit -> int
(** Events ever emitted since the last {!enable}/{!clear} (including
    overwritten ones). *)

val dropped : unit -> int
(** Events lost to ring wraparound ([max 0 (emitted - capacity)]). *)

val events : unit -> event list
(** The calling domain's buffered events, oldest first; at most
    [capacity] of them. *)

(** {2 Violation provenance} *)

val set_exec_origin : origin -> unit
(** Record the provenance of the block about to execute.  Maintained by
    the DBT (only while tracing is enabled) so [Vm.report_violation] can
    stamp violations with static-vs-dynamic origin. *)

val exec_origin : unit -> origin

(** {2 Phase spans} *)

val phase_begin : phase -> unit
val phase_end : phase -> unit

val phase_add_cycles : phase -> int -> unit
(** Attribute simulated cycles (from [Cost] constants) to a phase; if a
    span of that phase is open, they are also counted into its
    [Phase_end] event. *)

val in_phase : phase -> (unit -> 'a) -> 'a
(** Run a thunk inside a span; a transparent passthrough when tracing is
    disabled. *)

type phase_summary = {
  ps_phase : phase;
  ps_spans : int;  (** completed spans *)
  ps_host_s : float;  (** accumulated wall-clock seconds *)
  ps_cycles : int;  (** attributed simulated cycles *)
}

val phase_totals : unit -> phase_summary list
(** One summary per phase, in [Analyze; Rewrite; Load; Run] order. *)

(** {2 Snapshots}

    A pool job runs on a worker domain, so its capture is invisible to
    the submitting domain.  The job takes a {!snapshot} before
    returning; the harness combines per-job snapshots with {!merge}. *)

type snapshot = {
  sn_events : event list;  (** buffered events, oldest first *)
  sn_emitted : int;
  sn_dropped : int;
  sn_phases : phase_summary list;
}

val snapshot : unit -> snapshot
(** Capture the calling domain's current events, counts and phase
    totals. *)

val merge : snapshot list -> snapshot
(** Concatenate events in argument order, sum emit/drop counts and phase
    totals pointwise.  Snapshots must come from {!snapshot} (canonical
    phase order). *)

(** {2 JSONL export / import} *)

val event_to_json : event -> string
(** One flat JSON object, no trailing newline. *)

val event_of_json : string -> event option
(** Parse a line produced by {!event_to_json}; [None] on malformed input
    or an unknown event tag. *)

val export : out_channel -> unit
(** Write every buffered event as one JSON line each. *)

val kind_name : event -> string

val kind_counts : unit -> (string * int) list
(** Buffered events bucketed by kind, sorted by kind name. *)

(** {2 Entry-accounting invariant} *)

exception Invariant_failure of string

val entry_accounting :
  dispatch:int ->
  chain:int ->
  ibl:int ->
  trace_interior:int ->
  decode_faults:int ->
  block_execs:int ->
  unit
(** Assert the dispatch identity
    [dispatch + chain + ibl + trace_interior = block_execs + decode_faults].
    Raises {!Invariant_failure} on a mismatch.  Checked by [Dbt.run]
    after every run, tracing enabled or not. *)
