(** Byte-granularity shadow memory for address sanitization.

    Every application byte has a shadow state.  The shadow is held beside
    the simulated memory (a real implementation would reserve an address
    range; keeping it outside the guest address space changes nothing the
    experiments measure and keeps the guest layout simple). *)

type state =
  | Addressable
  | Heap_redzone
  | Heap_freed
  | Stack_canary

type t

val create : unit -> t

val set : t -> int -> int -> unit
(** Set one shadow byte to a raw state value (0 = addressable).  The
    per-byte slow path; {!poison}/{!unpoison} operate page-at-a-time and
    should be preferred for ranges. *)

val get : t -> int -> int
(** Read one shadow byte (0 = addressable). *)

val poison : t -> int -> len:int -> state -> unit
val unpoison : t -> int -> len:int -> unit

val first_poisoned : t -> int -> len:int -> (int * state) option
(** First poisoned byte in [addr, addr+len), with its state. *)

val poisoned_count : t -> int
(** Number of currently poisoned bytes (for tests/metrics). *)
