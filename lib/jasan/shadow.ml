type state = Addressable | Heap_redzone | Heap_freed | Stack_canary

let to_byte = function
  | Addressable -> 0
  | Heap_redzone -> 1
  | Heap_freed -> 2
  | Stack_canary -> 3

let of_byte = function
  | 1 -> Heap_redzone
  | 2 -> Heap_freed
  | 3 -> Stack_canary
  | _ -> Addressable

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

(* [live] counts the poisoned (non-zero) bytes on the page, so bulk
   operations can skip clean pages without scanning them and [unpoison]
   over a wholly clean page is free. *)
type page = { bytes : Bytes.t; mutable live : int }

type t = { pages : (int, page) Hashtbl.t; mutable poisoned : int }

let create () = { pages = Hashtbl.create 64; poisoned = 0 }

let alloc_page t key =
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = { bytes = Bytes.make page_size '\x00'; live = 0 } in
    Hashtbl.add t.pages key p;
    p

let count_nonzero b off len =
  let n = ref 0 in
  for i = off to off + len - 1 do
    if Bytes.unsafe_get b i <> '\x00' then incr n
  done;
  !n

(* Fill the shadow of [a, a+len) with byte [v], page-at-a-time.  Per-page
   live counts let the common cases avoid touching memory at all
   (clearing a page that was never allocated or is already clean) or
   avoid the scan for overwritten bytes (page entirely clean / entirely
   poisoned).  Addresses wrap modulo the word size like every other
   per-byte path. *)
let fill_range t a len v =
  let c = Char.chr v in
  let a = ref (a land Jt_isa.Word.mask) in
  let remaining = ref len in
  while !remaining > 0 do
    let key = !a lsr page_bits in
    let off = !a land page_mask in
    let chunk = min !remaining (page_size - off) in
    (match (Hashtbl.find_opt t.pages key, v) with
    | None, 0 -> () (* clearing untouched memory: nothing to do *)
    | None, _ ->
      let p = alloc_page t key in
      Bytes.fill p.bytes off chunk c;
      p.live <- chunk;
      t.poisoned <- t.poisoned + chunk
    | Some p, 0 ->
      if p.live > 0 then begin
        let dropped =
          if chunk = page_size || p.live = page_size then
            min p.live chunk
          else count_nonzero p.bytes off chunk
        in
        Bytes.fill p.bytes off chunk '\x00';
        p.live <- p.live - dropped;
        t.poisoned <- t.poisoned - dropped
      end
    | Some p, _ ->
      let overwritten =
        if p.live = 0 then 0
        else if p.live = page_size then chunk
        else count_nonzero p.bytes off chunk
      in
      Bytes.fill p.bytes off chunk c;
      p.live <- p.live + chunk - overwritten;
      t.poisoned <- t.poisoned + chunk - overwritten);
    a := (!a + chunk) land Jt_isa.Word.mask;
    remaining := !remaining - chunk
  done

let set t a v = fill_range t a 1 v

let get t a =
  let a = a land Jt_isa.Word.mask in
  match Hashtbl.find_opt t.pages (a lsr page_bits) with
  | None -> 0
  | Some p -> Char.code (Bytes.get p.bytes (a land page_mask))

let poison t a ~len st =
  if Jt_trace.Trace.is_enabled () then
    Jt_trace.Trace.emit
      (Jt_trace.Trace.Shadow_poison
         { addr = a land Jt_isa.Word.mask; len; state = to_byte st });
  fill_range t a len (to_byte st)

let unpoison t a ~len =
  if Jt_trace.Trace.is_enabled () then
    Jt_trace.Trace.emit
      (Jt_trace.Trace.Shadow_unpoison { addr = a land Jt_isa.Word.mask; len });
  fill_range t a len 0

(* Scan page-at-a-time: a page that was never allocated, or whose live
   count is zero, cannot hold the first poisoned byte and is skipped
   wholesale. *)
let first_poisoned t a ~len =
  let rec go start remaining consumed =
    if remaining <= 0 then None
    else
      let key = start lsr page_bits in
      let off = start land page_mask in
      let chunk = min remaining (page_size - off) in
      let next () =
        go ((start + chunk) land Jt_isa.Word.mask) (remaining - chunk)
          (consumed + chunk)
      in
      match Hashtbl.find_opt t.pages key with
      | None -> next ()
      | Some p when p.live = 0 -> next ()
      | Some p ->
        let rec scan i =
          if i >= off + chunk then next ()
          else
            let v = Char.code (Bytes.unsafe_get p.bytes i) in
            if v <> 0 then
              Some ((a + consumed + (i - off)) land Jt_isa.Word.mask, of_byte v)
            else scan (i + 1)
        in
        scan off
  in
  go (a land Jt_isa.Word.mask) len 0

let poisoned_count t = t.poisoned
