open Jt_isa

type liveness_mode = Live_full | Live_none

let redzone_bytes = 16

module Ids = struct
  let mem_check = 0x101
  let poison_canary = 0x102
  let unpoison_canary = 0x103
  let range_check = 0x104
  let invariant_check = 0x105
end

module Rt = struct
  type t = {
    shadow : Shadow.t;
    (* allocation id -> (addr, size) for blocks still in quarantine;
       lets [Ev_alloc] at a recycled address re-poison the overlap with
       any range that is *still* quarantined, so reallocation never
       silently clears a neighbour's [Heap_freed] bytes. *)
    quarantined : (int, int * int) Hashtbl.t;
  }

  let create () = { shadow = Shadow.create (); quarantined = Hashtbl.create 16 }
  let shadow t = t.shadow

  let bad_free_kind = function
    | Jt_vm.Alloc.Double_free -> "double-free"
    | Jt_vm.Alloc.Invalid_free -> "invalid-free"

  (* Shadow maintenance for one allocator event.  Split out from
     [attach] so property tests can drive a bare [Alloc.t] without a
     VM; [report] receives bad-free verdicts. *)
  let on_alloc_event t ~report ev =
    match ev with
    | Jt_vm.Alloc.Ev_alloc { id = _; addr; size; redzone } ->
      Shadow.poison t.shadow (addr - redzone) ~len:redzone Shadow.Heap_redzone;
      Shadow.unpoison t.shadow addr ~len:size;
      (* Right redzone additionally covers the alignment slack. *)
      let right = (addr + size + 7) land lnot 7 in
      Shadow.poison t.shadow (addr + size)
        ~len:(right - (addr + size) + redzone)
        Shadow.Heap_redzone;
      (* A recycled footprint may overlap a range still in quarantine
         (allocator reuse only recycles *retired* footprints, but keep
         this defensive: the still-quarantined bytes stay freed). *)
      Hashtbl.iter
        (fun _ (qa, qs) ->
          let lo = max addr qa and hi = min (addr + size) (qa + qs) in
          if hi > lo then Shadow.poison t.shadow lo ~len:(hi - lo) Shadow.Heap_freed)
        t.quarantined
    | Jt_vm.Alloc.Ev_free { id; addr; size } ->
      (* Poison exactly [size] bytes: a zero-size block owns no payload
         byte, and the byte at [addr] belongs to its own right redzone. *)
      Shadow.poison t.shadow addr ~len:size Shadow.Heap_freed;
      Hashtbl.replace t.quarantined id (addr, size)
    | Jt_vm.Alloc.Ev_unquarantine { id; addr = _; size = _ } ->
      (* Shadow stays [Heap_freed] until the footprint is legitimately
         recycled ([Ev_alloc] unpoisons it); only the ID bookkeeping
         is dropped. *)
      Hashtbl.remove t.quarantined id
    | Jt_vm.Alloc.Ev_bad_free { addr; kind } ->
      report ~kind:(bad_free_kind kind) ~addr

  let attach t (vm : Jt_vm.Vm.t) =
    Jt_vm.Alloc.set_redzone vm.alloc redzone_bytes;
    Jt_vm.Alloc.subscribe vm.alloc
      (on_alloc_event t ~report:(fun ~kind ~addr ->
           Jt_vm.Vm.report_violation vm ~kind ~addr))

  let kind_of st is_store =
    match (st, is_store) with
    | Shadow.Heap_redzone, _ -> "heap-buffer-overflow"
    | Shadow.Heap_freed, _ -> "heap-use-after-free"
    | Shadow.Stack_canary, _ -> "stack-buffer-overflow"
    | Shadow.Addressable, _ -> "bad-access"

  let check t vm ~addr ~len ~is_store =
    let c = Jt_metrics.Metrics.Counters.current () in
    c.c_san_checks <- c.c_san_checks + 1;
    match Shadow.first_poisoned t.shadow addr ~len with
    | Some (a, st) -> Jt_vm.Vm.report_violation vm ~kind:(kind_of st is_store) ~addr:a
    | None -> ()

  let poison_canary t (vm : Jt_vm.Vm.t) ~slot_disp =
    let fp = Jt_vm.Vm.get vm Reg.fp in
    Shadow.poison t.shadow (Word.add fp slot_disp) ~len:4 Shadow.Stack_canary

  let unpoison_canary t (vm : Jt_vm.Vm.t) ~slot_disp =
    let fp = Jt_vm.Vm.get vm Reg.fp in
    Shadow.unpoison t.shadow (Word.add fp slot_disp) ~len:4
end

(* ---- static pass ---- *)

let is_frame_access (m : Insn.mem) =
  match (m.base, m.index) with
  | Some (Insn.Breg b), None -> Reg.equal b Reg.sp || Reg.equal b Reg.fp
  | _ -> false

let is_pcrel (m : Insn.mem) =
  match m.base with Some Insn.Bpc -> true | _ -> false

let scale_log2 = function 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> 0

let width_of = function Insn.W1 -> 1 | Insn.W2 -> 2 | Insn.W4 -> 4

(* ---- elision passes (VSA frame bounds + dominating checks) ---- *)

module Vsa = Jt_analysis.Vsa

type claim =
  | Exempt_canary
  | Pcrel
  | Policy_frame
  | Vsa_frame
  | Scev_covered
  | Dom_elided of int  (* witness: dominating checked access *)
  | Checked

let claim_name = function
  | Exempt_canary -> "exempt-canary"
  | Pcrel -> "pcrel"
  | Policy_frame -> "policy-frame"
  | Vsa_frame -> "vsa-frame"
  | Scev_covered -> "scev"
  | Dom_elided _ -> "dom"
  | Checked -> "checked"

(* Syntactic address keys and the available-checks must-lattice are
   shared with the DBT's trace-spine elision pass (which must agree
   exactly on what "same address" means), so they live in
   [Jt_analysis.Avail]. *)
module Key = Jt_analysis.Avail.Key
module KS = Jt_analysis.Avail.Set

let key_of = Jt_analysis.Avail.key_of
let key_regs = Jt_analysis.Avail.key_regs

(* Available-checks must-analysis: the set of address keys whose byte
   ranges were shadow-checked (or statically proven in-frame) on *every*
   path to a point, with no intervening redefinition of the key's
   registers and no shadow-state barrier.  Join is intersection; the
   solver's optimistic initialization plays the implicit "everything"
   top, so the analysis converges downwards to the must-set. *)
module Avail_solver = Jt_analysis.Dataflow.Make (Jt_analysis.Avail.Lattice)

(* Frame-bounds proof: the access address is an entry-sp-relative
   interval wholly inside the prologue's reservation, at or above the
   current stack top (so the bytes are actually reserved here), and
   disjoint from every canary slot — the only stack bytes JASan ever
   poisons.  Anything weaker keeps its check. *)
let frame_proof ~span ~canary_spans vsa (info : Jt_disasm.Disasm.insn_info)
    (m : Insn.mem) width =
  match span with
  | None -> false
  | Some (flo, fhi) -> (
    match Vsa.mem_addr vsa info m with
    | Vsa.Sprel { lo; hi } ->
      let ahi = hi + width - 1 in
      lo >= flo && ahi <= fhi
      && (match Vsa.reg_before vsa info.d_addr Reg.sp with
         | Vsa.Sprel s -> lo >= s.hi
         | _ -> false)
      && not (List.exists (fun (clo, chi) -> lo <= chi && ahi >= clo) canary_spans)
    | _ -> false)

(* Entry-sp-relative spans of the function's canary slots.  [None] when
   any slot cannot be pinned to a single offset — frame elision is then
   disabled for the whole function rather than risking an access that
   overlaps a poisoned slot. *)
let canary_slot_spans (fa : Janitizer.Static_analyzer.fn_analysis) vsa info_of =
  let rec go acc = function
    | [] -> Some acc
    | (site : Jt_analysis.Canary.site) :: rest -> (
      match Hashtbl.find_opt info_of site.c_store_addr with
      | None -> None
      | Some (info : Jt_disasm.Disasm.insn_info) -> (
        match info.d_insn with
        | Insn.Store (_, m, _) -> (
          match Vsa.mem_addr vsa info m with
          | Vsa.Sprel { lo; hi } when lo = hi -> go ((lo, lo + 3) :: acc) rest
          | _ -> None)
        | _ -> None))
  in
  go [] fa.fa_canaries

type fn_report = {
  er_fn : int;  (* function entry *)
  er_vsa_bailed : bool;
  er_claims : (int * claim) list;  (* one per load/store, address order *)
}

(* Decide, for every load/store of one function, which pass claims it.
   Claims are disjoint by construction and the priority is fixed:
   canary exemption > pc-relative > VSA frame proof > frame policy >
   SCEV coverage > dominating check; whatever is left gets a shadow
   check.  The VSA proof is consulted *before* the frame policy: both
   remove the check, but only a proven access is a gen site for the
   dominating-check pass (and only honest attribution keeps the
   elide_frame statistic meaningful — with the order flipped the
   policy, which also claims every frame access, starves the proof into
   dead code).  An access claimed twice is a bug in the pass ordering
   and raises. *)
let plan_elision ~hoist_scev ~skip_frame ~exempt_canary ~elide ~cross
    (fa : Janitizer.Static_analyzer.fn_analysis) =
  let exempt =
    if exempt_canary then Jt_analysis.Canary.exempt_addrs fa.fa_canaries
    else Hashtbl.create 1
  in
  let covered =
    if hoist_scev then Jt_analysis.Scev.covered_addrs fa.fa_scev
    else Hashtbl.create 1
  in
  let blocks = Jt_cfg.Cfg.fn_blocks fa.fa_fn in
  let info_of = Hashtbl.create 64 in
  List.iter
    (fun (b : Jt_cfg.Cfg.block) ->
      Array.iter
        (fun (i : Jt_disasm.Disasm.insn_info) ->
          Hashtbl.replace info_of i.d_addr i)
        b.b_insns)
    blocks;
  (* Every memory access, in block/instruction order, with its block and
     in-block index. *)
  let accesses =
    List.concat_map
      (fun (b : Jt_cfg.Cfg.block) ->
        Array.to_list b.b_insns
        |> List.mapi (fun k i -> (b, k, i))
        |> List.filter_map (fun (b, k, (info : Jt_disasm.Disasm.insn_info)) ->
               match info.d_insn with
               | Insn.Load (w, _, m) -> Some (b, k, info, width_of w, m)
               | Insn.Store (w, m, _) -> Some (b, k, info, width_of w, m)
               | _ -> None))
      blocks
  in
  let claims : (int, claim) Hashtbl.t = Hashtbl.create 64 in
  let claim addr c =
    (* the overlap regression guard: no two passes may take credit for
       the same access *)
    if Hashtbl.mem claims addr then
      invalid_arg
        (Printf.sprintf "Jasan.plan_elision: access 0x%x claimed twice" addr);
    Hashtbl.replace claims addr c
  in
  let vsa =
    if elide then
      let v = Lazy.force fa.fa_vsa in
      if Vsa.bailed v then None else Some v
    else None
  in
  let span = Jt_analysis.Stackinfo.frame_span fa.fa_stack in
  let cspans =
    match vsa with None -> None | Some v -> canary_slot_spans fa v info_of
  in
  (* Pass 1: the cheap claims, in priority order. *)
  List.iter
    (fun (_, _, (info : Jt_disasm.Disasm.insn_info), width, m) ->
      let addr = info.d_addr in
      if Hashtbl.mem exempt addr then claim addr Exempt_canary
      else if is_pcrel m then claim addr Pcrel
      else
        match (vsa, cspans) with
        | Some v, Some spans
          when frame_proof ~span ~canary_spans:spans v info m width ->
          claim addr Vsa_frame
        | _ ->
          if skip_frame && is_frame_access m then claim addr Policy_frame
          else if Hashtbl.mem covered addr then claim addr Scev_covered)
    accesses;
  (* Pass 2: dominating-check elimination over the availability
     fixpoint.  Gen sites are accesses that will carry their own check
     (still unclaimed here) or are frame-proven — on any path through
     one, the key's byte range is known clean right after it. *)
  if elide then begin
    let gen_key = Hashtbl.create 64 in
    let gen_by_block = Hashtbl.create 16 in
    List.iter
      (fun ((b : Jt_cfg.Cfg.block), k, (info : Jt_disasm.Disasm.insn_info),
            width, m) ->
        let eligible =
          match Hashtbl.find_opt claims info.d_addr with
          | None | Some Vsa_frame -> true
          | Some _ -> false
        in
        match key_of m width with
        | Some key when eligible ->
          Hashtbl.replace gen_key info.d_addr key;
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt gen_by_block b.b_addr)
          in
          (* accumulated reversed: descending in-block index, so the
             nearest earlier site is found first *)
          Hashtbl.replace gen_by_block b.b_addr ((k, info.d_addr, key) :: prev)
        | _ -> ())
      accesses;
    (* Barriers: canary poisoning rewrites stack shadow state, so no
       earlier check survives it.  (Unpoisoning only widens what is
       addressable and is not a barrier.)  Calls and syscalls barrier in
       the transfer itself: the allocator may poison redzones or freed
       blocks behind them. *)
    let barrier = Hashtbl.create 8 in
    List.iter
      (fun (s : Jt_analysis.Canary.site) ->
        Hashtbl.replace barrier s.c_after_store ())
      fa.fa_canaries;
    let transfer (info : Jt_disasm.Disasm.insn_info) st =
      let st = if Hashtbl.mem barrier info.d_addr then KS.empty else st in
      let st =
        match Hashtbl.find_opt gen_key info.d_addr with
        | Some k -> KS.add k st
        | None -> st
      in
      match info.d_insn with
      | Insn.Call t -> (
        (* Cross-call relaxation: shadow state only changes behind a
           call via allocator events (syscall-gated) or canary
           poisoning, both covered by the callee's barrier bit; with the
           barrier clear, a claim survives iff the callee provably
           leaves every register of its key alone.  [ip_clobbers]
           always contains [sp] (the callee's ret redefines it), so
           sp-relative keys still die here — the win is fp-based keys
           across calls to leaves that don't touch fp. *)
        match cross t with
        | Some (s : Jt_analysis.Interproc.summary) when not s.ip_barrier ->
          KS.filter
            (fun key ->
              Jt_analysis.Liveness.reg_mask (key_regs key) land s.ip_clobbers
              = 0)
            st
        | _ -> Jt_analysis.Avail.insn_transfer info.d_insn st)
      | _ ->
        (* calls/syscalls barrier and register-def kills: the shared
           instruction-shape transfer, identical to the trace pass's *)
        Jt_analysis.Avail.insn_transfer info.d_insn st
    in
    let solver = Avail_solver.solve ~entry:KS.empty ~transfer fa.fa_fn in
    let domtree = Lazy.force fa.fa_domtree in
    let defuse = Lazy.force fa.fa_defuse in
    (* Witness attribution: the nearest gen site with the same key —
       first looking backwards in the access's own block, then up the
       dominator chain. *)
    let witness_for (b : Jt_cfg.Cfg.block) k_idx key =
      let in_block baddr limit =
        match Hashtbl.find_opt gen_by_block baddr with
        | None -> None
        | Some sites ->
          List.find_map
            (fun (i, addr, k) ->
              if i < limit && Key.compare k key = 0 then Some addr else None)
            sites
      in
      match in_block b.b_addr k_idx with
      | Some w -> Some w
      | None ->
        List.find_map
          (fun baddr -> in_block baddr max_int)
          (match Jt_cfg.Domtree.dom_chain domtree b.b_addr with
          | _self :: chain -> chain
          | [] -> [])
    in
    List.iter
      (fun ((b : Jt_cfg.Cfg.block), k_idx, (info : Jt_disasm.Disasm.insn_info),
            width, m) ->
        let addr = info.d_addr in
        if not (Hashtbl.mem claims addr) then
          match key_of m width with
          | None -> ()
          | Some key ->
            let available =
              match Avail_solver.before solver addr with
              | Some st -> KS.mem key st
              | None -> false
            in
            if available then (
              match witness_for b k_idx key with
              | Some w
                when List.for_all
                       (fun r ->
                         Jt_analysis.Defuse.same_defs defuse r ~at_a:w
                           ~at_b:addr)
                       (key_regs key) ->
                claim addr (Dom_elided w)
              | _ -> ()))
      accesses
  end;
  {
    er_fn = fa.fa_fn.Jt_cfg.Cfg.f_entry;
    er_vsa_bailed = elide && Option.is_none vsa;
    er_claims =
      List.map
        (fun (_, _, (info : Jt_disasm.Disasm.insn_info), _, _) ->
          ( info.d_addr,
            Option.value ~default:Checked
              (Hashtbl.find_opt claims info.d_addr) ))
        accesses;
  }

(* Pack the hoisted range-check parameters into rule data words. *)
let pack_range (s : Jt_analysis.Scev.summary) (a : Jt_analysis.Scev.access) =
  let base_reg =
    match a.a_mem.Insn.base with
    | Some (Insn.Breg r) -> Reg.index r
    | _ -> 0
  in
  let bound_is_reg, bound_reg, bound_imm =
    match s.ls_bound with
    | Jt_analysis.Scev.Breg r -> (1, Reg.index r, 0)
    | Jt_analysis.Scev.Bimm v -> (0, 0, v)
  in
  let d1 =
    base_reg
    lor (Reg.index s.ls_ivar lsl 4)
    lor (scale_log2 a.a_mem.Insn.scale lsl 8)
    lor ((if s.ls_bound_incl then 1 else 0) lsl 10)
    lor (bound_is_reg lsl 11)
    lor (bound_reg lsl 12)
    lor (a.a_width lsl 16)
  in
  [ d1; a.a_mem.Insn.disp; bound_imm; s.ls_init land Word.mask ]

let pack_invariant (a : Jt_analysis.Scev.access) =
  let base_reg, has_idx, idx_reg =
    match (a.a_mem.Insn.base, a.a_mem.Insn.index) with
    | Some (Insn.Breg r), Some i -> (Reg.index r, 1, Reg.index i)
    | Some (Insn.Breg r), None -> (Reg.index r, 0, 0)
    | _ -> (0, 0, 0)
  in
  let d1 =
    base_reg
    lor (has_idx lsl 4)
    lor (idx_reg lsl 5)
    lor (scale_log2 a.a_mem.Insn.scale lsl 9)
    lor (a.a_width lsl 16)
  in
  [ d1; a.a_mem.Insn.disp ]

(* Callee-summary lookup for the cross-call relaxation.  Only modules
   with reliable conventions qualify: the relaxation trusts VSA-backed
   keys and the interprocedural summaries, both of which degrade on
   convention-breaking modules. *)
let cross_lookup ~cross_call ~elide (sa : Janitizer.Static_analyzer.t) =
  if cross_call && elide && sa.sa_reliable_conventions then fun t ->
    Hashtbl.find_opt (Lazy.force sa.sa_summaries) t
  else fun _ -> None

let elision_report ?(hoist_scev = true) ?(skip_frame = true)
    ?(exempt_canary = true) ?(elide = true) ?(cross_call = true)
    (sa : Janitizer.Static_analyzer.t) =
  let cross = cross_lookup ~cross_call ~elide sa in
  List.map (plan_elision ~hoist_scev ~skip_frame ~exempt_canary ~elide ~cross)
    sa.sa_fns

(* Claim codes in the serialized partition ([Jt_ir.Ir.Claims]); only
   [Checked = 0] is meaningful to readers outside this tool. *)
let claim_code = function
  | Checked -> (Jt_ir.Ir.Claims.checked, 0)
  | Exempt_canary -> (1, 0)
  | Pcrel -> (2, 0)
  | Policy_frame -> (3, 0)
  | Vsa_frame -> (4, 0)
  | Scev_covered -> (5, 0)
  | Dom_elided w -> (6, w)

(* The per-access claim partition, serialized for the module's stored IR
   under a key fingerprinting the elision configuration — a different
   configuration yields a different partition and must not be read back
   as this one. *)
let claims_aux ~hoist_scev ~skip_frame ~exempt_canary ~elide ~cross_call
    (sa : Janitizer.Static_analyzer.t) =
  let bit b = if b then '1' else '0' in
  let config =
    Printf.sprintf "jasan/%c%c%c%c%c" (bit hoist_scev) (bit skip_frame)
      (bit exempt_canary) (bit elide) (bit cross_call)
  in
  let fns =
    List.map
      (fun (r : fn_report) ->
        {
          Jt_ir.Ir.Claims.fc_fn = r.er_fn;
          fc_vsa_bailed = r.er_vsa_bailed;
          fc_claims =
            List.map
              (fun (addr, c) ->
                let code, witness = claim_code c in
                (addr, code, witness))
              r.er_claims;
        })
      (elision_report ~hoist_scev ~skip_frame ~exempt_canary ~elide ~cross_call
         sa)
  in
  [ (Jt_ir.Ir.Claims.key ~config, Jt_ir.Ir.Claims.encode fns) ]

let static_pass ~liveness ~hoist_scev ~skip_frame ~exempt_canary ~elide
    ~cross_call (sa : Janitizer.Static_analyzer.t) =
  let rules = ref [] in
  let emit r = rules := r :: !rules in
  (* Map instruction address -> enclosing block address, for rule bb
     fields. *)
  let bb_of = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun a (b : Jt_cfg.Cfg.block) ->
      Array.iter
        (fun (i : Jt_disasm.Disasm.insn_info) -> Hashtbl.replace bb_of i.d_addr a)
        b.b_insns)
    sa.sa_cfg.Jt_cfg.Cfg.c_blocks;
  let bb_addr insn_addr =
    Option.value ~default:insn_addr (Hashtbl.find_opt bb_of insn_addr)
  in
  let n_checks = ref 0 and n_frame = ref 0 and n_dom = ref 0 in
  let cross = cross_lookup ~cross_call ~elide sa in
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      let report =
        plan_elision ~hoist_scev ~skip_frame ~exempt_canary ~elide ~cross fa
      in
      let fn_entry = fa.fa_fn.Jt_cfg.Cfg.f_entry in
      (* Memory-access checks, minus everything the elision plan proved
         redundant.  SCEV preheader rules below are emitted only for
         accesses the plan actually attributed to SCEV coverage, so an
         access claimed by a stronger pass no longer drags a useless
         hoisted check along. *)
      let scev_claimed = Hashtbl.create 8 in
      List.iter
        (fun (addr, c) ->
          match c with
          | Checked ->
            incr n_checks;
            let dead_scratch, flags_dead =
              match liveness with
              | Live_none -> (0, 0)
              | Live_full ->
                let dead =
                  Jt_analysis.Liveness.dead_regs_before fa.fa_liveness addr
                in
                ( min 2 (List.length dead),
                  if Jt_analysis.Liveness.flags_dead_before fa.fa_liveness addr
                  then 1
                  else 0 )
            in
            emit
              (Jt_rules.Rules.make ~id:Ids.mem_check ~bb:(bb_addr addr)
                 ~insn:addr
                 ~data:[ dead_scratch; flags_dead ]
                 ())
          | Scev_covered -> Hashtbl.replace scev_claimed addr ()
          | Vsa_frame ->
            incr n_frame;
            let c = Jt_metrics.Metrics.Counters.current () in
            c.c_san_elide_frame <- c.c_san_elide_frame + 1;
            if Jt_trace.Trace.is_enabled () then
              Jt_trace.Trace.emit
                (Jt_trace.Trace.Check_elide
                   { insn = addr; fn = fn_entry; reason = "frame"; witness = 0 })
          | Dom_elided w ->
            incr n_dom;
            let c = Jt_metrics.Metrics.Counters.current () in
            c.c_san_elide_dom <- c.c_san_elide_dom + 1;
            if Jt_trace.Trace.is_enabled () then
              Jt_trace.Trace.emit
                (Jt_trace.Trace.Check_elide
                   { insn = addr; fn = fn_entry; reason = "dom"; witness = w })
          | Exempt_canary | Pcrel | Policy_frame -> ())
        report.er_claims;
      (* Canary poisoning: after the canary store (Figure 6), and
         unpoisoning before each check load. *)
      List.iter
        (fun (site : Jt_analysis.Canary.site) ->
          let disp = site.c_slot_disp land Word.mask in
          emit
            (Jt_rules.Rules.make ~id:Ids.poison_canary
               ~bb:(bb_addr site.c_after_store) ~insn:site.c_after_store
               ~data:[ disp ] ());
          List.iter
            (fun load_addr ->
              emit
                (Jt_rules.Rules.make ~id:Ids.unpoison_canary ~bb:(bb_addr load_addr)
                   ~insn:load_addr ~data:[ disp ] ()))
            site.c_check_loads)
        fa.fa_canaries;
      (* Hoisted SCEV checks at loop preheaders — only for the accesses
         the elision plan attributed to SCEV coverage. *)
      if hoist_scev then
      List.iter
        (fun (s : Jt_analysis.Scev.summary) ->
          List.iter
            (fun (a : Jt_analysis.Scev.access) ->
              if Hashtbl.mem scev_claimed a.a_addr then
                emit
                  (Jt_rules.Rules.make ~id:Ids.range_check ~bb:s.ls_preheader
                     ~insn:s.ls_check_at ~data:(pack_range s a) ()))
            s.ls_affine;
          List.iter
            (fun (a : Jt_analysis.Scev.access) ->
              if Hashtbl.mem scev_claimed a.a_addr then
                emit
                  (Jt_rules.Rules.make ~id:Ids.invariant_check ~bb:s.ls_preheader
                     ~insn:s.ls_check_at ~data:(pack_invariant a) ()))
            s.ls_invariant)
        fa.fa_scev)
    sa.sa_fns;
  let rules = Janitizer.Tool.noop_marks sa (List.rev !rules) in
  { Jt_rules.Rules.rf_module = sa.sa_mod.Jt_obj.Objfile.name;
    rf_digest = Jt_obj.Objfile.digest sa.sa_mod;
    rf_stats =
      [ ("checks", !n_checks); ("elide_frame", !n_frame);
        ("elide_dom", !n_dom) ];
    rf_rules = rules }

(* ---- instrumentation (dynamic modifier side) ---- *)

let mem_operand (i : Insn.t) =
  match i with
  | Insn.Load (w, _, m) -> Some (width_of w, m, false)
  | Insn.Store (w, m, _) -> Some (width_of w, m, true)
  | _ -> None

(* With [elide] on, checks advertise their address key so the DBT's
   trace-spine pass can elide ones dominated within a trace; with it off
   they stay opaque, keeping the trace layer inert for the ablation
   (elide:false is the all-checks baseline of the differential gate).
   Advertising [M_check] also signs up for the kind's purity contract:
   the action below only reads shadow state (and reports), so the trace
   layer may drop it or re-execute it with the key's index register
   rebound — that is how the induction guard turns these per-iteration
   checks into two endpoint checks at streak onset. *)
let check_meta rt ~cost ~len ~is_store ~elide (m : Insn.mem) ~next_pc =
  {
    Jt_dbt.Dbt.m_cost = cost;
    m_action =
      Some
        (fun vm ->
          let addr = Jt_vm.Vm.eval_mem vm ~next_pc m in
          Rt.check rt vm ~addr ~len ~is_store);
    m_kind =
      (if not elide then Jt_dbt.Dbt.M_opaque
       else
         match key_of m len with
         | Some k -> Jt_dbt.Dbt.M_check k
         | None -> Jt_dbt.Dbt.M_opaque);
  }

let hybrid_check_cost ~dead_scratch ~flags_dead =
  Jt_vm.Cost.asan_check
  + (Jt_vm.Cost.spill_reg * max 0 (2 - dead_scratch))
  + if flags_dead = 1 then 0 else Jt_vm.Cost.save_restore_flags

let conservative_check_cost =
  Jt_vm.Cost.asan_check + (2 * Jt_vm.Cost.spill_reg) + Jt_vm.Cost.save_restore_flags

let unpack_signed v = Word.to_signed v

let range_meta rt (r : Jt_rules.Rules.t) =
  let d1 = r.data.(0) and disp = r.data.(1) and bound_imm = r.data.(2) in
  let init = unpack_signed r.data.(3) in
  let base = Reg.of_index (d1 land 0xF) in
  let scale = 1 lsl ((d1 lsr 8) land 3) in
  let incl = (d1 lsr 10) land 1 = 1 in
  let bound_is_reg = (d1 lsr 11) land 1 = 1 in
  let bound_reg = Reg.of_index ((d1 lsr 12) land 0xF) in
  let width = (d1 lsr 16) land 7 in
  {
    Jt_dbt.Dbt.m_cost =
      (2 * Jt_vm.Cost.asan_check) + (2 * Jt_vm.Cost.spill_reg)
      + Jt_vm.Cost.save_restore_flags;
    m_action =
      Some
        (fun vm ->
          (* The check runs in the preheader, before the induction
             register is initialized: the initial index comes from the
             rule, not the register file. *)
          let lo_i = init in
          let bound =
            if bound_is_reg then unpack_signed (Jt_vm.Vm.get vm bound_reg)
            else unpack_signed bound_imm
          in
          let hi_i = if incl then bound else bound - 1 in
          if hi_i >= lo_i then begin
            let b = Jt_vm.Vm.get vm base in
            let lo = Word.of_int (b + (lo_i * scale) + unpack_signed disp) in
            let hi = Word.of_int (b + (hi_i * scale) + unpack_signed disp) in
            Rt.check rt vm ~addr:lo ~len:width ~is_store:false;
            Rt.check rt vm ~addr:hi ~len:width ~is_store:false
          end);
    (* shadow-reading only, but the trace pass has no key for a hoisted
       range; opaque-with-action is the conservative barrier *)
    m_kind = Jt_dbt.Dbt.M_opaque;
  }

let invariant_meta rt (r : Jt_rules.Rules.t) =
  let d1 = r.data.(0) and disp = r.data.(1) in
  let base = Reg.of_index (d1 land 0xF) in
  let has_idx = (d1 lsr 4) land 1 = 1 in
  let idx = Reg.of_index ((d1 lsr 5) land 0xF) in
  let scale = 1 lsl ((d1 lsr 9) land 3) in
  let width = (d1 lsr 16) land 7 in
  {
    Jt_dbt.Dbt.m_cost = hybrid_check_cost ~dead_scratch:2 ~flags_dead:1;
    m_action =
      Some
        (fun vm ->
          let b = Jt_vm.Vm.get vm base in
          let i = if has_idx then Jt_vm.Vm.get vm idx * scale else 0 in
          let addr = Word.of_int (b + i + unpack_signed disp) in
          Rt.check rt vm ~addr ~len:width ~is_store:false);
    m_kind = Jt_dbt.Dbt.M_opaque;
  }

(* A poisoning canary store is always a shadow-write barrier for the
   trace pass; a canary unpoison advertises its fp-relative slot key
   (when [elide]) so a re-unpoison with no intervening poison, call or
   fp redefinition can be deduplicated along a trace spine. *)
let canary_meta rt ~unpoison ~elide disp =
  let slot_disp = unpack_signed disp in
  {
    Jt_dbt.Dbt.m_cost = Jt_vm.Cost.asan_canary_op;
    m_action =
      Some
        (fun vm ->
          if unpoison then Rt.unpoison_canary rt vm ~slot_disp
          else Rt.poison_canary rt vm ~slot_disp);
    m_kind =
      (if not unpoison then Jt_dbt.Dbt.M_shadow_write
       else if elide then
         Jt_dbt.Dbt.M_unpoison (Reg.index Reg.fp, -1, 1, slot_disp, 4)
       else Jt_dbt.Dbt.M_opaque);
  }

(* Interpret one static rule at one instruction into a meta op.  Shared
   between the DBT plan below and the AOT emitter (Jt_emit), which
   anchors the same metas to its materialized instrumentation sites —
   that sharing is what makes the static claim partition (and its
   elisions) carry over to emitted binaries verbatim. *)
let static_meta rt ~elide (r : Jt_rules.Rules.t) ~at ~insn ~len =
  if r.rule_id = Ids.mem_check then
    match mem_operand insn with
    | Some (width, m, is_store) ->
      let cost =
        hybrid_check_cost ~dead_scratch:r.data.(0) ~flags_dead:r.data.(1)
      in
      Some (check_meta rt ~cost ~len:width ~is_store ~elide m ~next_pc:(at + len))
    | None -> None
  else if r.rule_id = Ids.poison_canary then
    Some (canary_meta rt ~unpoison:false ~elide r.data.(0))
  else if r.rule_id = Ids.unpoison_canary then
    Some (canary_meta rt ~unpoison:true ~elide r.data.(0))
  else if r.rule_id = Ids.range_check then Some (range_meta rt r)
  else if r.rule_id = Ids.invariant_check then Some (invariant_meta rt r)
  else None

(* Static-rules path: interpret each rule into a meta op. *)
let plan_static rt ~elide (b : Jt_dbt.Dbt.block) ~rules_at =
  let plan = Jt_dbt.Dbt.no_plan b in
  Array.iteri
    (fun k (at, insn, len) ->
      let metas =
        List.filter_map
          (fun r -> static_meta rt ~elide r ~at ~insn ~len)
          (rules_at at)
      in
      plan.(k) <- metas)
    b.insns;
  plan

(* Dynamic fallback: per-block only — check every load/store with
   conservative save/restore; recognize the canary idiom locally. *)
let plan_dynamic rt ~elide (b : Jt_dbt.Dbt.block) =
  let plan = Jt_dbt.Dbt.no_plan b in
  (* Local canary recognition: a ldcanary in the block makes fp-relative
     4-byte stores of the canary register canary-stores, and fp-relative
     4-byte loads canary-checks. *)
  let canary_reg = ref None in
  let canary_stores = Hashtbl.create 2 in
  let canary_checks = Hashtbl.create 2 in
  let block_has_canary =
    Array.exists
      (fun (_, i, _) -> match i with Insn.Load_canary _ -> true | _ -> false)
      b.insns
  in
  if block_has_canary then
    Array.iteri
      (fun k (_, i, _) ->
        match i with
        | Insn.Load_canary r -> canary_reg := Some r
        | Insn.Store (Insn.W4, m, Insn.Reg r)
          when (match !canary_reg with
               | Some cr -> Reg.equal cr r
               | None -> false)
               && is_frame_access m
               && (match m.Insn.base with
                  | Some (Insn.Breg br) -> Reg.equal br Reg.fp
                  | _ -> false) ->
          Hashtbl.replace canary_stores k (unpack_signed m.Insn.disp)
        | Insn.Load (Insn.W4, _, m)
          when is_frame_access m
               && (match m.Insn.base with
                  | Some (Insn.Breg br) -> Reg.equal br Reg.fp
                  | _ -> false) ->
          Hashtbl.replace canary_checks k (unpack_signed m.Insn.disp)
        | _ -> ())
      b.insns;
  Array.iteri
    (fun k (at, insn, len) ->
      if Hashtbl.mem canary_stores k then
        let disp = Hashtbl.find canary_stores k in
        plan.(k) <- [ canary_meta rt ~unpoison:false ~elide (disp land Word.mask) ]
      else if Hashtbl.mem canary_checks k then
        let disp = Hashtbl.find canary_checks k in
        plan.(k) <- [ canary_meta rt ~unpoison:true ~elide (disp land Word.mask) ]
      else
        match mem_operand insn with
        | Some (width, m, is_store) when not (is_pcrel m) ->
          plan.(k) <-
            [
              check_meta rt ~cost:conservative_check_cost ~len:width ~is_store
                ~elide m ~next_pc:(at + len);
            ]
        | Some _ | None -> ())
    b.insns;
  plan

let create ?(liveness = Live_full) ?(hoist_scev = true)
    ?(skip_frame_accesses = true) ?(exempt_canary = true)
    ?(clean_calls = false) ?(elide = true) ?(cross_call = true) () =
  let rt = Rt.create () in
  (* The clean-call ablation: every handler pays a full context switch
     instead of the inlined, liveness-aware save/restore of 4.1.1. *)
  let costing plan =
    if not clean_calls then plan
    else
      Array.map
        (List.map (fun m ->
             { m with Jt_dbt.Dbt.m_cost = Jt_vm.Cost.dbt_clean_call + Jt_vm.Cost.asan_check }))
        plan
  in
  let client =
    {
      Jt_dbt.Dbt.cl_name = "jasan";
      cl_on_block =
        (fun _vm b prov ~rules_at ->
          match prov with
          | Jt_dbt.Dbt.Static_rules -> costing (plan_static rt ~elide b ~rules_at)
          | Jt_dbt.Dbt.Dynamic_only -> costing (plan_dynamic rt ~elide b));
    }
  in
  ( {
      Janitizer.Tool.t_name =
        (match liveness with
        | Live_full -> "jasan-hybrid"
        | Live_none -> "jasan-hybrid-base");
      t_setup = (fun vm -> Rt.attach rt vm);
      t_static =
        static_pass ~liveness ~hoist_scev ~skip_frame:skip_frame_accesses
          ~exempt_canary ~elide ~cross_call;
      t_client = client;
      t_on_load = Janitizer.Tool.no_on_load;
      t_aux =
        claims_aux ~hoist_scev ~skip_frame:skip_frame_accesses ~exempt_canary
          ~elide ~cross_call;
    },
    rt )
