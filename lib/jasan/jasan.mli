(** JASan: the hybrid binary address sanitizer (section 4.1).

    Protection policy, mirroring the paper (itself inspired by
    RetroWrite's sanitizer):

    - full heap-object protection: the allocator is interposed to place
      redzones around every block, freed blocks stay poisoned
      (use-after-free), and every instrumented load/store checks the
      shadow;
    - stack protection at stack-frame granularity, by poisoning the
      canary slots found by canary analysis;
    - globals are not protected (no type information in binaries).

    The static pass uses cross-block analysis to (a) skip accesses that
    are provably frame-local, PC-relative or covered by a hoisted SCEV
    range check, and (b) embed register/flag liveness into each rule so
    the inlined check saves only what is live.  The dynamic fallback
    instruments every load and store in a block with conservative
    save/restore, and recognizes canary stores/checks locally. *)

type liveness_mode =
  | Live_full  (** use static liveness (JASan-hybrid full) *)
  | Live_none  (** conservative save/restore (JASan-hybrid base) *)

(** Sanitizer runtime shared with the baseline sanitizers: shadow state,
    allocator interposition and the check primitive. *)
module Rt : sig
  type t

  val create : unit -> t
  val shadow : t -> Shadow.t

  val attach : t -> Jt_vm.Vm.t -> unit
  (** Interpose on the allocator (redzones + poisoning), like ASan's
      LD_PRELOADed allocator. *)

  val on_alloc_event :
    t ->
    report:(kind:string -> addr:int -> unit) ->
    Jt_vm.Alloc.event ->
    unit
  (** The shadow maintenance [attach] installs, exposed so property
      tests can drive a bare allocator without a VM.  Frees poison
      exactly the block's payload and record it under its allocation ID
      until the allocator retires it from quarantine; bad frees are
      reported as ["double-free"] or ["invalid-free"]. *)

  val check : t -> Jt_vm.Vm.t -> addr:int -> len:int -> is_store:bool -> unit
  (** Report a violation if any byte of the range is poisoned. *)

  val poison_canary : t -> Jt_vm.Vm.t -> slot_disp:int -> unit
  (** Poison the canary slot at [fp + slot_disp] (current frame). *)

  val unpoison_canary : t -> Jt_vm.Vm.t -> slot_disp:int -> unit
end

val redzone_bytes : int

val is_frame_access : Jt_isa.Insn.mem -> bool
(** Constant-offset [sp]/[fp] addressing: protected at frame granularity
    by the canary policy, so not individually checked. *)

val is_pcrel : Jt_isa.Insn.mem -> bool
(** PC-relative operands address static data and need no check. *)

(** {2 Check elision}

    The static pass assigns every load/store to exactly one claim — the
    reason it does or does not carry a shadow check.  Claims are computed
    in a fixed priority order: canary exemption, pc-relative, VSA frame
    proof, frame policy, SCEV coverage, dominating check.  The VSA proof
    outranks the frame policy even though both remove the check: a
    proven access is a gen site for the dominating-check pass and is
    reported honestly as [Vsa_frame] (consulting the policy first would
    starve the proof into dead code — [elide_frame] permanently 0).
    [Vsa_frame] and [Dom_elided] are the analysis-driven elisions built
    on {!Jt_analysis.Vsa}, {!Jt_analysis.Dataflow} and
    {!Jt_cfg.Domtree}. *)
type claim =
  | Exempt_canary  (** canary-handling access, never instrumented *)
  | Pcrel  (** pc-relative static data *)
  | Policy_frame
      (** constant [sp]/[fp] offset, covered by the canary policy *)
  | Vsa_frame
      (** proven by VSA to fall inside the function's own frame
          reservation, away from any canary slot *)
  | Scev_covered  (** subsumed by a hoisted SCEV range check *)
  | Dom_elided of int
      (** an identical, register-stable access is checked on every path;
          the payload is the witness access's address *)
  | Checked  (** none of the above: gets a shadow check *)

val claim_name : claim -> string

type fn_report = {
  er_fn : int;  (** function entry *)
  er_vsa_bailed : bool;
      (** elision was requested but the VSA answered only [Top] (bailed
          module or convention breaker) *)
  er_claims : (int * claim) list;
      (** one entry per load/store, in block/instruction order *)
}

val elision_report :
  ?hoist_scev:bool ->
  ?skip_frame:bool ->
  ?exempt_canary:bool ->
  ?elide:bool ->
  ?cross_call:bool ->
  Janitizer.Static_analyzer.t ->
  fn_report list
(** The per-function elision decisions the static pass would make, for
    the CLI fact dump and the differential tests.  All flags default to
    [true], matching {!create}'s defaults.
    @raise Invalid_argument if two passes claim the same access — the
    overlap regression the plan guards against. *)

val create :
  ?liveness:liveness_mode ->
  ?hoist_scev:bool ->
  ?skip_frame_accesses:bool ->
  ?exempt_canary:bool ->
  ?clean_calls:bool ->
  ?elide:bool ->
  ?cross_call:bool ->
  unit ->
  Janitizer.Tool.t * Rt.t
(** A fresh JASan instance.  One instance per program run: the runtime
    state (shadow memory) is not reusable across processes.  The returned
    {!Rt.t} is exposed for tests and metrics.

    The three flags ablate static-pass design choices (all default on):
    [hoist_scev] replaces per-iteration checks of provably-bounded loops
    with one preheader range check; [skip_frame_accesses] elides checks
    on constant-offset frame slots (covered by the canary policy);
    [exempt_canary] suppresses checks on the canary-handling accesses
    themselves — turning it off makes the epilogue's own canary read
    trip the poisoned slot, demonstrating why canary analysis is a
    soundness requirement and not an optimization.

    [clean_calls] (default false) routes every check through a
    full-context-switch clean call instead of inlined meta-instructions —
    the DynamoRIO default that section 4.1.1 explicitly engineers away
    with hand-written inline assembly; useful as an ablation.

    [elide] (default true) enables the two analysis-driven elision
    passes (VSA frame bounds and dominating-check elimination); turn it
    off for the differential safety harness's baseline.

    [cross_call] (default true) lets dominating-check claims survive
    direct calls whose resolved callees are provably barrier-free (no
    transitive syscall or canary touch — the only ways shadow state can
    change) and leave the claim's key registers unclobbered, per the
    {!Jt_analysis.Interproc} summaries over the CPA-resolved call graph.
    Only applies to modules with reliable calling conventions; the DBT
    trace layer stays conservative either way. *)

val mem_operand :
  Jt_isa.Insn.t -> (int * Jt_isa.Insn.mem * bool) option
(** [(width_bytes, operand, is_store)] of a load or store. *)

val static_meta :
  Rt.t ->
  elide:bool ->
  Jt_rules.Rules.t ->
  at:int ->
  insn:Jt_isa.Insn.t ->
  len:int ->
  Jt_dbt.Dbt.meta option
(** Interpret one static rewrite rule anchored at instruction [insn]
    (address [at], byte length [len], both in run-time coordinates) into
    the meta operation the hybrid DBT would inline there.  Exposed for
    the AOT emitter ([Jt_emit]), which executes the very same metas at
    its materialized instrumentation sites: identical actions, identical
    cycle costs, so elision decisions carry over bit-for-bit. *)

(** Rule identifiers emitted by the static pass (for tests). *)
module Ids : sig
  val mem_check : int
  val poison_canary : int
  val unpoison_canary : int
  val range_check : int
  val invariant_check : int
end
