(** Syscall numbers — the ABI between programs and the simulated kernel.

    Arguments are passed in [r0]–[r2]; the result, if any, is returned in
    [r0] (except {!resolve}, which communicates through the stack — see
    below). *)

val exit_ : int
(** [r0] = status.  Terminates the program. *)

val write_int : int
(** [r0] = value: append the decimal rendering of [r0] and a newline to
    the program's output stream. *)

val write_ch : int
(** [r0] = byte: append one character to the output stream. *)

val malloc : int
(** [r0] = size; returns the address of a fresh heap block. *)

val free : int
(** [r0] = address of a live heap block. *)

val dlopen : int
(** [r0] = address of a NUL-terminated module name; loads the module (and
    its dependency closure) at run time and returns a handle. *)

val dlsym : int
(** [r0] = handle, [r1] = address of a NUL-terminated symbol name;
    returns the run-time address of the exported symbol. *)

val mmap_code : int
(** [r0] = size; returns the base of a fresh writable+executable region
    for dynamically generated code. *)

val resolve : int
(** Lazy PLT binding, used only by [ld.so]'s [__dl_resolve] routine.  On
    entry the word at [sp] holds the PLT import index pushed by the lazy
    stub; the kernel resolves the import of the *calling* module, patches
    its GOT slot, and overwrites the word at [sp] with the target address
    so that the following [ret] transfers there.  All registers are
    preserved. *)

val cache_flush : int
(** [r0] = start, [r1] = length: declare that code bytes in the range
    changed, invalidating decoded-instruction and code caches. *)

val dlclose : int
(** [r0] = handle from {!dlopen}: unload the module.  Returns 1 on
    success, 0 if the module is pinned or still needed. *)

val calloc : int
(** [r0] = size; returns a zero-filled heap block. *)

val realloc : int
(** [r0] = old address (or 0), [r1] = new size; returns a block with the
    old contents copied over.  The old block is freed. *)

val read_int : int
(** Pop the next value from the process's input stream (0 when
    exhausted).  The stream is external, untrusted data — the taint
    tool's source. *)

val emit_site : int
(** Statically emitted instrumentation site (Jt_emit): the two-byte
    [syscall] encoding stands for an inlined check sequence.  No
    built-in handler — the emit runtime installs a VM syscall hook. *)

val emit_pin : int
(** Statically emitted address pin (Jt_emit): a two-byte [syscall]
    patched at a pinned original address, redirecting to the relocated
    copy of the code.  No built-in handler. *)
