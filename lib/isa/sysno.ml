let exit_ = 0
let write_int = 1
let write_ch = 2
let malloc = 3
let free = 4
let dlopen = 5
let dlsym = 6
let mmap_code = 7
let resolve = 8
let cache_flush = 9
let dlclose = 10
let calloc = 11
let realloc = 12
let read_int = 13

(* Reserved for statically emitted instrumentation (Jt_emit): the
   two-byte [syscall] encodings it plants stand for an inlined check
   sequence and a pinned-address direct jump respectively.  They have no
   built-in handler — the emit runtime installs VM syscall hooks. *)
let emit_site = 14
let emit_pin = 15
