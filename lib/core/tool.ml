type t = {
  t_name : string;
  t_setup : Jt_vm.Vm.t -> unit;
  t_static : Static_analyzer.t -> Jt_rules.Rules.file;
  t_client : Jt_dbt.Dbt.client;
  t_on_load :
    Jt_vm.Vm.t ->
    Jt_loader.Loader.loaded ->
    Jt_rules.Rules.file option ->
    unit;
  t_aux : Static_analyzer.t -> (string * string) list;
}

let no_on_load _ _ _ = ()
let no_aux _ = []

let noop_marks (sa : Static_analyzer.t) rules =
  let marked = Hashtbl.create 256 in
  List.iter (fun (r : Jt_rules.Rules.t) -> Hashtbl.replace marked r.bb ()) rules;
  let noops =
    List.filter_map
      (fun bb ->
        if Hashtbl.mem marked bb then None
        else Some (Jt_rules.Rules.make ~id:Jt_rules.Rules.no_op ~bb ~insn:bb ()))
      (Static_analyzer.all_block_addrs sa)
  in
  rules @ noops
