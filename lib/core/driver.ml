type outcome = {
  o_result : Jt_vm.Vm.result;
  o_dbt : Jt_dbt.Dbt.stats option;
  o_dynamic_fraction : float;
  o_rule_count : int;
}

let analyze_all ~tool registry =
  List.map
    (fun (m : Jt_obj.Objfile.t) ->
      let sa = Static_analyzer.analyze m in
      (m.name, tool.Tool.t_static sa))
    registry

let rules_path ~dir name = Filename.concat dir (name ^ ".jtr")

let save_rules ~dir files =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, f) ->
      let oc = open_out_bin (rules_path ~dir name) in
      output_string oc (Jt_rules.Rules.encode_file f);
      close_out oc)
    files

let load_rules ~dir name =
  let path = rules_path ~dir name in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Jt_rules.Rules.decode_file s with
    | f -> Some f
    | exception Failure _ -> None
  end
  else None

let static_closure ~registry ~main =
  let registry =
    if
      List.exists
        (fun (m : Jt_obj.Objfile.t) -> String.equal m.name "ld.so")
        registry
    then registry
    else registry @ [ Jt_loader.Loader.ld_so ]
  in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (m : Jt_obj.Objfile.t) -> Hashtbl.replace by_name m.name m)
    registry;
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt by_name name with
      | Some m ->
        List.iter go m.deps;
        order := m :: !order
      | None -> ()
    end
  in
  go "ld.so";
  go main;
  List.rev !order

let run ?fuel ?(hybrid = true) ?profile ?ibl ?trace ?(precomputed = []) ~tool
    ~registry ~main () =
  let rule_files =
    if hybrid then
      let todo =
        List.filter
          (fun (m : Jt_obj.Objfile.t) -> not (List.mem_assoc m.name precomputed))
          (static_closure ~registry ~main)
      in
      precomputed @ analyze_all ~tool todo
    else []
  in
  let rule_count =
    List.fold_left
      (fun acc (_, (f : Jt_rules.Rules.file)) -> acc + List.length f.rf_rules)
      0 rule_files
  in
  let vm = Jt_vm.Vm.make ~registry in
  let engine =
    Jt_dbt.Dbt.create ~vm ?profile ?ibl ?trace ~client:tool.Tool.t_client
      ~rules_for:(fun name -> List.assoc_opt name rule_files)
      ()
  in
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
      tool.Tool.t_on_load vm l
        (List.assoc_opt l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name rule_files));
  tool.Tool.t_setup vm;
  Jt_vm.Vm.boot vm ~main;
  if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then Jt_dbt.Dbt.run ?fuel engine;
  {
    o_result = Jt_vm.Vm.result vm;
    o_dbt = Some (Jt_dbt.Dbt.stats engine);
    o_dynamic_fraction = Jt_dbt.Dbt.dynamic_block_fraction engine;
    o_rule_count = rule_count;
  }

let run_null ?fuel ?profile ?ibl ?trace ~registry ~main () =
  let vm = Jt_vm.Vm.make ~registry in
  let engine = Jt_dbt.Dbt.create ~vm ?profile ?ibl ?trace () in
  Jt_vm.Vm.boot vm ~main;
  if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then Jt_dbt.Dbt.run ?fuel engine;
  {
    o_result = Jt_vm.Vm.result vm;
    o_dbt = Some (Jt_dbt.Dbt.stats engine);
    o_dynamic_fraction = Jt_dbt.Dbt.dynamic_block_fraction engine;
    o_rule_count = 0;
  }

let run_native ?fuel ~registry ~main () =
  let r = Jt_vm.Vm.run_native ?fuel ~registry ~main () in
  { o_result = r; o_dbt = None; o_dynamic_fraction = 0.0; o_rule_count = 0 }
