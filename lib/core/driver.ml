type outcome = {
  o_result : Jt_vm.Vm.result;
  o_dbt : Jt_dbt.Dbt.stats option;
  o_dynamic_fraction : float;
  o_rule_count : int;
  o_trace_elisions : (int * (int * string * int) list) list;
}

(* Per-module static analysis is independent work, so with a pool it
   fans out across domains.  The tool's static pass itself stays on the
   calling domain, applied in registry order: tools may carry internal
   state, and sequential application keeps rule generation deterministic
   regardless of which worker finished first.  The expensive part —
   disassembly, CFG recovery, the helper analyses — is what parallelizes.

   The result list always matches the input registry order, with
   [precomputed] entries spliced in at their module's position — callers
   zip it against the registry. *)
let analyze_all ?pool ?store ?(precomputed = []) ~tool registry =
  let todo =
    List.filter
      (fun (m : Jt_obj.Objfile.t) -> not (List.mem_assoc m.name precomputed))
      registry
  in
  let analyses =
    match pool with
    | None -> List.map (Static_analyzer.analyze ?store) todo
    | Some p -> Jt_pool.Pool.map p (Static_analyzer.analyze ?store) todo
  in
  let generated =
    List.map2
      (fun (m : Jt_obj.Objfile.t) sa ->
        let file = tool.Tool.t_static sa in
        (* Tool-contributed aux tables (e.g. the JASan claim partition)
           ride along in the module's stored IR, so warm runs and the
           DBT's overlay planner can read them back without re-running
           the static pass. *)
        Option.iter
          (fun st ->
            Jt_ir.Store.update_aux st
              ~digest:(Jt_obj.Objfile.digest m)
              (tool.Tool.t_aux sa))
          store;
        (m.name, file))
      todo analyses
  in
  let in_registry_order =
    List.map
      (fun (m : Jt_obj.Objfile.t) ->
        match List.assoc_opt m.name precomputed with
        | Some f -> (m.name, f)
        | None -> (m.name, List.assoc m.name generated))
      registry
  in
  (* Precomputed rules for modules outside this registry are kept (the
     engine simply never asks for them) so callers can pass a superset. *)
  let leftovers =
    List.filter
      (fun (name, _) ->
        not
          (List.exists
             (fun (m : Jt_obj.Objfile.t) -> String.equal m.name name)
             registry))
      precomputed
  in
  in_registry_order @ leftovers

let rules_path ~dir name = Filename.concat dir (name ^ ".jtr")

(* [Sys.mkdir] is single-level; rule caches are routinely pointed at
   nested paths (per-configuration subdirectories), so create parents
   first.  Racing creators are fine: EEXIST is ignored at every level. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

let save_rules ~dir files =
  mkdir_p dir;
  List.iter
    (fun (name, f) ->
      let oc = open_out_bin (rules_path ~dir name) in
      output_string oc (Jt_rules.Rules.encode_file f);
      close_out oc)
    files

(* A corrupt or unreadable cache entry must never take the run down: the
   driver falls back to re-analyzing the module.  [decode_file] raises
   [Failure] on truncation and bad magic, but a cache path that turns out
   to be a directory ([Sys_error] from [open_in_bin]), a short read
   ([End_of_file]) or any other decoder defect must degrade the same
   way, so catch everything that isn't an asynchronous exception. *)
let module_digest = Jt_obj.Objfile.digest

let load_rules ?expect_digest ~dir name =
  let path = rules_path ~dir name in
  if Sys.file_exists path then begin
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e ->
      Printf.eprintf "janitizer: warning: unreadable rule cache %s (%s)\n%!"
        path (Printexc.to_string e);
      None
    | s -> (
      match Jt_rules.Rules.decode_file s with
      | f -> (
        (* The cache is keyed by module *name*; a workload regenerated
           with different code reuses the name, and applying the old
           rules would plant checks at addresses that no longer exist.
           The header digest detects that: any mismatch (including a
           cache written without a digest) degrades to re-analysis,
           exactly like corruption. *)
        match expect_digest with
        | None -> Some f
        | Some d when String.equal d f.Jt_rules.Rules.rf_digest -> Some f
        | Some _ ->
          Printf.eprintf
            "janitizer: warning: stale rule cache %s (module content \
             changed), re-analyzing\n%!"
            path;
          None)
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e ->
        Printf.eprintf "janitizer: warning: corrupt rule cache %s (%s)\n%!"
          path (Printexc.to_string e);
        None)
  end
  else None

let static_closure ~registry ~main =
  let registry =
    if
      List.exists
        (fun (m : Jt_obj.Objfile.t) -> String.equal m.name "ld.so")
        registry
    then registry
    else registry @ [ Jt_loader.Loader.ld_so ]
  in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (m : Jt_obj.Objfile.t) -> Hashtbl.replace by_name m.name m)
    registry;
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt by_name name with
      | Some m ->
        List.iter go m.deps;
        order := m :: !order
      | None -> ()
    end
  in
  go "ld.so";
  go main;
  List.rev !order

let run ?fuel ?(hybrid = true) ?profile ?ibl ?trace ?trace_elide
    ?(precomputed = []) ?pool ?store ~tool ~registry ~main () =
  (* Each driver run reports its own (domain-local) counters; without
     this, numbers from a previous run on the same domain leak into the
     next one's snapshot. *)
  Jt_metrics.Metrics.Counters.reset ();
  let modules = static_closure ~registry ~main in
  let rule_files =
    Jt_trace.Trace.in_phase Jt_trace.Trace.Analyze (fun () ->
        if hybrid then analyze_all ?pool ?store ~precomputed ~tool modules
        else [])
  in
  let rule_count =
    List.fold_left
      (fun acc (_, (f : Jt_rules.Rules.file)) -> acc + List.length f.rf_rules)
      0 rule_files
  in
  (* When a store is attached, hand the engine a reader for the stored
     IR of any statically analyzed module (keyed by runtime module name,
     resolved through the content digest) so it can consult aux tables —
     claims partitions and the like — at load time. *)
  let ir_for =
    Option.map
      (fun st ->
        let digest_of = Hashtbl.create 16 in
        List.iter
          (fun (m : Jt_obj.Objfile.t) ->
            Hashtbl.replace digest_of m.name (Jt_obj.Objfile.digest m))
          modules;
        fun name ->
          match Hashtbl.find_opt digest_of name with
          | None -> None
          | Some d -> Jt_ir.Store.peek st ~digest:d)
      store
  in
  let vm = Jt_vm.Vm.make ~registry in
  let engine =
    Jt_dbt.Dbt.create ~vm ?profile ?ibl ?trace ?trace_elide ?ir_for
      ~client:tool.Tool.t_client
      ~rules_for:(fun name -> List.assoc_opt name rule_files)
      ()
  in
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
      tool.Tool.t_on_load vm l
        (List.assoc_opt l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name rule_files));
  Jt_trace.Trace.in_phase Jt_trace.Trace.Load (fun () ->
      let c0 = vm.Jt_vm.Vm.cycles in
      tool.Tool.t_setup vm;
      Jt_vm.Vm.boot vm ~main;
      if Jt_trace.Trace.is_enabled () then
        Jt_trace.Trace.phase_add_cycles Jt_trace.Trace.Load
          (vm.Jt_vm.Vm.cycles - c0));
  if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then
    Jt_trace.Trace.in_phase Jt_trace.Trace.Run (fun () ->
        let c0 = vm.Jt_vm.Vm.cycles in
        Jt_dbt.Dbt.run ?fuel engine;
        (* [Rewrite] cycles (lazy block translation) are attributed by
           the engine itself and form a carved-out subset of this
           [Run] total. *)
        if Jt_trace.Trace.is_enabled () then
          Jt_trace.Trace.phase_add_cycles Jt_trace.Trace.Run
            (vm.Jt_vm.Vm.cycles - c0));
  {
    o_result = Jt_vm.Vm.result vm;
    o_dbt = Some (Jt_dbt.Dbt.stats engine);
    o_dynamic_fraction = Jt_dbt.Dbt.dynamic_block_fraction engine;
    o_rule_count = rule_count;
    o_trace_elisions = Jt_dbt.Dbt.trace_elisions engine;
  }

let run_null ?fuel ?profile ?ibl ?trace ~registry ~main () =
  Jt_metrics.Metrics.Counters.reset ();
  let vm = Jt_vm.Vm.make ~registry in
  let engine = Jt_dbt.Dbt.create ~vm ?profile ?ibl ?trace () in
  Jt_vm.Vm.boot vm ~main;
  if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then Jt_dbt.Dbt.run ?fuel engine;
  {
    o_result = Jt_vm.Vm.result vm;
    o_dbt = Some (Jt_dbt.Dbt.stats engine);
    o_dynamic_fraction = Jt_dbt.Dbt.dynamic_block_fraction engine;
    o_rule_count = 0;
    o_trace_elisions = [];
  }

(* Plain-VM run with a pre-boot setup hook: the entry point for
   statically emitted binaries (Jt_emit), whose instrumentation lives in
   their own instructions — no DBT, no translation, just [Vm.run].
   [setup] installs the emit runtime (syscall hooks, load callbacks,
   allocator interposition) on the fresh VM before boot. *)
let run_plain ?fuel ?(setup = fun _ -> ()) ~registry ~main () =
  Jt_metrics.Metrics.Counters.reset ();
  let vm = Jt_vm.Vm.make ~registry in
  setup vm;
  Jt_vm.Vm.boot vm ~main;
  if vm.Jt_vm.Vm.status = Jt_vm.Vm.Running then Jt_vm.Vm.run ?fuel vm;
  {
    o_result = Jt_vm.Vm.result vm;
    o_dbt = None;
    o_dynamic_fraction = 0.0;
    o_rule_count = 0;
    o_trace_elisions = [];
  }

let run_native ?fuel ~registry ~main () =
  let r = Jt_vm.Vm.run_native ?fuel ~registry ~main () in
  {
    o_result = r;
    o_dbt = None;
    o_dynamic_fraction = 0.0;
    o_rule_count = 0;
    o_trace_elisions = [];
  }
