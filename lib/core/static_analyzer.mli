(** Janitizer's static analyzer (Figure 2a).

    For each statically available module this runs the core-layer
    pipeline — disassembly and control-flow recovery over *all* executable
    sections, then the generic helper analyses (liveness, canary
    detection, SCEV loop bounds, stack info, def-use chains) — and hands
    the bundle to a security tool's static pass, which turns it into
    rewrite rules. *)

type fn_analysis = {
  fa_fn : Jt_cfg.Cfg.fn;
  fa_liveness : Jt_analysis.Liveness.t;
  fa_canaries : Jt_analysis.Canary.site list;
  fa_scev : Jt_analysis.Scev.summary list;
  fa_stack : Jt_analysis.Stackinfo.info;
  fa_vsa : Jt_analysis.Vsa.t Lazy.t;
      (** value-set analysis, computed on first force; already bailed
          (all-[Top]) when the module breaks calling conventions *)
  fa_domtree : Jt_cfg.Domtree.t Lazy.t;
  fa_defuse : Jt_analysis.Defuse.t Lazy.t;
}

type t = {
  sa_mod : Jt_obj.Objfile.t;
  sa_disasm : Jt_disasm.Disasm.t;
  sa_cfg : Jt_cfg.Cfg.t;
  sa_fns : fn_analysis list;
  sa_addr_fn : (int, fn_analysis) Hashtbl.t;
      (** instruction address -> containing function, precomputed at
          {!analyze} time (first function in [sa_fns] order wins) *)
  sa_reliable_conventions : bool;
      (** false when the module breaks the calling convention
          (section 4.1.2): liveness results are replaced by the
          conservative all-live fallback *)
  sa_raw_code_ptrs : int list Lazy.t;
      (** unfiltered sliding-window pointer-scan results; carried in the
          IR so warm loads skip the scan *)
  sa_cpa : Jt_analysis.Cpa.t Lazy.t;
      (** per-indirect-call-site code-pointer provenance; forcing it
          forces VSA for every function.  Warm-started analyses restore
          it from the [cpa/v1] aux table when present *)
  sa_callgraph : Jt_cfg.Callgraph.t Lazy.t;
      (** call graph with indirect edges resolved through [sa_cpa] *)
  sa_summaries : (int, Jt_analysis.Interproc.summary) Hashtbl.t Lazy.t;
      (** interprocedural clobber/read/barrier summaries with indirect
          calls resolved through [sa_cpa] — the shared fact base behind
          JCFI per-site sets and JASan cross-call elision *)
  sa_ir : Jt_ir.Ir.t Lazy.t;
      (** the serializable form of this analysis.  Forcing it forces the
          lazy per-function analyses (VSA, dominators, def-use) — only
          store-backed paths pay that *)
}

val analyze : ?store:Jt_ir.Store.t -> Jt_obj.Objfile.t -> t
(** With a [store], look the module up by content digest first: a hit
    reconstructs the full analysis from the stored IR ({!of_ir}) without
    re-running the analyzer; a miss runs {!compute} and persists its IR.
    Reconstruction failures degrade to {!compute} with a warning. *)

val compute : Jt_obj.Objfile.t -> t
(** The real analysis: disassembly, CFG recovery and the per-function
    passes.  Every call increments {!analyses_performed}. *)

val of_ir : Jt_obj.Objfile.t -> Jt_ir.Ir.t -> t
(** Rebuild a full analysis from a stored IR: instruction spans
    re-decoded from the module's own bytes, analyses restored from the
    serialized fixpoints.  Every query and every generated rule is
    identical to what {!compute} would produce.  @raise Failure on any
    inconsistency (digest mismatch, undecodable span, dangling block). *)

val to_ir : t -> Jt_ir.Ir.t
(** [Lazy.force sa.sa_ir]. *)

val analyses_performed : unit -> int
(** Process-wide count of {!compute} runs (an [Atomic], aggregated
    across pool domains) — the counter behind the warm-start "zero
    re-analysis" gate. *)

val fn_of_addr : t -> int -> fn_analysis option
(** The analyzed function whose CFG contains the instruction address.
    A single hash probe against [sa_addr_fn]. *)

val all_block_addrs : t -> int list

val code_pointer_scan : t -> int list
(** Sliding-window constants that fall on *instruction boundaries* of the
    recovered disassembly (the BinCFI refinement step). *)

val function_entries : t -> int list
(** Discovered function entries (symbols, direct-call targets, entry
    point). *)
