(** Janitizer's static analyzer (Figure 2a).

    For each statically available module this runs the core-layer
    pipeline — disassembly and control-flow recovery over *all* executable
    sections, then the generic helper analyses (liveness, canary
    detection, SCEV loop bounds, stack info, def-use chains) — and hands
    the bundle to a security tool's static pass, which turns it into
    rewrite rules. *)

type fn_analysis = {
  fa_fn : Jt_cfg.Cfg.fn;
  fa_liveness : Jt_analysis.Liveness.t;
  fa_canaries : Jt_analysis.Canary.site list;
  fa_scev : Jt_analysis.Scev.summary list;
  fa_stack : Jt_analysis.Stackinfo.info;
  fa_vsa : Jt_analysis.Vsa.t Lazy.t;
      (** value-set analysis, computed on first force; already bailed
          (all-[Top]) when the module breaks calling conventions *)
  fa_domtree : Jt_cfg.Domtree.t Lazy.t;
  fa_defuse : Jt_analysis.Defuse.t Lazy.t;
}

type t = {
  sa_mod : Jt_obj.Objfile.t;
  sa_disasm : Jt_disasm.Disasm.t;
  sa_cfg : Jt_cfg.Cfg.t;
  sa_fns : fn_analysis list;
  sa_addr_fn : (int, fn_analysis) Hashtbl.t;
      (** instruction address -> containing function, precomputed at
          {!analyze} time (first function in [sa_fns] order wins) *)
  sa_reliable_conventions : bool;
      (** false when the module breaks the calling convention
          (section 4.1.2): liveness results are replaced by the
          conservative all-live fallback *)
}

val analyze : Jt_obj.Objfile.t -> t

val fn_of_addr : t -> int -> fn_analysis option
(** The analyzed function whose CFG contains the instruction address.
    A single hash probe against [sa_addr_fn]. *)

val all_block_addrs : t -> int list

val code_pointer_scan : t -> int list
(** Sliding-window constants that fall on *instruction boundaries* of the
    recovered disassembly (the BinCFI refinement step). *)

val function_entries : t -> int list
(** Discovered function entries (symbols, direct-call targets, entry
    point). *)
