module Ir = Jt_ir.Ir

type fn_analysis = {
  fa_fn : Jt_cfg.Cfg.fn;
  fa_liveness : Jt_analysis.Liveness.t;
  fa_canaries : Jt_analysis.Canary.site list;
  fa_scev : Jt_analysis.Scev.summary list;
  fa_stack : Jt_analysis.Stackinfo.info;
  fa_vsa : Jt_analysis.Vsa.t Lazy.t;
  fa_domtree : Jt_cfg.Domtree.t Lazy.t;
  fa_defuse : Jt_analysis.Defuse.t Lazy.t;
}

type t = {
  sa_mod : Jt_obj.Objfile.t;
  sa_disasm : Jt_disasm.Disasm.t;
  sa_cfg : Jt_cfg.Cfg.t;
  sa_fns : fn_analysis list;
  sa_addr_fn : (int, fn_analysis) Hashtbl.t;
  sa_reliable_conventions : bool;
  sa_raw_code_ptrs : int list Lazy.t;
  sa_cpa : Jt_analysis.Cpa.t Lazy.t;
  sa_callgraph : Jt_cfg.Callgraph.t Lazy.t;
  sa_summaries : (int, Jt_analysis.Interproc.summary) Hashtbl.t Lazy.t;
  sa_ir : Ir.t Lazy.t;
}

(* Ground truth for the warm-start invariant: every *real* analysis —
   disassembly, CFG recovery, the per-function fixpoints — passes through
   [compute], which bumps this counter.  It is a cross-domain [Atomic]
   rather than a [Metrics] counter because pool workers analyze on their
   own domains and the bench gate needs one total, not per-domain
   shards. *)
let analyses = Atomic.make 0

let analyses_performed () = Atomic.get analyses

(* ---- IR conversion: Cfg/analysis values -> pure data and back ---- *)

let term_to_ir : Jt_cfg.Cfg.term -> Ir.term = function
  | Jt_cfg.Cfg.Tjmp t -> Ir.Tjmp t
  | Jt_cfg.Cfg.Tjcc (t, f) -> Ir.Tjcc (t, f)
  | Jt_cfg.Cfg.Tjmp_ind ts -> Ir.Tjmp_ind ts
  | Jt_cfg.Cfg.Tcall (c, r) -> Ir.Tcall (c, r)
  | Jt_cfg.Cfg.Tcall_ind r -> Ir.Tcall_ind r
  | Jt_cfg.Cfg.Tret -> Ir.Tret
  | Jt_cfg.Cfg.Thalt -> Ir.Thalt
  | Jt_cfg.Cfg.Tfall n -> Ir.Tfall n

let term_of_ir : Ir.term -> Jt_cfg.Cfg.term = function
  | Ir.Tjmp t -> Jt_cfg.Cfg.Tjmp t
  | Ir.Tjcc (t, f) -> Jt_cfg.Cfg.Tjcc (t, f)
  | Ir.Tjmp_ind ts -> Jt_cfg.Cfg.Tjmp_ind ts
  | Ir.Tcall (c, r) -> Jt_cfg.Cfg.Tcall (c, r)
  | Ir.Tcall_ind r -> Jt_cfg.Cfg.Tcall_ind r
  | Ir.Tret -> Jt_cfg.Cfg.Tret
  | Ir.Thalt -> Jt_cfg.Cfg.Thalt
  | Ir.Tfall n -> Jt_cfg.Cfg.Tfall n

let mem_to_ir (m : Jt_isa.Insn.mem) : Ir.mem =
  {
    Ir.im_base =
      (match m.Jt_isa.Insn.base with
      | None -> -1
      | Some Jt_isa.Insn.Bpc -> -2
      | Some (Jt_isa.Insn.Breg r) -> Jt_isa.Reg.index r);
    im_index =
      (match m.Jt_isa.Insn.index with
      | None -> -1
      | Some r -> Jt_isa.Reg.index r);
    im_scale = m.Jt_isa.Insn.scale;
    im_disp = m.Jt_isa.Insn.disp;
  }

let mem_of_ir (m : Ir.mem) : Jt_isa.Insn.mem =
  {
    Jt_isa.Insn.base =
      (if m.Ir.im_base = -1 then None
       else if m.Ir.im_base = -2 then Some Jt_isa.Insn.Bpc
       else Some (Jt_isa.Insn.Breg (Jt_isa.Reg.of_index m.Ir.im_base)));
    index =
      (if m.Ir.im_index = -1 then None
       else Some (Jt_isa.Reg.of_index m.Ir.im_index));
    scale = m.Ir.im_scale;
    disp = Jt_isa.Word.of_int m.Ir.im_disp;
  }

let access_to_ir (a : Jt_analysis.Scev.access) : Ir.access =
  {
    Ir.ia_addr = a.Jt_analysis.Scev.a_addr;
    ia_mem = mem_to_ir a.a_mem;
    ia_width = a.a_width;
    ia_is_store = a.a_is_store;
  }

let access_of_ir (a : Ir.access) : Jt_analysis.Scev.access =
  {
    Jt_analysis.Scev.a_addr = a.Ir.ia_addr;
    a_mem = mem_of_ir a.ia_mem;
    a_width = a.ia_width;
    a_is_store = a.ia_is_store;
  }

let scev_to_ir (s : Jt_analysis.Scev.summary) : Ir.scev =
  {
    Ir.is_head = s.Jt_analysis.Scev.ls_head;
    is_preheader = s.ls_preheader;
    is_check_at = s.ls_check_at;
    is_ivar = Jt_isa.Reg.index s.ls_ivar;
    is_init = s.ls_init;
    is_bound =
      (match s.ls_bound with
      | Jt_analysis.Scev.Bimm v -> Ir.Ibnd_imm v
      | Jt_analysis.Scev.Breg r -> Ir.Ibnd_reg (Jt_isa.Reg.index r));
    is_bound_incl = s.ls_bound_incl;
    is_affine = List.map access_to_ir s.ls_affine;
    is_invariant = List.map access_to_ir s.ls_invariant;
  }

let scev_of_ir (s : Ir.scev) : Jt_analysis.Scev.summary =
  {
    Jt_analysis.Scev.ls_head = s.Ir.is_head;
    ls_preheader = s.is_preheader;
    ls_check_at = s.is_check_at;
    ls_ivar = Jt_isa.Reg.of_index s.is_ivar;
    ls_init = s.is_init;
    ls_bound =
      (match s.is_bound with
      | Ir.Ibnd_imm v -> Jt_analysis.Scev.Bimm v
      | Ir.Ibnd_reg r -> Jt_analysis.Scev.Breg (Jt_isa.Reg.of_index r));
    ls_bound_incl = s.is_bound_incl;
    ls_affine = List.map access_of_ir s.is_affine;
    ls_invariant = List.map access_of_ir s.is_invariant;
  }

let canary_to_ir (c : Jt_analysis.Canary.site) : Ir.canary =
  {
    Ir.ic_fn = c.Jt_analysis.Canary.c_fn;
    ic_store = c.c_store_addr;
    ic_after = c.c_after_store;
    ic_disp = c.c_slot_disp;
    ic_loads = c.c_check_loads;
  }

let canary_of_ir (c : Ir.canary) : Jt_analysis.Canary.site =
  {
    Jt_analysis.Canary.c_fn = c.Ir.ic_fn;
    c_store_addr = c.ic_store;
    c_after_store = c.ic_after;
    c_slot_disp = c.ic_disp;
    c_check_loads = c.ic_loads;
  }

let stack_to_ir (s : Jt_analysis.Stackinfo.info) : Ir.stackinfo =
  {
    Ir.ik_entry = s.Jt_analysis.Stackinfo.s_entry;
    ik_frame = s.s_frame_size;
    ik_canary = s.s_has_canary_pattern;
    ik_push = s.s_push_bytes;
  }

let stack_of_ir (s : Ir.stackinfo) : Jt_analysis.Stackinfo.info =
  {
    Jt_analysis.Stackinfo.s_entry = s.Ir.ik_entry;
    s_frame_size = s.ik_frame;
    s_has_canary_pattern = s.ik_canary;
    s_push_bytes = s.ik_push;
  }

let value_to_ir : Jt_analysis.Vsa.value -> Ir.vsa_value = function
  | Jt_analysis.Vsa.Bot -> Ir.Vbot
  | Jt_analysis.Vsa.Cst i -> Ir.Vcst (i.Jt_analysis.Vsa.lo, i.hi)
  | Jt_analysis.Vsa.Sprel i -> Ir.Vsprel (i.Jt_analysis.Vsa.lo, i.hi)
  | Jt_analysis.Vsa.Top -> Ir.Vtop

let value_of_ir : Ir.vsa_value -> Jt_analysis.Vsa.value = function
  | Ir.Vbot -> Jt_analysis.Vsa.Bot
  | Ir.Vcst (lo, hi) -> Jt_analysis.Vsa.Cst { Jt_analysis.Vsa.lo; hi }
  | Ir.Vsprel (lo, hi) -> Jt_analysis.Vsa.Sprel { Jt_analysis.Vsa.lo; hi }
  | Ir.Vtop -> Jt_analysis.Vsa.Top

let fn_to_ir (fa : fn_analysis) : Ir.fn =
  let fn = fa.fa_fn in
  let all_live, live = Jt_analysis.Liveness.export fa.fa_liveness in
  {
    Ir.if_entry = fn.Jt_cfg.Cfg.f_entry;
    if_name = fn.Jt_cfg.Cfg.f_name;
    if_blocks =
      List.map
        (fun (b : Jt_cfg.Cfg.block) -> b.Jt_cfg.Cfg.b_addr)
        (Jt_cfg.Cfg.fn_blocks fn);
    if_loops =
      List.map
        (fun (l : Jt_cfg.Cfg.loop) ->
          (l.Jt_cfg.Cfg.l_head, Jt_cfg.Cfg.Iset.elements l.l_body))
        fn.Jt_cfg.Cfg.f_loops;
    if_live_all = all_live;
    if_live = live;
    if_canaries = List.map canary_to_ir fa.fa_canaries;
    if_scev = List.map scev_to_ir fa.fa_scev;
    if_stack = stack_to_ir fa.fa_stack;
    if_vsa =
      Option.map
        (List.map (fun (a, st) -> (a, Array.map value_to_ir st)))
        (Jt_analysis.Vsa.export (Lazy.force fa.fa_vsa));
    if_dom = Jt_cfg.Domtree.export (Lazy.force fa.fa_domtree);
    if_defuse = Jt_analysis.Defuse.export (Lazy.force fa.fa_defuse);
  }

let build_ir (sa : t) : Ir.t =
  let d = sa.sa_disasm in
  let insns =
    Hashtbl.fold
      (fun _ (i : Jt_disasm.Disasm.insn_info) acc ->
        (i.d_addr, i.d_len) :: acc)
      d.Jt_disasm.Disasm.insns []
    |> List.sort compare |> Array.of_list
  in
  let blocks =
    Hashtbl.fold (fun _ b acc -> b :: acc) sa.sa_cfg.Jt_cfg.Cfg.c_blocks []
    |> List.sort (fun (a : Jt_cfg.Cfg.block) b ->
           compare a.Jt_cfg.Cfg.b_addr b.Jt_cfg.Cfg.b_addr)
    |> List.map (fun (b : Jt_cfg.Cfg.block) ->
           {
             Ir.ib_addr = b.Jt_cfg.Cfg.b_addr;
             ib_ninsns = Array.length b.b_insns;
             ib_term = term_to_ir b.b_term;
             ib_succs = b.b_succs;
             ib_preds = b.b_preds;
           })
  in
  {
    Ir.ir_module = sa.sa_mod.Jt_obj.Objfile.name;
    ir_digest = Jt_obj.Objfile.digest sa.sa_mod;
    ir_reliable = sa.sa_reliable_conventions;
    ir_insns = insns;
    ir_leaders = Jt_disasm.Disasm.block_starts d;
    ir_func_entries = d.Jt_disasm.Disasm.func_entries;
    ir_jump_tables = d.Jt_disasm.Disasm.jump_tables;
    ir_code_ptrs = Lazy.force sa.sa_raw_code_ptrs;
    ir_blocks = blocks;
    ir_fns = List.map fn_to_ir sa.sa_fns;
    ir_aux = [];
  }

(* ---- full analysis (the expensive path) ---- *)

let addr_fn_of fns =
  (* Instruction-address -> function, built once so [fn_of_addr] is a
     hash probe.  [Hashtbl.add] guarded by [mem] keeps the *first*
     function in [fns] order for an address claimed by several. *)
  let addr_fn = Hashtbl.create 1024 in
  List.iter
    (fun fa ->
      Hashtbl.iter
        (fun _ (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (i : Jt_disasm.Disasm.insn_info) ->
              if not (Hashtbl.mem addr_fn i.d_addr) then
                Hashtbl.add addr_fn i.d_addr fa)
            b.b_insns)
        fa.fa_fn.Jt_cfg.Cfg.f_blocks)
    fns;
  addr_fn

(* The interprocedural fact base shared by JCFI and JASan: code-pointer
   provenance, the indirect-edge-resolved call graph over it, and
   CPA-refined call summaries.  All three are deterministic functions of
   facts already pinned by the module digest, so forcing them on a
   warm-started analysis (when the [cpa/v1] aux is absent) does not
   count as a re-analysis. *)
let compute_cpa sa =
  Jt_analysis.Cpa.analyze ~m:sa.sa_mod
    ~entries:sa.sa_disasm.Jt_disasm.Disasm.func_entries
    ~code_ptrs:(Lazy.force sa.sa_raw_code_ptrs)
    ~jump_table_targets:
      (List.concat_map snd sa.sa_disasm.Jt_disasm.Disasm.jump_tables)
    (List.map (fun fa -> (fa.fa_fn, Lazy.force fa.fa_vsa)) sa.sa_fns)

let cpa_resolver sa site = Jt_analysis.Cpa.resolve (Lazy.force sa.sa_cpa) site

let compute (m : Jt_obj.Objfile.t) =
  Atomic.incr analyses;
  let disasm = Jt_disasm.Disasm.run m in
  let cfg = Jt_cfg.Cfg.build disasm in
  let reliable =
    not (Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Breaks_calling_convention)
  in
  (* Convention-breaking modules (ipa-ra, hand-written assembly) get the
     section 4.1.2 treatment: calls are summarized by an inter-procedural
     clobber/read analysis instead of the untrustworthy convention. *)
  let interproc_summary =
    if reliable then fun _ -> None
    else
      let summaries = Jt_analysis.Interproc.summaries cfg in
      fun entry ->
        Option.map
          (fun (s : Jt_analysis.Interproc.summary) -> (s.ip_clobbers, s.ip_reads))
          (Hashtbl.find_opt summaries entry)
  in
  let fns =
    List.map
      (fun fn ->
        {
          fa_fn = fn;
          fa_liveness =
            (if reliable then Jt_analysis.Liveness.analyze fn
             else
               Jt_analysis.Liveness.analyze ~call_summary:interproc_summary
                 ~exit_all_live:true fn);
          fa_canaries = Jt_analysis.Canary.analyze fn;
          fa_scev = Jt_analysis.Scev.analyze fn;
          fa_stack = Jt_analysis.Stackinfo.analyze fn;
          (* The heavier whole-function analyses are computed on demand:
             only tools that elide checks (JASan) force them, and always
             sequentially on the tool's own domain. *)
          fa_vsa =
            lazy (Jt_analysis.Vsa.analyze ~trust_conventions:reliable fn);
          fa_domtree = lazy (Jt_cfg.Domtree.compute fn);
          fa_defuse = lazy (Jt_analysis.Defuse.analyze fn);
        })
      (Jt_cfg.Cfg.functions cfg)
  in
  let rec sa =
    {
      sa_mod = m;
      sa_disasm = disasm;
      sa_cfg = cfg;
      sa_fns = fns;
      sa_addr_fn = addr_fn_of fns;
      sa_reliable_conventions = reliable;
      sa_raw_code_ptrs = lazy (Jt_disasm.Disasm.scan_code_pointers m);
      sa_cpa = lazy (compute_cpa sa);
      sa_callgraph =
        lazy (Jt_cfg.Callgraph.build ~resolve:(cpa_resolver sa) sa.sa_cfg);
      sa_summaries =
        lazy (Jt_analysis.Interproc.summaries ~resolve:(cpa_resolver sa) sa.sa_cfg);
      sa_ir = lazy (build_ir sa);
    }
  in
  sa

(* ---- reconstruction from a stored IR (the warm path) ---- *)

(* Any inconsistency raises [Failure]; callers treat that exactly like a
   corrupt store entry — warn and fall back to [compute]. *)
let of_ir (m : Jt_obj.Objfile.t) (ir : Ir.t) =
  if not (String.equal ir.Ir.ir_digest (Jt_obj.Objfile.digest m)) then
    failwith "Static_analyzer.of_ir: digest mismatch";
  (* Instructions: linear re-decode of the recorded spans from the
     module's own bytes (the digest pins them down); a span whose decode
     fails or disagrees on length means the entry is corrupt. *)
  let insns = Hashtbl.create (Array.length ir.Ir.ir_insns) in
  Array.iter
    (fun (addr, len) ->
      match Jt_obj.Objfile.section_at m addr with
      | None -> failwith "Static_analyzer.of_ir: span outside any section"
      | Some sec -> (
        let pos = addr - sec.Jt_obj.Section.vaddr in
        match
          Jt_isa.Decode.from_string sec.Jt_obj.Section.data ~pos ~at:addr
        with
        | Some (insn, len') when len' = len ->
          Hashtbl.replace insns addr
            { Jt_disasm.Disasm.d_addr = addr; d_insn = insn; d_len = len }
        | _ -> failwith "Static_analyzer.of_ir: span does not decode"))
    ir.Ir.ir_insns;
  let leaders = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.replace leaders a ()) ir.Ir.ir_leaders;
  let disasm =
    {
      Jt_disasm.Disasm.dmod = m;
      insns;
      leaders;
      func_entries = ir.Ir.ir_func_entries;
      jump_tables = ir.Ir.ir_jump_tables;
    }
  in
  (* Blocks: each block's instructions are the consecutive spans starting
     at its address. *)
  let c_blocks = Hashtbl.create 256 in
  List.iter
    (fun (b : Ir.block) ->
      let arr =
        Array.make b.Ir.ib_ninsns
          { Jt_disasm.Disasm.d_addr = 0; d_insn = Jt_isa.Insn.Nop; d_len = 0 }
      in
      let addr = ref b.Ir.ib_addr in
      for k = 0 to b.Ir.ib_ninsns - 1 do
        match Hashtbl.find_opt insns !addr with
        | None -> failwith "Static_analyzer.of_ir: block walks off the insns"
        | Some i ->
          arr.(k) <- i;
          addr := !addr + i.d_len
      done;
      Hashtbl.replace c_blocks b.Ir.ib_addr
        {
          Jt_cfg.Cfg.b_addr = b.Ir.ib_addr;
          b_insns = arr;
          b_term = term_of_ir b.ib_term;
          b_succs = b.ib_succs;
          b_preds = b.ib_preds;
        })
    ir.Ir.ir_blocks;
  let c_fns = Hashtbl.create 64 in
  let fns =
    List.map
      (fun (f : Ir.fn) ->
        let f_blocks = Hashtbl.create (List.length f.Ir.if_blocks) in
        List.iter
          (fun a ->
            match Hashtbl.find_opt c_blocks a with
            | Some b -> Hashtbl.replace f_blocks a b
            | None -> failwith "Static_analyzer.of_ir: unknown block in fn")
          f.Ir.if_blocks;
        let fn =
          {
            Jt_cfg.Cfg.f_entry = f.Ir.if_entry;
            f_name = f.if_name;
            f_blocks;
            f_loops =
              List.map
                (fun (head, body) ->
                  {
                    Jt_cfg.Cfg.l_head = head;
                    l_body = Jt_cfg.Cfg.Iset.of_list body;
                  })
                f.if_loops;
          }
        in
        Hashtbl.replace c_fns f.Ir.if_entry fn;
        {
          fa_fn = fn;
          fa_liveness =
            Jt_analysis.Liveness.import ~all_live:f.if_live_all
              ~facts:f.if_live ();
          fa_canaries = List.map canary_of_ir f.if_canaries;
          fa_scev = List.map scev_of_ir f.if_scev;
          fa_stack = stack_of_ir f.if_stack;
          fa_vsa =
            lazy
              (Jt_analysis.Vsa.import
                 ~ins:
                   (Option.map
                      (List.map (fun (a, st) -> (a, Array.map value_of_ir st)))
                      f.if_vsa)
                 fn);
          fa_domtree = lazy (Jt_cfg.Domtree.import ~entry:f.if_entry f.if_dom);
          fa_defuse = lazy (Jt_analysis.Defuse.import ~ins:f.if_defuse fn);
        })
      ir.Ir.ir_fns
  in
  let rec sa =
    {
      sa_mod = m;
      sa_disasm = disasm;
      sa_cfg = { Jt_cfg.Cfg.c_disasm = disasm; c_blocks; c_fns };
      sa_fns = fns;
      sa_addr_fn = addr_fn_of fns;
      sa_reliable_conventions = ir.Ir.ir_reliable;
      sa_raw_code_ptrs = lazy ir.Ir.ir_code_ptrs;
      (* Prefer the persisted sites over re-running the pass; a corrupt
         aux degrades to the (deterministic) recompute, like any other
         store damage. *)
      sa_cpa =
        lazy
          (match Ir.find_aux ir Ir.Cpa.key with
          | Some payload -> (
            match Ir.Cpa.decode payload with
            | sites -> Jt_analysis.Cpa.import sites
            | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
            | exception _ -> compute_cpa sa)
          | None -> compute_cpa sa);
      sa_callgraph =
        lazy (Jt_cfg.Callgraph.build ~resolve:(cpa_resolver sa) sa.sa_cfg);
      sa_summaries =
        lazy
          (Jt_analysis.Interproc.summaries ~resolve:(cpa_resolver sa) sa.sa_cfg);
      sa_ir = lazy ir;
    }
  in
  sa

let to_ir (sa : t) = Lazy.force sa.sa_ir

let analyze ?store (m : Jt_obj.Objfile.t) =
  match store with
  | None -> compute m
  | Some store ->
    let digest = Jt_obj.Objfile.digest m in
    (* On a miss the compute closure stashes the freshly built analysis
       so the caller does not pay [of_ir] on top of [compute]. *)
    let computed = ref None in
    let ir =
      Jt_ir.Store.find_or_compute store ~digest ~name:m.Jt_obj.Objfile.name
        (fun () ->
          let sa = compute m in
          computed := Some sa;
          Lazy.force sa.sa_ir)
    in
    (match !computed with
    | Some sa -> sa
    | None -> (
      match of_ir m ir with
      | sa -> sa
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e ->
        Printf.eprintf
          "janitizer: warning: stored IR for %s does not reconstruct (%s), \
           re-analyzing\n%!"
          m.Jt_obj.Objfile.name (Printexc.to_string e);
        compute m))

let fn_of_addr t addr = Hashtbl.find_opt t.sa_addr_fn addr

let all_block_addrs t =
  List.sort compare
    (Hashtbl.fold (fun a _ acc -> a :: acc) t.sa_cfg.Jt_cfg.Cfg.c_blocks [])

let code_pointer_scan t =
  List.filter
    (fun v -> Jt_disasm.Disasm.is_insn_boundary t.sa_disasm v)
    (Lazy.force t.sa_raw_code_ptrs)

let function_entries t = t.sa_disasm.Jt_disasm.Disasm.func_entries
