type fn_analysis = {
  fa_fn : Jt_cfg.Cfg.fn;
  fa_liveness : Jt_analysis.Liveness.t;
  fa_canaries : Jt_analysis.Canary.site list;
  fa_scev : Jt_analysis.Scev.summary list;
  fa_stack : Jt_analysis.Stackinfo.info;
  fa_vsa : Jt_analysis.Vsa.t Lazy.t;
  fa_domtree : Jt_cfg.Domtree.t Lazy.t;
  fa_defuse : Jt_analysis.Defuse.t Lazy.t;
}

type t = {
  sa_mod : Jt_obj.Objfile.t;
  sa_disasm : Jt_disasm.Disasm.t;
  sa_cfg : Jt_cfg.Cfg.t;
  sa_fns : fn_analysis list;
  sa_addr_fn : (int, fn_analysis) Hashtbl.t;
  sa_reliable_conventions : bool;
}

let analyze (m : Jt_obj.Objfile.t) =
  let disasm = Jt_disasm.Disasm.run m in
  let cfg = Jt_cfg.Cfg.build disasm in
  let reliable =
    not (Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Breaks_calling_convention)
  in
  (* Convention-breaking modules (ipa-ra, hand-written assembly) get the
     section 4.1.2 treatment: calls are summarized by an inter-procedural
     clobber/read analysis instead of the untrustworthy convention. *)
  let interproc_summary =
    if reliable then fun _ -> None
    else
      let summaries = Jt_analysis.Interproc.summaries cfg in
      fun entry ->
        Option.map
          (fun (s : Jt_analysis.Interproc.summary) -> (s.ip_clobbers, s.ip_reads))
          (Hashtbl.find_opt summaries entry)
  in
  let fns =
    List.map
      (fun fn ->
        {
          fa_fn = fn;
          fa_liveness =
            (if reliable then Jt_analysis.Liveness.analyze fn
             else
               Jt_analysis.Liveness.analyze ~call_summary:interproc_summary
                 ~exit_all_live:true fn);
          fa_canaries = Jt_analysis.Canary.analyze fn;
          fa_scev = Jt_analysis.Scev.analyze fn;
          fa_stack = Jt_analysis.Stackinfo.analyze fn;
          (* The heavier whole-function analyses are computed on demand:
             only tools that elide checks (JASan) force them, and always
             sequentially on the tool's own domain. *)
          fa_vsa =
            lazy (Jt_analysis.Vsa.analyze ~trust_conventions:reliable fn);
          fa_domtree = lazy (Jt_cfg.Domtree.compute fn);
          fa_defuse = lazy (Jt_analysis.Defuse.analyze fn);
        })
      (Jt_cfg.Cfg.functions cfg)
  in
  (* Instruction-address -> function index, built once here so
     [fn_of_addr] is a hash probe instead of a full scan of every
     instruction of every function per query.  [Hashtbl.add] guarded by
     [mem] keeps the *first* function in [fns] order for an address
     claimed by several (matching the old [List.find_opt] semantics). *)
  let addr_fn = Hashtbl.create 1024 in
  List.iter
    (fun fa ->
      Hashtbl.iter
        (fun _ (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (i : Jt_disasm.Disasm.insn_info) ->
              if not (Hashtbl.mem addr_fn i.d_addr) then
                Hashtbl.add addr_fn i.d_addr fa)
            b.b_insns)
        fa.fa_fn.Jt_cfg.Cfg.f_blocks)
    fns;
  { sa_mod = m; sa_disasm = disasm; sa_cfg = cfg; sa_fns = fns;
    sa_addr_fn = addr_fn; sa_reliable_conventions = reliable }

let fn_of_addr t addr = Hashtbl.find_opt t.sa_addr_fn addr

let all_block_addrs t =
  List.sort compare
    (Hashtbl.fold (fun a _ acc -> a :: acc) t.sa_cfg.Jt_cfg.Cfg.c_blocks [])

let code_pointer_scan t =
  List.filter
    (fun v -> Jt_disasm.Disasm.is_insn_boundary t.sa_disasm v)
    (Jt_disasm.Disasm.scan_code_pointers t.sa_mod)

let function_entries t = t.sa_disasm.Jt_disasm.Disasm.func_entries
