(** The security-tool plugin interface.

    A custom security technique plugs into Janitizer with two passes
    (section 3.4.3): a static pass with whole-CFG visibility that compiles
    its decisions into rewrite rules, and a dynamic fallback pass that
    works one basic block at a time on code the static analyzer never saw.
    [t_setup] runs once per process, before execution (shadow-state
    initialization, allocator interposition, loader subscriptions). *)

type t = {
  t_name : string;
  t_setup : Jt_vm.Vm.t -> unit;
  t_static : Static_analyzer.t -> Jt_rules.Rules.file;
  t_client : Jt_dbt.Dbt.client;
  t_on_load :
    Jt_vm.Vm.t ->
    Jt_loader.Loader.loaded ->
    Jt_rules.Rules.file option ->
    unit;
      (** Called at every module load with the module's rewrite-rule file
          when the static analyzer produced one: tools maintaining
          per-module runtime structures (e.g. CFI target tables) populate
          them here, falling back to load-time analysis when no static
          hints exist (section 4.2.2). *)
  t_aux : Static_analyzer.t -> (string * string) list;
      (** Tool-contributed auxiliary IR tables, merged into the module's
          stored IR after the static pass ([Jt_ir.Store.update_aux]) —
          e.g. JASan's per-access claim partition under
          [Jt_ir.Ir.Claims.key].  Return [[]] when the tool has nothing
          to persist. *)
}

val no_on_load :
  Jt_vm.Vm.t -> Jt_loader.Loader.loaded -> Jt_rules.Rules.file option -> unit

val no_aux : Static_analyzer.t -> (string * string) list
(** [no_aux _ = []]. *)

val noop_marks : Static_analyzer.t -> Jt_rules.Rules.t list -> Jt_rules.Rules.t list
(** [noop_marks sa rules] appends a no-op rule for every basic block of
    the recovered CFG that carries no rule in [rules], implementing the
    statically-inspected-code marking of section 3.3.4.  Tools should
    pass their static pass output through this before serializing. *)
