open Jt_isa

module Ids = struct
  let propagate = 0x401
  let check_target = 0x402
  let source = 0x403
end

module Rt = struct
  type t = {
    mutable reg_taint : int;  (* bit mask over registers *)
    mem : (int, unit) Hashtbl.t;  (* tainted bytes *)
    mutable n_alerts : int;
  }

  let create () = { reg_taint = 0; mem = Hashtbl.create 256; n_alerts = 0 }

  let bit r = 1 lsl Reg.index r
  let reg_is t r = t.reg_taint land bit r <> 0
  let set_reg t r v =
    if v then t.reg_taint <- t.reg_taint lor bit r
    else t.reg_taint <- t.reg_taint land lnot (bit r)

  let mem_is t a ~len =
    let rec go i = i < len && (Hashtbl.mem t.mem (a + i) || go (i + 1)) in
    go 0

  let set_mem t a ~len v =
    for i = 0 to len - 1 do
      if v then Hashtbl.replace t.mem (a + i) ()
      else Hashtbl.remove t.mem (a + i)
    done

  let tainted_regs t = List.filter (reg_is t) Reg.all
  let tainted_bytes t = Hashtbl.length t.mem
  let alerts t = t.n_alerts

  let operand_taint t = function Insn.Reg r -> reg_is t r | Insn.Imm _ -> false

  let mem_operand_reg_taint t (m : Insn.mem) =
    (match m.base with Some (Insn.Breg r) -> reg_is t r | _ -> false)
    || match m.index with Some r -> reg_is t r | None -> false

  (* Pre-execution propagation: reads the pre-state, updates the taint
     state to reflect the instruction about to execute. *)
  let propagate t (vm : Jt_vm.Vm.t) insn ~at ~len =
    let next_pc = at + len in
    let ea m = Jt_vm.Vm.eval_mem vm ~next_pc m in
    match insn with
    | Insn.Mov (rd, src) -> set_reg t rd (operand_taint t src)
    | Insn.Lea (rd, m) -> set_reg t rd (mem_operand_reg_taint t m)
    | Insn.Load (w, rd, m) ->
      (* value taint plus address taint: data selected by untrusted
         indices is untrusted (the table-indexing hijack pattern) *)
      set_reg t rd
        (mem_is t (ea m) ~len:(Insn.width_bytes w) || mem_operand_reg_taint t m)
    | Insn.Store (w, m, src) ->
      set_mem t (ea m) ~len:(Insn.width_bytes w) (operand_taint t src)
    | Insn.Binop (_, rd, src) ->
      set_reg t rd (reg_is t rd || operand_taint t src)
    | Insn.Neg _ | Insn.Not _ -> ()  (* taint preserved in place *)
    | Insn.Load_canary rd -> set_reg t rd false
    | Insn.Push src ->
      let sp = Jt_vm.Vm.get vm Reg.sp in
      set_mem t (Word.sub sp 4) ~len:4 (operand_taint t src)
    | Insn.Pop rd ->
      let sp = Jt_vm.Vm.get vm Reg.sp in
      set_reg t rd (mem_is t sp ~len:4)
    | Insn.Call _ | Insn.Call_ind _ ->
      (* the pushed return address is trusted *)
      let sp = Jt_vm.Vm.get vm Reg.sp in
      set_mem t (Word.sub sp 4) ~len:4 false
    | Insn.Syscall n ->
      if n = Sysno.read_int then set_reg t Reg.r0 true
      else if n = Sysno.exit_ || n = Sysno.resolve || n = Sysno.cache_flush then ()
      else set_reg t Reg.r0 false
    | Insn.Nop | Insn.Halt | Insn.Cmp _ | Insn.Test _ | Insn.Jmp _
    | Insn.Jcc _ | Insn.Jmp_ind _ | Insn.Ret ->
      ()

  let alert t vm ~addr =
    t.n_alerts <- t.n_alerts + 1;
    Jt_vm.Vm.report_violation vm ~kind:"tainted-target" ~addr

  (* Policy: an indirect transfer steered by tainted data is an alert. *)
  let check_target t (vm : Jt_vm.Vm.t) insn ~at ~len =
    let next_pc = at + len in
    match insn with
    | Insn.Jmp_ind (Some r, _) | Insn.Call_ind (Some r, _) ->
      if reg_is t r then alert t vm ~addr:(Jt_vm.Vm.get vm r)
    | Insn.Jmp_ind (None, Some m) | Insn.Call_ind (None, Some m) ->
      let a = Jt_vm.Vm.eval_mem vm ~next_pc m in
      if mem_is t a ~len:4 || mem_operand_reg_taint t m then
        alert t vm ~addr:(Jt_mem.Memory.read32 vm.mem a)
    | Insn.Ret ->
      let sp = Jt_vm.Vm.get vm Reg.sp in
      if mem_is t sp ~len:4 then alert t vm ~addr:(Jt_mem.Memory.read32 vm.mem sp)
    | _ -> ()
end

(* An instruction that can move data between taint-relevant locations. *)
let is_data_mover = function
  | Insn.Mov _ | Insn.Lea _ | Insn.Load _ | Insn.Store _ | Insn.Binop _
  | Insn.Push _ | Insn.Pop _ | Insn.Call _ | Insn.Call_ind _ | Insn.Syscall _
  | Insn.Load_canary _ ->
    true
  | Insn.Neg _ | Insn.Not _ | Insn.Nop | Insn.Halt | Insn.Cmp _ | Insn.Test _
  | Insn.Jmp _ | Insn.Jcc _ | Insn.Jmp_ind _ | Insn.Ret ->
    false

let needs_check = function
  | Insn.Jmp_ind _ | Insn.Call_ind _ | Insn.Ret -> true
  | _ -> false

let static_pass (sa : Janitizer.Static_analyzer.t) =
  let rules = ref [] in
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      List.iter
        (fun (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (info : Jt_disasm.Disasm.insn_info) ->
              let emit id =
                rules :=
                  Jt_rules.Rules.make ~id ~bb:b.b_addr ~insn:info.d_addr ()
                  :: !rules
              in
              if is_data_mover info.d_insn then emit Ids.propagate;
              if needs_check info.d_insn then emit Ids.check_target;
              match info.d_insn with
              | Insn.Syscall n when n = Sysno.read_int -> emit Ids.source
              | _ -> ())
            b.b_insns)
        (Jt_cfg.Cfg.fn_blocks fa.fa_fn))
    sa.sa_fns;
  {
    Jt_rules.Rules.rf_module = sa.sa_mod.Jt_obj.Objfile.name;
    rf_digest = Jt_obj.Objfile.digest sa.sa_mod;
    rf_stats = [];
    rf_rules = Janitizer.Tool.noop_marks sa (List.rev !rules);
  }

let prop_cost = 2
let check_cost = Jt_vm.Cost.asan_check / 2
let dyn_extra = 1

let metas_for rt insn ~at ~len ~conservative ~want_prop ~want_check =
  let extra = if conservative then dyn_extra else 0 in
  (if want_prop && is_data_mover insn then
     [
       {
         Jt_dbt.Dbt.m_cost = prop_cost + extra;
         m_action = Some (fun vm -> Rt.propagate rt vm insn ~at ~len);
         m_kind = Jt_dbt.Dbt.M_opaque;
       };
     ]
   else [])
  @
  if want_check && needs_check insn then
    [
      {
        Jt_dbt.Dbt.m_cost = check_cost + extra;
        m_action = Some (fun vm -> Rt.check_target rt vm insn ~at ~len);
        m_kind = Jt_dbt.Dbt.M_opaque;
      };
    ]
  else []

let create () =
  let rt = Rt.create () in
  let client =
    {
      Jt_dbt.Dbt.cl_name = "jtaint";
      cl_on_block =
        (fun _vm b prov ~rules_at ->
          let plan = Jt_dbt.Dbt.no_plan b in
          Array.iteri
            (fun k (at, insn, len) ->
              match prov with
              | Jt_dbt.Dbt.Static_rules ->
                let rs = rules_at at in
                let has id =
                  List.exists (fun (r : Jt_rules.Rules.t) -> r.rule_id = id) rs
                in
                plan.(k) <-
                  metas_for rt insn ~at ~len ~conservative:false
                    ~want_prop:(has Ids.propagate)
                    ~want_check:(has Ids.check_target)
              | Jt_dbt.Dbt.Dynamic_only ->
                plan.(k) <-
                  metas_for rt insn ~at ~len ~conservative:true ~want_prop:true
                    ~want_check:true)
            b.insns;
          plan);
    }
  in
  ( {
      Janitizer.Tool.t_name = "jtaint";
      t_setup = (fun _ -> ());
      t_static = static_pass;
      t_client = client;
      t_on_load = Janitizer.Tool.no_on_load;
      t_aux = Janitizer.Tool.no_aux;
    },
    rt )
