let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable watchers : (int -> unit) list;
  mutable watch : bool;
}

let create () = { pages = Hashtbl.create 64; watchers = []; watch = false }

let page t a =
  let key = a lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\x00' in
    Hashtbl.add t.pages key p;
    p

let read8 t a =
  let a = a land Jt_isa.Word.mask in
  Char.code (Bytes.get (page t a) (a land page_mask))

let write8 t a v =
  let a = a land Jt_isa.Word.mask in
  Bytes.set (page t a) (a land page_mask) (Char.chr (v land 0xFF));
  if t.watch then List.iter (fun f -> f a) t.watchers

let read16 t a = read8 t a lor (read8 t (a + 1) lsl 8)

let read32 t a =
  read8 t a
  lor (read8 t (a + 1) lsl 8)
  lor (read8 t (a + 2) lsl 16)
  lor (read8 t (a + 3) lsl 24)

let write16 t a v =
  write8 t a v;
  write8 t (a + 1) (v lsr 8)

let write32 t a v =
  write8 t a v;
  write8 t (a + 1) (v lsr 8);
  write8 t (a + 2) (v lsr 16);
  write8 t (a + 3) (v lsr 24)

let read t a ~width =
  match width with
  | 1 -> read8 t a
  | 2 -> read16 t a
  | 4 -> read32 t a
  | _ -> invalid_arg "Memory.read"

let write t a ~width v =
  match width with
  | 1 -> write8 t a v
  | 2 -> write16 t a v
  | 4 -> write32 t a v
  | _ -> invalid_arg "Memory.write"

(* String helpers wrap [a + i] through the word mask themselves:
   crossing the top of the address space must land on page 0, whatever
   the byte primitives do internally. *)
let write_string t a s =
  String.iteri
    (fun i c -> write8 t ((a + i) land Jt_isa.Word.mask) (Char.code c))
    s

let read_cstring t a =
  let b = Buffer.create 16 in
  let rec go i =
    if i >= 4096 then Buffer.contents b
    else
      let c = read8 t ((a + i) land Jt_isa.Word.mask) in
      if c = 0 then Buffer.contents b
      else begin
        Buffer.add_char b (Char.chr c);
        go (i + 1)
      end
  in
  go 0

let on_code_write t f = t.watchers <- f :: t.watchers
let set_watch t v = t.watch <- v
