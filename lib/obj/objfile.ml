type kind = Exec_nonpic | Exec_pic | Shared

type symtab_level = Full | Exported_only | Stripped

type feature =
  | Cxx_exceptions
  | Fortran_runtime
  | Handwritten_asm
  | Breaks_calling_convention

type import = { imp_sym : string; imp_got : int; imp_plt : int option }

type t = {
  name : string;
  kind : kind;
  sections : Section.t list;
  symbols : Symbol.t list;
  symtab_level : symtab_level;
  relocs : Reloc.t list;
  imports : import list;
  exports : string list;
  deps : string list;
  entry : int option;
  features : feature list;
}

let is_pic m = match m.kind with Exec_nonpic -> false | Exec_pic | Shared -> true

let exported_symbols m = List.filter (fun (s : Symbol.t) -> s.exported) m.symbols

let visible_symbols m =
  match m.symtab_level with
  | Full -> m.symbols
  | Exported_only -> exported_symbols m
  | Stripped -> []

let find_symbol m name =
  List.find_opt (fun (s : Symbol.t) -> String.equal s.name name) m.symbols

let find_export m name =
  List.find_opt (fun (s : Symbol.t) -> String.equal s.name name)
    (exported_symbols m)

let section_at m a = List.find_opt (fun s -> Section.contains s a) m.sections

let find_section m name =
  List.find_opt (fun (s : Section.t) -> String.equal s.name name) m.sections

let code_sections m = List.filter (fun (s : Section.t) -> s.is_code) m.sections

let byte_at m a =
  match section_at m a with
  | Some s -> Some (Section.byte s a)
  | None -> None

let code_bounds m =
  match code_sections m with
  | [] -> None
  | secs ->
    let lo = List.fold_left (fun acc s -> min acc s.Section.vaddr) max_int secs in
    let hi = List.fold_left (fun acc s -> max acc (Section.end_vaddr s)) 0 secs in
    Some (lo, hi)

let has_feature m f = List.mem f m.features

(* Content digest used to key derived artifacts (rule caches): covers
   everything the static analyzer's output depends on — identity, layout
   and the raw section bytes — so regenerating a module with different
   code yields a different digest even when the name is unchanged. *)
let digest m =
  let b = Buffer.create 4096 in
  let str s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  str m.name;
  str (match m.kind with Exec_nonpic -> "E" | Exec_pic -> "P" | Shared -> "S");
  Buffer.add_string b (match m.entry with None -> "-" | Some e -> string_of_int e);
  List.iter
    (fun (s : Section.t) ->
      str s.Section.name;
      Buffer.add_string b (string_of_int s.Section.vaddr);
      Buffer.add_char b (if s.Section.is_code then 'c' else 'd');
      str s.Section.data)
    m.sections;
  Digest.string (Buffer.contents b)

let pp ppf m =
  let kind_s =
    match m.kind with
    | Exec_nonpic -> "EXEC"
    | Exec_pic -> "PIE"
    | Shared -> "DYN"
  in
  Format.fprintf ppf "@[<v>module %s (%s)@,%a@]" m.name kind_s
    (Format.pp_print_list Section.pp)
    m.sections
