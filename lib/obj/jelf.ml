let magic = "JELF1"

(* ---- writer ---- *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u32 b v =
  u8 b v;
  u8 b (v lsr 8);
  u8 b (v lsr 16);
  u8 b (v lsr 24)

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let list_ b xs f =
  u32 b (List.length xs);
  List.iter (f b) xs

let kind_tag = function
  | Objfile.Exec_nonpic -> 0
  | Objfile.Exec_pic -> 1
  | Objfile.Shared -> 2

let symtab_tag = function
  | Objfile.Full -> 0
  | Objfile.Exported_only -> 1
  | Objfile.Stripped -> 2

let feature_tag = function
  | Objfile.Cxx_exceptions -> 0
  | Objfile.Fortran_runtime -> 1
  | Objfile.Handwritten_asm -> 2
  | Objfile.Breaks_calling_convention -> 3

let write (m : Objfile.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  str b m.name;
  u8 b (kind_tag m.kind);
  u8 b (symtab_tag m.symtab_level);
  list_ b m.features (fun b f -> u8 b (feature_tag f));
  list_ b m.deps str;
  (match m.entry with
  | Some e ->
    u8 b 1;
    u32 b e
  | None -> u8 b 0);
  list_ b m.sections (fun b (s : Section.t) ->
      str b s.name;
      u32 b s.vaddr;
      u8 b (if s.is_code then 1 else 0);
      str b s.data;
      list_ b s.truth_code_ranges (fun b (a, l) ->
          u32 b a;
          u32 b l));
  list_ b m.symbols (fun b (s : Symbol.t) ->
      str b s.name;
      u32 b s.vaddr;
      u32 b s.size;
      u8 b (match s.kind with Symbol.Func -> 0 | Symbol.Object -> 1);
      u8 b (if s.exported then 1 else 0));
  list_ b m.relocs (fun b (r : Reloc.t) ->
      u32 b r.offset;
      match r.kind with
      | Reloc.Rel_relative v ->
        u8 b 0;
        u32 b v
      | Reloc.Rel_got n ->
        u8 b 1;
        str b n);
  list_ b m.imports (fun b (i : Objfile.import) ->
      str b i.imp_sym;
      u32 b i.imp_got;
      match i.imp_plt with
      | Some p ->
        u8 b 1;
        u32 b p
      | None -> u8 b 0);
  list_ b m.exports str;
  Buffer.contents b

(* ---- reader ---- *)

type cursor = { s : string; mutable pos : int }

let fail why = failwith ("Jelf.read: " ^ why)

let byte c =
  if c.pos >= String.length c.s then fail "truncated";
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r32 c =
  let a = byte c in
  let b = byte c in
  let d = byte c in
  let e = byte c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let rstr c =
  let n = r32 c in
  if c.pos + n > String.length c.s then fail "bad string";
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

(* [min] is the smallest possible encoding of one element: a count
   whose elements could not all fit in the remaining bytes is corrupt,
   however small the absolute number looks (the magic 1M ceiling alone
   let a short file claim 999,999 sections and spin the decoder through
   a million "truncated" probes — or worse, allocate for them).  Same
   rule the rules codec and the JTIR codec apply to their counts. *)
let rlist ~min c f =
  let n = r32 c in
  if n > 1_000_000 then fail "absurd count";
  if n * min > String.length c.s - c.pos then fail "count exceeds buffer";
  List.init n (fun _ -> f c)

let read s =
  if String.length s < 5 || String.sub s 0 5 <> magic then fail "bad magic";
  let c = { s; pos = 5 } in
  let name = rstr c in
  let kind =
    match byte c with
    | 0 -> Objfile.Exec_nonpic
    | 1 -> Objfile.Exec_pic
    | 2 -> Objfile.Shared
    | _ -> fail "bad kind"
  in
  let symtab_level =
    match byte c with
    | 0 -> Objfile.Full
    | 1 -> Objfile.Exported_only
    | 2 -> Objfile.Stripped
    | _ -> fail "bad symtab level"
  in
  let features =
    rlist ~min:1 c (fun c ->
        match byte c with
        | 0 -> Objfile.Cxx_exceptions
        | 1 -> Objfile.Fortran_runtime
        | 2 -> Objfile.Handwritten_asm
        | 3 -> Objfile.Breaks_calling_convention
        | _ -> fail "bad feature")
  in
  let deps = rlist ~min:4 c rstr in
  let entry = match byte c with 1 -> Some (r32 c) | 0 -> None | _ -> fail "bad entry" in
  let sections =
    rlist ~min:17 c (fun c ->
        let name = rstr c in
        let vaddr = r32 c in
        let is_code = byte c = 1 in
        let data = rstr c in
        let truth =
          rlist ~min:8 c (fun c ->
              let a = r32 c in
              let l = r32 c in
              (a, l))
        in
        Section.make ~truth_code_ranges:truth ~name ~vaddr ~is_code data)
  in
  let symbols =
    rlist ~min:14 c (fun c ->
        let name = rstr c in
        let vaddr = r32 c in
        let size = r32 c in
        let kind = match byte c with 0 -> Symbol.Func | 1 -> Symbol.Object | _ -> fail "bad sym" in
        let exported = byte c = 1 in
        Symbol.make ~size ~exported ~kind ~name vaddr)
  in
  let relocs =
    rlist ~min:9 c (fun c ->
        let offset = r32 c in
        match byte c with
        | 0 -> Reloc.relative ~offset (r32 c)
        | 1 -> Reloc.got ~offset (rstr c)
        | _ -> fail "bad reloc")
  in
  let imports =
    rlist ~min:9 c (fun c ->
        let imp_sym = rstr c in
        let imp_got = r32 c in
        let imp_plt = match byte c with 1 -> Some (r32 c) | 0 -> None | _ -> fail "bad import" in
        { Objfile.imp_sym; imp_got; imp_plt })
  in
  let exports = rlist ~min:4 c rstr in
  (* A valid decode must consume the whole buffer: accepting trailing
     garbage would let a corrupted (e.g. doubly-written) file pass, and
     makes the digest of what was read disagree with the file bytes. *)
  if c.pos <> String.length s then fail "trailing bytes";
  {
    Objfile.name;
    kind;
    sections;
    symbols;
    symtab_level;
    relocs;
    imports;
    exports;
    deps;
    entry;
    features;
  }

(* [Sys.mkdir] is single-level; emitted binaries are routinely saved
   into nested output directories.  Racing creators are fine: EEXIST is
   ignored at every level. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

(* Publish protocol shared with [Jt_ir.Store]: write to a temp file in
   the destination directory, then atomically rename over the final
   path.  A crash mid-write leaves only a stray [.tmp], never a
   truncated [.jelf] that a later [load] would half-decode. *)
let save ~dir (m : Objfile.t) =
  mkdir_p dir;
  let path = Filename.concat dir (m.name ^ ".jelf") in
  let tmp = Filename.temp_file ~temp_dir:dir (m.name ^ ".") ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (write m));
      Sys.rename tmp path);
  path

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  read s
