(** On-disk serialization of JELF modules.

    A compact binary container (magic ["JELF1"]) carrying everything in
    {!Objfile.t}: sections with their bytes, the full symbol table and its
    visibility level, relocations, imports/exports and dependency
    records.  This is what lets the repository behave like a real binary
    toolchain: the assembler writes [.jelf] files, the CLI inspects and
    runs them, and rule files produced offline refer to them by name. *)

val write : Objfile.t -> string
(** Serialize a module to its container bytes. *)

val read : string -> Objfile.t
(** @raise Failure on malformed input: truncation, bad magic or tags,
    element counts that cannot fit in the remaining bytes, and trailing
    bytes after a complete decode are all rejected. *)

val mkdir_p : string -> unit
(** Recursive directory creation ([Sys.mkdir] is single-level);
    idempotent and race-tolerant. *)

val save : dir:string -> Objfile.t -> string
(** Write [<dir>/<name>.jelf] (creating [dir] and any missing parents)
    via temp-file + atomic rename, so an interrupted save never leaves a
    partial [.jelf] at the final path; returns the path. *)

val load : string -> Objfile.t
(** Read a module from a file path.  @raise Failure / [Sys_error]. *)
