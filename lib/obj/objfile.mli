(** JELF modules: the binary container format of the simulated system.

    A module is either a position-dependent executable (linked at a fixed
    base), a position-independent executable, or a shared object (always
    PIC).  Its sections hold raw encoded bytes; symbol visibility is
    controlled by {!symtab_level} exactly as the paper needs: full symbol
    tables, export-only dynamic symbols, or fully stripped. *)

type kind = Exec_nonpic | Exec_pic | Shared

type symtab_level = Full | Exported_only | Stripped

(** Traits of how the module was "compiled"; used by baseline tools'
    applicability predicates (e.g. RetroWrite-style rewriting refuses
    C++-exception code) and by the special cases of sections 4.1.2 and
    4.2.3 of the paper. *)
type feature =
  | Cxx_exceptions
  | Fortran_runtime
  | Handwritten_asm
  | Breaks_calling_convention  (** ipa-ra-style convention violations *)

type import = {
  imp_sym : string;
  imp_got : int;  (** link-time vaddr of the GOT slot for this symbol *)
  imp_plt : int option;  (** link-time vaddr of the PLT stub, if any *)
}

type t = {
  name : string;
  kind : kind;
  sections : Section.t list;
  symbols : Symbol.t list;  (** ground-truth symbol list (all of them) *)
  symtab_level : symtab_level;
  relocs : Reloc.t list;
  imports : import list;
  exports : string list;
  deps : string list;  (** DT_NEEDED: statically declared dependencies *)
  entry : int option;  (** link-time entry address, for executables *)
  features : feature list;
}

val is_pic : t -> bool

val visible_symbols : t -> Symbol.t list
(** Symbols a binary tool can actually see, given [symtab_level]. *)

val exported_symbols : t -> Symbol.t list
(** Exported symbols are visible at every symtab level (they live in the
    dynamic symbol table). *)

val find_symbol : t -> string -> Symbol.t option
(** Looks through the ground-truth table (loader's view). *)

val find_export : t -> string -> Symbol.t option

val section_at : t -> int -> Section.t option
(** Section containing link-time address. *)

val find_section : t -> string -> Section.t option
val code_sections : t -> Section.t list

val byte_at : t -> int -> int option
(** Byte at a link-time virtual address, [None] if unmapped. *)

val code_bounds : t -> (int * int) option
(** Smallest [(lo, hi)] covering all code sections (link-time, [hi]
    exclusive). *)

val has_feature : t -> feature -> bool

val digest : t -> string
(** 16-byte MD5 over the module's identity, layout and section contents.
    Keys derived artifacts (the [.jtr] rule caches): two builds of a
    module with the same name but different code digest differently, so
    a stale cache is detected instead of applied. *)

val pp : Format.formatter -> t -> unit
