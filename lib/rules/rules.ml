type t = { rule_id : int; bb : int; insn : int; data : int array }

let no_op = 0

let make ~id ~bb ~insn ?(data = []) () =
  if List.length data > 4 then invalid_arg "Rules.make: at most 4 data words";
  { rule_id = id; bb; insn; data = Array.of_list data }

type file = {
  rf_module : string;
  rf_digest : string;
  rf_stats : (string * int) list;
  rf_rules : t list;
}

(* Format v3 ("JTR3"): the header gains a small key/value stats section
   (per-module static-pass accounting such as elision counts), so the
   "what did the analyzer decide and why" record travels with the rules
   under the same digest scheme.  v2 ("JTR2") and v1 ("JTRR") files fail
   the magic check and degrade to re-analysis. *)
let magic = "JTR3"

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u16 b v =
  u8 b v;
  u8 b (v lsr 8)

let u32 b v =
  u16 b v;
  u16 b (v lsr 16)

let encode_file f =
  if String.length f.rf_digest > 0xFF then
    invalid_arg "Rules.encode_file: digest longer than 255 bytes";
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  u8 b (String.length f.rf_digest);
  Buffer.add_string b f.rf_digest;
  u16 b (String.length f.rf_module);
  Buffer.add_string b f.rf_module;
  if List.length f.rf_stats > 0xFF then
    invalid_arg "Rules.encode_file: more than 255 stats";
  u8 b (List.length f.rf_stats);
  List.iter
    (fun (k, v) ->
      if String.length k > 0xFF then
        invalid_arg "Rules.encode_file: stat key longer than 255 bytes";
      u8 b (String.length k);
      Buffer.add_string b k;
      u32 b v)
    f.rf_stats;
  u32 b (List.length f.rf_rules);
  List.iter
    (fun r ->
      u16 b r.rule_id;
      u32 b r.bb;
      u32 b r.insn;
      u8 b (Array.length r.data);
      Array.iter (fun d -> u32 b d) r.data)
    f.rf_rules;
  Buffer.contents b

let decode_file s =
  let pos = ref 0 in
  let fail why = failwith ("Rules.decode_file: " ^ why) in
  let byte () =
    if !pos >= String.length s then fail "truncated";
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let r16 () =
    let a = byte () in
    a lor (byte () lsl 8)
  in
  let r32 () =
    let a = r16 () in
    a lor (r16 () lsl 16)
  in
  if String.length s < 4 || String.sub s 0 4 <> magic then fail "bad magic";
  pos := 4;
  let dlen = byte () in
  if !pos + dlen > String.length s then fail "bad digest";
  let digest = String.sub s !pos dlen in
  pos := !pos + dlen;
  let nlen = r16 () in
  if !pos + nlen > String.length s then fail "bad name";
  let name = String.sub s !pos nlen in
  pos := !pos + nlen;
  let nstats = byte () in
  let stats = ref [] in
  for _ = 1 to nstats do
    let klen = byte () in
    if !pos + klen > String.length s then fail "bad stat key";
    let k = String.sub s !pos klen in
    pos := !pos + klen;
    let v = r32 () in
    stats := (k, v) :: !stats
  done;
  let stats = List.rev !stats in
  let count = r32 () in
  (* A rule occupies at least 11 bytes (u16 id + u32 bb + u32 insn +
     u8 nd); validating the declared count against the bytes actually
     present rejects a corrupt header up front instead of spinning
     through up to ~4G loop iterations before a byte-level "truncated"
     failure. *)
  if count * 11 > String.length s - !pos then fail "rule count exceeds file size";
  let rules = ref [] in
  for _ = 1 to count do
    let id = r16 () in
    let bb = r32 () in
    let insn = r32 () in
    let nd = byte () in
    if nd > 4 then fail "too many data words";
    (* data words are read with an explicit in-order loop: [Array.init]'s
       element evaluation order is unspecified, so feeding it an
       impure [r32] could silently permute range-check parameters and
       canary displacements under a different compiler/runtime *)
    let data = Array.make nd 0 in
    for i = 0 to nd - 1 do
      data.(i) <- r32 ()
    done;
    rules := { rule_id = id; bb; insn; data } :: !rules
  done;
  { rf_module = name; rf_digest = digest; rf_stats = stats;
    rf_rules = List.rev !rules }

module Table = struct
  type rule = t

  type nonrec t = {
    bbs : (int, unit) Hashtbl.t;
    by_insn : (int, rule list) Hashtbl.t;
    count : int;
  }

  let load f ~base ~pic =
    let adj a = if pic then a + base else a in
    let bbs = Hashtbl.create 256 in
    let by_insn = Hashtbl.create 256 in
    (* Accumulate per-insn rule lists reversed and flip them once at the
       end: the old [prev @ [ r ]] append made loading N same-insn rules
       quadratic. *)
    List.iter
      (fun r ->
        let r = { r with bb = adj r.bb; insn = adj r.insn } in
        Hashtbl.replace bbs r.bb ();
        if r.rule_id <> no_op then
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_insn r.insn) in
          Hashtbl.replace by_insn r.insn (r :: prev))
      f.rf_rules;
    Hashtbl.filter_map_inplace (fun _ rs -> Some (List.rev rs)) by_insn;
    { bbs; by_insn; count = List.length f.rf_rules }

  let bb_seen t a = Hashtbl.mem t.bbs a
  let at_insn t a = Option.value ~default:[] (Hashtbl.find_opt t.by_insn a)
  let size t = t.count
end
