(** Rewrite rules — the interface between the static analyzer and the
    dynamic modifier (Figure 3 of the paper).

    Each rule names a handler routine in the dynamic modifier ([rule_id]),
    the basic block and instruction it applies to (link-time addresses),
    and up to four optional data words (liveness masks, displacement
    values, target-set identifiers...).  Rules are serialized into a
    per-module rule file that the dynamic modifier loads — and address
    adjusts, for PIC modules — when the module is loaded (Figure 5a).

    Rule identifiers are allocated by tools; the core reserves {!no_op}:
    the mark placed on every statically inspected block that needs no
    transformation, so the dynamic modifier can distinguish "statically
    proven fine" from "never statically seen" (section 3.3.4). *)

type t = {
  rule_id : int;
  bb : int;  (** basic-block address *)
  insn : int;  (** instruction address the handler anchors to *)
  data : int array;  (** up to four 32-bit data words *)
}

val no_op : int
(** Rule id 0: statically inspected, no modification needed. *)

val make : id:int -> bb:int -> insn:int -> ?data:int list -> unit -> t

type file = {
  rf_module : string;
  rf_digest : string;
      (** content digest of the module these rules were computed from
          (16-byte MD5 from [Jt_obj.Objfile.digest]), or [""] when
          unknown; serialized into the file header so a consumer can
          reject a cache written for a different build of the module *)
  rf_stats : (string * int) list;
      (** per-module static-pass accounting (e.g. ["elide_frame"],
          ["elide_dom"], ["checks"]): key/value pairs serialized into the
          v3 header so the analyzer's decisions travel with the rules
          under the same digest scheme.  At most 255 entries, keys at
          most 255 bytes.  [[]] when a producer has nothing to report. *)
  rf_rules : t list;
}

val encode_file : file -> string
(** Serialize in format v3 (magic "JTR3": digest and stats in the
    header).
    @raise Invalid_argument if the digest or a stat key exceeds 255
    bytes, or there are more than 255 stats. *)

val decode_file : string -> file
(** @raise Failure on malformed input: bad magic (including v2 "JTR2"
    and v1 "JTRR" files, which degrade to re-analysis), truncation, or a
    declared rule count that exceeds what the remaining bytes could
    possibly hold (rejected up front, before the decode loop). *)

(** Run-time rule table for one loaded module: addresses adjusted by the
    load base (for PIC modules) and hashed for block- and
    instruction-level lookup. *)
module Table : sig
  type rule = t

  type t

  val load : file -> base:int -> pic:bool -> t

  val bb_seen : t -> int -> bool
  (** Was this (run-time) address a basic-block the static analyzer
      inspected?  True for blocks with transformation rules *and* for
      blocks carrying only a no-op mark. *)

  val at_insn : t -> int -> rule list
  (** All rules anchored at this (run-time) instruction address, with
      their [bb]/[insn] fields already adjusted.  No-op marks are
      filtered out. *)

  val size : t -> int
end
