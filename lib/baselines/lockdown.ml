open Jt_isa

type policy = Strong | Weak

type lmod = {
  ld : Jt_loader.Loader.loaded;
  exports_by_addr : (int, string) Hashtbl.t;
  func_ranges : (int * int) list;  (** (run-time entry, size), sorted *)
  imports : (string, unit) Hashtbl.t;
}

type site_kind = Kicall | Kijmp of (int * int) option | Kret

type rt = {
  policy : policy;
  mutable mods : lmod list;
  mutable data_ptrs : (int, unit) Hashtbl.t;
      (** callback heuristic: code addresses found in loaded data sections *)
  sstack : Jt_jcfi.Shadow_stack.t;
  sites : (int, site_kind) Hashtbl.t;
}

let build_lmod (l : Jt_loader.Loader.loaded) =
  let m = l.lmod in
  let exports_by_addr = Hashtbl.create 32 in
  List.iter
    (fun (s : Jt_obj.Symbol.t) ->
      if Jt_obj.Symbol.is_func s then
        Hashtbl.replace exports_by_addr (Jt_loader.Loader.runtime_addr l s.vaddr) s.name)
    (Jt_obj.Objfile.exported_symbols m);
  let func_ranges =
    List.filter_map
      (fun (s : Jt_obj.Symbol.t) ->
        if Jt_obj.Symbol.is_func s then
          Some (Jt_loader.Loader.runtime_addr l s.vaddr, s.size)
        else None)
      (Jt_obj.Objfile.visible_symbols m)
    |> List.sort compare
  in
  let imports = Hashtbl.create 16 in
  List.iter
    (fun (i : Jt_obj.Objfile.import) -> Hashtbl.replace imports i.imp_sym ())
    m.imports;
  { ld = l; exports_by_addr; func_ranges; imports }

(* Re-scan every loaded module's data sections for words that point into
   some module's code: Lockdown's callback heuristic. *)
let rescan_data_ptrs rt (vm : Jt_vm.Vm.t) =
  let tbl = Hashtbl.create 256 in
  let in_code a =
    List.exists (fun lm -> Jt_loader.Loader.in_code lm.ld a) rt.mods
  in
  List.iter
    (fun lm ->
      List.iter
        (fun (s : Jt_obj.Section.t) ->
          if not s.is_code then begin
            let base = Jt_loader.Loader.runtime_addr lm.ld s.vaddr in
            let n = Jt_obj.Section.size s in
            for o = 0 to n - 4 do
              let v = Jt_mem.Memory.read32 vm.mem (base + o) in
              if in_code v then Hashtbl.replace tbl v ()
            done
          end)
        lm.ld.lmod.sections)
    rt.mods;
  rt.data_ptrs <- tbl

let mod_at rt a = List.find_opt (fun lm -> Jt_loader.Loader.contains lm.ld a) rt.mods

let fn_range_of lm a =
  List.find_opt (fun (e, sz) -> a >= e && a < e + sz) lm.func_ranges

let known_entry rt a =
  List.exists (fun lm -> List.exists (fun (e, _) -> e = a) lm.func_ranges) rt.mods

let icall_ok rt ~site target =
  match (mod_at rt site, mod_at rt target) with
  | Some src, Some dst
    when src.ld.load_order = dst.ld.load_order ->
    (* same module: any known function entry *)
    List.exists (fun (e, _) -> e = target) dst.func_ranges
  | Some src, Some dst -> (
    match rt.policy with
    | Strong -> (
      (match Hashtbl.find_opt dst.exports_by_addr target with
      | Some name -> Hashtbl.mem src.imports name
      | None -> false)
      || Hashtbl.mem rt.data_ptrs target)
    | Weak -> known_entry rt target || Hashtbl.mem dst.exports_by_addr target)
  | _ ->
    (* JIT or unknown region *)
    let lo, hi = Jt_vm.Vm.jit_region in
    target >= lo && target < hi

let ijmp_ok rt ~site target =
  match (mod_at rt site, mod_at rt target) with
  | Some src, Some dst when src.ld.load_order = dst.ld.load_order -> (
    match fn_range_of src site with
    | Some (e, sz) -> target >= e && target < e + sz || known_entry rt target
    | None -> Jt_loader.Loader.in_code dst.ld target)
  | Some _, Some dst ->
    Hashtbl.mem dst.exports_by_addr target || Hashtbl.mem rt.data_ptrs target
  | _ ->
    let lo, hi = Jt_vm.Vm.jit_region in
    target >= lo && target < hi

let target_of insn ~at ~len vm =
  match insn with
  | Insn.Call_ind (Some r, _) | Insn.Jmp_ind (Some r, _) -> Jt_vm.Vm.get vm r
  | Insn.Call_ind (None, Some m) | Insn.Jmp_ind (None, Some m) ->
    Jt_mem.Memory.read32 vm.Jt_vm.Vm.mem (Jt_vm.Vm.eval_mem vm ~next_pc:(at + len) m)
  | _ -> 0

let client rt =
  {
    Jt_dbt.Dbt.cl_name = "lockdown";
    cl_on_block =
      (fun vm0 b _prov ~rules_at:_ ->
        let in_ld_so at =
          match Jt_loader.Loader.module_at vm0.Jt_vm.Vm.loader at with
          | Some l -> String.equal l.lmod.Jt_obj.Objfile.name "ld.so"
          | None -> false
        in
        let plan = Jt_dbt.Dbt.no_plan b in
        Array.iteri
          (fun k (at, insn, len) ->
            let metas = ref [] in
            (match Insn.cti_kind insn with
            | Some (Insn.Cti_call _) ->
              metas :=
                {
                  Jt_dbt.Dbt.m_cost = Jt_vm.Cost.cfi_shadow_push;
                  m_action =
                    Some
                      (fun _vm -> Jt_jcfi.Shadow_stack.push rt.sstack (at + len));
                  m_kind = Jt_dbt.Dbt.M_opaque;
                }
                :: !metas
            | Some Insn.Cti_call_ind ->
              metas :=
                {
                  Jt_dbt.Dbt.m_cost =
                    Jt_vm.Cost.lockdown_indirect + Jt_vm.Cost.cfi_shadow_push;
                  m_action =
                    Some
                      (fun vm ->
                        let tgt = target_of insn ~at ~len vm in
                        Hashtbl.replace rt.sites at Kicall;
                        if
                          tgt <> Jt_vm.Vm.sentinel && not (icall_ok rt ~site:at tgt)
                        then
                          Jt_vm.Vm.report_violation vm ~kind:"lockdown-icall"
                            ~addr:tgt;
                        Jt_jcfi.Shadow_stack.push rt.sstack (at + len));
                  m_kind = Jt_dbt.Dbt.M_opaque;
                }
                :: !metas
            | Some Insn.Cti_jmp_ind ->
              metas :=
                {
                  Jt_dbt.Dbt.m_cost = Jt_vm.Cost.lockdown_indirect;
                  m_action =
                    Some
                      (fun vm ->
                        let tgt = target_of insn ~at ~len vm in
                        let range =
                          Option.bind (mod_at rt at) (fun lm -> fn_range_of lm at)
                        in
                        Hashtbl.replace rt.sites at (Kijmp range);
                        if
                          tgt <> Jt_vm.Vm.sentinel && not (ijmp_ok rt ~site:at tgt)
                        then
                          Jt_vm.Vm.report_violation vm ~kind:"lockdown-ijmp"
                            ~addr:tgt);
                  m_kind = Jt_dbt.Dbt.M_opaque;
                }
                :: !metas
            | Some Insn.Cti_ret ->
              if in_ld_so at then
                (* resolver special case: Lockdown's secure loader rewrites
                   this path; treat it as allowed *)
                ()
              else
                metas :=
                  {
                    Jt_dbt.Dbt.m_cost = Jt_vm.Cost.cfi_shadow_pop;
                    m_action =
                      Some
                        (fun vm ->
                          Hashtbl.replace rt.sites at Kret;
                          let tgt =
                            Jt_mem.Memory.read32 vm.Jt_vm.Vm.mem
                              (Jt_vm.Vm.get vm Reg.sp)
                          in
                          if
                            tgt <> Jt_vm.Vm.sentinel
                            && not (Jt_jcfi.Shadow_stack.check_pop rt.sstack tgt)
                          then
                            Jt_vm.Vm.report_violation vm ~kind:"lockdown-ret"
                              ~addr:tgt);
                    m_kind = Jt_dbt.Dbt.M_opaque;
                  }
                  :: !metas
            | Some
                ( Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_halt
                | Insn.Cti_syscall )
            | None ->
              ());
            plan.(k) <- !metas)
          b.insns;
        plan);
  }

type outcome = {
  lk_result : Jt_vm.Vm.result;
  lk_dynamic_air : float;
  lk_false_positive : bool;
}

let dynamic_air rt =
  let total =
    float_of_int
      (List.fold_left
         (fun acc lm ->
           acc
           + List.fold_left
               (fun a (s : Jt_obj.Section.t) ->
                 if s.is_code then a + Jt_obj.Section.size s else a)
               0 lm.ld.lmod.sections)
         0 rt.mods)
  in
  let inter_strong src =
    (* exported-by-dst ∩ imported-by-src, plus the heuristic set *)
    List.fold_left
      (fun acc lm ->
        if lm.ld.load_order = src.ld.load_order then acc
        else
          Hashtbl.fold
            (fun _ name acc ->
              if Hashtbl.mem src.imports name then acc + 1 else acc)
            lm.exports_by_addr acc)
      (Hashtbl.length rt.data_ptrs)
      rt.mods
  in
  let inter_weak () =
    List.fold_left (fun acc lm -> acc + List.length lm.func_ranges) 0 rt.mods
  in
  let site_size (site, kind) =
    match kind with
    | Kret -> 1.0
    | Kicall -> (
      match mod_at rt site with
      | Some src ->
        let intra = List.length src.func_ranges in
        float_of_int
          (intra
          + match rt.policy with Strong -> inter_strong src | Weak -> inter_weak ())
      | None -> total)
    | Kijmp (Some (_, sz)) -> float_of_int sz
    | Kijmp None -> total /. float_of_int (max 1 (List.length rt.mods))
  in
  let sizes =
    Hashtbl.fold (fun a k acc -> site_size (a, k) :: acc) rt.sites []
  in
  Jt_jcfi.Air.air ~sizes ~total

let run ?(fuel = 200_000_000) ?(policy = Strong) ~registry ~main () =
  let rt =
    {
      policy;
      mods = [];
      data_ptrs = Hashtbl.create 16;
      sstack = Jt_jcfi.Shadow_stack.create ();
      sites = Hashtbl.create 64;
    }
  in
  let vm = Jt_vm.Vm.make ~registry in
  let engine =
    (* Lockdown's libdetox keeps its own constants: no IBL discount, no
       trace stitching — every indirect pays the lightweight profile's
       fixed lookup price. *)
    Jt_dbt.Dbt.create ~vm ~profile:Jt_dbt.Dbt.lightweight ~ibl:false
      ~trace:false ~client:(client rt) ()
  in
  Jt_loader.Loader.on_load vm.loader (fun l ->
      rt.mods <- build_lmod l :: rt.mods;
      rescan_data_ptrs rt vm);
  Jt_vm.Vm.boot vm ~main;
  if vm.status = Jt_vm.Vm.Running then Jt_dbt.Dbt.run ~fuel engine;
  let result = Jt_vm.Vm.result vm in
  {
    lk_result = result;
    lk_dynamic_air = dynamic_air rt;
    lk_false_positive =
      List.exists
        (fun v ->
          match v.Jt_vm.Vm.v_kind with
          | "lockdown-icall" | "lockdown-ijmp" | "lockdown-ret" -> true
          | _ -> false)
        result.r_violations;
  }
