open Jt_isa

type verdict =
  | Applicable
  | Needs_pic of string
  | Unsupported_feature of string * string

(* Transitive dependency closure over the registry (the "ldd" view). *)
let closure ~registry ~main =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (m : Jt_obj.Objfile.t) -> Hashtbl.replace by_name m.name m)
    registry;
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      (match Hashtbl.find_opt by_name name with
      | Some m ->
        List.iter go m.deps;
        order := m :: !order
      | None -> ())
    end
  in
  go main;
  List.rev !order

let applicability ~registry ~main =
  let mods = closure ~registry ~main in
  let rec check = function
    | [] -> Applicable
    | (m : Jt_obj.Objfile.t) :: rest ->
      if Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Cxx_exceptions then
        Unsupported_feature (m.name, "C++ exception tables")
      else if Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Fortran_runtime then
        Unsupported_feature (m.name, "Fortran runtime")
      else if m.kind = Jt_obj.Objfile.Exec_nonpic then Needs_pic m.name
      else check rest
  in
  check mods

let check_cost ~dead ~flags_dead =
  Jt_vm.Cost.asan_check
  + (Jt_vm.Cost.spill_reg * max 0 (2 - dead))
  + if flags_dead then 0 else Jt_vm.Cost.save_restore_flags

(* Build the per-instruction instrumentation of one rewritten module
   (link-time addresses). *)
let instrument_module rt (m : Jt_obj.Objfile.t) =
  let sa = Janitizer.Static_analyzer.analyze m in
  let map : (int, Jt_emit.Emit.Sitemap.meta list) Hashtbl.t =
    Hashtbl.create 256
  in
  (* Accumulate in reverse (cons is O(1) where append re-walks the
     list) and restore application order once at the end. *)
  let add addr meta =
    Hashtbl.replace map addr
      (meta :: Option.value ~default:[] (Hashtbl.find_opt map addr))
  in
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      let exempt = Jt_analysis.Canary.exempt_addrs fa.fa_canaries in
      List.iter
        (fun (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (info : Jt_disasm.Disasm.insn_info) ->
              match info.d_insn with
              | (Insn.Load (w, _, m') | Insn.Store (w, m', _))
                when (not (Hashtbl.mem exempt info.d_addr))
                     && (not (Jt_jasan.Jasan.is_frame_access m'))
                     && not (Jt_jasan.Jasan.is_pcrel m') ->
                let dead =
                  List.length
                    (Jt_analysis.Liveness.dead_regs_before fa.fa_liveness
                       info.d_addr)
                in
                let flags_dead =
                  Jt_analysis.Liveness.flags_dead_before fa.fa_liveness
                    info.d_addr
                in
                let len = Insn.width_bytes w in
                let next = info.d_addr + info.d_len in
                let is_store =
                  match info.d_insn with Insn.Store _ -> true | _ -> false
                in
                add info.d_addr
                  {
                    Jt_emit.Emit.Sitemap.sm_cost =
                      check_cost ~dead:(min 2 dead) ~flags_dead;
                    sm_action =
                      (fun vm ->
                        (* link-time == run-time only for non-PIC; the
                           sitemap rebases the whole map per module. *)
                        let a = Jt_vm.Vm.eval_mem vm ~next_pc:next m' in
                        Jt_jasan.Jasan.Rt.check rt vm ~addr:a ~len ~is_store);
                  }
              | _ -> ())
            b.b_insns)
        (Jt_cfg.Cfg.fn_blocks fa.fa_fn);
      List.iter
        (fun (site : Jt_analysis.Canary.site) ->
          add site.c_after_store
            {
              Jt_emit.Emit.Sitemap.sm_cost = Jt_vm.Cost.asan_canary_op;
              sm_action =
                (fun vm ->
                  Jt_jasan.Jasan.Rt.poison_canary rt vm
                    ~slot_disp:site.c_slot_disp);
            };
          List.iter
            (fun load_addr ->
              add load_addr
                {
                  Jt_emit.Emit.Sitemap.sm_cost = Jt_vm.Cost.asan_canary_op;
                  sm_action =
                    (fun vm ->
                      Jt_jasan.Jasan.Rt.unpoison_canary rt vm
                        ~slot_disp:site.c_slot_disp);
                })
            site.c_check_loads)
        fa.fa_canaries)
    sa.sa_fns;
  Hashtbl.filter_map_inplace (fun _ metas -> Some (List.rev metas)) map;
  map

let run ?(fuel = 200_000_000) ~registry ~main () =
  match applicability ~registry ~main with
  | (Needs_pic _ | Unsupported_feature _) as v -> Error v
  | Applicable ->
    let rt = Jt_jasan.Jasan.Rt.create () in
    (* RetroWrite rewrites object *files*, not processes: every registry
       module its reassembly can handle is instrumented ahead of time —
       shared objects only ever reached through [dlopen] included, since
       whoever loads the file gets the rewritten version.  Modules whose
       features defeat reassembly stay uncovered (the dynamic gap). *)
    let rewritable (m : Jt_obj.Objfile.t) =
      (not (Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Cxx_exceptions))
      && not (Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Fortran_runtime)
    in
    let link_maps =
      List.filter_map
        (fun (m : Jt_obj.Objfile.t) ->
          if rewritable m then Some (m.name, instrument_module rt m) else None)
        registry
    in
    let vm = Jt_vm.Vm.make ~registry in
    (* The sitemap rebases each module's map at load and purges it at
       unload — non-PIC modules reuse base 0 across dlclose/dlopen
       cycles, so entries that outlive their module would fire on
       whatever loads there next. *)
    let sitemap =
      Jt_emit.Emit.Sitemap.create
        ~maps_for:(fun name -> List.assoc_opt name link_maps)
        vm
    in
    Jt_jasan.Jasan.Rt.attach rt vm;
    Jt_vm.Vm.boot vm ~main;
    while vm.status = Jt_vm.Vm.Running do
      if vm.icount >= fuel then vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
      else if vm.pc = Jt_vm.Vm.sentinel then Jt_vm.Vm.advance_phase vm
      else
        match Jt_vm.Vm.fetch vm vm.pc with
        | None -> vm.status <- Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault vm.pc)
        | Some (i, len) ->
          let at = vm.pc in
          (match Jt_emit.Emit.Sitemap.find sitemap at with
          | Some metas ->
            List.iter
              (fun (m : Jt_emit.Emit.Sitemap.meta) ->
                Jt_vm.Vm.charge vm m.sm_cost;
                m.sm_action vm)
              metas
          | None -> ());
          Jt_vm.Vm.step_decoded vm ~at i len
    done;
    Ok (Jt_vm.Vm.result vm)
