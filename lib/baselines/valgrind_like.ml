open Jt_isa

type t = {
  shadow : Jt_jasan.Shadow.t;
  quarantined : (int, int * int) Hashtbl.t;
}

let create () =
  { shadow = Jt_jasan.Shadow.create (); quarantined = Hashtbl.create 16 }

let align8 x = (x + 7) land lnot 7

let attach t (vm : Jt_vm.Vm.t) =
  Jt_vm.Alloc.set_redzone vm.alloc Jt_jasan.Jasan.redzone_bytes;
  Jt_vm.Alloc.subscribe vm.alloc (fun ev ->
      match ev with
      | Jt_vm.Alloc.Ev_alloc { id = _; addr; size; redzone } ->
        Jt_jasan.Shadow.poison t.shadow (addr - redzone) ~len:redzone
          Jt_jasan.Shadow.Heap_redzone;
        Jt_jasan.Shadow.unpoison t.shadow addr ~len:size;
        (* Coarser than JASan: the right redzone starts at the 8-byte
           boundary, leaving the alignment slack addressable. *)
        Jt_jasan.Shadow.poison t.shadow (align8 (addr + size)) ~len:redzone
          Jt_jasan.Shadow.Heap_redzone;
        Hashtbl.iter
          (fun _ (qa, qs) ->
            let lo = max addr qa and hi = min (addr + size) (qa + qs) in
            if hi > lo then
              Jt_jasan.Shadow.poison t.shadow lo ~len:(hi - lo)
                Jt_jasan.Shadow.Heap_freed)
          t.quarantined
      | Jt_vm.Alloc.Ev_free { id; addr; size } ->
        (* Exactly [size] bytes: a zero-size block's [addr] byte belongs
           to its own right redzone, not to the freed payload. *)
        Jt_jasan.Shadow.poison t.shadow addr ~len:size Jt_jasan.Shadow.Heap_freed;
        Hashtbl.replace t.quarantined id (addr, size)
      | Jt_vm.Alloc.Ev_unquarantine { id; _ } -> Hashtbl.remove t.quarantined id
      | Jt_vm.Alloc.Ev_bad_free { addr; kind } ->
        let kind =
          match kind with
          | Jt_vm.Alloc.Double_free -> "double-free"
          | Jt_vm.Alloc.Invalid_free -> "invalid-free"
        in
        Jt_vm.Vm.report_violation vm ~kind ~addr)

let check t (vm : Jt_vm.Vm.t) ~addr ~len =
  match Jt_jasan.Shadow.first_poisoned t.shadow addr ~len with
  | Some (a, Jt_jasan.Shadow.Heap_freed) ->
    Jt_vm.Vm.report_violation vm ~kind:"heap-use-after-free" ~addr:a
  | Some (a, _) -> Jt_vm.Vm.report_violation vm ~kind:"heap-buffer-overflow" ~addr:a
  | None -> ()

let run ?(fuel = 200_000_000) ~registry ~main () =
  let t = create () in
  let vm = Jt_vm.Vm.make ~registry in
  attach t vm;
  Jt_vm.Vm.boot vm ~main;
  let budget = fuel in
  while vm.status = Jt_vm.Vm.Running do
    if vm.icount >= budget then vm.status <- Jt_vm.Vm.Fault Jt_vm.Vm.Out_of_fuel
    else if vm.pc = Jt_vm.Vm.sentinel then Jt_vm.Vm.advance_phase vm
    else
      match Jt_vm.Vm.fetch vm vm.pc with
      | None -> vm.status <- Jt_vm.Vm.Fault (Jt_vm.Vm.Decode_fault vm.pc)
      | Some (i, len) ->
        let at = vm.pc in
        (* Interpretation overhead on every instruction. *)
        Jt_vm.Vm.charge vm Jt_vm.Cost.valgrind_per_insn;
        (match i with
        | Insn.Load (w, _, m) | Insn.Store (w, m, _) ->
          Jt_vm.Vm.charge vm Jt_vm.Cost.valgrind_mem_check;
          let a = Jt_vm.Vm.eval_mem vm ~next_pc:(at + len) m in
          check t vm ~addr:a ~len:(Insn.width_bytes w)
        | _ -> ());
        Jt_vm.Vm.step_decoded vm ~at i len
  done;
  Jt_vm.Vm.result vm
