open Jt_obj

type t = {
  tg_module : Jt_loader.Loader.loaded;
  funcs : (int, int) Hashtbl.t;
  exports : (int, unit) Hashtbl.t;
  addr_taken : (int, unit) Hashtbl.t;
  jump_targets : (int, unit) Hashtbl.t;
  site_sets : (int, int list) Hashtbl.t;
  precise : bool;
}

let is_func_entry t a = Hashtbl.mem t.funcs a

let in_function_of t ~entry a =
  match Hashtbl.find_opt t.funcs entry with
  | Some size -> a >= entry && a < entry + size
  | None -> false

let inter_module_ok t a = Hashtbl.mem t.exports a || Hashtbl.mem t.addr_taken a
let intra_call_ok t a = Hashtbl.mem t.funcs a

(* Per-site policy with sound Top degradation: only precise tables
   (built from static hints) carry site sets, and a site without one —
   CPA resolved it to Top, or the table predates the pass — falls back
   to the any-entry policy.  Site sets only ever *narrow* the any-entry
   set, so a target this rejects was never a function entry the
   provenance analysis could justify. *)
let call_ok t ~site a =
  if not t.precise then intra_call_ok t a
  else
    match Hashtbl.find_opt t.site_sets site with
    | Some targets -> List.mem a targets
    | None -> intra_call_ok t a

let site_set t ~site =
  if t.precise then Hashtbl.find_opt t.site_sets site else None

let n_site_sets t = Hashtbl.length t.site_sets

let jump_ok t ~fn_entry a =
  (match fn_entry with
  | Some e -> in_function_of t ~entry:e a
  | None -> false)
  || Hashtbl.mem t.jump_targets a
  || Hashtbl.mem t.funcs a

let n_intra_call t = Hashtbl.length t.funcs
let n_inter t =
  (* exports ∪ addr_taken *)
  let u = Hashtbl.copy t.exports in
  Hashtbl.iter (fun a () -> Hashtbl.replace u a ()) t.addr_taken;
  Hashtbl.length u

let n_jump_targets_of_fn t ~fn_entry =
  let base = Hashtbl.length t.jump_targets + Hashtbl.length t.funcs in
  match fn_entry with
  | Some e -> (
    match Hashtbl.find_opt t.funcs e with
    | Some size ->
      (* instruction addresses inside the function, approximated by its
         byte extent / average instruction length of 5 *)
      base + (size / 5)
    | None -> base)
  | None -> base

let code_bytes t =
  List.fold_left
    (fun acc s -> acc + Section.size s)
    0
    (Objfile.code_sections t.tg_module.Jt_loader.Loader.lmod)

let of_module_runtime (l : Jt_loader.Loader.loaded) =
  let m = l.lmod in
  let funcs = Hashtbl.create 64 in
  let exports = Hashtbl.create 32 in
  let addr_taken = Hashtbl.create 32 in
  let jump_targets = Hashtbl.create 8 in
  let rt a = Jt_loader.Loader.runtime_addr l a in
  List.iter
    (fun (s : Symbol.t) ->
      if Symbol.is_func s then Hashtbl.replace funcs (rt s.vaddr) s.size)
    (Objfile.visible_symbols m);
  List.iter
    (fun (s : Symbol.t) ->
      if Symbol.is_func s then begin
        Hashtbl.replace exports (rt s.vaddr) ();
        (* exported entries are call targets even in stripped modules *)
        if not (Hashtbl.mem funcs (rt s.vaddr)) then
          Hashtbl.replace funcs (rt s.vaddr) s.size
      end)
    (Objfile.exported_symbols m);
  (* Raw sliding-window scan; without a disassembly there is no
     instruction-boundary refinement, so filter only to code-section
     bounds (the weak policy for stripped binaries, 4.2.2). *)
  List.iter
    (fun v ->
      let a = rt v in
      if Hashtbl.mem funcs a then Hashtbl.replace addr_taken a ()
      else if m.symtab_level <> Objfile.Full then Hashtbl.replace addr_taken a ())
    (Jt_disasm.Disasm.scan_code_pointers m);
  {
    tg_module = l;
    funcs;
    exports;
    addr_taken;
    jump_targets;
    site_sets = Hashtbl.create 1;
    precise = false;
  }
