(** JCFI: hybrid control-flow integrity for binaries (section 4.2).

    Forward edges are validated against per-module hash tables of valid
    targets: indirect calls may target function entries of their own
    module, or exported / address-taken functions of other modules;
    indirect jumps may stay within their function, hit a recovered
    jump-table target, or tail-call a function entry of the module.
    Backward edges use a precise shadow stack.  The lazy-binding
    resolver's ret-as-call in [ld.so] receives a forward check instead of
    a backward check (section 4.2.3).

    The static pass encodes both the instrumentation points and the valid
    target sets as rewrite rules; at module-load time the runtime builds
    its target tables from them, or — for modules without static hints —
    from whatever is available at run time (symbols, exports, raw scan):
    the weaker Lockdown-like fallback. *)

type config = {
  cf_forward : bool;
  cf_backward : bool;  (** shadow stack; off for the Figure 11 ablation *)
}

val default_config : config

(** Runtime state, exposed for metrics and tests. *)
module Rt : sig
  type t

  val shadow_depth : t -> int

  type site_kind =
    | Sicall
    | Sijmp of int option
        (** run-time entry of the enclosing function, from static hints *)
    | Sijmp_sym of (int * int) option
        (** dynamic fallback: nearest-symbol [(entry, byte size)] range,
            the weaker byte-granularity policy of footnote 15 *)
    | Sret

  val executed_sites : t -> (int * site_kind) list
  (** Indirect CTIs executed at least once (run-time addresses), the basis
      of the dynamic AIR metric. *)

  val observed_icalls : t -> (int * int) list
  (** Executed (indirect-call site, target) pairs (run-time addresses,
      sentinel transfers excluded) — the dynamic side of the CPA
      refinement-soundness oracle: every observed pair at a site with a
      resolved set must be inside that set. *)

  val tables : t -> (Jt_loader.Loader.loaded * Targets.t) list

  val create : config -> t
  (** Bare runtime state, for hosts other than the DBT tool (the AOT
      emitter's runtime).  {!val-create} below wires one of these into a
      [Tool.t]. *)

  val install : t -> Jt_loader.Loader.loaded -> Targets.t -> unit
  (** Register a loaded module's valid-target table. *)

  val drop_module : t -> Jt_loader.Loader.loaded -> unit
  (** Forget an unloaded module's table (cheap per-module drop,
      footnote 2). *)
end

val create : ?config:config -> unit -> Janitizer.Tool.t * Rt.t
(** One instance per program run. *)

val targets_of_rules :
  Jt_loader.Loader.loaded -> Jt_rules.Rules.file -> Targets.t
(** Build a loaded module's valid-target table from its static target
    hints ([tgt_*] rules), address-adjusted by the load base for PIC
    modules. *)

val static_meta :
  Rt.t ->
  Jt_rules.Rules.t ->
  at:int ->
  insn:Jt_isa.Insn.t ->
  len:int ->
  pic_base:int ->
  Jt_dbt.Dbt.meta option
(** Interpret one static rule anchored at instruction [insn] (run-time
    address [at], byte length [len]) into the meta operation the hybrid
    DBT would inline there; [pic_base] adjusts rule-carried link
    addresses (the enclosing function entry of [ijmp] hints).  Exposed
    for the AOT emitter, whose materialized sites execute the same
    checks at the same cycle costs. *)

module Ids : sig
  val icall : int
  val ijmp : int
  val shadow_push : int
  val ret_check : int
  val resolver_ret : int
  val tgt_func : int
  val tgt_export : int
  val tgt_addr_taken : int
  val tgt_jump : int

  val site_targets : int
  (** Per-call-site resolved target-set chunk (≤ 4 link addresses per
      rule; a site's full set is the union of its chunks). *)
end
