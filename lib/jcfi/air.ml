open Jt_isa

let air ~sizes ~total =
  match sizes with
  | [] -> 100.0
  | _ ->
    let n = float_of_int (List.length sizes) in
    let mean = List.fold_left ( +. ) 0.0 sizes /. n in
    100.0 *. (1.0 -. (mean /. total))

let code_bytes_of (m : Jt_obj.Objfile.t) =
  List.fold_left
    (fun acc s -> acc + Jt_obj.Section.size s)
    0
    (Jt_obj.Objfile.code_sections m)

let total_code_bytes modules =
  float_of_int (List.fold_left (fun acc m -> acc + code_bytes_of m) 0 modules)

(* ---- dynamic AIR over a finished run ---- *)

(* Shared per-executed-site target-set accounting.  [per_site] switches
   the indirect-call policy being measured: the any-entry baseline, or
   the provenance-refined per-site sets the runtime actually enforces
   (a site without a set degrades to any-entry either way). *)
let site_sizer ~per_site (rt : Jcfi.Rt.t) =
  let tables = Jcfi.Rt.tables rt in
  let total =
    float_of_int
      (List.fold_left (fun acc (_, t) -> acc + Targets.code_bytes t) 0 tables)
  in
  let inter_others self =
    List.fold_left
      (fun acc (l, t) ->
        if l.Jt_loader.Loader.load_order = self then acc else acc + Targets.n_inter t)
      0 tables
  in
  let table_of addr =
    List.find_opt (fun (l, _) -> Jt_loader.Loader.contains l addr) tables
  in
  let site_size (site, kind) =
    match kind with
    | Jcfi.Rt.Sret -> 1.0
    | Jcfi.Rt.Sicall -> (
      match table_of site with
      | Some (l, t) ->
        let intra =
          if per_site then
            match Targets.site_set t ~site with
            | Some ts -> List.length ts
            | None -> Targets.n_intra_call t
          else Targets.n_intra_call t
        in
        float_of_int (intra + inter_others l.load_order)
      | None -> total (* JIT code: unconstrained source *))
    | Jcfi.Rt.Sijmp fn_entry -> (
      match table_of site with
      | Some (l, t) ->
        float_of_int
          (Targets.n_jump_targets_of_fn t ~fn_entry + inter_others l.load_order)
      | None -> total)
    | Jcfi.Rt.Sijmp_sym range -> (
      match table_of site with
      | Some (l, t) ->
        (* The fallback membership test allows function entries and
           recorded jump targets too; the in-function component is at
           byte rather than instruction granularity — strictly weaker
           than the hybrid policy (footnote 15). *)
        let intra =
          Targets.n_jump_targets_of_fn t ~fn_entry:None
          + match range with
            | Some (_, sz) -> max sz 1
            | None -> Targets.code_bytes t
        in
        float_of_int (intra + inter_others l.load_order)
      | None -> total)
  in
  (total, site_size)

let dynamic ?(per_site = false) (rt : Jcfi.Rt.t) =
  let total, site_size = site_sizer ~per_site rt in
  let sizes = List.map site_size (Jcfi.Rt.executed_sites rt) in
  air ~sizes ~total

let dynamic_breakdown ?(per_site = false) (rt : Jcfi.Rt.t) =
  let total, site_size = site_sizer ~per_site rt in
  let is_ret = function Jcfi.Rt.Sret -> true | _ -> false in
  let fwd, bwd =
    List.partition (fun (_, k) -> not (is_ret k)) (Jcfi.Rt.executed_sites rt)
  in
  (* Backward sites are shadow-stack checks: |T| = 1 each. *)
  ( air ~sizes:(List.map site_size fwd) ~total,
    air ~sizes:(List.map (fun _ -> 1.0) bwd) ~total )

(* ---- static AIR (BinCFI-style calculation) for JCFI's policy ---- *)

type static_report = {
  sr_air : float;
  sr_fwd : float;
  sr_bwd : float;
  sr_icalls : int;
  sr_resolved : int;
  sr_hist : (int * int) list;
}

let static_jcfi_report ?(per_site = false) modules =
  let total = total_code_bytes modules in
  let analyses =
    List.map (fun m -> (m, Janitizer.Static_analyzer.analyze m)) modules
  in
  (* Per-module counts. *)
  let counts =
    List.map
      (fun ((m : Jt_obj.Objfile.t), sa) ->
        let entries = List.length (Janitizer.Static_analyzer.function_entries sa) in
        let exported =
          List.length
            (List.filter Jt_obj.Symbol.is_func (Jt_obj.Objfile.exported_symbols m))
        in
        let taken =
          let es = Hashtbl.create 64 in
          List.iter
            (fun e -> Hashtbl.replace es e ())
            (Janitizer.Static_analyzer.function_entries sa);
          List.length
            (List.filter (Hashtbl.mem es)
               (Janitizer.Static_analyzer.code_pointer_scan sa))
        in
        (m.name, entries, exported + taken))
      analyses
  in
  let inter_others name =
    List.fold_left
      (fun acc (n, _, inter) -> if String.equal n name then acc else acc + inter)
      0 counts
  in
  let fwd_sizes = ref [] in
  let bwd_sizes = ref [] in
  let icalls = ref 0 in
  let resolved = ref 0 in
  let hist = Hashtbl.create 8 in
  List.iter
    (fun ((m : Jt_obj.Objfile.t), (sa : Janitizer.Static_analyzer.t)) ->
      let _, entries, _ =
        List.find (fun (n, _, _) -> String.equal n m.name) counts
      in
      let cpa = if per_site then Some (Lazy.force sa.sa_cpa) else None in
      let jumps =
        List.fold_left
          (fun acc (_, ts) -> acc + List.length ts)
          0 sa.sa_disasm.Jt_disasm.Disasm.jump_tables
      in
      List.iter
        (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
          let fn = fa.fa_fn in
          let extent =
            List.fold_left
              (fun hi (b : Jt_cfg.Cfg.block) ->
                let last =
                  if Array.length b.b_insns = 0 then b.b_addr
                  else
                    let i = b.b_insns.(Array.length b.b_insns - 1) in
                    i.Jt_disasm.Disasm.d_addr + i.d_len
                in
                max hi last)
              fn.Jt_cfg.Cfg.f_entry
              (Jt_cfg.Cfg.fn_blocks fn)
            - fn.Jt_cfg.Cfg.f_entry
          in
          List.iter
            (fun (b : Jt_cfg.Cfg.block) ->
              Array.iter
                (fun (info : Jt_disasm.Disasm.insn_info) ->
                  match Insn.cti_kind info.d_insn with
                  | Some Insn.Cti_call_ind ->
                    incr icalls;
                    let intra =
                      match
                        Option.bind cpa (fun cpa ->
                            Jt_analysis.Cpa.resolve cpa info.d_addr)
                      with
                      | Some ts ->
                        incr resolved;
                        let n = List.length ts in
                        Hashtbl.replace hist n
                          (1 + Option.value ~default:0 (Hashtbl.find_opt hist n));
                        n
                      | None -> entries
                    in
                    fwd_sizes :=
                      float_of_int (intra + inter_others m.name) :: !fwd_sizes
                  | Some Insn.Cti_jmp_ind ->
                    fwd_sizes :=
                      float_of_int
                        ((extent / 5) + jumps + entries + inter_others m.name)
                      :: !fwd_sizes
                  | Some Insn.Cti_ret -> bwd_sizes := 1.0 :: !bwd_sizes
                  | Some
                      ( Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_call _
                      | Insn.Cti_halt | Insn.Cti_syscall )
                  | None ->
                    ())
                b.b_insns)
            (Jt_cfg.Cfg.fn_blocks fn))
        sa.sa_fns)
    analyses;
  {
    sr_air = air ~sizes:(!fwd_sizes @ !bwd_sizes) ~total;
    sr_fwd = air ~sizes:!fwd_sizes ~total;
    sr_bwd = air ~sizes:!bwd_sizes ~total;
    sr_icalls = !icalls;
    sr_resolved = !resolved;
    sr_hist =
      List.sort compare (Hashtbl.fold (fun n c acc -> (n, c) :: acc) hist []);
  }

let static_jcfi modules = (static_jcfi_report modules).sr_air
