(** Per-module valid-target tables for forward-edge CFI (section 4.2.1).

    For statically analyzed modules the tables come from the static
    analyzer's hints: function entries (with extents), exported entries,
    address-taken functions (sliding-window scan refined to function
    boundaries) and jump-table targets.  For modules first seen at run
    time, {!of_module_runtime} rebuilds what it can on the spot: symbol
    tables when present, otherwise exported symbols plus the raw scan —
    the weaker Lockdown-style fallback. *)

type t = {
  tg_module : Jt_loader.Loader.loaded;
  funcs : (int, int) Hashtbl.t;  (** run-time entry -> byte size *)
  exports : (int, unit) Hashtbl.t;
  addr_taken : (int, unit) Hashtbl.t;
  jump_targets : (int, unit) Hashtbl.t;
  site_sets : (int, int list) Hashtbl.t;
      (** run-time call-site address -> resolved run-time target entries
          (sorted), from the code-pointer provenance analysis; a site
          with no entry resolved to Top *)
  precise : bool;  (** built from static hints *)
}

val is_func_entry : t -> int -> bool
val in_function_of : t -> entry:int -> int -> bool
val inter_module_ok : t -> int -> bool
(** Allowed as the destination of a transfer coming from another module:
    exported or address-taken (the callback refinement of 4.2.3). *)

val intra_call_ok : t -> int -> bool
(** Function entries of this module. *)

val call_ok : t -> site:int -> int -> bool
(** Per-site forward-edge policy.  A precise table consults the site's
    resolved CPA target set; a site without one (Top), and every site of
    an imprecise ([of_module_runtime]) table, degrades soundly to
    {!intra_call_ok}.  Site sets are subsets of the function entries, so
    this policy is never more permissive than any-entry. *)

val site_set : t -> site:int -> int list option
(** The resolved set {!call_ok} would consult, [None] on the degraded
    path.  Imprecise tables never expose one. *)

val n_site_sets : t -> int

val jump_ok : t -> fn_entry:int option -> int -> bool
(** JCFI's indirect-jump policy: within the same function, a recorded
    jump-table target, or a function entry of the module (tail calls).
    With [fn_entry = None] (no static information) this degrades to "any
    known function entry or jump target". *)

(** {1 Target-set sizes, for AIR} *)

val n_intra_call : t -> int
val n_inter : t -> int
val n_jump_targets_of_fn : t -> fn_entry:int option -> int
val code_bytes : t -> int

val of_module_runtime : Jt_loader.Loader.loaded -> t
(** Runtime construction for modules without static hints. *)
