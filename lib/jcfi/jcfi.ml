open Jt_isa

type config = { cf_forward : bool; cf_backward : bool }

let default_config = { cf_forward = true; cf_backward = true }

module Ids = struct
  let icall = 0x201
  let ijmp = 0x202
  let shadow_push = 0x203
  let ret_check = 0x204
  let resolver_ret = 0x205
  let tgt_func = 0x210
  let tgt_export = 0x211
  let tgt_addr_taken = 0x212
  let tgt_jump = 0x213

  let site_targets = 0x214
  (** per-call-site resolved target set from the provenance analysis;
      [insn] is the call site, [data] one chunk (≤ 4) of its targets —
      a large set spans several rules anchored at the same site *)
end

module Rt = struct
  type site_kind = Sicall | Sijmp of int option | Sijmp_sym of (int * int) option | Sret

  type t = {
    mutable tbl : (Jt_loader.Loader.loaded * Targets.t) list;
    sstack : Shadow_stack.t;
    config : config;
    sites : (int, site_kind) Hashtbl.t;
    observed : (int * int, unit) Hashtbl.t;
        (* executed (indirect-call site, target) pairs — the dynamic side
           of the CPA refinement-soundness oracle *)
  }

  let create config =
    {
      tbl = [];
      sstack = Shadow_stack.create ();
      config;
      sites = Hashtbl.create 64;
      observed = Hashtbl.create 64;
    }

  let shadow_depth t = Shadow_stack.depth t.sstack

  let executed_sites t = Hashtbl.fold (fun a k acc -> (a, k) :: acc) t.sites []

  let observed_icalls t =
    Hashtbl.fold (fun (site, tgt) () acc -> (site, tgt) :: acc) t.observed []

  let tables t = t.tbl

  let table_at t addr =
    List.find_opt (fun (l, _) -> Jt_loader.Loader.contains l addr) t.tbl
    |> Option.map snd

  (* Per-module tables make unloading cheap: drop the table, no scan for
     stale entries (footnote 2).  Shared with the AOT emitter's runtime,
     which maintains the same table lifecycle from its own load hook. *)
  let install t l targets = t.tbl <- (l, targets) :: t.tbl

  let drop_module t (l : Jt_loader.Loader.loaded) =
    t.tbl <-
      List.filter
        (fun ((l' : Jt_loader.Loader.loaded), _) ->
          l'.load_order <> l.Jt_loader.Loader.load_order)
        t.tbl

  let record t site kind = Hashtbl.replace t.sites site kind

  let in_jit_region a =
    let lo, hi = Jt_vm.Vm.jit_region in
    a >= lo && a < hi

  (* Forward-edge policy for calls (and the resolver's ret-as-call). *)
  let icall_ok t ~site target =
    match (table_at t site, table_at t target) with
    | Some src, Some dst ->
      if src.Targets.tg_module.load_order = dst.Targets.tg_module.load_order then
        Targets.call_ok dst ~site target || Targets.inter_module_ok dst target
      else Targets.inter_module_ok dst target
    | _, None -> in_jit_region target  (* dynamically generated code *)
    | None, Some dst ->
      (* call out of JIT code into a module *)
      Targets.inter_module_ok dst target || Targets.intra_call_ok dst target

  (* Nearest-symbol function range of an address, for the dynamic
     fallback's byte-granularity jump policy (footnote 15). *)
  let sym_range_of t addr =
    match table_at t addr with
    | None -> None
    | Some tbl ->
      Hashtbl.fold
        (fun e sz acc ->
          if addr >= e && addr < e + max sz 1 then Some (e, sz) else acc)
        tbl.Targets.funcs None

  let ijmp_ok t ~site ~fn_entry target =
    match (table_at t site, table_at t target) with
    | Some src, Some dst ->
      if src.Targets.tg_module.load_order = dst.Targets.tg_module.load_order then
        (match fn_entry with
        | Some _ -> Targets.jump_ok dst ~fn_entry target
        | None ->
          (* Without static function boundaries the dynamic fallback can
             only use the nearest symbol's byte extent — the weaker
             policy behind the hybrid/dynamic AIR gap of footnote 15. *)
          Targets.jump_ok dst ~fn_entry target
          ||
          (match sym_range_of t site with
          | Some (e, sz) -> target >= e && target < e + max sz 1
          | None -> Jt_loader.Loader.in_code dst.Targets.tg_module target))
      else Targets.inter_module_ok dst target
    | _, None -> in_jit_region target
    | None, Some dst -> Targets.inter_module_ok dst target

  (* The phase sentinel is the process-startup return path (the analog of
     returning into the C runtime's startup frames): always permitted. *)
  let check_icall t vm ~site target =
    record t site Sicall;
    if target <> Jt_vm.Vm.sentinel then begin
      Hashtbl.replace t.observed (site, target) ();
      if not (icall_ok t ~site target) then
        Jt_vm.Vm.report_violation vm ~kind:"cfi-icall" ~addr:target
    end

  let check_ijmp t vm ~site ~fn_entry target =
    (match fn_entry with
    | Some _ -> record t site (Sijmp fn_entry)
    | None -> record t site (Sijmp_sym (sym_range_of t site)));
    if target <> Jt_vm.Vm.sentinel && not (ijmp_ok t ~site ~fn_entry target) then
      Jt_vm.Vm.report_violation vm ~kind:"cfi-ijmp" ~addr:target

  let push_shadow t (vm : Jt_vm.Vm.t) ret_addr =
    ignore vm;
    Shadow_stack.push t.sstack ret_addr

  let check_ret t (vm : Jt_vm.Vm.t) ~site =
    record t site Sret;
    let target = Jt_mem.Memory.read32 vm.mem (Jt_vm.Vm.get vm Reg.sp) in
    if target <> Jt_vm.Vm.sentinel && not (Shadow_stack.check_pop t.sstack target)
    then Jt_vm.Vm.report_violation vm ~kind:"cfi-ret" ~addr:target

  (* The ld.so lazy-binding resolver returns *into* the resolved function:
     treat as a forward transfer (section 4.2.3). *)
  let check_resolver_ret t vm ~site =
    let target = Jt_mem.Memory.read32 vm.Jt_vm.Vm.mem (Jt_vm.Vm.get vm Reg.sp) in
    check_icall t vm ~site target
end

(* ---- static pass ---- *)

let fn_extent (fn : Jt_cfg.Cfg.fn) =
  List.fold_left
    (fun hi (b : Jt_cfg.Cfg.block) ->
      let last =
        if Array.length b.b_insns = 0 then b.b_addr
        else
          let i = b.b_insns.(Array.length b.b_insns - 1) in
          i.Jt_disasm.Disasm.d_addr + i.d_len
      in
      max hi last)
    fn.Jt_cfg.Cfg.f_entry
    (Jt_cfg.Cfg.fn_blocks fn)
  - fn.Jt_cfg.Cfg.f_entry

let static_pass ~config (sa : Janitizer.Static_analyzer.t) =
  let rules = ref [] in
  let emit r = rules := r :: !rules in
  let m = sa.sa_mod in
  let resolver_fn =
    if String.equal m.Jt_obj.Objfile.name "ld.so" then
      Option.map
        (fun (s : Jt_obj.Symbol.t) -> s.vaddr)
        (Jt_obj.Objfile.find_symbol m "__dl_resolve")
    else None
  in
  (* Instrumentation points. *)
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      let fn = fa.fa_fn in
      let entry = fn.Jt_cfg.Cfg.f_entry in
      let size = fn_extent fn in
      List.iter
        (fun (b : Jt_cfg.Cfg.block) ->
          Array.iter
            (fun (info : Jt_disasm.Disasm.insn_info) ->
              let bb = b.b_addr and at = info.d_addr in
              match Insn.cti_kind info.d_insn with
              | Some (Insn.Cti_call _) ->
                if config.cf_backward then
                  emit (Jt_rules.Rules.make ~id:Ids.shadow_push ~bb ~insn:at ())
              | Some Insn.Cti_call_ind ->
                if config.cf_forward then
                  emit (Jt_rules.Rules.make ~id:Ids.icall ~bb ~insn:at ());
                if config.cf_backward then
                  emit (Jt_rules.Rules.make ~id:Ids.shadow_push ~bb ~insn:at ())
              | Some Insn.Cti_jmp_ind ->
                if config.cf_forward then
                  emit
                    (Jt_rules.Rules.make ~id:Ids.ijmp ~bb ~insn:at
                       ~data:[ entry; size ] ())
              | Some Insn.Cti_ret ->
                if resolver_fn = Some entry then begin
                  if config.cf_forward then
                    emit (Jt_rules.Rules.make ~id:Ids.resolver_ret ~bb ~insn:at ())
                end
                else if config.cf_backward then
                  emit (Jt_rules.Rules.make ~id:Ids.ret_check ~bb ~insn:at ())
              | Some
                  ( Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_halt
                  | Insn.Cti_syscall )
              | None ->
                ())
            b.b_insns)
        (Jt_cfg.Cfg.fn_blocks fn);
      (* Valid-target hints. *)
      emit
        (Jt_rules.Rules.make ~id:Ids.tgt_func ~bb:entry ~insn:entry ~data:[ size ] ()))
    sa.sa_fns;
  List.iter
    (fun (s : Jt_obj.Symbol.t) ->
      if Jt_obj.Symbol.is_func s && s.exported then
        emit (Jt_rules.Rules.make ~id:Ids.tgt_export ~bb:s.vaddr ~insn:s.vaddr ()))
    (Jt_obj.Objfile.exported_symbols m);
  (* Address-taken functions: scan constants refined to function entries
     (the BinCFI refinement of 4.2.1). *)
  let entries = Hashtbl.create 64 in
  List.iter
    (fun (fa : Janitizer.Static_analyzer.fn_analysis) ->
      Hashtbl.replace entries fa.fa_fn.Jt_cfg.Cfg.f_entry ())
    sa.sa_fns;
  List.iter
    (fun v ->
      if Hashtbl.mem entries v then
        emit (Jt_rules.Rules.make ~id:Ids.tgt_addr_taken ~bb:v ~insn:v ()))
    (Janitizer.Static_analyzer.code_pointer_scan sa);
  (* Allow list (section 4.2.3): scanned constants that decode plausibly
     but were never reached by control-flow recovery — computed-goto
     labels in data tables, abnormal callback targets in low-level
     libraries. *)
  List.iter
    (fun v ->
      if
        (not (Jt_disasm.Disasm.is_insn_boundary sa.sa_disasm v))
        && Jt_disasm.Disasm.speculative_insn_boundary m v
      then emit (Jt_rules.Rules.make ~id:Ids.tgt_jump ~bb:v ~insn:v ()))
    (Jt_disasm.Disasm.scan_code_pointers m);
  (* Recovered jump-table targets. *)
  List.iter
    (fun (_, targets) ->
      List.iter
        (fun tgt -> emit (Jt_rules.Rules.make ~id:Ids.tgt_jump ~bb:tgt ~insn:tgt ()))
        targets)
    sa.sa_disasm.Jt_disasm.Disasm.jump_tables;
  (* Per-site provenance target sets.  Rules carry at most four data
     words, so a site's set is chunked across several rules anchored at
     the same call site; [targets_of_rules] unions them back.  Sites the
     provenance analysis left at Top emit nothing and degrade to the
     any-entry policy. *)
  if config.cf_forward then
    List.iter
      (fun (s : Jt_analysis.Cpa.site) ->
        match s.Jt_analysis.Cpa.cs_targets with
        | None -> ()
        | Some ts ->
          let rec chunk = function
            | [] -> ()
            | a :: b :: c :: d :: rest ->
              emit
                (Jt_rules.Rules.make ~id:Ids.site_targets ~bb:s.cs_site
                   ~insn:s.cs_site ~data:[ a; b; c; d ] ());
              chunk rest
            | rest ->
              emit
                (Jt_rules.Rules.make ~id:Ids.site_targets ~bb:s.cs_site
                   ~insn:s.cs_site ~data:rest ())
          in
          chunk ts)
      (Jt_analysis.Cpa.sites (Lazy.force sa.sa_cpa));
  let rules = Janitizer.Tool.noop_marks sa (List.rev !rules) in
  { Jt_rules.Rules.rf_module = m.Jt_obj.Objfile.name;
    rf_digest = Jt_obj.Objfile.digest m; rf_stats = []; rf_rules = rules }

(* ---- runtime table construction from static hints ---- *)

let targets_of_rules (l : Jt_loader.Loader.loaded) (f : Jt_rules.Rules.file) =
  let pic = Jt_obj.Objfile.is_pic l.lmod in
  let adj a = if pic then a + l.base else a in
  let funcs = Hashtbl.create 64 in
  let exports = Hashtbl.create 32 in
  let addr_taken = Hashtbl.create 32 in
  let jump_targets = Hashtbl.create 16 in
  let site_sets = Hashtbl.create 16 in
  List.iter
    (fun (r : Jt_rules.Rules.t) ->
      if r.rule_id = Ids.tgt_func then
        Hashtbl.replace funcs (adj r.insn)
          (if Array.length r.data > 0 then r.data.(0) else 0)
      else if r.rule_id = Ids.tgt_export then Hashtbl.replace exports (adj r.insn) ()
      else if r.rule_id = Ids.tgt_addr_taken then
        Hashtbl.replace addr_taken (adj r.insn) ()
      else if r.rule_id = Ids.tgt_jump then
        Hashtbl.replace jump_targets (adj r.insn) ()
      else if r.rule_id = Ids.site_targets then begin
        (* one chunk of the site's set; targets are link addresses and
           need the same PIC adjustment as the site itself *)
        let site = adj r.insn in
        let prev = Option.value ~default:[] (Hashtbl.find_opt site_sets site) in
        let chunk = List.map adj (Array.to_list r.data) in
        Hashtbl.replace site_sets site (prev @ chunk)
      end)
    f.rf_rules;
  Hashtbl.filter_map_inplace
    (fun _ ts -> Some (List.sort_uniq compare ts))
    site_sets;
  {
    Targets.tg_module = l;
    funcs;
    exports;
    addr_taken;
    jump_targets;
    site_sets;
    precise = true;
  }

(* ---- instrumentation plans ---- *)

let hybrid_fwd_cost = Jt_vm.Cost.cfi_forward_check

(* Without liveness, the fallback saves every register the check
   sequence touches plus the flags. *)
let dyn_fwd_cost =
  Jt_vm.Cost.cfi_forward_check + (4 * Jt_vm.Cost.spill_reg)
  + Jt_vm.Cost.save_restore_flags

let target_of_call_operand (insn : Insn.t) ~at ~len vm =
  match insn with
  | Insn.Call_ind (Some r, _) | Insn.Jmp_ind (Some r, _) -> Jt_vm.Vm.get vm r
  | Insn.Call_ind (None, Some m) | Insn.Jmp_ind (None, Some m) ->
    Jt_mem.Memory.read32 vm.Jt_vm.Vm.mem (Jt_vm.Vm.eval_mem vm ~next_pc:(at + len) m)
  | _ -> 0

(* Interpret one static rule at one instruction into a meta op; [at] and
   [len] are run-time coordinates of the anchor instruction, [pic_base]
   the containing module's load base (0 for position-dependent code) for
   adjusting rule-carried link addresses.  Shared between the DBT plan
   below and the AOT emitter (Jt_emit), whose materialized sites run the
   same checks with the same costs. *)
let static_meta rt (r : Jt_rules.Rules.t) ~at ~insn ~len ~pic_base =
  if r.rule_id = Ids.icall then
    Some
      {
        Jt_dbt.Dbt.m_cost = hybrid_fwd_cost;
        m_action =
          Some
            (fun vm ->
              let tgt = target_of_call_operand insn ~at ~len vm in
              Rt.check_icall rt vm ~site:at tgt);
        m_kind = Jt_dbt.Dbt.M_opaque;
      }
  else if r.rule_id = Ids.ijmp then begin
    let entry = r.data.(0) + pic_base in
    Some
      {
        Jt_dbt.Dbt.m_cost = hybrid_fwd_cost;
        m_action =
          Some
            (fun vm ->
              let tgt = target_of_call_operand insn ~at ~len vm in
              Rt.check_ijmp rt vm ~site:at ~fn_entry:(Some entry) tgt);
        m_kind = Jt_dbt.Dbt.M_opaque;
      }
  end
  else if r.rule_id = Ids.shadow_push then
    Some
      {
        Jt_dbt.Dbt.m_cost = Jt_vm.Cost.cfi_shadow_push;
        m_action = Some (fun vm -> Rt.push_shadow rt vm (at + len));
        m_kind = Jt_dbt.Dbt.M_opaque;
      }
  else if r.rule_id = Ids.ret_check then
    Some
      {
        Jt_dbt.Dbt.m_cost = Jt_vm.Cost.cfi_shadow_pop;
        m_action = Some (fun vm -> Rt.check_ret rt vm ~site:at);
        m_kind = Jt_dbt.Dbt.M_opaque;
      }
  else if r.rule_id = Ids.resolver_ret then
    Some
      {
        Jt_dbt.Dbt.m_cost = hybrid_fwd_cost;
        m_action = Some (fun vm -> Rt.check_resolver_ret rt vm ~site:at);
        m_kind = Jt_dbt.Dbt.M_opaque;
      }
  else None

let plan_static rt (b : Jt_dbt.Dbt.block) ~rules_at vm0 =
  let plan = Jt_dbt.Dbt.no_plan b in
  let pic_base at =
    match Jt_loader.Loader.module_at vm0.Jt_vm.Vm.loader at with
    | Some l when Jt_obj.Objfile.is_pic l.lmod -> l.base
    | Some _ | None -> 0
  in
  Array.iteri
    (fun k (at, insn, len) ->
      let metas =
        List.filter_map
          (fun r -> static_meta rt r ~at ~insn ~len ~pic_base:(pic_base at))
          (rules_at at)
      in
      plan.(k) <- metas)
    b.insns;
  plan

let plan_dynamic rt (b : Jt_dbt.Dbt.block) vm0 =
  let plan = Jt_dbt.Dbt.no_plan b in
  let config = rt.Rt.config in
  let in_ld_so at =
    match Jt_loader.Loader.module_at vm0.Jt_vm.Vm.loader at with
    | Some l -> String.equal l.lmod.Jt_obj.Objfile.name "ld.so"
    | None -> false
  in
  Array.iteri
    (fun k (at, insn, len) ->
      let metas = ref [] in
      (match Insn.cti_kind insn with
      | Some (Insn.Cti_call _) ->
        if config.cf_backward then
          metas :=
            {
              Jt_dbt.Dbt.m_cost =
                    Jt_vm.Cost.cfi_shadow_push + (2 * Jt_vm.Cost.spill_reg)
                    + Jt_vm.Cost.save_restore_flags;
              m_action = Some (fun vm -> Rt.push_shadow rt vm (at + len));
              m_kind = Jt_dbt.Dbt.M_opaque;
            }
            :: !metas
      | Some Insn.Cti_call_ind ->
        if config.cf_forward then
          metas :=
            {
              Jt_dbt.Dbt.m_cost = dyn_fwd_cost;
              m_action =
                Some
                  (fun vm ->
                    let tgt = target_of_call_operand insn ~at ~len vm in
                    Rt.check_icall rt vm ~site:at tgt);
              m_kind = Jt_dbt.Dbt.M_opaque;
            }
            :: !metas;
        if config.cf_backward then
          metas :=
            {
              Jt_dbt.Dbt.m_cost =
                    Jt_vm.Cost.cfi_shadow_push + (2 * Jt_vm.Cost.spill_reg)
                    + Jt_vm.Cost.save_restore_flags;
              m_action = Some (fun vm -> Rt.push_shadow rt vm (at + len));
              m_kind = Jt_dbt.Dbt.M_opaque;
            }
            :: !metas
      | Some Insn.Cti_jmp_ind ->
        if config.cf_forward then
          metas :=
            {
              Jt_dbt.Dbt.m_cost = dyn_fwd_cost;
              m_action =
                Some
                  (fun vm ->
                    let tgt = target_of_call_operand insn ~at ~len vm in
                    (* No static function extents here: weaker policy. *)
                    Rt.check_ijmp rt vm ~site:at ~fn_entry:None tgt);
              m_kind = Jt_dbt.Dbt.M_opaque;
            }
            :: !metas
      | Some Insn.Cti_ret ->
        if in_ld_so at then begin
          if config.cf_forward then
            metas :=
              {
                Jt_dbt.Dbt.m_cost = dyn_fwd_cost;
                m_action = Some (fun vm -> Rt.check_resolver_ret rt vm ~site:at);
                m_kind = Jt_dbt.Dbt.M_opaque;
              }
              :: !metas
        end
        else if config.cf_backward then
          metas :=
            {
              Jt_dbt.Dbt.m_cost =
                    Jt_vm.Cost.cfi_shadow_pop + (2 * Jt_vm.Cost.spill_reg)
                    + Jt_vm.Cost.save_restore_flags;
              m_action = Some (fun vm -> Rt.check_ret rt vm ~site:at);
              m_kind = Jt_dbt.Dbt.M_opaque;
            }
            :: !metas
      | Some (Insn.Cti_jmp _ | Insn.Cti_jcc _ | Insn.Cti_halt | Insn.Cti_syscall)
      | None ->
        ());
      plan.(k) <- !metas)
    b.insns;
  plan

let create ?(config = default_config) () =
  let rt = Rt.create config in
  let client =
    {
      Jt_dbt.Dbt.cl_name = "jcfi";
      cl_on_block =
        (fun vm b prov ~rules_at ->
          match prov with
          | Jt_dbt.Dbt.Static_rules -> plan_static rt b ~rules_at vm
          | Jt_dbt.Dbt.Dynamic_only -> plan_dynamic rt b vm);
    }
  in
  ( {
      Janitizer.Tool.t_name = "jcfi";
      t_setup =
        (fun vm ->
          Jt_loader.Loader.on_unload vm.Jt_vm.Vm.loader (Rt.drop_module rt));
      t_static = static_pass ~config;
      t_client = client;
      t_on_load =
        (fun _vm l file ->
          let targets =
            match file with
            | Some f -> targets_of_rules l f
            | None -> Targets.of_module_runtime l
          in
          if Jt_trace.Trace.is_enabled () then
            Jt_trace.Trace.emit
              (Jt_trace.Trace.Cfi_table
                 {
                   name = l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name;
                   entries =
                     Hashtbl.length targets.Targets.funcs
                     + Hashtbl.length targets.Targets.exports
                     + Hashtbl.length targets.Targets.addr_taken
                     + Hashtbl.length targets.Targets.jump_targets;
                 });
          Rt.install rt l targets);
      t_aux =
        (fun sa ->
          [
            ( Jt_ir.Ir.Cpa.key,
              Jt_ir.Ir.Cpa.encode
                (Jt_analysis.Cpa.export
                   (Lazy.force sa.Janitizer.Static_analyzer.sa_cpa)) );
          ]);
    },
    rt )
