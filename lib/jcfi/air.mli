(** Average Indirect-target Reduction (AIR) metrics.

    AIR = 100 * (1 - mean_i(|T_i|) / S), where T_i is the set of targets a
    protected indirect control transfer i may still reach and S the number
    of addressable targets with no protection (all code bytes).  Following
    the paper, the metric is computed two ways: dynamically — over the
    indirect CTIs actually executed by the program, measured at
    termination, to compare like-for-like with Lockdown (Figure 12) — and
    statically over all indirect CTIs, matching BinCFI's calculation
    (Figure 13). *)

val air : sizes:float list -> total:float -> float
(** The AIR formula, in percent.  100.0 when there are no sites. *)

val dynamic : ?per_site:bool -> Jcfi.Rt.t -> float
(** Dynamic AIR of a finished JCFI run.  [per_site] (default false)
    sizes executed indirect-call sites by their resolved provenance sets
    where the installed tables carry one — the policy the runtime
    actually enforced — instead of the any-entry baseline; sites with no
    set count identically under both. *)

val dynamic_breakdown : ?per_site:bool -> Jcfi.Rt.t -> float * float
(** [(forward, backward)] AIR computed separately over the executed
    indirect calls/jumps and the executed returns.  The backward figure
    is essentially 100% for any shadow-stack scheme (|T| = 1), matching
    the paper's remark that JCFI and Lockdown tie on backward edges. *)

val static_jcfi : Jt_obj.Objfile.t list -> float
(** Static AIR of JCFI's any-entry policy over every indirect CTI of the
    given modules (no execution). *)

type static_report = {
  sr_air : float;  (** all indirect CTIs *)
  sr_fwd : float;  (** indirect calls and jumps only *)
  sr_bwd : float;  (** returns only (always 100 with a shadow stack) *)
  sr_icalls : int;  (** indirect-call sites counted *)
  sr_resolved : int;  (** of which CPA resolved to a finite set *)
  sr_hist : (int * int) list;
      (** resolved-set size -> site count, sorted by size *)
}

val static_jcfi_report : ?per_site:bool -> Jt_obj.Objfile.t list -> static_report
(** The static AIR calculation with its forward/backward split and the
    per-site target-set statistics.  With [per_site] (default false)
    indirect-call sites resolved by the provenance analysis are sized by
    their sets; Top sites and [per_site:false] use the any-entry count.
    [static_jcfi] is [(static_jcfi_report ms).sr_air]. *)

(** Per-site target-set sizes under JCFI's policy, exposed so baseline
    policies can be computed side by side. *)
val total_code_bytes : Jt_obj.Objfile.t list -> float
