(** Content-addressed persistence for the serializable IR (DESIGN.md §13).

    Entries are keyed by the producing module's content digest
    ([Jt_obj.Objfile.digest]); the disk layout is one
    [<hex-digest>.jtir] file per module, containing {!Ir.encode} output
    verbatim.  Any load failure — truncation, bad magic, wrong schema
    version, a digest mismatch between file name/contents and the
    requested key — is a warning plus transparent re-analysis, mirroring
    [Driver.load_rules]: a corrupt store must never take a run down.

    The disk store is fronted by a bounded in-memory LRU shared across
    domains, with {e single-flight} per digest: when several [Jt_pool]
    workers miss on the same module simultaneously, exactly one runs the
    compute function and the rest block until its result is published. *)

type t

val create : ?capacity:int -> dir:string -> unit -> t
(** [capacity] bounds the in-memory LRU in entries (default 32;
    0 disables the memory layer).  [dir] is created if missing. *)

val dir : t -> string

val find_or_compute :
  t -> digest:string -> name:string -> (unit -> Ir.t) -> Ir.t
(** Look up by content digest: in-memory LRU, then disk (validated), then
    the compute function — whose result is persisted to disk and
    published to the LRU.  Concurrent callers for the same digest
    single-flight: one computes, the rest wait.  [name] labels metrics
    and trace events only.  If the compute function raises, the
    exception propagates to its caller and waiters retry. *)

val peek : t -> digest:string -> Ir.t option
(** Memory-then-disk probe without computing, without single-flight and
    without touching hit/miss statistics (used by the DBT's aux-table
    reader). *)

val update_aux : t -> digest:string -> (string * string) list -> unit
(** Merge aux tables ({!Ir.with_aux}) into the stored entry, rewriting
    the disk file atomically and refreshing the LRU copy.  A no-op if
    the digest is not in the store. *)

type stats = {
  st_mem_hits : int;
  st_disk_hits : int;
  st_misses : int;  (** lookups that ran the compute function *)
  st_evictions : int;  (** in-memory LRU evictions *)
  st_corrupt : int;  (** disk entries rejected on load *)
}

val stats : t -> stats
val reset_stats : t -> unit

val hit_rate : stats -> float
(** Hits over lookups, in [0,1]; 1.0 when there were no lookups. *)

val disk_entries : t -> (string * int * float) list
(** [(path, bytes, mtime)] of every on-disk entry, oldest first — the
    LRU order {!gc} evicts in. *)

val gc : t -> max_bytes:int -> int * int
(** Evict oldest-accessed disk entries until the store fits in
    [max_bytes].  Returns (entries removed, bytes freed). *)

val clear : t -> int
(** Remove every disk entry and drop the memory layer; returns the
    number of disk entries removed. *)
