type term =
  | Tjmp of int
  | Tjcc of int * int
  | Tjmp_ind of int list
  | Tcall of int * int
  | Tcall_ind of int
  | Tret
  | Thalt
  | Tfall of int

type block = {
  ib_addr : int;
  ib_ninsns : int;
  ib_term : term;
  ib_succs : int list;
  ib_preds : int list;
}

type mem = { im_base : int; im_index : int; im_scale : int; im_disp : int }

type access = {
  ia_addr : int;
  ia_mem : mem;
  ia_width : int;
  ia_is_store : bool;
}

type bound = Ibnd_imm of int | Ibnd_reg of int

type scev = {
  is_head : int;
  is_preheader : int;
  is_check_at : int;
  is_ivar : int;
  is_init : int;
  is_bound : bound;
  is_bound_incl : bool;
  is_affine : access list;
  is_invariant : access list;
}

type canary = {
  ic_fn : int;
  ic_store : int;
  ic_after : int;
  ic_disp : int;
  ic_loads : int list;
}

type stackinfo = {
  ik_entry : int;
  ik_frame : int option;
  ik_canary : bool;
  ik_push : int;
}

type vsa_value = Vbot | Vcst of int * int | Vsprel of int * int | Vtop

type fn = {
  if_entry : int;
  if_name : string option;
  if_blocks : int list;
  if_loops : (int * int list) list;
  if_live_all : bool;
  if_live : (int * int * int) list;
  if_canaries : canary list;
  if_scev : scev list;
  if_stack : stackinfo;
  if_vsa : (int * vsa_value array) list option;
  if_dom : (int * int list) list;
  if_defuse : (int * (int * int list) list) list;
}

type t = {
  ir_module : string;
  ir_digest : string;
  ir_reliable : bool;
  ir_insns : (int * int) array;
  ir_leaders : int list;
  ir_func_entries : int list;
  ir_jump_tables : (int * int list) list;
  ir_code_ptrs : int list;
  ir_blocks : block list;
  ir_fns : fn list;
  ir_aux : (string * string) list;
}

let magic = "JTIR"

let schema_version = 1

(* ---- encoding ----

   Little-endian, rules.ml's "JTR3" idiom: fixed-width integers written
   through a Buffer, length-prefixed strings and lists.  Every count is
   validated against the remaining bytes on decode, so a corrupt header
   cannot demand a gigabyte allocation. *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let u16 b v =
  u8 b v;
  u8 b (v lsr 8)

let u32 b v =
  u16 b v;
  u16 b (v lsr 16)

(* 32-bit two's complement; round-trips any int in [-2^31, 2^32-1], which
   covers addresses, masked words and signed analysis values alike. *)
let i32 b v = u32 b (v land 0xFFFFFFFF)

let str8 b s =
  if String.length s > 0xFF then invalid_arg "Ir.encode: string over 255";
  u8 b (String.length s);
  Buffer.add_string b s

let str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Ir.encode: string over 64K";
  u16 b (String.length s);
  Buffer.add_string b s

let str32 b s =
  u32 b (String.length s);
  Buffer.add_string b s

let list16 b f l =
  if List.length l > 0xFFFF then invalid_arg "Ir.encode: list over 64K";
  u16 b (List.length l);
  List.iter (f b) l

let list32 b f l =
  u32 b (List.length l);
  List.iter (f b) l

let enc_ints16 b l = list16 b u32 l
let enc_ints32 b l = list32 b u32 l

let enc_term b = function
  | Tjmp t ->
    u8 b 0;
    u32 b t
  | Tjcc (t, f) ->
    u8 b 1;
    u32 b t;
    u32 b f
  | Tjmp_ind ts ->
    u8 b 2;
    enc_ints16 b ts
  | Tcall (t, r) ->
    u8 b 3;
    u32 b t;
    u32 b r
  | Tcall_ind r ->
    u8 b 4;
    u32 b r
  | Tret -> u8 b 5
  | Thalt -> u8 b 6
  | Tfall n ->
    u8 b 7;
    u32 b n

let enc_block b (bl : block) =
  u32 b bl.ib_addr;
  u32 b bl.ib_ninsns;
  enc_term b bl.ib_term;
  enc_ints16 b bl.ib_succs;
  enc_ints16 b bl.ib_preds

let enc_mem b (m : mem) =
  i32 b m.im_base;
  i32 b m.im_index;
  u8 b m.im_scale;
  u32 b m.im_disp

let enc_access b (a : access) =
  u32 b a.ia_addr;
  enc_mem b a.ia_mem;
  u8 b a.ia_width;
  u8 b (if a.ia_is_store then 1 else 0)

let enc_scev b (s : scev) =
  u32 b s.is_head;
  u32 b s.is_preheader;
  u32 b s.is_check_at;
  u8 b s.is_ivar;
  i32 b s.is_init;
  (match s.is_bound with
  | Ibnd_imm v ->
    u8 b 0;
    i32 b v
  | Ibnd_reg r ->
    u8 b 1;
    u8 b r);
  u8 b (if s.is_bound_incl then 1 else 0);
  list16 b enc_access s.is_affine;
  list16 b enc_access s.is_invariant

let enc_canary b (c : canary) =
  u32 b c.ic_fn;
  u32 b c.ic_store;
  u32 b c.ic_after;
  i32 b c.ic_disp;
  enc_ints16 b c.ic_loads

let enc_stack b (s : stackinfo) =
  u32 b s.ik_entry;
  (match s.ik_frame with
  | None -> u8 b 0
  | Some v ->
    u8 b 1;
    i32 b v);
  u8 b (if s.ik_canary then 1 else 0);
  i32 b s.ik_push

let enc_value b = function
  | Vbot -> u8 b 0
  | Vcst (lo, hi) ->
    u8 b 1;
    i32 b lo;
    i32 b hi
  | Vsprel (lo, hi) ->
    u8 b 2;
    i32 b lo;
    i32 b hi
  | Vtop -> u8 b 3

let enc_fn b (f : fn) =
  u32 b f.if_entry;
  (match f.if_name with
  | None -> u8 b 0
  | Some n ->
    u8 b 1;
    str16 b n);
  enc_ints32 b f.if_blocks;
  list16 b
    (fun b (head, body) ->
      u32 b head;
      enc_ints32 b body)
    f.if_loops;
  u8 b (if f.if_live_all then 1 else 0);
  list32 b
    (fun b (addr, regs, flags) ->
      u32 b addr;
      u16 b regs;
      u8 b flags)
    f.if_live;
  list16 b enc_canary f.if_canaries;
  list16 b enc_scev f.if_scev;
  enc_stack b f.if_stack;
  (match f.if_vsa with
  | None -> u8 b 0
  | Some ins ->
    u8 b 1;
    list32 b
      (fun b (addr, vals) ->
        u32 b addr;
        u8 b (Array.length vals);
        Array.iter (enc_value b) vals)
      ins);
  list32 b
    (fun b (addr, doms) ->
      u32 b addr;
      enc_ints32 b doms)
    f.if_dom;
  list32 b
    (fun b (addr, env) ->
      u32 b addr;
      list16 b
        (fun b (reg, defs) ->
          u8 b reg;
          list16 b i32 defs)
        env)
    f.if_defuse

let encode (t : t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  u16 b schema_version;
  str8 b t.ir_digest;
  str16 b t.ir_module;
  u8 b (if t.ir_reliable then 1 else 0);
  u32 b (Array.length t.ir_insns);
  Array.iter
    (fun (addr, len) ->
      u32 b addr;
      u8 b len)
    t.ir_insns;
  enc_ints32 b t.ir_leaders;
  enc_ints32 b t.ir_func_entries;
  list32 b
    (fun b (addr, ts) ->
      u32 b addr;
      enc_ints16 b ts)
    t.ir_jump_tables;
  enc_ints32 b t.ir_code_ptrs;
  list32 b enc_block t.ir_blocks;
  list32 b enc_fn t.ir_fns;
  list16 b
    (fun b (k, v) ->
      str16 b k;
      str32 b v)
    t.ir_aux;
  Buffer.contents b

(* ---- decoding ---- *)

type reader = { s : string; mutable pos : int }

let fail why = failwith ("Ir.decode: " ^ why)

let byte r =
  if r.pos >= String.length r.s then fail "truncated";
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r16 r =
  let a = byte r in
  a lor (byte r lsl 8)

let r32 r =
  let a = r16 r in
  a lor (r16 r lsl 16)

let ri32 r =
  let v = r32 r in
  if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

let rstr r n =
  if n < 0 || r.pos + n > String.length r.s then fail "truncated string";
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let rstr8 r = rstr r (byte r)
let rstr16 r = rstr r (r16 r)
let rstr32 r = rstr r (r32 r)

(* A list header's count must leave room for at least [min] bytes per
   element — the up-front cheapness check that keeps corrupt counts from
   driving huge allocations or long loops. *)
let rlist r ~min ~count f =
  let n = count r in
  if n * min > String.length r.s - r.pos then fail "bad count";
  List.init n (fun _ -> f r)

let rlist16 r ~min f = rlist r ~min ~count:r16 f
let rlist32 r ~min f = rlist r ~min ~count:r32 f

let rints16 r = rlist16 r ~min:4 r32
let rints32 r = rlist32 r ~min:4 r32

let rterm r =
  match byte r with
  | 0 -> Tjmp (r32 r)
  | 1 ->
    let t = r32 r in
    Tjcc (t, r32 r)
  | 2 -> Tjmp_ind (rints16 r)
  | 3 ->
    let t = r32 r in
    Tcall (t, r32 r)
  | 4 -> Tcall_ind (r32 r)
  | 5 -> Tret
  | 6 -> Thalt
  | 7 -> Tfall (r32 r)
  | _ -> fail "bad terminator tag"

let rblock r =
  let ib_addr = r32 r in
  let ib_ninsns = r32 r in
  let ib_term = rterm r in
  let ib_succs = rints16 r in
  let ib_preds = rints16 r in
  { ib_addr; ib_ninsns; ib_term; ib_succs; ib_preds }

let rmem r =
  let im_base = ri32 r in
  let im_index = ri32 r in
  let im_scale = byte r in
  let im_disp = r32 r in
  { im_base; im_index; im_scale; im_disp }

let raccess r =
  let ia_addr = r32 r in
  let ia_mem = rmem r in
  let ia_width = byte r in
  let ia_is_store = byte r <> 0 in
  { ia_addr; ia_mem; ia_width; ia_is_store }

let rscev r =
  let is_head = r32 r in
  let is_preheader = r32 r in
  let is_check_at = r32 r in
  let is_ivar = byte r in
  let is_init = ri32 r in
  let is_bound =
    match byte r with
    | 0 -> Ibnd_imm (ri32 r)
    | 1 -> Ibnd_reg (byte r)
    | _ -> fail "bad bound tag"
  in
  let is_bound_incl = byte r <> 0 in
  let is_affine = rlist16 r ~min:15 raccess in
  let is_invariant = rlist16 r ~min:15 raccess in
  {
    is_head;
    is_preheader;
    is_check_at;
    is_ivar;
    is_init;
    is_bound;
    is_bound_incl;
    is_affine;
    is_invariant;
  }

let rcanary r =
  let ic_fn = r32 r in
  let ic_store = r32 r in
  let ic_after = r32 r in
  let ic_disp = ri32 r in
  let ic_loads = rints16 r in
  { ic_fn; ic_store; ic_after; ic_disp; ic_loads }

let rstack r =
  let ik_entry = r32 r in
  let ik_frame = match byte r with 0 -> None | _ -> Some (ri32 r) in
  let ik_canary = byte r <> 0 in
  let ik_push = ri32 r in
  { ik_entry; ik_frame; ik_canary; ik_push }

let rvalue r =
  match byte r with
  | 0 -> Vbot
  | 1 ->
    let lo = ri32 r in
    Vcst (lo, ri32 r)
  | 2 ->
    let lo = ri32 r in
    Vsprel (lo, ri32 r)
  | 3 -> Vtop
  | _ -> fail "bad value tag"

let rfn r =
  let if_entry = r32 r in
  let if_name = match byte r with 0 -> None | _ -> Some (rstr16 r) in
  let if_blocks = rints32 r in
  let if_loops =
    rlist16 r ~min:8 (fun r ->
        let head = r32 r in
        (head, rints32 r))
  in
  let if_live_all = byte r <> 0 in
  let if_live =
    rlist32 r ~min:7 (fun r ->
        let addr = r32 r in
        let regs = r16 r in
        let flags = byte r in
        (addr, regs, flags))
  in
  let if_canaries = rlist16 r ~min:18 rcanary in
  let if_scev = rlist16 r ~min:24 rscev in
  let if_stack = rstack r in
  let if_vsa =
    match byte r with
    | 0 -> None
    | _ ->
      Some
        (rlist32 r ~min:6 (fun r ->
             let addr = r32 r in
             let n = byte r in
             (addr, Array.init n (fun _ -> rvalue r))))
  in
  let if_dom =
    rlist32 r ~min:8 (fun r ->
        let addr = r32 r in
        (addr, rints32 r))
  in
  let if_defuse =
    rlist32 r ~min:6 (fun r ->
        let addr = r32 r in
        ( addr,
          rlist16 r ~min:3 (fun r ->
              let reg = byte r in
              (reg, rlist16 r ~min:4 ri32)) ))
  in
  {
    if_entry;
    if_name;
    if_blocks;
    if_loops;
    if_live_all;
    if_live;
    if_canaries;
    if_scev;
    if_stack;
    if_vsa;
    if_dom;
    if_defuse;
  }

let check_header r =
  if String.length r.s < 6 then fail "truncated";
  if String.sub r.s 0 4 <> magic then fail "bad magic";
  r.pos <- 4;
  let v = r16 r in
  if v <> schema_version then
    fail (Printf.sprintf "schema version %d, expected %d" v schema_version)

let decode s =
  let r = { s; pos = 0 } in
  check_header r;
  let ir_digest = rstr8 r in
  let ir_module = rstr16 r in
  let ir_reliable = byte r <> 0 in
  let n_insns = r32 r in
  if n_insns * 5 > String.length s - r.pos then fail "bad insn count";
  let ir_insns =
    Array.init n_insns (fun _ ->
        let addr = r32 r in
        let len = byte r in
        (addr, len))
  in
  let ir_leaders = rints32 r in
  let ir_func_entries = rints32 r in
  let ir_jump_tables =
    rlist32 r ~min:6 (fun r ->
        let addr = r32 r in
        (addr, rints16 r))
  in
  let ir_code_ptrs = rints32 r in
  let ir_blocks = rlist32 r ~min:17 rblock in
  let ir_fns = rlist32 r ~min:40 rfn in
  let ir_aux =
    rlist16 r ~min:6 (fun r ->
        let k = rstr16 r in
        (k, rstr32 r))
  in
  if r.pos <> String.length s then fail "trailing bytes";
  {
    ir_module;
    ir_digest;
    ir_reliable;
    ir_insns;
    ir_leaders;
    ir_func_entries;
    ir_jump_tables;
    ir_code_ptrs;
    ir_blocks;
    ir_fns;
    ir_aux;
  }

let peek_digest s =
  let r = { s; pos = 0 } in
  check_header r;
  rstr8 r

let find_aux t k = List.assoc_opt k t.ir_aux

let with_aux t kvs =
  let keys = List.map fst kvs in
  let kept = List.filter (fun (k, _) -> not (List.mem k keys)) t.ir_aux in
  {
    t with
    ir_aux = List.sort (fun (a, _) (b, _) -> compare a b) (kept @ kvs);
  }

module Claims = struct
  type fn_claims = {
    fc_fn : int;
    fc_vsa_bailed : bool;
    fc_claims : (int * int * int) list;
  }

  let checked = 0

  let key ~config = "claims/v1:" ^ config

  let encode fns =
    let b = Buffer.create 256 in
    list32 b
      (fun b f ->
        u32 b f.fc_fn;
        u8 b (if f.fc_vsa_bailed then 1 else 0);
        list32 b
          (fun b (addr, code, wit) ->
            u32 b addr;
            u8 b code;
            u32 b wit)
          f.fc_claims)
      fns;
    Buffer.contents b

  let decode s =
    let r = { s; pos = 0 } in
    let fns =
      rlist32 r ~min:9 (fun r ->
          let fc_fn = r32 r in
          let fc_vsa_bailed = byte r <> 0 in
          let fc_claims =
            rlist32 r ~min:9 (fun r ->
                let addr = r32 r in
                let code = byte r in
                let wit = r32 r in
                (addr, code, wit))
          in
          { fc_fn; fc_vsa_bailed; fc_claims })
    in
    if r.pos <> String.length s then failwith "Ir.Claims.decode: trailing bytes";
    fns
end

module Cpa = struct
  let key = "cpa/v1"

  let encode (sites : Jt_analysis.Cpa.site list) =
    let b = Buffer.create 256 in
    list32 b
      (fun b (s : Jt_analysis.Cpa.site) ->
        u32 b s.cs_fn;
        u32 b s.cs_site;
        (match s.cs_targets with
        | None ->
          u8 b 0;
          u32 b 0;
          list32 b (fun _ _ -> ()) []
        | Some ts ->
          u8 b 1;
          u32 b s.cs_witness;
          list32 b u32 ts))
      sites;
    Buffer.contents b

  let decode s : Jt_analysis.Cpa.site list =
    let r = { s; pos = 0 } in
    let sites =
      rlist32 r ~min:17 (fun r ->
          let cs_fn = r32 r in
          let cs_site = r32 r in
          let resolved = byte r <> 0 in
          let cs_witness = r32 r in
          let targets = rlist32 r ~min:4 (fun r -> r32 r) in
          let cs_targets = if resolved then Some targets else None in
          let cs_witness = if resolved then cs_witness else 0 in
          { Jt_analysis.Cpa.cs_fn; cs_site; cs_targets; cs_witness })
    in
    if r.pos <> String.length s then failwith "Ir.Cpa.decode: trailing bytes";
    sites
end
