(** The serializable intermediate representation — the common spine every
    tool consumes (DESIGN.md §13).

    One GTIRB-shaped value per module: interval-keyed byte blocks (the
    instruction spans of the recovered disassembly), CFG nodes and edges,
    and auxiliary tables carrying the analysis facts the elision passes
    need — per-block VSA register states, frame spans, dominator sets,
    def-use summaries, liveness, SCEV loop bounds, canary sites, and
    tool-contributed tables such as the JASan claim partition.

    The representation is deliberately *pure data*: no closures, no
    lazies, no hashtables — so structural equality is meaningful (the
    qcheck round-trip property is [decode (encode ir) = ir]) and the
    binary codec is total over well-formed values.  Decoded instructions
    are NOT stored; blocks carry instruction spans (address, length) and
    the consumer re-decodes from the module's section bytes, which the
    content digest pins down exactly.  What the store saves is the
    expensive part — recursive-traversal disassembly, CFG recovery and
    the fixpoint analyses — not the linear decode. *)

type term =
  | Tjmp of int
  | Tjcc of int * int
  | Tjmp_ind of int list
  | Tcall of int * int
  | Tcall_ind of int
  | Tret
  | Thalt
  | Tfall of int

type block = {
  ib_addr : int;
  ib_ninsns : int;
      (** instruction count; the spans themselves are recovered by
          walking [ir_insns] from [ib_addr] *)
  ib_term : term;
  ib_succs : int list;
  ib_preds : int list;
}

(** Memory operand, registers as indices: [im_base] is a register index,
    [-1] for none, [-2] for pc-relative. *)
type mem = { im_base : int; im_index : int; im_scale : int; im_disp : int }

type access = {
  ia_addr : int;
  ia_mem : mem;
  ia_width : int;
  ia_is_store : bool;
}

type bound = Ibnd_imm of int | Ibnd_reg of int

type scev = {
  is_head : int;
  is_preheader : int;
  is_check_at : int;
  is_ivar : int;
  is_init : int;
  is_bound : bound;
  is_bound_incl : bool;
  is_affine : access list;
  is_invariant : access list;
}

type canary = {
  ic_fn : int;
  ic_store : int;
  ic_after : int;
  ic_disp : int;
  ic_loads : int list;
}

type stackinfo = {
  ik_entry : int;
  ik_frame : int option;
  ik_canary : bool;
  ik_push : int;
}

type vsa_value = Vbot | Vcst of int * int | Vsprel of int * int | Vtop

type fn = {
  if_entry : int;
  if_name : string option;
  if_blocks : int list;
  if_loops : (int * int list) list;
  if_live_all : bool;
  if_live : (int * int * int) list;
      (** (insn addr, live register mask, live flag bits) *)
  if_canaries : canary list;
  if_scev : scev list;
  if_stack : stackinfo;
  if_vsa : (int * vsa_value array) list option;
      (** per-block register in-states; [None] when the analysis bailed *)
  if_dom : (int * int list) list;  (** full dominator sets, per block *)
  if_defuse : (int * (int * int list) list) list;
      (** per-block reaching-definition in-environments:
          (block, (register index, def addresses)) *)
}

type t = {
  ir_module : string;
  ir_digest : string;  (** [Objfile.digest] of the producing module *)
  ir_reliable : bool;
  ir_insns : (int * int) array;  (** sorted (address, length) spans *)
  ir_leaders : int list;
  ir_func_entries : int list;
  ir_jump_tables : (int * int list) list;
  ir_code_ptrs : int list;  (** raw sliding-window pointer-scan results *)
  ir_blocks : block list;
  ir_fns : fn list;
  ir_aux : (string * string) list;
      (** open-ended auxiliary tables, sorted by key: tool-contributed
          facts (e.g. the JASan claim partition) serialized under
          versioned keys *)
}

val magic : string
(** ["JTIR"], the first four bytes of every encoding. *)

val schema_version : int
(** Bumped on any layout change; a mismatch degrades to re-analysis. *)

val encode : t -> string
(** Versioned little-endian binary encoding, magic + schema version
    first, digest in the header. *)

val decode : string -> t
(** Inverse of {!encode}.  @raise Failure on truncation, bad magic, a
    schema-version mismatch, or any malformed payload. *)

val peek_digest : string -> string
(** The digest recorded in an encoding's header, without a full decode.
    @raise Failure on truncation or bad magic/version. *)

val find_aux : t -> string -> string option

val with_aux : t -> (string * string) list -> t
(** Functional update: replace or insert the given aux tables, keeping
    [ir_aux] sorted by key. *)

(** The per-access claim-partition aux table (PR 5's disjoint claims),
    serialized under a versioned, tool-configuration-fingerprinted key so
    the DBT overlay planner and fact dumps can read it back without
    knowing the producing tool's types. *)
module Claims : sig
  type fn_claims = {
    fc_fn : int;  (** function entry *)
    fc_vsa_bailed : bool;
    fc_claims : (int * int * int) list;
        (** (access address, claim code, witness address or 0) *)
  }

  val checked : int
  (** Claim code 0: the access kept its check — the one code readers
      other than the producing tool may interpret. *)

  val key : config:string -> string
  (** Aux-table key, e.g. [claims/v1:jasan/1111]. *)

  val encode : fn_claims list -> string
  val decode : string -> fn_claims list  (** @raise Failure *)
end

(** Per-indirect-call-site code-pointer provenance results
    ({!Jt_analysis.Cpa}), serialized so warm-start runs reuse the
    interprocedural pass.  Unlike {!Claims} the key carries no
    configuration fingerprint: the pass has none — its inputs are
    exactly the facts already pinned by the module digest. *)
module Cpa : sig
  val key : string
  (** ["cpa/v1"]. *)

  val encode : Jt_analysis.Cpa.site list -> string
  val decode : string -> Jt_analysis.Cpa.site list  (** @raise Failure *)
end
