module Trace = Jt_trace.Trace
module Counters = Jt_metrics.Metrics.Counters

type entry = { e_ir : Ir.t; mutable e_tick : int }

type stats = {
  st_mem_hits : int;
  st_disk_hits : int;
  st_misses : int;
  st_evictions : int;
  st_corrupt : int;
}

type t = {
  dir : string;
  capacity : int;
  mu : Mutex.t;
  cond : Condition.t;
  mem : (string, entry) Hashtbl.t;
  in_flight : (string, unit) Hashtbl.t;
  mutable tick : int;
  mutable s_mem_hits : int;
  mutable s_disk_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_corrupt : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

let create ?(capacity = 32) ~dir () =
  if capacity < 0 then invalid_arg "Store.create: negative capacity";
  mkdir_p dir;
  {
    dir;
    capacity;
    mu = Mutex.create ();
    cond = Condition.create ();
    mem = Hashtbl.create 16;
    in_flight = Hashtbl.create 4;
    tick = 0;
    s_mem_hits = 0;
    s_disk_hits = 0;
    s_misses = 0;
    s_evictions = 0;
    s_corrupt = 0;
  }

let dir t = t.dir

let path_of t digest = Filename.concat t.dir (Digest.to_hex digest ^ ".jtir")

(* ---- disk layer ---- *)

(* Mirrors [Driver.load_rules]: any failure that is not an asynchronous
   exception degrades to "not in the store" with a warning, so a corrupt
   or stale entry is transparently re-analyzed and overwritten. *)
let load_disk t ~digest ~name =
  let path = path_of t digest in
  if not (Sys.file_exists path) then None
  else begin
    match
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let ir = Ir.decode s in
      if not (String.equal ir.Ir.ir_digest digest) then
        failwith "stale digest (module content changed)";
      ir
    with
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e ->
      let why =
        match e with Failure m -> m | e -> Printexc.to_string e
      in
      Printf.eprintf
        "janitizer: warning: rejecting IR store entry %s (%s), re-analyzing\n%!"
        path why;
      (Counters.current ()).c_ir_store_corrupt <-
        (Counters.current ()).c_ir_store_corrupt + 1;
      if Trace.is_enabled () then Trace.emit (Trace.Store_corrupt { name; why });
      Mutex.lock t.mu;
      t.s_corrupt <- t.s_corrupt + 1;
      Mutex.unlock t.mu;
      None
    | ir ->
      (* Touch so gc's oldest-first disk eviction tracks access order,
         not just write order. *)
      (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Some ir
  end

let save_disk t ir =
  let path = path_of t ir.Ir.ir_digest in
  let tmp =
    Filename.temp_file ~temp_dir:t.dir "jtir" ".tmp"
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Ir.encode ir));
  (* Atomic publish: concurrent readers see either the old entry or the
     complete new one, never a torn write. *)
  Sys.rename tmp path

(* ---- in-memory LRU (caller holds the lock) ---- *)

let lru_insert t digest ir ~name =
  if t.capacity > 0 then begin
    if
      (not (Hashtbl.mem t.mem digest))
      && Hashtbl.length t.mem >= t.capacity
    then begin
      let victim =
        Hashtbl.fold
          (fun d e acc ->
            match acc with
            | Some (_, best) when best.e_tick <= e.e_tick -> acc
            | _ -> Some (d, e))
          t.mem None
      in
      match victim with
      | Some (d, _) ->
        Hashtbl.remove t.mem d;
        t.s_evictions <- t.s_evictions + 1;
        (Counters.current ()).c_ir_store_evicts <-
          (Counters.current ()).c_ir_store_evicts + 1;
        if Trace.is_enabled () then Trace.emit (Trace.Store_evict { name })
      | None -> ()
    end;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.mem digest { e_ir = ir; e_tick = t.tick }
  end

(* ---- lookup ---- *)

let find_or_compute t ~digest ~name compute =
  Mutex.lock t.mu;
  (* Wait out any in-flight computation of this digest, re-probing the
     memory layer each time it publishes. *)
  let rec probe () =
    match Hashtbl.find_opt t.mem digest with
    | Some e ->
      t.tick <- t.tick + 1;
      e.e_tick <- t.tick;
      t.s_mem_hits <- t.s_mem_hits + 1;
      Some e.e_ir
    | None ->
      if Hashtbl.mem t.in_flight digest then begin
        Condition.wait t.cond t.mu;
        probe ()
      end
      else None
  in
  match probe () with
  | Some ir ->
    Mutex.unlock t.mu;
    (Counters.current ()).c_ir_store_hits <-
      (Counters.current ()).c_ir_store_hits + 1;
    if Trace.is_enabled () then
      Trace.emit (Trace.Store_hit { name; source = "mem" });
    ir
  | None ->
    Hashtbl.replace t.in_flight digest ();
    Mutex.unlock t.mu;
    let finish () =
      Mutex.lock t.mu;
      Hashtbl.remove t.in_flight digest;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu
    in
    Fun.protect ~finally:finish (fun () ->
        match load_disk t ~digest ~name with
        | Some ir ->
          Mutex.lock t.mu;
          t.s_disk_hits <- t.s_disk_hits + 1;
          lru_insert t digest ir ~name;
          Mutex.unlock t.mu;
          (Counters.current ()).c_ir_store_hits <-
            (Counters.current ()).c_ir_store_hits + 1;
          if Trace.is_enabled () then
            Trace.emit (Trace.Store_hit { name; source = "disk" });
          ir
        | None ->
          (Counters.current ()).c_ir_store_misses <-
            (Counters.current ()).c_ir_store_misses + 1;
          if Trace.is_enabled () then Trace.emit (Trace.Store_miss { name });
          let ir = compute () in
          save_disk t ir;
          Mutex.lock t.mu;
          t.s_misses <- t.s_misses + 1;
          lru_insert t digest ir ~name;
          Mutex.unlock t.mu;
          ir)

let peek t ~digest =
  Mutex.lock t.mu;
  let hit =
    Option.map (fun e -> e.e_ir) (Hashtbl.find_opt t.mem digest)
  in
  Mutex.unlock t.mu;
  match hit with
  | Some _ -> hit
  | None -> load_disk t ~digest ~name:(Digest.to_hex digest)

let update_aux t ~digest kvs =
  if kvs <> [] then begin
    match peek t ~digest with
    | None -> ()
    | Some ir ->
      let ir = Ir.with_aux ir kvs in
      save_disk t ir;
      Mutex.lock t.mu;
      (match Hashtbl.find_opt t.mem digest with
      | Some e -> Hashtbl.replace t.mem digest { e with e_ir = ir }
      | None -> ());
      Mutex.unlock t.mu
  end

(* ---- statistics ---- *)

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      st_mem_hits = t.s_mem_hits;
      st_disk_hits = t.s_disk_hits;
      st_misses = t.s_misses;
      st_evictions = t.s_evictions;
      st_corrupt = t.s_corrupt;
    }
  in
  Mutex.unlock t.mu;
  s

let reset_stats t =
  Mutex.lock t.mu;
  t.s_mem_hits <- 0;
  t.s_disk_hits <- 0;
  t.s_misses <- 0;
  t.s_evictions <- 0;
  t.s_corrupt <- 0;
  Mutex.unlock t.mu

let hit_rate s =
  let hits = s.st_mem_hits + s.st_disk_hits in
  let total = hits + s.st_misses in
  if total = 0 then 1.0 else float_of_int hits /. float_of_int total

(* ---- disk maintenance ---- *)

let disk_entries t =
  let files =
    match Sys.readdir t.dir with
    | files -> Array.to_list files
    | exception Sys_error _ -> []
  in
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".jtir" then begin
        let path = Filename.concat t.dir f in
        match Unix.stat path with
        | { Unix.st_size; st_mtime; _ } -> Some (path, st_size, st_mtime)
        | exception Unix.Unix_error _ -> None
      end
      else None)
    files
  |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)

let drop_mem_entry t path =
  (* The memory layer indexes by digest; entry file names are the hex
     digest, so removal can invalidate the matching LRU slot too. *)
  let base = Filename.remove_extension (Filename.basename path) in
  let victim =
    Hashtbl.fold
      (fun d _ acc -> if Digest.to_hex d = base then Some d else acc)
      t.mem None
  in
  Option.iter (Hashtbl.remove t.mem) victim

let gc t ~max_bytes =
  if max_bytes < 0 then invalid_arg "Store.gc: negative max_bytes";
  let entries = disk_entries t in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
  let excess = ref (total - max_bytes) in
  let removed = ref 0 and freed = ref 0 in
  List.iter
    (fun (path, sz, _) ->
      if !excess > 0 then begin
        (try Sys.remove path with Sys_error _ -> ());
        Mutex.lock t.mu;
        drop_mem_entry t path;
        Mutex.unlock t.mu;
        excess := !excess - sz;
        removed := !removed + 1;
        freed := !freed + sz
      end)
    entries;
  (!removed, !freed)

let clear t =
  let entries = disk_entries t in
  List.iter (fun (path, _, _) -> try Sys.remove path with Sys_error _ -> ())
    entries;
  Mutex.lock t.mu;
  Hashtbl.reset t.mem;
  Mutex.unlock t.mu;
  List.length entries
