(** Ahead-of-time emitter: materialize a tool's checks as real
    instructions in a new JELF object (section 3's "static rewriter"
    deployment mode, Zipr-style).

    Where the hybrid DBT inlines meta-operations at translation time, the
    emitter bakes the very same operations into the binary ahead of time:

    - every statically recovered instruction is copied, in address order,
      into a fresh high [.emit.text] section; instructions that carry
      rewrite rules are prefixed with a 2-byte [syscall emit_site] whose
      run-time handler executes exactly the metas the DBT would have
      inlined (same actions, same cycle costs — the PR 5/6 claim
      partition and its elisions carry over bit for bit);
    - *pinned* addresses — the entry point, function symbols (exports,
      PLT lazy stubs, [_init]), discovered function entries, jump-table
      targets and code-pointer-scan hits — keep their old addresses: the
      original bytes are patched with a 2-byte [syscall emit_pin] that
      hops to the instruction's new home.  All code pointers anywhere in
      data, the GOT, jump tables or violation reports therefore keep
      their old values, which is what makes the rewrite trampoline-free
      and relocation/import fixups unnecessary: no metadata moves;
    - direct branches inside the copied code are re-targeted to the new
      copies, and PC-relative operands are re-displaced so they keep
      addressing the *old* absolute location (symbolization of
      code/data-ambiguous references reduces to this invariant: data
      references never move, code references are remapped only when the
      target's new location is known).

    When symbolization would be unsound the emitter refuses with a typed
    {!refusal} instead of emitting a silently wrong binary — the same
    contract as [Retrowrite_like.applicability].

    The emitted module runs directly on the plain VM
    ([Janitizer.Driver.run_plain]) with zero translation overhead: the
    only cycle deltas against an uninstrumented run are the materialized
    check costs and one direct-jump charge per pin hop, an identity the
    differential bench asserts exactly. *)

type tool = Asan of { elide : bool } | Cfi of Jt_jcfi.Jcfi.config

val tool_tag : tool -> string
(** Short configuration tag stamped into the emitted map section. *)

(** Why a module cannot be soundly emitted.  The first payload is always
    the module name. *)
type refusal =
  | Unsupported_feature of string * string
      (** compiled-in trait the rewriter cannot handle (C++ exception
          tables, Fortran runtime) — mirrors RetroWrite's refusals *)
  | Overlapping_code of string * int
      (** two recovered instructions overlap at this address: the
          recovered stream has no consistent linear layout *)
  | Unsound_fallthrough of string * int
      (** the instruction at this address can fall through, but its
          successor was not recovered: relocating it would change what
          executes next *)
  | Pin_collision of string * int * int
      (** two pinned targets less than 2 bytes apart: the second pin's
          patch would clobber the first *)
  | Pin_unsafe of string * int
      (** a pin is requested at an address where patching 2 bytes is not
          provably safe: unrecovered address, or the patch would spill
          into bytes that are not recovered instructions (e.g. inline
          jump-table data) *)

val refusal_to_string : refusal -> string
val pp_refusal : Format.formatter -> refusal -> unit

(** {1 The emitted map}

    Emitted objects are self-describing: an [.emit.map] data section
    records the old-to-new instruction layout and the pin set, so the
    emit runtime needs only the module itself plus its rule file. *)

val text_section_name : string
(** [".emit.text"]. *)

val map_section_name : string
(** [".emit.map"]. *)

type map_insn = {
  mi_old : int;  (** link-time address of the original instruction *)
  mi_new : int;
      (** link-time address of its relocated home: the site prefix when
          [mi_site], the instruction copy itself otherwise *)
  mi_site : bool;  (** preceded by a materialized instrumentation site *)
}

type emap = {
  em_digest : string;
      (** content digest of the {e original} module — the emit runtime
          validates the rule file against this, not against the emitted
          object *)
  em_tool : string;  (** {!tool_tag} of the emitting configuration *)
  em_text : int;  (** link-time base of [.emit.text] *)
  em_insns : map_insn array;  (** in old-address order *)
  em_pins : (int * int) array;
      (** (pinned old address, new target) — the target is the [mi_new]
          of the pinned instruction *)
}

val encode_map : emap -> string
val decode_map : string -> emap
(** @raise Failure on bad magic or truncation. *)

val read_map : Jt_obj.Objfile.t -> emap option
(** The decoded [.emit.map] of an emitted object, [None] for ordinary
    modules. *)

(** {1 Emission} *)

val emit_module :
  ?store:Jt_ir.Store.t ->
  tool:tool ->
  rules:Jt_rules.Rules.file ->
  Jt_obj.Objfile.t ->
  (Jt_obj.Objfile.t, refusal) result
(** Rewrite one module.  [rules] must be the static pass's rule file for
    this exact build of the module ({!Jt_rules.Rules.file.rf_digest} is
    checked when present).  The result keeps the module's name, kind,
    symbols, relocations, imports, exports, entry point and dependencies
    unchanged — only section contents differ (pin patches) and two
    sections are appended ([.emit.text], [.emit.map]) — so it substitutes
    transparently into a registry.
    @raise Invalid_argument if [rules] belongs to a different build. *)

type program = {
  p_tool : tool;
  p_main : string;
  p_registry : Jt_obj.Objfile.t list;
      (** the input registry with emitted objects substituted in place
          (plus the emitted [ld.so], which the loader would otherwise
          replace with its synthetic original) *)
  p_rules : (string * Jt_rules.Rules.file) list;
      (** static rule files, needed again at run time by {!attach} *)
  p_emitted : string list;  (** emitted module names, sorted *)
  p_skipped : (string * refusal) list;
      (** registry modules outside the static closure (dlopen-only
          plugins) that could not be emitted; they stay in the registry
          unrewritten — exactly the dynamic-fallback gap of footnote 1,
          except here the gap is simply unchecked *)
}
(** An emitted program, ready to {!run}. *)

val emit_program :
  ?pool:Jt_pool.Pool.t ->
  ?store:Jt_ir.Store.t ->
  tool:tool ->
  registry:Jt_obj.Objfile.t list ->
  main:string ->
  unit ->
  (program, string * refusal) result
(** Emit a whole program: the main executable's static closure must emit
    (any refusal fails the program, naming the module); registry modules
    reachable only via [dlopen] are emitted opportunistically. *)

(** {1 Link-map lifecycle}

    Shared machinery for rewriters that carry per-instruction
    instrumentation maps in link coordinates (the emitter itself, and
    static baselines like [Retrowrite_like]): rebase each module's map
    into run-time coordinates when the loader commits it, and — just as
    important — purge those entries when the module unloads, so a later
    module mapped at a reused base (non-PIC objects always load at
    base 0) cannot inherit stale instrumentation. *)
module Sitemap : sig
  type meta = { sm_cost : int; sm_action : Jt_vm.Vm.t -> unit }

  type t

  val create :
    maps_for:(string -> (int, meta list) Hashtbl.t option) ->
    Jt_vm.Vm.t ->
    t
  (** Install load/unload callbacks on the VM's loader; call before
      [Vm.boot].  [maps_for] returns a module's link-coordinate
      instrumentation map, or [None] for modules the rewriter did not
      cover. *)

  val find : t -> int -> meta list option
  (** The metas anchored at a run-time address, in application order. *)
end

(** {1 The emit runtime} *)

type stats = {
  mutable st_sites : int;  (** instrumentation sites executed *)
  mutable st_pins : int;  (** pin hops executed *)
  mutable st_check_cost : int;
      (** cycles charged for materialized checks (the sum of the
          executed metas' costs — identical to what the hybrid DBT
          charges for the same executions) *)
}

type runtime = {
  r_stats : stats;
  r_asan : Jt_jasan.Jasan.Rt.t option;  (** for [Asan] configurations *)
  r_cfi : Jt_jcfi.Jcfi.Rt.t option;  (** for [Cfi] configurations *)
}

val attach :
  tool:tool ->
  rules_for:(string -> Jt_rules.Rules.file option) ->
  Jt_vm.Vm.t ->
  runtime
(** Install the emit runtime on a fresh VM, before [Vm.boot]: a loader
    callback that, for every loaded module carrying an [.emit.map],
    validates the rule file digest, interprets the module's rules into
    per-site meta lists (via [Jasan.static_meta] / [Jcfi.static_meta], in
    run-time coordinates) and registers its pins; plus the two syscall
    hooks that give [emit_site] and [emit_pin] their meaning.  Modules
    without a map get no sites — under a [Cfi] configuration they still
    receive a runtime-constructed target table, like the hybrid's
    dynamic fallback.  Unloading a module drops its sites, pins and
    target table.

    A site syscall charges the metas' summed cost in place of its own
    syscall cost; a pin hop charges one direct-jump cost.  Both bump
    {!stats}, so a caller can reconstruct the exact uninstrumented
    instruction and cycle counts from an emitted run.
    @raise Failure if an emitted module's rule file is missing or its
    digest does not match the map. *)

type run_outcome = {
  ro_outcome : Janitizer.Driver.outcome;
  ro_sites : int;
  ro_pins : int;
  ro_check_cost : int;
}

val run : ?fuel:int -> program -> run_outcome
(** Execute an emitted program on the plain VM — no DBT anywhere.  The
    observable identities against other arms, asserted by [bench emit]:

    - [ro_outcome.o_result.r_icount - ro_sites - ro_pins] equals the
      hybrid DBT's (and the native baseline's) instruction count;
    - cycles exceed a baseline run with the same allocator policy by
      exactly [ro_check_cost + ro_pins] — zero translation overhead. *)
