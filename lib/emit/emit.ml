open Jt_isa

type tool = Asan of { elide : bool } | Cfi of Jt_jcfi.Jcfi.config

let tool_tag = function
  | Asan { elide } -> if elide then "jasan+elide" else "jasan"
  | Cfi c ->
    if c.Jt_jcfi.Jcfi.cf_forward && c.cf_backward then "jcfi"
    else if c.cf_forward then "jcfi-fwd"
    else "jcfi-bwd"

type refusal =
  | Unsupported_feature of string * string
  | Overlapping_code of string * int
  | Unsound_fallthrough of string * int
  | Pin_collision of string * int * int
  | Pin_unsafe of string * int

let refusal_to_string = function
  | Unsupported_feature (m, what) -> Printf.sprintf "%s: unsupported feature: %s" m what
  | Overlapping_code (m, a) -> Printf.sprintf "%s: overlapping instructions at 0x%x" m a
  | Unsound_fallthrough (m, a) ->
    Printf.sprintf "%s: fall-through into unrecovered bytes at 0x%x" m a
  | Pin_collision (m, a, b) -> Printf.sprintf "%s: pins collide at 0x%x/0x%x" m a b
  | Pin_unsafe (m, a) -> Printf.sprintf "%s: cannot safely pin 0x%x" m a

let pp_refusal ppf r = Format.pp_print_string ppf (refusal_to_string r)

exception Refused of refusal

(* ------------------------------------------------------------------ *)
(* The .emit.map section                                              *)
(* ------------------------------------------------------------------ *)

let text_section_name = ".emit.text"
let map_section_name = ".emit.map"

type map_insn = { mi_old : int; mi_new : int; mi_site : bool }

type emap = {
  em_digest : string;
  em_tool : string;
  em_text : int;
  em_insns : map_insn array;
  em_pins : (int * int) array;
}

let map_magic = "JEM1"

let encode_map (em : emap) =
  let b = Buffer.create 1024 in
  Buffer.add_string b map_magic;
  let str s =
    if String.length s > 255 then invalid_arg "Jt_emit: map string too long";
    Buffer.add_uint8 b (String.length s);
    Buffer.add_string b s
  in
  let w32 v = Buffer.add_int32_le b (Int32.of_int v) in
  str em.em_digest;
  str em.em_tool;
  w32 em.em_text;
  w32 (Array.length em.em_insns);
  Array.iter
    (fun mi ->
      w32 mi.mi_old;
      w32 mi.mi_new;
      Buffer.add_uint8 b (if mi.mi_site then 1 else 0))
    em.em_insns;
  w32 (Array.length em.em_pins);
  Array.iter
    (fun (old, tgt) ->
      w32 old;
      w32 tgt)
    em.em_pins;
  Buffer.contents b

let decode_map s =
  let fail msg = failwith ("Jt_emit.decode_map: " ^ msg) in
  let pos = ref 0 in
  let need n = if !pos + n > String.length s then fail "truncated" in
  let r8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let r32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v land 0xFFFF_FFFF
  in
  let rstr () =
    let n = r8 () in
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  need 4;
  if not (String.equal (String.sub s 0 4) map_magic) then fail "bad magic";
  pos := 4;
  let em_digest = rstr () in
  let em_tool = rstr () in
  let em_text = r32 () in
  let n_insns = r32 () in
  (* 9 bytes per instruction entry: bound the declared count by what the
     remaining buffer can actually hold before allocating. *)
  if n_insns * 9 > String.length s - !pos then fail "instruction count exceeds buffer";
  let em_insns =
    Array.init n_insns (fun _ ->
        let mi_old = r32 () in
        let mi_new = r32 () in
        let mi_site = r8 () <> 0 in
        { mi_old; mi_new; mi_site })
  in
  let n_pins = r32 () in
  if n_pins * 8 > String.length s - !pos then fail "pin count exceeds buffer";
  let em_pins =
    Array.init n_pins (fun _ ->
        let old = r32 () in
        let tgt = r32 () in
        (old, tgt))
  in
  if !pos <> String.length s then fail "trailing bytes";
  { em_digest; em_tool; em_text; em_insns; em_pins }

let read_map (m : Jt_obj.Objfile.t) =
  match Jt_obj.Objfile.find_section m map_section_name with
  | None -> None
  | Some s -> Some (decode_map s.Jt_obj.Section.data)

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

(* A relocated instruction may not fall through into bytes that are not
   the instruction's recovered successor: the copy's successor in
   [.emit.text] is the next recovered instruction, and if that is not
   also the native successor the rewrite would change behavior. *)
let falls_through (i : Insn.t) =
  match Insn.cti_kind i with
  | None -> true
  | Some (Insn.Cti_jmp _ | Insn.Cti_jmp_ind | Insn.Cti_ret | Insn.Cti_halt) ->
    false
  | Some Insn.Cti_syscall ->
    (* [syscall exit_] terminates the process: execution never reaches
       its successor, so relocating it next to unrelated bytes is safe
       (programs routinely end a section with it). *)
    (match i with Insn.Syscall n -> n <> Sysno.exit_ | _ -> true)
  | Some (Insn.Cti_jcc _ | Insn.Cti_call _ | Insn.Cti_call_ind) -> true

(* Does this rule materialize as a site?  The decision must be taken
   identically at emit time (link coordinates, original instruction) and
   at load time (run-time coordinates, relocated instruction); both
   [static_meta]s decide from the rule id and the instruction's shape
   only, and re-targeting never changes a constructor, so interpreting
   the rule against scratch runtimes and discarding the meta is an exact
   predictor. *)
let wants_site ~tool ~scratch_asan ~scratch_cfi (r : Jt_rules.Rules.t) ~at
    ~insn ~len =
  match tool with
  | Asan { elide } ->
    Option.is_some
      (Jt_jasan.Jasan.static_meta scratch_asan ~elide r ~at ~insn ~len)
  | Cfi _ ->
    Option.is_some
      (Jt_jcfi.Jcfi.static_meta scratch_cfi r ~at ~insn ~len ~pic_base:0)

let align_up a n = (a + n - 1) land lnot (n - 1)

(* Index a rule file by anchor instruction address, preserving file
   order within each bucket (the order [plan_static] applies metas). *)
let rules_by_insn (rules : Jt_rules.Rules.file) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Jt_rules.Rules.t) ->
      if r.rule_id <> Jt_rules.Rules.no_op then
        Hashtbl.replace tbl r.insn
          (r :: Option.value ~default:[] (Hashtbl.find_opt tbl r.insn)))
    rules.rf_rules;
  fun addr -> List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl addr))

let emit_module_exn ?store ~tool ~(rules : Jt_rules.Rules.file)
    (m : Jt_obj.Objfile.t) =
  let name = m.name in
  let sa = Janitizer.Static_analyzer.analyze ?store m in
  let dis = sa.Janitizer.Static_analyzer.sa_disasm in
  let recovered = dis.Jt_disasm.Disasm.insns in
  let insns =
    Hashtbl.fold (fun _ i acc -> i :: acc) recovered []
    |> List.sort (fun (a : Jt_disasm.Disasm.insn_info) b ->
           compare a.d_addr b.Jt_disasm.Disasm.d_addr)
  in
  (* Soundness of the linear relayout. *)
  let rec check_overlap = function
    | (a : Jt_disasm.Disasm.insn_info) :: (b :: _ as rest) ->
      if a.d_addr + a.d_len > b.Jt_disasm.Disasm.d_addr then
        raise (Refused (Overlapping_code (name, b.d_addr)));
      check_overlap rest
    | _ -> ()
  in
  check_overlap insns;
  List.iter
    (fun (i : Jt_disasm.Disasm.insn_info) ->
      if falls_through i.d_insn && not (Hashtbl.mem recovered (i.d_addr + i.d_len))
      then raise (Refused (Unsound_fallthrough (name, i.d_addr))))
    insns;
  (* First pass: layout.  [new_entry_of] maps each old instruction to
     the address control flow should enter — the site prefix when the
     instruction carries materialized checks. *)
  let rules_at = rules_by_insn rules in
  let scratch_asan = Jt_jasan.Jasan.Rt.create () in
  let scratch_cfi =
    Jt_jcfi.Jcfi.Rt.create
      (match tool with Cfi c -> c | Asan _ -> Jt_jcfi.Jcfi.default_config)
  in
  let top =
    List.fold_left
      (fun acc s -> max acc (Jt_obj.Section.end_vaddr s))
      0 m.sections
  in
  let text_base = align_up top 0x1000 + 0x1000 in
  let new_entry_of = Hashtbl.create (List.length insns) in
  let has_site = Hashtbl.create 64 in
  let cursor = ref text_base in
  List.iter
    (fun (i : Jt_disasm.Disasm.insn_info) ->
      let site =
        List.exists
          (fun r ->
            wants_site ~tool ~scratch_asan ~scratch_cfi r ~at:i.d_addr
              ~insn:i.d_insn ~len:i.d_len)
          (rules_at i.d_addr)
      in
      Hashtbl.replace new_entry_of i.d_addr !cursor;
      if site then begin
        Hashtbl.replace has_site i.d_addr ();
        cursor := !cursor + Encode.length (Insn.Syscall Sysno.emit_site)
      end;
      cursor := !cursor + i.d_len)
    insns;
  (* Second pass: re-encode.  Direct branches whose target has a new
     home are re-pointed there (entering through the target's site, as
     the DBT does); PC-relative operands are re-displaced to keep
     addressing the old absolute location — data never moves, so
     code/data-ambiguous references stay correct by construction. *)
  let buf = Buffer.create 4096 in
  let remap t =
    match Hashtbl.find_opt new_entry_of t with
    | Some n -> Word.of_int n
    | None -> t
  in
  List.iter
    (fun (i : Jt_disasm.Disasm.insn_info) ->
      let entry = Hashtbl.find new_entry_of i.d_addr in
      let site = Hashtbl.mem has_site i.d_addr in
      if site then Encode.to_buffer buf ~at:entry (Insn.Syscall Sysno.emit_site);
      let new_at = if site then entry + 2 else entry in
      let old_next = i.d_addr + i.d_len and new_next = new_at + i.d_len in
      let fix_mem (mm : Insn.mem) =
        match mm.base with
        | Some Insn.Bpc ->
          let abs = Word.add (Word.of_int old_next) mm.disp in
          { mm with Insn.disp = Word.sub abs (Word.of_int new_next) }
        | _ -> mm
      in
      let i' =
        match i.d_insn with
        | Insn.Jmp t -> Insn.Jmp (remap t)
        | Insn.Jcc (c, t) -> Insn.Jcc (c, remap t)
        | Insn.Call t -> Insn.Call (remap t)
        | Insn.Lea (r, mm) -> Insn.Lea (r, fix_mem mm)
        | Insn.Load (w, r, mm) -> Insn.Load (w, r, fix_mem mm)
        | Insn.Store (w, mm, src) -> Insn.Store (w, fix_mem mm, src)
        | Insn.Jmp_ind (r, mo) -> Insn.Jmp_ind (r, Option.map fix_mem mo)
        | Insn.Call_ind (r, mo) -> Insn.Call_ind (r, Option.map fix_mem mo)
        | other -> other
      in
      let before = Buffer.length buf in
      Encode.to_buffer buf ~at:new_at i';
      if Buffer.length buf - before <> i.d_len then
        failwith
          (Printf.sprintf "Jt_emit: re-encoded length mismatch at 0x%x in %s"
             i.d_addr name))
    insns;
  (* The pin set: every address that may be reached through a value the
     rewriter cannot rewrite — data-borne code pointers, dynamic symbol
     resolution, jump-table slots — keeps its old address as a live hop
     to the new code. *)
  let in_code a =
    match Jt_obj.Objfile.section_at m a with
    | Some s -> s.Jt_obj.Section.is_code
    | None -> false
  in
  let wanted_pins =
    (match m.entry with Some e -> [ e ] | None -> [])
    @ List.filter_map
        (fun (s : Jt_obj.Symbol.t) ->
          if Jt_obj.Symbol.is_func s then Some s.vaddr else None)
        m.symbols
    @ Janitizer.Static_analyzer.function_entries sa
    @ List.concat_map snd dis.Jt_disasm.Disasm.jump_tables
    @ Janitizer.Static_analyzer.code_pointer_scan sa
    |> List.filter in_code |> List.sort_uniq compare
  in
  let patchable p =
    match (Hashtbl.find_opt recovered p, Jt_obj.Objfile.section_at m p) with
    | None, _ | _, None -> false
    | Some (info : Jt_disasm.Disasm.insn_info), Some s ->
      let send = Jt_obj.Section.end_vaddr s in
      (* Patch bytes that land inside the section must overwrite
         recovered instruction bytes only: spilling into undecoded bytes
         could clobber inline data (a jump table living between
         functions).  Bytes past the section end are fresh padding the
         patch phase appends — nothing else addresses them, so they are
         free as long as no other section occupies that range (think a
         lone [ret] in a 1-byte [.init]). *)
      let covered =
        info.d_len >= 2
        || p + info.d_len >= send
        || Hashtbl.mem recovered (p + info.d_len)
      in
      let tail_free =
        p + 2 <= send
        || not
             (List.exists
                (fun (s' : Jt_obj.Section.t) ->
                  s'.vaddr < p + 2 && send < Jt_obj.Section.end_vaddr s')
                m.sections)
      in
      covered && tail_free
  in
  (* An unpatchable pin (typically a lone [ret] in a 1-byte [.init] /
     [.fini] section, too small for the hop) can be *dropped* instead of
     refused when its entire function carries no instrumentation sites:
     execution entering there simply runs the original bytes — which are
     intact, since nothing was patched — at identical cost, until a
     call/jump reaches a patched pin and hops back into the new copy.
     If the function does have sites, dropping would silently skip
     checks, so it stays a refusal. *)
  let fn_site_free p =
    match Janitizer.Static_analyzer.fn_of_addr sa p with
    | None -> false
    | Some fa ->
      List.for_all
        (fun (b : Jt_cfg.Cfg.block) ->
          Array.for_all
            (fun (i : Jt_disasm.Disasm.insn_info) ->
              not (Hashtbl.mem has_site i.d_addr))
            b.b_insns)
        (Jt_cfg.Cfg.fn_blocks fa.Janitizer.Static_analyzer.fa_fn)
  in
  let pins =
    List.filter
      (fun p ->
        patchable p
        ||
        if fn_site_free p then false
        else raise (Refused (Pin_unsafe (name, p))))
      wanted_pins
  in
  let rec check_spacing = function
    | p1 :: (p2 :: _ as rest) ->
      if p2 - p1 < 2 then raise (Refused (Pin_collision (name, p1, p2)));
      check_spacing rest
    | _ -> ()
  in
  check_spacing pins;
  (* Patch the pins into the original code bytes.  The hop encoding is
     address-independent (opcode + syscall number), so one string fits
     every pin. *)
  let hop = Encode.encode ~at:0 (Insn.Syscall Sysno.emit_pin) in
  assert (String.length hop = 2);
  let patched =
    List.map
      (fun (s : Jt_obj.Section.t) ->
        if not s.is_code then s
        else begin
          let spins = List.filter (Jt_obj.Section.contains s) pins in
          let needed =
            List.fold_left
              (fun acc p -> max acc (p + 2))
              (Jt_obj.Section.end_vaddr s)
              spins
          in
          let b = Bytes.make (needed - s.vaddr) '\000' in
          Bytes.blit_string s.data 0 b 0 (String.length s.data);
          List.iter
            (fun p -> Bytes.blit_string hop 0 b (p - s.vaddr) 2)
            spins;
          { s with Jt_obj.Section.data = Bytes.to_string b }
        end)
      m.sections
  in
  let em =
    {
      em_digest = Jt_obj.Objfile.digest m;
      em_tool = tool_tag tool;
      em_text = text_base;
      em_insns =
        Array.of_list
          (List.map
             (fun (i : Jt_disasm.Disasm.insn_info) ->
               {
                 mi_old = i.d_addr;
                 mi_new = Hashtbl.find new_entry_of i.d_addr;
                 mi_site = Hashtbl.mem has_site i.d_addr;
               })
             insns);
      em_pins =
        Array.of_list
          (List.map (fun p -> (p, Hashtbl.find new_entry_of p)) pins);
    }
  in
  let text_data = Buffer.contents buf in
  let text_sec =
    Jt_obj.Section.make
      ~truth_code_ranges:[ (text_base, String.length text_data) ]
      ~name:text_section_name ~vaddr:text_base ~is_code:true text_data
  in
  let map_data = encode_map em in
  let map_vaddr = align_up (text_base + String.length text_data) 16 in
  let map_sec =
    Jt_obj.Section.make ~name:map_section_name ~vaddr:map_vaddr ~is_code:false
      map_data
  in
  { m with Jt_obj.Objfile.sections = patched @ [ text_sec; map_sec ] }

let emit_module ?store ~tool ~rules (m : Jt_obj.Objfile.t) =
  if
    rules.Jt_rules.Rules.rf_digest <> ""
    && not (String.equal rules.rf_digest (Jt_obj.Objfile.digest m))
  then invalid_arg "Jt_emit.emit_module: rules digest does not match module";
  if Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Cxx_exceptions then
    Error (Unsupported_feature (m.name, "C++ exception tables"))
  else if Jt_obj.Objfile.has_feature m Jt_obj.Objfile.Fortran_runtime then
    Error (Unsupported_feature (m.name, "Fortran runtime"))
  else
    match emit_module_exn ?store ~tool ~rules m with
    | m' -> Ok m'
    | exception Refused r -> Error r

(* ------------------------------------------------------------------ *)
(* Link-map lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

module Sitemap = struct
  type meta = { sm_cost : int; sm_action : Jt_vm.Vm.t -> unit }
  type t = { tbl : (int, meta list) Hashtbl.t }

  let create ~maps_for (vm : Jt_vm.Vm.t) =
    let tbl = Hashtbl.create 4096 in
    let by_module : (int, int list) Hashtbl.t = Hashtbl.create 8 in
    Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader (fun l ->
        match maps_for l.Jt_loader.Loader.lmod.Jt_obj.Objfile.name with
        | None -> ()
        | Some map ->
          let keys = ref [] in
          Hashtbl.iter
            (fun a metas ->
              let ra = Jt_loader.Loader.runtime_addr l a in
              Hashtbl.replace tbl ra metas;
              keys := ra :: !keys)
            map;
          Hashtbl.replace by_module l.load_order !keys);
    (* Purging on unload is what makes reused bases safe: non-PIC
       objects always map at base 0, so a dlclose'd module's entries
       would otherwise shadow whatever loads there next. *)
    Jt_loader.Loader.on_unload vm.Jt_vm.Vm.loader (fun l ->
        match Hashtbl.find_opt by_module l.Jt_loader.Loader.load_order with
        | None -> ()
        | Some keys ->
          List.iter (Hashtbl.remove tbl) keys;
          Hashtbl.remove by_module l.load_order);
    { tbl }

  let find t a = Hashtbl.find_opt t.tbl a
end

(* ------------------------------------------------------------------ *)
(* The emit runtime                                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable st_sites : int;
  mutable st_pins : int;
  mutable st_check_cost : int;
}

type runtime = {
  r_stats : stats;
  r_asan : Jt_jasan.Jasan.Rt.t option;
  r_cfi : Jt_jcfi.Jcfi.Rt.t option;
}

let attach ~tool ~rules_for (vm : Jt_vm.Vm.t) =
  let stats = { st_sites = 0; st_pins = 0; st_check_cost = 0 } in
  let asan_rt =
    match tool with
    | Asan _ -> Some (Jt_jasan.Jasan.Rt.create ())
    | Cfi _ -> None
  in
  let cfi_rt =
    match tool with
    | Cfi c -> Some (Jt_jcfi.Jcfi.Rt.create c)
    | Asan _ -> None
  in
  Option.iter (fun rt -> Jt_jasan.Jasan.Rt.attach rt vm) asan_rt;
  let sites : (int, Jt_dbt.Dbt.meta list) Hashtbl.t = Hashtbl.create 256 in
  let pins : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let by_module : (int, int list * int list) Hashtbl.t = Hashtbl.create 8 in
  let install_module (l : Jt_loader.Loader.loaded) =
    let m = l.lmod in
    match read_map m with
    | None ->
      (* Not emitted (a skipped dlopen plugin): no sites, but CFI still
         needs a target table — the same runtime-constructed fallback
         the hybrid uses for modules without static rules. *)
      Option.iter
        (fun rt ->
          Jt_jcfi.Jcfi.Rt.install rt l (Jt_jcfi.Targets.of_module_runtime l))
        cfi_rt
    | Some em ->
      let rules =
        match rules_for m.name with
        | Some f -> f
        | None -> failwith ("Jt_emit: no rules for emitted module " ^ m.name)
      in
      (* The map records the digest of the *original* module; applying a
         rule file computed from a different build would interpret
         checks at meaningless addresses. *)
      if
        rules.Jt_rules.Rules.rf_digest <> ""
        && not (String.equal rules.rf_digest em.em_digest)
      then failwith ("Jt_emit: rule/map digest mismatch for " ^ m.name);
      Option.iter
        (fun rt ->
          Jt_jcfi.Jcfi.Rt.install rt l (Jt_jcfi.Jcfi.targets_of_rules l rules))
        cfi_rt;
      let rules_at = rules_by_insn rules in
      let pic_base = if Jt_obj.Objfile.is_pic m then l.base else 0 in
      let site_addrs = ref [] and pin_addrs = ref [] in
      Array.iter
        (fun mi ->
          if mi.mi_site then begin
            let site_rt = Jt_loader.Loader.runtime_addr l mi.mi_new in
            let insn_rt = site_rt + 2 in
            match Jt_vm.Vm.fetch vm insn_rt with
            | None -> failwith "Jt_emit: undecodable instruction at emitted site"
            | Some (insn, len) ->
              let metas =
                List.filter_map
                  (fun r ->
                    match tool with
                    | Asan { elide } ->
                      Jt_jasan.Jasan.static_meta (Option.get asan_rt) ~elide r
                        ~at:insn_rt ~insn ~len
                    | Cfi _ ->
                      Jt_jcfi.Jcfi.static_meta (Option.get cfi_rt) r ~at:insn_rt
                        ~insn ~len ~pic_base)
                  (rules_at mi.mi_old)
              in
              (match metas with
              | [] -> failwith "Jt_emit: materialized site with no checks"
              | _ -> ());
              Hashtbl.replace sites site_rt metas;
              site_addrs := site_rt :: !site_addrs
          end)
        em.em_insns;
      Array.iter
        (fun (old, tgt) ->
          let p_rt = Jt_loader.Loader.runtime_addr l old in
          Hashtbl.replace pins p_rt (Jt_loader.Loader.runtime_addr l tgt);
          pin_addrs := p_rt :: !pin_addrs)
        em.em_pins;
      Hashtbl.replace by_module l.load_order (!site_addrs, !pin_addrs)
  in
  Jt_loader.Loader.on_load vm.Jt_vm.Vm.loader install_module;
  Jt_loader.Loader.on_unload vm.Jt_vm.Vm.loader (fun l ->
      (match Hashtbl.find_opt by_module l.Jt_loader.Loader.load_order with
      | None -> ()
      | Some (ss, ps) ->
        List.iter (Hashtbl.remove sites) ss;
        List.iter (Hashtbl.remove pins) ps;
        Hashtbl.remove by_module l.load_order);
      Option.iter (fun rt -> Jt_jcfi.Jcfi.Rt.drop_module rt l) cfi_rt);
  let syscall_cost = Jt_vm.Cost.insn (Insn.Syscall 0) in
  let jmp_cost = Jt_vm.Cost.insn (Insn.Jmp 0) in
  Jt_vm.Vm.set_syscall_hook vm Sysno.emit_site (fun vm ->
      (* Handler time: the PC is past the 2-byte site prefix and its
         syscall cost is charged; replace that charge with the metas'
         exact hybrid-DBT cost and run their actions, then fall through
         into the anchor instruction. *)
      let site = vm.Jt_vm.Vm.pc - 2 in
      match Hashtbl.find_opt sites site with
      | None ->
        vm.Jt_vm.Vm.status <-
          Jt_vm.Vm.Aborted "emit: unmapped instrumentation site"
      | Some metas ->
        stats.st_sites <- stats.st_sites + 1;
        let cost =
          List.fold_left
            (fun acc (mt : Jt_dbt.Dbt.meta) -> acc + mt.m_cost)
            0 metas
        in
        stats.st_check_cost <- stats.st_check_cost + cost;
        Jt_vm.Vm.charge vm (cost - syscall_cost);
        List.iter
          (fun (mt : Jt_dbt.Dbt.meta) ->
            Option.iter (fun f -> f vm) mt.m_action)
          metas);
  Jt_vm.Vm.set_syscall_hook vm Sysno.emit_pin (fun vm ->
      let p = vm.Jt_vm.Vm.pc - 2 in
      match Hashtbl.find_opt pins p with
      | None -> vm.Jt_vm.Vm.status <- Jt_vm.Vm.Aborted "emit: unmapped pin"
      | Some tgt ->
        stats.st_pins <- stats.st_pins + 1;
        (* A pinned entry is morally a direct jump to the relocated
           code; charge it as one. *)
        Jt_vm.Vm.charge vm (jmp_cost - syscall_cost);
        vm.Jt_vm.Vm.pc <- tgt);
  { r_stats = stats; r_asan = asan_rt; r_cfi = cfi_rt }

(* ------------------------------------------------------------------ *)
(* Whole programs                                                     *)
(* ------------------------------------------------------------------ *)

type program = {
  p_tool : tool;
  p_main : string;
  p_registry : Jt_obj.Objfile.t list;
  p_rules : (string * Jt_rules.Rules.file) list;
  p_emitted : string list;
  p_skipped : (string * refusal) list;
}

let driver_tool = function
  | Asan { elide } -> fst (Jt_jasan.Jasan.create ~elide ())
  | Cfi config -> fst (Jt_jcfi.Jcfi.create ~config ())

exception Stop of string * refusal

let emit_program ?pool ?store ~tool ~registry ~main () =
  let closure = Janitizer.Driver.static_closure ~registry ~main in
  let in_closure n =
    List.exists (fun (c : Jt_obj.Objfile.t) -> String.equal c.name n) closure
  in
  let extras =
    List.filter (fun (m : Jt_obj.Objfile.t) -> not (in_closure m.name)) registry
  in
  (* Analyze extras too: a dlopen-only plugin gets static rules — and an
     emitted body — even though the hybrid driver would only reach it
     through the dynamic fallback. *)
  let rule_files =
    Janitizer.Driver.analyze_all ?pool ?store ~tool:(driver_tool tool)
      (closure @ extras)
  in
  let emit1 (m : Jt_obj.Objfile.t) =
    emit_module ?store ~tool ~rules:(List.assoc m.name rule_files) m
  in
  match
    let emitted = Hashtbl.create 8 in
    let skipped = ref [] in
    List.iter
      (fun (m : Jt_obj.Objfile.t) ->
        match emit1 m with
        | Ok m' -> Hashtbl.replace emitted m.name m'
        | Error r -> raise (Stop (m.name, r)))
      closure;
    List.iter
      (fun (m : Jt_obj.Objfile.t) ->
        match emit1 m with
        | Ok m' -> Hashtbl.replace emitted m.name m'
        | Error r -> skipped := (m.name, r) :: !skipped)
      extras;
    (emitted, List.rev !skipped)
  with
  | exception Stop (n, r) -> Error (n, r)
  | emitted, skipped ->
    let substituted =
      List.map
        (fun (m : Jt_obj.Objfile.t) ->
          Option.value ~default:m (Hashtbl.find_opt emitted m.name))
        registry
    in
    (* The loader only adds its synthetic ld.so when the registry lacks
       one, so the emitted ld.so must be appended explicitly to be the
       one that loads. *)
    let registry' =
      if
        List.exists
          (fun (m : Jt_obj.Objfile.t) -> String.equal m.name "ld.so")
          substituted
      then substituted
      else
        substituted
        @ (match Hashtbl.find_opt emitted "ld.so" with
          | Some l -> [ l ]
          | None -> [])
    in
    Ok
      {
        p_tool = tool;
        p_main = main;
        p_registry = registry';
        p_rules = rule_files;
        p_emitted =
          Hashtbl.fold (fun k _ acc -> k :: acc) emitted []
          |> List.sort compare;
        p_skipped = skipped;
      }

type run_outcome = {
  ro_outcome : Janitizer.Driver.outcome;
  ro_sites : int;
  ro_pins : int;
  ro_check_cost : int;
}

let run ?fuel (p : program) =
  let rt_box = ref None in
  let setup vm =
    rt_box :=
      Some
        (attach ~tool:p.p_tool
           ~rules_for:(fun n -> List.assoc_opt n p.p_rules)
           vm)
  in
  let o =
    Janitizer.Driver.run_plain ?fuel ~setup ~registry:p.p_registry
      ~main:p.p_main ()
  in
  let rt = Option.get !rt_box in
  {
    ro_outcome = o;
    ro_sites = rt.r_stats.st_sites;
    ro_pins = rt.r_stats.st_pins;
    ro_check_cost = rt.r_stats.st_check_cost;
  }
