open Jt_isa
open Jt_asm.Builder
open Jt_asm.Builder.Dsl

(* ---- deterministic PRNG (splitmix64) ----
   OCaml's [Random] is out: its stream is version-dependent and global.
   Every case must regenerate bit-identically from its seed alone. *)
module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t n =
    if n <= 0 then invalid_arg "Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

  let bool t = int t 2 = 1
end

(* ---- cases ---- *)

type inject = Overflow | Underwrite | Uaf | Double_free | Stack_smash

let injections = [ Overflow; Underwrite; Uaf; Double_free; Stack_smash ]

let inject_name = function
  | Overflow -> "overflow"
  | Underwrite -> "underwrite"
  | Uaf -> "uaf"
  | Double_free -> "double-free"
  | Stack_smash -> "stack-smash"

let expected_kind = function
  | Overflow | Underwrite -> "heap-buffer-overflow"
  | Uaf -> "heap-use-after-free"
  | Double_free -> "double-free"
  | Stack_smash -> "stack-buffer-overflow"

type case = { fz_seed : int; fz_pic : bool; fz_inject : inject option }

let case_name c =
  Printf.sprintf "fuzz_%04d_%s%s" c.fz_seed
    (match c.fz_inject with None -> "benign" | Some i -> inject_name i)
    (if c.fz_pic then "_pic" else "")

let cases_of ~base_seed ~seeds =
  List.concat_map
    (fun k ->
      let seed = base_seed + k in
      let pic = k mod 2 = 1 in
      { fz_seed = seed; fz_pic = pic; fz_inject = None }
      :: List.map (fun i -> { fz_seed = seed; fz_pic = pic; fz_inject = Some i }) injections)
    (List.init seeds Fun.id)

(* ---- program generator ----

   One [work] function under a canary frame: 2..4 heap blocks whose
   pointers are spilled to frame slots, in-bounds fill loops, a
   lea-addressed stack array, and a checksum printed at exit.  The
   checksum never depends on an address, so every scheme — whatever its
   redzone configuration does to the heap layout — must print the same
   bytes.  The injection, if any, is appended between the benign work
   and the cleanup frees, and is built to leave the checksum (and, for
   [Stack_smash], even the canary value) unchanged: natively each bad
   variant still exits 0 with benign output. *)

let build (c : case) =
  let rng = Rng.make c.fz_seed in
  let nblocks = 2 + Rng.int rng 3 in
  let block_regs = [| Reg.r6; Reg.r7; Reg.r9; Reg.r10 |] in
  let sizes = Array.init nblocks (fun _ -> 8 * (1 + Rng.int rng 6)) in
  let probe = Array.init nblocks (fun k -> Rng.int rng (sizes.(k) / 4)) in
  let stack_probe = Rng.int rng 4 in
  let victim = Rng.int rng nblocks in
  let freed = Array.init nblocks (fun _ -> Rng.bool rng) in
  let locals = 48 in
  let vreg = block_regs.(victim) in
  let fill k =
    let words = sizes.(k) / 4 in
    let r = block_regs.(k) in
    [
      movi Reg.r0 sizes.(k);
      call_import "malloc";
      mov r Reg.r0;
      st (Abi.local locals k) r;
      movi Reg.r1 0;
      label (Printf.sprintf "fill%d" k);
      cmpi Reg.r1 words;
      jcc Insn.Ge (Printf.sprintf "fill%dd" k);
      st (mem_bi ~scale:4 r Reg.r1) Reg.r1;
      addi Reg.r1 1;
      jmp (Printf.sprintf "fill%d" k);
      label (Printf.sprintf "fill%dd" k);
      ld Reg.r2 (mem_b ~disp:(4 * probe.(k)) r);
      add Reg.r8 Reg.r2;
    ]
  in
  (* indices 4..7 of the frame (fp-32 .. fp-20): clear of both the
     pointer spills (0..3) and the canary word *)
  let stack_array =
    [
      lea Reg.r3 (mem_b ~disp:(-32) Reg.fp);
      movi Reg.r1 0;
      label "sfill";
      cmpi Reg.r1 4;
      jcc Insn.Ge "sfilld";
      st (mem_bi ~scale:4 Reg.r3 Reg.r1) Reg.r1;
      addi Reg.r1 1;
      jmp "sfill";
      label "sfilld";
      ld Reg.r2 (mem_b ~disp:(4 * stack_probe) Reg.r3);
      add Reg.r8 Reg.r2;
    ]
  in
  let injection =
    match c.fz_inject with
    | None -> []
    | Some Overflow -> [ st (mem_b ~disp:sizes.(victim) vreg) Reg.r8 ]
    | Some Underwrite -> [ stb (mem_b ~disp:(-1) vreg) Reg.r8 ]
    | Some Uaf ->
      [ mov Reg.r0 vreg; call_import "free"; ld Reg.r2 (mem_b ~disp:0 vreg) ]
    | Some Double_free ->
      [ mov Reg.r0 vreg; call_import "free"; mov Reg.r0 vreg; call_import "free" ]
    | Some Stack_smash ->
      (* overwrite the canary slot with its own value, through a
         computed pointer: semantically invisible, shadow-visible *)
      [
        load_canary Reg.r5;
        lea Reg.r1 (mem_b ~disp:(-4) Reg.fp);
        st (mem_b ~disp:0 Reg.r1) Reg.r5;
      ]
  in
  let injection_frees =
    match c.fz_inject with Some (Uaf | Double_free) -> true | _ -> false
  in
  let cleanup =
    List.concat
      (List.init nblocks (fun k ->
           if freed.(k) && not (injection_frees && k = victim) then
             [ mov Reg.r0 block_regs.(k); call_import "free" ]
           else []))
  in
  let work =
    func "work"
      (Abi.frame_enter ~canary:true ~locals ()
      @ [ movi Reg.r8 0 ]
      @ List.concat (List.init nblocks fill)
      @ stack_array @ injection @ cleanup
      @ [ mov Reg.r0 Reg.r8 ]
      @ Abi.frame_leave ~canary:true ~locals ())
  in
  let kind = if c.fz_pic then Jt_obj.Objfile.Exec_pic else Jt_obj.Objfile.Exec_nonpic in
  build ~name:(case_name c) ~kind ~deps:[ "libc.so" ] ~entry:"main"
    [
      work;
      func "main"
        ([ call "work"; call_import "print_int"; movi Reg.r0 0; syscall Sysno.exit_ ]);
    ]

(* ---- schemes ---- *)

type scheme = Native | Hybrid | Emitted | Valgrind | Retrowrite | Lockdown | Bincfi

let schemes = [ Native; Hybrid; Emitted; Valgrind; Retrowrite; Lockdown; Bincfi ]

let scheme_name = function
  | Native -> "native"
  | Hybrid -> "jasan-hybrid"
  | Emitted -> "jasan-emitted"
  | Valgrind -> "valgrind"
  | Retrowrite -> "retrowrite"
  | Lockdown -> "lockdown"
  | Bincfi -> "bincfi"

type detection =
  | Ran of Jt_vm.Vm.result * (int * int) option
      (** result, plus [(sites, pins)] for the emitted scheme's exact
          icount accounting *)
  | Refused of string

let registry_for m = [ m; Jt_workloads.Stdlibs.libc ]

(* libc.so / ld.so static rules are case-independent: analyze once. *)
let precomputed_lib_rules =
  lazy
    (let tool, _ = Jt_jasan.Jasan.create () in
     Janitizer.Driver.analyze_all ~tool
       [ Jt_workloads.Stdlibs.libc; Jt_loader.Loader.ld_so ])

let run_scheme scheme m =
  let registry = registry_for m in
  let main = m.Jt_obj.Objfile.name in
  match scheme with
  | Native -> Ran ((Janitizer.Driver.run_native ~registry ~main ()).o_result, None)
  | Hybrid ->
    let tool, _ = Jt_jasan.Jasan.create () in
    let precomputed = Lazy.force precomputed_lib_rules in
    Ran ((Janitizer.Driver.run ~hybrid:true ~precomputed ~tool ~registry ~main ()).o_result, None)
  | Emitted -> (
    match
      Jt_emit.Emit.emit_program ~tool:(Jt_emit.Emit.Asan { elide = true })
        ~registry ~main ()
    with
    | Error (m, _) -> Refused (Printf.sprintf "emit:%s" m)
    | Ok p ->
      let ro = Jt_emit.Emit.run p in
      Ran
        ( ro.Jt_emit.Emit.ro_outcome.Janitizer.Driver.o_result,
          Some (ro.ro_sites, ro.ro_pins) ))
  | Valgrind -> Ran (Jt_baselines.Valgrind_like.run ~registry ~main (), None)
  | Retrowrite -> (
    match Jt_baselines.Retrowrite_like.run ~registry ~main () with
    | Ok r -> Ran (r, None)
    | Error (Jt_baselines.Retrowrite_like.Needs_pic m) -> Refused ("needs-pic:" ^ m)
    | Error (Jt_baselines.Retrowrite_like.Unsupported_feature (m, f)) ->
      Refused (Printf.sprintf "unsupported:%s:%s" m f)
    | Error Jt_baselines.Retrowrite_like.Applicable -> Refused "inconsistent-verdict")
  | Lockdown -> Ran ((Jt_baselines.Lockdown.run ~registry ~main ()).lk_result, None)
  | Bincfi -> (
    match Jt_baselines.Bincfi.run ~registry ~main () with
    | Ok r -> Ran (r, None)
    | Error (Jt_baselines.Bincfi.Broken_rewrite m) -> Refused ("broken-rewrite:" ^ m)
    | Error Jt_baselines.Bincfi.Applicable -> Refused "inconsistent-verdict")

(* ---- oracle ---- *)

type expectation = Expect_kinds of string list | Expect_refusal

let expected c scheme =
  let injected = match c.fz_inject with None -> [] | Some i -> [ expected_kind i ] in
  match scheme with
  | Native | Lockdown | Bincfi -> Expect_kinds []
  | Hybrid | Emitted -> Expect_kinds injected
  | Valgrind ->
    Expect_kinds (match c.fz_inject with Some Stack_smash -> [] | _ -> injected)
  | Retrowrite -> if c.fz_pic then Expect_kinds injected else Expect_refusal

let kinds (r : Jt_vm.Vm.result) =
  List.sort_uniq compare (List.map (fun v -> v.Jt_vm.Vm.v_kind) r.r_violations)

let vset (r : Jt_vm.Vm.result) =
  List.sort_uniq compare
    (List.map (fun v -> (v.Jt_vm.Vm.v_kind, v.Jt_vm.Vm.v_addr)) r.r_violations)

type mismatch = { mm_case : string; mm_scheme : string; mm_what : string }

type matrix_row = {
  mx_scheme : string;
  mx_tp : int;
  mx_fn : int;
  mx_tn : int;
  mx_fp : int;
  mx_refused : int;
}

type report = {
  rp_cases : int;
  rp_runs : int;
  rp_matrix : matrix_row list;
  rp_mismatches : mismatch list;
}

type acc = {
  mutable a_tp : int;
  mutable a_fn : int;
  mutable a_tn : int;
  mutable a_fp : int;
  mutable a_refused : int;
}

let check_case c =
  let m = build c in
  let name = case_name c in
  let mismatches = ref [] in
  let miss scheme what =
    mismatches := { mm_case = name; mm_scheme = scheme_name scheme; mm_what = what } :: !mismatches
  in
  let results = List.map (fun s -> (s, run_scheme s m)) schemes in
  let native =
    match List.assoc Native results with
    | Ran (r, _) -> r
    | Refused _ -> assert false (* Native never refuses *)
  in
  let outcomes =
    List.map
      (fun (scheme, det) ->
        let expect = expected c scheme in
        let outcome =
          match (det, expect) with
          | Refused why, Expect_refusal ->
            ignore why;
            `Refused
          | Refused why, Expect_kinds _ ->
            miss scheme (Printf.sprintf "unexpected refusal: %s" why);
            `Refused
          | Ran _, Expect_refusal ->
            miss scheme "expected a refusal, but the scheme ran";
            `Fn
          | Ran (r, accounting), Expect_kinds exp ->
            (* detection shape *)
            let got = kinds r in
            if got <> exp then
              miss scheme
                (Printf.sprintf "kinds [%s], expected [%s]"
                   (String.concat " " got) (String.concat " " exp));
            (* bit-identical observables, benign and injected alike
               (recover mode: detection never alters execution) *)
            if r.r_status <> native.r_status then miss scheme "exit status differs from native";
            if r.r_output <> native.r_output then miss scheme "output differs from native";
            (* exact instruction accounting *)
            (match accounting with
            | Some (sites, pins) ->
              if r.r_icount - sites - pins <> native.r_icount then
                miss scheme
                  (Printf.sprintf "icount %d - %d sites - %d pins <> native %d"
                     r.r_icount sites pins native.r_icount)
            | None ->
              if scheme <> Native && r.r_icount <> native.r_icount then
                miss scheme
                  (Printf.sprintf "icount %d <> native %d" r.r_icount native.r_icount));
            (* matrix classification is against ground truth (was a bug
               injected?), not against the per-scheme expectation: an
               expected miss — Valgrind on a stack smash, the CFI-only
               baselines on any memory bug — is still an FN row entry,
               exactly the Figure-10 story *)
            let injected_kind = Option.map expected_kind c.fz_inject in
            let spurious =
              List.exists (fun k -> Some k <> injected_kind) got
            in
            if spurious then `Fp
            else (
              match injected_kind with
              | Some k -> if List.mem k got then `Tp else `Fn
              | None -> `Tn)
        in
        (scheme, outcome))
      results
  in
  (* the two Janitizer modes must agree on the exact violation set
     (kind, address) — pc-independent, so static re-layout is fine *)
  (match (List.assoc Hybrid results, List.assoc Emitted results) with
  | Ran (h, _), Ran (e, _) ->
    if vset h <> vset e then miss Hybrid "violation set differs from emitted"
  | _ -> ());
  (outcomes, List.rev !mismatches)

let run_suite ?(base_seed = 1) ?(seeds = 84) () =
  let cases = cases_of ~base_seed ~seeds in
  let accs =
    List.map
      (fun s -> (s, { a_tp = 0; a_fn = 0; a_tn = 0; a_fp = 0; a_refused = 0 }))
      schemes
  in
  let mismatches = ref [] in
  let runs = ref 0 in
  List.iter
    (fun c ->
      let outcomes, mm = check_case c in
      runs := !runs + List.length outcomes;
      mismatches := !mismatches @ mm;
      List.iter
        (fun (scheme, outcome) ->
          let a = List.assoc scheme accs in
          match outcome with
          | `Tp -> a.a_tp <- a.a_tp + 1
          | `Fn -> a.a_fn <- a.a_fn + 1
          | `Tn -> a.a_tn <- a.a_tn + 1
          | `Fp -> a.a_fp <- a.a_fp + 1
          | `Refused -> a.a_refused <- a.a_refused + 1)
        outcomes)
    cases;
  {
    rp_cases = List.length cases;
    rp_runs = !runs;
    rp_matrix =
      List.map
        (fun (s, a) ->
          {
            mx_scheme = scheme_name s;
            mx_tp = a.a_tp;
            mx_fn = a.a_fn;
            mx_tn = a.a_tn;
            mx_fp = a.a_fp;
            mx_refused = a.a_refused;
          })
        accs;
    rp_mismatches = !mismatches;
  }
