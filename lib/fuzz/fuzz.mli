(** Differential soundness fuzzer.

    Seeded, deterministic generation of randomized heap/stack workload
    programs with optional injected violations, each run under every
    scheme the repo models — native, Janitizer hybrid, Janitizer
    emitted-static, and the Valgrind / RetroWrite / Lockdown / BinCFI
    baselines — and checked against an oracle in three parts:

    - {b detection shape}: the violation kinds reported by each scheme
      are exactly what the Figure-10 detection matrix predicts for the
      injected bug (e.g. the Valgrind-class baseline misses stack
      smashes; the CFI-only baselines see no memory bug at all;
      RetroWrite refuses non-PIC mains);
    - {b bit-identical observables}: exit status and output equal the
      native run's, benign and injected alike (recover mode — detection
      must never perturb execution);
    - {b exact accounting}: guest icount equals native for every
      translation-based scheme, and
      [icount - sites - pins = native icount] for the emitted binary;
      hybrid and emitted must report the identical (kind, address)
      violation set.

    Everything derives from a [splitmix64] stream per seed: the same
    seed always yields the same program, so a mismatch is a one-line
    reproducer. *)

(** Splitmix64: a tiny, stable, dependency-free PRNG. *)
module Rng : sig
  type t

  val make : int -> t

  val int : t -> int -> int
  (** Uniform in [\[0, n)]. *)

  val bool : t -> bool
end

type inject = Overflow | Underwrite | Uaf | Double_free | Stack_smash

val injections : inject list
val inject_name : inject -> string

val expected_kind : inject -> string
(** The violation kind a shadow-aware scheme must report. *)

type case = {
  fz_seed : int;
  fz_pic : bool;  (** PIC main: the RetroWrite-applicable half *)
  fz_inject : inject option;  (** [None]: benign *)
}

val case_name : case -> string

val cases_of : base_seed:int -> seeds:int -> case list
(** [seeds] consecutive seeds, each contributing one benign case plus
    one per injection kind: [6 * seeds] cases. *)

val build : case -> Jt_obj.Objfile.t
(** The generated workload program (pure function of the case). *)

type scheme = Native | Hybrid | Emitted | Valgrind | Retrowrite | Lockdown | Bincfi

val schemes : scheme list
val scheme_name : scheme -> string

type detection =
  | Ran of Jt_vm.Vm.result * (int * int) option
      (** result, plus [(sites, pins)] for the emitted scheme *)
  | Refused of string

val run_scheme : scheme -> Jt_obj.Objfile.t -> detection

type expectation = Expect_kinds of string list | Expect_refusal

val expected : case -> scheme -> expectation

type mismatch = { mm_case : string; mm_scheme : string; mm_what : string }

(** Detection matrix against ground truth (was a bug injected?) — an
    {e expected} miss, like the Valgrind-class baseline on a stack
    smash or a CFI-only baseline on any memory bug, is still an FN
    here; only the [rp_mismatches] list judges schemes against their
    own expected behaviour. *)
type matrix_row = {
  mx_scheme : string;
  mx_tp : int;  (** injected, the expected kind was reported *)
  mx_fn : int;  (** injected, missed *)
  mx_tn : int;  (** benign, silent *)
  mx_fp : int;  (** a kind the injection does not explain *)
  mx_refused : int;  (** typed refusals (expected ones included) *)
}

type report = {
  rp_cases : int;
  rp_runs : int;
  rp_matrix : matrix_row list;
  rp_mismatches : mismatch list;  (** empty iff the suite is sound *)
}

val run_suite : ?base_seed:int -> ?seeds:int -> unit -> report
(** Defaults: [base_seed = 1], [seeds = 84] — 504 cases, deterministic. *)
