(* Dominator tree over one function's blocks, derived from the iterative
   dominator sets [Cfg.dominators].  The immediate dominator of a block b
   is the unique strict dominator of b that every other strict dominator
   of b also dominates — with the full dominator sets in hand it is
   simply the strict dominator with the largest set. *)

type t = {
  dt_entry : int;
  dt_idom : (int, int) Hashtbl.t;  (* block -> immediate dominator *)
  dt_children : (int, int list) Hashtbl.t;
  dt_dom : (int, Cfg.Iset.t) Hashtbl.t;  (* full dominator sets *)
}

(* Build the tree from given dominator sets.  Shared by [compute] and
   [import] so that a tree restored from serialized sets is identical by
   construction to the one computed from scratch. *)
let of_dom ~entry (dom : (int, Cfg.Iset.t) Hashtbl.t) =
  let idom = Hashtbl.create 16 in
  let children = Hashtbl.create 16 in
  Hashtbl.iter
    (fun a doms ->
      if a <> entry then begin
        let strict = Cfg.Iset.remove a doms in
        (* The idom is the strict dominator dominated by all the others,
           i.e. the one whose own dominator set is the largest. *)
        let best =
          Cfg.Iset.fold
            (fun d acc ->
              let card d =
                match Hashtbl.find_opt dom d with
                | Some s -> Cfg.Iset.cardinal s
                | None -> 0
              in
              match acc with
              | None -> Some d
              | Some cur -> if card d > card cur then Some d else acc)
            strict None
        in
        match best with
        | Some p ->
          Hashtbl.replace idom a p;
          let prev = Option.value ~default:[] (Hashtbl.find_opt children p) in
          Hashtbl.replace children p (a :: prev)
        | None -> ()
      end)
    dom;
  Hashtbl.filter_map_inplace
    (fun _ cs -> Some (List.sort compare cs))
    children;
  { dt_entry = entry; dt_idom = idom; dt_children = children; dt_dom = dom }

let compute (fn : Cfg.fn) = of_dom ~entry:fn.Cfg.f_entry (Cfg.dominators fn)

(* Serialization: the full dominator sets are the ground truth the whole
   tree is derived from, so they are what round-trips.  (Idom pairs alone
   would not do: unreachable cycles have dominator set = all blocks,
   giving mutually-dominating blocks whose idom choice is only
   deterministic with the sets in hand.) *)

let export t =
  Hashtbl.fold
    (fun a doms acc -> (a, Cfg.Iset.elements doms) :: acc)
    t.dt_dom []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let import ~entry doms =
  let dom = Hashtbl.create (max 1 (List.length doms)) in
  List.iter
    (fun (a, ds) -> Hashtbl.replace dom a (Cfg.Iset.of_list ds))
    doms;
  of_dom ~entry dom

let entry t = t.dt_entry

let idom t a = Hashtbl.find_opt t.dt_idom a

let children t a =
  Option.value ~default:[] (Hashtbl.find_opt t.dt_children a)

let dominates t a b =
  match Hashtbl.find_opt t.dt_dom b with
  | Some doms -> Cfg.Iset.mem a doms
  | None -> false

let strictly_dominates t a b = a <> b && dominates t a b

(* Walk b, idom b, idom (idom b), ... up to the entry. *)
let dom_chain t b =
  let rec go a acc =
    match idom t a with
    | Some p when p <> a -> go p (p :: acc)
    | _ -> List.rev acc
  in
  go b [ b ]
