(** Indirect-edge-resolved call graph over one module's recovered CFG.

    Direct-call and tail-jump edges come straight from the instructions;
    indirect-call edges are supplied by an external resolver — in
    practice the code-pointer provenance analysis ([Jt_analysis.Cpa]),
    whose per-site target sets are sound over-approximations.  A site
    the resolver cannot bound is recorded in {!unresolved_sites}
    instead of growing edges to every entry; consumers must treat such
    a site as "may call anything" (the Top-degradation contract). *)

type edge_kind = Direct | Tail | Indirect

type edge = {
  e_caller : int;  (** entry of the calling function *)
  e_site : int;  (** call-site instruction address *)
  e_callee : int;  (** entry of the callee *)
  e_kind : edge_kind;
}

type t

val build : ?resolve:(int -> int list option) -> Cfg.t -> t
(** [resolve site] returns the resolved target entries of the indirect
    call at [site], or [None] when the site is unbounded (Top).  The
    default resolver knows nothing: every indirect site is unresolved,
    which reproduces the direct-only call graph. *)

val edges : t -> edge list
(** All edges, in (function, block, instruction) discovery order. *)

val succs : t -> int -> (int * edge_kind) list
(** Distinct callees of one function, in first-seen order. *)

val unresolved_sites : t -> int list
(** Indirect call sites with no target set (Top). *)

val kind_name : edge_kind -> string
