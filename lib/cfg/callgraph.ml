open Jt_isa

type edge_kind = Direct | Tail | Indirect

type edge = { e_caller : int; e_site : int; e_callee : int; e_kind : edge_kind }

type t = {
  cg_edges : edge list;
  cg_succs : (int, (int * edge_kind) list) Hashtbl.t;  (* caller -> callees *)
  cg_unresolved : int list;  (* indirect call sites with no target set *)
}

let kind_name = function
  | Direct -> "direct"
  | Tail -> "tail"
  | Indirect -> "indirect"

let build ?(resolve = fun _ -> None) (cfg : Cfg.t) =
  let fns = Cfg.functions cfg in
  let entries = Hashtbl.create 64 in
  List.iter (fun (fn : Cfg.fn) -> Hashtbl.replace entries fn.Cfg.f_entry ()) fns;
  let edges = ref [] in
  let unresolved = ref [] in
  List.iter
    (fun (fn : Cfg.fn) ->
      let caller = fn.Cfg.f_entry in
      List.iter
        (fun (b : Cfg.block) ->
          Array.iter
            (fun (info : Jt_disasm.Disasm.insn_info) ->
              let site = info.d_addr in
              match info.d_insn with
              | Insn.Call t when Hashtbl.mem entries t ->
                edges :=
                  { e_caller = caller; e_site = site; e_callee = t;
                    e_kind = Direct }
                  :: !edges
              | Insn.Jmp t
                when (not (Hashtbl.mem fn.Cfg.f_blocks t))
                     && Hashtbl.mem entries t ->
                (* jump out of the function to a known entry: tail call *)
                edges :=
                  { e_caller = caller; e_site = site; e_callee = t;
                    e_kind = Tail }
                  :: !edges
              | Insn.Call_ind _ -> (
                match resolve site with
                | Some targets ->
                  List.iter
                    (fun t ->
                      edges :=
                        { e_caller = caller; e_site = site; e_callee = t;
                          e_kind = Indirect }
                        :: !edges)
                    targets
                | None -> unresolved := site :: !unresolved)
              | _ -> ())
            b.Cfg.b_insns)
        (Cfg.fn_blocks fn))
    fns;
  let edges = List.rev !edges in
  let succs = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt succs e.e_caller) in
      if not (List.mem (e.e_callee, e.e_kind) prev) then
        Hashtbl.replace succs e.e_caller ((e.e_callee, e.e_kind) :: prev))
    edges;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) succs;
  { cg_edges = edges; cg_succs = succs; cg_unresolved = List.rev !unresolved }

let edges t = t.cg_edges

let succs t entry = Option.value ~default:[] (Hashtbl.find_opt t.cg_succs entry)

let unresolved_sites t = t.cg_unresolved
