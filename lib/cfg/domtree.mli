(** Dominator tree over one function's blocks.

    Built from {!Cfg.dominators}; exposes immediate-dominator and
    dominance queries for passes that need to reason about "on every
    path" facts — e.g. the JASan dominating-check elision walks a block's
    dominator chain to attribute each elided access to the check that
    subsumes it. *)

type t

val compute : Cfg.fn -> t

val entry : t -> int

val idom : t -> int -> int option
(** Immediate dominator of a block, [None] for the entry (and for blocks
    outside the function). *)

val children : t -> int -> int list
(** Blocks immediately dominated by this one, sorted by address. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive. *)

val strictly_dominates : t -> int -> int -> bool

val dom_chain : t -> int -> int list
(** [b; idom b; idom (idom b); ...] up to the function entry — the walk
    order for finding the nearest dominating occurrence of a fact. *)

val export : t -> (int * int list) list
(** The full per-block dominator sets, blocks and set elements in
    address order — the ground truth the tree derives from. *)

val import : entry:int -> (int * int list) list -> t
(** Rebuild a tree from {!export}ed sets; identical by construction to
    the tree {!compute} built (both go through the same derivation). *)
